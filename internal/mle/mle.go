package mle

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// Dist is a discrete probability distribution on Z≥0.
type Dist interface {
	Name() string
	// PMF returns p(x). Implementations must have p(x) > 0 for all x in
	// the supported range [0, MaxX].
	PMF(x uint64) float64
	// MaxX is the largest value the model supports; samples are truncated
	// to it (the paper's M ∈ poly(n) restriction).
	MaxX() uint64
	// Sample draws one value.
	Sample(rng *util.SplitMix64) uint64
}

// Poisson is the Poisson(alpha) distribution truncated at maxX.
type Poisson struct {
	Alpha float64
	Max   uint64
}

// Name implements Dist.
func (p Poisson) Name() string { return fmt.Sprintf("Poisson(%.3g)", p.Alpha) }

// PMF implements Dist.
func (p Poisson) PMF(x uint64) float64 {
	// log pmf = x log α - α - log x!
	lg := float64(x)*math.Log(p.Alpha) - p.Alpha - lgamma(float64(x)+1)
	return math.Exp(lg)
}

// MaxX implements Dist.
func (p Poisson) MaxX() uint64 { return p.Max }

// Sample implements Dist (inversion on the CDF; fine for laptop-scale α).
func (p Poisson) Sample(rng *util.SplitMix64) uint64 {
	return sampleByInversion(p, rng)
}

// PoissonMixture is λ·Poisson(alpha) + (1-λ)·Poisson(beta), the paper's
// example of a distribution whose negative log-PMF is non-monotonic.
type PoissonMixture struct {
	Lambda      float64
	Alpha, Beta float64
	Max         uint64
}

// Name implements Dist.
func (p PoissonMixture) Name() string {
	return fmt.Sprintf("PoisMix(λ=%.2f,α=%.3g,β=%.3g)", p.Lambda, p.Alpha, p.Beta)
}

// PMF implements Dist.
func (p PoissonMixture) PMF(x uint64) float64 {
	a := Poisson{Alpha: p.Alpha, Max: p.Max}
	b := Poisson{Alpha: p.Beta, Max: p.Max}
	return p.Lambda*a.PMF(x) + (1-p.Lambda)*b.PMF(x)
}

// MaxX implements Dist.
func (p PoissonMixture) MaxX() uint64 { return p.Max }

// Sample implements Dist.
func (p PoissonMixture) Sample(rng *util.SplitMix64) uint64 {
	return sampleByInversion(p, rng)
}

// Geometric is the Geometric(q) distribution on {0, 1, ...} truncated at
// maxX: p(x) = (1-q)^x q.
type Geometric struct {
	Q   float64
	Max uint64
}

// Name implements Dist.
func (g Geometric) Name() string { return fmt.Sprintf("Geometric(%.3g)", g.Q) }

// PMF implements Dist.
func (g Geometric) PMF(x uint64) float64 {
	return math.Pow(1-g.Q, float64(x)) * g.Q
}

// MaxX implements Dist.
func (g Geometric) MaxX() uint64 { return g.Max }

// Sample implements Dist.
func (g Geometric) Sample(rng *util.SplitMix64) uint64 {
	return sampleByInversion(g, rng)
}

func sampleByInversion(d Dist, rng *util.SplitMix64) uint64 {
	u := rng.Float64()
	var cum float64
	for x := uint64(0); x <= d.MaxX(); x++ {
		cum += d.PMF(x)
		if u < cum {
			return x
		}
	}
	return d.MaxX()
}

// lgamma returns ln Γ(x) discarding the sign (x > 0 here).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Model packages a distribution with its g-SUM representation. The class-G
// normalization forces g(0) = 0 and g(1) = 1, so the raw negative
// log-likelihood is recovered affinely:
//
//	ℓ(θ; v) = n·(-log p(0)) + Scale · Σ_i g(|v_i|),
//
// where g(x) = (-log p(x) + log p(0)) / Scale and
// Scale = -log p(1) + log p(0). Validity requires p(0) > p(x) for x >= 1
// (checked at construction), which holds for the mixtures used here.
type Model struct {
	Dist  Dist
	G     gfunc.Func
	Base  float64 // -log p(0), the per-coordinate offset
	Scale float64 // -log p(1) + log p(0)
}

// NewModel builds the g-SUM representation of dist. It returns an error if
// the distribution's PMF does not peak at 0 (the affine reduction to class
// G then fails; see Appendix A of the paper for the g(0) ≠ 0 treatment).
func NewModel(dist Dist) (*Model, error) {
	p0 := dist.PMF(0)
	if !(p0 > 0) {
		return nil, fmt.Errorf("mle: %s has p(0) = %v", dist.Name(), p0)
	}
	for x := uint64(1); x <= dist.MaxX(); x++ {
		px := dist.PMF(x)
		if !(px > 0) {
			return nil, fmt.Errorf("mle: %s has p(%d) = %v", dist.Name(), x, px)
		}
		if px >= p0 {
			return nil, fmt.Errorf("mle: %s has p(%d) = %.4g >= p(0) = %.4g; class-G reduction needs the mode at 0",
				dist.Name(), x, px, p0)
		}
	}
	base := -math.Log(p0)
	scale := -math.Log(dist.PMF(1)) - base
	g := gfunc.New("-log "+dist.Name(), func(x uint64) float64 {
		if x == 0 {
			return 0
		}
		if x > dist.MaxX() {
			x = dist.MaxX()
		}
		return (-math.Log(dist.PMF(x)) - base) / scale
	})
	return &Model{Dist: dist, G: g, Base: base, Scale: scale}, nil
}

// LogLikelihoodFromGSum converts a g-SUM value over an n-coordinate vector
// into the negative log-likelihood ℓ(θ; v).
func (m *Model) LogLikelihoodFromGSum(gsum float64, n uint64) float64 {
	return float64(n)*m.Base + m.Scale*gsum
}

// ExactLogLikelihood computes ℓ(θ; v) directly from a frequency vector.
func (m *Model) ExactLogLikelihood(v stream.Vector, n uint64) float64 {
	return m.LogLikelihoodFromGSum(v.Sum(m.G.Eval), n)
}

// Estimator performs streaming approximate MLE over a model grid Θ using
// R independent universal sketches (R = O(log |Θ|) drives the failure
// probability below 1/|Θ|, so all grid answers hold simultaneously).
type Estimator struct {
	models []*Model
	n      uint64
	runs   []*core.Universal
}

// NewEstimator builds the MLE estimator. opts.N must be the number of
// coordinates n; the universal sketches are sized by the worst envelope
// across the grid.
func NewEstimator(models []*Model, opts core.Options, copies int) *Estimator {
	if len(models) == 0 {
		panic("mle: empty model grid")
	}
	if copies < 1 {
		copies = 1 + util.Log2Ceil(uint64(len(models)))
	}
	if copies%2 == 0 {
		copies++
	}
	if opts.Envelope == 0 {
		m := uint64(opts.M)
		if m < 4 {
			m = 4
		}
		for _, mod := range models {
			if h := gfunc.MeasureEnvelope(mod.G, m).H(); h > opts.Envelope {
				opts.Envelope = h
			}
		}
	}
	rng := util.NewSplitMix64(opts.Seed)
	runs := make([]*core.Universal, copies)
	for i := range runs {
		oi := opts
		oi.Seed = rng.Next()
		runs[i] = core.NewUniversal(oi)
	}
	return &Estimator{models: models, n: opts.N, runs: runs}
}

// Update feeds one turnstile update to every sketch copy.
func (e *Estimator) Update(item uint64, delta int64) {
	for _, r := range e.runs {
		r.Update(item, delta)
	}
}

// Process consumes an entire stream.
func (e *Estimator) Process(s *stream.Stream) {
	s.Each(func(u stream.Update) { e.Update(u.Item, u.Delta) })
}

// LogLikelihoods returns the estimated ℓ(θ) for every model in the grid
// (median across sketch copies).
func (e *Estimator) LogLikelihoods() []float64 {
	out := make([]float64, len(e.models))
	ests := make([]float64, len(e.runs))
	for mi, m := range e.models {
		for ri, r := range e.runs {
			ests[ri] = m.LogLikelihoodFromGSum(r.EstimateFor(m.G), e.n)
		}
		out[mi] = util.MedianFloat64(ests)
	}
	return out
}

// ArgMin returns the grid index minimizing the estimated ℓ and the
// estimate itself: the approximate MLE θ̂.
func (e *Estimator) ArgMin() (int, float64) {
	lls := e.LogLikelihoods()
	best, bestV := 0, lls[0]
	for i, v := range lls {
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// SpaceBytes reports total sketch storage across copies.
func (e *Estimator) SpaceBytes() int {
	total := 0
	for _, r := range e.runs {
		total += r.SpaceBytes()
	}
	return total
}
