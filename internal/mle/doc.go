// Package mle implements the Section 1.1.1 application: streaming
// log-likelihood approximation and approximate maximum-likelihood
// estimation for discrete distributions.
//
// The stream's coordinates v_1..v_n are i.i.d. samples from a discrete
// distribution p(·; θ). The log-likelihood ℓ(θ; v) = -Σ_i log p(v_i; θ)
// is a g-SUM for g_θ(x) = -log p(x; θ), which is generally non-monotonic
// (e.g. Poisson mixtures) — exactly the class this paper newly handles.
//
// Because the paper's sketch is linear and independent of g, a single
// universal sketch answers ℓ(θ) for every θ in a discretized parameter
// grid; amplifying by O(log |Θ|) independent copies makes all answers
// simultaneously correct, and θ̂ = argmin_θ ℓ̂(θ) then satisfies
// ℓ(θ̂) <= (1+ε) min_θ ℓ(θ).
//
// Layer: satellite off the spine in ARCHITECTURE.md — the §1.1.1
// approximate-MLE application on top of core.Universal.
// Seed discipline: inherits core's rules; it owns no sketch state of
// its own.
package mle
