package mle

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

func TestPoissonPMFSumsToOne(t *testing.T) {
	p := Poisson{Alpha: 3, Max: 64}
	var sum float64
	for x := uint64(0); x <= p.Max; x++ {
		sum += p.PMF(x)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("Poisson PMF sums to %v", sum)
	}
}

func TestMixturePMFSumsToOne(t *testing.T) {
	p := PoissonMixture{Lambda: 0.5, Alpha: 0.3, Beta: 8, Max: 64}
	var sum float64
	for x := uint64(0); x <= p.Max; x++ {
		sum += p.PMF(x)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("mixture PMF sums to %v", sum)
	}
}

func TestMixtureNegLogIsNonMonotonic(t *testing.T) {
	// The paper's motivating point: -log p for a Poisson mixture is not
	// monotonic (it dips near the second component's mode).
	p := PoissonMixture{Lambda: 0.5, Alpha: 0.3, Beta: 8, Max: 64}
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	g := m.G
	increased, decreased := false, false
	for x := uint64(1); x < 20; x++ {
		a, b := g.Eval(x), g.Eval(x+1)
		if b > a {
			increased = true
		}
		if b < a {
			decreased = true
		}
	}
	if !increased || !decreased {
		t.Error("mixture -log p should be non-monotonic on [1, 20]")
	}
}

func TestModelRejectsModeAwayFromZero(t *testing.T) {
	// Poisson(5) peaks at x=5 > p(0): the class-G reduction must refuse.
	if _, err := NewModel(Poisson{Alpha: 5, Max: 64}); err == nil {
		t.Error("expected rejection for mode away from 0")
	}
}

func TestModelClassGNormalization(t *testing.T) {
	m, err := NewModel(Geometric{Q: 0.4, Max: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := gfunc.Validate(m.G, 64); err != nil {
		t.Error(err)
	}
}

func TestLogLikelihoodRoundTrip(t *testing.T) {
	// Exact log-likelihood via the model's affine form must equal the
	// direct computation -Σ log p(v_i).
	d := Geometric{Q: 0.4, Max: 64}
	m, err := NewModel(d)
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	rng := util.NewSplitMix64(3)
	v := make(stream.Vector)
	var direct float64
	for i := uint64(0); i < n; i++ {
		x := d.Sample(rng)
		if x > 0 {
			v[i] = int64(x)
		}
		direct += -math.Log(d.PMF(x))
	}
	got := m.ExactLogLikelihood(v, n)
	if util.RelErr(got, direct) > 1e-9 {
		t.Errorf("affine form %.8g != direct %.8g", got, direct)
	}
}

func TestApproxMLEFindsTruth(t *testing.T) {
	// Sample from Geometric(0.45) and recover it from a θ grid via the
	// universal sketch. The guarantee is ℓ(θ̂) <= (1+ε) ℓ(θ*), which we
	// check alongside grid proximity.
	const n = 1 << 10
	truth := Geometric{Q: 0.45, Max: 32}
	s := stream.IIDSamples(stream.GenConfig{N: n, M: 32, Seed: 17},
		func(rng *util.SplitMix64) int64 { return int64(truth.Sample(rng)) })

	grid := []float64{0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75}
	models := make([]*Model, len(grid))
	for i, q := range grid {
		m, err := NewModel(Geometric{Q: q, Max: 32})
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}

	est := NewEstimator(models, core.Options{N: n, M: 32, Eps: 0.2, Seed: 23}, 3)
	est.Process(s)
	idx, _ := est.ArgMin()

	// Exact minimizer over the grid.
	v := s.Vector()
	bestIdx, bestLL := 0, math.Inf(1)
	for i, m := range models {
		if ll := m.ExactLogLikelihood(v, n); ll < bestLL {
			bestIdx, bestLL = i, ll
		}
	}
	chosenLL := models[idx].ExactLogLikelihood(v, n)
	if chosenLL > 1.2*bestLL {
		t.Errorf("approximate MLE picked θ=%v with ℓ=%.4g; best grid ℓ=%.4g at θ=%v",
			grid[idx], chosenLL, bestLL, grid[bestIdx])
	}
}
