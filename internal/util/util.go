package util

import (
	"fmt"
	"math"
	"sort"
)

// SplitMix64 is a tiny, fast, splittable PRNG used to derive seeds for hash
// families and generators. It is deterministic for a given state and is the
// only source of randomness in the repository, so every experiment is
// reproducible from a single root seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with the given state.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a pseudo-random value in [0, n). It panics if n == 0.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("util: Uint64n with n == 0")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := s.Next()
		if v < max {
			return v % n
		}
	}
}

// Int63n returns a pseudo-random value in [0, n) as int64. It panics if n <= 0.
func (s *SplitMix64) Int63n(n int64) int64 {
	if n <= 0 {
		panic("util: Int63n with n <= 0")
	}
	return int64(s.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean.
func (s *SplitMix64) Bool() bool {
	return s.Next()&1 == 1
}

// Fork derives an independent child generator. Forked generators do not
// share state with the parent after the call.
func (s *SplitMix64) Fork() *SplitMix64 {
	return &SplitMix64{state: s.Next()}
}

// MedianFloat64 returns the median of xs. It copies xs, so the argument is
// not reordered. It panics on an empty slice.
func MedianFloat64(xs []float64) float64 {
	if len(xs) == 0 {
		panic("util: median of empty slice")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MedianInt64 returns the median of xs (lower median for even length).
// It copies xs. It panics on an empty slice.
func MedianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		panic("util: median of empty slice")
	}
	cp := make([]int64, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}

// MeanFloat64 returns the arithmetic mean of xs. It panics on an empty slice.
func MeanFloat64(xs []float64) float64 {
	if len(xs) == 0 {
		panic("util: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using nearest-rank.
// It copies xs. It panics on an empty slice or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("util: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("util: quantile %v outside [0,1]", q))
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// RelErr returns |est - truth| / |truth|. If truth == 0 it returns |est|
// (absolute error), so a zero ground truth with a zero estimate reports 0.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// AlmostEqual reports whether a and b differ by at most tol in relative
// terms (or absolute terms when the larger magnitude is below 1).
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

// AbsInt64 returns |x|. It panics on math.MinInt64, which cannot occur for
// stream frequencies bounded by the turnstile promise |v_i| <= M.
func AbsInt64(x int64) int64 {
	if x == math.MinInt64 {
		panic("util: AbsInt64 overflow")
	}
	if x < 0 {
		return -x
	}
	return x
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// NextPow2 returns the smallest power of two >= x (and at least 1).
func NextPow2(x uint64) uint64 {
	if x == 0 {
		return 1
	}
	p := uint64(1)
	for p < x {
		p <<= 1
	}
	return p
}

// Log2Ceil returns ceil(log2(x)) for x >= 1. Log2Ceil(1) == 0.
func Log2Ceil(x uint64) int {
	if x == 0 {
		panic("util: Log2Ceil(0)")
	}
	n := 0
	p := uint64(1)
	for p < x {
		p <<= 1
		n++
	}
	return n
}
