package util

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(99), NewSplitMix64(99)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewSplitMix64(1)
	f := a.Fork()
	x := f.Next()
	y := a.Next()
	if x == y {
		t.Error("fork should not mirror parent")
	}
}

func TestUint64nRange(t *testing.T) {
	rng := NewSplitMix64(5)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return rng.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	rng := NewSplitMix64(7)
	counts := make([]int, 10)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[rng.Uint64n(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-trials/10) > 0.05*trials {
			t.Errorf("digit %d count %d deviates", d, c)
		}
	}
}

func TestMedians(t *testing.T) {
	if m := MedianFloat64([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %v, want 2", m)
	}
	if m := MedianFloat64([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
	if m := MedianInt64([]int64{5, 1, 9}); m != 5 {
		t.Errorf("int median = %v, want 5", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	MedianFloat64(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("median mutated its argument")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Errorf("p50 = %v, want 5", q)
	}
	if q := Quantile(xs, 1.0); q != 10 {
		t.Errorf("p100 = %v, want 10", q)
	}
	if q := Quantile(xs, 0.0); q != 1 {
		t.Errorf("p0 = %v, want 1", q)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Errorf("RelErr(110,100) = %v", RelErr(110, 100))
	}
	if RelErr(5, 0) != 5 {
		t.Errorf("RelErr(5,0) = %v, want absolute 5", RelErr(5, 0))
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{0: 1, 1: 1, 2: 2, 3: 4, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 3: 2, 4: 2, 1024: 10, 1025: 11}
	for in, want := range cases {
		if got := Log2Ceil(in); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAbsMinMax(t *testing.T) {
	if AbsInt64(-7) != 7 || AbsInt64(7) != 7 {
		t.Error("AbsInt64 wrong")
	}
	if MaxInt64(2, 3) != 3 || MinInt64(2, 3) != 2 {
		t.Error("min/max wrong")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(100, 100.5, 0.01) {
		t.Error("100 vs 100.5 within 1%")
	}
	if AlmostEqual(100, 110, 0.01) {
		t.Error("100 vs 110 not within 1%")
	}
	if !AlmostEqual(0.001, 0.0011, 0.01) {
		t.Error("small values compare absolutely")
	}
}
