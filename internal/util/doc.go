// Package util provides small shared helpers used across the repro:
// deterministic RNG plumbing, order statistics, and float comparisons.
//
// Layer: substrate in ARCHITECTURE.md.
// Seed discipline: SplitMix64 is the repository's only randomness
// source, and Fork order is part of every constructor's contract —
// "same seed" means "same hash functions" only because forks happen
// in a fixed order.
package util
