package sweep

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden sweep files")

// TestMain doubles as the sweep worker: when SWEEP_TEST_WORKER is set
// the test binary behaves like `gsum sweep -cell N` (run one cell, write
// its JSON, exit), which is how the fan-out tests get real worker
// processes without needing a built gsum binary. SWEEP_CRASH simulates a
// worker dying before it reports.
func TestMain(m *testing.M) {
	if os.Getenv("SWEEP_TEST_WORKER") == "1" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

func workerMain() int {
	if crash := os.Getenv("SWEEP_CRASH"); crash != "" && crash == os.Getenv("SWEEP_CELL") {
		fmt.Fprintln(os.Stderr, "sweep test worker: injected crash")
		return 1
	}
	idx, err := strconv.Atoi(os.Getenv("SWEEP_CELL"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep test worker: bad SWEEP_CELL:", err)
		return 1
	}
	cfg, err := ParseConfigFile(os.Getenv("SWEEP_CONFIG"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res, err := RunCell(cfg, idx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := WriteCellResult(os.Getenv("SWEEP_OUT"), res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// testLauncher self-execs the test binary in worker mode; crash names
// the cell index (as a string) whose worker exits before writing, "" for
// none.
func testLauncher(cfgPath, out, crash string) Launcher {
	return func(i int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"SWEEP_TEST_WORKER=1",
			"SWEEP_CELL="+strconv.Itoa(i),
			"SWEEP_CONFIG="+cfgPath,
			"SWEEP_OUT="+out,
			"SWEEP_CRASH="+crash,
		)
		return cmd
	}
}

func writeConfig(t *testing.T, dir string, cfg Config) string {
	t.Helper()
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// goldenConfig is the committed two-cell sweep: a benign and an
// adversarial scenario through the serial backend.
func goldenConfig() Config {
	return Config{
		Spec:      backend.Spec{G: "x^2"},
		Stream:    workload.Config{N: 1 << 16, Items: 512, Length: 20000, Seed: 1},
		Workloads: []string{"zipf", "adversarial"},
		Backends:  []string{"serial"},
		Eps:       []float64{0.25},
		PointK:    8,
	}
}

// TestConfigNormalize: every bad axis is rejected with an error naming
// it, and defaults resolve the documented way.
func TestConfigNormalize(t *testing.T) {
	good := goldenConfig()
	n, err := good.Normalize()
	if err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if n.Spec.Options.Seed != 7 || n.Spec.Options.M != 1<<10 || n.PointK != 8 {
		t.Fatalf("defaults not resolved: %+v", n.Spec.Options)
	}
	if len(n.Workers) != 1 || n.Workers[0] != 1 || len(n.Transports) != 1 || n.Transports[0] != "json" {
		t.Fatalf("workers/transports defaults not resolved: %v %v", n.Workers, n.Transports)
	}
	cases := []struct {
		name string
		mut  func(c Config) Config
		want string
	}{
		{"zero stream items", func(c Config) Config { c.Stream.Items = -1; return c }, "Items"},
		{"no workloads", func(c Config) Config { c.Workloads = nil; return c }, "workloads"},
		{"unknown workload", func(c Config) Config { c.Workloads = []string{"nope"}; return c }, "unknown workload"},
		{"bad alpha", func(c Config) Config { c.Alpha = -2; return c }, "alpha"},
		{"no backends", func(c Config) Config { c.Backends = nil; return c }, "backends"},
		{"unknown backend", func(c Config) Config { c.Backends = []string{"quantum"}; return c }, "unknown backend"},
		{"unknown transport", func(c Config) Config { c.Transports = []string{"carrier-pigeon"}; return c }, "transport"},
		{"no eps", func(c Config) Config { c.Eps = nil; return c }, "eps"},
		{"eps out of range", func(c Config) Config { c.Eps = []float64{1.5}; return c }, "eps"},
		{"negative workers", func(c Config) Config { c.Workers = []int{-1}; return c }, "workers"},
		{"negative procs", func(c Config) Config { c.Procs = -1; return c }, "procs"},
		{"foreign kind", func(c Config) Config { c.Spec.Kind = backend.KindHeavy; return c }, "kind"},
		{"no g", func(c Config) Config { c.Spec.G = ""; return c }, "spec.g"},
		{"unknown g", func(c Config) Config { c.Spec.G = "x^9000"; return c }, "catalog"},
		{"bad trace", func(c Config) Config {
			c.Workloads = []string{"trace"}
			c.Trace = filepath.Join(t.TempDir(), "missing.csv")
			return c
		}, "trace"},
		{"window too long", func(c Config) Config {
			c.Spec.Window.W = 99
			c.Stream.Ticks = 10
			return c
		}, "window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.mut(good).Normalize()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCellsDeterministic: the cell list is a pure function of the
// normalized config, transports multiply only daemon cells, and every
// index matches its position.
func TestCellsDeterministic(t *testing.T) {
	cfg := goldenConfig()
	cfg.Backends = []string{"serial", "parallel", "daemon"}
	cfg.Transports = []string{"json", "stream"}
	cfg.Eps = []float64{0.25, 0.5}
	cfg.Workers = []int{1, 2}
	n, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	a, b := n.Cells(), n.Cells()
	// 2 workloads x (serial + parallel + daemon*2 transports) x 2 eps x 2 workers.
	if want := 2 * 4 * 2 * 2; len(a) != want {
		t.Fatalf("got %d cells, want %d", len(a), want)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across enumerations: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Index != i {
			t.Fatalf("cell %d carries index %d", i, a[i].Index)
		}
		if (a[i].Transport != "") != (a[i].Backend == "daemon") {
			t.Fatalf("cell %d: transport %q on backend %q", i, a[i].Transport, a[i].Backend)
		}
	}
}

// runCellsInProcess executes every cell of the matrix in this process
// and writes the results into dir.
func runCellsInProcess(t *testing.T, cfg Config, dir string) {
	t.Helper()
	n, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range n.Cells() {
		res, err := RunCell(n, cell.Index)
		if err != nil {
			t.Fatalf("cell %d: %v", cell.Index, err)
		}
		if err := WriteCellResult(dir, res); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenReport pins the sweep's two artifacts byte for byte: the
// markdown report and the merged JSON of the committed two-cell sweep
// must equal the golden files. `go test ./internal/sweep -run Golden
// -update` rewrites them after an intentional change.
func TestGoldenReport(t *testing.T) {
	cfg := goldenConfig()
	dir := t.TempDir()
	runCellsInProcess(t, cfg, dir)
	m, err := MergeDir(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatalf("golden sweep incomplete: %v", m.Missing)
	}
	var report bytes.Buffer
	if err := Report(&report, cfg, m, false); err != nil {
		t.Fatal(err)
	}
	mergedPath := filepath.Join(t.TempDir(), "merged.json")
	if err := WriteMerged(mergedPath, m, false); err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}

	goldenReport := filepath.Join("testdata", "golden_report.md")
	goldenMerged := filepath.Join("testdata", "golden_merged.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReport, report.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenMerged, merged, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantReport, err := os.ReadFile(goldenReport)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden files)", err)
	}
	if !bytes.Equal(report.Bytes(), wantReport) {
		t.Errorf("report drifted from %s (rerun with -update if intentional):\n--- got ---\n%s", goldenReport, report.String())
	}
	wantMerged, err := os.ReadFile(goldenMerged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, wantMerged) {
		t.Errorf("merged JSON drifted from %s (rerun with -update if intentional):\n--- got ---\n%s", goldenMerged, merged)
	}
}

// TestAdversarialCellDegradesPointQueries: in the merged golden sweep,
// the adversarial cell's point-query error dwarfs the benign zipf
// cell's while its g-SUM equality metrics stay healthy — the contrast
// the report exists to document.
func TestAdversarialCellDegradesPointQueries(t *testing.T) {
	cfg := goldenConfig()
	dir := t.TempDir()
	runCellsInProcess(t, cfg, dir)
	m, err := MergeDir(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	byWorkload := map[string]CellResult{}
	for _, c := range m.Cells {
		byWorkload[c.Workload] = c
	}
	zipf, adv := byWorkload["zipf"], byWorkload["adversarial"]
	if adv.PointMaxErr < 4*zipf.PointMaxErr || adv.PointMaxErr < 0.5 {
		t.Fatalf("attack not visible in the sweep: adversarial pt max err %v vs zipf %v",
			adv.PointMaxErr, zipf.PointMaxErr)
	}
}

// TestRunFansOutProcesses: the full fan-out across real worker
// processes completes the smoke matrix, and a rerun into a fresh
// directory produces a byte-identical report — determinism across
// process boundaries, not just within one.
func TestRunFansOutProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := Smoke()
	base := t.TempDir()
	cfgPath := writeConfig(t, base, cfg)

	render := func(dir string) string {
		res, err := Run(cfg, dir, testLauncher(cfgPath, dir, ""))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failed) > 0 {
			t.Fatalf("workers failed: %v", res.Failed)
		}
		if !res.Merged.Complete() {
			t.Fatalf("missing cells: %v", res.Merged.Missing)
		}
		var buf bytes.Buffer
		if err := Report(&buf, cfg, res.Merged, false); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render(filepath.Join(base, "run1"))
	second := render(filepath.Join(base, "run2"))
	if first != second {
		t.Errorf("reports differ across reruns:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "| yes |") || strings.Contains(first, "DIVERGED") {
		t.Errorf("equality section did not verify:\n%s", first)
	}
}

// TestCrashedWorkerReported: killing one worker mid-sweep must surface
// in all three places — the launch failures, the merge's Missing list
// (by cell ID), and the report's missing-cells section — while every
// other cell still reports.
func TestCrashedWorkerReported(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	cfg := Smoke()
	base := t.TempDir()
	cfgPath := writeConfig(t, base, cfg)
	dir := filepath.Join(base, "out")

	const crashIndex = 1
	res, err := Run(cfg, dir, testLauncher(cfgPath, dir, strconv.Itoa(crashIndex)))
	if err != nil {
		t.Fatal(err)
	}
	crashed := cfg.Cells()[crashIndex]
	if len(res.Failed) != 1 || !strings.Contains(res.Failed[0], crashed.ID()) {
		t.Fatalf("failures %v do not name the crashed cell %q", res.Failed, crashed.ID())
	}
	if res.Merged.Complete() {
		t.Fatal("merge claims completeness despite a dead worker")
	}
	if len(res.Merged.Missing) != 1 || !strings.Contains(res.Merged.Missing[0], crashed.ID()) {
		t.Fatalf("missing %v does not name the crashed cell %q", res.Merged.Missing, crashed.ID())
	}
	if got := len(res.Merged.Cells); got != res.Merged.Total-1 {
		t.Fatalf("%d of %d cells survived, want all but one", got, res.Merged.Total)
	}
	var buf bytes.Buffer
	if err := Report(&buf, cfg, res.Merged, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), crashed.ID()) || strings.Contains(buf.String(), "(none — every cell reported)") {
		t.Errorf("report does not surface the missing cell:\n%s", buf.String())
	}
}

// TestTimingOptIn: the default artifacts carry no wall-clock numbers;
// -timing adds the throughput section and per-cell timing JSON.
func TestTimingOptIn(t *testing.T) {
	cfg := goldenConfig()
	dir := t.TempDir()
	runCellsInProcess(t, cfg, dir)
	m, err := MergeDir(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cells {
		if c.ElapsedNS <= 0 || c.UpdatesPerSec <= 0 {
			t.Fatalf("per-cell file lost its timing: %+v", c.Cell)
		}
	}
	for _, c := range m.Deterministic().Cells {
		if c.ElapsedNS != 0 || c.UpdatesPerSec != 0 {
			t.Fatalf("Deterministic left timing behind: %+v", c.Cell)
		}
	}
	var plain, timed bytes.Buffer
	if err := Report(&plain, cfg, m, false); err != nil {
		t.Fatal(err)
	}
	if err := Report(&timed, cfg, m, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "Throughput") {
		t.Error("default report includes the wall-clock section")
	}
	if !strings.Contains(timed.String(), "Throughput") {
		t.Error("-timing report lacks the wall-clock section")
	}
}
