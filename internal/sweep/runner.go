package sweep

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Launcher builds the worker process for one cell index. The production
// launcher (cmd/gsum) self-execs `gsum sweep -f cfg -out dir -cell N`;
// tests substitute the test binary. Run owns Start/Wait.
type Launcher func(index int) *exec.Cmd

// RunResult is the outcome of a full fan-out: the merged matrix plus the
// launch-level failures (a worker that exited non-zero or could not
// start). A failed worker usually also appears in Merged.Missing — the
// two views are kept separate because a worker can fail AFTER writing
// its result, and a cell can be missing without any process failing
// (e.g. an out-of-range procs file was deleted).
type RunResult struct {
	Merged Merged
	// Failed lists worker failures as "cell N (id): reason", sorted by
	// cell index.
	Failed []string
}

// Run fans the matrix out across worker processes — at most cfg.Procs
// (default GOMAXPROCS) in flight — waits for them all, and merges the
// per-cell results from dir. Worker crashes are collected, not fatal:
// the merge still covers every surviving cell and names the missing
// ones.
func Run(cfg Config, dir string, launch Launcher) (RunResult, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return RunResult{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return RunResult{}, fmt.Errorf("sweep: %w", err)
	}
	cells := cfg.Cells()
	procs := cfg.Procs
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	if procs > len(cells) {
		procs = len(cells)
	}

	sem := make(chan struct{}, procs)
	type failure struct {
		index int
		msg   string
	}
	var mu sync.Mutex
	var failures []failure
	var wg sync.WaitGroup
	for _, cell := range cells {
		wg.Add(1)
		go func(cell Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cmd := launch(cell.Index)
			out, err := cmd.CombinedOutput()
			if err != nil {
				msg := fmt.Sprintf("cell %d (%s): %v", cell.Index, cell.ID(), err)
				if tail := lastLine(out); tail != "" {
					msg += ": " + tail
				}
				mu.Lock()
				failures = append(failures, failure{cell.Index, msg})
				mu.Unlock()
			}
		}(cell)
	}
	wg.Wait()
	sort.Slice(failures, func(i, j int) bool { return failures[i].index < failures[j].index })
	failed := make([]string, len(failures))
	for i, f := range failures {
		failed[i] = f.msg
	}

	m, err := MergeDir(cfg, dir)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{Merged: m, Failed: failed}, nil
}

// lastLine extracts the final non-empty output line of a failed worker
// for the failure message.
func lastLine(out []byte) string {
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) == 0 {
		return ""
	}
	return strings.TrimSpace(lines[len(lines)-1])
}
