package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/workload"
)

// CellResult is one cell's measurement: the bench run's accuracy and
// space, plus the point-query score of the cell's scenario against a
// CountSketch drawn from the sweep's sketch seed. Everything except the
// trailing timing fields is deterministic given the Config; WriteMerged
// and the default report strip the timing so reruns are byte-identical.
type CellResult struct {
	Cell
	ID       string  `json:"id"`
	Updates  int     `json:"updates"`
	Distinct int     `json:"distinct"`
	Exact    float64 `json:"exact"`
	Estimate float64 `json:"estimate"`
	RelErr   float64 `json:"rel_err"`
	Space    int     `json:"space_bytes"`
	// Windowed-mode extras (zero for whole-stream sweeps).
	Window     int    `json:"window,omitempty"`
	LastTick   uint64 `json:"last_tick,omitempty"`
	StaleTicks uint64 `json:"stale_ticks,omitempty"`
	// Point-query score: mean and max relative error over the PointK
	// true top items of the cell's flat stream, answered by a
	// CountSketch seeded with Spec.Options.Seed. This is the column
	// where the adversarial scenario shows its damage.
	PointK       int     `json:"point_k"`
	PointMeanErr float64 `json:"point_mean_err"`
	PointMaxErr  float64 `json:"point_max_err"`
	// Wall-clock timing: real measurements, NOT deterministic. Kept in
	// the per-cell files; surfaced only by the report's -timing opt-in.
	ElapsedNS     int64   `json:"elapsed_ns,omitempty"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
}

// RunCell executes one cell of the matrix: resolve the cell's generator
// and Spec, run the bench through the cell's backend, and score the
// point queries. cfg may be normalized or not; index addresses the
// normalized Cells list.
func RunCell(cfg Config, index int) (CellResult, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return CellResult{}, err
	}
	cells := cfg.Cells()
	if index < 0 || index >= len(cells) {
		return CellResult{}, fmt.Errorf("sweep: cell %d outside the %d-cell matrix", index, len(cells))
	}
	cell := cells[index]
	gen, err := cfg.Generator(cell.Workload)
	if err != nil {
		return CellResult{}, err
	}
	g, err := backend.CatalogFunc(cfg.Spec.G)
	if err != nil {
		return CellResult{}, fmt.Errorf("sweep: %w", err)
	}
	opts := cfg.Spec.Options
	opts.Eps = cell.Eps
	res, err := workload.RunBench(workload.BenchSpec{
		Generator: gen,
		Cfg:       cfg.Stream,
		G:         g,
		Opts:      opts,
		Backend:   cell.Backend,
		Workers:   cell.Workers,
		Transport: cell.Transport,
		Window:    int(cfg.Spec.Window.W),
		WindowK:   cfg.Spec.Window.K,
	})
	if err != nil {
		return CellResult{}, fmt.Errorf("sweep: cell %d (%s): %w", index, cell.ID(), err)
	}
	mean, max, err := pointQueryErrs(cfg, gen)
	if err != nil {
		return CellResult{}, fmt.Errorf("sweep: cell %d (%s): %w", index, cell.ID(), err)
	}
	return CellResult{
		Cell:          cell,
		ID:            cell.ID(),
		Updates:       res.Updates,
		Distinct:      res.Distinct,
		Exact:         res.Exact,
		Estimate:      res.Estimate,
		RelErr:        res.RelErr,
		Space:         res.SpaceBytes,
		Window:        res.Window,
		LastTick:      res.LastTick,
		StaleTicks:    res.StaleTicks,
		PointK:        cfg.PointK,
		PointMeanErr:  mean,
		PointMaxErr:   max,
		ElapsedNS:     res.Elapsed.Nanoseconds(),
		UpdatesPerSec: res.UpdatesPerSec,
	}, nil
}

// pointQueryErrs ingests the cell's flat stream into a CountSketch drawn
// from the sweep's sketch seed and scores the PointK largest true items:
// relative error of EstimateItem against the exact frequency, mean and
// max. The sketch is opened through the backend registry (countsketch
// kind, default 5x1024 geometry), so this is exactly the sketch the
// adversarial generator targets when it aims at Spec.Options.Seed.
func pointQueryErrs(cfg Config, gen workload.Generator) (mean, max float64, err error) {
	s := gen.Generate(cfg.Stream)
	e, err := backend.Open(backend.Spec{
		Kind:    backend.KindCountSketch,
		Options: core.Options{N: s.N(), M: cfg.Spec.Options.M, Seed: cfg.Spec.Options.Seed},
	})
	if err != nil {
		return 0, 0, err
	}
	pq, ok := e.(backend.PointQuerier)
	if !ok {
		return 0, 0, fmt.Errorf("countsketch kind lost its PointQuerier capability")
	}
	if err := backend.Process(e, s); err != nil {
		return 0, 0, err
	}
	v := s.Vector()
	top := topItems(v, cfg.PointK)
	var sum float64
	for _, it := range top {
		re := util.RelErr(float64(pq.EstimateItem(it)), float64(v[it]))
		sum += re
		if re > max {
			max = re
		}
	}
	if len(top) > 0 {
		mean = sum / float64(len(top))
	}
	return mean, max, nil
}

// topItems returns up to k items of v by descending |frequency|, ties
// broken by ascending item id — a total order, so the query set is
// deterministic.
func topItems(v stream.Vector, k int) []uint64 {
	items := make([]uint64, 0, len(v))
	for it, c := range v {
		if c != 0 {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		ai, aj := util.AbsInt64(v[items[i]]), util.AbsInt64(v[items[j]])
		if ai != aj {
			return ai > aj
		}
		return items[i] < items[j]
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// CellFile is the result filename for cell index i in an output
// directory — fixed-width so a directory listing sorts in matrix order.
func CellFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("cell-%04d.json", i))
}

// WriteCellResult writes one cell's JSON result into dir. The write goes
// through a temp file and rename, so a crash mid-write leaves no
// half-written file for the merge to misread — the cell is just missing.
func WriteCellResult(dir string, res CellResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "cell-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), CellFile(dir, res.Index))
}
