package sweep

import (
	"encoding/json"
	"fmt"
	"os"
)

// Merged is the combined outcome of a sweep: every cell result that was
// written, in matrix order, plus the identities of cells that were NOT —
// a crashed worker shows up here by ID instead of silently shrinking the
// tables.
type Merged struct {
	// Total is the size of the configured matrix.
	Total int `json:"total_cells"`
	// Cells holds the collected results in matrix (index) order.
	Cells []CellResult `json:"cells"`
	// Missing lists cells with no (or unreadable) result file, as
	// "cell N (id): reason".
	Missing []string `json:"missing,omitempty"`
}

// Complete reports whether every cell of the matrix produced a result.
func (m Merged) Complete() bool { return len(m.Missing) == 0 }

// MergeDir collects the per-cell result files of a sweep from dir. The
// config determines the expected matrix; absent or malformed files
// become Missing entries, never errors — the merge always reports the
// whole matrix.
func MergeDir(cfg Config, dir string) (Merged, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return Merged{}, err
	}
	cells := cfg.Cells()
	m := Merged{Total: len(cells)}
	for _, cell := range cells {
		data, err := os.ReadFile(CellFile(dir, cell.Index))
		if err != nil {
			m.Missing = append(m.Missing, fmt.Sprintf("cell %d (%s): no result file", cell.Index, cell.ID()))
			continue
		}
		var res CellResult
		if err := json.Unmarshal(data, &res); err != nil {
			m.Missing = append(m.Missing, fmt.Sprintf("cell %d (%s): unreadable result: %v", cell.Index, cell.ID(), err))
			continue
		}
		if res.Index != cell.Index {
			m.Missing = append(m.Missing, fmt.Sprintf("cell %d (%s): result file claims index %d", cell.Index, cell.ID(), res.Index))
			continue
		}
		m.Cells = append(m.Cells, res)
	}
	return m, nil
}

// Deterministic returns a copy of the merge with every wall-clock field
// cleared, leaving only quantities that are pure functions of the
// Config. WriteMerged and the default report go through it, which is
// what makes `gsum sweep` reruns byte-identical.
func (m Merged) Deterministic() Merged {
	out := m
	out.Cells = make([]CellResult, len(m.Cells))
	for i, c := range m.Cells {
		c.ElapsedNS = 0
		c.UpdatesPerSec = 0
		out.Cells[i] = c
	}
	return out
}

// WriteMerged writes the merged results as indented JSON to path. Unless
// timing is requested, wall-clock fields are stripped first so the file
// is deterministic.
func WriteMerged(path string, m Merged, timing bool) error {
	if !timing {
		m = m.Deterministic()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
