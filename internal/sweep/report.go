package sweep

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Report renders the merged sweep as markdown: the matrix header, the
// per-cell accuracy table, a cross-backend equality section (the CI-able
// face of the serial == parallel == daemon contract), and the missing
// cells. Every number in the default report is deterministic given the
// Config, so two runs of the same sweep render byte-identical reports;
// timing=true appends the wall-clock throughput table, which is
// explicitly NOT deterministic.
func Report(w io.Writer, cfg Config, m Merged, timing bool) error {
	cfg, err := cfg.Normalize()
	if err != nil {
		return err
	}
	if !timing {
		m = m.Deterministic()
	}
	fmt.Fprintln(w, "# gsum sweep report")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "- matrix: workloads [%s] x backends [%s]", strings.Join(cfg.Workloads, " "), strings.Join(cfg.Backends, " "))
	if contains(cfg.Backends, "daemon") {
		fmt.Fprintf(w, " x transports [%s] (daemon only)", strings.Join(cfg.Transports, " "))
	}
	fmt.Fprintf(w, " x eps [%s] x workers [%s] = %d cells\n", joinFloats(cfg.Eps), joinInts(cfg.Workers), m.Total)
	fmt.Fprintf(w, "- stream: n=%d items=%d length=%d seed=%d", cfg.Stream.N, cfg.Stream.Items, cfg.Stream.Length, cfg.Stream.Seed)
	if cfg.Stream.Ticks > 0 {
		fmt.Fprintf(w, " ticks=%d", cfg.Stream.Ticks)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "- estimator: g=%s m=%d lambda=%s seed=%d", cfg.Spec.G, cfg.Spec.Options.M, fmtG(cfg.Spec.Options.Lambda), cfg.Spec.Options.Seed)
	if cfg.Spec.Window.W > 0 {
		fmt.Fprintf(w, " window=%d ticks", cfg.Spec.Window.W)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "- point queries: top %d true items vs a CountSketch drawn from seed %d\n", cfg.PointK, cfg.Spec.Options.Seed)
	fmt.Fprintf(w, "- collected: %d/%d cells\n", len(m.Cells), m.Total)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "## Accuracy")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| # | workload | backend | eps | w | updates | distinct | exact | estimate | rel err | pt mean err | pt max err | bytes |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|---|---|---|")
	for _, c := range m.Cells {
		backendLabel := c.Backend
		if c.Transport != "" {
			backendLabel += "/" + c.Transport
		}
		fmt.Fprintf(w, "| %d | %s | %s | %s | %d | %d | %d | %s | %s | %s | %s | %s | %d |\n",
			c.Index, c.Workload, backendLabel, fmtG(c.Eps), c.Workers, c.Updates, c.Distinct,
			fmtG(c.Exact), fmtG(c.Estimate), fmtG(c.RelErr), fmtG(c.PointMeanErr), fmtG(c.PointMaxErr), c.Space)
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "## Cross-backend equality")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Cells sharing (workload, eps) differ only in ingestion topology; the")
	fmt.Fprintln(w, "seed-discipline + linearity contract says their estimates are bit-identical.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| workload | eps | cells | estimates | equal |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	type groupKey struct {
		workload string
		eps      float64
	}
	groups := make(map[groupKey][]CellResult)
	var order []groupKey
	for _, c := range m.Cells {
		k := groupKey{c.Workload, c.Eps}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	allEqual := true
	for _, k := range order {
		cs := groups[k]
		distinct := []string{}
		seen := map[float64]bool{}
		for _, c := range cs {
			if !seen[c.Estimate] {
				seen[c.Estimate] = true
				distinct = append(distinct, fmtG(c.Estimate))
			}
		}
		verdict := "yes"
		if len(distinct) != 1 {
			verdict = "DIVERGED"
			allEqual = false
		}
		fmt.Fprintf(w, "| %s | %s | %d | %s | %s |\n", k.workload, fmtG(k.eps), len(cs), strings.Join(distinct, ", "), verdict)
	}
	if !allEqual {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "**WARNING: at least one group diverged — the equality contract is broken.**")
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "## Missing cells")
	fmt.Fprintln(w)
	if m.Complete() {
		fmt.Fprintln(w, "(none — every cell reported)")
	} else {
		for _, miss := range m.Missing {
			fmt.Fprintf(w, "- %s\n", miss)
		}
	}

	if timing {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "## Throughput (wall clock — not deterministic)")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| # | cell | updates/s | elapsed |")
		fmt.Fprintln(w, "|---|---|---|---|")
		for _, c := range m.Cells {
			fmt.Fprintf(w, "| %d | %s | %.0f | %v |\n",
				c.Index, c.ID, c.UpdatesPerSec, time.Duration(c.ElapsedNS).Round(time.Millisecond))
		}
	}
	return nil
}

// fmtG formats a float the way the whole report does: shortest
// round-trippable decimal, a pure function of the value.
func fmtG(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmtG(x)
	}
	return strings.Join(parts, " ")
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, " ")
}
