// Package sweep is the scenario sweep engine behind `gsum sweep`: a
// config-file-driven matrix runner that crosses workload scenarios,
// ingestion backends, accuracy targets, worker counts, and (for the
// daemon backend) wire transports into cells, fans the cells out across
// worker processes, and merges the per-cell JSON results into one
// deterministic markdown accuracy report.
//
// Layer: sweep sits above internal/workload (each cell is one RunBench
// invocation) and internal/backend (the sweep config embeds the
// canonical Spec JSON as the cell's estimator configuration); the CLI
// face is cmd/gsum's sweep subcommand.
//
// The contract mirrors the repository's test-first discipline:
//
//   - The cell list is a pure function of the Config — every process
//     that parses the same config file derives the same cells in the
//     same order, which is what lets single-cell worker invocations
//     (`gsum sweep -cell N`) and the merging parent agree by index.
//   - Every quantity in the default report is deterministic (estimates,
//     exact answers, point-query errors, space), so the report is
//     byte-identical across reruns of the same config; wall-clock
//     throughput is recorded in the per-cell files and shown only on
//     request.
//   - A cell that never reports — a crashed or killed worker — is
//     listed in the merge's Missing section by ID, never silently
//     dropped.
package sweep
