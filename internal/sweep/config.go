package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/workload"
)

// Config is the sweep matrix description parsed from the `gsum sweep -f`
// JSON file. The estimator block is the repository's canonical Spec JSON
// (the same encoding gsumd serves on /v1/config), the stream block is
// workload.Config, and the remaining fields are the matrix axes: every
// combination of workload x backend x (transport, daemon cells only) x
// eps x workers becomes one cell.
type Config struct {
	// Spec is the base estimator configuration for every cell. Kind is
	// derived per cell (onepass/parallel/window by backend and window
	// mode) and must be left empty or "onepass"; G is required. Options
	// defaults mirror `gsum bench`: M 1024, Lambda 1/16, and Seed
	// Stream.Seed*7 when zero. Spec.Window, when W > 0, switches every
	// cell to sliding-window mode over the last W ticks (K is the
	// histogram capacity).
	Spec backend.Spec `json:"spec"`
	// Stream is the scenario configuration shared by every cell.
	Stream workload.Config `json:"stream"`
	// Workloads names the scenario generators to sweep (workload.Names).
	Workloads []string `json:"workloads"`
	// Backends names the ingestion topologies (workload.Backends).
	Backends []string `json:"backends"`
	// Transports lists the daemon wire transports ("json", "stream");
	// it multiplies daemon cells only. Empty means ["json"].
	Transports []string `json:"transports,omitempty"`
	// Eps lists the accuracy targets to sweep.
	Eps []float64 `json:"eps"`
	// Workers lists the shard/daemon counts to sweep. Empty means [1].
	Workers []int `json:"workers,omitempty"`
	// Alpha overrides the skew exponent of the skew-parameterized
	// scenarios (zipf, bursty, permuted, diurnal). 0 keeps the
	// per-generator defaults.
	Alpha float64 `json:"alpha,omitempty"`
	// Trace is the CSV path for the trace scenario ("" = embedded trace).
	Trace string `json:"trace,omitempty"`
	// PointK is how many true top items each cell point-queries against
	// a CountSketch seeded with Spec.Options.Seed (0 = 16).
	PointK int `json:"point_k,omitempty"`
	// Procs caps concurrent worker processes (0 = GOMAXPROCS).
	Procs int `json:"procs,omitempty"`
}

// DefaultPointK is how many true top items a cell point-queries when the
// config does not say.
const DefaultPointK = 16

// ParseConfig decodes and normalizes a sweep config from JSON bytes.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("sweep: bad config JSON: %w", err)
	}
	return c.Normalize()
}

// ParseConfigFile reads and normalizes the sweep config at path.
func ParseConfigFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("sweep: %w", err)
	}
	c, err := ParseConfig(data)
	if err != nil {
		return Config{}, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return c, nil
}

// Normalize validates the config and resolves every defaulted field.
// Like backend.Spec.Normalize, invalid values are errors, never silent
// clamps — a bad axis value fails here, before any process is launched.
// The result is the canonical form every process derives the SAME cell
// list from (Cells is only meaningful on a normalized Config).
func (c Config) Normalize() (Config, error) {
	// In the stream block zero means "use the bench default", but an
	// explicit negative is a config error — fill only the zero fields
	// before validating, so `"items": -3` fails instead of silently
	// becoming 4096.
	d := workload.Config{}.WithDefaults()
	if c.Stream.N == 0 {
		c.Stream.N = d.N
	}
	if c.Stream.Items == 0 {
		c.Stream.Items = d.Items
	}
	if c.Stream.Length == 0 {
		c.Stream.Length = d.Length
	}
	if err := c.Stream.Validate(); err != nil {
		return Config{}, fmt.Errorf("sweep: stream: %w", err)
	}
	c.Stream = c.Stream.WithDefaults()
	if len(c.Workloads) == 0 {
		return Config{}, fmt.Errorf("sweep: workloads must name at least one scenario (%s)",
			strings.Join(workload.Names(), ", "))
	}
	for _, w := range c.Workloads {
		if _, ok := workload.Lookup(w); !ok {
			return Config{}, fmt.Errorf("sweep: unknown workload %q (available: %s)",
				w, strings.Join(workload.Names(), ", "))
		}
	}
	if c.Alpha != 0 {
		if err := workload.ValidateAlpha(c.Alpha); err != nil {
			return Config{}, fmt.Errorf("sweep: %w", err)
		}
	}
	if err := (workload.TraceReplay{Path: c.Trace}).Validate(); err != nil && hasWorkload(c.Workloads, "trace") {
		return Config{}, fmt.Errorf("sweep: %w", err)
	}
	if len(c.Backends) == 0 {
		return Config{}, fmt.Errorf("sweep: backends must name at least one topology (%s)",
			strings.Join(workload.Backends, ", "))
	}
	for _, b := range c.Backends {
		if !contains(workload.Backends, b) {
			return Config{}, fmt.Errorf("sweep: unknown backend %q (available: %s)",
				b, strings.Join(workload.Backends, ", "))
		}
	}
	if len(c.Transports) == 0 {
		c.Transports = []string{"json"}
	}
	for _, tr := range c.Transports {
		if tr != "json" && tr != "stream" {
			return Config{}, fmt.Errorf("sweep: unknown transport %q (json, stream)", tr)
		}
	}
	if len(c.Eps) == 0 {
		return Config{}, fmt.Errorf("sweep: eps must list at least one accuracy target")
	}
	for _, e := range c.Eps {
		if !(e > 0) || e >= 1 {
			return Config{}, fmt.Errorf("sweep: eps must be in (0, 1), got %v", e)
		}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
	}
	for _, w := range c.Workers {
		if w < 0 {
			return Config{}, fmt.Errorf("sweep: workers must be non-negative, got %d", w)
		}
	}
	if c.PointK <= 0 {
		c.PointK = DefaultPointK
	}
	if c.Procs < 0 {
		return Config{}, fmt.Errorf("sweep: procs must be non-negative, got %d", c.Procs)
	}

	// The estimator block: fill the gsum-bench defaults, then prove the
	// whole Spec resolves by normalizing a probe for the first cell.
	if c.Spec.Kind != "" && c.Spec.Kind != backend.KindOnePass {
		return Config{}, fmt.Errorf("sweep: spec.kind is derived per cell; leave it empty or %q, got %q",
			backend.KindOnePass, c.Spec.Kind)
	}
	c.Spec.Kind = backend.KindOnePass
	if c.Spec.G == "" {
		return Config{}, fmt.Errorf("sweep: spec.g must name a catalog function")
	}
	if c.Spec.Options.M == 0 {
		c.Spec.Options.M = 1 << 10
	}
	if c.Spec.Options.Seed == 0 {
		c.Spec.Options.Seed = c.Stream.Seed * 7
	}
	if c.Spec.Options.Lambda == 0 {
		c.Spec.Options.Lambda = 1.0 / 16
	}
	if w := c.Spec.Window.W; w > 0 {
		if c.Stream.Ticks == 0 {
			c.Stream.Ticks = workload.DefaultTicks
		}
		if w >= uint64(c.Stream.Ticks) {
			return Config{}, fmt.Errorf("sweep: window %d must be shorter than the stream's %d ticks",
				w, c.Stream.Ticks)
		}
		if contains(c.Backends, "sharded") {
			return Config{}, fmt.Errorf("sweep: the sharded backend does not support windowed runs; drop it from backends or the window from the spec")
		}
	}
	probe := c.Spec
	probe.Options.N = c.Stream.N
	probe.Options.Eps = c.Eps[0]
	if _, err := probe.Normalize(); err != nil {
		return Config{}, fmt.Errorf("sweep: spec: %w", err)
	}
	return c, nil
}

func hasWorkload(ws []string, name string) bool { return contains(ws, name) }

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Cell is one point of the sweep matrix. The cell list — and therefore
// every Index — is a pure function of the normalized Config, which is
// the contract that lets a worker process told only "-cell N" agree with
// the merging parent about what N means.
type Cell struct {
	Index     int     `json:"index"`
	Workload  string  `json:"workload"`
	Backend   string  `json:"backend"`
	Transport string  `json:"transport,omitempty"`
	Eps       float64 `json:"eps"`
	Workers   int     `json:"workers"`
}

// ID is the cell's human-readable identity, used in the report and the
// missing-cell listing.
func (c Cell) ID() string {
	b := c.Backend
	if c.Transport != "" {
		b += "/" + c.Transport
	}
	return fmt.Sprintf("%s %s eps=%g w=%d", c.Workload, b, c.Eps, c.Workers)
}

// Cells enumerates the matrix in deterministic order: workloads outermost
// (as listed), then backends, transports (daemon cells only), eps,
// workers. Call it on a normalized Config.
func (c Config) Cells() []Cell {
	var cells []Cell
	for _, w := range c.Workloads {
		for _, b := range c.Backends {
			trs := []string{""}
			if b == "daemon" {
				trs = c.Transports
			}
			for _, tr := range trs {
				for _, e := range c.Eps {
					for _, wk := range c.Workers {
						cells = append(cells, Cell{
							Index: len(cells), Workload: w, Backend: b,
							Transport: tr, Eps: e, Workers: wk,
						})
					}
				}
			}
		}
	}
	return cells
}

// Generator resolves a sweep workload name to a configured generator:
// the catalog entry with the config's skew override applied to the
// skew-parameterized scenarios, the adversarial scenario aimed at the
// sweep's own sketch seed (so the attack in the report is against the
// very CountSketch the point queries use), and the trace scenario
// pointed at the configured CSV. Call it on a normalized Config.
func (c Config) Generator(name string) (workload.Generator, error) {
	gen, ok := workload.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sweep: unknown workload %q", name)
	}
	if c.Alpha > 0 {
		switch name {
		case "zipf":
			gen = workload.Zipf{Alpha: c.Alpha}
		case "bursty":
			gen = workload.Bursty{Alpha: c.Alpha}
		case "permuted":
			gen = workload.PermutedReplay{Inner: workload.Zipf{Alpha: c.Alpha}}
		case "diurnal":
			gen = workload.Diurnal{Alpha: c.Alpha}
		}
	}
	switch name {
	case "adversarial":
		gen = workload.Adversarial{SketchSeed: c.Spec.Options.Seed}
	case "trace":
		if c.Trace != "" {
			gen = workload.TraceReplay{Path: c.Trace}
		}
	}
	return gen, nil
}

// Smoke returns the built-in `gsum sweep -smoke` matrix: a benign and an
// adversarial scenario through the in-process backends, small enough for
// a CI short-mode step.
func Smoke() Config {
	c, err := Config{
		Spec:      backend.Spec{G: "x^2"},
		Stream:    workload.Config{N: 1 << 16, Items: 512, Length: 20000, Seed: 1},
		Workloads: []string{"zipf", "adversarial"},
		Backends:  []string{"serial", "parallel", "sharded"},
		Eps:       []float64{0.25},
		Workers:   []int{2},
		PointK:    8,
	}.Normalize()
	if err != nil {
		panic("sweep: built-in smoke config invalid: " + err.Error())
	}
	return c
}
