package hotpath

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/stream"
)

// Shard is what the sharded facade demands of one shard estimator. It
// is structurally the backend Estimator contract (this package cannot
// import backend — backend registers the sharded kind and imports this
// package), and backend.Open values satisfy it directly.
type Shard interface {
	Update(item uint64, delta int64)
	UpdateBatch(batch []stream.Update)
	Estimate() float64
	SpaceBytes() int
	Fingerprint() uint64
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
}

// Config parameterizes New.
type Config struct {
	// Shards is the shard (and Process consumer) count; < 1 means
	// GOMAXPROCS.
	Shards int
	// RingDepth is the slot count of each shard's ring (0 = 64 slots;
	// rounded up to a power of two). Deeper rings absorb burstier
	// routing imbalance before producers stall.
	RingDepth int
	// BatchSize is how many routed updates a producer buffers per shard
	// before publishing the batch (0 = engine.DefaultBatchSize / 4;
	// smaller batches keep shards busier, larger ones amortize the ring
	// handoff).
	BatchSize int
	// NewShard opens one shard estimator. Every call MUST return an
	// identically-configured instance (same Spec, hence same seeds) —
	// that is the seed discipline the bit-identity contract rests on,
	// and backend.Open from one normalized Spec provides it.
	NewShard func() (Shard, error)
	// Merge folds src into dst in memory. Optional: when nil, merging
	// goes through MarshalBinary/UnmarshalBinary (the wire format's
	// merge-on-decode semantics), which is correct but slower.
	Merge func(dst, src Shard) error
}

// Stats is a snapshot of the ring-layer counters, summed over the shard
// rings. Cumulative fields survive across Process calls; Occupancy is
// live (0 while no Process is running).
type Stats struct {
	Shards    int
	RingDepth int
	// Occupancy is the number of published-but-unconsumed batches
	// currently sitting in rings.
	Occupancy uint64
	// Batches and Updates count everything published to rings.
	Batches uint64
	Updates uint64
	// ProducerStalls and ConsumerStalls count spin-yield iterations
	// spent waiting on a full (producer side) or empty (consumer side)
	// ring — the backpressure signal.
	ProducerStalls uint64
	ConsumerStalls uint64
}

// ShardedEstimator owns P identically-configured shard estimators and
// routes every update to shard hash(item) mod P. Process ingests
// concurrently through per-shard rings; Update/UpdateBatch route
// synchronously. Estimate and MarshalBinary fold the shards into a
// fresh estimator built by the same factory, so they are repeatable and
// leave the shards untouched, and the marshaled snapshot is the SAME
// wire format as a single shard's — a sharded worker interoperates with
// serial peers on the wire.
//
// Like every estimator in the repository, a ShardedEstimator is not
// goroutine-safe from the caller's side: Process parallelizes
// internally, but concurrent method calls need external serialization
// (the daemon's state lock provides it). Stats alone is safe to call
// concurrently with Process.
type ShardedEstimator struct {
	shards    []Shard
	newShard  func() (Shard, error)
	merge     func(dst, src Shard) error
	ringDepth int
	batchSize int

	// route is reusable synchronous-path scratch: one buffer per shard.
	route [][]stream.Update

	// live points at the rings of an in-flight Process call (nil
	// otherwise); cumulative counters absorb ring totals as each call
	// finishes. Both are read by Stats, possibly from a metrics scrape
	// while a bench Process runs, hence the atomics.
	live      atomic.Pointer[[]*Ring]
	batches   atomic.Uint64
	updates   atomic.Uint64
	prodStall atomic.Uint64
	consStall atomic.Uint64

	// pool recycles batch buffers between producers and consumers.
	pool sync.Pool
}

// New builds a ShardedEstimator by calling cfg.NewShard once per shard.
func New(cfg Config) (*ShardedEstimator, error) {
	if cfg.NewShard == nil {
		return nil, fmt.Errorf("hotpath: Config.NewShard is required")
	}
	p := engine.Workers(cfg.Shards)
	depth := cfg.RingDepth
	if depth <= 0 {
		depth = 64
	}
	bs := cfg.BatchSize
	if bs <= 0 {
		bs = engine.DefaultBatchSize / 4
	}
	se := &ShardedEstimator{
		shards:    make([]Shard, p),
		newShard:  cfg.NewShard,
		merge:     cfg.Merge,
		ringDepth: depth,
		batchSize: bs,
		route:     make([][]stream.Update, p),
	}
	se.pool.New = func() any { return make([]stream.Update, 0, bs) }
	for i := range se.shards {
		s, err := cfg.NewShard()
		if err != nil {
			return nil, fmt.Errorf("hotpath: shard %d: %w", i, err)
		}
		se.shards[i] = s
	}
	return se, nil
}

// Shards returns the shard count.
func (se *ShardedEstimator) Shards() int { return len(se.shards) }

// shardOf routes an item: a strong multiplicative mix (the SplitMix64
// finalizer) over the item, reduced mod P. Routing must be a pure
// function of the item — that is what makes the partition a disjoint
// split of the frequency vector — and mixing first keeps structured
// domains (sequential IDs, strided keys) from aliasing onto one shard.
func (se *ShardedEstimator) shardOf(item uint64) int {
	x := item
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(se.shards)))
}

// Update routes one update to its shard synchronously.
func (se *ShardedEstimator) Update(item uint64, delta int64) {
	se.shards[se.shardOf(item)].Update(item, delta)
}

// UpdateBatch partitions the batch by item hash and applies each
// sub-batch to its shard, on the calling goroutine. Within a shard the
// original update order is preserved, so the counter state equals the
// equivalent sequence of Update calls exactly.
func (se *ShardedEstimator) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	if len(se.shards) == 1 {
		se.shards[0].UpdateBatch(batch)
		return
	}
	for i := range se.route {
		se.route[i] = se.route[i][:0]
	}
	for _, u := range batch {
		s := se.shardOf(u.Item)
		se.route[s] = append(se.route[s], u)
	}
	for i, sub := range se.route {
		if len(sub) > 0 {
			se.shards[i].UpdateBatch(sub)
		}
	}
}

// Process ingests the whole update slice through the concurrent path:
// one producer per shard routes its contiguous chunk into per-shard
// rings, one consumer per shard drains its ring into the shard sketch,
// and Process returns only after every goroutine has joined — no
// goroutine outlives the call. Because routing is per-item, the shard
// states (and therefore the merged estimate) do not depend on producer
// count, chunk boundaries, or scheduling.
func (se *ShardedEstimator) Process(updates []stream.Update) error {
	p := len(se.shards)
	if p == 1 || len(updates) < 2*se.batchSize {
		engine.Ingest(se, updates, 0)
		return nil
	}

	rings := make([]*Ring, p)
	for i := range rings {
		rings[i] = NewRing(se.ringDepth)
	}
	se.live.Store(&rings)

	var consumers sync.WaitGroup
	for i := 0; i < p; i++ {
		consumers.Add(1)
		go func(i int) {
			defer consumers.Done()
			r, sh := rings[i], se.shards[i]
			for {
				b, ok := r.Dequeue()
				if !ok {
					return
				}
				sh.UpdateBatch(b)
				se.pool.Put(b[:0])
			}
		}(i)
	}

	engine.ParallelChunks(updates, p, func(_ int, chunk []stream.Update) {
		local := make([][]stream.Update, p)
		for i := range local {
			local[i] = se.pool.Get().([]stream.Update)
		}
		for _, u := range chunk {
			s := se.shardOf(u.Item)
			local[s] = append(local[s], u)
			if len(local[s]) == se.batchSize {
				rings[s].Enqueue(local[s])
				local[s] = se.pool.Get().([]stream.Update)
			}
		}
		for s, b := range local {
			if len(b) > 0 {
				rings[s].Enqueue(b)
			} else {
				se.pool.Put(b[:0])
			}
		}
	})

	for _, r := range rings {
		r.Close()
	}
	consumers.Wait()
	se.live.Store(nil)
	for _, r := range rings {
		se.batches.Add(r.batches.Load())
		se.updates.Add(r.updates.Load())
		se.prodStall.Add(r.producerStalls.Load())
		se.consStall.Add(r.consumerStalls.Load())
	}
	return nil
}

// Stats sums the ring counters: cumulative totals from finished Process
// calls plus the live rings of one in flight.
func (se *ShardedEstimator) Stats() Stats {
	st := Stats{
		Shards:         len(se.shards),
		RingDepth:      se.ringDepth,
		Batches:        se.batches.Load(),
		Updates:        se.updates.Load(),
		ProducerStalls: se.prodStall.Load(),
		ConsumerStalls: se.consStall.Load(),
	}
	if rings := se.live.Load(); rings != nil {
		for _, r := range *rings {
			st.Occupancy += r.Occupancy()
			st.Batches += r.batches.Load()
			st.Updates += r.updates.Load()
			st.ProducerStalls += r.producerStalls.Load()
			st.ConsumerStalls += r.consumerStalls.Load()
		}
	}
	return st
}

// merged folds every shard into a fresh estimator from the factory.
// The shards are never mutated, so merged is repeatable: calling
// Estimate between Process calls always reflects exactly the updates
// applied so far.
func (se *ShardedEstimator) merged() (Shard, error) {
	dst, err := se.newShard()
	if err != nil {
		return nil, fmt.Errorf("hotpath: merge target: %w", err)
	}
	for i, sh := range se.shards {
		if se.merge != nil {
			err = se.merge(dst, sh)
		} else {
			var blob []byte
			if blob, err = sh.MarshalBinary(); err == nil {
				err = dst.UnmarshalBinary(blob)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("hotpath: merge shard %d: %w", i, err)
		}
	}
	return dst, nil
}

// Estimate merges the shards and answers from the union state — by
// linearity, exactly the serial estimator's answer over the same
// updates. Shards are identically configured by the NewShard contract,
// so the merge cannot fail except for a broken factory; that is a
// programming error and panics rather than returning a silent garbage
// estimate.
func (se *ShardedEstimator) Estimate() float64 {
	m, err := se.merged()
	if err != nil {
		panic("hotpath: Estimate: " + err.Error())
	}
	return m.Estimate()
}

// SpaceBytes reports the total sketch state across shards.
func (se *ShardedEstimator) SpaceBytes() int {
	total := 0
	for _, sh := range se.shards {
		total += sh.SpaceBytes()
	}
	return total
}

// Fingerprint is the shards' common seed fingerprint (they are
// identically configured), which is also the fingerprint of the merged
// snapshot MarshalBinary emits.
func (se *ShardedEstimator) Fingerprint() uint64 {
	return se.shards[0].Fingerprint()
}

// MarshalBinary snapshots the merged state in the shard kind's own wire
// format: a sharded worker's snapshot decodes anywhere a serial one
// does.
func (se *ShardedEstimator) MarshalBinary() ([]byte, error) {
	m, err := se.merged()
	if err != nil {
		return nil, err
	}
	return m.MarshalBinary()
}

// UnmarshalBinary folds a snapshot INTO the estimator (merge
// semantics, like every wire decode in the repository) by applying it
// to shard 0 — linearity makes any shard as good as any other.
func (se *ShardedEstimator) UnmarshalBinary(data []byte) error {
	return se.shards[0].UnmarshalBinary(data)
}
