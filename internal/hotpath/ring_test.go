package hotpath

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/stream"
)

// tag encodes (producer, sequence) into one update so a drained batch
// identifies exactly who published it and in what order.
func tag(producer, seq int) []stream.Update {
	return []stream.Update{{Item: uint64(producer), Delta: int64(seq)}}
}

func TestRingDepthRounding(t *testing.T) {
	for _, tc := range []struct{ want, depth int }{
		{2, 0}, {2, 1}, {2, 2}, {4, 3}, {64, 64}, {128, 65},
	} {
		if got := NewRing(tc.depth).Depth(); got != tc.want {
			t.Errorf("NewRing(%d).Depth() = %d, want %d", tc.depth, got, tc.want)
		}
	}
}

func TestRingFIFOSingleProducer(t *testing.T) {
	r := NewRing(4) // much smaller than the batch count: wrap-around is exercised
	done := make(chan []int)
	go func() {
		var got []int
		for {
			b, ok := r.Dequeue()
			if !ok {
				break
			}
			got = append(got, int(b[0].Delta))
		}
		done <- got
	}()
	const n = 1000
	for i := 0; i < n; i++ {
		r.Enqueue(tag(0, i))
	}
	r.Close()
	got := <-done
	if len(got) != n {
		t.Fatalf("drained %d batches, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("batch %d has seq %d: single-producer FIFO violated", i, seq)
		}
	}
}

// TestRingConcurrentProducers is the MPSC property test: several
// producers hammer one small ring (so backpressure genuinely engages)
// and the consumer must see every batch exactly once, with each
// producer's batches in publication order.
func TestRingConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 500
	r := NewRing(8)
	done := make(chan map[int][]int)
	go func() {
		seen := make(map[int][]int)
		for {
			b, ok := r.Dequeue()
			if !ok {
				break
			}
			p := int(b[0].Item)
			seen[p] = append(seen[p], int(b[0].Delta))
		}
		done <- seen
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.Enqueue(tag(p, i))
			}
		}(p)
	}
	wg.Wait()
	r.Close()
	seen := <-done
	for p := 0; p < producers; p++ {
		got := seen[p]
		if len(got) != perProducer {
			t.Fatalf("producer %d: %d batches survived, want %d (lost or duplicated)", p, len(got), perProducer)
		}
		for i, seq := range got {
			if seq != i {
				t.Fatalf("producer %d: batch %d has seq %d: reordered within producer", p, i, seq)
			}
		}
	}
	st := r.batches.Load()
	if want := uint64(producers * perProducer); st != want {
		t.Fatalf("ring counted %d batches, want %d", st, want)
	}
}

// TestRingEnqueueN checks the batched claim: one fetch-add reserves the
// whole run and the run drains in order.
func TestRingEnqueueN(t *testing.T) {
	r := NewRing(16)
	var run [][]stream.Update
	for i := 0; i < 10; i++ {
		run = append(run, tag(0, i))
	}
	done := make(chan []int)
	go func() {
		var got []int
		for {
			b, ok := r.Dequeue()
			if !ok {
				break
			}
			got = append(got, int(b[0].Delta))
		}
		done <- got
	}()
	r.EnqueueN(run)
	r.EnqueueN(nil) // no-op
	r.Close()
	got := <-done
	if len(got) != 10 {
		t.Fatalf("drained %d, want 10", len(got))
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("EnqueueN batch %d has seq %d", i, seq)
		}
	}
}

func TestRingTryOps(t *testing.T) {
	r := NewRing(2)
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("TryDequeue on an empty ring reported ok")
	}
	if !r.TryEnqueue(tag(0, 0)) || !r.TryEnqueue(tag(0, 1)) {
		t.Fatal("TryEnqueue failed with free slots")
	}
	if r.TryEnqueue(tag(0, 2)) {
		t.Fatal("TryEnqueue succeeded on a full ring")
	}
	if r.Occupancy() != 2 {
		t.Fatalf("Occupancy = %d, want 2", r.Occupancy())
	}
	b, ok := r.TryDequeue()
	if !ok || b[0].Delta != 0 {
		t.Fatalf("TryDequeue = (%v, %v), want seq 0", b, ok)
	}
	// The freed slot is immediately claimable again (wrap-around).
	if !r.TryEnqueue(tag(0, 2)) {
		t.Fatal("TryEnqueue failed after a slot was released")
	}
	for want := 1; want <= 2; want++ {
		if b, ok = r.TryDequeue(); !ok || int(b[0].Delta) != want {
			t.Fatalf("TryDequeue = (%v, %v), want seq %d", b, ok, want)
		}
	}
}

func TestRingCloseDrainsRemainder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Enqueue(tag(0, i))
	}
	r.Close()
	for i := 0; i < 5; i++ {
		b, ok := r.Dequeue()
		if !ok || int(b[0].Delta) != i {
			t.Fatalf("Dequeue %d after Close = (%v, %v)", i, b, ok)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("Dequeue reported ok on a closed, drained ring")
	}
}

// TestRingBackpressureNotDrops pins the contract: a full ring makes the
// producer WAIT (stall counter moves) rather than dropping the batch.
func TestRingBackpressureNotDrops(t *testing.T) {
	r := NewRing(2)
	done := make(chan int)
	go func() {
		// Hold off draining until the producer has demonstrably stalled:
		// with 2 slots and 64 batches it must block, not drop.
		for r.producerStalls.Load() == 0 {
			runtime.Gosched()
		}
		n := 0
		for {
			if _, ok := r.Dequeue(); !ok {
				break
			}
			n++
		}
		done <- n
	}()
	go func() {
		for i := 0; i < 64; i++ {
			r.Enqueue(tag(0, i)) // blocks once the 2 slots fill
		}
		r.Close()
	}()
	if n := <-done; n != 64 {
		t.Fatalf("consumer saw %d batches, want all 64", n)
	}
	if r.producerStalls.Load() == 0 {
		t.Fatal("producer never stalled pushing 64 batches through a 2-slot ring")
	}
}
