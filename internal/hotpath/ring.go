package hotpath

import (
	"runtime"
	"sync/atomic"

	"repro/internal/stream"
)

// Ring is a bounded, lock-free multi-producer single-consumer queue of
// update batches, after Vyukov's bounded MPMC design specialized to one
// consumer. Each slot carries a sequence number that encodes whose turn
// the slot is: producers claim positions with a fetch-add on the enqueue
// cursor, wait for their slot's sequence to come around (a full ring is
// backpressure, not a drop), write the batch, and publish with a release
// store of seq = pos + 1; the consumer waits for seq == pos + 1, takes
// the batch, and releases the slot with seq = pos + depth. All handoff
// is acquire/release through the per-slot atomics — no locks, and no
// producer ever writes a cursor another producer spins on.
//
// The zero value is not usable; see NewRing.
type Ring struct {
	mask  uint64
	slots []ringSlot

	// Producer and consumer cursors live on their own cache lines so
	// producers hammering enq never invalidate the consumer's line.
	_   [64]byte
	enq atomic.Uint64
	_   [64]byte
	deq atomic.Uint64 // written by the single consumer only
	_   [64]byte

	closed atomic.Bool

	// Stall and throughput counters (atomic; safe to read while the ring
	// is live). A "stall" is one spin-yield iteration, so the counters
	// measure time wasted waiting, not just how often waits happened.
	producerStalls atomic.Uint64
	consumerStalls atomic.Uint64
	batches        atomic.Uint64 // batches published
	updates        atomic.Uint64 // updates inside published batches
}

// ringSlot is one queue cell: the sequence atomic plus the batch slice
// header, padded to a full cache line so neighboring slots never share
// one (false sharing between a publishing producer and the consumer).
type ringSlot struct {
	seq   atomic.Uint64
	batch []stream.Update
	_     [64 - 8 - 24]byte
}

// NewRing returns a ring with at least the requested number of slots
// (rounded up to a power of two, minimum 2).
func NewRing(depth int) *Ring {
	n := 2
	for n < depth {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Depth returns the slot count.
func (r *Ring) Depth() int { return len(r.slots) }

// Occupancy returns the number of claimed-but-unconsumed slots. It is a
// racy snapshot, meant for metrics.
func (r *Ring) Occupancy() uint64 {
	e, d := r.enq.Load(), r.deq.Load()
	if e < d {
		return 0
	}
	return e - d
}

// Enqueue publishes one batch, blocking (spin + Gosched, counted as
// producer stalls) while the ring is full. Ownership of the batch slice
// transfers to the consumer. Enqueue must not be called after Close.
func (r *Ring) Enqueue(batch []stream.Update) {
	pos := r.enq.Add(1) - 1
	r.publish(pos, batch)
}

// EnqueueN publishes a run of batches with a single claim: one
// fetch-add reserves len(batches) consecutive slots, then each slot is
// published in order. Claiming once amortizes the contended atomic
// across the run, which is the point of batched claim/publish.
func (r *Ring) EnqueueN(batches [][]stream.Update) {
	if len(batches) == 0 {
		return
	}
	pos := r.enq.Add(uint64(len(batches))) - uint64(len(batches))
	for i, b := range batches {
		r.publish(pos+uint64(i), b)
	}
}

// publish waits for slot ownership at pos and release-stores the batch.
func (r *Ring) publish(pos uint64, batch []stream.Update) {
	slot := &r.slots[pos&r.mask]
	for slot.seq.Load() != pos {
		r.producerStalls.Add(1)
		runtime.Gosched()
	}
	slot.batch = batch
	slot.seq.Store(pos + 1)
	r.batches.Add(1)
	r.updates.Add(uint64(len(batch)))
}

// TryEnqueue publishes one batch without blocking; it reports false when
// the ring is full. Unlike Enqueue it claims with a CAS, so a failed
// attempt leaves no slot reserved. It may be mixed freely with
// Enqueue/EnqueueN.
func (r *Ring) TryEnqueue(batch []stream.Update) bool {
	for {
		pos := r.enq.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.batch = batch
				slot.seq.Store(pos + 1)
				r.batches.Add(1)
				r.updates.Add(uint64(len(batch)))
				return true
			}
			// Another producer took pos; retry at the new cursor.
		case seq < pos:
			// The consumer has not released this slot: the ring is full.
			return false
		default:
			// seq > pos: the cursor moved under us; reload.
		}
	}
}

// Close marks the ring as finished. After every producer has returned,
// Close makes Dequeue drain the remaining batches and then report
// ok == false instead of blocking forever.
func (r *Ring) Close() { r.closed.Store(true) }

// Dequeue takes the next batch, blocking (spin + Gosched, counted as
// consumer stalls) while the ring is empty. It returns ok == false once
// the ring is closed and fully drained. Single consumer only.
func (r *Ring) Dequeue() (batch []stream.Update, ok bool) {
	pos := r.deq.Load()
	slot := &r.slots[pos&r.mask]
	for {
		if slot.seq.Load() == pos+1 {
			break
		}
		// Claimed-but-unpublished slots (enq past pos) still get waited
		// for: closed only ends the stream at a quiesced cursor.
		if r.closed.Load() && r.enq.Load() == pos {
			return nil, false
		}
		r.consumerStalls.Add(1)
		runtime.Gosched()
	}
	batch = slot.batch
	slot.batch = nil
	slot.seq.Store(pos + uint64(len(r.slots)))
	r.deq.Store(pos + 1)
	return batch, true
}

// TryDequeue takes the next batch without blocking; ok is false when no
// published batch is ready. Single consumer only.
func (r *Ring) TryDequeue() (batch []stream.Update, ok bool) {
	pos := r.deq.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return nil, false
	}
	batch = slot.batch
	slot.batch = nil
	slot.seq.Store(pos + uint64(len(r.slots)))
	r.deq.Store(pos + 1)
	return batch, true
}
