// Package hotpath is the lock-free sharded ingest subsystem: per-core
// estimator shards fed through bounded MPSC ring buffers, behind a
// single estimator facade whose merged result is bit-identical to
// serial ingestion.
//
// The paper's sketches are linear in the frequency vector, so a stream
// can be partitioned by ITEM (every update to item x lands in shard
// hash(x) mod P) instead of by position: each shard sees a disjoint
// sub-stream, identically-seeded shard sketches accumulate disjoint
// counter contributions, and folding the shards is exactly the serial
// counter state. Shard-by-hash is what lets the concurrent path keep
// the repo's serial==parallel exactness contract while chasing line
// rate — arrival-order nondeterminism inside a shard cannot change a
// linear counter, and every update of one item is applied by exactly
// one goroutine.
//
// Two pieces:
//
//   - Ring: a bounded multi-producer single-consumer ring buffer in the
//     style of Vyukov's bounded MPMC queue — per-slot sequence numbers
//     carry the acquire/release handoff, slots are cache-line padded,
//     producers claim with one atomic add (batched claim: one add for k
//     slots) and publish with one release store, and a full ring means
//     BACKPRESSURE (spin with runtime.Gosched, counted as a stall),
//     never a dropped batch.
//
//   - ShardedEstimator: owns P identically-configured shard estimators
//     (P = GOMAXPROCS unless configured). Process fans the stream out
//     through one ring per shard — N producers route (item, delta)
//     batches by hash, one consumer goroutine per shard drains its ring
//     into the shard sketch — and joins before returning, so no
//     goroutine outlives the call. Update/UpdateBatch route
//     synchronously (the daemon applies under its state lock, where
//     concurrency would buy nothing), and Estimate/MarshalBinary fold
//     the shards into a fresh estimator, leaving the shards untouched.
//
// Layer: between engine (chunking, worker resolution) and backend (the
// registry opens the shards and registers the "sharded" kind). This
// package never learns concrete sketch types — shards are anything
// satisfying the Shard contract — so it has no seed discipline of its
// own; the factory that opens the shards must hand out
// identically-configured (same Options, same Seed) estimators, which
// backend.Open does by construction.
package hotpath
