package hotpath

import (
	"testing"

	"repro/internal/stream"
)

// FuzzRingSequencing drives the ring's claim/publish/release sequencing
// against a model queue. The fuzzer picks the ring depth and an
// arbitrary interleaving of single enqueues, batched (EnqueueN) claims,
// and dequeues; the ring must agree with the model on every
// full/empty decision and on every dequeued value — i.e. the slot
// sequence arithmetic (including wrap-around past the cursor widths'
// modular boundary at small depths) never loses, duplicates, or
// reorders a batch.
func FuzzRingSequencing(f *testing.F) {
	f.Add(uint8(0), []byte{0, 0, 1, 0, 1, 1})
	f.Add(uint8(1), []byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1})
	f.Add(uint8(3), []byte{2, 1, 2, 1, 1, 0, 1})
	f.Add(uint8(2), []byte{3, 1, 1, 1, 3, 1, 0, 2, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, depthSel uint8, ops []byte) {
		depth := 2 << (depthSel % 4) // 2, 4, 8, 16
		r := NewRing(depth)
		var model []int
		next := 0
		enqueue := func(v int) []stream.Update { return []stream.Update{{Delta: int64(v)}} }
		for _, op := range ops {
			switch op % 4 {
			case 0: // TryEnqueue: must succeed iff the model has room
				ok := r.TryEnqueue(enqueue(next))
				if want := len(model) < depth; ok != want {
					t.Fatalf("TryEnqueue ok=%v with %d/%d occupied", ok, len(model), depth)
				}
				if ok {
					model = append(model, next)
					next++
				}
			case 1: // TryDequeue: must succeed iff the model is non-empty
				v, ok := r.TryDequeue()
				if want := len(model) > 0; ok != want {
					t.Fatalf("TryDequeue ok=%v with %d occupied", ok, len(model))
				}
				if ok {
					if int(v[0].Delta) != model[0] {
						t.Fatalf("dequeued %d, model head %d", v[0].Delta, model[0])
					}
					model = model[1:]
				}
			case 2: // blocking Enqueue, only when room is guaranteed
				if len(model) < depth {
					r.Enqueue(enqueue(next))
					model = append(model, next)
					next++
				}
			case 3: // batched claim: a run sized to the remaining room
				room := depth - len(model)
				k := room/2 + room%2
				if k == 0 {
					continue
				}
				run := make([][]stream.Update, k)
				for i := range run {
					run[i] = enqueue(next)
					model = append(model, next)
					next++
				}
				r.EnqueueN(run)
			}
			if occ := r.Occupancy(); occ != uint64(len(model)) {
				t.Fatalf("Occupancy %d, model %d", occ, len(model))
			}
		}
		// Drain: everything still queued must come out in model order.
		r.Close()
		for _, want := range model {
			v, ok := r.Dequeue()
			if !ok || int(v[0].Delta) != want {
				t.Fatalf("drain: got (%v, %v), want %d", v, ok, want)
			}
		}
		if _, ok := r.Dequeue(); ok {
			t.Fatal("drain: ring had more than the model")
		}
	})
}
