package hotpath_test

// The bit-identity acceptance tests for the sharded hot path: for EVERY
// workload generator in the catalog, the ring-fed concurrent ingest
// (backend.Process on the sharded kind), the synchronous routed path
// (UpdateBatch), and several shard counts must reproduce the serial
// one-pass estimate and marshaled snapshot bit for bit. They live in an
// external test package so they can open estimators through the backend
// registry — the same construction path every frontend uses — without
// creating an import cycle (backend imports hotpath).

import (
	"bytes"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hotpath"
	"repro/internal/workload"
)

var shardedTestCfg = workload.Config{N: 1 << 12, Items: 200, Length: 8000, Seed: 5}

func shardedTestSpec(workers int) backend.Spec {
	return backend.Spec{
		Kind: backend.KindSharded, G: "x^2", Workers: workers,
		Options: core.Options{N: shardedTestCfg.N, M: 1 << 10, Eps: 0.25, Seed: 21, Lambda: 1.0 / 16},
	}
}

// serialReference ingests the generator's stream through the serial
// onepass kind and returns its estimate and snapshot.
func serialReference(t *testing.T, gen workload.Generator) (float64, []byte) {
	t.Helper()
	sp := shardedTestSpec(0)
	sp.Kind = backend.KindOnePass
	sp.Workers = 0
	e, err := backend.Open(sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Process(e, gen.Generate(shardedTestCfg)); err != nil {
		t.Fatal(err)
	}
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return e.Estimate(), blob
}

// TestShardedMatchesSerialEveryWorkload is the tentpole property test:
// estimates AND marshaled snapshots bit-identical to serial for every
// generator in the catalog, across shard counts, through the concurrent
// ring path. Run it under -race to also exercise the ring handoff.
func TestShardedMatchesSerialEveryWorkload(t *testing.T) {
	for _, gen := range workload.Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			wantEst, wantBlob := serialReference(t, gen)
			for _, workers := range []int{1, 2, 4, 8} {
				e, err := backend.Open(shardedTestSpec(workers))
				if err != nil {
					t.Fatal(err)
				}
				if err := backend.Process(e, gen.Generate(shardedTestCfg)); err != nil {
					t.Fatal(err)
				}
				if got := e.Estimate(); got != wantEst {
					t.Fatalf("workers=%d: estimate %v != serial %v", workers, got, wantEst)
				}
				blob, err := e.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(blob, wantBlob) {
					t.Fatalf("workers=%d: marshaled snapshot differs from serial (%d vs %d bytes)",
						workers, len(blob), len(wantBlob))
				}
			}
		})
	}
}

// TestShardedSynchronousPathMatchesSerial covers the routed
// Update/UpdateBatch path (what the daemon's ingest handlers drive)
// rather than the ring path.
func TestShardedSynchronousPathMatchesSerial(t *testing.T) {
	gen := workload.Zipf{Alpha: 1.1}
	wantEst, wantBlob := serialReference(t, gen)
	e, err := backend.Open(shardedTestSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Generate(shardedTestCfg)
	// Half through UpdateBatch chunks, half through single Updates: both
	// entry points must land in the same shard state.
	updates := s.Updates()
	half := len(updates) / 2
	engine.Ingest(e, updates[:half], 0)
	for _, u := range updates[half:] {
		e.Update(u.Item, u.Delta)
	}
	if got := e.Estimate(); got != wantEst {
		t.Fatalf("estimate %v != serial %v", got, wantEst)
	}
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, wantBlob) {
		t.Fatal("marshaled snapshot differs from serial")
	}
}

// TestShardedUnmarshalMerges: decoding a snapshot folds it INTO the
// receiver (merge semantics), so two sharded workers combine to the
// serial estimate over the union stream — the distributed contract.
func TestShardedUnmarshalMerges(t *testing.T) {
	gen := workload.Uniform{}
	s := gen.Generate(shardedTestCfg)
	updates := s.Updates()
	half := len(updates) / 2

	sp := shardedTestSpec(3)
	a, err := backend.Open(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.Open(sp)
	if err != nil {
		t.Fatal(err)
	}
	engine.Ingest(a, updates[:half], 0)
	engine.Ingest(b, updates[half:], 0)
	blob, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	wantEst, _ := serialReference(t, gen)
	if got := a.Estimate(); got != wantEst {
		t.Fatalf("merged estimate %v != serial %v", got, wantEst)
	}
}

// TestShardedEstimateIsRepeatable: Estimate merges into a FRESH target
// every call, so calling it twice (or marshaling in between) cannot
// double-count the shards.
func TestShardedEstimateIsRepeatable(t *testing.T) {
	e, err := backend.Open(shardedTestSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Zipf{Alpha: 1.1}
	if err := backend.Process(e, gen.Generate(shardedTestCfg)); err != nil {
		t.Fatal(err)
	}
	first := e.Estimate()
	if _, err := e.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	if again := e.Estimate(); again != first {
		t.Fatalf("second Estimate %v != first %v (merge mutated the shards)", again, first)
	}
}

// TestShardedStats: the ring counters account for exactly the stream
// that went through Process, and the rings quiesce empty.
func TestShardedStats(t *testing.T) {
	se, err := hotpath.New(hotpath.Config{
		Shards: 4,
		NewShard: func() (hotpath.Shard, error) {
			return backend.Open(backend.Spec{
				Kind: backend.KindOnePass, G: "x^2",
				Options: core.Options{N: shardedTestCfg.N, M: 1 << 10, Eps: 0.25, Seed: 21, Lambda: 1.0 / 16},
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := workload.Zipf{Alpha: 1.1}.Generate(shardedTestCfg)
	if err := se.Process(s.Updates()); err != nil {
		t.Fatal(err)
	}
	st := se.Stats()
	if st.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", st.Shards)
	}
	if st.RingDepth == 0 {
		t.Fatal("Stats.RingDepth = 0")
	}
	if st.Updates != uint64(s.Len()) {
		t.Fatalf("Stats.Updates = %d, want the full stream %d", st.Updates, s.Len())
	}
	if st.Batches == 0 {
		t.Fatal("Stats.Batches = 0 after a ring-path Process")
	}
	if st.Occupancy != 0 {
		t.Fatalf("Stats.Occupancy = %d after Process returned (rings must quiesce)", st.Occupancy)
	}
}

// TestShardedConfigErrors: the factory is required, and a failing
// factory surfaces instead of panicking later.
func TestShardedConfigErrors(t *testing.T) {
	if _, err := hotpath.New(hotpath.Config{}); err == nil {
		t.Fatal("New without a factory succeeded")
	}
}
