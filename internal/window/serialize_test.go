package window

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sketch"
	"repro/internal/util"
)

// drivenWindow builds a CountSketch-bucket window advanced through a
// fixed tick sequence, optionally fed data.
func drivenWindow(t *testing.T, seed uint64, fill bool) *Window[*sketch.CountSketch] {
	t.Helper()
	w, err := New(Config{W: 10, K: 2}, func() *sketch.CountSketch {
		return sketch.NewCountSketch(3, 32, util.NewSplitMix64(seed))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range randomDrive(13, 800) {
		if fill {
			if err := w.Update(u.item, 1, u.tick); err != nil {
				t.Fatal(err)
			}
		} else {
			w.Advance(u.tick)
		}
	}
	return w
}

// TestWindowWireRoundTrip: decoding a snapshot into an empty window
// driven through the same ticks reproduces the sender byte for byte,
// and decoding it twice doubles the counters (merge semantics).
func TestWindowWireRoundTrip(t *testing.T) {
	src := drivenWindow(t, 1, true)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	dst := drivenWindow(t, 1, false)
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	round, err := dst.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(round, data) {
		t.Fatal("round-tripped snapshot differs from original")
	}

	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// Merge semantics: wire-merging the same shard twice must equal an
	// in-process double merge.
	twice := drivenWindow(t, 1, false)
	if err := twice.Merge(src); err != nil {
		t.Fatal(err)
	}
	if err := twice.Merge(src); err != nil {
		t.Fatal(err)
	}
	wantDouble, _ := twice.MarshalBinary()
	gotDouble, _ := dst.MarshalBinary()
	if !bytes.Equal(gotDouble, wantDouble) {
		t.Fatal("wire double-merge differs from in-process double merge")
	}
}

// TestWindowWireMergeEqualsInProcess: shipping shard B's snapshot into
// shard A equals A.Merge(B).
func TestWindowWireMergeEqualsInProcess(t *testing.T) {
	mkShard := func(lo, hi int) *Window[*sketch.CountSketch] {
		w := drivenWindowSlice(t, lo, hi)
		return w
	}
	a, b := mkShard(0, 400), mkShard(400, 800)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	inProc := mkShard(0, 400)
	if err := inProc.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	got, _ := a.MarshalBinary()
	want, _ := inProc.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Fatal("wire merge differs from in-process merge")
	}
}

// drivenWindowSlice drives a window through the full tick sequence but
// only feeds the updates in [lo, hi) — one contiguous shard.
func drivenWindowSlice(t *testing.T, lo, hi int) *Window[*sketch.CountSketch] {
	t.Helper()
	w, err := New(Config{W: 10, K: 2}, func() *sketch.CountSketch {
		return sketch.NewCountSketch(3, 32, util.NewSplitMix64(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	drive := randomDrive(13, 800)
	for i, u := range drive {
		if i >= lo && i < hi {
			if err := w.Update(u.item, 1, u.tick); err != nil {
				t.Fatal(err)
			}
		} else {
			w.Advance(u.tick)
		}
	}
	return w
}

// TestWindowWireRejections: truncation, corrupt fingerprints, clock
// drift, and trailing garbage must all error — and must leave the
// receiver untouched (staged-before-mutate).
func TestWindowWireRejections(t *testing.T) {
	src := drivenWindow(t, 1, true)
	valid, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Window[*sketch.CountSketch] { return drivenWindow(t, 1, false) }
	check := func(name string, data []byte, wantSub string) {
		t.Helper()
		dst := fresh()
		before, _ := dst.MarshalBinary()
		err := dst.UnmarshalBinary(data)
		if err == nil {
			t.Fatalf("%s: decode unexpectedly succeeded", name)
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
		after, _ := dst.MarshalBinary()
		if !bytes.Equal(before, after) {
			t.Fatalf("%s: failed decode mutated the receiver", name)
		}
	}

	for _, cut := range []int{0, 4, 13, 14, 22, 30, len(valid) / 2, len(valid) - 1} {
		check("truncated", valid[:cut], "")
	}

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xff
	check("bad magic", badMagic, "magic")

	badFP := append([]byte(nil), valid...)
	badFP[7] ^= 0xff // inside the u64 fingerprint
	check("bad fingerprint", badFP, "fingerprint")

	check("trailing bytes", append(append([]byte(nil), valid...), 0xde, 0xad), "trailing")

	// A receiver with a different seed has a different fingerprint.
	other := drivenWindow(t, 2, false)
	if err := other.UnmarshalBinary(valid); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("seed mismatch not caught by fingerprint: %v", err)
	}

	// A receiver at a different clock must refuse even a valid payload.
	drifted := drivenWindow(t, 1, false)
	drifted.Advance(drifted.Now() + 7)
	if err := drifted.UnmarshalBinary(valid); err == nil ||
		!strings.Contains(err.Error(), "clock") {
		t.Fatalf("clock mismatch not caught: %v", err)
	}

	// A receiver with different histogram capacity differs in shape AND
	// fingerprint.
	diffK, err := New(Config{W: 10, K: 4}, func() *sketch.CountSketch {
		return sketch.NewCountSketch(3, 32, util.NewSplitMix64(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range randomDrive(13, 800) {
		diffK.Advance(u.tick)
	}
	if err := diffK.UnmarshalBinary(valid); err == nil {
		t.Fatal("K mismatch not detected")
	}
}
