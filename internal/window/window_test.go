package window

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gfunc"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// newCS is a seed-disciplined CountSketch factory for bucket tests: the
// same dimensions and seed on every call.
func newCS() *sketch.CountSketch {
	return sketch.NewCountSketch(3, 64, util.NewSplitMix64(42))
}

func mustWindow(t *testing.T, cfg Config) *Window[*sketch.CountSketch] {
	t.Helper()
	w, err := New(cfg, newCS)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// tickedUpdate is one (item, delta, tick) triple for driving windows.
type tickedUpdate struct {
	item uint64
	tick uint64
}

// randomDrive builds a deterministic random ticked workload: items over
// a small domain, ticks advancing by random small strides.
func randomDrive(seed uint64, n int) []tickedUpdate {
	rng := util.NewSplitMix64(seed)
	out := make([]tickedUpdate, n)
	tick := uint64(0)
	for i := range out {
		if rng.Float64() < 0.3 {
			tick += rng.Uint64n(4) // including occasional same-tick stays
		}
		out[i] = tickedUpdate{item: rng.Uint64n(256), tick: tick}
	}
	return out
}

// TestWindowInvariants drives random ticked workloads and validates the
// histogram shape (power-of-two spans, tiling, span ordering, per-class
// capacity, stale bound) after every single update.
func TestWindowInvariants(t *testing.T) {
	for _, cfg := range []Config{{W: 1}, {W: 4}, {W: 16}, {W: 16, K: 4}, {W: 100, K: 3}, {W: 7, K: 8}} {
		w := mustWindow(t, cfg)
		for i, u := range randomDrive(7, 2000) {
			if err := w.Update(u.item, 1, u.tick); err != nil {
				t.Fatalf("cfg %+v update %d: %v", cfg, i, err)
			}
			if err := w.checkInvariants(); err != nil {
				t.Fatalf("cfg %+v after update %d (tick %d): %v", cfg, i, u.tick, err)
			}
		}
	}
}

// TestWindowMatchesSuffixSketch pins the core semantic: the merged
// window state equals, byte for byte, a single sketch fed exactly the
// updates from the oldest live bucket's first tick onward. The window
// is a lossless sketch of its covered tick range.
func TestWindowMatchesSuffixSketch(t *testing.T) {
	w := mustWindow(t, Config{W: 16, K: 2})
	drive := randomDrive(11, 3000)
	for _, u := range drive {
		if err := w.Update(u.item, 1, u.tick); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := w.Merged()
	if err != nil {
		t.Fatal(err)
	}
	covered := w.buckets[0].start
	ref := newCS()
	for _, u := range drive {
		if u.tick >= covered {
			ref.Update(u.item, 1)
		}
	}
	got, _ := merged.MarshalBinary()
	want, _ := ref.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Fatalf("merged window differs from the sketch of ticks >= %d", covered)
	}
}

// TestWindowExpiry asserts the documented forgetting guarantee: an item
// whose updates are at least W+StaleBound ticks behind the clock
// contributes nothing — its point estimate over the merged window is
// exactly what an empty window would answer.
func TestWindowExpiry(t *testing.T) {
	for _, cfg := range []Config{{W: 1}, {W: 8}, {W: 16, K: 4}, {W: 60, K: 3}} {
		w := mustWindow(t, cfg)
		const needle = uint64(99)
		for i := 0; i < 50; i++ {
			if err := w.Update(needle, 1000, 0); err != nil {
				t.Fatal(err)
			}
		}
		w.Advance(cfg.W + w.StaleBound())
		if err := w.checkInvariants(); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		merged, err := w.Merged()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := merged.MarshalBinary()
		empty, _ := newCS().MarshalBinary()
		if !bytes.Equal(got, empty) {
			t.Fatalf("cfg %+v: burst at tick 0 still present %d ticks later (stale %d, bound %d)",
				cfg, cfg.W+w.StaleBound(), w.Stale(), w.StaleBound())
		}
	}
}

// TestWindowStaleWithinBound checks the realized stale tick count never
// exceeds StaleBound across random drives and configurations.
func TestWindowStaleWithinBound(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, cfg := range []Config{{W: 8}, {W: 32, K: 2}, {W: 32, K: 8}, {W: 100, K: 5}} {
			w := mustWindow(t, cfg)
			for _, u := range randomDrive(seed, 1500) {
				if err := w.Update(u.item, 1, u.tick); err != nil {
					t.Fatal(err)
				}
				if w.Stale() > w.StaleBound() {
					t.Fatalf("seed %d cfg %+v: stale %d > bound %d", seed, cfg, w.Stale(), w.StaleBound())
				}
			}
		}
	}
}

// TestAdvanceFastForwardMatchesStepping pins fastForward's claim: for
// any jump large enough to trigger it, the resulting window equals
// naive tick-by-tick stepping byte for byte — across configurations,
// starting states (with live data that must expire), and jump targets
// probing every residue class of the period.
func TestAdvanceFastForwardMatchesStepping(t *testing.T) {
	for _, cfg := range []Config{{W: 1}, {W: 4}, {W: 7}, {W: 16, K: 2}, {W: 16, K: 4}, {W: 33, K: 6}, {W: 100, K: 3}, {W: 60, K: 5}} {
		ms := MaxSpan(cfg)
		for _, start := range []uint64{0, 3, cfg.W + 1, 5*ms + 2} {
			for _, jump := range []uint64{cfg.W + ms + 1, cfg.W + ms + 2, cfg.W + 9*ms + 1,
				cfg.W + 9*ms + 3, cfg.W + 40*ms + 5, 12345} {
				if jump <= cfg.W+ms {
					continue // stepping path; nothing to compare
				}
				fast := mustWindow(t, cfg)
				slow := mustWindow(t, cfg)
				for _, w := range []*Window[*sketch.CountSketch]{fast, slow} {
					w.stepTo(start)
					// Live data that the jump must expire.
					if err := w.Update(5, 100, start); err != nil {
						t.Fatal(err)
					}
				}
				fast.Advance(start + jump) // takes the fastForward path
				slow.stepTo(start + jump)  // ground truth
				if err := fast.checkInvariants(); err != nil {
					t.Fatalf("cfg %+v start %d jump %d: %v", cfg, start, jump, err)
				}
				fb, _ := fast.MarshalBinary()
				sb, _ := slow.MarshalBinary()
				if !bytes.Equal(fb, sb) {
					t.Fatalf("cfg %+v start %d jump %d: fast-forward diverges from stepping", cfg, start, jump)
				}
			}
		}
	}
}

// TestAdvanceHugeJumpIsCheap: advancing across an absurd number of
// ticks (e.g. a client posting wall-clock epoch seconds) completes
// immediately instead of replaying each tick.
func TestAdvanceHugeJumpIsCheap(t *testing.T) {
	w := mustWindow(t, Config{W: 3600, K: 4})
	if err := w.Update(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	w.Advance(1753680000) // epoch seconds scale
	if w.Now() != 1753680000 {
		t.Fatalf("clock at %d", w.Now())
	}
	if err := w.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	w.Advance(1<<62 + 12345)
	if err := w.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	merged, err := w.Merged()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := merged.MarshalBinary()
	empty, _ := newCS().MarshalBinary()
	if !bytes.Equal(got, empty) {
		t.Fatal("data survived a jump past the window")
	}
}

// TestWindowSnapshotDeterminism: same seed + same tick stream ⇒
// byte-identical snapshots, independently of how updates were batched.
func TestWindowSnapshotDeterminism(t *testing.T) {
	drive := randomDrive(3, 2500)
	run := func(batched bool) []byte {
		w := mustWindow(t, Config{W: 24, K: 3})
		if batched {
			lo := 0
			for lo < len(drive) {
				hi := lo
				for hi < len(drive) && drive[hi].tick == drive[lo].tick {
					hi++
				}
				batch := make([]stream.Update, 0, hi-lo)
				for _, u := range drive[lo:hi] {
					batch = append(batch, stream.Update{Item: u.item, Delta: 1})
				}
				if err := w.UpdateBatch(batch, drive[lo].tick); err != nil {
					t.Fatal(err)
				}
				lo = hi
			}
		} else {
			for _, u := range drive {
				if err := w.Update(u.item, 1, u.tick); err != nil {
					t.Fatal(err)
				}
			}
		}
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b, c := run(false), run(false), run(true)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different snapshots")
	}
	if !bytes.Equal(a, c) {
		t.Fatal("batched run produced a different snapshot than per-update run")
	}
}

// TestWindowMergeErrors: structural mismatches must fail without
// touching state.
func TestWindowMergeErrors(t *testing.T) {
	a := mustWindow(t, Config{W: 8})
	b := mustWindow(t, Config{W: 16})
	if err := a.Merge(b); err == nil {
		t.Fatal("config mismatch not detected")
	}
	c := mustWindow(t, Config{W: 8})
	c.Advance(5)
	before, _ := a.MarshalBinary()
	if err := a.Merge(c); err == nil {
		t.Fatal("clock mismatch not detected")
	}
	after, _ := a.MarshalBinary()
	if !bytes.Equal(before, after) {
		t.Fatal("failed merge mutated the receiver")
	}
	if err := a.Update(1, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.Update(1, 1, 2); err == nil {
		t.Fatal("past tick not rejected")
	}
}

// estDrive builds a ticked insertion stream for estimator tests: a
// skewed working set over T ticks.
func estDrive(seed uint64, n int, ticks uint64) []tickedUpdate {
	rng := util.NewSplitMix64(seed)
	out := make([]tickedUpdate, n)
	for i := range out {
		r := rng.Float64()
		out[i] = tickedUpdate{
			item: uint64(r * r * 300),
			tick: uint64(i) * ticks / uint64(n),
		}
	}
	return out
}

func newWindowEstimator(t *testing.T, cfg Config) *Estimator {
	t.Helper()
	e, err := NewEstimator(gfunc.F2Func(),
		core.Options{N: 1 << 10, M: 1 << 10, Eps: 0.25, Seed: 9, Lambda: 1.0 / 16}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEstimatorSerialVsParallel: sharding a ticked stream across worker
// windows (contiguous chunks, every worker advanced through the full
// tick sequence) and merging must reproduce the serial windowed
// estimate bit for bit, and the serial snapshot byte for byte, for any
// worker count.
func TestEstimatorSerialVsParallel(t *testing.T) {
	drive := estDrive(21, 4000, 40)
	last := drive[len(drive)-1].tick
	cfg := Config{W: 12, K: 2}

	serial := newWindowEstimator(t, cfg)
	for _, u := range drive {
		if err := serial.Update(u.item, 1, u.tick); err != nil {
			t.Fatal(err)
		}
	}
	serial.Advance(last)
	wantEst := serial.Estimate()

	for _, workers := range []int{2, 3, 4} {
		shards := make([]*Estimator, workers)
		for i := range shards {
			shards[i] = newWindowEstimator(t, cfg)
		}
		for i := range shards {
			lo, hi := engine.Cut(len(drive), workers, i)
			for _, u := range drive[lo:hi] {
				if err := shards[i].Update(u.item, 1, u.tick); err != nil {
					t.Fatal(err)
				}
			}
			shards[i].Advance(last)
		}
		for i := 1; i < workers; i++ {
			if err := shards[0].Merge(shards[i]); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		}
		if got := shards[0].Estimate(); got != wantEst {
			t.Fatalf("workers=%d: estimate %v != serial %v", workers, got, wantEst)
		}
	}
}

// TestWindowSerialVsParallelSnapshots is the counter half of the
// sharding contract: for tracker-free buckets (plain CountSketch) the
// merged shard windows reproduce the serial window snapshot BYTE for
// byte, at every worker count. (Estimator snapshots additionally carry
// best-effort top-k tracker ids, which the merge contract only pins
// while trackers stay within capacity — see internal/core/parallel.go —
// so the byte-level assertion lives at the counter layer.)
func TestWindowSerialVsParallelSnapshots(t *testing.T) {
	drive := randomDrive(17, 3000)
	last := drive[len(drive)-1].tick
	cfg := Config{W: 12, K: 3}
	serial := mustWindow(t, cfg)
	for _, u := range drive {
		if err := serial.Update(u.item, 1, u.tick); err != nil {
			t.Fatal(err)
		}
	}
	serial.Advance(last)
	want, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5} {
		shards := make([]*Window[*sketch.CountSketch], workers)
		for i := range shards {
			shards[i] = mustWindow(t, cfg)
			lo, hi := engine.Cut(len(drive), workers, i)
			for _, u := range drive[lo:hi] {
				if err := shards[i].Update(u.item, 1, u.tick); err != nil {
					t.Fatal(err)
				}
			}
			shards[i].Advance(last)
		}
		for i := 1; i < workers; i++ {
			if err := shards[0].Merge(shards[i]); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		}
		got, err := shards[0].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: merged snapshot differs from serial snapshot", workers)
		}
	}
}

// TestEstimatorTracksWindowedExact: the windowed estimate approximates
// the exact g-SUM over the ticks the window covers (window plus
// documented stale margin), and is far from the whole-stream answer
// when most of the stream has expired.
func TestEstimatorTracksWindowedExact(t *testing.T) {
	drive := estDrive(5, 6000, 60)
	last := drive[len(drive)-1].tick
	cfg := Config{W: 10, K: 4}
	est := newWindowEstimator(t, cfg)
	for _, u := range drive {
		if err := est.Update(u.item, 1, u.tick); err != nil {
			t.Fatal(err)
		}
	}
	est.Advance(last)

	exactFrom := func(minTick uint64) float64 {
		v := make(stream.Vector)
		for _, u := range drive {
			if u.tick >= minTick {
				v[u.item]++
			}
		}
		return v.Sum(gfunc.F2Func().Eval)
	}
	// The window covers (last-W, last] plus up to StaleBound stale ticks:
	// the estimate must land within eps of the exact sum over the ticks
	// actually covered.
	covered := last - cfg.W + 1 - est.Stale()
	exact := exactFrom(covered)
	got := est.Estimate()
	if re := util.RelErr(got, exact); re > 0.25 {
		t.Fatalf("windowed estimate %v vs covered-exact %v: rel err %.3f > 0.25", got, exact, re)
	}
	whole := exactFrom(0)
	if util.RelErr(got, whole) < 0.5 {
		t.Fatalf("windowed estimate %v suspiciously close to whole-stream exact %v: window not forgetting", got, whole)
	}
}

// TestEstimatorStaleReporting sanity-checks the Config/Now/Stale
// accessors the daemon surfaces.
func TestEstimatorStaleReporting(t *testing.T) {
	est := newWindowEstimator(t, Config{W: 8, K: 2})
	if est.Config().W != 8 || est.Config().K != 2 {
		t.Fatalf("config not preserved: %+v", est.Config())
	}
	est.Advance(100)
	if est.Now() != 100 {
		t.Fatalf("clock at %d, want 100", est.Now())
	}
	if est.Stale() > est.StaleBound() {
		t.Fatalf("stale %d > bound %d", est.Stale(), est.StaleBound())
	}
	// Buckets materialize lazily: a window that only ticked holds no
	// sketch storage at all; the first update pays for one bucket.
	if est.Buckets() < 1 || est.SpaceBytes() != 0 {
		t.Fatalf("empty window: buckets=%d space=%d, want space 0", est.Buckets(), est.SpaceBytes())
	}
	if err := est.Update(1, 1, est.Now()); err != nil {
		t.Fatal(err)
	}
	if est.SpaceBytes() <= 0 {
		t.Fatalf("space still %d after an update", est.SpaceBytes())
	}
}
