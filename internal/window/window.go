package window

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Sketch is the bucket contract: a mergeable, wire-capable summary. It
// is satisfied by every linear sketch in the repository (the raw
// sketches, the heavy-hitter layer, the public estimators). The Merge,
// Fingerprint, and UnmarshalBinary methods carry the usual
// seed-discipline obligations (see internal/engine and internal/wire).
type Sketch[S any] interface {
	engine.Sketcher
	engine.Mergeable[S]
	Fingerprint() uint64
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
}

// DefaultK is the bucket-per-span-class capacity used when Config.K is 0.
const DefaultK = 2

// Config parameterizes a sliding window. The JSON tags define the
// canonical encoding used inside backend Specs.
type Config struct {
	// W is the window length in ticks: estimates cover (now−W, now].
	// It must be at least 1.
	W uint64 `json:"w"`
	// K is the exponential-histogram capacity: at most K buckets per
	// power-of-two span class before the two oldest of that class merge.
	// Larger K means finer expiry granularity (smaller stale bound) and
	// more buckets. 0 means DefaultK; values below 2 are rejected.
	K int `json:"k"`
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = DefaultK
	}
	return c
}

func (c Config) validate() error {
	if c.W == 0 {
		return fmt.Errorf("window: W must be at least 1 tick")
	}
	if c.K < 2 {
		return fmt.Errorf("window: K must be at least 2, got %d", c.K)
	}
	return nil
}

// MaxSpan returns the largest bucket span the histogram will build for
// cfg: the smallest power of two at least ⌈W/K⌉. Compaction never
// merges past it, so the oldest bucket straddling the window boundary
// carries at most MaxSpan−1 stale ticks.
func MaxSpan(cfg Config) uint64 {
	cfg = cfg.withDefaults()
	target := (cfg.W + uint64(cfg.K) - 1) / uint64(cfg.K)
	span := uint64(1)
	for span < target {
		span *= 2
	}
	return span
}

// bucket is one sealed or open segment of the tick line: the sketch of
// every update whose tick fell in [start, start+span). Buckets
// materialize their sketch lazily — sk is only valid when live is true
// — so advancing the clock across empty ticks allocates nothing and a
// long idle period costs a cheap structural walk per tick, not a sketch
// construction per tick.
type bucket[S Sketch[S]] struct {
	start uint64
	span  uint64
	live  bool
	sk    S
}

// end returns the last tick the bucket covers.
func (b bucket[S]) end() uint64 { return b.start + b.span - 1 }

// Window is a sliding-window summary: an exponential histogram of
// buckets, each bucket one S, covering the trailing cfg.W ticks. The
// zero value is not usable; construct with New. Windows are not
// goroutine-safe (like every sketch in the repository).
type Window[S Sketch[S]] struct {
	cfg       Config
	maxSpan   uint64
	newSketch func() S
	now       uint64
	// buckets tile (expiry edge, now] contiguously, oldest first, with
	// spans non-increasing from oldest to newest; the last bucket is
	// always the open span-1 bucket at the current tick. The tiling is a
	// pure function of (cfg, tick sequence) — never of the data.
	buckets []bucket[S]
	// fp is the configuration fingerprint and emptyBlob the serialized
	// form of a fresh sketch (both derived from one probe sketch at
	// construction; neither depends on data). emptyBlob ships dead
	// buckets without materializing them.
	fp        uint64
	emptyBlob []byte
}

// New builds an empty window at tick 0. newSketch must return an
// identically-configured, same-seed sketch on every call (the
// seed-discipline rule): buckets built by it merge with one another and
// with decoded snapshots.
func New[S Sketch[S]](cfg Config, newSketch func() S) (*Window[S], error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if newSketch == nil {
		return nil, fmt.Errorf("window: New needs a sketch factory")
	}
	w := &Window[S]{
		cfg:       cfg,
		maxSpan:   MaxSpan(cfg),
		newSketch: newSketch,
		buckets:   []bucket[S]{{start: 0, span: 1}},
	}
	// One probe sketch yields both construction-time derivatives: the
	// configuration fingerprint and the wire image of an empty bucket.
	probe := newSketch()
	h := wire.Fingerprint(0, cfg.W)
	h = wire.Fingerprint(h, uint64(cfg.K))
	w.fp = wire.Fingerprint(h, probe.Fingerprint())
	blob, err := probe.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("window: serializing the empty sketch: %w", err)
	}
	w.emptyBlob = blob
	return w, nil
}

// Config returns the window's resolved configuration.
func (w *Window[S]) Config() Config { return w.cfg }

// Now returns the current tick.
func (w *Window[S]) Now() uint64 { return w.now }

// Buckets returns the number of live buckets, O(K·log(W/K) + K).
func (w *Window[S]) Buckets() int { return len(w.buckets) }

// SpaceBytes sums the counter storage of every materialized bucket
// (buckets that never saw an update hold no sketch).
func (w *Window[S]) SpaceBytes() int {
	total := 0
	for _, b := range w.buckets {
		if b.live {
			total += b.sk.SpaceBytes()
		}
	}
	return total
}

// Stale returns how many ticks older than the window the oldest bucket
// still carries: the realized approximation error of this instant.
func (w *Window[S]) Stale() uint64 {
	if w.now < w.cfg.W {
		return 0 // the whole history is inside the window
	}
	cut := w.now - w.cfg.W // ticks <= cut are outside (now−W, now]
	if w.buckets[0].start > cut {
		return 0
	}
	return cut - w.buckets[0].start + 1
}

// StaleBound returns the worst-case Stale value, MaxSpan(cfg)−1: no
// estimate ever includes that many ticks beyond the window, and updates
// at least W+StaleBound ticks behind the clock are guaranteed expired.
func (w *Window[S]) StaleBound() uint64 { return w.maxSpan - 1 }

// Advance moves the clock forward to tick, sealing the open bucket,
// compacting same-span buckets, and expiring buckets that fell wholly
// outside the window, once per elapsed tick. Ticks at or before the
// current one are a no-op, so repeated synchronization calls (e.g.
// /v1/advance from several pushers) are safe.
//
// Cost is O(min(elapsed, W+maxSpan)) regardless of the jump size: a
// jump large enough to expire every current bucket fast-forwards to
// the canonical structure at the target clock instead of replaying
// each tick (see fastForward), so even an Advance across billions of
// idle ticks returns immediately. The resulting bucket structure
// depends only on (Config, final clock) — every window visits every
// tick exactly once, however Advance was called — which is what lets
// identically-driven windows merge.
func (w *Window[S]) Advance(tick uint64) {
	if tick <= w.now {
		return
	}
	// Everything currently held expires during a jump of more than
	// W+maxSpan ticks (even a bucket that would first merge up to
	// maxSpan span has fallen wholly outside the window by then), so
	// the destination state carries no data and can be rebuilt directly.
	if tick-w.now > w.cfg.W+w.maxSpan {
		w.fastForward(tick)
		return
	}
	w.stepTo(tick)
}

// stepTo replays the clock one tick at a time.
func (w *Window[S]) stepTo(tick uint64) {
	for w.now < tick {
		w.now++
		w.buckets = append(w.buckets, bucket[S]{start: w.now, span: 1})
		w.compact()
		w.expire()
	}
}

// fastForward rebuilds the canonical all-empty bucket structure at
// tick in O(W+maxSpan) steps. It relies on two properties of the
// histogram: the structure at clock T is a pure function of (Config,
// T), and past a warm-up of W+8·maxSpan ticks it is periodic in T with
// period maxSpan (shifting every boundary by the period) — the merge
// cascade and the expiry edge both repeat once the top span class is
// saturated. TestAdvanceFastForwardMatchesStepping pins the
// equivalence against naive stepping across configurations.
func (w *Window[S]) fastForward(tick uint64) {
	warmup := w.cfg.W + 8*w.maxSpan
	target, shift := tick, uint64(0)
	if tick > warmup {
		shift = (tick - warmup) / w.maxSpan * w.maxSpan
		target = tick - shift
	}
	w.buckets = append(w.buckets[:0], bucket[S]{start: 0, span: 1})
	w.now = 0
	w.stepTo(target)
	for i := range w.buckets {
		w.buckets[i].start += shift
	}
	w.now = tick
}

// compact restores the histogram invariant after a new span-1 bucket is
// appended: cascading from the smallest span up, whenever a span class
// holds more than K buckets, the two oldest of that class (adjacent, by
// the span-ordering invariant) merge into one bucket of twice the span.
// Spans never exceed maxSpan, which is what caps the stale bound.
func (w *Window[S]) compact() {
	for span := uint64(1); span < w.maxSpan; span *= 2 {
		first, count := -1, 0
		for i, b := range w.buckets {
			if b.span == span {
				if first < 0 {
					first = i
				}
				count++
			}
		}
		if count <= w.cfg.K {
			return // classes above can only have overflowed via a merge below
		}
		older, newer := &w.buckets[first], w.buckets[first+1]
		switch {
		case !newer.live:
			// Nothing to fold in; the older half keeps its state.
		case !older.live:
			// Adopt the newer half's sketch (exclusive ownership moves).
			older.sk, older.live = newer.sk, true
		default:
			// Merging identically-built sketches cannot fail; a failure
			// means the factory broke seed discipline, which no caller can
			// recover from mid-stream.
			if err := older.sk.Merge(newer.sk); err != nil {
				panic(fmt.Sprintf("window: bucket merge failed (factory violated seed discipline?): %v", err))
			}
		}
		older.span *= 2
		w.buckets = append(w.buckets[:first+1], w.buckets[first+2:]...)
	}
}

// expire drops buckets whose entire span is outside (now−W, now]. The
// open bucket always covers the current tick, so at least one bucket
// survives.
func (w *Window[S]) expire() {
	if w.now < w.cfg.W {
		return
	}
	cut := w.now - w.cfg.W
	drop := 0
	for drop < len(w.buckets)-1 && w.buckets[drop].end() <= cut {
		drop++
	}
	if drop > 0 {
		w.buckets = w.buckets[drop:]
	}
}

// Update feeds one turnstile update stamped with its tick, advancing
// the clock first if the tick is ahead of it. Ticks must be
// non-decreasing across calls; a past tick is an error (the bucket it
// belonged to may already be sealed, merged, or expired).
func (w *Window[S]) Update(item uint64, delta int64, tick uint64) error {
	if tick < w.now {
		return fmt.Errorf("window: tick %d is in the past (clock at %d); ticks must be non-decreasing", tick, w.now)
	}
	w.Advance(tick)
	w.open().sk.Update(item, delta)
	return nil
}

// open materializes and returns the open bucket.
func (w *Window[S]) open() *bucket[S] {
	b := &w.buckets[len(w.buckets)-1]
	if !b.live {
		b.sk, b.live = w.newSketch(), true
	}
	return b
}

// UpdateBatch feeds a batch of updates that all share one tick through
// the open bucket's amortized batch path (engine.Ingest).
func (w *Window[S]) UpdateBatch(batch []stream.Update, tick uint64) error {
	if tick < w.now {
		return fmt.Errorf("window: tick %d is in the past (clock at %d); ticks must be non-decreasing", tick, w.now)
	}
	w.Advance(tick)
	engine.Ingest(w.open().sk, batch, 0)
	return nil
}

// Merged folds every live bucket, oldest to newest, into a freshly
// built sketch: the summary of the trailing window (plus at most
// StaleBound stale ticks), ready for whatever queries S answers. The
// fixed fold order keeps auxiliary tracker state deterministic, so
// identical windows produce bit-identical merged sketches.
func (w *Window[S]) Merged() (S, error) {
	out := w.newSketch()
	for _, b := range w.buckets {
		if !b.live {
			continue
		}
		if err := out.Merge(b.sk); err != nil {
			return out, fmt.Errorf("window: merging bucket [%d,+%d): %w", b.start, b.span, err)
		}
	}
	return out, nil
}

// Merge folds another window into w, bucket by bucket. Both windows
// must have the same Config and have been advanced through the same
// tick sequence — equal clocks imply equal bucket boundaries, which is
// verified in full before any bucket mutates (the merge contract's
// no-half-merged-state rule). This is the distributed mode: shard a
// ticked stream across workers, drive every worker's window through
// every tick, merge, and the result equals the single-window run
// bit for bit.
func (w *Window[S]) Merge(other *Window[S]) error {
	if w.cfg != other.cfg {
		return fmt.Errorf("window: config mismatch: %+v vs %+v", w.cfg, other.cfg)
	}
	if w.now != other.now {
		return fmt.Errorf("window: clock mismatch: %d vs %d (advance both to the same tick before merging)", w.now, other.now)
	}
	if len(w.buckets) != len(other.buckets) {
		return fmt.Errorf("window: bucket count mismatch: %d vs %d (windows saw different tick sequences)", len(w.buckets), len(other.buckets))
	}
	for i := range w.buckets {
		if w.buckets[i].start != other.buckets[i].start || w.buckets[i].span != other.buckets[i].span {
			return fmt.Errorf("window: bucket %d boundary mismatch: [%d,+%d) vs [%d,+%d)",
				i, w.buckets[i].start, w.buckets[i].span, other.buckets[i].start, other.buckets[i].span)
		}
	}
	for i := range w.buckets {
		ob := other.buckets[i]
		if !ob.live {
			continue
		}
		if !w.buckets[i].live {
			w.buckets[i].sk, w.buckets[i].live = w.newSketch(), true
		}
		if err := w.buckets[i].sk.Merge(ob.sk); err != nil {
			return fmt.Errorf("window: bucket %d: %w", i, err)
		}
	}
	return nil
}

// checkInvariants validates the histogram shape; tests call it after
// every mutation. It returns an error naming the first violation.
func (w *Window[S]) checkInvariants() error {
	if len(w.buckets) == 0 {
		return fmt.Errorf("window: no buckets")
	}
	open := w.buckets[len(w.buckets)-1]
	if open.start != w.now || open.span != 1 {
		return fmt.Errorf("window: open bucket [%d,+%d) does not sit at the clock %d", open.start, open.span, w.now)
	}
	counts := map[uint64]int{}
	for i, b := range w.buckets {
		if b.span == 0 || b.span&(b.span-1) != 0 {
			return fmt.Errorf("window: bucket %d span %d is not a power of two", i, b.span)
		}
		if b.span > w.maxSpan {
			return fmt.Errorf("window: bucket %d span %d exceeds max span %d", i, b.span, w.maxSpan)
		}
		if i > 0 {
			if b.start != w.buckets[i-1].end()+1 {
				return fmt.Errorf("window: bucket %d does not tile: starts at %d after end %d", i, b.start, w.buckets[i-1].end())
			}
			if b.span > w.buckets[i-1].span {
				return fmt.Errorf("window: bucket %d span %d exceeds older span %d", i, b.span, w.buckets[i-1].span)
			}
		}
		if b.span < w.maxSpan {
			counts[b.span]++
		}
	}
	for span, c := range counts {
		if c > w.cfg.K {
			return fmt.Errorf("window: %d buckets of span %d exceed K=%d", c, span, w.cfg.K)
		}
	}
	if w.Stale() > w.StaleBound() {
		return fmt.Errorf("window: stale ticks %d exceed bound %d", w.Stale(), w.StaleBound())
	}
	return nil
}
