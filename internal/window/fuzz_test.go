package window

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/util"
)

// fuzzWindow builds the fixed receiver the fuzz corpus targets: a
// CountSketch-bucket window advanced through a fixed tick sequence.
// Keep in sync with the valid-payload seeds below.
func fuzzWindow() *Window[*sketch.CountSketch] {
	w, err := New(Config{W: 6, K: 2}, func() *sketch.CountSketch {
		return sketch.NewCountSketch(2, 16, util.NewSplitMix64(3))
	})
	if err != nil {
		panic(err)
	}
	for tick := uint64(0); tick <= 9; tick++ {
		if err := w.Update(tick%5, int64(tick)+1, tick); err != nil {
			panic(err)
		}
	}
	return w
}

// FuzzWindowUnmarshal asserts UnmarshalBinary never panics: truncated,
// corrupted, wrong-magic, wrong-clock, and wrong-boundary payloads must
// all return errors (or succeed harmlessly), never crash the decoder.
func FuzzWindowUnmarshal(f *testing.F) {
	src := fuzzWindow()
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, cut := range []int{0, 3, 13, 14, 22, 30, len(valid) / 2, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[0] ^= 0xff
	f.Add(corrupt)
	deepCorrupt := append([]byte(nil), valid...)
	deepCorrupt[len(deepCorrupt)/2] ^= 0x55
	f.Add(deepCorrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		w := fuzzWindow()
		_ = w.UnmarshalBinary(data) // must not panic
	})
}
