package window

import (
	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/stream"
)

// Estimator is the windowed g-SUM estimator: a Window whose buckets are
// core.OnePassEstimator instances, answering Σ g(|v_i|) over the
// trailing W ticks. It is what the daemon's "window" backend and the
// bench runner's windowed mode serve.
type Estimator struct {
	win *Window[*core.OnePassEstimator]
}

// NewEstimator builds a windowed one-pass estimator for g. The envelope
// is measured once and pinned into the options, so every bucket — and
// every staging estimator a snapshot decode builds — resolves to
// byte-identical configuration (the seed-discipline rule; the wire
// fingerprint checks it).
func NewEstimator(g gfunc.Func, opts core.Options, cfg Config) (*Estimator, error) {
	opts.Envelope = core.EnvelopeFor(g, opts)
	win, err := New(cfg, func() *core.OnePassEstimator { return core.NewOnePass(g, opts) })
	if err != nil {
		return nil, err
	}
	return &Estimator{win: win}, nil
}

// Update feeds one time-stamped turnstile update.
func (e *Estimator) Update(item uint64, delta int64, tick uint64) error {
	return e.win.Update(item, delta, tick)
}

// UpdateBatch feeds a batch of updates that all share one tick.
func (e *Estimator) UpdateBatch(batch []stream.Update, tick uint64) error {
	return e.win.UpdateBatch(batch, tick)
}

// Advance moves the clock to tick (no-op for past ticks).
func (e *Estimator) Advance(tick uint64) { e.win.Advance(tick) }

// Now returns the current tick.
func (e *Estimator) Now() uint64 { return e.win.Now() }

// Config returns the window configuration.
func (e *Estimator) Config() Config { return e.win.Config() }

// Buckets returns the live bucket count.
func (e *Estimator) Buckets() int { return e.win.Buckets() }

// Stale reports how many ticks beyond the window the current estimate
// still includes; StaleBound is its worst case (see the package doc).
func (e *Estimator) Stale() uint64 { return e.win.Stale() }

// StaleBound returns the documented worst-case stale tick count.
func (e *Estimator) StaleBound() uint64 { return e.win.StaleBound() }

// SpaceBytes sums counter storage across buckets.
func (e *Estimator) SpaceBytes() int { return e.win.SpaceBytes() }

// Estimate returns the g-SUM estimate over the trailing window (plus at
// most StaleBound stale ticks). It folds the live buckets into a fresh
// estimator in deterministic order, so identical windows estimate
// bit-identically.
func (e *Estimator) Estimate() float64 {
	merged, err := e.win.Merged()
	if err != nil {
		// Buckets come from one factory; a merge failure is an invariant
		// violation, not an input error.
		panic("window: " + err.Error())
	}
	return merged.Estimate()
}

// Merge folds another estimator's window into e (same configuration,
// seed, and tick sequence required; see Window.Merge).
func (e *Estimator) Merge(other *Estimator) error { return e.win.Merge(other.win) }

// Fingerprint digests the window shape and bucket configuration.
func (e *Estimator) Fingerprint() uint64 { return e.win.Fingerprint() }

// MarshalBinary serializes the window (see Window.MarshalBinary).
func (e *Estimator) MarshalBinary() ([]byte, error) { return e.win.MarshalBinary() }

// UnmarshalBinary adds a serialized window into e (merge semantics; see
// Window.UnmarshalBinary).
func (e *Estimator) UnmarshalBinary(data []byte) error { return e.win.UnmarshalBinary(data) }
