// Package window is the sliding-window estimation layer: an exponential
// histogram of buckets, each bucket one mergeable sketch, answering
// queries over the last W ticks of a stream instead of the whole of it.
//
// # Role
//
// The rest of the repository estimates g-SUM since process start. A
// production aggregation service is usually asked about *recent*
// traffic — "top contributors in the last hour" — so this package wraps
// any seed-disciplined mergeable sketch (sketch.CountSketch,
// heavy.OnePass, the core estimators, …) in a Window: Update(item,
// delta, tick) feeds time-stamped traffic, Advance(tick) moves the
// clock, and Merged/Estimate answer over the trailing W-tick window.
//
// # How it works
//
// The window keeps its buckets in the exponential-histogram shape of
// Datar–Gionis–Indyk–Motwani, transplanted from counts to ticks: every
// bucket covers a power-of-two span of consecutive ticks, the newest
// bucket is always the open span-1 bucket at the current tick, and when
// more than K buckets share a span the two oldest of that span merge
// (via the sketches' Merge contract) into one bucket of twice the span.
// Buckets whose entire span has fallen out of the window are dropped.
// Bucket lifecycle: fill (open, absorbing updates) → seal (Advance
// moves past it) → merge (compaction pairs it with its neighbor) →
// expire (entirely outside the window).
//
// Crucially the bucket structure is a pure function of (W, K, current
// clock) — it never depends on the data, and every window visits every
// tick exactly once however Advance is called — so two windows at the
// same clock have identical bucket boundaries and merge
// bucket-by-bucket with the exact linearity guarantees of the
// underlying sketches. Serial, sharded-parallel, and daemon-merged
// windowed runs therefore produce bit-identical counter state, the same
// contract internal/engine provides for whole-stream sketches. Buckets
// materialize lazily and clock jumps that expire everything
// fast-forward in O(W) instead of replaying each tick, so idle periods
// and wall-clock-sized tick domains cost (almost) nothing.
//
// # Accuracy caveat
//
// A whole-stream linear sketch forgets nothing; a window must forget,
// and it forgets at bucket granularity. The oldest surviving bucket may
// straddle the window boundary, so up to StaleBound() = MaxSpan(cfg)−1
// ticks older than the window (fewer than 2⌈W/K⌉) can still contribute
// to an estimate. Items whose ticks are at least W+StaleBound() behind
// the clock are guaranteed gone. Raising K tightens the bound at the
// cost of more buckets; total bucket count stays O(K·log(W/K) + K).
//
// # Layer
//
// In ARCHITECTURE.md's layer map, window sits with the harness layer:
// above the estimators (internal/core) and sketches it buckets, below
// the service surface (internal/daemon's "window" backend and
// /v1/advance) and the bench runner (internal/workload's windowed
// mode).
//
// # Seed discipline
//
// The factory passed to New must return identically-configured,
// same-seed sketches on every call — buckets merge with each other, and
// snapshots decode against freshly built staging sketches, so one drift
// in the factory would silently break linearity. The wire format
// (serialize.go) digests W, K, and the bucket sketch's own fingerprint
// into the header, making the contract a checked invariant exactly as
// internal/wire does for the underlying sketches.
package window
