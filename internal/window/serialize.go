package window

import (
	"bytes"
	"fmt"

	"repro/internal/wire"
)

// Wire format (big endian, header per internal/wire):
//
//	magic u32 | version u16 | fingerprint u64
//	now u64 | buckets u32 | buckets × (start u64 | span u64 | blob)
//
// The fingerprint digests the window shape (W, K) and the bucket
// sketch's own fingerprint, so a snapshot only decodes onto a window of
// the same length, the same histogram capacity, and a bucket factory
// with the same seed and dimensions. Bucket boundaries travel so the
// decoder can verify the sender was driven through the same tick
// sequence; the sketches inside each bucket travel as nested blobs in
// their own checked wire formats.

const windowMagic uint32 = 0x67535557 // "gSUW"

// Fingerprint digests the window configuration and the bucket sketch
// fingerprint (cached at construction; it is independent of the
// window's data and clock, so it can be checked before any bucket
// state is examined).
func (w *Window[S]) Fingerprint() uint64 { return w.fp }

// MarshalBinary serializes the clock, the bucket boundaries, and every
// bucket's sketch. Two windows with the same configuration, seed, tick
// sequence, and data produce byte-identical snapshots (an empty bucket
// serializes identically whether or not it was ever materialized —
// dead buckets ship the cached empty-sketch image).
func (w *Window[S]) MarshalBinary() ([]byte, error) {
	var wr wire.Writer
	wr.Header(windowMagic, w.Fingerprint())
	wr.U64(w.now)
	wr.U32(uint32(len(w.buckets)))
	for _, b := range w.buckets {
		wr.U64(b.start)
		wr.U64(b.span)
		blob, err := w.emptyBlob, error(nil)
		if b.live {
			blob, err = b.sk.MarshalBinary()
			if err != nil {
				return nil, fmt.Errorf("window: bucket [%d,+%d): %w", b.start, b.span, err)
			}
		}
		wr.Blob(blob)
	}
	return wr.Bytes(), nil
}

// UnmarshalBinary ADDS a serialized window into w, bucket by bucket
// (merge semantics, matching Merge). The receiver must have the same
// configuration and seed (checked via the header fingerprint) and have
// been advanced through the same tick sequence (checked via the clock
// and every bucket boundary). The whole payload — boundaries and every
// nested sketch blob — is decoded into staging sketches and validated
// BEFORE any receiver bucket is touched, so an error never leaves the
// window half-merged.
func (w *Window[S]) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(windowMagic, w.Fingerprint()); err != nil {
		return fmt.Errorf("window: %w", err)
	}
	now := r.U64()
	n := r.U32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("window: %w", err)
	}
	if now != w.now {
		return fmt.Errorf("window: clock mismatch: wire %d vs local %d (advance both to the same tick)", now, w.now)
	}
	if int(n) != len(w.buckets) {
		return fmt.Errorf("window: bucket count mismatch: wire %d vs local %d", n, len(w.buckets))
	}
	staged := make([]S, len(w.buckets))
	loaded := make([]bool, len(w.buckets))
	for i := range w.buckets {
		start, span := r.U64(), r.U64()
		blob := r.Blob()
		if err := r.Err(); err != nil {
			return fmt.Errorf("window: bucket %d: %w", i, err)
		}
		if start != w.buckets[i].start || span != w.buckets[i].span {
			return fmt.Errorf("window: bucket %d boundary mismatch: wire [%d,+%d) vs local [%d,+%d)",
				i, start, span, w.buckets[i].start, w.buckets[i].span)
		}
		if bytes.Equal(blob, w.emptyBlob) {
			continue // an empty bucket contributes nothing; skip staging it
		}
		staged[i] = w.newSketch()
		if err := staged[i].UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("window: bucket %d: %w", i, err)
		}
		loaded[i] = true
	}
	if r.Len() != 0 {
		return fmt.Errorf("window: %d trailing bytes after payload", r.Len())
	}
	for i := range w.buckets {
		if !loaded[i] {
			continue
		}
		if !w.buckets[i].live {
			// The staging sketch is exclusively ours: adopt it instead of
			// materializing an empty bucket just to merge into it.
			w.buckets[i].sk, w.buckets[i].live = staged[i], true
			continue
		}
		if err := w.buckets[i].sk.Merge(staged[i]); err != nil {
			return fmt.Errorf("window: bucket %d: %w", i, err)
		}
	}
	return nil
}
