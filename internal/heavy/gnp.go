package heavy

import (
	"math"

	"repro/internal/gfunc"
	"repro/internal/util"
	"repro/internal/xhash"
)

// GnpHeavy implements the dedicated 1-pass heavy-hitter algorithm of
// Appendix D.1 for the nearly periodic function g_np(x) = 2^{-ι(x)}, where
// ι(x) is the index of the lowest set bit of x.
//
// The structure follows Proposition 54:
//
//   - hash the domain into C = O(λ⁻²) substreams, so that with constant
//     probability no two members of U = {j : ι(v_j) <= ι(v_{j*})} collide
//     (|U| <= 2/λ when j* is a (g_np, λ)-heavy hitter);
//   - in each substream run D = O(log n) independent trials: pairwise
//     independent X_1..X_n ~ Bernoulli(1/2), maintain m = Σ_j X_j v_j and
//     output 2^{-ι(m)};
//   - the trials achieving the maximum 2^{-ι} are exactly those with
//     X_{j*} = 1 (any subset of items with strictly larger ι sums to a
//     value with strictly larger ι, since multiples of 2^{ι*+1} are closed
//     under addition), and the heavy hitter's identity is recovered from
//     the bit pattern: per trial we also maintain one counter per bit
//     position b of the item id restricted to items with bit b set, whose
//     ι equals ι* iff j* participates, i.e. iff bit b of j* is 1.
//
// The space is C * D * (1 + log2 n) counters = poly(λ⁻¹ log n log M),
// which is how a nearly periodic — hence not slow-dropping — function
// evades the Lemma 23 lower bound: the INDEX reduction fails because
// g_np(x + y) = g_np(x) at every period y.
type GnpHeavy struct {
	n       uint64
	c       int
	d       int
	bitsN   int
	part    *xhash.Buckets       // item -> substream
	xsel    [][]*xhash.Bernoulli // [substream][trial] -> item selector
	m       [][]int64            // [substream][trial] total selected mass
	mbit    [][][]int64          // [substream][trial][bit] selected mass with id bit set
	updates int
}

// GnpHeavyConfig configures the Appendix D.1 algorithm.
type GnpHeavyConfig struct {
	N      uint64  // domain size
	Lambda float64 // heaviness λ
	// Trials overrides D = O(log n); 0 means 8 + 4*ceil(log2 n).
	Trials int
	// Substreams overrides C = O(λ⁻²); 0 means ceil(16/λ²).
	Substreams int
}

// NewGnpHeavy returns a fresh instance of the Appendix D.1 algorithm.
func NewGnpHeavy(cfg GnpHeavyConfig, rng *util.SplitMix64) *GnpHeavy {
	if cfg.N == 0 {
		panic("heavy: GnpHeavy needs a positive domain")
	}
	if cfg.Lambda <= 0 || cfg.Lambda > 1 {
		panic("heavy: GnpHeavy lambda must be in (0, 1]")
	}
	c := cfg.Substreams
	if c == 0 {
		c = int(math.Ceil(16 / (cfg.Lambda * cfg.Lambda)))
	}
	bitsN := util.Log2Ceil(cfg.N)
	if bitsN == 0 {
		bitsN = 1
	}
	d := cfg.Trials
	if d == 0 {
		d = 8 + 4*bitsN
	}
	gh := &GnpHeavy{
		n:     cfg.N,
		c:     c,
		d:     d,
		bitsN: bitsN,
		part:  xhash.NewBuckets(2, uint64(c), rng.Fork()),
		xsel:  make([][]*xhash.Bernoulli, c),
		m:     make([][]int64, c),
		mbit:  make([][][]int64, c),
	}
	for s := 0; s < c; s++ {
		gh.xsel[s] = make([]*xhash.Bernoulli, d)
		gh.m[s] = make([]int64, d)
		gh.mbit[s] = make([][]int64, d)
		for t := 0; t < d; t++ {
			gh.xsel[s][t] = xhash.NewBernoulli(2, 1, 2, rng.Fork())
			gh.mbit[s][t] = make([]int64, bitsN)
		}
	}
	return gh
}

// Update feeds one turnstile update.
func (gh *GnpHeavy) Update(item uint64, delta int64) {
	s := gh.part.Hash(item)
	for t := 0; t < gh.d; t++ {
		if !gh.xsel[s][t].Hash(item) {
			continue
		}
		gh.m[s][t] += delta
		for b := 0; b < gh.bitsN; b++ {
			if item&(1<<uint(b)) != 0 {
				gh.mbit[s][t][b] += delta
			}
		}
	}
	gh.updates++
}

// Cover returns the recovered heavy hitters: per substream, at most one
// (item, weight 2^{-ι*}) pair, validated by re-checking the decoded
// identity against the trial pattern. Frequencies are not recovered (only
// g_np values are), so Freq is reported as 0.
func (gh *GnpHeavy) Cover() Cover {
	var cover Cover
	for s := 0; s < gh.c; s++ {
		if e, ok := gh.decode(s); ok {
			cover = append(cover, e)
		}
	}
	cover.sortByWeight()
	return cover
}

// decode recovers the single minimal-ι item of substream s, if the trial
// statistics are consistent with there being exactly one.
func (gh *GnpHeavy) decode(s int) (Entry, bool) {
	// iota* = minimum ι(m) over trials (64 = "no mass selected").
	iStar := 64
	for t := 0; t < gh.d; t++ {
		if i := gfunc.GnpIota(uint64(abs64(gh.m[s][t]))); i < iStar {
			iStar = i
		}
	}
	if iStar == 64 {
		return Entry{}, false
	}
	// M = trials achieving ι*. With a unique minimal item these are
	// exactly the trials selecting it, so |M| ≈ D/2; a wildly different
	// count signals collision of two minimal-ι items.
	var hits []int
	for t := 0; t < gh.d; t++ {
		if gfunc.GnpIota(uint64(abs64(gh.m[s][t]))) == iStar {
			hits = append(hits, t)
		}
	}
	if len(hits)*5 < gh.d || len(hits)*5 > 4*gh.d {
		return Entry{}, false
	}
	// Decode the identity bit by bit: bit b is set iff the bit-restricted
	// counter also attains ι* (majority vote across the hit trials).
	var id uint64
	for b := 0; b < gh.bitsN; b++ {
		votes := 0
		for _, t := range hits {
			if gfunc.GnpIota(uint64(abs64(gh.mbit[s][t][b]))) == iStar {
				votes++
			}
		}
		if 2*votes > len(hits) {
			id |= 1 << uint(b)
		}
	}
	if id >= gh.n || gh.part.Hash(id) != uint64(s) {
		return Entry{}, false
	}
	// Validate: the decoded item must be selected in exactly the hit
	// trials.
	for t := 0; t < gh.d; t++ {
		sel := gh.xsel[s][t].Hash(id)
		hit := gfunc.GnpIota(uint64(abs64(gh.m[s][t]))) == iStar
		if sel != hit {
			return Entry{}, false
		}
	}
	return Entry{Item: id, Freq: 0, Weight: math.Pow(2, -float64(iStar))}, true
}

// SpaceBytes reports the counter storage.
func (gh *GnpHeavy) SpaceBytes() int {
	return gh.c * gh.d * (1 + gh.bitsN) * 8
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
