package heavy

import (
	"fmt"

	"repro/internal/gfunc"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// TwoPass implements Algorithm 1, the 2-pass (g, λ, 0, δ)-heavy-hitter
// algorithm:
//
//	First pass:  S ← CountSketch(λ/2H(M), 1/3, δ), keeping only the
//	             identities of the top 2H(M)/λ estimated items.
//	Second pass: tabulate v_j exactly for every j ∈ S.
//	Return (j, v_j) for all j ∈ S.
//
// By Lemma 17/18, every (g, λ)-heavy hitter of a slow-jumping and
// slow-dropping g is an F2 λ/2H(M)-heavy hitter, so the CountSketch pass
// finds them all; the exact second pass removes any dependence on the local
// variability of g, which is why predictability is not needed (Theorem 3).
type TwoPass struct {
	g      gfunc.Func
	cs     *sketch.CountSketch
	topk   int
	cands  []uint64
	counts map[uint64]int64
	done   bool
}

// TwoPassConfig configures Algorithm 1.
type TwoPassConfig struct {
	G      gfunc.Func
	Lambda float64 // heaviness λ
	Delta  float64 // failure probability δ
	// H is the envelope H(M) of the function (gfunc.MeasureEnvelope). The
	// sketch width scales with it; intractable functions force it (and
	// hence the space) to grow polynomially.
	H float64
	// WidthFactor scales the bucket count for experiment sweeps; 0 means 1.
	WidthFactor float64
}

// NewTwoPass returns a fresh Algorithm 1 instance.
func NewTwoPass(cfg TwoPassConfig, rng *util.SplitMix64) *TwoPass {
	wf := cfg.WidthFactor
	if wf == 0 {
		wf = 1
	}
	h := cfg.H
	if h < 1 {
		h = 1
	}
	// Pass 1 needs only identification, not (1±ε) estimates, so ε = 1/3
	// as in the paper's Algorithm 1.
	rows, buckets, topk := dims(cfg.Lambda/2, 1.0/3, cfg.Delta, h, wf)
	return &TwoPass{
		g:      cfg.G,
		cs:     sketch.NewCountSketchTopK(rows, buckets, topk, rng.Fork()),
		topk:   topk,
		counts: make(map[uint64]int64),
	}
}

// Pass1 feeds an update to the identification pass.
func (t *TwoPass) Pass1(item uint64, delta int64) {
	t.cs.Update(item, delta)
}

// FinishPass1 extracts the candidate identities, discarding the estimated
// frequencies exactly as Algorithm 1 specifies.
func (t *TwoPass) FinishPass1() {
	for _, c := range t.cs.TopK() {
		t.cands = append(t.cands, c.Item)
		t.counts[c.Item] = 0
	}
}

// Pass2 tabulates exact frequencies for the candidates.
func (t *TwoPass) Pass2(item uint64, delta int64) {
	if _, ok := t.counts[item]; ok {
		t.counts[item] += delta
	}
}

// Cover returns (j, v_j, g(|v_j|)) for every candidate with nonzero
// frequency. Weights are exact, i.e. this is a (g, λ, 0)-cover.
func (t *TwoPass) Cover() Cover {
	t.done = true
	cover := make(Cover, 0, len(t.cands))
	for _, it := range t.cands {
		f := t.counts[it]
		if f == 0 {
			continue
		}
		cover = append(cover, Entry{
			Item:   it,
			Freq:   f,
			Weight: t.g.Eval(uint64(util.AbsInt64(f))),
		})
	}
	cover.sortByWeight()
	return cover
}

// SpaceBytes reports the CountSketch counters plus the candidate table
// (16 bytes per candidate).
func (t *TwoPass) SpaceBytes() int {
	return t.cs.SpaceBytes() + t.topk*16
}

// Pass1Batch feeds a batch to the identification pass through the
// CountSketch batch path.
func (t *TwoPass) Pass1Batch(batch []stream.Update) {
	t.cs.UpdateBatch(batch)
}

// Pass2Batch tabulates a batch in the second pass.
func (t *TwoPass) Pass2Batch(batch []stream.Update) {
	for _, u := range batch {
		if _, ok := t.counts[u.Item]; ok {
			t.counts[u.Item] += u.Delta
		}
	}
}

// MergePass1 folds another instance's first-pass state (same
// configuration and seed) into t: CountSketch counters add linearly and
// the candidate trackers merge by re-scoring against the merged
// counters. Call before FinishPass1.
func (t *TwoPass) MergePass1(other *TwoPass) error {
	if t.topk != other.topk {
		return fmt.Errorf("heavy: TwoPass merge config mismatch")
	}
	return t.cs.MergeTopK(other.cs)
}

// AdoptCandidates copies the candidate set extracted by from.FinishPass1
// into t and resets the tabulation counts, so that a worker can run
// Pass2 over its shard against the coordinator's candidate set. It
// replaces FinishPass1 on the adopting side.
func (t *TwoPass) AdoptCandidates(from *TwoPass) {
	t.cands = append(t.cands[:0], from.cands...)
	t.counts = make(map[uint64]int64, len(t.cands))
	for _, it := range t.cands {
		t.counts[it] = 0
	}
}

// MergePass2 adds another instance's second-pass tabulation into t. Both
// sides must hold the same candidate set (AdoptCandidates); exact counts
// add linearly, so the merged tabulation equals a single pass over the
// union stream.
func (t *TwoPass) MergePass2(other *TwoPass) {
	for it, c := range other.counts {
		if _, ok := t.counts[it]; ok {
			t.counts[it] += c
		}
	}
}

// RunTwoPass runs Algorithm 1 over a replayable update sequence and
// returns the cover. each must iterate the same updates on every call.
func RunTwoPass(cfg TwoPassConfig, rng *util.SplitMix64, each func(fn func(item uint64, delta int64))) Cover {
	t := NewTwoPass(cfg, rng)
	each(t.Pass1)
	t.FinishPass1()
	each(t.Pass2)
	return t.Cover()
}
