package heavy

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// skewedStream returns a zipfian stream plus its frequency map.
func skewedStream(seed uint64) (*stream.Stream, map[uint64]int64) {
	s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 300, 1.2)
	return s, s.Vector()
}

func TestExactHeavyDefinition(t *testing.T) {
	g := gfunc.F2Func()
	freqs := map[uint64]int64{1: 100, 2: 3, 3: 2, 4: -1}
	// g-values: 10000, 9, 4, 1; total = 10014.
	cover := ExactHeavy(g, 0.5, freqs)
	if len(cover) != 1 || cover[0].Item != 1 {
		t.Fatalf("cover = %+v, want only item 1", cover)
	}
	// Lower the bar so item 2 qualifies: 9 >= λ(10014-9) needs λ <= 9e-4.
	cover = ExactHeavy(g, 0.0008, freqs)
	if !cover.Contains(1) || !cover.Contains(2) {
		t.Errorf("cover = %+v, want items 1 and 2", cover)
	}
}

func TestOnePassCoverFindsExactHeavy(t *testing.T) {
	g := gfunc.F2Func()
	for seed := uint64(1); seed <= 5; seed++ {
		s, freqs := skewedStream(seed)
		lambda := 0.05
		h := gfunc.MeasureEnvelope(g, 1<<10).H()
		op := NewOnePass(OnePassConfig{G: g, Lambda: lambda, Eps: 0.25, Delta: 0.1, H: h},
			util.NewSplitMix64(seed*31))
		s.Each(func(u stream.Update) { op.Update(u.Item, u.Delta) })
		cover := op.Cover()

		want := ExactHeavy(g, lambda, freqs)
		for _, e := range want {
			if !cover.Contains(e.Item) {
				t.Errorf("seed %d: (g,λ)-heavy item %d (weight %.4g) missing from 1-pass cover",
					seed, e.Item, e.Weight)
			}
		}
		// Weights of covered true-heavy items must be within (1±ε).
		for _, e := range cover {
			f, ok := freqs[e.Item]
			if !ok {
				continue
			}
			trueW := g.Eval(uint64(util.AbsInt64(f)))
			if trueW > 0 && util.RelErr(e.Weight, trueW) > 0.25 {
				t.Errorf("seed %d: weight of %d is %.4g, want %.4g (err > ε)",
					seed, e.Item, e.Weight, trueW)
			}
		}
	}
}

func TestTwoPassCoverExactWeights(t *testing.T) {
	g := gfunc.SinSqrtX2() // unpredictable: 1-pass pruning would drop items
	for seed := uint64(1); seed <= 3; seed++ {
		s, freqs := skewedStream(seed)
		lambda := 0.05
		h := gfunc.MeasureEnvelope(g, 1<<10).H()
		cover := RunTwoPass(TwoPassConfig{G: g, Lambda: lambda, Delta: 0.1, H: h},
			util.NewSplitMix64(seed*37),
			func(fn func(item uint64, delta int64)) {
				s.Each(func(u stream.Update) { fn(u.Item, u.Delta) })
			})

		want := ExactHeavy(g, lambda, freqs)
		for _, e := range want {
			if !cover.Contains(e.Item) {
				t.Errorf("seed %d: heavy item %d missing from 2-pass cover", seed, e.Item)
			}
		}
		// Two-pass weights are exact (ε = 0).
		for _, e := range cover {
			trueW := g.Eval(uint64(util.AbsInt64(freqs[e.Item])))
			if e.Weight != trueW {
				t.Errorf("seed %d: item %d weight %.6g != exact %.6g",
					seed, e.Item, e.Weight, trueW)
			}
		}
	}
}

func TestOnePassPruningDropsUnstableHeavy(t *testing.T) {
	// E3's mechanism: for the unpredictable (2+sin √x)x², plant a heavy
	// item at a steep point of the oscillation with lots of tail noise so
	// the sketch cannot certify g; the pruning step must reject rather
	// than report a wrong weight. We verify the pruning branch directly
	// via stableUnder.
	g := gfunc.SinSqrtX2()
	// Find an x where g moves more than 25% within ±200 (at x ~ 10⁴ a
	// ±200 offset swings √x by ~1 radian, so the modulation moves by
	// Θ(1) while x² moves by < 1%).
	var x uint64
	for cand := uint64(10000); cand < 200000; cand += 7 {
		if !stableUnder(g, cand, 200, 0.25) {
			x = cand
			break
		}
	}
	if x == 0 {
		t.Fatal("no unstable point found for (2+sin sqrt x)x^2")
	}
	if stableUnder(g, x, 200, 0.25) {
		t.Error("stableUnder inconsistent")
	}
	// Smooth function: the same windows are stable at large x.
	if !stableUnder(gfunc.F2Func(), 100000, 200, 0.25) {
		t.Error("x² should be stable under ±200 at x=100000")
	}
}

func TestGSumExact(t *testing.T) {
	g := gfunc.F1Func()
	freqs := map[uint64]int64{1: 2, 2: -3, 5: 4}
	if got := GSumExact(g, freqs); got != 9 {
		t.Errorf("GSumExact = %v, want 9", got)
	}
}

func TestCoverHelpers(t *testing.T) {
	c := Cover{{Item: 1, Weight: 5}, {Item: 2, Weight: 3}}
	if !c.Contains(1) || c.Contains(9) {
		t.Error("Contains wrong")
	}
	if c.WeightSum() != 8 {
		t.Errorf("WeightSum = %v, want 8", c.WeightSum())
	}
	items := c.Items()
	if len(items) != 2 {
		t.Errorf("Items = %v", items)
	}
}

func TestDimsMonotonicity(t *testing.T) {
	// Smaller λ or ε must never shrink the sketch.
	_, b1, k1 := dims(0.1, 0.25, 0.1, 4, 1)
	_, b2, k2 := dims(0.01, 0.25, 0.1, 4, 1)
	if b2 < b1 || k2 < k1 {
		t.Errorf("smaller lambda shrank dims: b %d->%d, k %d->%d", b1, b2, k1, k2)
	}
	_, b3, _ := dims(0.1, 0.05, 0.1, 4, 1)
	if b3 < b1 {
		t.Errorf("smaller eps shrank buckets: %d -> %d", b1, b3)
	}
}

func TestDimsPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for lambda = 0")
		}
	}()
	dims(0, 0.1, 0.1, 1, 1)
}
