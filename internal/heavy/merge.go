package heavy

import "fmt"

// Merge folds another OnePass instance (same configuration and seed, i.e.
// identical hash functions) into o. The result is the Algorithm 2 state
// that a single pass over the concatenated streams would have produced,
// up to the top-k tracker's admission order — candidate sets may differ on
// ties, covers of genuinely heavy items do not. This is what makes the
// one-pass estimator distributable: shard the stream, sketch each shard
// with the same seed, merge.
func (o *OnePass) Merge(other *OnePass) error {
	if o.eps != other.eps || o.h != other.h || o.topk != other.topk {
		return fmt.Errorf("heavy: OnePass merge config mismatch")
	}
	return o.cs.MergeTopK(other.cs)
}
