package heavy

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/util"
)

// Fuzz receivers are small fixed instances; the seeds below marshal the
// same configuration so the corpus exercises the deep decode paths.

func fuzzOnePass() *OnePass {
	return NewOnePass(OnePassConfig{
		G: gfunc.F2Func(), Lambda: 0.25, Eps: 0.5, Delta: 0.3, H: 2,
	}, util.NewSplitMix64(5))
}

func fuzzTwoPass() *TwoPass {
	return NewTwoPass(TwoPassConfig{
		G: gfunc.F2Func(), Lambda: 0.25, Delta: 0.3, H: 2,
	}, util.NewSplitMix64(6))
}

func fuzzGnp() *GnpHeavy {
	return NewGnpHeavy(GnpHeavyConfig{N: 64, Lambda: 0.5, Trials: 4, Substreams: 8},
		util.NewSplitMix64(7))
}

func addSeeds(f *testing.F, valid []byte) {
	f.Add(valid)
	for _, cut := range []int{0, 3, 13, 14, 30, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[0] ^= 0xff
	f.Add(corrupt)
	corrupt2 := append([]byte(nil), valid...)
	corrupt2[len(corrupt2)/2] ^= 0x55
	f.Add(corrupt2)
}

func FuzzOnePassUnmarshal(f *testing.F) {
	src := fuzzOnePass()
	src.Update(9, 4)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		op := fuzzOnePass()
		_ = op.UnmarshalBinary(data) // must not panic
	})
}

func FuzzTwoPassUnmarshal(f *testing.F) {
	src := fuzzTwoPass()
	src.Pass1(9, 4)
	src.FinishPass1()
	src.Pass2(9, 4)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	cands, err := src.MarshalCandidates()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cands)
	f.Fuzz(func(t *testing.T, data []byte) {
		tp := fuzzTwoPass()
		_ = tp.UnmarshalBinary(data)     // must not panic
		_ = tp.UnmarshalCandidates(data) // must not panic
	})
}

func FuzzGnpUnmarshal(f *testing.F) {
	src := fuzzGnp()
	src.Update(3, 8)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		gh := fuzzGnp()
		_ = gh.UnmarshalBinary(data) // must not panic
	})
}
