package heavy

import (
	"fmt"

	"repro/internal/wire"
)

// Wire formats for the heavy-hitter layer (header per internal/wire:
// magic u32 | version u16 | fingerprint u64, all big endian). As with
// sketch.CountSketch, hash functions never travel — the fingerprint
// digests them so a decode onto a receiver built from a different seed
// or configuration fails fast, and UnmarshalBinary has merge semantics:
// it ADDS the serialized shard state into the receiver.

const (
	onePassMagic uint32 = 0x67535548 // "gSUH"
	twoPassMagic uint32 = 0x67535532 // "gSU2"
	gnpMagic     uint32 = 0x6753554e // "gSUN"
	candsMagic   uint32 = 0x67535551 // "gSUQ" — two-pass candidate set
)

// Fingerprint digests the Algorithm 2 configuration: the function name,
// the accuracy/envelope parameters, and the underlying CountSketch
// (dimensions + hash coefficients).
func (o *OnePass) Fingerprint() uint64 {
	h := wire.FingerprintString(0, o.g.Name())
	h = wire.FingerprintFloat(h, o.eps)
	h = wire.FingerprintFloat(h, o.h)
	h = wire.Fingerprint(h, uint64(o.topk))
	return wire.Fingerprint(h, o.cs.Fingerprint())
}

// MarshalBinary serializes the Algorithm 2 state: the CountSketch
// counters and the tracked candidate identities.
func (o *OnePass) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(onePassMagic, o.Fingerprint())
	blob, err := o.cs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(blob)
	return w.Bytes(), nil
}

// UnmarshalBinary adds serialized shard state into o (merge semantics):
// counters add by linearity and the shard's candidates are re-offered
// against the merged state, exactly as Merge does in-process.
func (o *OnePass) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(onePassMagic, o.Fingerprint()); err != nil {
		return fmt.Errorf("heavy: OnePass: %w", err)
	}
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return fmt.Errorf("heavy: OnePass: %w", err)
	}
	return o.cs.UnmarshalBinary(blob)
}

// Fingerprint digests the Algorithm 1 configuration: the function name,
// the candidate capacity, and the first-pass CountSketch.
func (t *TwoPass) Fingerprint() uint64 {
	h := wire.FingerprintString(0, t.g.Name())
	h = wire.Fingerprint(h, uint64(t.topk))
	return wire.Fingerprint(h, t.cs.Fingerprint())
}

// MarshalBinary serializes the full Algorithm 1 state: the first-pass
// CountSketch, the extracted candidate identities (empty before
// FinishPass1), and their second-pass tabulations.
func (t *TwoPass) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(twoPassMagic, t.Fingerprint())
	blob, err := t.cs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(blob)
	w.U64s(t.cands)
	counts := make([]int64, len(t.cands))
	for i, it := range t.cands {
		counts[i] = t.counts[it]
	}
	w.I64s(counts)
	return w.Bytes(), nil
}

// UnmarshalBinary adds serialized shard state into t (merge semantics).
// The first-pass counters merge by linearity (MergePass1). If the
// payload carries a candidate set, the receiver must either hold none
// yet (it adopts the sender's, as AdoptCandidates) or hold the identical
// set (tabulations add, as MergePass2).
func (t *TwoPass) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(twoPassMagic, t.Fingerprint()); err != nil {
		return fmt.Errorf("heavy: TwoPass: %w", err)
	}
	blob := r.Blob()
	cands := r.U64s()
	counts := r.I64s()
	if err := r.Err(); err != nil {
		return fmt.Errorf("heavy: TwoPass: %w", err)
	}
	if len(counts) != len(cands) {
		return fmt.Errorf("heavy: TwoPass: %d tabulations for %d candidates", len(counts), len(cands))
	}
	// Validate the candidate section BEFORE mutating anything, so an
	// incompatible payload never leaves t half-merged.
	adopt := false
	if len(cands) > 0 {
		switch {
		case len(t.cands) == 0:
			adopt = true
		case len(t.cands) != len(cands):
			return fmt.Errorf("heavy: TwoPass: candidate set mismatch (%d vs %d)", len(t.cands), len(cands))
		default:
			for _, it := range cands {
				if _, ok := t.counts[it]; !ok {
					return fmt.Errorf("heavy: TwoPass: candidate %d not in local set", it)
				}
			}
		}
	}
	if err := t.cs.UnmarshalBinary(blob); err != nil {
		return err
	}
	switch {
	case len(cands) == 0:
	case adopt:
		t.cands = append(t.cands[:0], cands...)
		t.counts = make(map[uint64]int64, len(cands))
		for i, it := range cands {
			t.counts[it] = counts[i]
		}
	default:
		for i, it := range cands {
			t.counts[it] += counts[i]
		}
	}
	return nil
}

// MarshalCandidates serializes only the candidate identities extracted
// by FinishPass1, the coordinator -> worker half of the distributed
// two-pass protocol (the counter-free analog of AdoptCandidates).
func (t *TwoPass) MarshalCandidates() ([]byte, error) {
	var w wire.Writer
	w.Header(candsMagic, t.Fingerprint())
	w.U64s(t.cands)
	return w.Bytes(), nil
}

// UnmarshalCandidates adopts a serialized candidate set, resetting the
// second-pass tabulations to zero (AdoptCandidates over the wire).
func (t *TwoPass) UnmarshalCandidates(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(candsMagic, t.Fingerprint()); err != nil {
		return fmt.Errorf("heavy: TwoPass candidates: %w", err)
	}
	cands := r.U64s()
	if err := r.Err(); err != nil {
		return fmt.Errorf("heavy: TwoPass candidates: %w", err)
	}
	t.cands = append(t.cands[:0], cands...)
	t.counts = make(map[uint64]int64, len(cands))
	for _, it := range cands {
		t.counts[it] = 0
	}
	return nil
}

// Fingerprint digests the Appendix D.1 configuration: domain, substream
// and trial counts, and every selection hash.
func (gh *GnpHeavy) Fingerprint() uint64 {
	h := wire.Fingerprint(0, gh.n)
	h = wire.Fingerprint(h, uint64(gh.c))
	h = wire.Fingerprint(h, uint64(gh.d))
	h = wire.Fingerprint(h, uint64(gh.bitsN))
	h = gh.part.Fingerprint(h)
	for s := 0; s < gh.c; s++ {
		for t := 0; t < gh.d; t++ {
			h = gh.xsel[s][t].Fingerprint(h)
		}
	}
	return h
}

// MarshalBinary serializes the per-substream trial counters. Layout:
// header | c u32 | d u32 | bitsN u32 | m (c*d i64) | mbit (c*d*bitsN i64)
// | updates u64.
func (gh *GnpHeavy) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(gnpMagic, gh.Fingerprint())
	w.U32(uint32(gh.c))
	w.U32(uint32(gh.d))
	w.U32(uint32(gh.bitsN))
	flat := make([]int64, 0, gh.c*gh.d)
	for s := 0; s < gh.c; s++ {
		flat = append(flat, gh.m[s]...)
	}
	w.I64s(flat)
	flat = make([]int64, 0, gh.c*gh.d*gh.bitsN)
	for s := 0; s < gh.c; s++ {
		for t := 0; t < gh.d; t++ {
			flat = append(flat, gh.mbit[s][t]...)
		}
	}
	w.I64s(flat)
	w.U64(uint64(gh.updates))
	return w.Bytes(), nil
}

// UnmarshalBinary adds serialized shard counters into gh (merge
// semantics): the trial sums m and the bit-restricted sums mbit are
// linear in the frequency vector, so addition yields the state of the
// union stream.
func (gh *GnpHeavy) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(gnpMagic, gh.Fingerprint()); err != nil {
		return fmt.Errorf("heavy: GnpHeavy: %w", err)
	}
	c, d, bits := int(r.U32()), int(r.U32()), int(r.U32())
	if r.Err() == nil && (c != gh.c || d != gh.d || bits != gh.bitsN) {
		return fmt.Errorf("heavy: GnpHeavy: dimension mismatch: wire %dx%dx%d vs local %dx%dx%d",
			c, d, bits, gh.c, gh.d, gh.bitsN)
	}
	m := make([]int64, gh.c*gh.d)
	r.I64sInto(m)
	mbit := make([]int64, gh.c*gh.d*gh.bitsN)
	r.I64sInto(mbit)
	updates := r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("heavy: GnpHeavy: %w", err)
	}
	for s := 0; s < gh.c; s++ {
		for t := 0; t < gh.d; t++ {
			gh.m[s][t] += m[s*gh.d+t]
			for b := 0; b < gh.bitsN; b++ {
				gh.mbit[s][t][b] += mbit[(s*gh.d+t)*gh.bitsN+b]
			}
		}
	}
	gh.updates += int(updates)
	return nil
}

// Merge folds another GnpHeavy instance (same configuration and seed)
// into gh in-process; the counters are linear, so the result is the
// state of the union stream.
func (gh *GnpHeavy) Merge(other *GnpHeavy) error {
	if gh.Fingerprint() != other.Fingerprint() {
		return fmt.Errorf("heavy: GnpHeavy merge configuration/seed mismatch")
	}
	for s := 0; s < gh.c; s++ {
		for t := 0; t < gh.d; t++ {
			gh.m[s][t] += other.m[s][t]
			for b := 0; b < gh.bitsN; b++ {
				gh.mbit[s][t][b] += other.mbit[s][t][b]
			}
		}
	}
	gh.updates += other.updates
	return nil
}
