package heavy

import (
	"math"
	"sort"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// Entry is one element of a (g, λ, ε)-cover: an item believed heavy, its
// (approximate or exact) frequency, and the weight w ≈ g(|v_i|).
type Entry struct {
	Item   uint64
	Freq   int64
	Weight float64
}

// Cover is a (g, λ, ε)-cover (Definition 12): it contains every
// (g, λ)-heavy hitter, each with weight within (1±ε) of g(|v_i|).
type Cover []Entry

// Items returns the item identities in the cover.
func (c Cover) Items() []uint64 {
	out := make([]uint64, len(c))
	for i, e := range c {
		out[i] = e.Item
	}
	return out
}

// Contains reports whether the cover includes the item.
func (c Cover) Contains(item uint64) bool {
	for _, e := range c {
		if e.Item == item {
			return true
		}
	}
	return false
}

// WeightSum returns Σ weights, the heavy part of the g-SUM.
func (c Cover) WeightSum() float64 {
	var s float64
	for _, e := range c {
		s += e.Weight
	}
	return s
}

// sortByWeight orders the cover by decreasing weight, breaking ties by item
// id for determinism.
func (c Cover) sortByWeight() {
	sort.Slice(c, func(i, j int) bool {
		if c[i].Weight != c[j].Weight {
			return c[i].Weight > c[j].Weight
		}
		return c[i].Item < c[j].Item
	})
}

// Sketcher is a one-pass heavy-hitter algorithm: it ingests turnstile
// updates and finalizes into a cover. The recursive sketch of Theorem 13
// composes per-level Sketchers into a g-SUM estimator.
type Sketcher interface {
	Update(item uint64, delta int64)
	// Cover finalizes and returns the (g, λ, ε)-cover. It may be called
	// once; behaviour of further Updates is undefined.
	Cover() Cover
	// SpaceBytes reports counter storage, the quantity the space bounds
	// govern.
	SpaceBytes() int
}

// BatchSketcher is a Sketcher with an amortized bulk ingestion path
// (see internal/engine): UpdateBatch must leave the counter state
// exactly as the equivalent sequence of Update calls would.
type BatchSketcher interface {
	Sketcher
	UpdateBatch(batch []stream.Update)
}

// TwoPassSketcher is a two-pass heavy-hitter algorithm (Algorithm 1):
// the stream is presented once to Pass1 and then again to Pass2.
type TwoPassSketcher interface {
	Pass1(item uint64, delta int64)
	// FinishPass1 must be called between the passes; it extracts the
	// candidate set that Pass2 tabulates.
	FinishPass1()
	Pass2(item uint64, delta int64)
	Cover() Cover
	SpaceBytes() int
}

// ExactHeavy computes the exact (g, λ)-heavy hitters of a frequency vector
// per Definition 11: items j with g(|v_j|) >= λ Σ_{i≠j} g(|v_i|). The
// returned cover has exact frequencies and weights. It is the ground truth
// for recall experiments.
func ExactHeavy(g gfunc.Func, lambda float64, freqs map[uint64]int64) Cover {
	var total float64
	weights := make(map[uint64]float64, len(freqs))
	for it, f := range freqs {
		w := g.Eval(uint64(util.AbsInt64(f)))
		weights[it] = w
		total += w
	}
	var cover Cover
	for it, w := range weights {
		if w >= lambda*(total-w) && w > 0 {
			cover = append(cover, Entry{Item: it, Freq: freqs[it], Weight: w})
		}
	}
	cover.sortByWeight()
	return cover
}

// GSumExact computes Σ g(|v_i|) exactly from a frequency map.
func GSumExact(g gfunc.Func, freqs map[uint64]int64) float64 {
	var s float64
	for _, f := range freqs {
		s += g.Eval(uint64(util.AbsInt64(f)))
	}
	return s
}

// dims computes CountSketch dimensions for a heavy-hitter configuration:
// rows from the failure probability, buckets from the heaviness and
// envelope parameters. widthFactor scales the bucket count (experiments
// sweep it; 1.0 is the theoretically shaped default).
func dims(lambda, eps, delta, h, widthFactor float64) (rows int, buckets uint64, topk int) {
	if lambda <= 0 || lambda > 1 {
		panic("heavy: lambda must be in (0, 1]")
	}
	if h < 1 {
		h = 1
	}
	rows = int(math.Ceil(2 * math.Log(2/delta)))
	if rows < 5 {
		rows = 5
	}
	if rows%2 == 0 {
		rows++ // odd row count gives a true median
	}
	// Buckets: a λ/H-heavy item for F2 has v² >= (λ/H) F2, and the point
	// query errs by ~ sqrt(F2/b), so identification needs b ≳ 16 H/λ and
	// (1±ε) frequency accuracy on heavy items needs b ≳ H/(λ ε²).
	b := widthFactor * math.Max(16*h/lambda, h/(lambda*eps*eps))
	if b < 8 {
		b = 8
	}
	buckets = util.NextPow2(uint64(b))
	// Candidates tracked: all items that could be λ/H-heavy for F2.
	topk = int(math.Ceil(2*h/lambda)) + 1
	return rows, buckets, topk
}
