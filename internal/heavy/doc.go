// Package heavy implements the paper's heavy-hitter layer:
//
//   - Definition 11/12: (g, λ)-heavy hitters and (g, λ, ε)-covers;
//   - Algorithm 1: the 2-pass (g, λ, 0, δ)-heavy-hitter algorithm
//     (CountSketch pass to identify candidates, exact tabulation pass);
//   - Algorithm 2: the 1-pass (g, λ, ε, δ)-heavy-hitter algorithm
//     (CountSketch + AMS F2, then the predictability pruning step);
//   - the dedicated 1-pass algorithm for the nearly periodic function g_np
//     from Appendix D.1;
//   - an exact baseline for ground truth in tests and experiments.
//
// Layer: the algorithm layer of ARCHITECTURE.md, between the raw
// sketches and the recursive sketch.
// Seed discipline: all hash state forks from the constructor rng in
// fixed order; Merge/UnmarshalBinary require identically-configured,
// same-seed instances, checked on the wire by fingerprints. Candidate
// trackers merge best-effort but deterministically (see ARCHITECTURE.md's
// merge contract).
package heavy
