package heavy

import (
	"math"

	"repro/internal/gfunc"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// OnePass implements Algorithm 2, the 1-pass (g, λ, ε, δ)-heavy-hitter
// algorithm:
//
//	Ŝ, V̂ ← CountSketch(λ/3H(M), ε/2H(M), δ/2)
//	F̂2  ← AMS(ε, δ/2)
//	S   ← { i ∈ Ŝ : |g(v̂_i) - g(v̂_i + y)| ≤ ε g(v̂_i + y)
//	        for all |y| ≤ (ε/2H(M)) √F̂2 }
//	return (j, v̂_j) for j ∈ S
//
// The pruning step is where predictability enters: for a predictable g,
// every genuine (g, λ)-heavy hitter's estimate v̂ sits in a stability
// window wider than the CountSketch error, so it survives, while items
// whose g-value the sketch cannot pin down to (1±ε) are discarded. For an
// unpredictable g the window collapses and genuine heavy hitters are
// pruned — the experimentally visible face of the Lemma 25 lower bound.
type OnePass struct {
	g       gfunc.Func
	cs      *sketch.CountSketch
	eps     float64
	h       float64
	topk    int
	noPrune bool
}

// OnePassConfig configures Algorithm 2.
type OnePassConfig struct {
	G      gfunc.Func
	Lambda float64 // heaviness λ
	Eps    float64 // weight accuracy ε
	Delta  float64 // failure probability δ
	// H is the envelope H(M) from gfunc.MeasureEnvelope.
	H float64
	// WidthFactor scales the bucket count for experiment sweeps; 0 means 1.
	WidthFactor float64
	// DisablePruning turns off the stability pruning (ablation: shows why
	// Algorithm 2 needs the step for unpredictable functions).
	DisablePruning bool
}

// NewOnePass returns a fresh Algorithm 2 instance.
func NewOnePass(cfg OnePassConfig, rng *util.SplitMix64) *OnePass {
	wf := cfg.WidthFactor
	if wf == 0 {
		wf = 1
	}
	h := cfg.H
	if h < 1 {
		h = 1
	}
	rows, buckets, topk := dims(cfg.Lambda/3, cfg.Eps, cfg.Delta/2, h, wf)
	return &OnePass{
		g:       cfg.G,
		cs:      sketch.NewCountSketchTopK(rows, buckets, topk, rng.Fork()),
		eps:     cfg.Eps,
		h:       h,
		topk:    topk,
		noPrune: cfg.DisablePruning,
	}
}

// Update feeds one turnstile update.
func (o *OnePass) Update(item uint64, delta int64) {
	o.cs.Update(item, delta)
}

// UpdateBatch feeds a batch of turnstile updates through the CountSketch
// batch path, which aggregates duplicate items and re-scores the top-k
// tracker once per distinct item instead of once per update.
func (o *OnePass) UpdateBatch(batch []stream.Update) {
	o.cs.UpdateBatch(batch)
}

// ErrorWindow returns the additive frequency-error bound the pruning step
// guards against. The paper writes it as (ε/2H(M))√F̂2 for a CountSketch
// sized with λ' = λ/3H, ε' = ε/2H; with the sketch's dimensions made
// explicit the same quantity is the point-query error bound relative to
// the *tail* F2 — §3.1's guarantee is |v̂_ij - v_ij| <= ε (Σ_{j>k} v̄²)^{1/2},
// the residual after the top-k items are excluded — namely 2√(F̂2tail/b).
// F̂2 comes from the CountSketch row norms (an AMS-equivalent estimator;
// see sketch.CountSketch.EstimateF2), so Algorithm 2 needs no second
// structure.
func (o *OnePass) ErrorWindow() int64 {
	return o.errorWindow(o.cs.TopK())
}

func (o *OnePass) errorWindow(cands []sketch.Candidate) int64 {
	f2 := o.cs.EstimateF2()
	for _, c := range cands {
		e := float64(c.Est)
		f2 -= e * e
	}
	if f2 < 0 {
		f2 = 0
	}
	w := 2 * math.Sqrt(f2/float64(o.cs.Buckets()))
	if w < 1 {
		// The residual tail is below one unit of frequency: point queries
		// are exact and no stability pruning is warranted. (Flooring this
		// at 1 would permanently prune items with |v| <= 1/ε for g with
		// unit-scale variation, losing their mass at every level.)
		return 0
	}
	return int64(w)
}

// Cover finalizes: extracts candidates, prunes unstable ones, and returns
// the surviving (item, v̂, g(|v̂|)) entries.
func (o *OnePass) Cover() Cover {
	return o.CoverFor(o.g)
}

// CoverFor extracts a cover for an arbitrary function g against the same
// sketch state. This is the universal-sketch property the paper's
// Section 1.1.1 application relies on: the linear sketch is independent of
// g, so one pass supports post-hoc queries for a whole family {g_θ}
// (each correct with the sketch's own probability). The sketch width must
// have been sized for an envelope H dominating every queried function.
func (o *OnePass) CoverFor(g gfunc.Func) Cover {
	cands := o.cs.TopK()
	window := o.errorWindow(cands)
	cover := make(Cover, 0, o.topk)
	for _, c := range cands {
		if c.Est == 0 {
			continue
		}
		v := uint64(util.AbsInt64(c.Est))
		if !o.noPrune && !stableUnder(g, v, window, o.eps) {
			continue
		}
		cover = append(cover, Entry{
			Item:   c.Item,
			Freq:   c.Est,
			Weight: g.Eval(v),
		})
	}
	cover.sortByWeight()
	return cover
}

// SpaceBytes reports the CountSketch counters plus the candidate table.
func (o *OnePass) SpaceBytes() int {
	return o.cs.SpaceBytes() + o.topk*16
}

// stableUnder reports whether |g(v) - g(v+y)| <= eps * g(v+y) for all
// offsets |y| <= window (clamped to keep v+y >= 0). The scan is dense for
// small offsets and geometric beyond 64, which catches every failure mode
// in the catalog (oscillations reveal themselves within a few steps of
// their wavelength, and the geometric tail covers scale changes).
func stableUnder(g gfunc.Func, v uint64, window int64, eps float64) bool {
	gv := g.Eval(v)
	check := func(z uint64) bool {
		gz := g.Eval(z)
		return math.Abs(gv-gz) <= eps*gz
	}
	probe := func(y int64) bool {
		if y >= 0 {
			return check(v + uint64(y))
		}
		u := uint64(-y)
		if u > v {
			return true // below zero: outside the domain, no constraint
		}
		return check(v - u)
	}
	for y := int64(1); y <= window && y <= 64; y++ {
		if !probe(y) || !probe(-y) {
			return false
		}
	}
	for y := int64(96); y <= window; y = y + y/2 {
		if !probe(y) || !probe(-y) {
			return false
		}
	}
	if window > 64 {
		if !probe(window) || !probe(-window) {
			return false
		}
	}
	return true
}
