package heavy

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// gnpStream plants one item whose frequency has a very low ι (odd value,
// g_np = 1) among items with high ι (large powers of two, g_np small), the
// regime where the planted item is a (g_np, λ)-heavy hitter.
func gnpStream(seed uint64, n uint64, others int) (*stream.Stream, uint64) {
	rng := util.NewSplitMix64(seed)
	s := stream.New(n)
	heavy := rng.Uint64n(n)
	s.Add(heavy, 12345) // odd: ι = 0, g_np = 1
	placed := 0
	for placed < others {
		it := rng.Uint64n(n)
		if it == heavy {
			continue
		}
		// frequency divisible by 1024: ι >= 10, g_np <= 2^-10
		s.Add(it, 1024*(1+rng.Int63n(64)))
		placed++
	}
	return s, heavy
}

func TestGnpHeavyRecoversPlanted(t *testing.T) {
	found := 0
	const trials = 10
	for seed := uint64(1); seed <= trials; seed++ {
		s, want := gnpStream(seed, 1<<12, 40)
		gh := NewGnpHeavy(GnpHeavyConfig{N: 1 << 12, Lambda: 0.3}, util.NewSplitMix64(seed*101))
		s.Each(func(u stream.Update) { gh.Update(u.Item, u.Delta) })
		cover := gh.Cover()
		if cover.Contains(want) {
			// the recovered weight must be exactly g_np(v) = 1
			for _, e := range cover {
				if e.Item == want && e.Weight != 1 {
					t.Errorf("seed %d: weight %.4g, want 1", seed, e.Weight)
				}
			}
			found++
		}
	}
	if found < trials*2/3 {
		t.Errorf("planted g_np heavy hitter found in only %d/%d trials", found, trials)
	}
}

func TestGnpHeavyNoFalseIdentities(t *testing.T) {
	// Every reported item must actually exist in the stream with the
	// reported g_np value.
	for seed := uint64(1); seed <= 5; seed++ {
		s, _ := gnpStream(seed, 1<<12, 40)
		v := s.Vector()
		gh := NewGnpHeavy(GnpHeavyConfig{N: 1 << 12, Lambda: 0.3}, util.NewSplitMix64(seed*103))
		s.Each(func(u stream.Update) { gh.Update(u.Item, u.Delta) })
		g := gfunc.Gnp()
		for _, e := range gh.Cover() {
			f, ok := v[e.Item]
			if !ok {
				t.Errorf("seed %d: reported item %d not in stream", seed, e.Item)
				continue
			}
			if want := g.Eval(uint64(util.AbsInt64(f))); want != e.Weight {
				t.Errorf("seed %d: item %d weight %.4g, want %.4g", seed, e.Item, e.Weight, want)
			}
		}
	}
}

func TestGnpHeavySpaceIsPolylog(t *testing.T) {
	// Space must grow polylogarithmically with n at fixed λ: going from
	// n = 2^10 to n = 2^20 should grow space by roughly 2x (one extra
	// bit-counter level and trials), nowhere near the 1024x of linear
	// storage.
	a := NewGnpHeavy(GnpHeavyConfig{N: 1 << 10, Lambda: 0.3}, util.NewSplitMix64(1))
	b := NewGnpHeavy(GnpHeavyConfig{N: 1 << 20, Lambda: 0.3}, util.NewSplitMix64(1))
	ratio := float64(b.SpaceBytes()) / float64(a.SpaceBytes())
	if ratio > 8 {
		t.Errorf("space ratio %v for 1024x domain growth; not polylog", ratio)
	}
}
