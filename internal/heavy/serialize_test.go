package heavy

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

func onePassPair(seed uint64) (*OnePass, *OnePass) {
	g := gfunc.F2Func()
	h := gfunc.MeasureEnvelope(g, 1<<10).H()
	cfg := OnePassConfig{G: g, Lambda: 0.05, Eps: 0.25, Delta: 0.1, H: h}
	return NewOnePass(cfg, util.NewSplitMix64(seed)), NewOnePass(cfg, util.NewSplitMix64(seed))
}

func feedStream(s *stream.Stream, lo, hi int, fn func(item uint64, delta int64)) {
	for i, u := range s.Updates() {
		if i >= lo && i < hi {
			fn(u.Item, u.Delta)
		}
	}
}

// wireStream keeps the distinct-item count below the candidate
// trackers' capacity, the regime in which serial and merged covers agree
// exactly (see internal/core/parallel.go).
func wireStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.2)
}

func TestOnePassWireMergeEqualsSerial(t *testing.T) {
	s := wireStream(3)
	n := s.Len()

	serial, _ := onePassPair(7)
	feedStream(s, 0, n, serial.Update)

	// Two shard "processes": each sketches half, ships bytes, and a fresh
	// coordinator folds both snapshots.
	shard1, shard2 := onePassPair(7)
	feedStream(s, 0, n/2, shard1.Update)
	feedStream(s, n/2, n, shard2.Update)
	coord, _ := onePassPair(7)
	for _, sh := range []*OnePass{shard1, shard2} {
		data, err := sh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}

	want := serial.Cover()
	got := coord.Cover()
	if len(want) == 0 {
		t.Fatal("serial cover is empty; workload too light for the test")
	}
	for _, e := range want {
		if !got.Contains(e.Item) {
			t.Errorf("item %d in serial cover but not in wire-merged cover", e.Item)
		}
	}
	if w, g := want.WeightSum(), got.WeightSum(); w != g {
		t.Errorf("wire-merged weight sum %.17g != serial %.17g", g, w)
	}
}

func TestOnePassUnmarshalRejectsWrongSeed(t *testing.T) {
	a, _ := onePassPair(1)
	b := func() *OnePass {
		g := gfunc.F2Func()
		h := gfunc.MeasureEnvelope(g, 1<<10).H()
		return NewOnePass(OnePassConfig{G: g, Lambda: 0.05, Eps: 0.25, Delta: 0.1, H: h},
			util.NewSplitMix64(99))
	}()
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBinary(data); err == nil {
		t.Error("expected fingerprint mismatch decoding onto a different seed")
	}
	if err := a.UnmarshalBinary(data[:10]); err == nil {
		t.Error("expected error on truncated payload")
	}
}

func newTwoPassAt(seed uint64) *TwoPass {
	g := gfunc.X2Log()
	h := gfunc.MeasureEnvelope(g, 1<<10).H()
	return NewTwoPass(TwoPassConfig{G: g, Lambda: 0.05, Delta: 0.1, H: h},
		util.NewSplitMix64(seed))
}

func TestTwoPassWireProtocolEqualsSerial(t *testing.T) {
	s := wireStream(5)
	n := s.Len()

	serial := newTwoPassAt(11)
	feedStream(s, 0, n, serial.Pass1)
	serial.FinishPass1()
	feedStream(s, 0, n, serial.Pass2)
	want := serial.Cover()

	// Distributed: workers sketch pass-1 shards, the coordinator merges
	// snapshots, extracts candidates, ships them back; workers tabulate
	// pass-2 shards and ship the tabulations.
	w1, w2 := newTwoPassAt(11), newTwoPassAt(11)
	feedStream(s, 0, n/2, w1.Pass1)
	feedStream(s, n/2, n, w2.Pass1)
	coord := newTwoPassAt(11)
	for _, w := range []*TwoPass{w1, w2} {
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}
	coord.FinishPass1()
	cands, err := coord.MarshalCandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*TwoPass{w1, w2} {
		if err := w.UnmarshalCandidates(cands); err != nil {
			t.Fatal(err)
		}
	}
	feedStream(s, 0, n/2, w1.Pass2)
	feedStream(s, n/2, n, w2.Pass2)
	for _, w := range []*TwoPass{w1, w2} {
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}
	got := coord.Cover()

	if len(want) == 0 {
		t.Fatal("serial cover is empty; workload too light for the test")
	}
	if len(got) != len(want) {
		t.Fatalf("wire cover has %d entries, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cover[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGnpWireMergeEqualsSerial(t *testing.T) {
	cfg := GnpHeavyConfig{N: 1 << 10, Lambda: 0.5}
	mk := func() *GnpHeavy { return NewGnpHeavy(cfg, util.NewSplitMix64(21)) }

	// A planted g_np-heavy item: frequency with a low ι among multiples
	// of higher powers of two.
	updates := []stream.Update{{Item: 5, Delta: 3}, {Item: 9, Delta: 16}, {Item: 100, Delta: 8}}
	serial := mk()
	for _, u := range updates {
		serial.Update(u.Item, u.Delta)
	}

	shard1, shard2, coord := mk(), mk(), mk()
	shard1.Update(updates[0].Item, updates[0].Delta)
	shard2.Update(updates[1].Item, updates[1].Delta)
	shard2.Update(updates[2].Item, updates[2].Delta)
	for _, sh := range []*GnpHeavy{shard1, shard2} {
		data, err := sh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}

	want, got := serial.Cover(), coord.Cover()
	if len(got) != len(want) {
		t.Fatalf("wire cover has %d entries, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cover[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	// In-process Merge must agree with the wire path.
	merged := mk()
	if err := merged.Merge(shard1); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	mc := merged.Cover()
	if len(mc) != len(want) {
		t.Fatalf("merged cover has %d entries, serial %d", len(mc), len(want))
	}
}

func TestGnpUnmarshalRejectsWrongSeed(t *testing.T) {
	cfg := GnpHeavyConfig{N: 1 << 8, Lambda: 0.5}
	a := NewGnpHeavy(cfg, util.NewSplitMix64(1))
	b := NewGnpHeavy(cfg, util.NewSplitMix64(2))
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBinary(data); err == nil {
		t.Error("expected fingerprint mismatch decoding onto a different seed")
	}
	if err := b.Merge(a); err == nil {
		t.Error("expected Merge to reject a different seed")
	}
}
