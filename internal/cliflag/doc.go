// Package cliflag centralizes subcommand flag parsing for the cmd/
// binaries, so -h, unknown flags, and stray positional arguments behave
// identically everywhere: -h prints the defaults and exits 0; an
// unknown flag or an unexpected positional argument prints a usage
// message and exits 2 — never a silent fall-through.
//
// Layer: satellite of the cmd/ layer in ARCHITECTURE.md's map — it
// shapes CLI ergonomics only and imports nothing from the spine.
// Seed discipline: none; this package touches no randomness.
package cliflag
