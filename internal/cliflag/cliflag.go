package cliflag

import (
	"errors"
	"flag"
	"fmt"
	"io"
)

// Parse runs fs (which must use flag.ContinueOnError with its output
// set to stderr) over args. The boolean reports whether the caller
// should proceed; when false, code is the process exit status.
func Parse(fs *flag.FlagSet, args []string, stderr io.Writer) (code int, ok bool) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, false
		}
		// The flag package already printed the offending flag and the
		// defaults to fs's output.
		return 2, false
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "%s: unexpected arguments: %v\n", fs.Name(), fs.Args())
		fs.Usage()
		return 2, false
	}
	return 0, true
}
