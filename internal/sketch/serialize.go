package sketch

import (
	"fmt"
	"sort"

	"repro/internal/wire"
)

// Linear sketches are shippable: a worker sketches its shard of the
// stream, serializes the counter state, and a coordinator merges the
// shards into the sketch of the union stream. The hash functions are NOT
// serialized — they are reconstructed deterministically from the seed, so
// the wire format stays small and the seed is the only coordination
// needed. Marshal/Unmarshal therefore pair with the same seed-discipline
// rule as Merge: the receiving sketch must have been constructed with
// identical dimensions and seed — and unlike Merge, the wire header's
// fingerprint (a digest of the hash-function coefficients) lets the
// decoder CHECK that contract instead of trusting the caller.
//
// Wire format (big endian, header per internal/wire):
//
//	magic u32 | version u16 | fingerprint u64
//	rows u32 | buckets u64 | rows × (u32 count + counters i64...)
//	tracked u32 | tracked item ids u64...
//
// The tracked-item section carries the top-k candidate ids (when the
// sketch was built with NewCountSketchTopK); estimates are recomputed on
// the receiving side, so only identities travel. The ids are written in
// ascending order — the tracker's heap layout depends on insertion
// history, so sorting is what makes the encoding canonical: two sketches
// holding the same counters and the same candidate SET marshal to
// identical bytes no matter how they arrived at that state (serial
// ingest, sharded ingest, or a chain of merges).

const countSketchMagic uint32 = 0x67535543 // "gSUC"

// Fingerprint digests the sketch's dimensions, hash-function
// coefficients, and tracker capacity. Two CountSketches constructed with
// the same parameters from the same seed have equal fingerprints; it is
// the quantity the wire header validates on decode.
func (cs *CountSketch) Fingerprint() uint64 {
	h := wire.Fingerprint(0, uint64(cs.rows))
	h = wire.Fingerprint(h, cs.buckets)
	for j := 0; j < cs.rows; j++ {
		h = cs.bucket[j].Fingerprint(h)
		h = cs.sign[j].Fingerprint(h)
	}
	k := uint64(0)
	if cs.topK != nil {
		k = uint64(cs.topK.k)
	}
	return wire.Fingerprint(h, k)
}

// MarshalBinary serializes the counter state and tracked candidates.
func (cs *CountSketch) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(countSketchMagic, cs.Fingerprint())
	w.U32(uint32(cs.rows))
	w.U64(cs.buckets)
	for j := 0; j < cs.rows; j++ {
		w.I64s(cs.counts[j])
	}
	if cs.topK != nil {
		items := cs.topK.items()
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		w.U64s(items)
	} else {
		w.U64s(nil)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary ADDS the serialized counter state into cs (merge
// semantics, matching the linearity of the sketch). cs must have been
// constructed with the same dimensions and seed as the sender; both are
// verified via the header fingerprint. The whole payload is decoded and
// validated BEFORE any counter is touched, so an error never leaves cs
// half-merged. To load a shard into an empty sketch, construct a fresh
// sketch first.
func (cs *CountSketch) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(countSketchMagic, cs.Fingerprint()); err != nil {
		return fmt.Errorf("sketch: %w", err)
	}
	rows := r.U32()
	buckets := r.U64()
	if r.Err() == nil && (int(rows) != cs.rows || buckets != cs.buckets) {
		return fmt.Errorf("sketch: dimension mismatch: wire %dx%d vs local %dx%d",
			rows, buckets, cs.rows, cs.buckets)
	}
	staged := make([][]int64, cs.rows)
	for j := 0; j < cs.rows; j++ {
		staged[j] = make([]int64, cs.buckets)
		r.I64sInto(staged[j])
		if r.Err() != nil {
			return fmt.Errorf("sketch: row %d: %w", j, r.Err())
		}
	}
	items := r.U64s()
	if err := r.Err(); err != nil {
		return fmt.Errorf("sketch: %w", err)
	}
	for j := 0; j < cs.rows; j++ {
		for i, v := range staged[j] {
			cs.counts[j][i] += v
		}
	}
	if cs.topK != nil {
		// Mirror MergeTopK: offer the shard's candidates against the
		// merged counters, then re-score our own survivors too, so wire
		// merges and in-process merges admit the same candidate sets.
		for _, it := range items {
			cs.topK.offer(it, cs.Estimate(it))
		}
		for _, it := range cs.topK.items() {
			cs.topK.offer(it, cs.Estimate(it))
		}
	}
	return nil
}

// TrackedItems returns the identities currently held by the top-k tracker
// (nil when the sketch was built without one). Exposed for merge logic.
func (cs *CountSketch) TrackedItems() []uint64 {
	if cs.topK == nil {
		return nil
	}
	return cs.topK.items()
}

// MergeTopK merges another sketch's counters AND its tracked candidates:
// after the counter merge, the other side's candidates are re-offered
// against the merged state, so a candidate heavy in either shard (or only
// in the union) competes on its merged estimate.
func (cs *CountSketch) MergeTopK(other *CountSketch) error {
	if err := cs.Merge(other); err != nil {
		return err
	}
	if cs.topK != nil && other.topK != nil {
		for _, it := range other.topK.items() {
			cs.topK.offer(it, cs.Estimate(it))
		}
		// Re-score our own survivors against the merged counters too.
		for _, it := range cs.topK.items() {
			cs.topK.offer(it, cs.Estimate(it))
		}
	}
	return nil
}
