package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Linear sketches are shippable: a worker sketches its shard of the
// stream, serializes the counter state, and a coordinator merges the
// shards into the sketch of the union stream. The hash functions are NOT
// serialized — they are reconstructed deterministically from the seed, so
// the wire format stays small and the seed is the only coordination
// needed. Marshal/Unmarshal therefore pair with the same seed-discipline
// rule as Merge: the receiving sketch must have been constructed with
// identical dimensions and seed.
//
// Wire format (big endian):
//
//	magic u32 | rows u32 | buckets u64 | counters rows*buckets*i64
//	          | tracked u32 | tracked item ids u64...
//
// The tracked-item section carries the top-k candidate ids (when the
// sketch was built with NewCountSketchTopK); estimates are recomputed on
// the receiving side, so only identities travel.

const countSketchMagic uint32 = 0x67535543 // "gSUC"

// MarshalBinary serializes the counter state and tracked candidates.
func (cs *CountSketch) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v interface{}) {
		// bytes.Buffer writes cannot fail.
		_ = binary.Write(&buf, binary.BigEndian, v)
	}
	w(countSketchMagic)
	w(uint32(cs.rows))
	w(cs.buckets)
	for j := 0; j < cs.rows; j++ {
		w(cs.counts[j])
	}
	if cs.topK != nil {
		items := cs.topK.items()
		w(uint32(len(items)))
		w(items)
	} else {
		w(uint32(0))
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary ADDS the serialized counter state into cs (merge
// semantics, matching the linearity of the sketch). cs must have been
// constructed with the same dimensions and seed as the sender; dimensions
// are verified, seed discipline is the caller's contract. To load a shard
// into an empty sketch, construct a fresh sketch first.
func (cs *CountSketch) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var magic, rows uint32
	var buckets uint64
	if err := binary.Read(r, binary.BigEndian, &magic); err != nil {
		return fmt.Errorf("sketch: truncated header: %w", err)
	}
	if magic != countSketchMagic {
		return fmt.Errorf("sketch: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.BigEndian, &rows); err != nil {
		return fmt.Errorf("sketch: truncated rows: %w", err)
	}
	if err := binary.Read(r, binary.BigEndian, &buckets); err != nil {
		return fmt.Errorf("sketch: truncated buckets: %w", err)
	}
	if int(rows) != cs.rows || buckets != cs.buckets {
		return fmt.Errorf("sketch: dimension mismatch: wire %dx%d vs local %dx%d",
			rows, buckets, cs.rows, cs.buckets)
	}
	row := make([]int64, buckets)
	for j := 0; j < int(rows); j++ {
		if err := binary.Read(r, binary.BigEndian, &row); err != nil {
			return fmt.Errorf("sketch: truncated row %d: %w", j, err)
		}
		for i, v := range row {
			cs.counts[j][i] += v
		}
	}
	var tracked uint32
	if err := binary.Read(r, binary.BigEndian, &tracked); err != nil {
		return fmt.Errorf("sketch: truncated tracker: %w", err)
	}
	if tracked > 0 {
		items := make([]uint64, tracked)
		if err := binary.Read(r, binary.BigEndian, &items); err != nil {
			return fmt.Errorf("sketch: truncated tracked items: %w", err)
		}
		if cs.topK != nil {
			for _, it := range items {
				cs.topK.offer(it, cs.Estimate(it))
			}
		}
	}
	return nil
}

// TrackedItems returns the identities currently held by the top-k tracker
// (nil when the sketch was built without one). Exposed for merge logic.
func (cs *CountSketch) TrackedItems() []uint64 {
	if cs.topK == nil {
		return nil
	}
	return cs.topK.items()
}

// MergeTopK merges another sketch's counters AND its tracked candidates:
// after the counter merge, the other side's candidates are re-offered
// against the merged state, so a candidate heavy in either shard (or only
// in the union) competes on its merged estimate.
func (cs *CountSketch) MergeTopK(other *CountSketch) error {
	if err := cs.Merge(other); err != nil {
		return err
	}
	if cs.topK != nil && other.topK != nil {
		for _, it := range other.topK.items() {
			cs.topK.offer(it, cs.Estimate(it))
		}
		// Re-score our own survivors against the merged counters too.
		for _, it := range cs.topK.items() {
			cs.topK.offer(it, cs.Estimate(it))
		}
	}
	return nil
}
