package sketch

import (
	"testing"

	"repro/internal/util"
)

// fuzzSketch builds the fixed receiver the fuzz corpus targets. Keep in
// sync with the valid-payload seeds below: same dimensions, same seed.
func fuzzSketch() *CountSketch {
	return NewCountSketchTopK(3, 64, 4, util.NewSplitMix64(1))
}

// FuzzCountSketchUnmarshal asserts UnmarshalBinary never panics:
// truncated, corrupted, and wrong-magic payloads must all return errors
// (or succeed harmlessly), never crash the decoder.
func FuzzCountSketchUnmarshal(f *testing.F) {
	src := fuzzSketch()
	src.Update(7, 3)
	src.Update(11, -2)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, cut := range []int{0, 3, 13, 14, 20, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[0] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		cs := fuzzSketch()
		_ = cs.UnmarshalBinary(data) // must not panic
	})
}
