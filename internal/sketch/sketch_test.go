package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stream"
	"repro/internal/util"
)

func testVector(seed uint64, items int, m int64) stream.Vector {
	rng := util.NewSplitMix64(seed)
	v := make(stream.Vector, items)
	for len(v) < items {
		it := rng.Uint64n(1 << 20)
		f := rng.Int63n(2*m+1) - m
		if f != 0 {
			v[it] = f
		}
	}
	return v
}

func feed(cs interface{ Update(uint64, int64) }, v stream.Vector) {
	for it, f := range v {
		// split into two updates to exercise the turnstile path
		cs.Update(it, f/2)
		cs.Update(it, f-f/2)
	}
}

func TestCountSketchPointQueryGuarantee(t *testing.T) {
	// §3.1: with b buckets, |v̂_i - v_i| <= 2 sqrt(F2/b) for all i with
	// probability 1-δ. Check the 99th percentile of errors across items.
	v := testVector(1, 500, 1000)
	f2 := v.F2()
	for _, b := range []uint64{256, 1024, 4096} {
		cs := NewCountSketch(7, b, util.NewSplitMix64(2))
		feed(cs, v)
		bound := 2 * math.Sqrt(f2/float64(b))
		bad := 0
		for it, f := range v {
			if math.Abs(float64(cs.Estimate(it)-f)) > bound {
				bad++
			}
		}
		if frac := float64(bad) / float64(len(v)); frac > 0.02 {
			t.Errorf("b=%d: %.1f%% of items exceed the error bound %v", b, 100*frac, bound)
		}
	}
}

func TestCountSketchErrorShrinksWithWidth(t *testing.T) {
	v := testVector(3, 800, 1000)
	var prev float64 = math.Inf(1)
	for _, b := range []uint64{64, 512, 4096} {
		cs := NewCountSketch(7, b, util.NewSplitMix64(4))
		feed(cs, v)
		var sum float64
		for it, f := range v {
			sum += math.Abs(float64(cs.Estimate(it) - f))
		}
		avg := sum / float64(len(v))
		if avg > prev {
			t.Errorf("mean error grew from %.2f to %.2f when width increased to %d", prev, avg, b)
		}
		prev = avg
	}
}

func TestCountSketchLinearity(t *testing.T) {
	// Sketch(u) merged with Sketch(w) (same seed) equals Sketch(u + w).
	u := testVector(5, 100, 100)
	w := testVector(6, 100, 100)
	a := NewCountSketch(5, 256, util.NewSplitMix64(7))
	b := NewCountSketch(5, 256, util.NewSplitMix64(7))
	c := NewCountSketch(5, 256, util.NewSplitMix64(7))
	feed(a, u)
	feed(b, w)
	feed(c, u)
	feed(c, w)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	f := func(x uint64) bool { return a.Estimate(x) == c.Estimate(x) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountSketchMergeDimensionMismatch(t *testing.T) {
	a := NewCountSketch(5, 256, util.NewSplitMix64(1))
	b := NewCountSketch(5, 128, util.NewSplitMix64(1))
	if err := a.Merge(b); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestCountSketchTopKFindsHeavy(t *testing.T) {
	// Plant 5 items far above the noise floor; TopK must surface all.
	v := testVector(8, 300, 50)
	heavies := []uint64{1 << 21, 1<<21 + 1, 1<<21 + 2, 1<<21 + 3, 1<<21 + 4}
	for i, h := range heavies {
		v[h] = int64(5000 + 100*i)
	}
	cs := NewCountSketchTopK(7, 2048, 16, util.NewSplitMix64(9))
	feed(cs, v)
	top := cs.TopK()
	found := make(map[uint64]bool)
	for _, c := range top {
		found[c.Item] = true
	}
	for _, h := range heavies {
		if !found[h] {
			t.Errorf("heavy item %d missing from top-k", h)
		}
	}
}

func TestCountSketchEstimateF2(t *testing.T) {
	v := testVector(10, 600, 500)
	cs := NewCountSketch(9, 4096, util.NewSplitMix64(11))
	feed(cs, v)
	got := cs.EstimateF2()
	want := v.F2()
	if util.RelErr(got, want) > 0.15 {
		t.Errorf("row-norm F2 estimate %.4g vs %.4g (err %.3f)", got, want, util.RelErr(got, want))
	}
}

func TestAMSEstimate(t *testing.T) {
	v := testVector(12, 400, 300)
	a := NewAMS(9, 64, util.NewSplitMix64(13))
	feed(a, v)
	if err := util.RelErr(a.EstimateF2(), v.F2()); err > 0.3 {
		t.Errorf("AMS F2 error %.3f > 0.3", err)
	}
}

func TestAMSMatchesCountSketchRowNorm(t *testing.T) {
	// The two F2 estimators must agree within their tolerances: they
	// estimate the same quantity.
	v := testVector(14, 500, 200)
	a := NewAMS(9, 64, util.NewSplitMix64(15))
	cs := NewCountSketch(9, 2048, util.NewSplitMix64(16))
	feed(a, v)
	feed(cs, v)
	if util.RelErr(a.EstimateF2(), cs.EstimateF2()) > 0.5 {
		t.Errorf("AMS %.4g vs CountSketch row-norm %.4g diverge",
			a.EstimateF2(), cs.EstimateF2())
	}
}

func TestAMSForErrorSizing(t *testing.T) {
	a := NewAMSForError(0.2, 0.1, util.NewSplitMix64(17))
	if a.SpaceBytes() <= 0 {
		t.Error("sized AMS has no space")
	}
	v := testVector(18, 300, 100)
	feed(a, v)
	if err := util.RelErr(a.EstimateF2(), v.F2()); err > 0.25 {
		t.Errorf("sized AMS error %.3f > 0.25 (target 0.2)", err)
	}
}

func TestCountMinOverestimates(t *testing.T) {
	// In the insertion-only regime CountMin never underestimates.
	rng := util.NewSplitMix64(19)
	v := make(stream.Vector)
	for i := 0; i < 300; i++ {
		v[rng.Uint64n(1<<16)] = 1 + rng.Int63n(50)
	}
	cm := NewCountMin(5, 512, util.NewSplitMix64(20))
	for it, f := range v {
		cm.Update(it, f)
	}
	for it, f := range v {
		if cm.Estimate(it) < f {
			t.Errorf("CountMin underestimated item %d: %d < %d", it, cm.Estimate(it), f)
		}
	}
}

func TestExactBaseline(t *testing.T) {
	e := NewExact()
	e.Update(1, 5)
	e.Update(1, -5)
	e.Update(2, 3)
	if e.Distinct() != 1 {
		t.Errorf("Distinct = %d, want 1", e.Distinct())
	}
	if e.Estimate(2) != 3 || e.Estimate(1) != 0 {
		t.Error("exact estimates wrong")
	}
	if e.F2() != 9 {
		t.Errorf("F2 = %v, want 9", e.F2())
	}
	if e.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v, want 3", e.MaxAbs())
	}
}

func TestTopTrackerEvictsSmallest(t *testing.T) {
	tr := newTopTracker(3)
	tr.offer(1, 10)
	tr.offer(2, 20)
	tr.offer(3, 30)
	tr.offer(4, 5) // must not evict anything
	items := tr.items()
	if len(items) != 3 {
		t.Fatalf("tracker holds %d items, want 3", len(items))
	}
	for _, it := range items {
		if it == 4 {
			t.Error("item 4 (score 5) should not have been admitted")
		}
	}
	tr.offer(5, 40) // evicts item 1 (score 10)
	for _, it := range tr.items() {
		if it == 1 {
			t.Error("item 1 should have been evicted")
		}
	}
}

func TestTopTrackerUpdatesInPlace(t *testing.T) {
	tr := newTopTracker(2)
	tr.offer(1, 10)
	tr.offer(2, 20)
	tr.offer(1, 50) // item 1 grows
	tr.offer(3, 15) // evicts item 2? no: min is now 20 -> evicted item is 2 only if 15 > 20; it is not
	items := tr.items()
	has := map[uint64]bool{}
	for _, it := range items {
		has[it] = true
	}
	if !has[1] || !has[2] || has[3] {
		t.Errorf("tracker contents %v, want {1, 2}", items)
	}
}

func TestEstimateMeanUnbiasedDirection(t *testing.T) {
	// Mean estimator should roughly agree with the median for a strongly
	// heavy item.
	cs := NewCountSketch(9, 1024, util.NewSplitMix64(23))
	cs.Update(42, 100000)
	v := testVector(24, 200, 50)
	feed(cs, v)
	if math.Abs(cs.EstimateMean(42)-100000) > 5000 {
		t.Errorf("mean estimate %v too far from 100000", cs.EstimateMean(42))
	}
	if math.Abs(float64(cs.Estimate(42))-100000) > 5000 {
		t.Errorf("median estimate %v too far from 100000", cs.Estimate(42))
	}
}
