package sketch

import (
	"fmt"
	"sort"

	"repro/internal/util"
	"repro/internal/xhash"
)

// CountSketch is the r x b counter matrix of Charikar, Chen, and
// Farach-Colton. Row j hashes each item to one of b buckets (pairwise
// independent) and multiplies its contribution by a 4-wise independent sign.
// A point query returns the median over rows of sign * counter.
//
// With r = O(log(n/δ)) rows and b buckets, every point estimate satisfies
// |v̂_i - v_i| <= sqrt(F2 / b) * O(1) with probability 1 - δ (the paper uses
// the equivalent parameterization |v̂_i - v_i| <= ε sqrt(λ F2) for a
// CountSketch(λ, ε, δ)).
type CountSketch struct {
	rows    int
	buckets uint64
	// flat is the contiguous r*b counter matrix; counts[j] is the row-j
	// view flat[j*b:(j+1)*b]. One backing array keeps row walks
	// cache-friendly and lets Merge and EstimateF2 run a single loop.
	flat   []int64
	counts [][]int64
	bucket []*xhash.Buckets
	sign   []*xhash.Sign
	// coef caches every row's hash-function coefficients in one flat
	// array, coefPerRow words per row: [b0 b1 | s0 s1 s2 s3]. The hot
	// paths (Update, Estimate, UpdateBatch) evaluate the polynomials
	// inline from this cache instead of chasing bucket[j]/sign[j]
	// pointers; values are bit-identical to the Buckets/Sign evaluations
	// (see xhash.Poly.AppendCoeffs).
	coef    []uint64
	scratch []int64 // per-row estimates, reused across point queries
	// topK, if non-nil, maintains the items with the largest |estimate|
	// seen so far, giving one-pass candidate extraction without a domain
	// scan. It is sized by NewCountSketchTopK.
	topK *topTracker
	agg  batchAgg // reusable UpdateBatch scratch; sketches are not goroutine-safe
}

// coefPerRow is the per-row stride of the coef cache: 2 bucket-hash
// coefficients (pairwise independence) + 4 sign coefficients (4-wise).
const coefPerRow = 6

// NewCountSketch returns a CountSketch with r rows and b buckets, drawing
// hash functions from rng. It panics on non-positive dimensions.
func NewCountSketch(r int, b uint64, rng *util.SplitMix64) *CountSketch {
	if r <= 0 || b == 0 {
		panic("sketch: CountSketch needs positive dimensions")
	}
	cs := &CountSketch{
		rows:    r,
		buckets: b,
		flat:    make([]int64, uint64(r)*b),
		counts:  make([][]int64, r),
		bucket:  make([]*xhash.Buckets, r),
		sign:    make([]*xhash.Sign, r),
		coef:    make([]uint64, 0, coefPerRow*r),
		scratch: make([]int64, r),
	}
	for j := 0; j < r; j++ {
		cs.counts[j] = cs.flat[uint64(j)*b : uint64(j+1)*b : uint64(j+1)*b]
		cs.bucket[j] = xhash.NewBuckets(2, b, rng.Fork())
		cs.sign[j] = xhash.NewSign(4, rng.Fork())
		cs.coef = cs.bucket[j].AppendCoeffs(cs.coef)
		cs.coef = cs.sign[j].AppendCoeffs(cs.coef)
	}
	return cs
}

// rowBucketSign evaluates row j's bucket index and ±1 sign for xp (the
// item already reduced mod 2^61-1) from the flat coefficient cache. It
// reproduces bucket[j].Hash and sign[j].Hash exactly: a degree-1 and a
// degree-3 Horner evaluation over GF(2^61-1), bucket reduced mod b, sign
// taken from the low bit.
func (cs *CountSketch) rowBucketSign(j int, xp uint64) (uint64, int64) {
	c := cs.coef[coefPerRow*j : coefPerRow*j+coefPerRow : coefPerRow*j+coefPerRow]
	h := xhash.AddMod(xhash.MulMod(c[1], xp), c[0]) % cs.buckets
	acc := c[5]
	acc = xhash.AddMod(xhash.MulMod(acc, xp), c[4])
	acc = xhash.AddMod(xhash.MulMod(acc, xp), c[3])
	acc = xhash.AddMod(xhash.MulMod(acc, xp), c[2])
	s := int64(-1)
	if acc&1 == 1 {
		s = 1
	}
	return h, s
}

// rowBucketSign4 is the four-lane rowBucketSign: it evaluates row j's
// bucket indices and signs for four reduced items in one pass, built on
// xhash.HornerStep4 so the four Horner chains interleave and the row
// walk runs at multiply throughput instead of latency. Each lane is
// bit-identical to rowBucketSign on the same item.
func (cs *CountSketch) rowBucketSign4(j int, xp *[4]uint64) (h [4]uint64, s [4]int64) {
	c := cs.coef[coefPerRow*j : coefPerRow*j+coefPerRow : coefPerRow*j+coefPerRow]
	// Bucket hash: c[1]*x + c[0], i.e. Horner from acc = c[1], one step.
	acc := [4]uint64{c[1], c[1], c[1], c[1]}
	xhash.HornerStep4(&acc, xp, c[0])
	b := cs.buckets
	h[0], h[1], h[2], h[3] = acc[0]%b, acc[1]%b, acc[2]%b, acc[3]%b
	// Sign hash: degree-3 Horner from acc = c[5] through c[4], c[3], c[2].
	sg := [4]uint64{c[5], c[5], c[5], c[5]}
	xhash.HornerStep4(&sg, xp, c[4])
	xhash.HornerStep4(&sg, xp, c[3])
	xhash.HornerStep4(&sg, xp, c[2])
	for k := 0; k < 4; k++ {
		if sg[k]&1 == 1 {
			s[k] = 1
		} else {
			s[k] = -1
		}
	}
	return h, s
}

// NewCountSketchTopK returns a CountSketch that additionally tracks the k
// items with the largest estimated |frequency| among items that appeared in
// the stream, supporting one-pass heavy hitter candidate extraction.
func NewCountSketchTopK(r int, b uint64, k int, rng *util.SplitMix64) *CountSketch {
	cs := NewCountSketch(r, b, rng)
	if k <= 0 {
		panic("sketch: top-k tracker needs k > 0")
	}
	cs.topK = newTopTracker(k)
	return cs
}

// Rows returns the number of rows r.
func (cs *CountSketch) Rows() int { return cs.rows }

// Buckets returns the number of buckets b per row.
func (cs *CountSketch) Buckets() uint64 { return cs.buckets }

// SpaceBytes returns the counter storage in bytes (the quantity the paper's
// space bounds govern; hash seeds are O(1) words each).
func (cs *CountSketch) SpaceBytes() int {
	return cs.rows * int(cs.buckets) * 8
}

// Update processes the turnstile update (item, delta).
func (cs *CountSketch) Update(item uint64, delta int64) {
	xp := item % xhash.MersennePrime61
	b := cs.buckets
	for j := 0; j < cs.rows; j++ {
		h, s := cs.rowBucketSign(j, xp)
		cs.flat[uint64(j)*b+h] += s * delta
	}
	if cs.topK != nil {
		cs.topK.offer(item, cs.Estimate(item))
	}
}

// Estimate returns the point query v̂_item: the median over rows of
// sign(item) * counter[bucket(item)]. It is allocation-free (point queries
// run on every update when top-k tracking is enabled).
func (cs *CountSketch) Estimate(item uint64) int64 {
	xp := item % xhash.MersennePrime61
	b := cs.buckets
	for j := 0; j < cs.rows; j++ {
		h, s := cs.rowBucketSign(j, xp)
		cs.scratch[j] = s * cs.flat[uint64(j)*b+h]
	}
	// Insertion sort the scratch buffer; rows are O(log n), typically < 20.
	for i := 1; i < len(cs.scratch); i++ {
		for j := i; j > 0 && cs.scratch[j] < cs.scratch[j-1]; j-- {
			cs.scratch[j], cs.scratch[j-1] = cs.scratch[j-1], cs.scratch[j]
		}
	}
	return cs.scratch[len(cs.scratch)/2]
}

// EstimateF2 returns the Thorup-Zhang style F2 estimate: the median over
// rows of Σ_b counter². Each row is an unbiased F2 estimator (the bucket
// hash partitions the tug-of-war sum), so this provides the F̂2 that
// Algorithm 2's pruning window needs without a separate AMS structure.
// DESIGN.md records this substitution; the standalone AMS sketch remains
// available and is validated against this estimator in the tests.
func (cs *CountSketch) EstimateF2() float64 {
	ests := make([]float64, cs.rows)
	for j := 0; j < cs.rows; j++ {
		var sum float64
		for _, c := range cs.counts[j] {
			fc := float64(c)
			sum += fc * fc
		}
		ests[j] = sum
	}
	return util.MedianFloat64(ests)
}

// EstimateMean returns the mean-over-rows point query, the ablation
// comparison to the median combiner (DESIGN.md choice 2). The mean is
// unbiased but has heavier tails.
func (cs *CountSketch) EstimateMean(item uint64) float64 {
	xp := item % xhash.MersennePrime61
	var sum float64
	for j := 0; j < cs.rows; j++ {
		h, s := cs.rowBucketSign(j, xp)
		sum += float64(s * cs.flat[uint64(j)*cs.buckets+h])
	}
	return sum / float64(cs.rows)
}

// Candidate is an item together with its estimated frequency.
type Candidate struct {
	Item uint64
	Est  int64
}

// TopK returns the current top-k tracked candidates in decreasing |Est|
// order, re-estimating each item against the final sketch state. It panics
// if the sketch was not built with NewCountSketchTopK.
func (cs *CountSketch) TopK() []Candidate {
	if cs.topK == nil {
		panic("sketch: TopK called on a CountSketch without a tracker")
	}
	items := cs.topK.items()
	out := make([]Candidate, 0, len(items))
	for _, it := range items {
		out = append(out, Candidate{Item: it, Est: cs.Estimate(it)})
	}
	sort.Slice(out, func(i, j int) bool {
		return util.AbsInt64(out[i].Est) > util.AbsInt64(out[j].Est)
	})
	return out
}

// HeavyCandidates scans an explicit domain slice and returns the k items
// with the largest estimated |frequency|. It is the offline extraction used
// when the candidate domain is known (e.g., the recursive sketch's sampled
// sub-universe).
func (cs *CountSketch) HeavyCandidates(domain []uint64, k int) []Candidate {
	out := make([]Candidate, 0, len(domain))
	for _, it := range domain {
		out = append(out, Candidate{Item: it, Est: cs.Estimate(it)})
	}
	sort.Slice(out, func(i, j int) bool {
		return util.AbsInt64(out[i].Est) > util.AbsInt64(out[j].Est)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Merge adds the counters of other into cs. Both sketches must have been
// created with identical dimensions and the same seed stream (linearity of
// the sketch); Merge returns an error otherwise. Merging sketches with
// different hash functions would silently produce garbage, so dimensions
// are checked and callers are responsible for seed discipline.
func (cs *CountSketch) Merge(other *CountSketch) error {
	if cs.rows != other.rows || cs.buckets != other.buckets {
		return fmt.Errorf("sketch: merge dimension mismatch (%dx%d vs %dx%d)",
			cs.rows, cs.buckets, other.rows, other.buckets)
	}
	for i, v := range other.flat {
		cs.flat[i] += v
	}
	return nil
}

// topTracker keeps the k items with the largest |estimate| offered so far.
// It is a small indexed min-heap keyed by |estimate|. Scores live inside
// the heap entries — not in a side map — so sift comparisons are array
// reads; only the item → heap-index lookup pays a map access.
type topTracker struct {
	k    int
	heap []topEntry     // min-heap on score
	pos  map[uint64]int // item -> index in heap
}

// topEntry is one tracked candidate: the item and |estimate| at last offer.
type topEntry struct {
	item  uint64
	score int64
}

func newTopTracker(k int) *topTracker {
	return &topTracker{
		k:   k,
		pos: make(map[uint64]int, k+1),
	}
}

func (t *topTracker) offer(item uint64, est int64) {
	a := util.AbsInt64(est)
	if idx, ok := t.pos[item]; ok {
		t.heap[idx].score = a
		t.fix(idx)
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, topEntry{item: item, score: a})
		t.pos[item] = len(t.heap) - 1
		t.up(len(t.heap) - 1)
		return
	}
	if a <= t.heap[0].score {
		return
	}
	delete(t.pos, t.heap[0].item)
	t.heap[0] = topEntry{item: item, score: a}
	t.pos[item] = 0
	t.down(0)
}

func (t *topTracker) items() []uint64 {
	out := make([]uint64, len(t.heap))
	for i, e := range t.heap {
		out[i] = e.item
	}
	return out
}

func (t *topTracker) less(i, j int) bool {
	return t.heap[i].score < t.heap[j].score
}

func (t *topTracker) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.pos[t.heap[i].item] = i
	t.pos[t.heap[j].item] = j
}

func (t *topTracker) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(i, p) {
			break
		}
		t.swap(i, p)
		i = p
	}
}

func (t *topTracker) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && t.less(l, m) {
			m = l
		}
		if r < n && t.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		t.swap(i, m)
		i = m
	}
}

func (t *topTracker) fix(i int) {
	t.up(i)
	t.down(i)
}
