package sketch

import (
	"testing"

	"repro/internal/util"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	u := testVector(31, 200, 500)
	src := NewCountSketch(5, 512, util.NewSplitMix64(77))
	feed(src, u)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	dst := NewCountSketch(5, 512, util.NewSplitMix64(77)) // same seed: same hashes
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for it := range u {
		if src.Estimate(it) != dst.Estimate(it) {
			t.Fatalf("estimate mismatch for %d after round trip", it)
		}
	}
}

func TestUnmarshalAddsLikeMerge(t *testing.T) {
	u := testVector(33, 150, 100)
	w := testVector(34, 150, 100)
	a := NewCountSketch(5, 512, util.NewSplitMix64(9))
	b := NewCountSketch(5, 512, util.NewSplitMix64(9))
	both := NewCountSketch(5, 512, util.NewSplitMix64(9))
	feed(a, u)
	feed(b, w)
	feed(both, u)
	feed(both, w)

	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for it := range u {
		if a.Estimate(it) != both.Estimate(it) {
			t.Fatalf("unmarshal-merge mismatch for item %d", it)
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	cs := NewCountSketch(5, 512, util.NewSplitMix64(1))
	if err := cs.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("expected error on truncated input")
	}
	other := NewCountSketch(5, 256, util.NewSplitMix64(1))
	data, err := other.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.UnmarshalBinary(data); err == nil {
		t.Error("expected dimension mismatch error")
	}
	// Corrupt the magic.
	data[0] ^= 0xff
	if err := other.UnmarshalBinary(data); err == nil {
		t.Error("expected magic mismatch error")
	}
}

func TestMarshalCarriesTrackedCandidates(t *testing.T) {
	src := NewCountSketchTopK(5, 1024, 8, util.NewSplitMix64(3))
	src.Update(12345, 100000)
	src.Update(777, 50000)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst := NewCountSketchTopK(5, 1024, 8, util.NewSplitMix64(3))
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, c := range dst.TopK() {
		found[c.Item] = true
	}
	if !found[12345] || !found[777] {
		t.Errorf("tracked candidates lost in serialization: %v", found)
	}
}

func TestUnmarshalTrackerMatchesMergeTopK(t *testing.T) {
	// The wire path must admit exactly the candidates the in-process
	// merge admits: both re-offer the shard's items AND re-score the
	// receiver's own survivors against the merged counters.
	mk := func() *CountSketch { return NewCountSketchTopK(5, 1024, 4, util.NewSplitMix64(11)) }
	feedA := func(cs *CountSketch) {
		for i := uint64(0); i < 8; i++ {
			cs.Update(i, int64(1000*(i+1)))
		}
	}
	feedB := func(cs *CountSketch) {
		// Items whose union estimates shuffle the top-4 ordering.
		for i := uint64(4); i < 12; i++ {
			cs.Update(i, int64(900*(13-i)))
		}
	}

	viaMerge, shardB := mk(), mk()
	feedA(viaMerge)
	feedB(shardB)
	if err := viaMerge.MergeTopK(shardB); err != nil {
		t.Fatal(err)
	}

	viaWire := mk()
	feedA(viaWire)
	data, err := shardB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := viaWire.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}

	a, b := viaMerge.TopK(), viaWire.TopK()
	if len(a) != len(b) {
		t.Fatalf("tracker sizes differ: merge %d vs wire %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("candidate %d: merge %+v vs wire %+v", i, a[i], b[i])
		}
	}
}

func TestMergeTopKUnionCandidates(t *testing.T) {
	a := NewCountSketchTopK(5, 1024, 8, util.NewSplitMix64(7))
	b := NewCountSketchTopK(5, 1024, 8, util.NewSplitMix64(7))
	a.Update(1, 90000)
	b.Update(2, 80000)
	// An item split across shards, heavy only in the union:
	a.Update(3, 45000)
	b.Update(3, 45000)
	if err := a.MergeTopK(b); err != nil {
		t.Fatal(err)
	}
	found := map[uint64]int64{}
	for _, c := range a.TopK() {
		found[c.Item] = c.Est
	}
	if found[1] == 0 || found[2] == 0 {
		t.Errorf("shard-local heavy items lost: %v", found)
	}
	if found[3] < 85000 {
		t.Errorf("union-heavy item has estimate %d, want ~90000", found[3])
	}
}
