package sketch

import (
	"math"

	"repro/internal/util"
	"repro/internal/xhash"
)

// AMS is the Alon-Matias-Szegedy tug-of-war sketch for the second frequency
// moment F2 = Σ v_i². It maintains groups x reps independent counters
// Z = Σ ξ(i) v_i with 4-wise independent signs ξ; Z² is an unbiased
// estimator of F2. The estimate is the median over groups of the mean over
// reps (median-of-means), giving a (1±ε)-approximation with probability
// 1-δ for reps = O(1/ε²) and groups = O(log 1/δ).
type AMS struct {
	groups int
	reps   int
	z      [][]int64
	sign   [][]*xhash.Sign
	agg    batchAgg // reusable UpdateBatch scratch
}

// NewAMS returns an AMS sketch with the given number of median groups and
// per-group repetitions. It panics on non-positive dimensions.
func NewAMS(groups, reps int, rng *util.SplitMix64) *AMS {
	if groups <= 0 || reps <= 0 {
		panic("sketch: AMS needs positive dimensions")
	}
	a := &AMS{
		groups: groups,
		reps:   reps,
		z:      make([][]int64, groups),
		sign:   make([][]*xhash.Sign, groups),
	}
	for g := 0; g < groups; g++ {
		a.z[g] = make([]int64, reps)
		a.sign[g] = make([]*xhash.Sign, reps)
		for r := 0; r < reps; r++ {
			a.sign[g][r] = xhash.NewSign(4, rng.Fork())
		}
	}
	return a
}

// NewAMSForError returns an AMS sketch sized for a (1±eps)-approximation
// with failure probability delta: reps = ceil(8/eps²), groups =
// ceil(4 ln(1/delta)) (at least 1). It panics if eps or delta are outside
// (0, 1).
func NewAMSForError(eps, delta float64, rng *util.SplitMix64) *AMS {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: AMS accuracy parameters must be in (0,1)")
	}
	reps := int(8/(eps*eps)) + 1
	groups := int(math.Ceil(4 * math.Log(1/delta)))
	if groups < 1 {
		groups = 1
	}
	return NewAMS(groups, reps, rng)
}

// SpaceBytes returns the counter storage in bytes.
func (a *AMS) SpaceBytes() int { return a.groups * a.reps * 8 }

// Update processes the turnstile update (item, delta).
func (a *AMS) Update(item uint64, delta int64) {
	for g := 0; g < a.groups; g++ {
		for r := 0; r < a.reps; r++ {
			a.z[g][r] += a.sign[g][r].Hash(item) * delta
		}
	}
}

// EstimateF2 returns the median-of-means F2 estimate.
func (a *AMS) EstimateF2() float64 {
	means := make([]float64, a.groups)
	for g := 0; g < a.groups; g++ {
		var sum float64
		for r := 0; r < a.reps; r++ {
			z := float64(a.z[g][r])
			sum += z * z
		}
		means[g] = sum / float64(a.reps)
	}
	return util.MedianFloat64(means)
}

// Merge adds the counters of other into a. Dimensions must match; callers
// are responsible for seed discipline (same hash functions), as with
// CountSketch.Merge.
func (a *AMS) Merge(other *AMS) error {
	if a.groups != other.groups || a.reps != other.reps {
		return errDimension("AMS", a.groups*a.reps, other.groups*other.reps)
	}
	for g := 0; g < a.groups; g++ {
		for r := 0; r < a.reps; r++ {
			a.z[g][r] += other.z[g][r]
		}
	}
	return nil
}

type dimensionError struct {
	kind string
	a, b int
}

func (e *dimensionError) Error() string {
	return "sketch: " + e.kind + " merge dimension mismatch"
}

func errDimension(kind string, a, b int) error {
	return &dimensionError{kind: kind, a: a, b: b}
}
