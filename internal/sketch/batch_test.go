package sketch

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/xhash"
)

// mixedBatch builds a duplicate-heavy batch exercising every collapse
// path: long consecutive runs (the run-length fast path), interleaved
// repeats (the probe-table path), cancelling +δ/−δ pairs that net to
// zero, and singletons.
func mixedBatch(seed uint64, n int) []stream.Update {
	rng := util.NewSplitMix64(seed)
	batch := make([]stream.Update, 0, n)
	for len(batch) < n {
		it := rng.Uint64n(512)
		switch rng.Uint64n(4) {
		case 0: // run of the same item
			run := int(rng.Uint64n(16)) + 2
			for k := 0; k < run && len(batch) < n; k++ {
				batch = append(batch, stream.Update{Item: it, Delta: 1})
			}
		case 1: // cancelling pair: net delta zero
			batch = append(batch, stream.Update{Item: it, Delta: 3})
			if len(batch) < n {
				batch = append(batch, stream.Update{Item: it, Delta: -3})
			}
		case 2: // negative update
			batch = append(batch, stream.Update{Item: it, Delta: -1})
		default: // singleton
			batch = append(batch, stream.Update{Item: it, Delta: 1})
		}
	}
	return batch
}

// TestCollapseAggregatesExactly checks the open-addressed, run-length
// aware collapse against a straightforward map fold: same first-seen
// order, same net deltas.
func TestCollapseAggregatesExactly(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		batch := mixedBatch(seed, 3000)
		var agg batchAgg
		agg.collapse(batch)

		wantDelta := make(map[uint64]int64)
		var wantOrder []uint64
		for _, u := range batch {
			if _, seen := wantDelta[u.Item]; !seen {
				wantOrder = append(wantOrder, u.Item)
			}
			wantDelta[u.Item] += u.Delta
		}
		if len(agg.order) != len(wantOrder) {
			t.Fatalf("seed %d: %d distinct items, want %d", seed, len(agg.order), len(wantOrder))
		}
		for i, it := range agg.order {
			if it != wantOrder[i] {
				t.Fatalf("seed %d: order[%d] = %d, want %d (first-seen order)", seed, i, it, wantOrder[i])
			}
			if agg.ds[i] != wantDelta[it] {
				t.Fatalf("seed %d: delta[%d] = %d, want %d", seed, agg.ds[i], i, wantDelta[it])
			}
		}
		agg.reset()
		for _, s := range agg.slots {
			if s != 0 {
				t.Fatal("reset left a live slot")
			}
		}
	}
}

// TestRowHashMatchesHashFamilies checks that the flattened-coefficient
// inline evaluation (rowBucketSign) reproduces the Buckets/Sign hash
// families bit for bit — the invariant that keeps wire fingerprints and
// merged estimates unchanged by the hot-path rewrite.
func TestRowHashMatchesHashFamilies(t *testing.T) {
	cs := NewCountSketch(7, 1<<10, util.NewSplitMix64(42))
	rng := util.NewSplitMix64(7)
	for i := 0; i < 5000; i++ {
		it := rng.Next()
		xp := it % xhash.MersennePrime61
		for j := 0; j < cs.rows; j++ {
			h, s := cs.rowBucketSign(j, xp)
			if want := cs.bucket[j].Hash(it); h != want {
				t.Fatalf("item %d row %d: bucket %d, want %d", it, j, h, want)
			}
			if want := cs.sign[j].Hash(it); s != want {
				t.Fatalf("item %d row %d: sign %d, want %d", it, j, s, want)
			}
		}
	}
}

// TestUpdateBatchMatchesUpdateExactly feeds the same duplicate-heavy
// stream through the batch and per-update paths and requires bit-equal
// counters for every sketch type.
func TestUpdateBatchMatchesUpdateExactly(t *testing.T) {
	batch := mixedBatch(3, 6000)
	chunks := [][]stream.Update{batch[:1000], batch[1000:1003], batch[1003:4500], batch[4500:]}

	t.Run("countsketch", func(t *testing.T) {
		a := NewCountSketch(5, 1<<9, util.NewSplitMix64(9))
		b := NewCountSketch(5, 1<<9, util.NewSplitMix64(9))
		for _, c := range chunks {
			a.UpdateBatch(c)
		}
		for _, u := range batch {
			b.Update(u.Item, u.Delta)
		}
		for i, v := range a.flat {
			if v != b.flat[i] {
				t.Fatalf("counter %d: batch %d vs single %d", i, v, b.flat[i])
			}
		}
	})
	t.Run("countsketch-topk", func(t *testing.T) {
		a := NewCountSketchTopK(5, 1<<9, 32, util.NewSplitMix64(9))
		b := NewCountSketchTopK(5, 1<<9, 32, util.NewSplitMix64(9))
		for _, c := range chunks {
			a.UpdateBatch(c)
		}
		for _, u := range batch {
			b.Update(u.Item, u.Delta)
		}
		// Counters are bit-identical; the tracker is refreshed with batch
		// granularity by contract, so only counter state is compared.
		for i, v := range a.flat {
			if v != b.flat[i] {
				t.Fatalf("counter %d: batch %d vs single %d", i, v, b.flat[i])
			}
		}
	})
	t.Run("ams", func(t *testing.T) {
		a := NewAMS(7, 8, util.NewSplitMix64(9))
		b := NewAMS(7, 8, util.NewSplitMix64(9))
		for _, c := range chunks {
			a.UpdateBatch(c)
		}
		for _, u := range batch {
			b.Update(u.Item, u.Delta)
		}
		if ae, be := a.EstimateF2(), b.EstimateF2(); ae != be {
			t.Fatalf("AMS estimate: batch %v vs single %v", ae, be)
		}
	})
	t.Run("countmin", func(t *testing.T) {
		a := NewCountMin(5, 1<<9, util.NewSplitMix64(9))
		b := NewCountMin(5, 1<<9, util.NewSplitMix64(9))
		for _, c := range chunks {
			a.UpdateBatch(c)
		}
		for _, u := range batch {
			b.Update(u.Item, u.Delta)
		}
		rng := util.NewSplitMix64(1)
		for i := 0; i < 2000; i++ {
			it := rng.Uint64n(512)
			if ae, be := a.Estimate(it), b.Estimate(it); ae != be {
				t.Fatalf("CountMin estimate(%d): batch %d vs single %d", it, ae, be)
			}
		}
	})
}

// TestUpdateBatchSteadyStateAllocFree is the acceptance gate for the
// ingest hot path: once the reusable scratch has warmed up, UpdateBatch
// must not allocate, for any sketch variant, even when batches alternate.
func TestUpdateBatchSteadyStateAllocFree(t *testing.T) {
	b1 := mixedBatch(11, 4096)
	b2 := mixedBatch(13, 4096)

	check := func(t *testing.T, feed func(batch []stream.Update)) {
		t.Helper()
		// Warm-up: grow scratch buffers, tracker, and probe table.
		for i := 0; i < 4; i++ {
			feed(b1)
			feed(b2)
		}
		i := 0
		allocs := testing.AllocsPerRun(50, func() {
			if i++; i%2 == 0 {
				feed(b1)
			} else {
				feed(b2)
			}
		})
		if allocs != 0 {
			t.Fatalf("UpdateBatch allocated %.1f times per batch at steady state, want 0", allocs)
		}
	}

	t.Run("countsketch", func(t *testing.T) {
		cs := NewCountSketch(5, 1<<10, util.NewSplitMix64(1))
		check(t, cs.UpdateBatch)
	})
	t.Run("countsketch-topk", func(t *testing.T) {
		cs := NewCountSketchTopK(5, 1<<10, 64, util.NewSplitMix64(1))
		check(t, cs.UpdateBatch)
	})
	t.Run("ams", func(t *testing.T) {
		a := NewAMS(5, 4, util.NewSplitMix64(1))
		check(t, a.UpdateBatch)
	})
	t.Run("countmin", func(t *testing.T) {
		cm := NewCountMin(5, 1<<10, util.NewSplitMix64(1))
		check(t, cm.UpdateBatch)
	})
}
