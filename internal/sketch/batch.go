package sketch

import "repro/internal/stream"

// Batch ingestion paths. Every sketch here is linear in the frequency
// vector, so updates to the same item within a batch collapse into a
// single counter touch per row: aggregate the batch into (distinct item,
// net delta) pairs first, then walk the rows. For heavy-tailed streams
// (the Zipf workloads of the experiments) this removes most of the hash
// evaluations on the hot path; for streams of distinct items it costs one
// map pass. The counter state after UpdateBatch is bit-identical to the
// equivalent sequence of Update calls.

// batchAgg is reusable scratch for duplicate aggregation: net deltas by
// item plus the items in first-seen order (deterministic iteration).
type batchAgg struct {
	delta map[uint64]int64
	order []uint64
	// Hash-reuse scratch for the tracked CountSketch batch path: per-row
	// bucket indices and signs (hs, ss) and the per-(item, row) estimate
	// matrix (ests), so the post-batch re-score reads settled counters
	// without re-hashing.
	hs   []uint64
	ss   []int64
	ests []int64
}

// collapse aggregates the batch, preserving first-seen item order.
func (a *batchAgg) collapse(batch []stream.Update) {
	if a.delta == nil {
		a.delta = make(map[uint64]int64, len(batch))
	}
	a.order = a.order[:0]
	for _, u := range batch {
		if _, seen := a.delta[u.Item]; !seen {
			a.order = append(a.order, u.Item)
		}
		a.delta[u.Item] += u.Delta
	}
}

// reset clears the scratch for the next batch.
func (a *batchAgg) reset() {
	clear(a.delta)
	a.order = a.order[:0]
}

// UpdateBatch processes a batch of turnstile updates. The counter state
// equals the one reached by calling Update for each element in order;
// the top-k tracker (when present) is refreshed once per distinct item
// against the post-batch counters instead of once per update.
func (cs *CountSketch) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	cs.agg.collapse(batch)
	order := cs.agg.order
	if cs.topK == nil {
		for j := 0; j < cs.rows; j++ {
			counts, bucket, sign := cs.counts[j], cs.bucket[j], cs.sign[j]
			for _, it := range order {
				if d := cs.agg.delta[it]; d != 0 {
					counts[bucket.Hash(it)] += sign.Hash(it) * d
				}
			}
		}
		cs.agg.reset()
		return
	}
	// Tracked sketch: every distinct item gets re-scored after the batch,
	// which needs the same (bucket, sign) hashes as the counter update.
	// Hash each (row, item) pair ONCE: remember the pair while applying
	// row j, then read the settled row back into the estimate matrix. A
	// row is fully updated before it is read, so the matrix holds exactly
	// what Estimate would recompute — median it per item and offer.
	if cap(cs.agg.hs) < len(order) {
		cs.agg.hs = make([]uint64, len(order))
		cs.agg.ss = make([]int64, len(order))
	}
	if cap(cs.agg.ests) < len(order)*cs.rows {
		cs.agg.ests = make([]int64, len(order)*cs.rows)
	}
	hs, ss, ests := cs.agg.hs[:len(order)], cs.agg.ss[:len(order)], cs.agg.ests[:len(order)*cs.rows]
	for j := 0; j < cs.rows; j++ {
		counts, bucket, sign := cs.counts[j], cs.bucket[j], cs.sign[j]
		for i, it := range order {
			h, s := bucket.Hash(it), sign.Hash(it)
			hs[i], ss[i] = h, s
			if d := cs.agg.delta[it]; d != 0 {
				counts[h] += s * d
			}
		}
		for i := range order {
			ests[i*cs.rows+j] = ss[i] * counts[hs[i]]
		}
	}
	for i, it := range order {
		row := ests[i*cs.rows : (i+1)*cs.rows]
		// Insertion sort, as in Estimate: rows are O(log n), typically < 20.
		for a := 1; a < len(row); a++ {
			for b := a; b > 0 && row[b] < row[b-1]; b-- {
				row[b], row[b-1] = row[b-1], row[b]
			}
		}
		cs.topK.offer(it, row[len(row)/2])
	}
	cs.agg.reset()
}

// UpdateBatch processes a batch of turnstile updates; the counter state
// is bit-identical to per-update ingestion.
func (a *AMS) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	a.agg.collapse(batch)
	for g := 0; g < a.groups; g++ {
		for r := 0; r < a.reps; r++ {
			z, sign := a.z[g], a.sign[g][r]
			for _, it := range a.agg.order {
				if d := a.agg.delta[it]; d != 0 {
					z[r] += sign.Hash(it) * d
				}
			}
		}
	}
	a.agg.reset()
}

// UpdateBatch processes a batch of turnstile updates; the counter state
// is bit-identical to per-update ingestion.
func (cm *CountMin) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	cm.agg.collapse(batch)
	for j := 0; j < cm.rows; j++ {
		counts, bucket := cm.counts[j], cm.bucket[j]
		for _, it := range cm.agg.order {
			if d := cm.agg.delta[it]; d != 0 {
				counts[bucket.Hash(it)] += d
			}
		}
	}
	cm.agg.reset()
}

// Merge adds the counters of other into cm. Dimensions must match;
// callers are responsible for seed discipline (same hash functions), as
// with CountSketch.Merge.
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.rows != other.rows || cm.buckets != other.buckets {
		return errDimension("CountMin", cm.rows*int(cm.buckets), other.rows*int(other.buckets))
	}
	for j := 0; j < cm.rows; j++ {
		for i := range cm.counts[j] {
			cm.counts[j][i] += other.counts[j][i]
		}
	}
	return nil
}
