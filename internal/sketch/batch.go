package sketch

import (
	"repro/internal/stream"
	"repro/internal/xhash"
)

// Batch ingestion paths. Every sketch here is linear in the frequency
// vector, so updates to the same item within a batch collapse into a
// single counter touch per row: aggregate the batch into (distinct item,
// net delta) pairs first, then walk the rows. For heavy-tailed streams
// (the Zipf workloads of the experiments) this removes most of the hash
// evaluations on the hot path; for streams of distinct items it costs one
// map pass. The counter state after UpdateBatch is bit-identical to the
// equivalent sequence of Update calls.

// batchAgg is reusable scratch for duplicate aggregation: the items in
// first-seen order (deterministic iteration) with their net deltas, plus
// an open-addressed index for interleaved-duplicate detection. All
// buffers are retained across batches, so after the first few batches of
// a steady stream UpdateBatch allocates nothing.
type batchAgg struct {
	// slots is an open-addressed, linear-probe hash table over the items
	// of the current batch: slots[h] holds index+1 into order/ds (0 =
	// empty). A flat power-of-two table probed with a strong multiplicative
	// mix replaces the runtime map the profile showed dominating collapse.
	slots []int32
	order []uint64 // distinct items, first-seen order
	ds    []int64  // net delta per order entry
	// Hash-reuse scratch for the CountSketch batch path: per-item reduced
	// keys (xs), per-row bucket indices and signs (hs, ss), and the
	// per-(item, row) estimate matrix (ests) for the tracked variant, so
	// the post-batch re-score reads settled counters without re-hashing.
	xs   []uint64
	hs   []uint64
	ss   []int64
	ests []int64
}

// mix64 is the SplitMix64 finalizer, a strong multiplicative bit mixer
// used to spread items over the probe table.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// collapse aggregates the batch, preserving first-seen item order.
//
// The scan is run-length aware — the fast path for duplicate-heavy
// batches: consecutive updates to the same item (bursty/clustered arrival
// order, or the single-item floods of adversarial streams) are coalesced
// with plain integer additions before the table is touched, so a run of
// length L costs one probe instead of L. Interleaved duplicates still
// collapse through the table as before.
func (a *batchAgg) collapse(batch []stream.Update) {
	// Size the probe table at ≥2x the batch (≤50% load). Tables are always
	// powers of two and only grow, so the mask arithmetic stays valid and
	// steady-state batches reuse the allocation.
	need := 2 * len(batch)
	if len(a.slots) < need {
		size := len(a.slots)
		if size == 0 {
			size = 64
		}
		for size < need {
			size <<= 1
		}
		a.slots = make([]int32, size)
	}
	mask := uint64(len(a.slots) - 1)
	a.order = a.order[:0]
	a.ds = a.ds[:0]
	for i := 0; i < len(batch); {
		it := batch[i].Item
		d := batch[i].Delta
		j := i + 1
		for j < len(batch) && batch[j].Item == it {
			d += batch[j].Delta
			j++
		}
		for h := mix64(it) & mask; ; h = (h + 1) & mask {
			s := a.slots[h]
			if s == 0 {
				a.slots[h] = int32(len(a.order)) + 1
				a.order = append(a.order, it)
				a.ds = append(a.ds, d)
				break
			}
			if a.order[s-1] == it {
				a.ds[s-1] += d
				break
			}
		}
		i = j
	}
}

// reset clears the scratch for the next batch. The probe table is cleared
// wholesale (a vectorized memclr of a few tens of KB, cheap next to the
// row walks); order and ds just truncate.
func (a *batchAgg) reset() {
	clear(a.slots)
	a.order = a.order[:0]
	a.ds = a.ds[:0]
}

// UpdateBatch processes a batch of turnstile updates. The counter state
// equals the one reached by calling Update for each element in order;
// the top-k tracker (when present) is refreshed once per distinct item
// against the post-batch counters instead of once per update.
func (cs *CountSketch) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	cs.agg.collapse(batch)
	order := cs.agg.order
	// Reduce every distinct item mod 2^61-1 once; each row's inline
	// polynomial evaluations (rowBucketSign) reuse the reduced key.
	if cap(cs.agg.xs) < len(order) {
		cs.agg.xs = make([]uint64, len(order))
	}
	xs := cs.agg.xs[:len(order)]
	for i, it := range order {
		xs[i] = it % xhash.MersennePrime61
	}
	ds := cs.agg.ds
	if cs.topK == nil {
		// Four items per row step (xhash.HornerStep4): the lanes are
		// independent hash chains, so the counter state is bit-identical
		// to the scalar walk — adds into a row commute, and duplicates
		// were already collapsed.
		for j := 0; j < cs.rows; j++ {
			counts := cs.counts[j]
			i := 0
			for ; i+4 <= len(order); i += 4 {
				xq := [4]uint64{xs[i], xs[i+1], xs[i+2], xs[i+3]}
				h, s := cs.rowBucketSign4(j, &xq)
				if d := ds[i]; d != 0 {
					counts[h[0]] += s[0] * d
				}
				if d := ds[i+1]; d != 0 {
					counts[h[1]] += s[1] * d
				}
				if d := ds[i+2]; d != 0 {
					counts[h[2]] += s[2] * d
				}
				if d := ds[i+3]; d != 0 {
					counts[h[3]] += s[3] * d
				}
			}
			for ; i < len(order); i++ {
				if d := ds[i]; d != 0 {
					h, s := cs.rowBucketSign(j, xs[i])
					counts[h] += s * d
				}
			}
		}
		cs.agg.reset()
		return
	}
	// Tracked sketch: every distinct item gets re-scored after the batch,
	// which needs the same (bucket, sign) hashes as the counter update.
	// Hash each (row, item) pair ONCE: remember the pair while applying
	// row j, then read the settled row back into the estimate matrix. A
	// row is fully updated before it is read, so the matrix holds exactly
	// what Estimate would recompute — median it per item and offer.
	if cap(cs.agg.hs) < len(order) {
		cs.agg.hs = make([]uint64, len(order))
		cs.agg.ss = make([]int64, len(order))
	}
	if cap(cs.agg.ests) < len(order)*cs.rows {
		cs.agg.ests = make([]int64, len(order)*cs.rows)
	}
	hs, ss, ests := cs.agg.hs[:len(order)], cs.agg.ss[:len(order)], cs.agg.ests[:len(order)*cs.rows]
	for j := 0; j < cs.rows; j++ {
		counts := cs.counts[j]
		i := 0
		for ; i+4 <= len(order); i += 4 {
			xq := [4]uint64{xs[i], xs[i+1], xs[i+2], xs[i+3]}
			h, s := cs.rowBucketSign4(j, &xq)
			for k := 0; k < 4; k++ {
				hs[i+k], ss[i+k] = h[k], s[k]
				if d := ds[i+k]; d != 0 {
					counts[h[k]] += s[k] * d
				}
			}
		}
		for ; i < len(order); i++ {
			h, s := cs.rowBucketSign(j, xs[i])
			hs[i], ss[i] = h, s
			if d := ds[i]; d != 0 {
				counts[h] += s * d
			}
		}
		for i := range order {
			ests[i*cs.rows+j] = ss[i] * counts[hs[i]]
		}
	}
	for i, it := range order {
		row := ests[i*cs.rows : (i+1)*cs.rows]
		// Insertion sort, as in Estimate: rows are O(log n), typically < 20.
		for a := 1; a < len(row); a++ {
			for b := a; b > 0 && row[b] < row[b-1]; b-- {
				row[b], row[b-1] = row[b-1], row[b]
			}
		}
		cs.topK.offer(it, row[len(row)/2])
	}
	cs.agg.reset()
}

// UpdateBatch processes a batch of turnstile updates; the counter state
// is bit-identical to per-update ingestion.
func (a *AMS) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	a.agg.collapse(batch)
	order, ds := a.agg.order, a.agg.ds
	for g := 0; g < a.groups; g++ {
		for r := 0; r < a.reps; r++ {
			z, sign := a.z[g], a.sign[g][r]
			for i, it := range order {
				if d := ds[i]; d != 0 {
					z[r] += sign.Hash(it) * d
				}
			}
		}
	}
	a.agg.reset()
}

// UpdateBatch processes a batch of turnstile updates; the counter state
// is bit-identical to per-update ingestion.
func (cm *CountMin) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	cm.agg.collapse(batch)
	order, ds := cm.agg.order, cm.agg.ds
	for j := 0; j < cm.rows; j++ {
		counts, bucket := cm.counts[j], cm.bucket[j]
		for i, it := range order {
			if d := ds[i]; d != 0 {
				counts[bucket.Hash(it)] += d
			}
		}
	}
	cm.agg.reset()
}

// Merge adds the counters of other into cm. Dimensions must match;
// callers are responsible for seed discipline (same hash functions), as
// with CountSketch.Merge.
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.rows != other.rows || cm.buckets != other.buckets {
		return errDimension("CountMin", cm.rows*int(cm.buckets), other.rows*int(other.buckets))
	}
	for j := 0; j < cm.rows; j++ {
		for i := range cm.counts[j] {
			cm.counts[j][i] += other.counts[j][i]
		}
	}
	return nil
}
