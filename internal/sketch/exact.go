package sketch

import "repro/internal/util"

// Exact is the linear-space baseline: a hash map holding every nonzero
// frequency exactly. It implements the same Update/Estimate surface as the
// sketches so harnesses can swap it in; its SpaceBytes grows with the
// number of distinct items, which is precisely the cost the paper's
// sub-polynomial algorithms avoid.
type Exact struct {
	freq map[uint64]int64
}

// NewExact returns an empty exact counter.
func NewExact() *Exact {
	return &Exact{freq: make(map[uint64]int64)}
}

// Update processes the turnstile update (item, delta).
func (e *Exact) Update(item uint64, delta int64) {
	nv := e.freq[item] + delta
	if nv == 0 {
		delete(e.freq, item)
	} else {
		e.freq[item] = nv
	}
}

// Estimate returns the exact frequency of item.
func (e *Exact) Estimate(item uint64) int64 { return e.freq[item] }

// SpaceBytes returns an estimate of the map storage: 16 bytes per entry
// (key + value), ignoring map overhead. The point is the growth rate, which
// is linear in distinct items.
func (e *Exact) SpaceBytes() int { return len(e.freq) * 16 }

// Distinct returns the number of items with nonzero frequency.
func (e *Exact) Distinct() int { return len(e.freq) }

// Each calls fn for every (item, frequency) pair with nonzero frequency.
func (e *Exact) Each(fn func(item uint64, freq int64)) {
	for it, f := range e.freq {
		fn(it, f)
	}
}

// F2 returns the exact second moment.
func (e *Exact) F2() float64 {
	var f2 float64
	for _, f := range e.freq {
		ff := float64(f)
		f2 += ff * ff
	}
	return f2
}

// MaxAbs returns the exact maximum |frequency|.
func (e *Exact) MaxAbs() int64 {
	var m int64
	for _, f := range e.freq {
		if a := util.AbsInt64(f); a > m {
			m = a
		}
	}
	return m
}
