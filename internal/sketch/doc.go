// Package sketch implements the linear sketches the paper's algorithms are
// built from: CountSketch (Charikar, Chen, Farach-Colton), the AMS F2
// tug-of-war sketch, and a Count-Min baseline. All sketches are linear in
// the frequency vector, mergeable, and deterministic given a seed.
//
// Layer: the sketch layer of ARCHITECTURE.md, directly above
// internal/xhash.
// Seed discipline: a sketch's hash functions are drawn from the
// constructor rng in fixed per-row order (bucket hash, then sign
// hash); Merge and UnmarshalBinary are only meaningful between
// same-dimension, same-seed sketches — dimensions are checked
// in-process, and the wire fingerprint checks the hash coefficients
// themselves.
package sketch
