package sketch

import (
	"repro/internal/util"
	"repro/internal/xhash"
)

// CountMin is the Cormode-Muthukrishnan Count-Min sketch, included as a
// comparison baseline for the heavy-hitter layer. Unlike CountSketch it only
// supports non-negative frequencies faithfully (its guarantee is one-sided
// overestimation); in the strict turnstile range it still answers point
// queries with error εF1.
type CountMin struct {
	rows    int
	buckets uint64
	counts  [][]int64
	bucket  []*xhash.Buckets
	agg     batchAgg // reusable UpdateBatch scratch
}

// NewCountMin returns a CountMin sketch with r rows and b buckets.
func NewCountMin(r int, b uint64, rng *util.SplitMix64) *CountMin {
	if r <= 0 || b == 0 {
		panic("sketch: CountMin needs positive dimensions")
	}
	cm := &CountMin{
		rows:    r,
		buckets: b,
		counts:  make([][]int64, r),
		bucket:  make([]*xhash.Buckets, r),
	}
	for j := 0; j < r; j++ {
		cm.counts[j] = make([]int64, b)
		cm.bucket[j] = xhash.NewBuckets(2, b, rng.Fork())
	}
	return cm
}

// SpaceBytes returns the counter storage in bytes.
func (cm *CountMin) SpaceBytes() int { return cm.rows * int(cm.buckets) * 8 }

// Update processes the turnstile update (item, delta).
func (cm *CountMin) Update(item uint64, delta int64) {
	for j := 0; j < cm.rows; j++ {
		cm.counts[j][cm.bucket[j].Hash(item)] += delta
	}
}

// Estimate returns the min-over-rows point query, the one-sided CountMin
// estimate (valid when all frequencies are non-negative).
func (cm *CountMin) Estimate(item uint64) int64 {
	est := cm.counts[0][cm.bucket[0].Hash(item)]
	for j := 1; j < cm.rows; j++ {
		if c := cm.counts[j][cm.bucket[j].Hash(item)]; c < est {
			est = c
		}
	}
	return est
}
