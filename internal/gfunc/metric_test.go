package gfunc

import (
	"math"
	"testing"
)

func TestThetaBasics(t *testing.T) {
	g := F2Func()
	if d := Theta(g, g, 1<<12); d != 0 {
		t.Errorf("Θ(g,g) = %v, want 0", d)
	}
	// h = 2g off by a constant factor 2 everywhere except the pinned
	// points... use an overlay at a single point instead.
	h := NewOverlay("bump", g, map[uint64]float64{100: g.Eval(100) * math.E})
	if d := Theta(g, h, 1<<12); math.Abs(d-1) > 1e-9 {
		t.Errorf("Θ = %v, want 1 (one point moved by factor e)", d)
	}
}

func TestThetaSymmetric(t *testing.T) {
	g, h := F2Func(), X2Log()
	a, b := Theta(g, h, 1<<12), Theta(h, g, 1<<12)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("Θ not symmetric: %v vs %v", a, b)
	}
}

func TestThetaTriangle(t *testing.T) {
	g, h, k := F2Func(), X2Log(), SinLogX2()
	if Theta(g, k, 1<<10) > Theta(g, h, 1<<10)+Theta(h, k, 1<<10)+1e-9 {
		t.Error("triangle inequality violated")
	}
}

// TestProposition63Stability: if g is slow-jumping and slow-dropping, any
// h at finite Θ-distance is too. Perturb x² multiplicatively by a bounded
// factor at every grid point and re-classify.
func TestProposition63Stability(t *testing.T) {
	g := F2Func()
	// h = g * (1 + 0.3 sin x): bounded multiplicative perturbation,
	// Θ(g,h) <= log(1.3).
	h := New("x^2*(1+0.3sin)", func(x uint64) float64 {
		if x == 0 {
			return 0
		}
		fx := float64(x)
		return fx * fx * (1 + 0.3*math.Sin(fx)) / 1.2523209514083338 // /(1+0.3 sin 1)
	})
	cfg := DefaultCheckConfig()
	c := Classify(h, cfg)
	if !c.SlowJumping.Holds || !c.SlowDropping.Holds {
		t.Errorf("Θ-bounded perturbation of x² lost slow-jumping/dropping: %+v", c)
	}
	if Theta(g, h, cfg.M) > math.Log(1.3/0.7)+0.5 {
		t.Errorf("Θ larger than the construction allows: %v", Theta(g, h, cfg.M))
	}
}

// TestTheorem64Instability: perturbing the nearly periodic g_np within
// δ = 0.5 yields a function that is neither slow-dropping nor nearly
// periodic — 1-pass intractable by Lemma 23.
func TestTheorem64Instability(t *testing.T) {
	cfg := DefaultCheckConfig()
	g := Gnp()
	h := PerturbNearlyPeriodic(g, 0.5, cfg)

	if d := Theta(g, h, cfg.M); d > math.Log(1.5)+1e-9 {
		t.Fatalf("Θ(g,h) = %v exceeds log(1+δ) = %v", d, math.Log(1.5))
	}
	c := Classify(h, cfg)
	if c.SlowDropping.Holds {
		t.Error("perturbed g_np should not be slow-dropping")
	}
	if c.NearlyPeriodic.Holds {
		t.Error("perturbed g_np should no longer be nearly periodic")
	}
	if c.OnePass != Intractable {
		t.Errorf("perturbed g_np should be 1-pass intractable, got %v", c.OnePass)
	}
}

// TestTheorem64NoOpOnNormal: the perturbation leaves slow-dropping
// functions untouched.
func TestTheorem64NoOpOnNormal(t *testing.T) {
	cfg := DefaultCheckConfig()
	g := F2Func()
	h := PerturbNearlyPeriodic(g, 0.5, cfg)
	if d := Theta(g, h, cfg.M); d != 0 {
		t.Errorf("perturbation of a slow-dropping function moved it: Θ = %v", d)
	}
}

func TestOverlayPanics(t *testing.T) {
	g := F2Func()
	for _, bad := range []struct {
		x uint64
		v float64
	}{{0, 1}, {1, 2}, {5, 0}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for override (%d -> %v)", bad.x, bad.v)
				}
			}()
			NewOverlay("bad", g, map[uint64]float64{bad.x: bad.v})
		}()
	}
}
