package gfunc

import "math"

// Envelope is the concrete sub-polynomial function H of Section 4.2/4.3:
// a single non-decreasing bound satisfying, over [1, M],
//
//	g(y) >= g(x)/H(M)                  for all x < y   (slow-dropping form)
//	g(y) <= ⌊y/x⌋² H(M) g(x)           for all x < y   (slow-jumping form)
//
// (Propositions 15 and 16 guarantee such an H exists exactly when g is
// slow-dropping and slow-jumping.) The algorithms size their CountSketch
// by λ/H(M), so for tractable functions H(M) is sub-polynomial in M and
// the sketch stays small, while for intractable functions H(M) grows
// polynomially and the required width blows up — that blow-up is the
// experimentally observable face of the lower bound.
type Envelope struct {
	// Drop = max_{x<y<=M} g(x)/g(y).
	Drop float64
	// Jump = max_{x<y<=M} g(y) / (⌊y/x⌋² g(x)).
	Jump float64
}

// H returns the combined envelope value max(1, Drop, Jump).
func (e Envelope) H() float64 {
	h := 1.0
	if e.Drop > h {
		h = e.Drop
	}
	if e.Jump > h {
		h = e.Jump
	}
	return h
}

// MeasureEnvelope computes the envelope of g over [1, m] on the standard
// grid. Values can be +Inf for functions with unbounded ratios (e.g. 2^x);
// callers should treat non-finite envelopes as "no sub-polynomial sketch
// exists at this scale".
func MeasureEnvelope(g Func, m uint64) Envelope {
	grid := Grid(m, 1024)
	var (
		prefixMaxLog = math.Inf(-1) // running max of ln g(x), x < y
		prefixMinLog = math.Inf(1)  // running min of ln g(x), x < y
		drop         = 0.0          // max ln(g(x)/g(y))
		jump         = 0.0          // max ln(g(y)/(⌊y/x⌋² g(x)))
	)
	// Drop needs only the prefix max. Jump needs a scan over x because of
	// the ⌊y/x⌋² factor.
	for i, y := range grid {
		ly := LogEval(g, y)
		if i > 0 {
			if d := prefixMaxLog - ly; d > drop {
				drop = d
			}
			for _, x := range grid[:i] {
				j := ly - LogEval(g, x) - 2*math.Log(float64(y/x))
				if j > jump {
					jump = j
				}
			}
		}
		if ly > prefixMaxLog {
			prefixMaxLog = ly
		}
		if ly < prefixMinLog {
			prefixMinLog = ly
		}
	}
	return Envelope{Drop: math.Exp(drop), Jump: math.Exp(jump)}
}

// StableRadius returns r_ε(x) = max{ y : x + y' ∈ δ_ε(g, x) for all
// |y'| <= y }, the stability radius used by Algorithm 2's pruning step:
// the largest symmetric window around x inside which g stays within a
// (1±ε) band of g(x). Returns 0 when even y' = ±1 escapes the band.
func StableRadius(g Func, x uint64, eps float64) uint64 {
	if x == 0 {
		return 0
	}
	gx := g.Eval(x)
	ok := func(z uint64) bool {
		gz := g.Eval(z)
		return math.Abs(gz-gx) <= eps*gx
	}
	// The window must hold for every offset up to the radius, and g need
	// not be monotone, so scan outward until the first failure. The scan is
	// capped: radii beyond the cap are "effectively unbounded" for every
	// caller (sketch errors are far smaller).
	const maxRadius = 1 << 21
	for y := uint64(1); y <= x && y <= maxRadius; y++ {
		if !ok(x+y) || !ok(x-y) {
			return y - 1
		}
	}
	if x < maxRadius {
		return x
	}
	return maxRadius
}
