package gfunc

import (
	"fmt"
	"math"
)

// Witness records the pair (x, y) that realized a property checker's
// extremal violation exponent, together with the function values involved.
type Witness struct {
	X, Y     uint64
	GX, GY   float64
	Exponent float64 // violation exponent at this witness (see each checker)
}

func (w *Witness) String() string {
	if w == nil {
		return "<none>"
	}
	return fmt.Sprintf("x=%d (g=%.4g), y=%d (g=%.4g), exponent=%.3f",
		w.X, w.GX, w.Y, w.GY, w.Exponent)
}

// Report is the outcome of a property check: whether the asymptotic
// property is judged to hold, the violation exponents measured at the two
// scales of the trend test, and the extremal witness at the top scale.
type Report struct {
	Holds bool
	// MidExponent and TopExponent are the maximal violation exponents over
	// the mid-scale window [M^0.35, M^0.6] and top-scale window [M^0.7, M].
	// A property fails when the top exponent neither decays relative to the
	// mid exponent nor is negligible in absolute terms.
	MidExponent, TopExponent float64
	Witness                  *Witness
}

// CheckConfig tunes the witness search. The zero value is not usable; use
// DefaultCheckConfig.
type CheckConfig struct {
	// M is the top of the search range [1, M].
	M uint64
	// Dense is the prefix of [1, M] checked exhaustively.
	Dense uint64
	// DecayFactor: the property holds if TopExponent < DecayFactor *
	// MidExponent (the exponent is shrinking with scale, i.e. the
	// violation is sub-polynomial) ...
	DecayFactor float64
	// ... or if TopExponent < AbsoluteFloor (no violation to speak of).
	AbsoluteFloor float64
	// Gamma is the predictability exponent γ tested (Definition 8).
	Gamma float64
	// Eps is the sub-polynomial accuracy function ε(x) used by the
	// predictability and near-periodicity checks; nil means 1/ln(2+x).
	Eps func(x uint64) float64
}

// DefaultCheckConfig returns the configuration used by the experiments:
// M = 2^20, dense prefix 1024, trend decay factor 0.82, absolute floor
// 0.02, γ = 0.5, ε(x) = 1/ln(2+x).
func DefaultCheckConfig() CheckConfig {
	return CheckConfig{
		M:             1 << 20,
		Dense:         1024,
		DecayFactor:   0.82,
		AbsoluteFloor: 0.02,
		Gamma:         0.5,
		Eps:           func(x uint64) float64 { return 1 / math.Log(2+float64(x)) },
	}
}

// windows returns the [lo, hi] boundaries of the mid and top scale windows.
func (c CheckConfig) windows() (midLo, midHi, topLo, topHi uint64) {
	m := float64(c.M)
	midLo = uint64(math.Pow(m, 0.35))
	midHi = uint64(math.Pow(m, 0.60))
	topLo = uint64(math.Pow(m, 0.70))
	topHi = c.M
	if midLo < 4 {
		midLo = 4
	}
	return
}

// verdict applies the two-scale trend test to per-scale exponents.
func (c CheckConfig) verdict(mid, top float64) bool {
	if top <= c.AbsoluteFloor {
		return true
	}
	return top < c.DecayFactor*mid
}

// CheckSlowDropping tests Definition 7: g is slow-dropping iff for every
// α > 0 there is N with g(y) >= g(x)/y^α whenever x < y, y >= N.
//
// The violation exponent at y is D(y) = ln(maxPrefix(y-1)/g(y)) / ln y:
// the α that a drop to y would force. Polynomial decay keeps D bounded
// away from zero at every scale; sub-polynomial decay drives D → 0.
func CheckSlowDropping(g Func, cfg CheckConfig) Report {
	grid := Grid(cfg.M, cfg.Dense)
	midLo, midHi, topLo, topHi := cfg.windows()

	var (
		prefixMaxLog = math.Inf(-1)
		prefixArgMax uint64
		mid, top     float64
		wit          *Witness
	)
	for _, y := range grid {
		ly := LogEval(g, y)
		if y > 1 && prefixMaxLog > ly {
			d := (prefixMaxLog - ly) / math.Log(float64(y))
			if y >= midLo && y <= midHi && d > mid {
				mid = d
			}
			if y >= topLo && y <= topHi && d > top {
				top = d
				wit = &Witness{
					X: prefixArgMax, Y: y,
					GX: g.Eval(prefixArgMax), GY: g.Eval(y),
					Exponent: d,
				}
			}
		}
		if ly > prefixMaxLog {
			prefixMaxLog = ly
			prefixArgMax = y
		}
	}
	return Report{
		Holds:       cfg.verdict(mid, top),
		MidExponent: mid, TopExponent: top,
		Witness: wit,
	}
}

// CheckSlowJumping tests Definition 6: g is slow-jumping iff for every
// α > 0 there is N with g(y) <= ⌊y/x⌋^{2+α} x^α g(x) whenever x < y, y >= N.
//
// The violation exponent at (x, y) is
//
//	J(x, y) = ( ln g(y) - ln g(x) - 2 ln⌊y/x⌋ ) / ln y,
//
// the α that the pair forces (splitting the α-slack between the ⌊y/x⌋ and
// x factors only shrinks it further, so this is conservative in the right
// direction: quadratic-with-subpoly-excess functions measure J → 0, while
// x^{2+c} measures J → c > 0).
func CheckSlowJumping(g Func, cfg CheckConfig) Report {
	grid := Grid(cfg.M, cfg.Dense)
	midLo, midHi, topLo, topHi := cfg.windows()

	var (
		mid, top float64
		wit      *Witness
	)
	// For each y in a scale window, maximize J over x < y drawn from the
	// same grid (the grid is geometric, so all ratios y/x are covered).
	for _, y := range grid {
		inMid := y >= midLo && y <= midHi
		inTop := y >= topLo && y <= topHi
		if !inMid && !inTop {
			continue
		}
		ly := LogEval(g, y)
		logy := math.Log(float64(y))
		for _, x := range grid {
			if x >= y {
				break
			}
			ratio := y / x // ⌊y/x⌋ >= 1
			j := (ly - LogEval(g, x) - 2*math.Log(float64(ratio))) / logy
			if inMid && j > mid {
				mid = j
			}
			if inTop && j > top {
				top = j
				wit = &Witness{X: x, Y: y, GX: g.Eval(x), GY: g.Eval(y), Exponent: j}
			}
		}
	}
	return Report{
		Holds:       cfg.verdict(mid, top),
		MidExponent: mid, TopExponent: top,
		Witness: wit,
	}
}

// CheckPredictable tests Definition 8 at γ = cfg.Gamma: g is predictable
// iff for large x and every y ∈ [1, x^{1-γ}) with x+y outside the ε-stable
// set δ_ε(g, x), we have g(y) >= x^{-γ} g(x).
//
// For pairs (x, y) where the instability condition triggers
// (|g(x+y) - g(x)| > ε(x) g(x)), the violation exponent is
//
//	P(x, y) = ( ln g(x) - ln g(y) ) / ln x,
//
// which must exceed γ for a genuine violation; we record max(P - γ, 0).
func CheckPredictable(g Func, cfg CheckConfig) Report {
	grid := Grid(cfg.M, cfg.Dense)
	midLo, midHi, topLo, topHi := cfg.windows()
	eps := cfg.Eps
	if eps == nil {
		eps = DefaultCheckConfig().Eps
	}

	var (
		mid, top float64
		wit      *Witness
	)
	for _, x := range grid {
		inMid := x >= midLo && x <= midHi
		inTop := x >= topLo && x <= topHi
		if !inMid && !inTop {
			continue
		}
		gx := g.Eval(x)
		lgx := LogEval(g, x)
		logx := math.Log(float64(x))
		e := eps(x)
		yMax := uint64(math.Pow(float64(x), 1-cfg.Gamma))
		for _, y := range yGrid(yMax) {
			gxy := g.Eval(x + y)
			if math.Abs(gxy-gx) <= e*gx {
				continue // x+y ∈ δ_ε(g, x): stable, no constraint
			}
			p := (lgx-LogEval(g, y))/logx - cfg.Gamma
			if p <= 0 {
				continue
			}
			if inMid && p > mid {
				mid = p
			}
			if inTop && p > top {
				top = p
				wit = &Witness{X: x, Y: y, GX: gx, GY: g.Eval(y), Exponent: p}
			}
		}
	}
	return Report{
		Holds:       cfg.verdict(mid, top),
		MidExponent: mid, TopExponent: top,
		Witness: wit,
	}
}

// yGrid enumerates perturbations y in [1, yMax): dense small values then
// geometric steps. Local variability is usually visible already at y = 1.
func yGrid(yMax uint64) []uint64 {
	if yMax <= 1 {
		return nil
	}
	var out []uint64
	for y := uint64(1); y < yMax && y <= 32; y++ {
		out = append(out, y)
	}
	y := float64(33)
	for uint64(y) < yMax {
		out = append(out, uint64(y))
		y *= 1.5
	}
	return out
}
