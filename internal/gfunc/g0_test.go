package gfunc

import (
	"math"
	"testing"
)

func TestAnalyzeSignsPositive(t *testing.T) {
	r := AnalyzeSigns(func(x uint64) float64 { return 1 + float64(x)*float64(x) }, 1<<10)
	if r.Verdict != SignPositive {
		t.Errorf("verdict %v, want positive", r.Verdict)
	}
}

func TestAnalyzeSignsCrossing(t *testing.T) {
	// g(x) = cos(x)+0.5 scaled so g(0)=1: crosses zero and goes negative.
	r := AnalyzeSigns(func(x uint64) float64 {
		return (math.Cos(float64(x)) + 0.5) / 1.5
	}, 1<<10)
	if r.Verdict != SignCrossing {
		t.Errorf("verdict %v, want crossing (Lemma 34/Prop 36)", r.Verdict)
	}
	if r.NegativeAt == 0 {
		t.Error("expected a negativity witness")
	}
}

func TestAnalyzeSignsZeroPeriodic(t *testing.T) {
	// g(x) = (1 + cos(πx))/2 on integers: 1, 0, 1, 0, ... period 2 with a
	// zero at x=1. Prop 38's tractable special case.
	r := AnalyzeSigns(func(x uint64) float64 {
		if x%2 == 1 {
			return 0
		}
		return 1
	}, 1<<10)
	if r.Verdict != SignZeroPeriodic {
		t.Fatalf("verdict %v, want zero+periodic", r.Verdict)
	}
	if r.Period != 2 {
		t.Errorf("period %d, want 2", r.Period)
	}
}

func TestAnalyzeSignsZeroAperiodic(t *testing.T) {
	// Zero at x=5 but no periodic structure: intractable per Prop 37/38.
	r := AnalyzeSigns(func(x uint64) float64 {
		if x == 5 {
			return 0
		}
		return 1 + float64(x)
	}, 1<<10)
	if r.Verdict != SignZeroAperiodic {
		t.Errorf("verdict %v, want zero+aperiodic", r.Verdict)
	}
	if r.ZeroAt != 5 {
		t.Errorf("zero witness %d, want 5", r.ZeroAt)
	}
}

func TestClassifyG0PositiveTractable(t *testing.T) {
	// g(x) = 1 + x²: positive, restriction ~ x² tractable.
	g := NormalizeG0("1+x^2", func(x uint64) float64 {
		return 1 + float64(x)*float64(x)
	})
	cfg := DefaultCheckConfig()
	c := ClassifyG0(g, cfg)
	if c.Sign.Verdict != SignPositive {
		t.Fatalf("sign verdict %v", c.Sign.Verdict)
	}
	if c.OnePass != Tractable || c.TwoPass != Tractable {
		t.Errorf("1+x² should be tractable in G0; got 1-pass %v, 2-pass %v",
			c.OnePass, c.TwoPass)
	}
}

func TestClassifyG0CrossingIntractable(t *testing.T) {
	g := G0Func{name: "cosine-mix", eval: func(x uint64) float64 {
		return (math.Cos(float64(x)/3) + 0.5) / 1.5
	}}
	c := ClassifyG0(g, DefaultCheckConfig())
	if c.OnePass != Intractable {
		t.Errorf("sign-crossing function should be intractable, got %v", c.OnePass)
	}
}

func TestClassifyG0PolynomialDecayIntractable(t *testing.T) {
	// g(x) = 1/(1+x): positive with g(0)=1 but the restriction decays
	// polynomially — Theorem 39 (not slow-dropping ⇒ not tractable).
	g := NormalizeG0("1/(1+x)", func(x uint64) float64 {
		return 1 / (1 + float64(x))
	})
	c := ClassifyG0(g, DefaultCheckConfig())
	if c.OnePass != Intractable {
		t.Errorf("1/(1+x) should be 1-pass intractable in G0, got %v", c.OnePass)
	}
}

func TestG0NearlyPeriodicVariant(t *testing.T) {
	// The G0 lift of g_np: g(0) = 1 and g(x) = g_np(x) for x > 0 — by the
	// x-2y variant it should still register as nearly periodic
	// (ι(2y - x) = ι(x) for y = 2^k > x, exactly as ι(x + y) = ι(x)).
	gnp := Gnp()
	g := G0Func{name: "g_np+1at0", eval: func(x uint64) float64 {
		if x == 0 {
			return 1
		}
		return gnp.Eval(x)
	}}
	c := ClassifyG0(g, DefaultCheckConfig())
	if c.OnePass != OpenNearlyPeriodic {
		t.Errorf("G0 g_np variant should be nearly periodic, got %v (np report: mid=%.3f top=%.3f)",
			c.OnePass, c.NearlyPeriodicG0.MidExponent, c.NearlyPeriodicG0.TopExponent)
	}
}

func TestRestrictionIsClassG(t *testing.T) {
	g := NormalizeG0("1+x", func(x uint64) float64 { return 1 + float64(x) })
	if err := Validate(g.Restriction(), 1<<12); err != nil {
		t.Error(err)
	}
}
