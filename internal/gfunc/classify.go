package gfunc

import (
	"fmt"
	"strings"
)

// Tractability is the zero-one-law verdict for a function at a given
// number of passes.
type Tractability int

const (
	// Intractable: the function fails the law's conditions, so no
	// sub-polynomial-space algorithm exists (Theorems 22 and 26).
	Intractable Tractability = iota
	// Tractable: the function satisfies the law's conditions, so the
	// paper's algorithm solves g-SUM in sub-polynomial space.
	Tractable
	// OpenNearlyPeriodic: the function is nearly periodic, the narrow class
	// the zero-one laws do not cover; tractability must be settled case by
	// case (g_np is tractable via a dedicated algorithm, others are open).
	OpenNearlyPeriodic
)

// String renders the verdict.
func (t Tractability) String() string {
	switch t {
	case Tractable:
		return "tractable"
	case Intractable:
		return "intractable"
	case OpenNearlyPeriodic:
		return "nearly-periodic (law does not apply)"
	default:
		return fmt.Sprintf("Tractability(%d)", int(t))
	}
}

// Classification is the full output of the zero-one-law classifier for one
// function: the three property reports, the near-periodicity report, and
// the 1-pass / 2-pass verdicts of Theorems 2 and 3.
type Classification struct {
	Name string

	SlowJumping    Report
	SlowDropping   Report
	Predictable    Report
	NearlyPeriodic Report

	// OnePass: Theorem 2 — tractable iff slow-jumping ∧ slow-dropping ∧
	// predictable (for normal functions).
	OnePass Tractability
	// TwoPass: Theorem 3 — tractable iff slow-jumping ∧ slow-dropping
	// (for normal functions; predictability is not needed with 2 passes).
	TwoPass Tractability
}

// Classify runs all property checkers on g and applies Theorems 2 and 3.
func Classify(g Func, cfg CheckConfig) Classification {
	c := Classification{Name: g.Name()}
	c.SlowJumping = CheckSlowJumping(g, cfg)
	c.SlowDropping = CheckSlowDropping(g, cfg)
	c.Predictable = CheckPredictable(g, cfg)
	c.NearlyPeriodic = CheckNearlyPeriodic(g, cfg)

	if c.NearlyPeriodic.Holds {
		c.OnePass = OpenNearlyPeriodic
		c.TwoPass = OpenNearlyPeriodic
		return c
	}
	if c.SlowJumping.Holds && c.SlowDropping.Holds {
		c.TwoPass = Tractable
		if c.Predictable.Holds {
			c.OnePass = Tractable
		} else {
			c.OnePass = Intractable
		}
	} else {
		c.OnePass = Intractable
		c.TwoPass = Intractable
	}
	return c
}

// String renders the classification as a one-line summary.
func (c Classification) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", c.Name)
	mark := func(r Report) string {
		if r.Holds {
			return "yes"
		}
		return "NO "
	}
	fmt.Fprintf(&b, " jump=%s drop=%s pred=%s np=%s  1-pass: %-12s 2-pass: %s",
		mark(c.SlowJumping), mark(c.SlowDropping), mark(c.Predictable),
		mark(c.NearlyPeriodic), c.OnePass, c.TwoPass)
	return b.String()
}

// CatalogEntry pairs a function with the paper's stated expectations, used
// by the E1 experiment and its tests.
type CatalogEntry struct {
	Func Func
	// Where the paper states or implies the verdicts.
	PaperRef string
	// Expected property verdicts per the paper's prose.
	WantJump, WantDrop, WantPred, WantNP bool
	// Expected tractability.
	WantOnePass, WantTwoPass Tractability
}

// Catalog returns every worked example the paper names, with the paper's
// stated verdicts. This is the ground truth of experiment E1.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			Func: F2Func(), PaperRef: "§3 (x² predictable example); AMS",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: F1Func(), PaperRef: "monotone, [6]",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: Power(1.5), PaperRef: "frequency moments k<2, Indyk-Woodruff",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: Power(0.5), PaperRef: "frequency moments k<2",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: L0(), PaperRef: "monotone bounded",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: X3(), PaperRef: "§4.6: x³ is not slow-jumping",
			WantJump: false, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Intractable, WantTwoPass: Intractable,
		},
		{
			// 2^x also fails predictability: for y < x^{1-γ}, g(y) is
			// exponentially smaller than x^{-γ}g(x) while g(x+y) ≫ g(x).
			Func: Exp2(), PaperRef: "Definition 6: 2^x not slow-jumping",
			WantJump: false, WantDrop: true, WantPred: false, WantNP: false,
			WantOnePass: Intractable, WantTwoPass: Intractable,
		},
		{
			Func: Reciprocal(), PaperRef: "§4.6: 1/x is not slow-dropping",
			WantJump: true, WantDrop: false, WantPred: true, WantNP: false,
			WantOnePass: Intractable, WantTwoPass: Intractable,
		},
		{
			Func: InverseLog(), PaperRef: "Definition 7: (lg(1+x))^{-1} slow-dropping; [5]",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: SinX2(), PaperRef: "Definitions 6-8: (2+sin x)x² not predictable",
			WantJump: true, WantDrop: true, WantPred: false, WantNP: false,
			WantOnePass: Intractable, WantTwoPass: Tractable,
		},
		{
			Func: SinSqrtX2(), PaperRef: "§4.6: (2+sin√x)x² 2-pass only",
			WantJump: true, WantDrop: true, WantPred: false, WantNP: false,
			WantOnePass: Intractable, WantTwoPass: Tractable,
		},
		{
			Func: SinLogX2(), PaperRef: "§4.6: (2+sin log(1+x))x² 1-pass tractable",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: X2Log(), PaperRef: "§4.6: x² lg(1+x) 1-pass tractable",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: X2SqrtLogExtra(), PaperRef: "Definition 6: x²2^√lg x slow-jumping",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			Func: ExpSqrtLog(), PaperRef: "§4.6: e^{log^{1/2}(1+x)} 1-pass tractable",
			WantJump: true, WantDrop: true, WantPred: true, WantNP: false,
			WantOnePass: Tractable, WantTwoPass: Tractable,
		},
		{
			// g_np fails slow-dropping by construction (g(2^k) = 2^{-k});
			// it also fails slow-jumping, since g(2^k + 1) = 1 jumps back
			// from g(2^k) = 2^{-k} with ⌊y/x⌋ = 1. It satisfies the
			// predictability inequality vacuously. The law does not apply:
			// it is nearly periodic, and Appendix D.1 gives a dedicated
			// 1-pass algorithm.
			Func: Gnp(), PaperRef: "Definition 52 / Appendix D.1: nearly periodic",
			WantJump: false, WantDrop: false, WantPred: true, WantNP: true,
			WantOnePass: OpenNearlyPeriodic, WantTwoPass: OpenNearlyPeriodic,
		},
	}
}
