package gfunc

import (
	"fmt"
	"math"
)

// Func is a function g in the class G. Implementations must satisfy
// g(0) = 0, g(1) = 1 and g(x) > 0 for x > 0; Validate checks this.
type Func interface {
	// Name returns a short human-readable identifier, e.g. "x^2".
	Name() string
	// Eval returns g(x).
	Eval(x uint64) float64
}

// LogEvaler is an optional extension for functions whose values overflow
// float64 (e.g. 2^x). Property checkers call LogEval when available and
// fall back to math.Log(Eval(x)) otherwise.
type LogEvaler interface {
	// LogEval returns ln g(x) for x >= 1.
	LogEval(x uint64) float64
}

// plain wraps a closure as a Func with an optional log-space evaluator.
type plain struct {
	name    string
	eval    func(uint64) float64
	logEval func(uint64) float64 // may be nil
}

func (p *plain) Name() string { return p.name }

func (p *plain) Eval(x uint64) float64 { return p.eval(x) }

func (p *plain) LogEval(x uint64) float64 {
	if p.logEval != nil {
		return p.logEval(x)
	}
	return math.Log(p.eval(x))
}

// New wraps eval as a Func. The closure must already satisfy the class-G
// constraints; use Normalize to rescale an arbitrary positive function.
func New(name string, eval func(uint64) float64) Func {
	return &plain{name: name, eval: eval}
}

// NewWithLog wraps eval plus a log-space evaluator for functions whose
// values exceed float64 range.
func NewWithLog(name string, eval, logEval func(uint64) float64) Func {
	return &plain{name: name, eval: eval, logEval: logEval}
}

// Normalize rescales a positive function f so that g(0) = 0 and g(1) = 1:
// g(x) = f(x)/f(1) for x >= 1. It panics if f(1) <= 0.
func Normalize(name string, f func(uint64) float64) Func {
	f1 := f(1)
	if !(f1 > 0) || math.IsInf(f1, 0) || math.IsNaN(f1) {
		panic(fmt.Sprintf("gfunc: cannot normalize %q, f(1) = %v", name, f1))
	}
	return New(name, func(x uint64) float64 {
		if x == 0 {
			return 0
		}
		return f(x) / f1
	})
}

// LogEval returns ln g(x) for x >= 1, using the LogEvaler fast path when g
// provides one. It returns -Inf when g(x) underflows to zero, which the
// class-G constraint g(x) > 0 forbids but floating point can produce.
func LogEval(g Func, x uint64) float64 {
	if le, ok := g.(LogEvaler); ok {
		return le.LogEval(x)
	}
	return math.Log(g.Eval(x))
}

// Validate checks the class-G constraints g(0) = 0, g(1) = 1, and
// g(x) > 0 for 1 <= x <= upTo (on a logarithmic grid plus a dense prefix).
// It returns a descriptive error naming the violated constraint.
func Validate(g Func, upTo uint64) error {
	if v := g.Eval(0); v != 0 {
		return fmt.Errorf("gfunc: %s violates g(0)=0 (got %v)", g.Name(), v)
	}
	if v := g.Eval(1); math.Abs(v-1) > 1e-9 {
		return fmt.Errorf("gfunc: %s violates g(1)=1 (got %v)", g.Name(), v)
	}
	for _, x := range Grid(upTo, 512) {
		v := g.Eval(x)
		if math.IsNaN(v) {
			return fmt.Errorf("gfunc: %s has g(%d) = NaN", g.Name(), x)
		}
		if v <= 0 && !math.IsInf(v, 1) {
			return fmt.Errorf("gfunc: %s violates g(x)>0 at x=%d (got %v)", g.Name(), x, v)
		}
	}
	return nil
}

// Grid returns a deterministic evaluation grid over [1, m]: all integers up
// to `dense`, then geometrically spaced points (ratio ~2^(1/8)) with small
// additive jitter offsets ±1 to catch local variability. The grid is sorted
// and duplicate-free.
func Grid(m uint64, dense uint64) []uint64 {
	if m == 0 {
		return nil
	}
	if dense > m {
		dense = m
	}
	seen := make(map[uint64]struct{})
	var out []uint64
	add := func(x uint64) {
		if x >= 1 && x <= m {
			if _, ok := seen[x]; !ok {
				seen[x] = struct{}{}
				out = append(out, x)
			}
		}
	}
	for x := uint64(1); x <= dense; x++ {
		add(x)
	}
	x := float64(dense)
	if x < 1 {
		x = 1
	}
	const ratio = 1.0905077326652577 // 2^(1/8)
	for x <= float64(m) {
		base := uint64(math.Round(x))
		add(base - 1)
		add(base)
		add(base + 1)
		x *= ratio
	}
	// Exact powers of two (±1) are the structural points of dyadic
	// functions such as g_np; make sure rounding never drops them.
	for p := uint64(1); p != 0 && p <= m; p <<= 1 {
		add(p - 1)
		add(p)
		add(p + 1)
	}
	add(m)
	sortUint64(out)
	return out
}

func sortUint64(xs []uint64) {
	// small helper; the grids are short so insertion sort is fine and
	// keeps the function allocation-free.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
