// Package gfunc implements the function class G of the paper,
//
//	G = { g : Z≥0 → R,  g(0) = 0,  g(1) = 1,  g(x) > 0 for x > 0 },
//
// together with the three structural properties that drive the zero-one
// laws — slow-jumping (Definition 6), slow-dropping (Definition 7), and
// predictable (Definition 8) — the nearly periodic class (Definition 9),
// and the classifier implementing Theorems 2 and 3.
//
// The paper's definitions are asymptotic (they quantify over a threshold
// N → ∞). The checkers here are witness searchers over a finite range
// [1, M] combined with a two-scale trend test: a violation exponent that
// persists at the top scale marks the property as failing, one that decays
// toward zero as the scale grows marks it as holding. DESIGN.md §2 records
// this substitution; every verdict carries the witness that produced it so
// lower-bound harnesses can replay it.
//
// Layer: satellite of the spine in ARCHITECTURE.md: the function class
// G, its zero-one-law property checkers, and envelope measurement,
// consumed by every layer from heavy up to the daemon.
// Seed discipline: classification uses deterministic witness searches;
// envelope measurement is a pure function of (g, M). Catalog functions
// are identified by Name() on the wire, so renaming one is a wire
// format change.
package gfunc
