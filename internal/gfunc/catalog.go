package gfunc

import (
	"math"
	"math/bits"
	"strconv"
)

// This file implements every function of one variable that the paper names,
// normalized into the class G (g(0)=0, g(1)=1, g(x)>0 for x>0).

// Power returns g(x) = x^p. The paper: tractable iff p <= 2 (slow-jumping
// fails for p > 2; slow-dropping fails for p < 0).
func Power(p float64) Func {
	name := "x^" + trimFloat(p)
	return NewWithLog(name,
		func(x uint64) float64 {
			if x == 0 {
				return 0
			}
			return math.Pow(float64(x), p)
		},
		func(x uint64) float64 {
			return p * math.Log(float64(x))
		})
}

// F2Func returns g(x) = x², the frequency-moment special case F2.
func F2Func() Func { return Power(2) }

// F1Func returns g(x) = x (the L1 norm of the frequency vector).
func F1Func() Func { return Power(1) }

// L0 returns the indicator g(x) = 1(x > 0): the number of distinct items.
// Monotone, bounded, tractable.
func L0() Func {
	return New("1(x>0)", func(x uint64) float64 {
		if x == 0 {
			return 0
		}
		return 1
	})
}

// Reciprocal returns g(x) = 1/x, the canonical polynomially decreasing
// function. Not slow-dropping, hence intractable (Lemma 23); this is the
// paper's §4.6 example "1/x is not slow-dropping".
func Reciprocal() Func {
	return NewWithLog("1/x",
		func(x uint64) float64 {
			if x == 0 {
				return 0
			}
			return 1 / float64(x)
		},
		func(x uint64) float64 {
			return -math.Log(float64(x))
		})
}

// InverseLog returns g(x) = 1/lg(1+x) normalized; it decreases only
// sub-polynomially, so it is slow-dropping and tractable — the paper's
// example (lg(1+x))^{-1} 1(x>0) from Definition 7.
func InverseLog() Func {
	return Normalize("1/lg(1+x)", func(x uint64) float64 {
		return 1 / math.Log2(1+float64(x))
	})
}

// Exp2 returns g(x) = 2^(x-1), exponential growth; not slow-jumping.
func Exp2() Func {
	return NewWithLog("2^(x-1)",
		func(x uint64) float64 {
			if x == 0 {
				return 0
			}
			return math.Pow(2, float64(x-1))
		},
		func(x uint64) float64 {
			return float64(x-1) * math.Ln2
		})
}

// SinX2 returns g(x) = (2+sin x)x² / 3: slow-jumping and slow-dropping but
// NOT predictable (Definition 8's negative example — it varies by a factor
// of 3 between nearby integers while growing). 2-pass tractable only.
func SinX2() Func {
	return Normalize("(2+sin x)x^2", func(x uint64) float64 {
		fx := float64(x)
		return (2 + math.Sin(fx)) * fx * fx
	})
}

// SinSqrtX2 returns g(x) = (2+sin √x)x² normalized: §4.6's example of a
// function that is slow-jumping and slow-dropping but not predictable, so
// 2-pass tractable but not 1-pass tractable.
func SinSqrtX2() Func {
	return Normalize("(2+sin sqrt(x))x^2", func(x uint64) float64 {
		fx := float64(x)
		return (2 + math.Sin(math.Sqrt(fx))) * fx * fx
	})
}

// SinLogX2 returns g(x) = (2+sin log(1+x))x² normalized: §4.6's example of
// a modulated quadratic whose modulation drifts slowly enough to be
// predictable, hence 1-pass tractable.
func SinLogX2() Func {
	return Normalize("(2+sin log(1+x))x^2", func(x uint64) float64 {
		fx := float64(x)
		return (2 + math.Sin(math.Log(1+fx))) * fx * fx
	})
}

// X2Log returns g(x) = x² lg(1+x) normalized: §4.6's example of a slightly
// super-quadratic but still slow-jumping (the excess is sub-polynomial),
// 1-pass tractable function.
func X2Log() Func {
	return Normalize("x^2 lg(1+x)", func(x uint64) float64 {
		fx := float64(x)
		return fx * fx * math.Log2(1+fx)
	})
}

// X2SqrtLogExtra returns g(x) = x² 2^√(lg x) normalized, the Definition 6
// example of a slow-jumping function with a genuinely sub-polynomial but
// super-polylogarithmic factor.
func X2SqrtLogExtra() Func {
	return Normalize("x^2 2^sqrt(lg x)", func(x uint64) float64 {
		fx := float64(x)
		return fx * fx * math.Pow(2, math.Sqrt(math.Log2(fx)))
	})
}

// ExpSqrtLog returns g(x) = e^√(ln(1+x)) normalized: §4.6's sub-polynomially
// growing 1-pass tractable example e^{log^{1/2}(1+x)}.
func ExpSqrtLog() Func {
	return Normalize("e^sqrt(log(1+x))", func(x uint64) float64 {
		return math.Exp(math.Sqrt(math.Log(1 + float64(x))))
	})
}

// X3 returns g(x) = x³: not slow-jumping, hence intractable in any constant
// number of passes (Lemma 28); matches the Θ(n^{1-2/k}) frequency-moment
// bound for k = 3.
func X3() Func { return Power(3) }

// Gnp returns the nearly periodic function of Definition 52 / Appendix D.1:
// g(x) = 2^{-ι(x)} where ι(x) is the index of the lowest set bit of x, and
// g(0) = 0. It is S-nearly periodic yet 1-pass tractable via the dedicated
// algorithm in internal/heavy.
func Gnp() Func {
	return New("g_np", func(x uint64) float64 {
		if x == 0 {
			return 0
		}
		return math.Pow(2, -float64(bits.TrailingZeros64(x)))
	})
}

// GnpIota returns ι(x) = index of the lowest set bit, the structural value
// behind Gnp. Exposed for the Appendix D.1 heavy-hitter algorithm.
func GnpIota(x uint64) int {
	if x == 0 {
		return 64
	}
	return bits.TrailingZeros64(x)
}

// LEta applies the transformation L_η(g)(x) = g(x) log^η(1+x) of
// Definition 55, renormalized into G. Theorems 30/31: Lη preserves 1-pass
// tractability of S-normal functions but breaks every nearly periodic
// function (the log factor destroys the near-repetition).
func LEta(g Func, eta float64) Func {
	name := "L_" + trimFloat(eta) + "(" + g.Name() + ")"
	return Normalize(name, func(x uint64) float64 {
		return g.Eval(x) * math.Pow(math.Log(1+float64(x)), eta)
	})
}

// Shifted returns g(x) = f(x+shift)/f(1+shift) for x > 0, used to build
// variants whose interesting behaviour starts away from the origin.
func Shifted(f Func, shift uint64) Func {
	name := f.Name() + "(x+" + trimUint(shift) + ")"
	return Normalize(name, func(x uint64) float64 {
		return f.Eval(x + shift)
	})
}

// trimFloat renders p compactly for names ("2", "1.5", "0.25").
func trimFloat(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

func trimUint(u uint64) string { return strconv.FormatUint(u, 10) }
