package gfunc

import "testing"

// TestCatalogClassification is experiment E1's ground truth: every worked
// example the paper names must classify exactly as the paper states.
func TestCatalogClassification(t *testing.T) {
	cfg := DefaultCheckConfig()
	for _, entry := range Catalog() {
		entry := entry
		t.Run(entry.Func.Name(), func(t *testing.T) {
			c := Classify(entry.Func, cfg)
			if c.SlowJumping.Holds != entry.WantJump {
				t.Errorf("slow-jumping = %v, want %v (mid=%.3f top=%.3f, witness %s)",
					c.SlowJumping.Holds, entry.WantJump,
					c.SlowJumping.MidExponent, c.SlowJumping.TopExponent,
					c.SlowJumping.Witness)
			}
			if c.SlowDropping.Holds != entry.WantDrop {
				t.Errorf("slow-dropping = %v, want %v (mid=%.3f top=%.3f, witness %s)",
					c.SlowDropping.Holds, entry.WantDrop,
					c.SlowDropping.MidExponent, c.SlowDropping.TopExponent,
					c.SlowDropping.Witness)
			}
			if c.Predictable.Holds != entry.WantPred {
				t.Errorf("predictable = %v, want %v (mid=%.3f top=%.3f, witness %s)",
					c.Predictable.Holds, entry.WantPred,
					c.Predictable.MidExponent, c.Predictable.TopExponent,
					c.Predictable.Witness)
			}
			if c.NearlyPeriodic.Holds != entry.WantNP {
				t.Errorf("nearly-periodic = %v, want %v (mid=%.3f top=%.3f, witness %s)",
					c.NearlyPeriodic.Holds, entry.WantNP,
					c.NearlyPeriodic.MidExponent, c.NearlyPeriodic.TopExponent,
					c.NearlyPeriodic.Witness)
			}
			if c.OnePass != entry.WantOnePass {
				t.Errorf("1-pass verdict = %v, want %v", c.OnePass, entry.WantOnePass)
			}
			if c.TwoPass != entry.WantTwoPass {
				t.Errorf("2-pass verdict = %v, want %v", c.TwoPass, entry.WantTwoPass)
			}
		})
	}
}

// TestCatalogValidates checks the class-G constraints on every catalog
// function.
func TestCatalogValidates(t *testing.T) {
	for _, entry := range Catalog() {
		if err := Validate(entry.Func, 1<<16); err != nil {
			t.Errorf("%s: %v", entry.Func.Name(), err)
		}
	}
}
