package gfunc

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests of the witness checkers and grid machinery: the
// classifier's verdicts are covered by classify_test.go; here we pin down
// the internal invariants the checkers rely on.

func TestGridSortedDistinct(t *testing.T) {
	f := func(m16 uint16) bool {
		m := uint64(m16) + 1
		g := Grid(m, 64)
		for i := 1; i < len(g); i++ {
			if g[i] <= g[i-1] {
				return false
			}
		}
		return len(g) > 0 && g[0] >= 1 && g[len(g)-1] <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGridContainsPowersOfTwo(t *testing.T) {
	g := Grid(1<<20, 1024)
	present := make(map[uint64]bool, len(g))
	for _, x := range g {
		present[x] = true
	}
	for p := uint64(1); p <= 1<<20; p <<= 1 {
		if !present[p] {
			t.Errorf("grid is missing 2^k point %d", p)
		}
	}
}

func TestLogEvalConsistency(t *testing.T) {
	// LogEval must agree with log(Eval) wherever Eval is finite.
	for _, g := range []Func{F2Func(), Power(0.5), X2Log(), Reciprocal()} {
		for _, x := range []uint64{1, 2, 17, 1024, 1 << 20} {
			want := math.Log(g.Eval(x))
			got := LogEval(g, x)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("%s: LogEval(%d) = %v, log(Eval) = %v", g.Name(), x, got, want)
			}
		}
	}
}

func TestLogEvalHandlesOverflow(t *testing.T) {
	// 2^(x-1) overflows float64 near x = 1075; LogEval must stay finite.
	g := Exp2()
	if v := LogEval(g, 100000); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("LogEval overflowed: %v", v)
	}
	if math.Abs(LogEval(g, 100000)-99999*math.Ln2) > 1 {
		t.Error("LogEval(2^(x-1)) wrong")
	}
}

func TestEnvelopeDominates(t *testing.T) {
	// MeasureEnvelope's H must actually dominate the drop and jump ratios
	// on the measurement grid — the property Algorithms 1/2 size by.
	for _, g := range []Func{F2Func(), X2Log(), SinX2(), SinLogX2()} {
		const m = 1 << 14
		env := MeasureEnvelope(g, m)
		h := env.H()
		grid := Grid(m, 256)
		for i, y := range grid {
			ly := LogEval(g, y)
			for _, x := range grid[:i] {
				lx := LogEval(g, x)
				if lx-ly > math.Log(h)+1e-9 {
					t.Fatalf("%s: drop g(%d)/g(%d) exceeds H=%v", g.Name(), x, y, h)
				}
				if ly-lx-2*math.Log(float64(y/x)) > math.Log(h)+1e-9 {
					t.Fatalf("%s: jump at (%d,%d) exceeds H=%v", g.Name(), x, y, h)
				}
			}
		}
	}
}

func TestEnvelopeOrdersByDifficulty(t *testing.T) {
	// x² has (almost) no envelope; x² lg(1+x) a logarithmic one; x³ a
	// polynomial one. The measured H must reflect that ordering.
	m := uint64(1 << 16)
	h2 := MeasureEnvelope(F2Func(), m).H()
	hlog := MeasureEnvelope(X2Log(), m).H()
	h3 := MeasureEnvelope(X3(), m).H()
	if !(h2 < hlog && hlog < h3) {
		t.Errorf("envelope ordering broken: x²=%v, x²lg=%v, x³=%v", h2, hlog, h3)
	}
	if h3 < float64(m)/8 {
		t.Errorf("x³ envelope %v should be ~M (polynomial)", h3)
	}
}

func TestStableRadiusSmoothVsOscillating(t *testing.T) {
	// r_ε grows with x for smooth functions (relative stability) and
	// stays bounded by the oscillation wavelength for (2+sin √x)x².
	smooth := F2Func()
	r1 := StableRadius(smooth, 1000, 0.25)
	r2 := StableRadius(smooth, 100000, 0.25)
	if r2 <= r1 {
		t.Errorf("x² stable radius should grow with x: r(1e3)=%d, r(1e5)=%d", r1, r2)
	}
	osc := SinSqrtX2()
	ro := StableRadius(osc, 100000, 0.25)
	// wavelength at x: Δ(√x) = π ⇒ Δx ≈ 2π√x ≈ 1987; the 25% band is hit
	// well inside one wavelength.
	if ro >= 4000 {
		t.Errorf("(2+sin √x)x² stable radius %d should be below the wavelength", ro)
	}
	if ro >= r2 {
		t.Errorf("oscillating radius %d should be far below smooth radius %d", ro, r2)
	}
}

func TestStableRadiusZeroAtJump(t *testing.T) {
	// g_np jumps by factor 2 between adjacent integers around odd x:
	// the radius at a large odd point is 0 for ε < 1/2.
	g := Gnp()
	if r := StableRadius(g, 10001, 0.25); r != 0 {
		t.Errorf("g_np radius at an odd point = %d, want 0", r)
	}
}

func TestCheckConfigWindowsOrdered(t *testing.T) {
	cfg := DefaultCheckConfig()
	midLo, midHi, topLo, topHi := cfg.windows()
	if !(midLo < midHi && midHi <= topLo && topLo < topHi) {
		t.Errorf("windows out of order: [%d,%d] [%d,%d]", midLo, midHi, topLo, topHi)
	}
	if topHi != cfg.M {
		t.Errorf("top window must end at M")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	bad1 := New("g0!=0", func(x uint64) float64 { return 1 })
	if Validate(bad1, 100) == nil {
		t.Error("expected g(0)=0 violation")
	}
	bad2 := New("g1!=1", func(x uint64) float64 {
		if x == 0 {
			return 0
		}
		return 2
	})
	if Validate(bad2, 100) == nil {
		t.Error("expected g(1)=1 violation")
	}
	bad3 := New("negative", func(x uint64) float64 {
		switch {
		case x == 0:
			return 0
		case x == 1:
			return 1
		default:
			return -1
		}
	})
	if Validate(bad3, 100) == nil {
		t.Error("expected positivity violation")
	}
}

func TestShiftedKeepsClassG(t *testing.T) {
	g := Shifted(SinSqrtX2(), 1000)
	if err := Validate(g, 1<<12); err != nil {
		t.Error(err)
	}
}

func TestPredictableWitnessRecorded(t *testing.T) {
	cfg := DefaultCheckConfig()
	r := CheckPredictable(SinSqrtX2(), cfg)
	if r.Holds {
		t.Fatal("(2+sin sqrt x)x² must fail predictability")
	}
	if r.Witness == nil {
		t.Fatal("failing check must carry a witness")
	}
	// The witness must actually violate Definition 8 at γ: g(y) far below
	// x^{-γ} g(x) while g(x+y) is ε-far from g(x).
	w := r.Witness
	g := SinSqrtX2()
	if w.GY >= math.Pow(float64(w.X), -cfg.Gamma)*w.GX {
		t.Errorf("witness does not violate the growth condition: %s", w)
	}
	eps := cfg.Eps(w.X)
	if math.Abs(g.Eval(w.X+w.Y)-w.GX) <= eps*w.GX {
		t.Errorf("witness pair is ε-stable, not a violation: %s", w)
	}
}

func TestSlowDroppingWitnessRecorded(t *testing.T) {
	r := CheckSlowDropping(Reciprocal(), DefaultCheckConfig())
	if r.Holds || r.Witness == nil {
		t.Fatal("1/x must fail slow-dropping with a witness")
	}
	if r.Witness.GX <= r.Witness.GY {
		t.Errorf("drop witness must have g(x) > g(y): %s", r.Witness)
	}
}
