package gfunc

import "math"

// This file implements Appendix D.5: the extended metric
//
//	Θ(g, h) = sup_x | log g(x) - log h(x) |
//
// on the class G, under which 2-pass tractable S-normal functions are
// *stable* (Proposition 63: slow-jumping and slow-dropping transfer to any
// h at finite Θ-distance) while S-nearly periodic functions are *unstable*
// (Theorem 64: within any δ > 0 there is a 1-pass intractable function).

// Theta computes the metric restricted to [1, m] on the standard grid
// (the true metric is a sup over all of N; on the grid it is a lower
// bound, which is the direction the instability theorem needs).
func Theta(g, h Func, m uint64) float64 {
	sup := 0.0
	for _, x := range Grid(m, 1024) {
		d := math.Abs(LogEval(g, x) - LogEval(h, x))
		if d > sup {
			sup = d
		}
	}
	return sup
}

// Overlay is a function equal to base except at finitely many points,
// the shape of Theorem 64's perturbation. It implements Func.
type Overlay struct {
	name string
	base Func
	over map[uint64]float64
}

// NewOverlay builds an overlay. The override values must keep the class-G
// constraints (positive; index 0 and 1 may not be overridden).
func NewOverlay(name string, base Func, over map[uint64]float64) *Overlay {
	for x, v := range over {
		if x <= 1 {
			panic("gfunc: overlay may not override g(0) or g(1)")
		}
		if !(v > 0) {
			panic("gfunc: overlay values must be positive")
		}
	}
	cp := make(map[uint64]float64, len(over))
	for k, v := range over {
		cp[k] = v
	}
	return &Overlay{name: name, base: base, over: cp}
}

// Name implements Func.
func (o *Overlay) Name() string { return o.name }

// Eval implements Func.
func (o *Overlay) Eval(x uint64) float64 {
	if v, ok := o.over[x]; ok {
		return v
	}
	return o.base.Eval(x)
}

// LogEval implements LogEvaler, delegating to the base's log-space
// evaluator away from the overridden points (keeping Θ(g, overlay(g)) an
// exact zero off the overrides).
func (o *Overlay) LogEval(x uint64) float64 {
	if v, ok := o.over[x]; ok {
		return math.Log(v)
	}
	return LogEval(o.base, x)
}

// Overrides returns the number of overridden points.
func (o *Overlay) Overrides() int { return len(o.over) }

// PerturbNearlyPeriodic implements the Theorem 64 construction: given a
// (nearly periodic) g and δ > 0, build h with Θ(g, h) <= δ by bumping g
// at its drop witnesses x_k by (1+δ) and depressing g at x_k + y_k by
// 1/(1+δ). The bumps break the near-repetition |g(x_k) - g(x_k + y_k)|
// while preserving the drops, so h is neither slow-dropping nor nearly
// periodic: 1-pass intractable by Lemma 23.
//
// Witnesses are harvested from the slow-dropping checker over [1, cfg.M]:
// for each α-period y (drop exponent above half the top exponent), the
// pair (x, y) with maximal g(x)/g(y) is perturbed at x and x + y.
func PerturbNearlyPeriodic(g Func, delta float64, cfg CheckConfig) Func {
	if delta <= 0 {
		panic("gfunc: delta must be positive")
	}
	drop := CheckSlowDropping(g, cfg)
	over := make(map[uint64]float64)
	if drop.Holds {
		// Nothing to perturb against: g is slow-dropping, return g + noise
		// at nothing (the theorem only concerns nearly periodic g).
		return NewOverlay(g.Name()+"~", g, over)
	}
	alpha0 := drop.TopExponent / 2
	grid := Grid(cfg.M, cfg.Dense)
	prefixMaxLog := math.Inf(-1)
	for i, y := range grid {
		ly := LogEval(g, y)
		isPeriod := y > 1 && prefixMaxLog-ly >= alpha0*math.Log(float64(y))
		if ly > prefixMaxLog {
			prefixMaxLog = ly
		}
		if !isPeriod {
			continue
		}
		// Choose the largest admissible x < y on the grid (g(x) large
		// relative to the period value, not yet perturbed), then break
		// the near-repetition at (x, x+y).
		bound := ly + alpha0*math.Log(float64(y))
		for j := i - 1; j >= 0; j-- {
			x := grid[j]
			if x <= 1 {
				break
			}
			if LogEval(g, x) < bound {
				continue
			}
			if _, ok := over[x]; ok {
				continue
			}
			if _, ok := over[x+y]; ok {
				continue
			}
			over[x] = g.Eval(x) * (1 + delta)
			over[x+y] = g.Eval(x+y) / (1 + delta)
			break
		}
	}
	return NewOverlay(g.Name()+"~δ", g, over)
}
