package gfunc

import "math"

// CheckNearlyPeriodic tests Definition 9. A function g is S-nearly periodic
// iff
//
//  1. it is not slow-dropping: some α > 0 admits arbitrarily large
//     "α-periods" y with g(y) <= g(x)/y^α for some x < y; and
//  2. at every large α-period y, for every x < y with g(x) >= y^α g(y),
//     the function nearly repeats: |g(x+y) - g(x)| <=
//     min(g(x), g(x+y)) · h(y) for every sub-polynomial error h, i.e. the
//     relative change at offset y tends to zero.
//
// The checker reuses the slow-dropping violation structure to locate
// periods, then measures the worst relative change R(y) over admissible x
// at each period, applying the same two-scale trend test: nearly periodic
// iff the drop persists but R decays.
func CheckNearlyPeriodic(g Func, cfg CheckConfig) Report {
	drop := CheckSlowDropping(g, cfg)
	if drop.Holds {
		// Slow-dropping functions cannot satisfy condition 1.
		return Report{Holds: false, Witness: drop.Witness}
	}
	// α0: half the persistent drop exponent, the α whose periods we chase.
	alpha0 := drop.TopExponent / 2
	if alpha0 <= 0 {
		return Report{Holds: false}
	}

	grid := Grid(cfg.M, cfg.Dense)
	midLo, midHi, topLo, topHi := cfg.windows()

	var (
		prefixMaxLog = math.Inf(-1)
		mid, top     float64
		midSeen      bool
		topSeen      bool
		wit          *Witness
	)
	for _, y := range grid {
		ly := LogEval(g, y)
		isPeriod := y > 1 && prefixMaxLog-ly >= alpha0*math.Log(float64(y))
		if ly > prefixMaxLog {
			prefixMaxLog = ly
		}
		if !isPeriod {
			continue
		}
		inMid := y >= midLo && y <= midHi
		inTop := y >= topLo && y <= topHi
		if !inMid && !inTop {
			continue
		}
		gy := g.Eval(y)
		bound := gy * math.Pow(float64(y), alpha0)
		r := 0.0
		var rx uint64
		for _, x := range grid {
			if x >= y {
				break
			}
			gx := g.Eval(x)
			if gx < bound {
				continue // condition 2 only constrains x with g(x) >= y^α g(y)
			}
			gxy := g.Eval(x + y)
			den := math.Min(gx, gxy)
			if den <= 0 {
				r = math.Inf(1)
				rx = x
				break
			}
			if c := math.Abs(gxy-gx) / den; c > r {
				r = c
				rx = x
			}
		}
		if inMid {
			midSeen = true
			if r > mid {
				mid = r
			}
		}
		if inTop {
			topSeen = true
			if r > top {
				top = r
				wit = &Witness{X: rx, Y: y, GX: g.Eval(rx), GY: gy, Exponent: r}
			}
		}
	}
	if !midSeen || !topSeen {
		// Drops exist but no periods land in the windows: treat as normal;
		// the grid covers every scale, so genuinely nearly periodic
		// functions (whose periods are unboundedly frequent) always land.
		return Report{Holds: false, MidExponent: mid, TopExponent: top, Witness: wit}
	}
	// Nearly periodic iff the near-repetition error decays (or vanishes).
	nearRepeats := top <= 1e-9 || top < cfg.DecayFactor*mid
	return Report{
		Holds:       nearRepeats,
		MidExponent: mid, TopExponent: top,
		Witness: wit,
	}
}
