package gfunc

import (
	"fmt"
	"math"
)

// This file implements Appendix A: the case g(0) ≠ 0. The paper
// normalizes such functions into
//
//	G0 = { g : Z → R+, g(x) = g(-x) > 0, g(0) = 1 }
//
// after first disposing of sign-crossing and zero-hitting functions:
//
//   - Lemma 34 / Proposition 36: if g takes both positive and negative
//     values (and is non-linear), g-SUM needs Ω(n) space;
//   - Proposition 37/38: if g(x) = 0 for some x > 0, then g is tractable
//     only if it is periodic (with period dividing 2x).
//
// For genuinely positive g with g(0) = 1, the zero-one law carries over
// (Theorems 39-41) with the same three properties applied to the
// restriction, and a redefined near-periodicity (Definition 33) whose
// second condition compares g(x) against g(x - 2y) — the INDEX reduction
// in the turnstile model sends -n copies of the absent elements, landing
// at x - 2y rather than x + y.

// SignVerdict classifies a symmetric function with g(0) ≠ 0 before the
// zero-one law applies.
type SignVerdict int

const (
	// SignPositive: g > 0 everywhere checked; the G0 zero-one law applies.
	SignPositive SignVerdict = iota
	// SignCrossing: g takes both signs; Ω(n) space (Lemma 34 / Prop 36).
	SignCrossing
	// SignZeroPeriodic: g hits 0 and is periodic; g-SUM reduces to
	// counting residues mod the period (tractable special case).
	SignZeroPeriodic
	// SignZeroAperiodic: g hits 0 and is not periodic; not 1-pass
	// tractable (Prop 37/38).
	SignZeroAperiodic
)

// String renders the verdict.
func (v SignVerdict) String() string {
	switch v {
	case SignPositive:
		return "positive (zero-one law applies)"
	case SignCrossing:
		return "sign-crossing (Ω(n), Lemma 34/Prop 36)"
	case SignZeroPeriodic:
		return "zero + periodic (tractable special case)"
	case SignZeroAperiodic:
		return "zero + aperiodic (intractable, Prop 37/38)"
	default:
		return fmt.Sprintf("SignVerdict(%d)", int(v))
	}
}

// SignReport is the outcome of AnalyzeSigns.
type SignReport struct {
	Verdict SignVerdict
	// NegativeAt is the first witness g(x) < 0, if any.
	NegativeAt uint64
	// ZeroAt is the first witness g(x) = 0 with x > 0, if any.
	ZeroAt uint64
	// Period is the detected period when Verdict == SignZeroPeriodic.
	Period uint64
}

// AnalyzeSigns implements the Lemma 34 - Proposition 38 gate for a
// symmetric function given by its values on Z≥0 (the symmetric extension
// g(-x) = g(x) is implicit). The scan covers [0, m].
func AnalyzeSigns(g func(uint64) float64, m uint64) SignReport {
	var zeroAt uint64
	for x := uint64(0); x <= m; x++ {
		v := g(x)
		if v < 0 {
			return SignReport{Verdict: SignCrossing, NegativeAt: x}
		}
		if v == 0 && x > 0 && zeroAt == 0 {
			zeroAt = x
		}
	}
	if zeroAt == 0 {
		return SignReport{Verdict: SignPositive}
	}
	// Proposition 38: tractability forces periodicity with period
	// min{x > 0 : g(x) = 0} (g(0) = 0 case) or dividing 2·zeroAt. Detect
	// the smallest period p <= 2*zeroAt with g(x+p) = g(x) on the range.
	for p := uint64(1); p <= 2*zeroAt && p <= m; p++ {
		periodic := true
		for x := uint64(0); x+p <= m; x++ {
			if math.Abs(g(x+p)-g(x)) > 1e-12 {
				periodic = false
				break
			}
		}
		if periodic {
			return SignReport{Verdict: SignZeroPeriodic, ZeroAt: zeroAt, Period: p}
		}
	}
	return SignReport{Verdict: SignZeroAperiodic, ZeroAt: zeroAt}
}

// G0Func is a symmetric positive function with g(0) = 1 (the class G0).
type G0Func struct {
	name string
	eval func(uint64) float64
}

// NewG0 wraps eval (defined on Z≥0; symmetric extension implicit) as a
// G0 function. It panics if g(0) != 1 — normalize by dividing by g(0).
func NewG0(name string, eval func(uint64) float64) G0Func {
	if v := eval(0); math.Abs(v-1) > 1e-9 {
		panic(fmt.Sprintf("gfunc: G0 function %q has g(0) = %v, want 1", name, v))
	}
	return G0Func{name: name, eval: eval}
}

// NormalizeG0 rescales an arbitrary positive symmetric function into G0.
func NormalizeG0(name string, f func(uint64) float64) G0Func {
	f0 := f(0)
	if !(f0 > 0) {
		panic(fmt.Sprintf("gfunc: cannot G0-normalize %q, f(0) = %v", name, f0))
	}
	return G0Func{name: name, eval: func(x uint64) float64 { return f(x) / f0 }}
}

// Name returns the identifier.
func (g G0Func) Name() string { return g.name }

// Eval returns g(x).
func (g G0Func) Eval(x uint64) float64 { return g.eval(x) }

// Restriction returns the class-G function h with h(0) = 0 and
// h(x) = g(x)/g(1) for x >= 1: the positive part that the standard
// zero-one-law machinery (and the sketching algorithms) operate on. The
// full sum is recovered affinely:
//
//	Σ_{i∈[n]} g(|v_i|) = (n - F0) · g(0) + g(1) · Σ_{v_i≠0} h(|v_i|),
//
// which core.NewOffsetEstimator implements with an L0 sketch for F0.
func (g G0Func) Restriction() Func {
	return Normalize(g.name+"|x>0", func(x uint64) float64 {
		return g.eval(x)
	})
}

// ClassificationG0 is the Appendix A analogue of Classification.
type ClassificationG0 struct {
	Name string
	Sign SignReport
	// Restricted is the zero-one-law classification of the restriction;
	// only meaningful when Sign.Verdict == SignPositive.
	Restricted Classification
	// NearlyPeriodicG0 is the Definition 33 near-periodicity check (the
	// x - 2y variant).
	NearlyPeriodicG0 Report
	OnePass          Tractability
	TwoPass          Tractability
}

// ClassifyG0 runs the Appendix A pipeline: the sign/zero gate first, then
// the three-property classification of the restriction with the
// Definition 33 near-periodicity variant.
func ClassifyG0(g G0Func, cfg CheckConfig) ClassificationG0 {
	out := ClassificationG0{Name: g.Name()}
	out.Sign = AnalyzeSigns(g.eval, minU64(cfg.M, 1<<14))
	switch out.Sign.Verdict {
	case SignCrossing, SignZeroAperiodic:
		out.OnePass, out.TwoPass = Intractable, Intractable
		return out
	case SignZeroPeriodic:
		// Counting residue classes mod the period is a bounded g-SUM:
		// tractable (store one counter per residue is not streaming-safe,
		// but g bounded and periodic means Σ g(v_i) is a fixed linear
		// combination of frequency-residue counts, sketchable as in D.1).
		out.OnePass, out.TwoPass = Tractable, Tractable
		return out
	}
	out.Restricted = Classify(g.Restriction(), cfg)
	out.NearlyPeriodicG0 = CheckNearlyPeriodicG0(g, cfg)
	if out.NearlyPeriodicG0.Holds {
		out.OnePass, out.TwoPass = OpenNearlyPeriodic, OpenNearlyPeriodic
		return out
	}
	out.OnePass = out.Restricted.OnePass
	out.TwoPass = out.Restricted.TwoPass
	return out
}

// CheckNearlyPeriodicG0 tests Definition 33: like Definition 9, but the
// second condition constrains |g(x) - g(x - 2y)| at α-periods y for
// x < y... with the turnstile INDEX reduction landing at x - 2y. Since
// x < y makes x - 2y negative, symmetry gives |x - 2y| = 2y - x, which is
// what the checker evaluates.
func CheckNearlyPeriodicG0(g G0Func, cfg CheckConfig) Report {
	h := g.Restriction()
	drop := CheckSlowDropping(h, cfg)
	if drop.Holds {
		return Report{Holds: false, Witness: drop.Witness}
	}
	alpha0 := drop.TopExponent / 2
	if alpha0 <= 0 {
		return Report{Holds: false}
	}
	grid := Grid(cfg.M, cfg.Dense)
	midLo, midHi, topLo, topHi := cfg.windows()
	var (
		prefixMaxLog = math.Inf(-1)
		mid, top     float64
		midSeen      bool
		topSeen      bool
		wit          *Witness
	)
	for _, y := range grid {
		ly := LogEval(h, y)
		isPeriod := y > 1 && prefixMaxLog-ly >= alpha0*math.Log(float64(y))
		if ly > prefixMaxLog {
			prefixMaxLog = ly
		}
		if !isPeriod {
			continue
		}
		inMid := y >= midLo && y <= midHi
		inTop := y >= topLo && y <= topHi
		if !inMid && !inTop {
			continue
		}
		gy := h.Eval(y)
		bound := gy * math.Pow(float64(y), alpha0)
		r := 0.0
		var rx uint64
		for _, x := range grid {
			if x >= y {
				break
			}
			gx := g.Eval(x)
			if gx < bound {
				continue
			}
			gxm := g.Eval(2*y - x) // |x - 2y| by symmetry
			den := math.Min(gx, gxm)
			if den <= 0 {
				r = math.Inf(1)
				rx = x
				break
			}
			if c := math.Abs(gxm-gx) / den; c > r {
				r = c
				rx = x
			}
		}
		if inMid {
			midSeen = true
			if r > mid {
				mid = r
			}
		}
		if inTop {
			topSeen = true
			if r > top {
				top = r
				wit = &Witness{X: rx, Y: y, GX: g.Eval(rx), GY: gy, Exponent: r}
			}
		}
	}
	if !midSeen || !topSeen {
		return Report{Holds: false, MidExponent: mid, TopExponent: top, Witness: wit}
	}
	nearRepeats := top <= 1e-9 || top < cfg.DecayFactor*mid
	return Report{Holds: nearRepeats, MidExponent: mid, TopExponent: top, Witness: wit}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
