package recursive

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/stream"
	"repro/internal/util"
)

// lightStream keeps the distinct-item count below the per-level
// candidate trackers' capacity so serial and merged estimates agree
// exactly.
func lightStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.2)
}

func newWireSketch(seed uint64) *Sketch {
	g := gfunc.F2Func()
	h := gfunc.MeasureEnvelope(g, 1<<10).H()
	rng := util.NewSplitMix64(seed)
	return New(Config{N: 1 << 12, MakeSketcher: makeOnePassFactory(g, h, rng.Fork())}, rng.Fork())
}

func TestRecursiveWireMergeEqualsSerial(t *testing.T) {
	s := lightStream(13)
	updates := s.Updates()
	n := len(updates)

	serial := newWireSketch(5)
	for _, u := range updates {
		serial.Update(u.Item, u.Delta)
	}

	shard1, shard2, coord := newWireSketch(5), newWireSketch(5), newWireSketch(5)
	for _, u := range updates[:n/2] {
		shard1.Update(u.Item, u.Delta)
	}
	for _, u := range updates[n/2:] {
		shard2.Update(u.Item, u.Delta)
	}
	for _, sh := range []*Sketch{shard1, shard2} {
		data, err := sh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}

	want, got := serial.Estimate(), coord.Estimate()
	if want != got {
		t.Errorf("wire-merged estimate %.17g != serial %.17g", got, want)
	}
	if want <= 0 {
		t.Errorf("estimate %.17g not positive; workload degenerate", want)
	}
}

func TestRecursiveUnmarshalRejectsWrongSeed(t *testing.T) {
	a := newWireSketch(5)
	b := newWireSketch(6)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBinary(data); err == nil {
		t.Error("expected fingerprint mismatch decoding onto a different seed")
	}
	for _, cut := range []int{0, 5, 13, 20} {
		if cut < len(data) {
			if err := a.UnmarshalBinary(data[:cut]); err == nil {
				t.Errorf("expected error on payload truncated to %d bytes", cut)
			}
		}
	}
}

func newWireTwoPass(seed uint64) *TwoPass {
	g := gfunc.X2Log()
	h := gfunc.MeasureEnvelope(g, 1<<10).H()
	rng := util.NewSplitMix64(seed)
	return NewTwoPass(TwoPassConfig{
		N: 1 << 12,
		MakeSketcher: func(level int) heavy.TwoPassSketcher {
			return heavy.NewTwoPass(heavy.TwoPassConfig{
				G: g, Lambda: 0.05, Delta: 0.1, H: h,
			}, rng.Fork())
		},
	}, rng.Fork())
}

func TestRecursiveTwoPassWireProtocolEqualsSerial(t *testing.T) {
	s := lightStream(17)
	updates := s.Updates()
	n := len(updates)

	serial := newWireTwoPass(23)
	for _, u := range updates {
		serial.Pass1(u.Item, u.Delta)
	}
	serial.FinishPass1()
	for _, u := range updates {
		serial.Pass2(u.Item, u.Delta)
	}
	want := serial.Estimate()

	w1, w2, coord := newWireTwoPass(23), newWireTwoPass(23), newWireTwoPass(23)
	for _, u := range updates[:n/2] {
		w1.Pass1(u.Item, u.Delta)
	}
	for _, u := range updates[n/2:] {
		w2.Pass1(u.Item, u.Delta)
	}
	for _, w := range []*TwoPass{w1, w2} {
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}
	coord.FinishPass1()
	cands, err := coord.MarshalCandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*TwoPass{w1, w2} {
		if err := w.UnmarshalCandidates(cands); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range updates[:n/2] {
		w1.Pass2(u.Item, u.Delta)
	}
	for _, u := range updates[n/2:] {
		w2.Pass2(u.Item, u.Delta)
	}
	for _, w := range []*TwoPass{w1, w2} {
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}

	if got := coord.Estimate(); got != want {
		t.Errorf("wire two-pass estimate %.17g != serial %.17g", got, want)
	}
}
