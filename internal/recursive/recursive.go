package recursive

import (
	"repro/internal/heavy"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/xhash"
)

// Config parameterizes the recursive sketch.
type Config struct {
	// N is the domain size; the number of levels defaults to log2(N).
	N uint64
	// Levels overrides the level count (0 means log2 N, capped at 30).
	Levels int
	// MakeSketcher builds the per-level heavy-hitter algorithm. Level 0
	// sees the full stream; deeper levels see subsampled streams.
	MakeSketcher func(level int) heavy.Sketcher
}

// Sketch is a one-pass recursive g-SUM sketch.
type Sketch struct {
	levels  []heavy.Sketcher
	sub     []*xhash.Bernoulli // sub[k] gates membership of U_{k+1} within U_k
	scratch [][]stream.Update  // reusable UpdateBatch survivor buffers
}

// New returns a fresh recursive sketch.
func New(cfg Config, rng *util.SplitMix64) *Sketch {
	if cfg.N == 0 {
		panic("recursive: domain must be positive")
	}
	if cfg.MakeSketcher == nil {
		panic("recursive: MakeSketcher is required")
	}
	levels := cfg.Levels
	if levels == 0 {
		levels = util.Log2Ceil(cfg.N)
	}
	if levels > 30 {
		levels = 30
	}
	if levels < 1 {
		levels = 1
	}
	s := &Sketch{
		levels: make([]heavy.Sketcher, levels+1),
		sub:    make([]*xhash.Bernoulli, levels),
	}
	for k := 0; k <= levels; k++ {
		s.levels[k] = cfg.MakeSketcher(k)
	}
	for k := 0; k < levels; k++ {
		s.sub[k] = xhash.NewBernoulli(2, 1, 2, rng.Fork())
	}
	return s
}

// Update feeds one turnstile update to every level whose sub-universe
// contains the item. Expected work is O(1) level updates (geometric
// survival), plus level 0 which always fires.
func (s *Sketch) Update(item uint64, delta int64) {
	s.levels[0].Update(item, delta)
	for k := 0; k < len(s.sub); k++ {
		if !s.sub[k].Hash(item) {
			return
		}
		s.levels[k+1].Update(item, delta)
	}
}

// member reports whether item belongs to sub-universe U_k.
func (s *Sketch) member(item uint64, k int) bool {
	for j := 0; j < k; j++ {
		if !s.sub[j].Hash(item) {
			return false
		}
	}
	return true
}

// Estimate assembles the bottom-up estimator from the per-level covers.
// It finalizes the level sketchers, so it must be called once, after the
// stream has been fully consumed.
func (s *Sketch) Estimate() float64 {
	l := len(s.levels) - 1
	covers := make([]heavy.Cover, l+1)
	for k := 0; k <= l; k++ {
		covers[k] = s.levels[k].Cover()
	}
	return CombineCovers(covers, func(level int, item uint64) bool {
		return s.sub[level].Hash(item)
	})
}

// CombineCovers assembles the bottom-up Braverman-Ostrovsky estimator from
// per-level covers. survives(k, item) must report whether item belongs to
// sub-universe U_{k+1} (i.e. passed the level-k subsampling hash). It is
// exported so that multi-pass and universal estimators can reuse the
// combine step with their own cover extraction.
func CombineCovers(covers []heavy.Cover, survives func(level int, item uint64) bool) float64 {
	l := len(covers) - 1
	est := covers[l].WeightSum()
	for k := l - 1; k >= 0; k-- {
		var heavySum, survivorSum float64
		for _, e := range covers[k] {
			heavySum += e.Weight
			if survives(k, e.Item) {
				survivorSum += e.Weight
			}
		}
		est = heavySum + 2*(est-survivorSum)
		if est < heavySum {
			// The doubled remainder went negative (sampling noise on a
			// nearly exhausted tail); clamp to the certain heavy mass.
			est = heavySum
		}
	}
	return est
}

// SpaceBytes reports the total counter storage across levels.
func (s *Sketch) SpaceBytes() int {
	total := 0
	for _, lv := range s.levels {
		total += lv.SpaceBytes()
	}
	return total
}

// Levels returns the number of subsampling levels (excluding level 0).
func (s *Sketch) Levels() int { return len(s.sub) }
