package recursive

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/stream"
	"repro/internal/util"
)

func makeOnePassFactory(g gfunc.Func, h float64, rng *util.SplitMix64) func(int) heavy.Sketcher {
	return func(level int) heavy.Sketcher {
		return heavy.NewOnePass(heavy.OnePassConfig{
			G: g, Lambda: 0.05, Eps: 0.25, Delta: 0.1, H: h,
		}, rng.Fork())
	}
}

func TestRecursiveSketchEstimatesGSum(t *testing.T) {
	g := gfunc.F2Func()
	h := gfunc.MeasureEnvelope(g, 1<<10).H()
	for seed := uint64(1); seed <= 5; seed++ {
		s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 300, 1.1)
		rng := util.NewSplitMix64(seed * 11)
		sk := New(Config{N: s.N(), MakeSketcher: makeOnePassFactory(g, h, rng.Fork())}, rng.Fork())
		s.Each(func(u stream.Update) { sk.Update(u.Item, u.Delta) })
		truth := s.Vector().Sum(g.Eval)
		if err := util.RelErr(sk.Estimate(), truth); err > 0.3 {
			t.Errorf("seed %d: relative error %.3f > 0.3", seed, err)
		}
	}
}

func TestRecursiveLevelsDefault(t *testing.T) {
	rng := util.NewSplitMix64(1)
	sk := New(Config{N: 1 << 10, MakeSketcher: makeOnePassFactory(gfunc.F1Func(), 1, rng.Fork())}, rng.Fork())
	if sk.Levels() != 10 {
		t.Errorf("levels = %d, want 10", sk.Levels())
	}
}

func TestCombineCoversSingleLevel(t *testing.T) {
	// One level, everything in the cover: the estimate is the exact sum.
	covers := []heavy.Cover{{{Item: 1, Weight: 5}, {Item: 2, Weight: 7}}}
	got := CombineCovers(covers, func(int, uint64) bool { panic("no levels") })
	if got != 12 {
		t.Errorf("single-level combine = %v, want 12", got)
	}
}

func TestCombineCoversDoubling(t *testing.T) {
	// Two levels: level 0 sees {a}, level 1 sees {b} where b survived
	// subsampling but a did not. Estimate = w_a + 2*(w_b - 0).
	covers := []heavy.Cover{
		{{Item: 1, Weight: 10}},
		{{Item: 2, Weight: 3}},
	}
	got := CombineCovers(covers, func(level int, item uint64) bool {
		return item == 2 // only item 2 survives into U_1
	})
	if got != 16 {
		t.Errorf("combine = %v, want 10 + 2*3 = 16", got)
	}
}

func TestCombineCoversSubtractsSurvivors(t *testing.T) {
	// Item 1 is heavy at level 0 AND survives to level 1, where it is
	// also in the cover; its weight must not be double counted.
	covers := []heavy.Cover{
		{{Item: 1, Weight: 10}},
		{{Item: 1, Weight: 10}},
	}
	got := CombineCovers(covers, func(level int, item uint64) bool { return true })
	if got != 10 {
		t.Errorf("combine = %v, want 10 (no double counting)", got)
	}
}

func TestCombineCoversClampsNegativeRemainder(t *testing.T) {
	// Deep estimate smaller than the survivor mass: the remainder term
	// would push below the certain heavy mass; it must clamp.
	covers := []heavy.Cover{
		{{Item: 1, Weight: 10}, {Item: 2, Weight: 4}},
		{}, // deeper level found nothing
	}
	got := CombineCovers(covers, func(level int, item uint64) bool { return item == 1 })
	// heavySum = 14, survivorSum = 10, est1 = 0 -> 14 + 2*(0-10) < 14 -> clamp
	if got != 14 {
		t.Errorf("combine = %v, want clamp at 14", got)
	}
}

func TestTwoPassRecursiveMatchesExact(t *testing.T) {
	g := gfunc.SinSqrtX2()
	h := gfunc.MeasureEnvelope(g, 1<<10).H()
	for seed := uint64(1); seed <= 3; seed++ {
		s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 300, 1.1)
		rng := util.NewSplitMix64(seed * 17)
		hhRng := rng.Fork()
		sk := NewTwoPass(TwoPassConfig{
			N: s.N(),
			MakeSketcher: func(level int) heavy.TwoPassSketcher {
				return heavy.NewTwoPass(heavy.TwoPassConfig{
					G: g, Lambda: 0.05, Delta: 0.1, H: h,
				}, hhRng.Fork())
			},
		}, rng.Fork())
		s.Each(func(u stream.Update) { sk.Pass1(u.Item, u.Delta) })
		sk.FinishPass1()
		s.Each(func(u stream.Update) { sk.Pass2(u.Item, u.Delta) })
		truth := s.Vector().Sum(g.Eval)
		if err := util.RelErr(sk.Estimate(), truth); err > 0.3 {
			t.Errorf("seed %d: 2-pass relative error %.3f > 0.3", seed, err)
		}
	}
}

func TestSpaceBytesAggregates(t *testing.T) {
	rng := util.NewSplitMix64(9)
	sk := New(Config{N: 1 << 8, MakeSketcher: makeOnePassFactory(gfunc.F1Func(), 1, rng.Fork())}, rng.Fork())
	if sk.SpaceBytes() <= 0 {
		t.Error("SpaceBytes must be positive")
	}
}
