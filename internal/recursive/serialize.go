package recursive

import (
	"encoding"
	"fmt"

	"repro/internal/wire"
	"repro/internal/xhash"
)

// Wire formats for the recursive sketch (header per internal/wire). A
// serialized recursive sketch is the level count followed by one
// length-framed blob per level — each level's own wire payload, carrying
// its own magic and fingerprint — so corruption at any depth is caught
// by the layer that owns the bytes. The header fingerprint digests the
// subsampling hashes (the sampled-substream metadata): two sketches
// built from the same Config and seed agree on which items survive to
// which level, which is exactly the contract merging requires.

const (
	sketchMagic       uint32 = 0x67535552 // "gSUR"
	twoPassMagic      uint32 = 0x67535554 // "gSUT"
	twoPassCandsMagic uint32 = 0x67535556 // "gSUV"
)

// subFingerprint digests the subsampling Bernoulli hashes.
func subFingerprint(sub []*xhash.Bernoulli) uint64 {
	h := wire.Fingerprint(0, uint64(len(sub)))
	for _, b := range sub {
		h = b.Fingerprint(h)
	}
	return h
}

// fingerprinter is implemented by level sketchers whose configuration
// can be digested (heavy.OnePass and heavy.TwoPass are).
type fingerprinter interface {
	Fingerprint() uint64
}

// levelsFingerprint folds every level's own fingerprint into h, so a
// configuration difference at ANY level is caught by the outer header
// before any counter is touched.
func levelsFingerprint[S any](h uint64, levels []S) uint64 {
	h = wire.Fingerprint(h, uint64(len(levels)))
	for _, lv := range levels {
		if fp, ok := any(lv).(fingerprinter); ok {
			h = wire.Fingerprint(h, fp.Fingerprint())
		}
	}
	return h
}

// Fingerprint digests the level count, the subsampling hashes, and
// every level sketcher's configuration.
func (s *Sketch) Fingerprint() uint64 {
	return levelsFingerprint(subFingerprint(s.sub), s.levels)
}

// MarshalBinary serializes every level's sketch state. All level
// sketchers must implement encoding.BinaryMarshaler (heavy.OnePass
// does).
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(sketchMagic, s.Fingerprint())
	w.U32(uint32(len(s.levels)))
	for k, lv := range s.levels {
		m, ok := lv.(encoding.BinaryMarshaler)
		if !ok {
			return nil, fmt.Errorf("recursive: level %d sketcher %T does not support serialization", k, lv)
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("recursive: level %d: %w", k, err)
		}
		w.Blob(blob)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary adds serialized shard state into s, level by level
// (merge semantics, as Merge). The receiver must have been built with
// identical Config and seed; the header fingerprint verifies the
// subsampling hashes AND every level's configuration, and the payload
// framing is validated in full, before any counter is touched.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(sketchMagic, s.Fingerprint()); err != nil {
		return fmt.Errorf("recursive: %w", err)
	}
	blobs, err := r.Blobs(len(s.levels))
	if err != nil {
		return fmt.Errorf("recursive: %w", err)
	}
	for k := range s.levels {
		u, ok := s.levels[k].(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("recursive: level %d sketcher %T does not support serialization", k, s.levels[k])
		}
		if err := u.UnmarshalBinary(blobs[k]); err != nil {
			return fmt.Errorf("recursive: level %d: %w", k, err)
		}
	}
	return nil
}

// Fingerprint digests the two-pass sketch's level count, subsampling
// hashes, and every level sketcher's configuration.
func (s *TwoPass) Fingerprint() uint64 {
	return levelsFingerprint(subFingerprint(s.sub), s.levels)
}

// MarshalBinary serializes every level's two-pass state (first-pass
// counters, candidates, tabulations). All level sketchers must
// implement encoding.BinaryMarshaler (heavy.TwoPass does).
func (s *TwoPass) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(twoPassMagic, s.Fingerprint())
	w.U32(uint32(len(s.levels)))
	for k, lv := range s.levels {
		m, ok := lv.(encoding.BinaryMarshaler)
		if !ok {
			return nil, fmt.Errorf("recursive: level %d sketcher %T does not support serialization", k, lv)
		}
		blob, err := m.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("recursive: level %d: %w", k, err)
		}
		w.Blob(blob)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary adds serialized two-pass shard state into s, level by
// level (merge semantics; see heavy.TwoPass.UnmarshalBinary for the
// candidate-set rules). Framing and configuration are validated in full
// before any level is mutated.
func (s *TwoPass) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(twoPassMagic, s.Fingerprint()); err != nil {
		return fmt.Errorf("recursive: %w", err)
	}
	blobs, err := r.Blobs(len(s.levels))
	if err != nil {
		return fmt.Errorf("recursive: %w", err)
	}
	for k := range s.levels {
		u, ok := s.levels[k].(encoding.BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("recursive: level %d sketcher %T does not support serialization", k, s.levels[k])
		}
		if err := u.UnmarshalBinary(blobs[k]); err != nil {
			return fmt.Errorf("recursive: level %d: %w", k, err)
		}
	}
	return nil
}

// candidateCodec is the candidate-set half of the distributed two-pass
// protocol (heavy.TwoPass implements it).
type candidateCodec interface {
	MarshalCandidates() ([]byte, error)
	UnmarshalCandidates([]byte) error
}

// MarshalCandidates serializes the per-level candidate sets extracted by
// FinishPass1 — the coordinator -> worker half of the distributed
// two-pass protocol (AdoptCandidates over the wire).
func (s *TwoPass) MarshalCandidates() ([]byte, error) {
	var w wire.Writer
	w.Header(twoPassCandsMagic, s.Fingerprint())
	w.U32(uint32(len(s.levels)))
	for k, lv := range s.levels {
		c, ok := lv.(candidateCodec)
		if !ok {
			return nil, fmt.Errorf("recursive: level %d sketcher %T does not support candidate exchange", k, lv)
		}
		blob, err := c.MarshalCandidates()
		if err != nil {
			return nil, fmt.Errorf("recursive: level %d: %w", k, err)
		}
		w.Blob(blob)
	}
	return w.Bytes(), nil
}

// UnmarshalCandidates adopts serialized per-level candidate sets,
// resetting every level's tabulations to zero. Framing is validated in
// full before any level is mutated.
func (s *TwoPass) UnmarshalCandidates(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(twoPassCandsMagic, s.Fingerprint()); err != nil {
		return fmt.Errorf("recursive: candidates: %w", err)
	}
	blobs, err := r.Blobs(len(s.levels))
	if err != nil {
		return fmt.Errorf("recursive: %w", err)
	}
	for k := range s.levels {
		c, ok := s.levels[k].(candidateCodec)
		if !ok {
			return fmt.Errorf("recursive: level %d sketcher %T does not support candidate exchange", k, s.levels[k])
		}
		if err := c.UnmarshalCandidates(blobs[k]); err != nil {
			return fmt.Errorf("recursive: level %d: %w", k, err)
		}
	}
	return nil
}
