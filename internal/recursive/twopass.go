package recursive

import (
	"repro/internal/heavy"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/xhash"
)

// TwoPassConfig parameterizes the two-pass recursive sketch, which wires
// Algorithm 1 (or any TwoPassSketcher) into the Theorem 13 reduction.
type TwoPassConfig struct {
	N            uint64
	Levels       int // 0 means log2 N, capped at 30
	MakeSketcher func(level int) heavy.TwoPassSketcher
}

// TwoPass is the two-pass variant of the recursive sketch: the stream is
// replayed once for candidate identification and once for exact
// tabulation, at every level.
type TwoPass struct {
	levels  []heavy.TwoPassSketcher
	sub     []*xhash.Bernoulli
	scratch [][]stream.Update // reusable batch survivor buffers
}

// NewTwoPass returns a fresh two-pass recursive sketch.
func NewTwoPass(cfg TwoPassConfig, rng *util.SplitMix64) *TwoPass {
	if cfg.N == 0 {
		panic("recursive: domain must be positive")
	}
	if cfg.MakeSketcher == nil {
		panic("recursive: MakeSketcher is required")
	}
	levels := cfg.Levels
	if levels == 0 {
		levels = util.Log2Ceil(cfg.N)
	}
	if levels > 30 {
		levels = 30
	}
	if levels < 1 {
		levels = 1
	}
	s := &TwoPass{
		levels: make([]heavy.TwoPassSketcher, levels+1),
		sub:    make([]*xhash.Bernoulli, levels),
	}
	for k := 0; k <= levels; k++ {
		s.levels[k] = cfg.MakeSketcher(k)
	}
	for k := 0; k < levels; k++ {
		s.sub[k] = xhash.NewBernoulli(2, 1, 2, rng.Fork())
	}
	return s
}

// Pass1 feeds an update to the identification pass at every level
// containing the item.
func (s *TwoPass) Pass1(item uint64, delta int64) {
	s.levels[0].Pass1(item, delta)
	for k := 0; k < len(s.sub); k++ {
		if !s.sub[k].Hash(item) {
			return
		}
		s.levels[k+1].Pass1(item, delta)
	}
}

// FinishPass1 must be called between the passes.
func (s *TwoPass) FinishPass1() {
	for _, lv := range s.levels {
		lv.FinishPass1()
	}
}

// Pass2 feeds an update to the tabulation pass at every level containing
// the item.
func (s *TwoPass) Pass2(item uint64, delta int64) {
	s.levels[0].Pass2(item, delta)
	for k := 0; k < len(s.sub); k++ {
		if !s.sub[k].Hash(item) {
			return
		}
		s.levels[k+1].Pass2(item, delta)
	}
}

// Estimate assembles the bottom-up estimator. Call once, after both passes.
func (s *TwoPass) Estimate() float64 {
	covers := make([]heavy.Cover, len(s.levels))
	for k := range s.levels {
		covers[k] = s.levels[k].Cover()
	}
	return CombineCovers(covers, func(level int, item uint64) bool {
		return s.sub[level].Hash(item)
	})
}

// SpaceBytes reports the total counter storage across levels.
func (s *TwoPass) SpaceBytes() int {
	total := 0
	for _, lv := range s.levels {
		total += lv.SpaceBytes()
	}
	return total
}
