// Package recursive implements the Recursive Sketch of Braverman and
// Ostrovsky ("Generalizing the layering method of Indyk and Woodruff",
// RANDOM 2013), the reduction behind Theorem 13 of the paper: given a
// (g, λ, ε, δ)-heavy-hitter algorithm with λ = ε²/log³n, there is a
// (g, ε)-SUM algorithm with O(log n) storage overhead.
//
// The construction maintains L+1 nested sub-universes
//
//	[n] = U_0 ⊇ U_1 ⊇ ... ⊇ U_L,
//
// where U_{k+1} keeps each item of U_k with probability 1/2 under a fresh
// pairwise-independent hash. A heavy-hitter sketcher runs on each level's
// substream. The estimate is assembled bottom-up:
//
//	Ĝ_L = Σ_{i ∈ H_L} w_i
//	Ĝ_k = Σ_{i ∈ H_k} w_i + 2 ( Ĝ_{k+1} − Σ_{i ∈ H_k ∩ U_{k+1}} w_i )
//
// Each level accounts its heavy hitters exactly (to (1±ε)) and estimates
// the light remainder by doubling the next level's estimate of it; because
// every remaining item is light, the doubling has small variance, and
// pairwise independence of the subsampling makes it unbiased.
//
// Layer: the algorithm layer of ARCHITECTURE.md, wrapping one
// internal/heavy instance per subsampling level; internal/core builds
// directly on it.
// Seed discipline: per level the subsample hash forks before the
// level's sketcher (construction order is part of the contract);
// Merge/UnmarshalBinary require same-seed instances and the composite
// wire fingerprint folds every level's fingerprint.
package recursive
