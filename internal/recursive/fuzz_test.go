package recursive

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/util"
)

func fuzzRecursive() *Sketch {
	g := gfunc.F2Func()
	rng := util.NewSplitMix64(3)
	return New(Config{
		N:      64,
		Levels: 2,
		MakeSketcher: func(level int) heavy.Sketcher {
			return heavy.NewOnePass(heavy.OnePassConfig{
				G: g, Lambda: 0.25, Eps: 0.5, Delta: 0.3, H: 2,
			}, rng.Fork())
		},
	}, rng.Fork())
}

func fuzzRecursiveTwoPass() *TwoPass {
	g := gfunc.F2Func()
	rng := util.NewSplitMix64(4)
	return NewTwoPass(TwoPassConfig{
		N:      64,
		Levels: 2,
		MakeSketcher: func(level int) heavy.TwoPassSketcher {
			return heavy.NewTwoPass(heavy.TwoPassConfig{
				G: g, Lambda: 0.25, Delta: 0.3, H: 2,
			}, rng.Fork())
		},
	}, rng.Fork())
}

func addSeeds(f *testing.F, valid []byte) {
	f.Add(valid)
	for _, cut := range []int{0, 3, 13, 14, 18, 40, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[0] ^= 0xff
	f.Add(corrupt)
	corrupt2 := append([]byte(nil), valid...)
	corrupt2[len(corrupt2)/2] ^= 0x55
	f.Add(corrupt2)
}

func FuzzRecursiveUnmarshal(f *testing.F) {
	src := fuzzRecursive()
	src.Update(5, 2)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		sk := fuzzRecursive()
		_ = sk.UnmarshalBinary(data) // must not panic
	})
}

func FuzzRecursiveTwoPassUnmarshal(f *testing.F) {
	src := fuzzRecursiveTwoPass()
	src.Pass1(5, 2)
	src.FinishPass1()
	src.Pass2(5, 2)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	cands, err := src.MarshalCandidates()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cands)
	f.Fuzz(func(t *testing.T, data []byte) {
		sk := fuzzRecursiveTwoPass()
		_ = sk.UnmarshalBinary(data)     // must not panic
		_ = sk.UnmarshalCandidates(data) // must not panic
	})
}
