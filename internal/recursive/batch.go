package recursive

import (
	"fmt"

	"repro/internal/heavy"
	"repro/internal/stream"
	"repro/internal/xhash"
)

// Batch ingestion for the recursive sketch. The nested sub-universes
// U_0 ⊇ U_1 ⊇ ... make batch routing a cascade of filters: level 0 sees
// the whole batch and level k+1 sees the survivors of the level-k
// subsampling hash. Survivor slices are kept per level and reused across
// batches, so routing allocates only on the first batch.

// FeedLevels routes a batch down the nested sub-universes, calling
// feed(k, chunk) with the updates whose items belong to U_k. scratch
// holds the per-level survivor buffers (allocated lazily, reused). It is
// exported so that core.Universal, which carries the same subsampling
// structure, can reuse the routing.
func FeedLevels(batch []stream.Update, sub []*xhash.Bernoulli,
	scratch *[][]stream.Update, feed func(level int, chunk []stream.Update)) {

	if *scratch == nil {
		*scratch = make([][]stream.Update, len(sub))
	}
	cur := batch
	for k := 0; ; k++ {
		feed(k, cur)
		if k == len(sub) {
			return
		}
		next := (*scratch)[k][:0]
		for _, u := range cur {
			if sub[k].Hash(u.Item) {
				next = append(next, u)
			}
		}
		(*scratch)[k] = next
		if len(next) == 0 {
			return
		}
		cur = next
	}
}

// ingestLevel feeds a chunk to one level's sketcher, preferring its
// batch path.
func ingestLevel(lv heavy.Sketcher, chunk []stream.Update) {
	if bs, ok := lv.(heavy.BatchSketcher); ok {
		bs.UpdateBatch(chunk)
		return
	}
	for _, u := range chunk {
		lv.Update(u.Item, u.Delta)
	}
}

// UpdateBatch feeds a batch of turnstile updates to every level whose
// sub-universe contains each item. The counter state is identical to
// per-update ingestion; per-level batch paths amortize the hashing.
func (s *Sketch) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	FeedLevels(batch, s.sub, &s.scratch, func(k int, chunk []stream.Update) {
		ingestLevel(s.levels[k], chunk)
	})
}

// Pass1Batch feeds a batch to the identification pass at every level
// containing each item.
func (s *TwoPass) Pass1Batch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	FeedLevels(batch, s.sub, &s.scratch, func(k int, chunk []stream.Update) {
		if tp, ok := s.levels[k].(*heavy.TwoPass); ok {
			tp.Pass1Batch(chunk)
			return
		}
		for _, u := range chunk {
			s.levels[k].Pass1(u.Item, u.Delta)
		}
	})
}

// Pass2Batch feeds a batch to the tabulation pass at every level
// containing each item.
func (s *TwoPass) Pass2Batch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	FeedLevels(batch, s.sub, &s.scratch, func(k int, chunk []stream.Update) {
		if tp, ok := s.levels[k].(*heavy.TwoPass); ok {
			tp.Pass2Batch(chunk)
			return
		}
		for _, u := range chunk {
			s.levels[k].Pass2(u.Item, u.Delta)
		}
	})
}

// MergePass1 folds another two-pass recursive sketch's first-pass state
// (same configuration and seed) into s, level by level. Call before
// FinishPass1, exactly as with Sketch.Merge.
func (s *TwoPass) MergePass1(other *TwoPass) error {
	if len(s.levels) != len(other.levels) {
		return fmt.Errorf("recursive: level count mismatch %d vs %d",
			len(s.levels), len(other.levels))
	}
	for k := range s.levels {
		a, okA := s.levels[k].(*heavy.TwoPass)
		b, okB := other.levels[k].(*heavy.TwoPass)
		if !okA || !okB {
			return fmt.Errorf("recursive: level %d sketcher does not support pass-1 merging", k)
		}
		if err := a.MergePass1(b); err != nil {
			return fmt.Errorf("recursive: level %d: %w", k, err)
		}
	}
	return nil
}

// AdoptCandidates copies the per-level candidate sets extracted by
// from.FinishPass1 into s (replacing FinishPass1 on the adopting side),
// so a worker can tabulate its shard against the coordinator's
// candidates.
func (s *TwoPass) AdoptCandidates(from *TwoPass) error {
	if len(s.levels) != len(from.levels) {
		return fmt.Errorf("recursive: level count mismatch %d vs %d",
			len(s.levels), len(from.levels))
	}
	for k := range s.levels {
		a, okA := s.levels[k].(*heavy.TwoPass)
		b, okB := from.levels[k].(*heavy.TwoPass)
		if !okA || !okB {
			return fmt.Errorf("recursive: level %d sketcher does not support candidate adoption", k)
		}
		a.AdoptCandidates(b)
	}
	return nil
}

// MergePass2 adds another sketch's second-pass tabulations into s; both
// sides must hold the same candidate sets (AdoptCandidates).
func (s *TwoPass) MergePass2(other *TwoPass) error {
	if len(s.levels) != len(other.levels) {
		return fmt.Errorf("recursive: level count mismatch %d vs %d",
			len(s.levels), len(other.levels))
	}
	for k := range s.levels {
		a, okA := s.levels[k].(*heavy.TwoPass)
		b, okB := other.levels[k].(*heavy.TwoPass)
		if !okA || !okB {
			return fmt.Errorf("recursive: level %d sketcher does not support pass-2 merging", k)
		}
		a.MergePass2(b)
	}
	return nil
}
