package recursive

import (
	"fmt"

	"repro/internal/heavy"
)

// Merger is implemented by level sketchers that support distributed
// merging (heavy.OnePass does).
type Merger interface {
	Merge(other *heavy.OnePass) error
}

// Merge folds another recursive sketch (same configuration and seed) into
// s, level by level. Both sketches must have been built by New with
// identical Config and rng seed so that the subsampling hashes and
// per-level sketcher hashes coincide; level counts are verified, hash
// equality is the caller's contract (as with sketch.CountSketch.Merge).
func (s *Sketch) Merge(other *Sketch) error {
	if len(s.levels) != len(other.levels) {
		return fmt.Errorf("recursive: level count mismatch %d vs %d",
			len(s.levels), len(other.levels))
	}
	for k := range s.levels {
		a, okA := s.levels[k].(*heavy.OnePass)
		b, okB := other.levels[k].(*heavy.OnePass)
		if !okA || !okB {
			return fmt.Errorf("recursive: level %d sketcher does not support merging", k)
		}
		if err := a.Merge(b); err != nil {
			return fmt.Errorf("recursive: level %d: %w", k, err)
		}
	}
	return nil
}
