// Package workload is the scenario-generation subsystem: a catalog of
// deterministic, seeded stream generators with very different
// heavy-hitter structure, so that accuracy and throughput claims can be
// exercised across the traffic shapes a production aggregation service
// actually sees — not just the uniform synthetic stream the early
// benchmarks used.
//
// Every generator implements Generator: a pure function from Config
// (domain, working-set cardinality, stream length, seed) to a
// stream.Stream. Determinism is total — the same Config yields a
// byte-identical stream on every run, every platform, and independent of
// how the stream is later sharded — so workload streams plug directly
// into the exact-equality contracts of internal/engine (serial ==
// parallel == daemon-merged; see internal/core/parallel.go).
//
// The catalog (see Generators):
//
//	zipf      Zipfian / power-law item popularity (α = 1.1): the
//	          canonical heavy-tailed workload g-SUM algorithms target.
//	uniform   every working-set item equally likely: no heavy hitters,
//	          the degenerate case heavy-hitter layers must not distort.
//	needle    needle-in-a-haystack: one dominant key carries half the
//	          stream over a uniform haystack — max-skew heavy-hitter
//	          recall, and the shape of a hot-key cache stampede.
//	bursty    clustered arrival order: items arrive in runs (geometric
//	          lengths), the fast path for run-length batch collapse and
//	          the worst case for per-update candidate tracking.
//	permuted  a Zipf stream replayed in a seeded random permutation:
//	          identical frequency vector to zipf with all arrival
//	          locality destroyed — linear sketches must produce the
//	          same estimates; order-sensitive optimizations must not
//	          change results.
//
// The package also hosts the bench runner (bench.go) behind the
// `gsum bench` subcommand, which drives any generator through the
// serial, sharded-parallel, or daemon (HTTP worker/coordinator)
// ingestion paths and reports throughput and estimate-vs-exact error.
package workload

import (
	"sort"

	"repro/internal/stream"
	"repro/internal/util"
)

// Config parameterizes a scenario. All generators are deterministic
// functions of the full Config value.
type Config struct {
	// N is the domain size; generated items lie in [0, N).
	N uint64
	// Items is the working-set cardinality: the number of distinct items
	// the generator draws from (clamped to N).
	Items int
	// Length is the number of updates in the generated stream.
	Length int
	// Seed drives every random choice.
	Seed uint64
}

// withDefaults fills zero fields with bench-scale defaults.
func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 1 << 16
	}
	if c.Items <= 0 {
		c.Items = 4096
	}
	if uint64(c.Items) > c.N {
		c.Items = int(c.N)
	}
	if c.Length <= 0 {
		c.Length = 1 << 17
	}
	return c
}

// Generator is a deterministic scenario: it maps a Config to a turnstile
// stream. Implementations must be pure — no hidden state, no global
// randomness — so that the same (generator, Config) pair always yields a
// byte-identical stream.
type Generator interface {
	// Name is the registry key (`gsum bench -workload <name>`).
	Name() string
	// Description is a one-line summary for usage text and docs.
	Description() string
	// Generate builds the stream for cfg.
	Generate(cfg Config) *stream.Stream
}

// registry holds the default generator catalog in stable order.
var registry = []Generator{
	Zipf{Alpha: 1.1},
	Uniform{},
	Needle{},
	Bursty{},
	PermutedReplay{},
}

// Generators returns the default catalog in stable order.
func Generators() []Generator {
	out := make([]Generator, len(registry))
	copy(out, registry)
	return out
}

// Names returns the sorted names of the default catalog.
func Names() []string {
	out := make([]string, len(registry))
	for i, g := range registry {
		out[i] = g.Name()
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a generator by name from the default catalog.
func Lookup(name string) (Generator, bool) {
	for _, g := range registry {
		if g.Name() == name {
			return g, true
		}
	}
	return nil, false
}

// workingSet draws cfg.Items distinct items from [0, N) deterministically.
// Every generator derives its working set from the same fork index, so
// two scenarios with the same Config share item identities — useful when
// comparing estimates across workload shapes.
func workingSet(cfg Config, rng *util.SplitMix64) []uint64 {
	seen := make(map[uint64]struct{}, cfg.Items)
	out := make([]uint64, 0, cfg.Items)
	for len(out) < cfg.Items {
		it := rng.Uint64n(cfg.N)
		if _, ok := seen[it]; ok {
			continue
		}
		seen[it] = struct{}{}
		out = append(out, it)
	}
	return out
}
