package workload

import (
	"fmt"
	"sort"

	"repro/internal/stream"
	"repro/internal/util"
)

// Config parameterizes a scenario. All generators are deterministic
// functions of the full Config value. The JSON tags are the stream
// block of the sweep config file (internal/sweep).
type Config struct {
	// N is the domain size; generated items lie in [0, N).
	N uint64 `json:"n"`
	// Items is the working-set cardinality: the number of distinct items
	// the generator draws from (clamped to N).
	Items int `json:"items"`
	// Length is the number of updates in the generated stream.
	Length int `json:"length"`
	// Seed drives every random choice.
	Seed uint64 `json:"seed"`
	// Ticks is the time span of the stream in ticks for the ticked
	// variants (TickedGenerator); 0 means DefaultTicks. Whole-stream
	// generation ignores it.
	Ticks int `json:"ticks,omitempty"`
}

// Validate rejects configurations a generator would otherwise degrade
// on: zero or negative domain, working set, or length, and a negative
// tick span. CLI frontends (gsum bench, gsum sweep) call it on the
// explicit user configuration BEFORE withDefaults, so a typo like
// `-items 0` is an error message instead of a silently substituted
// default deep inside a generator.
func (c Config) Validate() error {
	if c.N == 0 {
		return fmt.Errorf("workload: domain size N must be positive")
	}
	if c.Items <= 0 {
		return fmt.Errorf("workload: working-set cardinality Items must be positive, got %d", c.Items)
	}
	if c.Length <= 0 {
		return fmt.Errorf("workload: stream length must be positive, got %d", c.Length)
	}
	if c.Ticks < 0 {
		return fmt.Errorf("workload: tick span must be non-negative, got %d", c.Ticks)
	}
	return nil
}

// MaxAlpha bounds the skew exponents ValidateAlpha accepts; beyond it
// the zipf CDF is numerically a point mass and the scenario degenerates.
const MaxAlpha = 8.0

// ValidateAlpha rejects skew exponents outside (0, MaxAlpha] (including
// NaN). The generator structs treat a non-positive Alpha as "use the
// default", so frontends that accept alpha from a user call this to
// turn the silent fallback into an error.
func ValidateAlpha(alpha float64) error {
	if !(alpha > 0) || alpha > MaxAlpha {
		return fmt.Errorf("workload: alpha must be in (0, %g], got %v", MaxAlpha, alpha)
	}
	return nil
}

// WithDefaults returns the config with bench-scale defaults filled into
// zero fields — exactly the defaulting RunBench applies before
// generating. Exported for frontends (internal/sweep) that must derive
// the same fully-resolved scenario the bench runner will use.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills zero fields with bench-scale defaults.
func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 1 << 16
	}
	if c.Items <= 0 {
		c.Items = 4096
	}
	if uint64(c.Items) > c.N {
		c.Items = int(c.N)
	}
	if c.Length <= 0 {
		c.Length = 1 << 17
	}
	return c
}

// Generator is a deterministic scenario: it maps a Config to a turnstile
// stream. Implementations must be pure — no hidden state, no global
// randomness — so that the same (generator, Config) pair always yields a
// byte-identical stream.
type Generator interface {
	// Name is the registry key (`gsum bench -workload <name>`).
	Name() string
	// Description is a one-line summary for usage text and docs.
	Description() string
	// Generate builds the stream for cfg.
	Generate(cfg Config) *stream.Stream
}

// registry holds the default generator catalog in stable order: the
// five benign scenarios first, then the adversarial/drifting/replay
// five added with the sweep engine.
var registry = []Generator{
	Zipf{Alpha: 1.1},
	Uniform{},
	Needle{},
	Bursty{},
	PermutedReplay{},
	Drift{},
	Adversarial{},
	FlashCrowd{},
	Diurnal{},
	TraceReplay{},
}

// Generators returns the default catalog in stable order.
func Generators() []Generator {
	out := make([]Generator, len(registry))
	copy(out, registry)
	return out
}

// Names returns the sorted names of the default catalog.
func Names() []string {
	out := make([]string, len(registry))
	for i, g := range registry {
		out[i] = g.Name()
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a generator by name from the default catalog.
func Lookup(name string) (Generator, bool) {
	for _, g := range registry {
		if g.Name() == name {
			return g, true
		}
	}
	return nil, false
}

// workingSet draws cfg.Items distinct items from [0, N) deterministically.
// Every generator derives its working set from the same fork index, so
// two scenarios with the same Config share item identities — useful when
// comparing estimates across workload shapes.
func workingSet(cfg Config, rng *util.SplitMix64) []uint64 {
	seen := make(map[uint64]struct{}, cfg.Items)
	out := make([]uint64, 0, cfg.Items)
	for len(out) < cfg.Items {
		it := rng.Uint64n(cfg.N)
		if _, ok := seen[it]; ok {
			continue
		}
		seen[it] = struct{}{}
		out = append(out, it)
	}
	return out
}
