package workload

import (
	"fmt"
	"math"

	"repro/internal/stream"
	"repro/internal/util"
)

// The generators. Each one forks the seed rng in a fixed order — working
// set first, then per-update draws — so adding draw sites never perturbs
// the working set, and streams stay reproducible across versions of the
// same generator.

// Zipf emits updates whose item popularity follows a Zipfian law with
// exponent Alpha: the rank-r working-set item is drawn with probability
// proportional to 1/r^Alpha. This is the canonical heavy-tailed workload
// — a few keys dominate, a long tail follows — and the regime the
// paper's heavy-hitter-based g-SUM estimators are built for.
type Zipf struct {
	// Alpha is the skew exponent (0 = uniform; 1.1 is the default used by
	// the experiment suite; larger = more skew).
	Alpha float64
}

// Name implements Generator.
func (z Zipf) Name() string { return "zipf" }

// Description implements Generator.
func (z Zipf) Description() string {
	return fmt.Sprintf("Zipfian item popularity (alpha=%.2f): few keys dominate, long tail", z.alpha())
}

func (z Zipf) alpha() float64 {
	if z.Alpha <= 0 {
		return 1.1
	}
	return z.Alpha
}

// Generate implements Generator.
func (z Zipf) Generate(cfg Config) *stream.Stream {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	cdf := zipfCDF(len(items), z.alpha())
	for i := 0; i < cfg.Length; i++ {
		s.Add(items[sampleCDF(cdf, draw)], 1)
	}
	return s
}

// zipfCDF precomputes the cumulative distribution of ranks 1..n with
// weight 1/r^alpha.
func zipfCDF(n int, alpha float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), alpha)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	return cdf
}

// sampleCDF draws a rank from a cumulative distribution by binary search.
func sampleCDF(cdf []float64, rng *util.SplitMix64) int {
	u := rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Uniform emits updates whose items are uniform over the working set: no
// heavy hitters at all. It is the degenerate case for heavy-hitter-based
// estimators — the entire g-SUM mass sits in the "tail" term — and the
// worst case for duplicate aggregation (batches are almost all distinct
// when the working set exceeds the batch size).
type Uniform struct{}

// Name implements Generator.
func (Uniform) Name() string { return "uniform" }

// Description implements Generator.
func (Uniform) Description() string {
	return "uniform item popularity: no heavy hitters, all mass in the tail"
}

// Generate implements Generator.
func (Uniform) Generate(cfg Config) *stream.Stream {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	for i := 0; i < cfg.Length; i++ {
		s.Add(items[draw.Uint64n(uint64(len(items)))], 1)
	}
	return s
}

// Needle is the needle-in-a-haystack scenario: one dominant key (the
// needle) receives NeedleShare of the stream; the rest is uniform over
// the remaining working set (the haystack). It is the maximum-skew
// heavy-hitter shape — a single hot key against background noise — and
// models a cache stampede or a viral object.
type Needle struct {
	// NeedleShare is the fraction of updates that hit the needle
	// (default 0.5).
	NeedleShare float64
}

// Name implements Generator.
func (Needle) Name() string { return "needle" }

// Description implements Generator.
func (n Needle) Description() string {
	return fmt.Sprintf("needle-in-a-haystack: one key carries %.0f%% of the stream", n.share()*100)
}

func (n Needle) share() float64 {
	if n.NeedleShare <= 0 || n.NeedleShare >= 1 {
		return 0.5
	}
	return n.NeedleShare
}

// Generate implements Generator.
func (n Needle) Generate(cfg Config) *stream.Stream {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	needle, hay := items[0], items[1:]
	if len(hay) == 0 {
		hay = items // degenerate single-item working set
	}
	share := n.share()
	for i := 0; i < cfg.Length; i++ {
		if draw.Float64() < share {
			s.Add(needle, 1)
		} else {
			s.Add(hay[draw.Uint64n(uint64(len(hay)))], 1)
		}
	}
	return s
}

// Bursty emits clustered arrival order: a Zipf-popular item is chosen,
// then a geometric run of consecutive updates to it, then the next item.
// The frequency vector is heavy-tailed like zipf's, but arrival locality
// is extreme — the shape of sensor flushes, retry storms, and per-user
// event bursts. It is the best case for run-length batch collapse and
// the worst case for per-update candidate re-scoring.
type Bursty struct {
	// MeanRun is the mean burst length (default 16).
	MeanRun int
	// Alpha is the burst-owner popularity skew (default 1.1).
	Alpha float64
}

// Name implements Generator.
func (Bursty) Name() string { return "bursty" }

// Description implements Generator.
func (b Bursty) Description() string {
	return fmt.Sprintf("clustered arrivals: geometric runs (mean %d) of Zipf-popular keys", b.meanRun())
}

func (b Bursty) meanRun() int {
	if b.MeanRun <= 0 {
		return 16
	}
	return b.MeanRun
}

func (b Bursty) alpha() float64 {
	if b.Alpha <= 0 {
		return 1.1
	}
	return b.Alpha
}

// Generate implements Generator.
func (b Bursty) Generate(cfg Config) *stream.Stream {
	s, _ := b.generate(cfg)
	return s
}

// generate builds the bursty stream and records where each geometric
// run starts (the draw sequence is identical to the original Generate,
// so existing seeds reproduce byte-identical streams). GenerateTicked
// uses the run boundaries for its burst-aligned time axis.
func (b Bursty) generate(cfg Config) (*stream.Stream, []int) {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	var runStarts []int
	cdf := zipfCDF(len(items), b.alpha())
	// P(continue) keeps the geometric run mean at meanRun.
	cont := 1 - 1/float64(b.meanRun())
	for s.Len() < cfg.Length {
		runStarts = append(runStarts, s.Len())
		it := items[sampleCDF(cdf, draw)]
		s.Add(it, 1)
		for s.Len() < cfg.Length && draw.Float64() < cont {
			s.Add(it, 1)
		}
	}
	return s, runStarts
}

// PermutedReplay generates an inner scenario's stream and replays it in
// a seeded random permutation. The frequency vector — and therefore
// every g-SUM and the exact answer — is identical to the inner stream's;
// only arrival order changes. Linear sketches must produce identical
// counters on both (order-insensitivity), so this scenario pins down
// that no optimization quietly became order-sensitive.
type PermutedReplay struct {
	// Inner is the scenario to permute (default Zipf{}).
	Inner Generator
}

// Name implements Generator.
func (PermutedReplay) Name() string { return "permuted" }

// Description implements Generator.
func (p PermutedReplay) Description() string {
	return "seeded random permutation of the " + p.inner().Name() + " stream: same vector, no locality"
}

func (p PermutedReplay) inner() Generator {
	if p.Inner != nil {
		return p.Inner
	}
	return Zipf{}
}

// Generate implements Generator.
func (p PermutedReplay) Generate(cfg Config) *stream.Stream {
	cfg = cfg.withDefaults()
	base := p.inner().Generate(cfg)
	src := base.Updates()
	// Fisher-Yates over a copy, with an rng forked from a distinct tag of
	// the seed so the permutation is independent of the inner generator's
	// draws.
	perm := util.NewSplitMix64(cfg.Seed ^ 0x9e3779b97f4a7c15).Fork()
	shuffled := make([]stream.Update, len(src))
	copy(shuffled, src)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := perm.Uint64n(uint64(i + 1))
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	out := stream.New(base.N())
	for _, u := range shuffled {
		out.Add(u.Item, u.Delta)
	}
	return out
}
