package workload

import (
	"fmt"

	"repro/internal/stream"
	"repro/internal/util"
)

// FlashCrowd is the regime-change scenario: the stream opens as pure
// uniform background — no heavy hitter anywhere — and at BreakFrac of
// the way through, one previously cold tail item goes viral and takes
// CrowdShare of every remaining update. The whole-stream vector has a
// clear head, but any estimator that froze its candidate set during the
// quiet first act never saw the crowd coming; sliding windows that
// cover only the second act see a needle workload instead.
type FlashCrowd struct {
	// BreakFrac is where the crowd arrives, as a fraction of the stream
	// (default 0.5).
	BreakFrac float64
	// CrowdShare is the crowd item's share of post-break updates
	// (default 0.6).
	CrowdShare float64
}

// Name implements Generator.
func (FlashCrowd) Name() string { return "flashcrowd" }

// Description implements Generator.
func (f FlashCrowd) Description() string {
	return fmt.Sprintf("flash crowd: uniform until %.0f%%, then one tail item takes %.0f%% of the stream",
		f.breakFrac()*100, f.crowdShare()*100)
}

func (f FlashCrowd) breakFrac() float64 {
	if f.BreakFrac <= 0 || f.BreakFrac >= 1 {
		return 0.5
	}
	return f.BreakFrac
}

func (f FlashCrowd) crowdShare() float64 {
	if f.CrowdShare <= 0 || f.CrowdShare >= 1 {
		return 0.6
	}
	return f.CrowdShare
}

// Generate implements Generator. The crowd item is the LAST item of the
// shared working set — the same set zipf's head comes from the front of
// — so comparing scenarios over one Config puts the flash crowd on an
// item every other scenario treats as tail.
func (f FlashCrowd) Generate(cfg Config) *stream.Stream {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	crowd := items[len(items)-1]
	breakAt := int(f.breakFrac() * float64(cfg.Length))
	share := f.crowdShare()
	for i := 0; i < cfg.Length; i++ {
		if i >= breakAt && draw.Float64() < share {
			s.Add(crowd, 1)
			continue
		}
		s.Add(items[draw.Uint64n(uint64(len(items)))], 1)
	}
	return s
}

// GenerateTicked implements TickedGenerator: even slicing, so the break
// lands at tick BreakFrac*Ticks and a trailing window shorter than the
// post-break span sees only the crowd regime.
func (f FlashCrowd) GenerateTicked(cfg Config) *TickedStream {
	return evenTicked(f.Generate(cfg), cfg)
}
