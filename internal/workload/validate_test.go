package workload

import (
	"math"
	"strings"
	"testing"
)

// TestConfigValidate: one regression per bad field, and the good
// configuration passes.
func TestConfigValidate(t *testing.T) {
	good := Config{N: 1 << 12, Items: 256, Length: 1000, Seed: 1, Ticks: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(c Config) Config
		want string
	}{
		{"zero N", func(c Config) Config { c.N = 0; return c }, "domain"},
		{"zero Items", func(c Config) Config { c.Items = 0; return c }, "Items"},
		{"negative Items", func(c Config) Config { c.Items = -3; return c }, "Items"},
		{"zero Length", func(c Config) Config { c.Length = 0; return c }, "length"},
		{"negative Length", func(c Config) Config { c.Length = -1; return c }, "length"},
		{"negative Ticks", func(c Config) Config { c.Ticks = -1; return c }, "tick"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mut(good).Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: error %q does not name the field (%q)", tc.name, err, tc.want)
			}
		})
	}
}

// TestValidateAlpha pins the accepted range (0, MaxAlpha].
func TestValidateAlpha(t *testing.T) {
	for _, ok := range []float64{0.1, 1.1, MaxAlpha} {
		if err := ValidateAlpha(ok); err != nil {
			t.Errorf("alpha %v rejected: %v", ok, err)
		}
	}
	for _, bad := range []float64{0, -1, MaxAlpha + 1, math.NaN(), math.Inf(1)} {
		if err := ValidateAlpha(bad); err == nil {
			t.Errorf("alpha %v accepted", bad)
		}
	}
}
