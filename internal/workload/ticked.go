package workload

import (
	"repro/internal/stream"
	"repro/internal/util"
)

// The tick dimension. A windowed backend (internal/window) answers over
// the last W ticks, so windowed benchmarking needs scenario streams
// with a time axis. A TickedStream pairs a scenario stream with a
// non-decreasing per-update tick; determinism is the same as for plain
// streams — ticks are a pure function of the Config — so ticked
// workloads keep the serial == parallel == daemon equality meaningful
// in windowed mode too.

// DefaultTicks is the tick span used when Config.Ticks is 0.
const DefaultTicks = 64

// TickedStream is a scenario stream with a time dimension: update i
// happened at tick Ticks[i]. Ticks are non-decreasing.
type TickedStream struct {
	Stream *stream.Stream
	Ticks  []uint64
}

// LastTick returns the tick of the final update (0 for empty streams).
func (ts *TickedStream) LastTick() uint64 {
	if len(ts.Ticks) == 0 {
		return 0
	}
	return ts.Ticks[len(ts.Ticks)-1]
}

// EachRun calls fn for every maximal run of equal-tick updates within
// [lo, hi), passing the run's index bounds and its tick, and stops at
// the first error. It is the shared grouping loop of every tick-batched
// ingestion path (bench backends, daemon pushers).
func (ts *TickedStream) EachRun(lo, hi int, fn func(lo, hi int, tick uint64) error) error {
	for lo < hi {
		run := lo + 1
		for run < hi && ts.Ticks[run] == ts.Ticks[lo] {
			run++
		}
		if err := fn(lo, run, ts.Ticks[lo]); err != nil {
			return err
		}
		lo = run
	}
	return nil
}

// WindowVector returns the frequency vector of the updates in the
// trailing window (LastTick−w, LastTick] — the ground truth a windowed
// estimator is scored against.
func (ts *TickedStream) WindowVector(w uint64) stream.Vector {
	last := ts.LastTick()
	v := make(stream.Vector, 64)
	for i, u := range ts.Stream.Updates() {
		if ts.Ticks[i]+w > last { // tick > last-w, written overflow-safe
			nv := v[u.Item] + u.Delta
			if nv == 0 {
				delete(v, u.Item)
			} else {
				v[u.Item] = nv
			}
		}
	}
	return v
}

// TickedGenerator is a Generator that can also stamp its stream with
// ticks. Generators with intrinsic arrival structure (bursty runs,
// permuted replays) implement it with scenario-specific time axes; any
// other generator can be lifted with Ticked, which slices the stream
// into equal-length tick segments.
type TickedGenerator interface {
	Generator
	// GenerateTicked builds the ticked stream for cfg. The plain stream
	// (updates, order, and frequency vector) need not equal Generate's
	// for scenarios whose time axis changes arrival order (permuted), but
	// it must remain a pure function of cfg.
	GenerateTicked(cfg Config) *TickedStream
}

// Ticked builds a ticked stream for any generator: g's own
// GenerateTicked when implemented, otherwise the generated stream
// sliced into cfg.Ticks equal segments.
func Ticked(g Generator, cfg Config) *TickedStream {
	if tg, ok := g.(TickedGenerator); ok {
		return tg.GenerateTicked(cfg)
	}
	return evenTicked(g.Generate(cfg), cfg)
}

// ticksOrDefault resolves the configured tick span.
func ticksOrDefault(cfg Config) uint64 {
	if cfg.Ticks <= 0 {
		return DefaultTicks
	}
	return uint64(cfg.Ticks)
}

// evenTicked stamps a stream with evenly sliced ticks: update i of n
// gets tick i·T/n, so the stream spans ticks [0, T).
func evenTicked(s *stream.Stream, cfg Config) *TickedStream {
	t := ticksOrDefault(cfg)
	n := s.Len()
	ticks := make([]uint64, n)
	for i := range ticks {
		ticks[i] = uint64(i) * t / uint64(n)
	}
	return &TickedStream{Stream: s, Ticks: ticks}
}

// GenerateTicked implements TickedGenerator: the zipf stream has no
// intrinsic arrival structure, so time is an even slicing.
func (z Zipf) GenerateTicked(cfg Config) *TickedStream {
	return evenTicked(z.Generate(cfg), cfg)
}

// GenerateTicked implements TickedGenerator (even slicing).
func (u Uniform) GenerateTicked(cfg Config) *TickedStream {
	return evenTicked(u.Generate(cfg), cfg)
}

// GenerateTicked implements TickedGenerator (even slicing).
func (n Needle) GenerateTicked(cfg Config) *TickedStream {
	return evenTicked(n.Generate(cfg), cfg)
}

// GenerateTicked implements TickedGenerator with a burst-aligned time
// axis: every geometric run falls entirely inside one tick (run r of R
// gets tick r·T/R), modeling devices that flush a whole burst at once.
// No burst ever straddles a window boundary, which makes bursty the
// clean worst case for windowed heavy-hitter churn.
func (b Bursty) GenerateTicked(cfg Config) *TickedStream {
	s, runStarts := b.generate(cfg)
	t := ticksOrDefault(cfg)
	ticks := make([]uint64, s.Len())
	runs := uint64(len(runStarts))
	for r, lo := range runStarts {
		hi := s.Len()
		if r+1 < len(runStarts) {
			hi = runStarts[r+1]
		}
		tick := uint64(r) * t / runs
		for i := lo; i < hi; i++ {
			ticks[i] = tick
		}
	}
	return &TickedStream{Stream: s, Ticks: ticks}
}

// GenerateTicked implements TickedGenerator: the inner scenario's
// ticked stream replayed with arrival order destroyed WITHIN each tick
// but never across ticks — every per-tick frequency vector is identical
// to the inner stream's, so a windowed estimate over the permuted
// replay must equal the windowed estimate over the inner stream (the
// windowed form of the order-insensitivity pin).
func (p PermutedReplay) GenerateTicked(cfg Config) *TickedStream {
	base := Ticked(p.inner(), cfg)
	src := base.Stream.Updates()
	shuffled := make([]stream.Update, len(src))
	copy(shuffled, src)
	// A distinct tag keeps the within-tick permutation independent of
	// both the inner generator's draws and the whole-stream permutation.
	perm := util.NewSplitMix64(cfg.Seed ^ 0xd1b54a32d192ed03).Fork()
	lo := 0
	for lo < len(shuffled) {
		hi := lo
		for hi < len(shuffled) && base.Ticks[hi] == base.Ticks[lo] {
			hi++
		}
		for i := hi - 1; i > lo; i-- {
			j := lo + int(perm.Uint64n(uint64(i-lo+1)))
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		lo = hi
	}
	out := stream.New(base.Stream.N())
	for _, u := range shuffled {
		out.Add(u.Item, u.Delta)
	}
	return &TickedStream{Stream: out, Ticks: base.Ticks}
}
