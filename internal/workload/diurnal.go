package workload

import (
	"fmt"
	"math"

	"repro/internal/stream"
	"repro/internal/util"
)

// Diurnal is the load-curve scenario: item popularity is a stationary
// Zipf, but the arrival VOLUME per tick follows a day-shaped sinusoid —
// a quiet trough ramping to a peak Peak times taller and back. The
// frequency vector matches zipf's regime, so whole-stream estimates are
// unremarkable; the tick axis is the point. Windowed estimators see
// their per-window mass swing by Peak while bucket budgets stay fixed,
// and batching layers see their batch-fill rate breathe.
type Diurnal struct {
	// Alpha is the popularity skew (default 1.1).
	Alpha float64
	// Peak is the peak-to-trough volume ratio (default 4).
	Peak float64
}

// Name implements Generator.
func (Diurnal) Name() string { return "diurnal" }

// Description implements Generator.
func (d Diurnal) Description() string {
	return fmt.Sprintf("diurnal load curve: zipf popularity, per-tick volume swings %gx trough to peak", d.peak())
}

func (d Diurnal) alpha() float64 {
	if d.Alpha <= 0 {
		return 1.1
	}
	return d.Alpha
}

func (d Diurnal) peak() float64 {
	if d.Peak <= 1 {
		return 4
	}
	return d.Peak
}

// Generate implements Generator: the ticked stream without its stamps.
func (d Diurnal) Generate(cfg Config) *stream.Stream {
	s, _ := d.generate(cfg)
	return s
}

// GenerateTicked implements TickedGenerator with the load curve's
// intrinsic time axis: tick t holds volume proportional to
// 1 + (Peak-1)*(1-cos(2*pi*t/T))/2, trough at t=0, peak mid-span.
func (d Diurnal) GenerateTicked(cfg Config) *TickedStream {
	s, ticks := d.generate(cfg)
	return &TickedStream{Stream: s, Ticks: ticks}
}

// generate builds the stream tick segment by tick segment. Segment
// sizes come from cumulative rounding of the volume weights, so the
// total is exactly cfg.Length and every size is a pure function of the
// Config.
func (d Diurnal) generate(cfg Config) (*stream.Stream, []uint64) {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	ticks := make([]uint64, 0, cfg.Length)
	t := int(ticksOrDefault(cfg))
	peak := d.peak()
	weights := make([]float64, t)
	total := 0.0
	for i := range weights {
		weights[i] = 1 + (peak-1)*(1-math.Cos(2*math.Pi*float64(i)/float64(t)))/2
		total += weights[i]
	}
	cdf := zipfCDF(len(items), d.alpha())
	cum, prev := 0.0, 0
	for seg := 0; seg < t; seg++ {
		cum += weights[seg]
		hi := int(math.Round(cum / total * float64(cfg.Length)))
		if seg == t-1 {
			hi = cfg.Length // absorb rounding residue
		}
		for i := prev; i < hi; i++ {
			s.Add(items[sampleCDF(cdf, draw)], 1)
			ticks = append(ticks, uint64(seg))
		}
		prev = hi
	}
	return s, ticks
}
