package workload

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/xhash"
)

// TestNewGeneratorsRegistered: the catalog grew to ten scenarios and
// every new name resolves.
func TestNewGeneratorsRegistered(t *testing.T) {
	if got := len(Generators()); got != 10 {
		t.Fatalf("catalog has %d generators, want 10", got)
	}
	for _, want := range []string{"drift", "adversarial", "flashcrowd", "diurnal", "trace"} {
		g, ok := Lookup(want)
		if !ok {
			t.Fatalf("Lookup(%q) failed", want)
		}
		if g.Name() != want || g.Description() == "" {
			t.Fatalf("%s: bad name/description", want)
		}
	}
}

// perTickVectors groups a ticked stream into per-tick frequency vectors.
func perTickVectors(ts *TickedStream) map[uint64]stream.Vector {
	out := make(map[uint64]stream.Vector)
	for i, u := range ts.Stream.Updates() {
		v := out[ts.Ticks[i]]
		if v == nil {
			v = make(stream.Vector)
			out[ts.Ticks[i]] = v
		}
		v[u.Item] += u.Delta
	}
	return out
}

// topOf returns the item with the largest absolute frequency.
func topOf(v stream.Vector) uint64 {
	var top uint64
	var best int64
	for it, c := range v {
		if a := util.AbsInt64(c); a > best {
			best, top = a, it
		}
	}
	return top
}

// TestDriftHeadRotates: the drifting scenario's per-tick head must
// actually move — the top item of the first tick differs from the top
// item of the last tick, and skew grows (last tick more concentrated
// than the first).
func TestDriftHeadRotates(t *testing.T) {
	cfg := Config{N: 1 << 12, Items: 256, Length: 40000, Seed: 7, Ticks: 16}
	ts := Drift{}.GenerateTicked(cfg)
	vecs := perTickVectors(ts)
	first, last := vecs[0], vecs[uint64(cfg.Ticks-1)]
	if first == nil || last == nil {
		t.Fatalf("missing tick segments: have %d", len(vecs))
	}
	if topOf(first) == topOf(last) {
		t.Fatalf("head did not rotate: item %d tops both first and last tick", topOf(first))
	}
	share := func(v stream.Vector) float64 {
		var total, top int64
		for _, c := range v {
			total += util.AbsInt64(c)
		}
		top = util.AbsInt64(v[topOf(v)])
		return float64(top) / float64(total)
	}
	if share(last) <= share(first) {
		t.Errorf("skew did not ramp: first-tick top share %.3f, last-tick %.3f", share(first), share(last))
	}
}

// TestAdversarialCollidersCollide: every decoy Colliders returns must
// share the victim's (bucket, sign) in at least one row of a
// CountSketch drawn from the same seed — re-derived here exactly the
// way sketch.NewCountSketch draws its families.
func TestAdversarialCollidersCollide(t *testing.T) {
	cfg := Config{N: 1 << 16, Items: 512, Length: 1000, Seed: 9}
	adv := Adversarial{}
	victim, decoys := adv.Colliders(cfg)
	if len(decoys) < adv.rows() {
		t.Fatalf("scan found only %d decoys for %d rows", len(decoys), adv.rows())
	}
	srng := util.NewSplitMix64(cfg.Seed * 7)
	buckets := make([]*xhash.Buckets, adv.rows())
	signs := make([]*xhash.Sign, adv.rows())
	for j := range buckets {
		buckets[j] = xhash.NewBuckets(2, adv.buckets(), srng.Fork())
		signs[j] = xhash.NewSign(4, srng.Fork())
	}
	for _, d := range decoys {
		hit := false
		for j := range buckets {
			if buckets[j].Hash(d) == buckets[j].Hash(victim) && signs[j].Hash(d) == signs[j].Hash(victim) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("decoy %d collides with victim %d in no row", d, victim)
		}
	}
}

// TestAdversarialDegradesPointQuery is the attack working end to end:
// a CountSketch opened from the seed the generator targeted answers the
// victim's point query with a large error, while the same sketch
// configuration on the benign zipf stream answers its top item
// accurately. This is the contrast the sweep report's point-error
// column documents.
func TestAdversarialDegradesPointQuery(t *testing.T) {
	cfg := Config{N: 1 << 16, Items: 512, Length: 1 << 16, Seed: 9}
	sketchSeed := cfg.Seed * 7

	ingest := func(g Generator) (*sketch.CountSketch, stream.Vector) {
		s := g.Generate(cfg)
		cs := sketch.NewCountSketch(5, 1<<10, util.NewSplitMix64(sketchSeed))
		for _, u := range s.Updates() {
			cs.Update(u.Item, u.Delta)
		}
		return cs, s.Vector()
	}

	adv := Adversarial{}
	victim, _ := adv.Colliders(cfg)
	cs, v := ingest(adv)
	truth := v[victim]
	got := cs.Estimate(victim)
	advErr := util.RelErr(float64(got), float64(truth))

	zcs, zv := ingest(Zipf{})
	top := topOf(zv)
	zipfErr := util.RelErr(float64(zcs.Estimate(top)), float64(zv[top]))

	if advErr < 4*zipfErr || advErr < 0.5 {
		t.Fatalf("attack did not land: victim point-query rel err %.3f (zipf top item %.4f)", advErr, zipfErr)
	}
}

// TestAdversarialHarmlessAgainstOtherSeed: against a sketch drawn from
// a different seed the same stream is just another skewed workload —
// the victim's point query stays accurate. The attack exploits the
// seed, not a weakness in the median estimator.
func TestAdversarialHarmlessAgainstOtherSeed(t *testing.T) {
	cfg := Config{N: 1 << 16, Items: 512, Length: 1 << 16, Seed: 9}
	adv := Adversarial{}
	victim, _ := adv.Colliders(cfg)
	s := adv.Generate(cfg)
	cs := sketch.NewCountSketch(5, 1<<10, util.NewSplitMix64(12345))
	for _, u := range s.Updates() {
		cs.Update(u.Item, u.Delta)
	}
	truth := s.Vector()[victim]
	if err := util.RelErr(float64(cs.Estimate(victim)), float64(truth)); err > 0.5 {
		t.Fatalf("unseeded sketch should answer accurately, rel err %.3f", err)
	}
}

// TestFlashCrowdRegimeChange: no heavy hitter before the break, a
// dominant one after it, and the crowd item is drawn from the tail of
// the shared working set.
func TestFlashCrowdRegimeChange(t *testing.T) {
	cfg := Config{N: 1 << 12, Items: 256, Length: 40000, Seed: 7}
	f := FlashCrowd{}
	s := f.Generate(cfg)
	updates := s.Updates()
	breakAt := len(updates) / 2

	half := func(lo, hi int) stream.Vector {
		v := make(stream.Vector)
		for _, u := range updates[lo:hi] {
			v[u.Item] += u.Delta
		}
		return v
	}
	pre, post := half(0, breakAt), half(breakAt, len(updates))
	preShare := float64(pre[topOf(pre)]) / float64(breakAt)
	if preShare > 0.05 {
		t.Errorf("pre-break top share %.3f, want uniform (no head)", preShare)
	}
	crowd := topOf(post)
	postShare := float64(post[crowd]) / float64(len(updates)-breakAt)
	if postShare < 0.5 || postShare > 0.7 {
		t.Errorf("post-break crowd share %.3f, want ~0.6", postShare)
	}
	// The crowd must be cold before the break: at most background mass.
	if float64(pre[crowd])/float64(breakAt) > 0.02 {
		t.Errorf("crowd item %d already warm before the break", crowd)
	}
}

// TestDiurnalVolumeSwings: per-tick volumes follow the load curve —
// the busiest tick carries several times the quietest — while total
// volume is exactly the configured length.
func TestDiurnalVolumeSwings(t *testing.T) {
	cfg := Config{N: 1 << 12, Items: 256, Length: 40000, Seed: 7, Ticks: 24}
	ts := Diurnal{}.GenerateTicked(cfg)
	if ts.Stream.Len() != cfg.Length {
		t.Fatalf("length %d, want %d", ts.Stream.Len(), cfg.Length)
	}
	counts := make(map[uint64]int)
	for _, tick := range ts.Ticks {
		counts[tick]++
	}
	min, max := cfg.Length, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio < 2.5 {
		t.Errorf("peak/trough tick volume ratio %.2f, want a pronounced curve (peak default 4)", ratio)
	}
}

// TestTraceReplay: the embedded trace replays deterministically, keeps
// its turnstile deletions, reads from a file when Path is set, and
// surfaces malformed sources through Validate instead of mid-generate.
func TestTraceReplay(t *testing.T) {
	cfg := Config{N: 1 << 12, Items: 256, Length: 2000, Seed: 7}
	tr := TraceReplay{}
	s := tr.Generate(cfg)
	if s.Len() != cfg.Length {
		t.Fatalf("length %d, want %d", s.Len(), cfg.Length)
	}
	if s.InsertionOnly() {
		t.Error("embedded trace lost its turnstile deletions")
	}

	// A file trace: same content as in-memory data gives the same stream.
	const csv = "1,5\n2,-3\n7\n# comment\n9,2\n"
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile := TraceReplay{Path: path}.Generate(cfg)
	fromData := TraceReplay{Data: []byte(csv)}.Generate(cfg)
	if !streamsEqual(fromFile, fromData) {
		t.Fatal("file and in-memory replays of the same CSV differ")
	}
	// Different seed shifts the fold but preserves the histogram.
	other := cfg
	other.Seed = 8
	shifted := TraceReplay{Data: []byte(csv)}.Generate(other)
	if streamsEqual(fromData, shifted) {
		t.Fatal("trace replay ignored the seed")
	}
	hist := func(s *stream.Stream) map[int64]int {
		h := make(map[int64]int)
		for _, c := range s.Vector() {
			h[c]++
		}
		return h
	}
	ha, hb := hist(fromData), hist(shifted)
	for c, n := range ha {
		if hb[c] != n {
			t.Fatalf("seeded fold changed the frequency histogram at count %d: %d vs %d", c, n, hb[c])
		}
	}

	for _, bad := range []TraceReplay{
		{Path: filepath.Join(t.TempDir(), "missing.csv")},
		{Data: []byte("1,2,3\n")},
		{Data: []byte("notanumber\n")},
		{Data: []byte("1,notanumber\n")},
		{Data: []byte("# only comments\n")},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted bad source %+v", bad)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("embedded trace failed Validate: %v", err)
	}
}
