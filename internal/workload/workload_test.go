package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

var testCfg = Config{N: 1 << 12, Items: 256, Length: 20000, Seed: 7}

// streamsEqual reports byte-identity of two streams (same domain, same
// update sequence).
func streamsEqual(a, b *stream.Stream) bool {
	if a.N() != b.N() || a.Len() != b.Len() {
		return false
	}
	au, bu := a.Updates(), b.Updates()
	for i := range au {
		if au[i] != bu[i] {
			return false
		}
	}
	return true
}

// TestGeneratorsDeterministic: same seed ⇒ byte-identical stream across
// runs, different seed ⇒ a different stream.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Generators() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			a := g.Generate(testCfg)
			b := g.Generate(testCfg)
			if !streamsEqual(a, b) {
				t.Fatalf("%s: same seed produced different streams", g.Name())
			}
			other := testCfg
			other.Seed = 8
			c := g.Generate(other)
			if streamsEqual(a, c) {
				t.Fatalf("%s: different seeds produced identical streams", g.Name())
			}
			if a.Len() != testCfg.Length {
				t.Fatalf("%s: length %d, want %d", g.Name(), a.Len(), testCfg.Length)
			}
		})
	}
}

// TestRegistry checks lookup and naming round-trips.
func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(Generators()) {
		t.Fatalf("Names() has %d entries, Generators() %d", len(names), len(Generators()))
	}
	for _, want := range []string{"zipf", "uniform", "needle", "bursty", "permuted"} {
		g, ok := Lookup(want)
		if !ok {
			t.Fatalf("Lookup(%q) failed", want)
		}
		if g.Name() != want {
			t.Fatalf("Lookup(%q).Name() = %q", want, g.Name())
		}
		if g.Description() == "" {
			t.Fatalf("%s: empty description", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
}

// TestWorkloadShapes spot-checks that each scenario has the heavy-hitter
// structure it advertises.
func TestWorkloadShapes(t *testing.T) {
	maxShare := func(s *stream.Stream) (uint64, float64) {
		v := s.Vector()
		var top uint64
		var best int64
		for it, c := range v {
			if c > best {
				best, top = c, it
			}
		}
		return top, float64(best) / float64(s.Len())
	}

	zipf, _ := Lookup("zipf")
	if _, share := maxShare(zipf.Generate(testCfg)); share < 0.05 {
		t.Errorf("zipf: top item carries %.3f of the stream, expected a dominant head", share)
	}
	uniform, _ := Lookup("uniform")
	if _, share := maxShare(uniform.Generate(testCfg)); share > 0.05 {
		t.Errorf("uniform: top item carries %.3f of the stream, expected no heavy hitter", share)
	}
	needle, _ := Lookup("needle")
	if _, share := maxShare(needle.Generate(testCfg)); share < 0.45 || share > 0.55 {
		t.Errorf("needle: needle carries %.3f of the stream, want ~0.5", share)
	}

	// Bursty: mean run length far above 1 (clustered arrivals).
	bursty, _ := Lookup("bursty")
	bs := bursty.Generate(testCfg)
	runs := 0
	var prev uint64
	for i, u := range bs.Updates() {
		if i == 0 || u.Item != prev {
			runs++
			prev = u.Item
		}
	}
	if mean := float64(bs.Len()) / float64(runs); mean < 4 {
		t.Errorf("bursty: mean run length %.1f, expected clustered arrivals", mean)
	}

	// Permuted: same frequency vector as zipf, different arrival order.
	perm, _ := Lookup("permuted")
	ps, zs := perm.Generate(testCfg), zipf.Generate(testCfg)
	pv, zv := ps.Vector(), zs.Vector()
	if len(pv) != len(zv) {
		t.Fatalf("permuted: %d distinct items vs zipf's %d", len(pv), len(zv))
	}
	for it, c := range zv {
		if pv[it] != c {
			t.Fatalf("permuted: frequency of %d is %d, zipf has %d", it, pv[it], c)
		}
	}
	if streamsEqual(ps, zs) {
		t.Error("permuted: arrival order identical to zipf (permutation is a no-op)")
	}
}

// TestDeterminismAcrossWorkers: the generated stream does not depend on
// how it is later sharded, and the estimate is bit-identical across
// worker counts (linearity + seed discipline).
func TestDeterminismAcrossWorkers(t *testing.T) {
	g := gfunc.F2Func()
	opts := core.Options{N: testCfg.N, M: 1 << 10, Eps: 0.25, Seed: 13, Lambda: 1.0 / 16}
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			s := gen.Generate(testCfg)
			serial := core.NewOnePass(g, opts)
			serial.Process(s)
			want := serial.Estimate()
			for _, workers := range []int{2, 3, 8} {
				// Regenerate: a fresh stream per worker count proves the
				// generator itself is oblivious to sharding.
				s2 := gen.Generate(testCfg)
				if !streamsEqual(s, s2) {
					t.Fatalf("workers=%d: regenerated stream differs", workers)
				}
				e := core.NewOnePass(g, opts)
				if err := e.ProcessParallel(s2, workers); err != nil {
					t.Fatal(err)
				}
				if got := e.Estimate(); got != want {
					t.Fatalf("workers=%d: estimate %v != serial %v", workers, got, want)
				}
			}
		})
	}
}

// TestBenchBackendsAgreeExactly is the end-to-end acceptance check:
// serial, parallel, sharded (lock-free ring hot path), and daemon (HTTP
// worker/coordinator, over both the JSON and the binary stream
// transport) backends return bit-identical estimates for the same seed,
// for every workload.
func TestBenchBackendsAgreeExactly(t *testing.T) {
	g := gfunc.F2Func()
	opts := core.Options{M: 1 << 10, Eps: 0.25, Seed: 21, Lambda: 1.0 / 16}
	cfg := Config{N: 1 << 12, Items: 200, Length: 8000, Seed: 5}
	combos := []struct{ backend, transport string }{
		{"serial", ""}, {"parallel", ""}, {"sharded", ""},
		{"daemon", "json"}, {"daemon", "stream"},
	}
	for _, gen := range Generators() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			var ests []float64
			for _, combo := range combos {
				res, err := RunBench(BenchSpec{
					Generator: gen, Cfg: cfg, G: g, Opts: opts,
					Backend: combo.backend, Workers: 3, Transport: combo.transport,
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", combo.backend, combo.transport, err)
				}
				if res.Updates != cfg.Length {
					t.Fatalf("%s: %d updates, want %d", combo.backend, res.Updates, cfg.Length)
				}
				if res.Exact <= 0 {
					t.Fatalf("%s: exact %v", combo.backend, res.Exact)
				}
				if res.RelErr > 1.0 {
					t.Errorf("%s: relative error %.3f is implausibly large", combo.backend, res.RelErr)
				}
				if res.Transport != combo.transport {
					t.Fatalf("%s: result transport %q, want %q", combo.backend, res.Transport, combo.transport)
				}
				ests = append(ests, res.Estimate)
			}
			for i := 1; i < len(ests); i++ {
				if ests[i] != ests[0] {
					t.Fatalf("backend %s/%s estimate %v != %s estimate %v",
						combos[i].backend, combos[i].transport, ests[i], combos[0].backend, ests[0])
				}
			}
		})
	}
}

// TestRunBenchValidation covers the error paths.
func TestRunBenchValidation(t *testing.T) {
	if _, err := RunBench(BenchSpec{}); err == nil {
		t.Fatal("RunBench without a generator succeeded")
	}
	gen, _ := Lookup("zipf")
	_, err := RunBench(BenchSpec{Generator: gen, G: gfunc.F2Func(), Backend: "bogus",
		Cfg: Config{N: 1 << 10, Items: 16, Length: 100, Seed: 1}})
	if err == nil {
		t.Fatal("RunBench with unknown backend succeeded")
	}
}

// TestWorkingSetSharedAcrossScenarios: same Config ⇒ same working set,
// so zipf and uniform streams over one Config touch the same items.
func TestWorkingSetSharedAcrossScenarios(t *testing.T) {
	rngA := util.NewSplitMix64(testCfg.Seed)
	a := workingSet(testCfg.withDefaults(), rngA.Fork())
	rngB := util.NewSplitMix64(testCfg.Seed)
	b := workingSet(testCfg.withDefaults(), rngB.Fork())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("working set diverged at %d", i)
		}
	}
}
