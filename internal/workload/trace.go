package workload

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/stream"
	"repro/internal/util"
)

// TraceReplay replays a CSV trace: each row is one turnstile update
// "item,delta" (delta optional, default 1; '#' starts a comment). The
// trace is cycled to fill exactly cfg.Length updates and items are
// folded into the domain with (item + seeded offset) mod cfg.N — the
// offset keeps the replay a function of Config.Seed (two seeds land the
// trace on different hash paths) while preserving the trace's frequency
// structure exactly. With neither Path nor Data set, an embedded
// reference trace — a heavy pair, a mid tier, a deletion churn loop —
// is replayed, keeping the default catalog free of filesystem
// dependencies.
type TraceReplay struct {
	// Path is the CSV file to replay (read on every Generate).
	Path string
	// Data is an in-memory CSV, used when Path is empty.
	Data []byte
}

// defaultTrace is the embedded reference trace: a skewed head (items 7
// and 19), a mid tier, background singletons, and an insert/delete
// churn pair proving turnstile deletions survive the replay path.
const defaultTrace = `# item,delta  (embedded gsum reference trace)
7,9
19,6
7,8
101,3
202,3
303,2
7,7
404,1
505,1
19,5
606,1
707,1
9999,4
9999,-4
808,1
7,6
909,1
19,4
1010,1
1111,1
`

// Name implements Generator.
func (TraceReplay) Name() string { return "trace" }

// Description implements Generator.
func (t TraceReplay) Description() string {
	src := "embedded reference trace"
	if t.Path != "" {
		src = t.Path
	} else if len(t.Data) > 0 {
		src = "in-memory trace"
	}
	return "CSV trace replay (" + src + "), cycled to the stream length"
}

// rows loads and parses the trace source.
func (t TraceReplay) rows() ([]stream.Update, error) {
	data := t.Data
	if t.Path != "" {
		b, err := os.ReadFile(t.Path)
		if err != nil {
			return nil, fmt.Errorf("workload: trace: %w", err)
		}
		data = b
	}
	if len(data) == 0 {
		data = []byte(defaultTrace)
	}
	var rows []stream.Update
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) > 2 {
			return nil, fmt.Errorf("workload: trace line %d: want item[,delta], got %q", i+1, line)
		}
		item, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad item: %w", i+1, err)
		}
		delta := int64(1)
		if len(parts) == 2 {
			delta, err = strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad delta: %w", i+1, err)
			}
		}
		rows = append(rows, stream.Update{Item: item, Delta: delta})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: trace source has no updates")
	}
	return rows, nil
}

// Validate checks that the trace source loads and parses. CLI frontends
// call it before a run so a missing file or a malformed row is an error
// message, not a panic mid-generate.
func (t TraceReplay) Validate() error {
	_, err := t.rows()
	return err
}

// Generate implements Generator. It panics on an unreadable or
// malformed source; frontends gate that with Validate.
func (t TraceReplay) Generate(cfg Config) *stream.Stream {
	cfg = cfg.withDefaults()
	rows, err := t.rows()
	if err != nil {
		panic(err)
	}
	s := stream.New(cfg.N)
	offset := util.NewSplitMix64(cfg.Seed).Uint64n(cfg.N)
	for i := 0; i < cfg.Length; i++ {
		r := rows[i%len(rows)]
		s.Add((r.Item%cfg.N+offset)%cfg.N, r.Delta)
	}
	return s
}

// GenerateTicked implements TickedGenerator: traces carry no tick
// column once cycled, so time is an even slicing.
func (t TraceReplay) GenerateTicked(cfg Config) *TickedStream {
	return evenTicked(t.Generate(cfg), cfg)
}
