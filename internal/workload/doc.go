// Package workload is the scenario-generation subsystem: a catalog of
// deterministic, seeded stream generators with very different
// heavy-hitter structure, so that accuracy and throughput claims can be
// exercised across the traffic shapes a production aggregation service
// actually sees — not just the uniform synthetic stream the early
// benchmarks used.
//
// Every generator implements Generator: a pure function from Config
// (domain, working-set cardinality, stream length, seed) to a
// stream.Stream. Determinism is total — the same Config yields a
// byte-identical stream on every run, every platform, and independent of
// how the stream is later sharded — so workload streams plug directly
// into the exact-equality contracts of internal/engine (serial ==
// parallel == daemon-merged; see internal/core/parallel.go).
//
// The catalog (see Generators):
//
//	zipf      Zipfian / power-law item popularity (α = 1.1): the
//	          canonical heavy-tailed workload g-SUM algorithms target.
//	uniform   every working-set item equally likely: no heavy hitters,
//	          the degenerate case heavy-hitter layers must not distort.
//	needle    needle-in-a-haystack: one dominant key carries half the
//	          stream over a uniform haystack — max-skew heavy-hitter
//	          recall, and the shape of a hot-key cache stampede.
//	bursty    clustered arrival order: items arrive in runs (geometric
//	          lengths), the fast path for run-length batch collapse and
//	          the worst case for per-update candidate tracking.
//	permuted  a Zipf stream replayed in a seeded random permutation:
//	          identical frequency vector to zipf with all arrival
//	          locality destroyed — linear sketches must produce the
//	          same estimates; order-sensitive optimizations must not
//	          change results.
//	drift     concept drift: the Zipf working set rotates through fresh
//	          items mid-stream, so trackers that filled on the old
//	          regime must survive the new one.
//	adversarial  anti-sketch stream: decoy items mined offline to
//	          collide with a victim item in the seeded CountSketch hash
//	          family — the attacker knows the seed. Whole-stream g-SUM
//	          estimates survive; point queries on the victim degrade
//	          (demonstrated in EXPERIMENTS.md's sweep report).
//	flashcrowd  a cold item goes vertical partway through an otherwise
//	          Zipf stream: sudden heavy-hitter emergence.
//	diurnal   Zipf popularity under a day-shaped per-tick volume curve
//	          (trough to peak and back): the flat-stream vector matches
//	          zipf exactly — the tick axis is the point, stressing
//	          windowed estimators whose budgets are fixed per bucket.
//	trace     CSV replay: item,delta lines from a user-supplied file
//	          (or a seeded synthetic trace when no path is given)
//	          through the same harness as every synthetic scenario.
//
// The package also hosts the bench runner (bench.go) behind the
// `gsum bench` subcommand, which drives any generator through the
// serial, sharded-parallel, or daemon (HTTP worker/coordinator)
// ingestion paths and reports throughput and estimate-vs-exact error.
// internal/sweep builds on both, running the full workload x backend x
// eps x workers matrix across worker processes (`gsum sweep`).
//
// Layer: harness layer in ARCHITECTURE.md, upstream of the serial,
// parallel, and daemon ingestion paths (and, in windowed mode, of
// internal/window behind all three).
// Seed discipline: a scenario stream — and its tick stamps in the
// ticked variants — is a pure function of Config, independent of how
// it will be sharded, so workload streams are valid inputs to the
// exact-equality contracts.
package workload
