package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/stream"
)

func tickedCfg() Config {
	return Config{N: 1 << 12, Items: 256, Length: 6000, Seed: 5, Ticks: 48}
}

// TestTickedDeterministicAndMonotone: every generator's ticked stream
// is a pure function of the Config, ticks are non-decreasing, stamped
// one per update, and span at most the configured tick count.
func TestTickedDeterministicAndMonotone(t *testing.T) {
	cfg := tickedCfg()
	for _, g := range Generators() {
		a, b := Ticked(g, cfg), Ticked(g, cfg)
		if !streamsEqual(a.Stream, b.Stream) {
			t.Fatalf("%s: ticked stream not deterministic", g.Name())
		}
		if len(a.Ticks) != len(b.Ticks) || len(a.Ticks) != a.Stream.Len() {
			t.Fatalf("%s: tick count %d for %d updates", g.Name(), len(a.Ticks), a.Stream.Len())
		}
		for i := range a.Ticks {
			if a.Ticks[i] != b.Ticks[i] {
				t.Fatalf("%s: ticks not deterministic at %d", g.Name(), i)
			}
			if i > 0 && a.Ticks[i] < a.Ticks[i-1] {
				t.Fatalf("%s: ticks decrease at %d: %d -> %d", g.Name(), i, a.Ticks[i-1], a.Ticks[i])
			}
			if a.Ticks[i] >= uint64(cfg.Ticks) {
				t.Fatalf("%s: tick %d outside [0,%d)", g.Name(), a.Ticks[i], cfg.Ticks)
			}
		}
	}
}

// TestTickedFrequencyVectorsPreserved: for zipf/uniform/needle the
// ticked stream IS the plain stream plus stamps; for bursty too (the
// run recorder must not disturb the draw sequence); for permuted the
// whole-stream vector still matches the inner stream's.
func TestTickedFrequencyVectorsPreserved(t *testing.T) {
	cfg := tickedCfg()
	for _, g := range Generators() {
		ticked := Ticked(g, cfg)
		if g.Name() == "permuted" {
			inner := Zipf{}.Generate(cfg)
			if len(ticked.Stream.Vector()) != len(inner.Vector()) {
				t.Fatalf("permuted ticked vector cardinality drifted")
			}
			for it, c := range inner.Vector() {
				if ticked.Stream.Vector()[it] != c {
					t.Fatalf("permuted ticked vector differs at item %d", it)
				}
			}
			continue
		}
		if !streamsEqual(ticked.Stream, g.Generate(cfg)) {
			t.Fatalf("%s: ticked stream differs from plain stream", g.Name())
		}
	}
}

// TestBurstyTickedRunsDoNotStraddle: bursty's burst-aligned time axis
// keeps every geometric run inside a single tick — the tick only ever
// changes at an index where a new run begins.
func TestBurstyTickedRunsDoNotStraddle(t *testing.T) {
	cfg := tickedCfg()
	ts := Bursty{}.GenerateTicked(cfg)
	_, runStarts := Bursty{}.generate(cfg)
	isStart := make(map[int]bool, len(runStarts))
	for _, s := range runStarts {
		isStart[s] = true
	}
	for i := 1; i < len(ts.Ticks); i++ {
		if ts.Ticks[i] != ts.Ticks[i-1] && !isStart[i] {
			t.Fatalf("tick boundary at %d splits a burst (ticks %d -> %d)", i, ts.Ticks[i-1], ts.Ticks[i])
		}
	}
}

// TestPermutedTickedPerTickVectors: the within-tick permutation must
// preserve every per-tick frequency vector of the inner stream — the
// windowed form of the order-insensitivity pin.
func TestPermutedTickedPerTickVectors(t *testing.T) {
	cfg := tickedCfg()
	perm := PermutedReplay{}.GenerateTicked(cfg)
	inner := Ticked(Zipf{}, cfg)
	if perm.Stream.Len() != inner.Stream.Len() {
		t.Fatalf("length drift: %d vs %d", perm.Stream.Len(), inner.Stream.Len())
	}
	perTick := func(ts *TickedStream) map[uint64]stream.Vector {
		out := make(map[uint64]stream.Vector)
		for i, u := range ts.Stream.Updates() {
			v := out[ts.Ticks[i]]
			if v == nil {
				v = make(stream.Vector)
				out[ts.Ticks[i]] = v
			}
			v[u.Item] += u.Delta
		}
		return out
	}
	pv, iv := perTick(perm), perTick(inner)
	if len(pv) != len(iv) {
		t.Fatalf("tick segment count drift: %d vs %d", len(pv), len(iv))
	}
	for tick, v := range iv {
		for it, c := range v {
			if pv[tick][it] != c {
				t.Fatalf("tick %d item %d: %d vs %d", tick, it, pv[tick][it], c)
			}
		}
	}
	// And the permutation must actually permute something within ticks.
	same := true
	for i, u := range perm.Stream.Updates() {
		if inner.Stream.Updates()[i] != u {
			same = false
			break
		}
	}
	if same {
		t.Fatal("permuted ticked stream equals the inner stream update for update")
	}
}

// TestWindowedBenchBackendsAgreeExactly is the windowed form of the
// three-backend equality: serial, sharded parallel (several worker
// counts), and the in-process gsumd window-backend topology must
// produce bit-identical windowed estimates on the same ticked scenario
// — for every generator in the catalog, so a new scenario cannot land
// without joining the windowed contract.
func TestWindowedBenchBackendsAgreeExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up daemons")
	}
	g := gfunc.F2Func()
	for _, gen := range Generators() {
		spec := BenchSpec{
			Generator: gen,
			Cfg:       Config{N: 1 << 10, Items: 128, Length: 4000, Seed: 3, Ticks: 32},
			G:         g,
			Opts:      core.Options{M: 1 << 10, Eps: 0.25, Seed: 11, Lambda: 1.0 / 16},
			Window:    8,
		}
		serial := spec
		serial.Backend = "serial"
		want, err := RunBench(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", gen.Name(), err)
		}
		if want.Window != 8 || want.LastTick == 0 {
			t.Fatalf("%s: windowed result not populated: %+v", gen.Name(), want)
		}
		for _, workers := range []int{2, 3} {
			par := spec
			par.Backend, par.Workers = "parallel", workers
			got, err := RunBench(par)
			if err != nil {
				t.Fatalf("%s parallel-%d: %v", gen.Name(), workers, err)
			}
			if got.Estimate != want.Estimate {
				t.Fatalf("%s parallel-%d estimate %v != serial %v", gen.Name(), workers, got.Estimate, want.Estimate)
			}
		}
		for _, transport := range []string{"json", "stream"} {
			dm := spec
			dm.Backend, dm.Workers, dm.Transport = "daemon", 2, transport
			got, err := RunBench(dm)
			if err != nil {
				t.Fatalf("%s daemon/%s: %v", gen.Name(), transport, err)
			}
			if got.Estimate != want.Estimate {
				t.Fatalf("%s daemon/%s estimate %v != serial %v", gen.Name(), transport, got.Estimate, want.Estimate)
			}
			if got.StaleTicks != want.StaleTicks {
				t.Fatalf("%s daemon/%s stale %d != serial %d", gen.Name(), transport, got.StaleTicks, want.StaleTicks)
			}
		}
	}
}

// TestWindowedBenchForgets: with a window much shorter than the
// stream, the windowed exact is far below the whole-stream exact, and
// the estimate tracks the windowed exact.
func TestWindowedBenchForgets(t *testing.T) {
	g := gfunc.F2Func()
	spec := BenchSpec{
		Generator: Zipf{},
		Cfg:       Config{N: 1 << 10, Items: 128, Length: 8000, Seed: 9, Ticks: 64},
		G:         g,
		Opts:      core.Options{M: 1 << 10, Eps: 0.25, Seed: 11, Lambda: 1.0 / 16},
		Backend:   "serial",
		Window:    4,
	}
	res, err := RunBench(spec)
	if err != nil {
		t.Fatal(err)
	}
	whole := Zipf{}.Generate(spec.Cfg.withDefaults()).Vector().Sum(g.Eval)
	if res.Exact >= whole/2 {
		t.Fatalf("windowed exact %v not much below whole-stream exact %v", res.Exact, whole)
	}
	if res.RelErr > 0.5 {
		t.Fatalf("windowed estimate rel err %.3f implausibly high (estimate %v vs exact %v; stale %d)",
			res.RelErr, res.Estimate, res.Exact, res.StaleTicks)
	}
}
