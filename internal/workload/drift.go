package workload

import (
	"fmt"

	"repro/internal/stream"
	"repro/internal/util"
)

// Drift is the concept-drift scenario: the stream is cut into tick
// segments and both the popularity law and the item identities move as
// time passes. Segment t of T draws from a Zipf distribution whose
// exponent interpolates linearly from StartAlpha to EndAlpha, and the
// rank-to-item mapping rotates through the working set, so yesterday's
// heavy hitters decay into the tail while fresh items take the head.
// Sketches sized for a stationary skew see both their candidate set and
// their tail mass shift under them — the workload a static heavy-hitter
// snapshot ages worst on.
type Drift struct {
	// StartAlpha and EndAlpha bound the linear skew ramp
	// (defaults 0.8 -> 1.6).
	StartAlpha, EndAlpha float64
	// RotateFrac is the fraction of the working set the head rotates
	// through over the whole stream (default 1.0: a full lap).
	RotateFrac float64
}

// Name implements Generator.
func (Drift) Name() string { return "drift" }

// Description implements Generator.
func (d Drift) Description() string {
	sa, ea := d.alphas()
	return fmt.Sprintf("concept drift: zipf alpha ramps %.1f->%.1f while the item head rotates", sa, ea)
}

func (d Drift) alphas() (float64, float64) {
	sa, ea := d.StartAlpha, d.EndAlpha
	if sa <= 0 {
		sa = 0.8
	}
	if ea <= 0 {
		ea = 1.6
	}
	return sa, ea
}

func (d Drift) rotateFrac() float64 {
	if d.RotateFrac <= 0 || d.RotateFrac > 1 {
		return 1.0
	}
	return d.RotateFrac
}

// Generate implements Generator: the ticked stream without its stamps.
func (d Drift) Generate(cfg Config) *stream.Stream {
	s, _ := d.generate(cfg)
	return s
}

// GenerateTicked implements TickedGenerator with the drift's intrinsic
// time axis: one tick per segment, so every per-tick vector is exactly
// one (alpha, rotation) regime.
func (d Drift) GenerateTicked(cfg Config) *TickedStream {
	s, ticks := d.generate(cfg)
	return &TickedStream{Stream: s, Ticks: ticks}
}

// generate builds the drifting stream. Seed discipline matches every
// other generator — working set first, then draws — and the segment
// loop re-derives its CDF per tick, so the stream is a pure function of
// the Config regardless of how it is later sharded.
func (d Drift) generate(cfg Config) (*stream.Stream, []uint64) {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	ticks := make([]uint64, 0, cfg.Length)
	t := int(ticksOrDefault(cfg))
	sa, ea := d.alphas()
	// The head rotates rotateFrac*len(items) positions over T segments.
	lap := d.rotateFrac() * float64(len(items))
	for seg := 0; seg < t; seg++ {
		lo := seg * cfg.Length / t
		hi := (seg + 1) * cfg.Length / t
		if lo == hi {
			continue
		}
		frac := 0.0
		if t > 1 {
			frac = float64(seg) / float64(t-1)
		}
		alpha := sa + (ea-sa)*frac
		rot := int(lap*float64(seg)/float64(t)) % len(items)
		cdf := zipfCDF(len(items), alpha)
		for i := lo; i < hi; i++ {
			rank := sampleCDF(cdf, draw)
			s.Add(items[(rank+rot)%len(items)], 1)
			ticks = append(ticks, uint64(seg))
		}
	}
	return s, ticks
}
