package workload

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/window"
)

// The bench runner behind `gsum bench`: drive one scenario through one
// ingestion backend, measure wall-clock throughput, and score the
// estimate against the exact g-SUM. The backends cover the deployment
// shapes of the repository — in-process serial, in-process chunk-sharded
// parallel, the lock-free ring-fed sharded hot path, and the gsumd
// worker/coordinator HTTP topology (spun up in-process on loopback
// listeners, so a single `gsum bench -backend daemon` run exercises the
// full distributed path end to end). Every estimator — serial,
// per-shard, or behind a daemon — is resolved through the backend
// registry from ONE Spec, so the topologies are provably configured
// identically (same Spec fingerprint).

// Backends lists the ingestion topologies RunBench accepts.
var Backends = []string{"serial", "parallel", "sharded", "daemon"}

// BenchSpec configures one bench run.
type BenchSpec struct {
	// Generator is the scenario to run.
	Generator Generator
	// Cfg parameterizes the generator.
	Cfg Config
	// G is the catalog function whose g-SUM is estimated.
	G gfunc.Func
	// Opts configures the one-pass estimator. Opts.N is overridden with
	// Cfg.N so the estimator and stream always agree on the domain.
	Opts core.Options
	// Backend is one of Backends ("serial", "parallel", "sharded",
	// "daemon").
	Backend string
	// Workers is the shard count for the parallel, sharded, and daemon
	// backends (< 1 means GOMAXPROCS in-process, 1 worker daemon for
	// daemon).
	Workers int
	// PushBatch is the updates-per-request size for the daemon backend
	// (0 = engine.DefaultBatchSize).
	PushBatch int
	// Transport selects how the daemon backend ships updates: "json"
	// (the default; one POST /v1/ingest per batch) or "stream" (one
	// persistent binary /v1/stream connection per worker, framed batches
	// with per-frame acks). Either way the pushing goes through the
	// async daemon.Pusher, so the comparison isolates the wire format.
	Transport string
	// Window, when positive, switches the run to sliding-window mode:
	// the scenario stream is generated with a tick dimension (Ticked;
	// Cfg.Ticks sets the stream's tick span) and the estimate covers
	// only the last Window ticks, through the registry's window kind on
	// every backend. Exact ground truth is the g-SUM over the trailing
	// window's frequency vector.
	Window int
	// WindowK is the exponential-histogram capacity (0 = window.DefaultK).
	WindowK int
}

// BenchResult reports one bench run.
type BenchResult struct {
	Workload      string
	Backend       string
	Workers       int
	Updates       int
	Distinct      int
	GenElapsed    time.Duration
	Elapsed       time.Duration // ingest + estimate, excluding generation
	UpdatesPerSec float64
	Exact         float64
	Estimate      float64
	RelErr        float64
	SpaceBytes    int
	// Transport is the daemon backend's wire transport ("json" or
	// "stream"; empty for in-process backends).
	Transport string
	// Windowed-mode extras: the window length (0 for whole-stream runs),
	// the final tick of the stream, and how many ticks beyond the window
	// the estimate still included (bounded by the histogram's documented
	// stale bound).
	Window     int
	LastTick   uint64
	StaleTicks uint64
}

// resultTransport is the normalized transport for a BenchResult: set
// only for the daemon backend, where a wire format was actually used.
func (s BenchSpec) resultTransport() string {
	if s.Backend != "daemon" {
		return ""
	}
	tr, _ := s.transport()
	return tr
}

// transport normalizes and validates BenchSpec.Transport.
func (s BenchSpec) transport() (string, error) {
	switch s.Transport {
	case "", "json":
		return "json", nil
	case "stream":
		return "stream", nil
	}
	return "", fmt.Errorf("workload: unknown transport %q (json, stream)", s.Transport)
}

// spec assembles the one backend.Spec a run resolves everything
// through: the serial estimator, every parallel shard, and every daemon
// in the topology. Whole-stream runs open the onepass kind (or the
// parallel kind when sharding in-process); windowed runs open the
// window kind.
func (s BenchSpec) spec(n uint64) backend.Spec {
	opts := s.Opts
	opts.N = n
	sp := backend.Spec{Kind: backend.KindOnePass, G: s.G.Name(), Options: opts}
	if s.Window > 0 {
		sp.Kind = backend.KindWindow
		sp.Window = window.Config{W: uint64(s.Window), K: s.WindowK}
	}
	return sp
}

// RunBench generates the scenario stream, ingests it through the
// requested backend, and returns throughput plus estimate-vs-exact
// accuracy. Determinism contract: for a fixed (Generator, Cfg, G, Opts),
// the Estimate is identical across all three backends and any worker
// count, as long as the candidate trackers stay within capacity (see
// internal/core/parallel.go) — `gsum bench` is therefore also an
// end-to-end check of the serial/parallel/distributed equality.
func RunBench(spec BenchSpec) (BenchResult, error) {
	if spec.Generator == nil {
		return BenchResult{}, fmt.Errorf("workload: bench needs a generator")
	}
	if spec.Window > 0 {
		return runWindowedBench(spec)
	}
	cfg := spec.Cfg.withDefaults()
	genStart := time.Now()
	s := spec.Generator.Generate(cfg)
	genElapsed := time.Since(genStart)

	v := s.Vector()
	exact := v.Sum(spec.G.Eval)

	sp := spec.spec(s.N())

	var est float64
	var space int
	var elapsed time.Duration
	workers := 1
	switch spec.Backend {
	case "", "serial":
		spec.Backend = "serial"
		start := time.Now()
		e, err := backend.Open(sp)
		if err != nil {
			return BenchResult{}, err
		}
		if err := backend.Process(e, s); err != nil {
			return BenchResult{}, err
		}
		elapsed = time.Since(start)
		est, space = e.Estimate(), e.SpaceBytes()
	case "parallel":
		workers = engine.Workers(spec.Workers)
		psp := sp
		psp.Kind = backend.KindParallel
		psp.Workers = spec.Workers
		start := time.Now()
		e, err := backend.Open(psp)
		if err != nil {
			return BenchResult{}, err
		}
		if err := backend.Process(e, s); err != nil {
			return BenchResult{}, err
		}
		elapsed = time.Since(start)
		est, space = e.Estimate(), e.SpaceBytes()
	case "sharded":
		workers = engine.Workers(spec.Workers)
		psp := sp
		psp.Kind = backend.KindSharded
		psp.Workers = spec.Workers
		start := time.Now()
		e, err := backend.Open(psp)
		if err != nil {
			return BenchResult{}, err
		}
		if err := backend.Process(e, s); err != nil {
			return BenchResult{}, err
		}
		elapsed = time.Since(start)
		est, space = e.Estimate(), e.SpaceBytes()
	case "daemon":
		// One worker daemon unless more were requested; GOMAXPROCS is a
		// shard count, not a daemon count.
		if workers = spec.Workers; workers < 1 {
			workers = 1
		}
		var err error
		est, space, elapsed, err = runDaemonBench(s, spec, sp, workers)
		if err != nil {
			return BenchResult{}, err
		}
	default:
		return BenchResult{}, fmt.Errorf("workload: unknown backend %q (serial, parallel, sharded, daemon)", spec.Backend)
	}

	return BenchResult{
		Workload:      spec.Generator.Name(),
		Backend:       spec.Backend,
		Workers:       workers,
		Updates:       s.Len(),
		Distinct:      v.F0(),
		GenElapsed:    genElapsed,
		Elapsed:       elapsed,
		UpdatesPerSec: float64(s.Len()) / elapsed.Seconds(),
		Exact:         exact,
		Estimate:      est,
		RelErr:        util.RelErr(est, exact),
		SpaceBytes:    space,
		Transport:     spec.resultTransport(),
	}, nil
}

// localDaemon is one in-process gsumd instance on a loopback listener.
type localDaemon struct {
	srv    *http.Server
	client *daemon.Client
	base   string
}

// startDaemon builds a gsumd server for the Spec and serves it on
// 127.0.0.1:0 (kernel-assigned port).
func startDaemon(sp backend.Spec) (*localDaemon, error) {
	s, err := daemon.NewServer(sp)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	return &localDaemon{srv: srv, client: daemon.NewClient(base, nil), base: base}, nil
}

func (d *localDaemon) close() { _ = d.srv.Close() }

// runDaemonBench exercises the full distributed topology in-process:
// `workers` worker daemons ingest disjoint contiguous shards of the
// stream over HTTP (/v1/ingest), and a coordinator daemon pulls and
// merges their snapshots (/v1/snapshot → /v1/merge) before answering
// /v1/estimate. Every daemon is built from the SAME Spec, so the merged
// estimate equals the serial one exactly (seed discipline + linearity;
// the /v1/config fingerprint handshake proves the former before any
// snapshot ships). The returned duration covers ingest through
// estimate; daemon startup (listeners, sketch construction) is
// excluded, mirroring how the other backends exclude stream generation.
func runDaemonBench(s *stream.Stream, spec BenchSpec, sp backend.Spec, workers int) (float64, int, time.Duration, error) {
	coord, err := startDaemon(sp)
	if err != nil {
		return 0, 0, 0, err
	}
	defer coord.close()
	ws := make([]*localDaemon, workers)
	urls := make([]string, workers)
	for i := range ws {
		if ws[i], err = startDaemon(sp); err != nil {
			return 0, 0, 0, err
		}
		defer ws[i].close()
		urls[i] = ws[i].base
	}

	batch := spec.PushBatch
	if batch <= 0 {
		batch = engine.DefaultBatchSize
	}
	transport, err := spec.transport()
	if err != nil {
		return 0, 0, 0, err
	}
	ctx := context.Background()
	updates := s.Updates()
	start := time.Now()
	for i, w := range ws {
		lo, hi := engine.Cut(len(updates), workers, i)
		p, err := w.client.NewPusher(ctx, daemon.PusherConfig{
			Stream: transport == "stream", MaxBatch: batch})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("worker %d: %w", i, err)
		}
		pushErr := p.Push(updates[lo:hi])
		if err := p.Close(); err != nil {
			return 0, 0, 0, fmt.Errorf("worker %d: %w", i, err)
		}
		if pushErr != nil {
			return 0, 0, 0, fmt.Errorf("worker %d: %w", i, pushErr)
		}
	}
	if err := coord.client.PullFromContext(ctx, urls); err != nil {
		return 0, 0, 0, err
	}
	resp, err := coord.client.EstimateContext(ctx, url.Values{})
	if err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	est, ok := resp.Value()
	if !ok {
		return 0, 0, 0, fmt.Errorf("workload: daemon estimate response missing numeric estimate: %+v", resp)
	}
	space := 0
	if info, err := coord.client.ConfigContext(ctx); err == nil {
		space = info.SpaceBytes
	}
	return est, space, elapsed, nil
}

// --- windowed mode ---------------------------------------------------------

// runWindowedBench is the sliding-window variant of RunBench: the
// scenario stream gains a tick dimension (Ticked), every backend opens
// the registry's window kind (serial, one per shard, or behind gsumd
// with /v1/advance), and the estimate is scored against the exact g-SUM
// over the trailing Window ticks. The determinism contract carries
// over: bucket structure is a pure function of the tick sequence, so
// serial, parallel, and daemon windowed estimates are bit-identical
// (same tracker-capacity caveat as whole-stream runs).
func runWindowedBench(spec BenchSpec) (BenchResult, error) {
	cfg := spec.Cfg.withDefaults()
	genStart := time.Now()
	ts := Ticked(spec.Generator, cfg)
	genElapsed := time.Since(genStart)
	last := ts.LastTick()
	w := uint64(spec.Window)

	wv := ts.WindowVector(w)
	exact := wv.Sum(spec.G.Eval)

	sp := spec.spec(ts.Stream.N())

	var est float64
	var space int
	var stale uint64
	var elapsed time.Duration
	workers := 1
	switch spec.Backend {
	case "", "serial":
		spec.Backend = "serial"
		start := time.Now()
		e, win, err := openWindowed(sp)
		if err != nil {
			return BenchResult{}, err
		}
		ingestTicked(e, win, ts, 0, ts.Stream.Len())
		win.Advance(last)
		est, space, stale = e.Estimate(), e.SpaceBytes(), win.Stale()
		elapsed = time.Since(start)
	case "parallel":
		workers = engine.Workers(spec.Workers)
		start := time.Now()
		n := ts.Stream.Len()
		if workers > n && n > 0 {
			workers = n
		}
		shards := make([]backend.Estimator, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				e, win, err := openWindowed(sp)
				if err == nil {
					lo, hi := engine.Cut(n, workers, i)
					ingestTicked(e, win, ts, lo, hi)
					win.Advance(last)
				}
				shards[i], errs[i] = e, err
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return BenchResult{}, err
			}
		}
		for i := 1; i < workers; i++ {
			if err := backend.Merge(shards[0], shards[i]); err != nil {
				return BenchResult{}, err
			}
		}
		est, space = shards[0].Estimate(), shards[0].SpaceBytes()
		stale = shards[0].(backend.Windowed).Stale()
		elapsed = time.Since(start)
	case "sharded":
		// The sharded hot path carries no tick clock through its rings;
		// windowed runs need the ticked ingest loop, so the combination is
		// rejected rather than silently ignoring the window.
		return BenchResult{}, fmt.Errorf("workload: the sharded backend does not support windowed runs (use serial, parallel, or daemon)")
	case "daemon":
		if workers = spec.Workers; workers < 1 {
			workers = 1
		}
		var err error
		est, space, stale, elapsed, err = runWindowedDaemonBench(ts, spec, sp, workers)
		if err != nil {
			return BenchResult{}, err
		}
	default:
		return BenchResult{}, fmt.Errorf("workload: unknown backend %q (serial, parallel, sharded, daemon)", spec.Backend)
	}

	return BenchResult{
		Workload:      spec.Generator.Name(),
		Backend:       spec.Backend,
		Workers:       workers,
		Updates:       ts.Stream.Len(),
		Distinct:      wv.F0(),
		GenElapsed:    genElapsed,
		Elapsed:       elapsed,
		UpdatesPerSec: float64(ts.Stream.Len()) / elapsed.Seconds(),
		Exact:         exact,
		Estimate:      est,
		RelErr:        util.RelErr(est, exact),
		SpaceBytes:    space,
		Transport:     spec.resultTransport(),
		Window:        spec.Window,
		LastTick:      last,
		StaleTicks:    stale,
	}, nil
}

// openWindowed opens the window kind and returns both faces of it: the
// unified Estimator and the Windowed clock capability.
func openWindowed(sp backend.Spec) (backend.Estimator, backend.Windowed, error) {
	e, err := backend.Open(sp)
	if err != nil {
		return nil, nil, err
	}
	win, ok := e.(backend.Windowed)
	if !ok {
		return nil, nil, fmt.Errorf("workload: kind %q has no tick clock", sp.Kind)
	}
	return e, win, nil
}

// ingestTicked feeds updates [lo, hi) of a ticked stream into the
// estimator, advancing the clock at each tick boundary and batching
// every run of equal-tick updates through the amortized batch path.
func ingestTicked(e backend.Estimator, win backend.Windowed, ts *TickedStream, lo, hi int) {
	updates := ts.Stream.Updates()
	_ = ts.EachRun(lo, hi, func(lo, hi int, tick uint64) error {
		win.Advance(tick)
		e.UpdateBatch(updates[lo:hi])
		return nil
	})
}

// runWindowedDaemonBench drives the windowed distributed topology:
// window-kind worker daemons absorb tick-stamped shards (advancing
// their clocks via /v1/advance between tick runs), every clock is
// synchronized to the final tick, and the coordinator pull-merges the
// worker windows before answering /v1/estimate.
func runWindowedDaemonBench(ts *TickedStream, spec BenchSpec, sp backend.Spec, workers int) (float64, int, uint64, time.Duration, error) {
	coord, err := startDaemon(sp)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer coord.close()
	ws := make([]*localDaemon, workers)
	urls := make([]string, workers)
	for i := range ws {
		if ws[i], err = startDaemon(sp); err != nil {
			return 0, 0, 0, 0, err
		}
		defer ws[i].close()
		urls[i] = ws[i].base
	}

	batch := spec.PushBatch
	if batch <= 0 {
		batch = engine.DefaultBatchSize
	}
	transport, err := spec.transport()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	ctx := context.Background()
	updates := ts.Stream.Updates()
	last := ts.LastTick()
	start := time.Now()
	for i, wkr := range ws {
		lo, hi := engine.Cut(len(updates), workers, i)
		p, err := wkr.client.NewPusher(ctx, daemon.PusherConfig{
			Stream: transport == "stream", MaxBatch: batch})
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("worker %d: %w", i, err)
		}
		// The clock and the data ride different channels (POST
		// /v1/advance vs the push transport), so every Advance is
		// preceded by a Flush: all updates of the previous tick run must
		// be applied before the clock moves, or the daemon would stamp
		// them into the wrong tick. This is the async-Pusher analogue of
		// ingestTicked's strict advance/ingest interleaving.
		err = ts.EachRun(lo, hi, func(lo, hi int, tick uint64) error {
			if err := p.Flush(); err != nil {
				return err
			}
			if _, err := wkr.client.AdvanceContext(ctx, tick); err != nil {
				return err
			}
			return p.Push(updates[lo:hi])
		})
		if cerr := p.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			_, err = wkr.client.AdvanceContext(ctx, last)
		}
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("worker %d: %w", i, err)
		}
	}
	if _, err := coord.client.AdvanceContext(ctx, last); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := coord.client.PullFromContext(ctx, urls); err != nil {
		return 0, 0, 0, 0, err
	}
	resp, err := coord.client.EstimateContext(ctx, url.Values{})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	elapsed := time.Since(start)
	est, ok := resp.Value()
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("workload: daemon estimate response missing numeric estimate: %+v", resp)
	}
	stale := uint64(0)
	if resp.StaleTicks != nil {
		stale = *resp.StaleTicks
	}
	space := 0
	if info, err := coord.client.Config(); err == nil {
		space = info.SpaceBytes
	}
	return est, space, stale, elapsed, nil
}
