package workload

import (
	"fmt"

	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/xhash"
)

// Adversarial is the anti-sketch scenario: it re-derives the bucket and
// sign hash functions a CountSketch seeded with SketchSeed would draw
// (the construction in internal/sketch.NewCountSketch is a pure
// function of the seed, which is exactly the property this attack
// weaponizes), picks a victim item, and then scans the domain for
// decoys that collide with the victim — same bucket, same sign — in
// each row. The decoys carry a large share of the stream, so every row
// counter the victim hashes into is polluted and the median point query
// for the victim is driven far from its true frequency. Against a
// sketch with a different seed the stream is just another skewed
// workload; against the seeded one it is the worst case the paper's
// randomized guarantees exclude only with probability delta.
type Adversarial struct {
	// SketchSeed is the Options.Seed of the CountSketch under attack
	// (0 = cfg.Seed*7, the sketch-seed convention of `gsum bench` and
	// `gsum sweep`).
	SketchSeed uint64
	// Rows and Buckets mirror the target sketch's dimensions
	// (0 = the countsketch kind's defaults: 5 rows, 1024 buckets).
	Rows    int
	Buckets uint64
	// CollidersPerRow is how many decoys the scan keeps per row
	// (default 8; fewer if the domain runs dry).
	CollidersPerRow int
}

// Name implements Generator.
func (Adversarial) Name() string { return "adversarial" }

// Description implements Generator.
func (a Adversarial) Description() string {
	return fmt.Sprintf("anti-sketch: decoys colliding with a victim in all %d CountSketch rows", a.rows())
}

func (a Adversarial) rows() int {
	if a.Rows <= 0 {
		return 5
	}
	return a.Rows
}

func (a Adversarial) buckets() uint64 {
	if a.Buckets == 0 {
		return 1 << 10
	}
	return a.Buckets
}

func (a Adversarial) collidersPerRow() int {
	if a.CollidersPerRow <= 0 {
		return 8
	}
	return a.CollidersPerRow
}

func (a Adversarial) sketchSeed(cfg Config) uint64 {
	if a.SketchSeed != 0 {
		return a.SketchSeed
	}
	return cfg.Seed * 7
}

// Colliders re-derives the target sketch's hash family and returns the
// victim plus the per-row decoy sets (flattened, deduplicated). It is
// exported to tests, which verify that every decoy really shares the
// victim's (bucket, sign) in its row of a CountSketch opened from the
// same seed.
func (a Adversarial) Colliders(cfg Config) (victim uint64, decoys []uint64) {
	cfg = cfg.withDefaults()
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	victim = items[0]

	// Mirror sketch.NewCountSketch's draw order exactly: one root rng
	// from the sketch seed, then per row a bucket family fork followed
	// by a sign family fork.
	srng := util.NewSplitMix64(a.sketchSeed(cfg))
	rows := a.rows()
	buckets := make([]*xhash.Buckets, rows)
	signs := make([]*xhash.Sign, rows)
	for j := 0; j < rows; j++ {
		buckets[j] = xhash.NewBuckets(2, a.buckets(), srng.Fork())
		signs[j] = xhash.NewSign(4, srng.Fork())
	}

	seen := map[uint64]bool{victim: true}
	for j := 0; j < rows; j++ {
		vb, vs := buckets[j].Hash(victim), signs[j].Hash(victim)
		found := 0
		for x := uint64(0); x < cfg.N && found < a.collidersPerRow(); x++ {
			if seen[x] {
				continue
			}
			if buckets[j].Hash(x) == vb && signs[j].Hash(x) == vs {
				seen[x] = true
				decoys = append(decoys, x)
				found++
			}
		}
	}
	return victim, decoys
}

// Generate implements Generator. The victim carries ~5% of the stream,
// the decoys split ~45%, and the rest is uniform background over the
// working set, so the decoys are genuine heavy hitters — removing them
// would change the exact answer, not just the sketch's.
func (a Adversarial) Generate(cfg Config) *stream.Stream {
	cfg = cfg.withDefaults()
	victim, decoys := a.Colliders(cfg)
	rng := util.NewSplitMix64(cfg.Seed)
	items := workingSet(cfg, rng.Fork())
	draw := rng.Fork()
	s := stream.New(cfg.N)
	for i := 0; i < cfg.Length; i++ {
		u := draw.Float64()
		switch {
		case u < 0.05:
			s.Add(victim, 1)
		case u < 0.5 && len(decoys) > 0:
			s.Add(decoys[draw.Uint64n(uint64(len(decoys)))], 1)
		default:
			s.Add(items[draw.Uint64n(uint64(len(items)))], 1)
		}
	}
	return s
}

// GenerateTicked implements TickedGenerator: the attack has no
// intrinsic arrival structure, so time is an even slicing.
func (a Adversarial) GenerateTicked(cfg Config) *TickedStream {
	return evenTicked(a.Generate(cfg), cfg)
}
