package discrete

import (
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func TestNewValidates(t *testing.T) {
	for _, bad := range [][]uint64{
		{1, 8},       // g(0) != 0
		{0, 7},       // g(1) != M'
		{0, 8, 0, 3}, // zero value at x=2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", bad)
				}
			}()
			New(bad, 8)
		}()
	}
	New([]uint64{0, 8, 3, 5}, 8) // valid
}

func TestInTn(t *testing.T) {
	// logN = 4, M' = 64: floor is 16.
	f := New([]uint64{0, 64, 20, 16}, 64)
	if !f.InTn(4) {
		t.Error("all values >= 16 should be in Tn")
	}
	g := New([]uint64{0, 64, 15, 16}, 64)
	if g.InTn(4) {
		t.Error("value 15 < 16 should be outside Tn")
	}
}

func TestInBnNeedsDrop(t *testing.T) {
	// logN = 2: drop threshold 2^8 = 256. A flat function has no drop.
	flat := New([]uint64{0, 300, 300, 300, 300}, 300)
	if flat.InBn(2) {
		t.Error("flat function cannot be in Bn (no drop)")
	}
}

func TestInBnNearRepeatRequired(t *testing.T) {
	// logN = 2: drop 256, rel 1/4. g = [0, 1024, 1, 1024, 1, 1024, ...]:
	// period-2 structure where x with big value and y = 2 nearly repeats:
	// g(x) vs g(x±2) equal. Pairs (x odd big, y even small): |y-x| odd ->
	// big value too. Check it lands in Bn.
	vals := []uint64{0, 1024, 1, 1024, 1, 1024, 1, 1024, 1}
	f := New(vals, 1024)
	if !f.InBn(2) {
		t.Error("periodic big/small alternation should be Bn-like")
	}
	// Break the repetition at one point: now a constrained pair fails.
	vals2 := append([]uint64(nil), vals...)
	vals2[7] = 50 // g(7) no longer ~ g(5)
	g := New(vals2, 1024)
	if g.InBn(2) {
		t.Error("broken repetition should leave Bn")
	}
}

func TestRandomFunctionsAlmostNeverBn(t *testing.T) {
	// Theorem 57's empirical face: random members of GD are essentially
	// never nearly periodic, while a constant fraction is in Tn.
	rng := util.NewSplitMix64(11)
	bn, tn := CountEstimate(16, 64, 2.5, 3000, rng)
	if bn > 0 {
		t.Errorf("found %d Bn members among 3000 random functions; expected ~0", bn)
	}
	if tn == 0 {
		t.Error("Tn fraction should be positive (Lemma 59 family is large)")
	}
}

func TestTheoremBoundGoesNegative(t *testing.T) {
	// The log2 bound on |Bn|/|Tn| must decrease (toward -inf) as M grows
	// with n = 2^(logN) fixed large enough.
	prev := TheoremBoundLogRatio(64, 1<<20, 64)
	for _, m := range []int{128, 256, 512} {
		cur := TheoremBoundLogRatio(m, 1<<20, 64)
		if cur >= prev {
			t.Errorf("bound did not decrease at M=%d: %v >= %v", m, cur, prev)
		}
		prev = cur
	}
	if prev >= 0 {
		t.Errorf("bound at M=512 should be well below 0, got %v", prev)
	}
}

func TestDistinctPairMatchingValuesDistinct(t *testing.T) {
	f := func(raw []uint16, j16 uint16) bool {
		j := uint64(j16%1024) + 1
		var s []uint64
		for _, r := range raw {
			s = append(s, uint64(r%2048)+1)
		}
		w := DistinctPairMatching(s, j)
		seen := make(map[uint64]bool)
		for _, p := range w {
			if seen[p.I] || seen[p.D] || p.I == p.D {
				return false
			}
			seen[p.I] = true
			seen[p.D] = true
			// the pair really is (i, |i-j|)
			var d uint64
			if p.I > j {
				d = p.I - j
			} else {
				d = j - p.I
			}
			if d != p.D {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistinctPairMatchingSizeBound(t *testing.T) {
	// Lemma 61: |W| >= |S|/4 - 1 (distinct S elements, excluding j, j/2).
	rng := util.NewSplitMix64(17)
	for trial := 0; trial < 200; trial++ {
		j := rng.Uint64n(1<<12) + 1
		size := int(rng.Uint64n(200)) + 4
		set := make(map[uint64]struct{}, size)
		for len(set) < size {
			set[rng.Uint64n(1<<13)+1] = struct{}{}
		}
		var s []uint64
		for v := range set {
			s = append(s, v)
		}
		w := DistinctPairMatching(s, j)
		if len(w) < len(s)/4-1 {
			t.Fatalf("matching size %d < |S|/4-1 = %d (|S|=%d, j=%d)",
				len(w), len(s)/4-1, len(s), j)
		}
	}
}
