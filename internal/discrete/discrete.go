package discrete

import (
	"math"

	"repro/internal/util"
)

// Func is a discretized function: Values[x] = g(x) for x in [0, M], with
// Values[0] = 0, Values[1] = M'.
type Func struct {
	Values []uint64 // length M+1
	MPrime uint64
}

// New validates and wraps a value table.
func New(values []uint64, mPrime uint64) Func {
	if len(values) < 2 {
		panic("discrete: need at least domain {0, 1}")
	}
	if values[0] != 0 {
		panic("discrete: g(0) must be 0")
	}
	if values[1] != mPrime {
		panic("discrete: g(1) must be M'")
	}
	for x := 1; x < len(values); x++ {
		if values[x] == 0 {
			panic("discrete: g(x) must be positive for x > 0")
		}
	}
	return Func{Values: values, MPrime: mPrime}
}

// Random samples a uniform element of GD: g(x) uniform in [1, M'] for
// x in [2, M], pinned g(0)=0, g(1)=M'.
func Random(m int, mPrime uint64, rng *util.SplitMix64) Func {
	values := make([]uint64, m+1)
	values[1] = mPrime
	for x := 2; x <= m; x++ {
		values[x] = 1 + rng.Uint64n(mPrime)
	}
	return Func{Values: values, MPrime: mPrime}
}

// M returns the domain bound.
func (f Func) M() int { return len(f.Values) - 1 }

// InTn reports membership in the Lemma 59 witness family: every positive
// value at least M'/log n. Such functions have g(x)/g(y) <= log n for all
// x, y >= 1, so a CountSketch estimate with small relative frequency error
// yields a small relative g-SUM error: approximable in O(log³n log M)
// bits.
func (f Func) InTn(logN float64) bool {
	floor := float64(f.MPrime) / logN
	for x := 1; x < len(f.Values); x++ {
		if float64(f.Values[x]) < floor {
			return false
		}
	}
	return true
}

// InBn reports membership in the discretized nearly periodic class:
//
//  1. ∃ x, y ∈ [M]: g(x) >= (log n)^8 g(y), and
//  2. ∀ x, y ∈ [M] with g(x) >= ½(log n)^8 g(y):
//     |g(x) - g(|y-x|)| < g(x)/log²n, and
//     if x+y <= M, |g(x+y) - g(x)| < g(x)/log²n
//
// (the two offsets are where the turnstile INDEX reduction of
// Proposition 60 lands; |y-x| = 0 and x+y = x cases are vacuous).
func (f Func) InBn(logN float64) bool {
	drop := math.Pow(logN, 8)
	rel := 1 / (logN * logN)
	m := f.M()

	hasDrop := false
	g := func(x int) float64 { return float64(f.Values[x]) }
	// Track min and max over [1, M] for the drop existence check.
	minV, maxV := math.Inf(1), 0.0
	for x := 1; x <= m; x++ {
		v := g(x)
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	hasDrop = maxV >= drop*minV
	if !hasDrop {
		return false
	}
	for x := 1; x <= m; x++ {
		gx := g(x)
		for y := 1; y <= m; y++ {
			if y == x {
				continue
			}
			if gx < drop/2*g(y) {
				continue
			}
			d := x - y
			if d < 0 {
				d = -d
			}
			if d >= 1 && math.Abs(gx-g(d)) >= rel*gx {
				return false
			}
			if x+y <= m && math.Abs(g(x+y)-gx) >= rel*gx {
				return false
			}
		}
	}
	return true
}

// CountEstimate Monte-Carlo samples GD and returns the observed fractions
// of Bn-like and Tn functions. For laptop-scale parameters the Bn fraction
// is (usually exactly) zero — which is Theorem 57's content; the table in
// experiment E13 reports the counts alongside the analytic bound.
func CountEstimate(m int, mPrime uint64, logN float64, samples int, rng *util.SplitMix64) (bn, tn int) {
	for i := 0; i < samples; i++ {
		f := Random(m, mPrime, rng)
		if f.InBn(logN) {
			bn++
		}
		if f.InTn(logN) {
			tn++
		}
	}
	return bn, tn
}

// TheoremBoundLogRatio returns log2 of the Theorem 57 bound on |Bn|/|Tn|,
// combining Lemma 62's upper bound on |Bn| (in the proof's final form,
// with the Lemma 61 matching of size W = M/8 - 1 forcing W coordinates
// into windows of width 2M'/log²n)
//
//	|Bn| <= (M·M') · 2^M · M'^{M-W} · (2M'/log²n)^W
//
// with Lemma 59's lower bound |Tn| >= (M' - M'/log n)^{M-1}. The exponent
// is -Ω(M log log n): it turns negative once log2 log n exceeds ~4.5 and
// then decreases linearly in M.
func TheoremBoundLogRatio(m int, mPrime uint64, logN float64) float64 {
	mp := float64(mPrime)
	mf := float64(m)
	w := mf/8 - 1
	if w < 0 {
		w = 0
	}
	logBn := math.Log2(mf) + math.Log2(mp) + mf + mf*math.Log2(mp) +
		w*(1-2*math.Log2(logN))
	logTn := (mf - 1) * math.Log2(mp-mp/logN)
	return logBn - logTn
}

// Pair is a (value, partner) pair from the Lemma 61 matching.
type Pair struct {
	I, D uint64 // the pair (i, |i - j|)
}

// DistinctPairMatching implements Lemma 61: given S ⊆ [M] and j, find a
// set W of pairs (i, |i-j|) with i ∈ S such that ALL values appearing in
// W (both coordinates) are distinct, with |W| >= |S|/4 - 1. The
// construction follows the proof: build the functional graph i -> |i-j|
// on S \ {j, j/2}, break in-degree-2 vertices (preferring to delete
// cyclic edges), and take a maximal matching on the remaining paths.
func DistinctPairMatching(s []uint64, j uint64) []Pair {
	// candidate edges
	type edge struct{ from, to uint64 }
	var edges []edge
	inDeg := make(map[uint64][]int) // to -> edge indices
	seen := make(map[uint64]bool)
	for _, i := range s {
		if i == j || 2*i == j || seen[i] {
			continue
		}
		seen[i] = true
		var d uint64
		if i > j {
			d = i - j
		} else {
			d = j - i
		}
		if d == 0 || d == i {
			continue
		}
		edges = append(edges, edge{from: i, to: d})
		inDeg[d] = append(inDeg[d], len(edges)-1)
	}
	// Break in-degree-2 targets: delete one incident edge, preferring an
	// edge that forms a 2-cycle (from < to per the proof's tie-break).
	deleted := make([]bool, len(edges))
	for _, idxs := range inDeg {
		if len(idxs) < 2 {
			continue
		}
		// delete all but one
		kept := false
		for _, ei := range idxs {
			if !kept {
				kept = true
				continue
			}
			deleted[ei] = true
		}
	}
	// Greedy maximal matching on remaining edges with globally distinct
	// values.
	used := make(map[uint64]bool)
	var out []Pair
	for ei, e := range edges {
		if deleted[ei] || used[e.from] || used[e.to] {
			continue
		}
		used[e.from] = true
		used[e.to] = true
		out = append(out, Pair{I: e.from, D: e.to})
	}
	return out
}
