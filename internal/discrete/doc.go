// Package discrete implements Appendix D.4: the discretized model of the
// function class and the counting argument (Theorem 57) showing that
// nearly periodic functions are vanishingly rare.
//
// The model fixes M, M' ∈ poly(n) and considers
//
//	GD = { g : [M]0 → [M']0 : g(0) = 0, g(1) = M', g(x) > 0 for x > 0 }.
//
// Bn ⊆ GD is the discretized analogue of the nearly periodic functions:
// (1) some pair has a (log n)^8 drop, and (2) every pair with at least a
// ½(log n)^8 drop nearly repeats at the reduction's offsets. Tn contains
// the witness family of Lemma 59 (functions with minimum value at least
// M'/log n, all of which are approximable in polylog space because every
// point query error is a relative error). Theorem 57: |Bn|/|Tn| <=
// 2^{-Ω(M log log n)}.
//
// Layer: satellite off the spine in ARCHITECTURE.md (lower-bound
// machinery behind the discretized-model experiments).
// Seed discipline: deterministic given explicit seeds; no mergeable
// sketch state.
package discrete
