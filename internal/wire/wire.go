package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Version is the current layout version stamped into every header.
const Version uint16 = 1

// Fingerprint folds v into a running 64-bit digest h. It is a
// splittable-mix step (multiply-xorshift), order sensitive, used to
// digest hash-function coefficients and dimensions into the header
// fingerprint. Start from 0 and fold every value that must coincide
// between sender and receiver.
func Fingerprint(h, v uint64) uint64 {
	h ^= v
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// FingerprintFloat folds a float64 into the digest by bit pattern.
func FingerprintFloat(h uint64, f float64) uint64 {
	return Fingerprint(h, math.Float64bits(f))
}

// FingerprintString folds a string (length, then bytes) into the digest.
func FingerprintString(h uint64, s string) uint64 {
	h = Fingerprint(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = Fingerprint(h, uint64(s[i]))
	}
	return h
}

// Writer accumulates a wire payload. The zero value is ready to use;
// writes cannot fail (bytes.Buffer panics only on OOM).
type Writer struct {
	buf bytes.Buffer
}

// Header writes the standard magic/version/fingerprint header.
func (w *Writer) Header(magic uint32, fingerprint uint64) {
	w.U32(magic)
	w.U16(Version)
	w.U64(fingerprint)
}

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { _ = binary.Write(&w.buf, binary.BigEndian, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { _ = binary.Write(&w.buf, binary.BigEndian, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { _ = binary.Write(&w.buf, binary.BigEndian, v) }

// I64 appends a big-endian int64.
func (w *Writer) I64(v int64) { _ = binary.Write(&w.buf, binary.BigEndian, v) }

// F64 appends a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// I64s appends a u32 count followed by the values.
func (w *Writer) I64s(vs []int64) {
	w.U32(uint32(len(vs)))
	_ = binary.Write(&w.buf, binary.BigEndian, vs)
}

// U64s appends a u32 count followed by the values.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	_ = binary.Write(&w.buf, binary.BigEndian, vs)
}

// Blob appends a u32 length followed by the raw bytes, framing a nested
// payload (e.g. one recursive level's sketch inside the level list).
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf.Write(b)
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// Reader decodes a wire payload. It is sticky-error: after the first
// failure every read returns a zero value and Err reports the cause, so
// decoders can read a whole layout and check once.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of bytes not yet consumed.
func (r *Reader) Len() int { return len(r.data) - r.pos }

// fail records the first error.
func (r *Reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// take consumes n bytes, or fails if fewer remain.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Len() < n {
		r.fail("wire: truncated payload: need %d bytes at offset %d, have %d", n, r.pos, r.Len())
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Header reads and validates the standard header: the magic and the
// fingerprint must match, and the version must be known.
func (r *Reader) Header(magic uint32, fingerprint uint64) error {
	m := r.U32()
	v := r.U16()
	fp := r.U64()
	if r.err != nil {
		return r.err
	}
	if m != magic {
		r.fail("wire: bad magic %#x (want %#x)", m, magic)
	} else if v != Version {
		r.fail("wire: unsupported version %d (want %d)", v, Version)
	} else if fp != fingerprint {
		r.fail("wire: fingerprint mismatch %#x vs local %#x (different seed or configuration)", fp, fingerprint)
	}
	return r.err
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// count reads a u32 count for elements of elemSize bytes, validating it
// against the remaining payload so corrupt lengths cannot force huge
// allocations. The comparison is done in uint64 so a hostile count can
// neither overflow the product nor go negative on 32-bit platforms.
func (r *Reader) count(elemSize int) int {
	v := r.U32()
	if r.err != nil {
		return 0
	}
	if uint64(v)*uint64(elemSize) > uint64(r.Len()) {
		r.fail("wire: truncated list: %d elements of %d bytes, %d bytes remain", v, elemSize, r.Len())
		return 0
	}
	return int(v)
}

// I64s reads a counted int64 list.
func (r *Reader) I64s() []int64 {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	return out
}

// U64s reads a counted uint64 list.
func (r *Reader) U64s() []uint64 {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// I64sInto reads a counted int64 list of exactly the given length into
// dst (the in-place path for counter rows of known dimensions).
func (r *Reader) I64sInto(dst []int64) {
	n := r.count(8)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.fail("wire: list length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.I64()
	}
}

// Blob reads a length-framed nested payload.
func (r *Reader) Blob() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// Blobs reads a u32 count and that many length-framed blobs, verifying
// the count equals want. It validates the framing of the whole sequence
// before returning, so merge-semantics decoders can check it up front
// and only then start mutating the receiver.
func (r *Reader) Blobs(want int) ([][]byte, error) {
	n := int(r.U32())
	if r.err == nil && n != want {
		r.fail("wire: blob count mismatch %d vs %d", n, want)
	}
	blobs := make([][]byte, want)
	for k := range blobs {
		blobs[k] = r.Blob()
	}
	if r.err != nil {
		return nil, r.err
	}
	return blobs, nil
}
