// Package wire is the shared binary wire format used to ship sketch
// state between processes (workers -> coordinator in the distributed
// g-SUM deployment; see cmd/gsumd).
//
// Every serialized summary starts with the same 14-byte header:
//
//	magic u32 | version u16 | fingerprint u64
//
// followed by type-specific fields, all big endian. The magic names the
// type, the version names the layout, and the fingerprint is a digest of
// the receiver's hash-function coefficients and dimensions: two sketches
// built from the same seed (and configuration) have equal fingerprints,
// so a decode onto a sketch constructed with a different seed fails fast
// instead of silently merging incompatible counter states. Hash
// functions themselves never travel — they are reconstructed
// deterministically from the seed, keeping payloads proportional to the
// counter state only. This is the seed-discipline rule of
// sketch.CountSketch.Merge, promoted to a checked wire invariant.
//
// Decoders must never panic on corrupt input: the Reader is
// sticky-error, validates every length field against the bytes actually
// remaining, and caps allocations accordingly.
//
// Merge-semantics decoders validate headers, fingerprints, and framing
// BEFORE mutating the receiver, and leaf decoders stage the whole
// payload first, so the common failure modes (wrong seed/configuration,
// truncation in transit) never leave a half-merged sketch. The one
// remaining window is byte corruption deep inside a nested blob of a
// multi-level payload that still parses at the outer layers: a decode
// error after some levels applied. Callers that cannot rule that out
// must treat a failed UnmarshalBinary as poisoning the receiver and
// rebuild it (cheap: reconstruct from the seed and replay snapshots).
//
// Layer: substrate in ARCHITECTURE.md — every serialized summary is
// built from this package's header, writer, and sticky-error reader.
// Seed discipline: this package is where the rule becomes checkable —
// fingerprints digest receiver-side hash coefficients and dimensions,
// so decoding onto a mismatched seed or shape fails before any counter
// mutates.
package wire
