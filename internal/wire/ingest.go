package wire

import (
	"fmt"
	"io"

	"repro/internal/stream"
)

// Streaming ingest frames: the binary transport behind gsumd's
// /v1/stream endpoint. Unlike the sketch wire formats in this package,
// ingest frames are transient — they carry raw updates, not summary
// state — but they reuse the same header discipline: every frame is
// stamped with the sender's Spec fingerprint, so a client configured
// against the wrong daemon fails on the first frame, before a single
// update is absorbed.
//
// On-wire layout (everything big endian):
//
//	u32 length                      payload bytes that follow
//	payload:
//	  magic u32 | version u16 | fingerprint u64    (standard header)
//	  seq u64                                      frame sequence number
//	  u32 count | (item u64, delta i64) * count    the update batch
//
// The daemon answers every frame with an ack in the same outer framing:
//
//	u32 length
//	payload:
//	  magic u32 | version u16 | fingerprint u64
//	  seq u64                                      frame being acked
//	  total u64                                    daemon ingest counter
//	  status u16                                   see IngestAck*
//	  u32 msgLen | msg bytes                       error text ("" when OK)
//
// Acks are the durability receipt of the protocol: the daemon writes an
// ack only after the batch is applied under its state lock, so a client
// that has seen ack seq=K knows frames 1..K survive a graceful drain
// (the daemon flushes acks before its final checkpoint). Unacked frames
// are the client's to redeliver, exactly like an unanswered JSON POST.

// Frame magics. "gSIF" = ingest frame, "gSIA" = ingest ack.
const (
	IngestFrameMagic uint32 = 0x67534946 // "gSIF"
	IngestAckMagic   uint32 = 0x67534941 // "gSIA"
)

// Ack statuses.
const (
	// IngestAckOK: the frame's batch is applied; Total is the daemon's
	// ingest counter after it.
	IngestAckOK uint16 = 0
	// IngestAckError: the frame was rejected (bad decode, domain
	// violation, fingerprint drift). The connection closes after an
	// error ack; nothing from the offending frame was applied.
	IngestAckError uint16 = 1
	// IngestAckDraining: the daemon is shutting down. Seq/Total report
	// the last applied frame; frames after it must be redelivered to
	// the restarted daemon.
	IngestAckDraining uint16 = 2
)

// MaxIngestFrameBytes is the default cap on one frame's payload. At 16
// bytes per update it admits batches well past any sensible size while
// keeping a hostile length prefix from forcing a huge allocation.
const MaxIngestFrameBytes = 8 << 20

// MaxIngestAckBytes caps an ack payload: header + seq + total + status
// + framed message. Acks are small; 64 KiB leaves generous room for an
// error string.
const MaxIngestAckBytes = 1 << 16

// IngestAck is one decoded ack frame.
type IngestAck struct {
	// Seq is the frame being acknowledged (for IngestAckDraining, the
	// last frame that was applied).
	Seq uint64
	// Total is the daemon's ingest counter after applying Seq.
	Total uint64
	// Status is one of the IngestAck* constants.
	Status uint16
	// Msg is the daemon's error text for non-OK statuses.
	Msg string
}

// WriteFrame writes a length-prefixed payload to w. It is the outer
// framing shared by ingest frames and acks.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr Writer
	hdr.U32(uint32(len(payload)))
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload from r, rejecting lengths
// beyond maxBytes before allocating. io.EOF is returned as-is when the
// stream ends cleanly between frames (so callers can distinguish a
// clean close from a truncated frame, which surfaces as
// io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader, maxBytes int) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:1]); err != nil {
		return nil, err // io.EOF here = clean end of stream
	}
	if _, err := io.ReadFull(r, lenBuf[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3])
	// Compare in uint64 so a hostile length can neither overflow the
	// conversion nor go negative on 32-bit platforms.
	if uint64(n) > uint64(maxBytes) {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte cap", n, maxBytes)
	}
	payload := make([]byte, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// AppendIngestFrame serializes one ingest frame payload (header, seq,
// batch) — the bytes to hand WriteFrame.
func AppendIngestFrame(fingerprint, seq uint64, updates []stream.Update) []byte {
	var w Writer
	w.Header(IngestFrameMagic, fingerprint)
	w.U64(seq)
	w.U32(uint32(len(updates)))
	for _, u := range updates {
		w.U64(u.Item)
		w.I64(u.Delta)
	}
	return w.Bytes()
}

// UnmarshalIngestFrame decodes an ingest frame payload, verifying the
// header against the receiver's Spec fingerprint. The update count is
// validated against the bytes actually present before any allocation,
// so a corrupt count cannot force a huge slice.
func UnmarshalIngestFrame(payload []byte, fingerprint uint64) (seq uint64, updates []stream.Update, err error) {
	r := NewReader(payload)
	if err := r.Header(IngestFrameMagic, fingerprint); err != nil {
		return 0, nil, err
	}
	seq = r.U64()
	n := r.U32()
	if r.Err() == nil && uint64(n)*16 > uint64(r.Len()) {
		return 0, nil, fmt.Errorf("wire: truncated ingest frame: %d updates of 16 bytes, %d bytes remain", n, r.Len())
	}
	if r.Err() == nil {
		updates = make([]stream.Update, n)
		for i := range updates {
			updates[i] = stream.Update{Item: r.U64(), Delta: r.I64()}
		}
	}
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	if r.Len() != 0 {
		return 0, nil, fmt.Errorf("wire: ingest frame has %d trailing bytes", r.Len())
	}
	return seq, updates, nil
}

// AppendIngestAck serializes one ack payload.
func AppendIngestAck(fingerprint uint64, ack IngestAck) []byte {
	var w Writer
	w.Header(IngestAckMagic, fingerprint)
	w.U64(ack.Seq)
	w.U64(ack.Total)
	w.U16(ack.Status)
	w.Blob([]byte(ack.Msg))
	return w.Bytes()
}

// UnmarshalIngestAck decodes an ack payload, verifying the header
// against the client's Spec fingerprint.
func UnmarshalIngestAck(payload []byte, fingerprint uint64) (IngestAck, error) {
	r := NewReader(payload)
	if err := r.Header(IngestAckMagic, fingerprint); err != nil {
		return IngestAck{}, err
	}
	ack := IngestAck{Seq: r.U64(), Total: r.U64(), Status: r.U16()}
	ack.Msg = string(r.Blob())
	if err := r.Err(); err != nil {
		return IngestAck{}, err
	}
	if r.Len() != 0 {
		return IngestAck{}, fmt.Errorf("wire: ingest ack has %d trailing bytes", r.Len())
	}
	return ack, nil
}
