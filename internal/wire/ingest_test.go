package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/stream"
)

const testFP = 0x1234deadbeef5678

func testBatch() []stream.Update {
	return []stream.Update{
		{Item: 0, Delta: 1},
		{Item: 41, Delta: -3},
		{Item: 1<<63 - 1, Delta: 1 << 40},
		{Item: ^uint64(0), Delta: -(1 << 62)},
	}
}

func TestIngestFrameRoundTrip(t *testing.T) {
	batch := testBatch()
	payload := AppendIngestFrame(testFP, 7, batch)
	seq, got, err := UnmarshalIngestFrame(payload, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("seq = %d, want 7", seq)
	}
	if len(got) != len(batch) {
		t.Fatalf("got %d updates, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("update %d: got %+v, want %+v", i, got[i], batch[i])
		}
	}
}

func TestIngestFrameEmptyBatch(t *testing.T) {
	payload := AppendIngestFrame(testFP, 1, nil)
	seq, got, err := UnmarshalIngestFrame(payload, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || len(got) != 0 {
		t.Fatalf("seq=%d len=%d, want 1, 0", seq, len(got))
	}
}

func TestIngestFrameRejectsFingerprintDrift(t *testing.T) {
	payload := AppendIngestFrame(testFP, 1, testBatch())
	if _, _, err := UnmarshalIngestFrame(payload, testFP+1); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want fingerprint error, got %v", err)
	}
}

func TestIngestFrameRejectsTruncationAndTrailing(t *testing.T) {
	payload := AppendIngestFrame(testFP, 1, testBatch())
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := UnmarshalIngestFrame(payload[:cut], testFP); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := UnmarshalIngestFrame(append(append([]byte{}, payload...), 0xff), testFP); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestIngestFrameRejectsHostileCount(t *testing.T) {
	// A frame claiming 2^32-1 updates with almost no bytes behind it must
	// fail before allocating.
	payload := AppendIngestFrame(testFP, 1, testBatch())
	// The count sits right after header (14 bytes) + seq (8 bytes).
	corrupt := append([]byte{}, payload...)
	for i := 22; i < 26; i++ {
		corrupt[i] = 0xff
	}
	if _, _, err := UnmarshalIngestFrame(corrupt, testFP); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncated error, got %v", err)
	}
}

func TestIngestAckRoundTrip(t *testing.T) {
	for _, ack := range []IngestAck{
		{Seq: 3, Total: 9000, Status: IngestAckOK},
		{Seq: 4, Total: 9000, Status: IngestAckError, Msg: "item 9 outside domain"},
		{Seq: 4, Total: 9000, Status: IngestAckDraining, Msg: "daemon draining"},
	} {
		payload := AppendIngestAck(testFP, ack)
		got, err := UnmarshalIngestAck(payload, testFP)
		if err != nil {
			t.Fatal(err)
		}
		if got != ack {
			t.Fatalf("got %+v, want %+v", got, ack)
		}
	}
}

func TestIngestAckRejectsDriftAndTruncation(t *testing.T) {
	payload := AppendIngestAck(testFP, IngestAck{Seq: 1, Status: IngestAckOK})
	if _, err := UnmarshalIngestAck(payload, testFP^1); err == nil {
		t.Fatal("fingerprint drift accepted")
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := UnmarshalIngestAck(payload[:cut], testFP); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFrameReadWriteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p1 := AppendIngestFrame(testFP, 1, testBatch())
	p2 := AppendIngestFrame(testFP, 2, nil)
	if err := WriteFrame(&buf, p1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, p2); err != nil {
		t.Fatal(err)
	}
	got1, err := ReadFrame(&buf, MaxIngestFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFrame(&buf, MaxIngestFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, p1) || !bytes.Equal(got2, p2) {
		t.Fatal("frame payloads did not round-trip")
	}
	// A clean end-of-stream between frames is io.EOF, not a corruption
	// error.
	if _, err := ReadFrame(&buf, MaxIngestFrameBytes); err != io.EOF {
		t.Fatalf("want io.EOF at clean end, got %v", err)
	}
}

func TestReadFrameRejectsOversizeBeforeAllocating(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB claim, no payload
	if _, err := ReadFrame(&buf, MaxIngestFrameBytes); err == nil ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("want cap error, got %v", err)
	}
}

func TestReadFrameTruncatedMidPayload(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendIngestFrame(testFP, 1, testBatch())
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc), MaxIngestFrameBytes); err != io.ErrUnexpectedEOF {
		t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
	}
	// Truncation inside the length prefix itself is also unexpected.
	if _, err := ReadFrame(bytes.NewReader(trunc[:2]), MaxIngestFrameBytes); err != io.ErrUnexpectedEOF {
		t.Fatalf("want io.ErrUnexpectedEOF in prefix, got %v", err)
	}
}

// FuzzIngestFrameUnmarshal asserts the frame decoder never panics and
// never over-allocates: truncated, corrupted, wrong-magic, and
// hostile-count payloads must all return errors (or succeed harmlessly).
func FuzzIngestFrameUnmarshal(f *testing.F) {
	valid := AppendIngestFrame(testFP, 3, testBatch())
	f.Add(valid)
	for _, cut := range []int{0, 4, 13, 14, 22, 26, len(valid) / 2, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	badMagic := append([]byte{}, valid...)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badCount := append([]byte{}, valid...)
	badCount[22], badCount[23] = 0xff, 0xff
	f.Add(badCount)
	f.Add(AppendIngestAck(testFP, IngestAck{Seq: 1, Msg: "x"}))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, ups, _ := UnmarshalIngestFrame(data, testFP) // must not panic
		if len(ups)*16 > len(data) {
			t.Fatalf("decoded %d updates from %d bytes", len(ups), len(data))
		}
		_, _ = UnmarshalIngestAck(data, testFP) // must not panic
	})
}
