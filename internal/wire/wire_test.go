package wire

import (
	"strings"
	"testing"
)

func TestRoundTripAllFieldTypes(t *testing.T) {
	var w Writer
	w.Header(0x67535543, 12345)
	w.U32(7)
	w.U64(1 << 40)
	w.I64(-9)
	w.F64(3.5)
	w.I64s([]int64{1, -2, 3})
	w.U64s([]uint64{4, 5})
	w.Blob([]byte("nested"))

	r := NewReader(w.Bytes())
	if err := r.Header(0x67535543, 12345); err != nil {
		t.Fatal(err)
	}
	if got := r.U32(); got != 7 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -9 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.I64s(); len(got) != 3 || got[1] != -2 {
		t.Errorf("I64s = %v", got)
	}
	if got := r.U64s(); len(got) != 2 || got[0] != 4 {
		t.Errorf("U64s = %v", got)
	}
	if got := string(r.Blob()); got != "nested" {
		t.Errorf("Blob = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("%d bytes left over", r.Len())
	}
}

func TestHeaderRejections(t *testing.T) {
	var w Writer
	w.Header(0x11223344, 99)
	data := w.Bytes()

	if err := NewReader(data).Header(0x55667788, 99); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	if err := NewReader(data).Header(0x11223344, 100); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("bad fingerprint: %v", err)
	}
	if err := NewReader(data[:5]).Header(0x11223344, 99); err == nil {
		t.Error("truncated header accepted")
	}
	// Unknown version.
	bad := append([]byte(nil), data...)
	bad[4], bad[5] = 0xff, 0xff
	if err := NewReader(bad).Header(0x11223344, 99); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
}

func TestReaderIsStickyAndAllocationCapped(t *testing.T) {
	// A corrupt count far larger than the remaining bytes must error, not
	// allocate.
	var w Writer
	w.U32(1 << 30) // claims 2^30 elements
	w.U64(1)
	r := NewReader(w.Bytes())
	if got := r.I64s(); got != nil {
		t.Errorf("I64s on corrupt count = %v", got)
	}
	if r.Err() == nil {
		t.Fatal("expected truncated-list error")
	}
	// Sticky: subsequent reads keep failing silently.
	_ = r.U64()
	if r.Err() == nil {
		t.Error("error was cleared")
	}
}

func TestI64sIntoLengthMismatch(t *testing.T) {
	var w Writer
	w.I64s([]int64{1, 2})
	r := NewReader(w.Bytes())
	dst := make([]int64, 3)
	r.I64sInto(dst)
	if r.Err() == nil {
		t.Error("expected length mismatch error")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := Fingerprint(0, 1)
	b := Fingerprint(0, 2)
	if a == b {
		t.Error("fingerprint collision on adjacent values")
	}
	// Order sensitivity.
	if Fingerprint(Fingerprint(0, 1), 2) == Fingerprint(Fingerprint(0, 2), 1) {
		t.Error("fingerprint is order-insensitive")
	}
	if FingerprintString(0, "ab") == FingerprintString(0, "ba") {
		t.Error("string fingerprint is order-insensitive")
	}
}
