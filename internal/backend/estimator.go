package backend

import (
	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/window"
)

// Estimator is the unified contract every registered kind satisfies:
// streaming ingestion, an estimate, and the merge-semantics wire format
// (UnmarshalBinary ADDS a serialized shard into the receiver; the wire
// fingerprint rejects payloads from a different configuration). Open
// returns one of these for any Spec; richer behavior is reached through
// the optional capability interfaces below.
type Estimator interface {
	// Update feeds one turnstile update.
	Update(item uint64, delta int64)
	// UpdateBatch feeds a batch of updates through the amortized path,
	// leaving the state exactly as the equivalent Update calls would.
	UpdateBatch(batch []stream.Update)
	// Estimate returns the kind's headline estimate (the g-SUM for the
	// estimator kinds, F2 for countsketch, the cover weight sum for
	// heavy).
	Estimate() float64
	// SpaceBytes reports total counter storage.
	SpaceBytes() int
	// Fingerprint digests the estimator's configuration (the value
	// checked by the wire header on decode).
	Fingerprint() uint64
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
}

// Windowed is the capability of kinds with a tick clock (KindWindow):
// Advance moves time forward and Estimate covers only the trailing
// window. Obtain it by type-asserting an Open result.
type Windowed interface {
	// Advance moves the clock to tick (past ticks are a no-op) and
	// returns the resulting clock value.
	Advance(tick uint64) uint64
	// Now returns the current tick.
	Now() uint64
	// Stale reports how many ticks beyond the window the current
	// estimate still includes.
	Stale() uint64
	// Config returns the window configuration.
	Config() window.Config
}

// TwoPass is the capability of kinds that replay the stream (KindTwoPass):
// feed every update, call FinishPass1, feed every update again, then
// Estimate.
type TwoPass interface {
	FinishPass1()
}

// PointQuerier is the capability of kinds answering per-item frequency
// queries (KindCountSketch).
type PointQuerier interface {
	EstimateItem(item uint64) int64
	EstimateF2() float64
}

// FuncQuerier is the capability of kinds answering post-hoc g-SUM
// queries for arbitrary catalog functions (KindUniversal).
type FuncQuerier interface {
	EstimateFor(g gfunc.Func) float64
}

// CoverReporter is the capability of kinds exposing the (g, λ)-heavy
// cover (KindHeavy).
type CoverReporter interface {
	Cover() heavy.Cover
}

// twoPassEstimator adapts core.TwoPassEstimator: it carries the Spec's
// worker count so Process can run the sharded two-pass protocol.
type twoPassEstimator struct {
	*core.TwoPassEstimator
	workers int
}

// universalEstimator adapts core.Universal: Estimate answers for the
// Spec's G (F2 when unset); EstimateFor answers post hoc.
type universalEstimator struct {
	*core.Universal
	g gfunc.Func // nil when the Spec named no function
}

func (u *universalEstimator) Estimate() float64 {
	if u.g != nil {
		return u.EstimateFor(u.g)
	}
	return u.EstimateFor(gfunc.F2Func())
}

// windowEstimator adapts window.Estimator to the tick-free Estimator
// surface: updates land at the current clock tick, and Advance (the
// Windowed capability) moves time.
type windowEstimator struct {
	*window.Estimator
}

func (w *windowEstimator) Update(item uint64, delta int64) {
	// At the current tick a past-tick error is impossible.
	_ = w.Estimator.Update(item, delta, w.Estimator.Now())
}

func (w *windowEstimator) UpdateBatch(batch []stream.Update) {
	_ = w.Estimator.UpdateBatch(batch, w.Estimator.Now())
}

func (w *windowEstimator) Advance(tick uint64) uint64 {
	w.Estimator.Advance(tick)
	return w.Estimator.Now()
}

// countSketchEstimator adapts sketch.CountSketch: Estimate is the F2
// estimate, EstimateItem (the PointQuerier capability) the per-item
// point query.
type countSketchEstimator struct {
	*sketch.CountSketch
}

func (c *countSketchEstimator) Estimate() float64 { return c.CountSketch.EstimateF2() }

func (c *countSketchEstimator) EstimateItem(item uint64) int64 {
	return c.CountSketch.Estimate(item)
}

// heavyEstimator adapts heavy.OnePass: Estimate is the cover's weight
// sum, Cover (the CoverReporter capability) the full cover.
type heavyEstimator struct {
	*heavy.OnePass
}

func (h *heavyEstimator) Estimate() float64 { return h.Cover().WeightSum() }
