package backend

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/heavy"
	"repro/internal/hotpath"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/window"
)

// builder is one registry entry: how to validate, default, and
// construct a kind.
type builder struct {
	kind     Kind
	describe string
	// needsG: Normalize resolves Spec.G through the catalog and pins the
	// measured envelope into Options.
	needsG bool
	// normalize applies kind-specific validation and defaulting to an
	// already generically-validated Spec.
	normalize func(s *Spec) error
	// open constructs the estimator from a normalized Spec.
	open func(s Spec) (Estimator, error)
}

var registry = map[Kind]*builder{}

func register(b *builder) {
	if _, dup := registry[b.kind]; dup {
		panic("backend: duplicate kind " + string(b.kind))
	}
	registry[b.kind] = b
}

// Kinds returns the registered kind names, sorted. CLI surfaces print
// this instead of a hand-maintained list, so help text cannot drift
// from the code.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a registered kind ("" if
// unknown).
func Describe(k Kind) string {
	if b, ok := registry[k]; ok {
		return b.describe
	}
	return ""
}

// Open validates and normalizes spec, then constructs the estimator
// through the registry. It is a pure function of the Spec: two Open
// calls with equal Specs — in one process or two — return estimators
// with identical hash functions and wire fingerprints.
func Open(spec Spec) (Estimator, error) {
	n, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	return registry[n.Kind].open(n)
}

func init() {
	register(&builder{
		kind:     KindOnePass,
		describe: "one-pass g-SUM estimator (Theorem 2 inside the recursive sketch)",
		needsG:   true,
		open: func(s Spec) (Estimator, error) {
			g, err := CatalogFunc(s.G)
			if err != nil {
				return nil, err
			}
			return core.NewOnePass(g, s.Options), nil
		},
	})
	register(&builder{
		kind:     KindTwoPass,
		describe: "two-pass g-SUM estimator (Theorem 3; replay, FinishPass1, replay)",
		needsG:   true,
		open: func(s Spec) (Estimator, error) {
			g, err := CatalogFunc(s.G)
			if err != nil {
				return nil, err
			}
			return &twoPassEstimator{core.NewTwoPass(g, s.Options), s.Workers}, nil
		},
	})
	register(&builder{
		kind:     KindParallel,
		describe: "one-pass estimator with sharded parallel ingestion (Workers shards merged by linearity)",
		needsG:   true,
		open: func(s Spec) (Estimator, error) {
			g, err := CatalogFunc(s.G)
			if err != nil {
				return nil, err
			}
			return core.NewParallel(g, s.Options, s.Workers), nil
		},
	})
	register(&builder{
		kind:     KindSharded,
		describe: "one-pass estimator behind the lock-free hot path (hash-partitioned per-core shards, MPSC rings)",
		needsG:   true,
		open: func(s Spec) (Estimator, error) {
			g, err := CatalogFunc(s.G)
			if err != nil {
				return nil, err
			}
			// Every shard comes from the same normalized Spec, so the
			// factory hands out identically-seeded estimators — the seed
			// discipline hotpath's bit-identity contract requires.
			return hotpath.New(hotpath.Config{
				Shards: s.Workers,
				NewShard: func() (hotpath.Shard, error) {
					return core.NewOnePass(g, s.Options), nil
				},
				Merge: func(dst, src hotpath.Shard) error {
					return dst.(*core.OnePassEstimator).Merge(src.(*core.OnePassEstimator))
				},
			})
		},
	})
	register(&builder{
		kind:     KindUniversal,
		describe: "function-independent sketch answering post-hoc g-SUM queries (§1.1.1)",
		normalize: func(s *Spec) error {
			if s.Options.Envelope != 0 {
				if s.G != "" {
					if _, err := CatalogFunc(s.G); err != nil {
						return fmt.Errorf("backend: universal: %w", err)
					}
				}
				return nil
			}
			if s.G == "" {
				return fmt.Errorf("backend: universal kind needs Options.Envelope (the max H(M) over the query family) or G to measure it from")
			}
			g, err := CatalogFunc(s.G)
			if err != nil {
				return fmt.Errorf("backend: universal: %w", err)
			}
			s.Options.Envelope = core.EnvelopeFor(g, s.Options)
			return nil
		},
		open: func(s Spec) (Estimator, error) {
			u := &universalEstimator{Universal: core.NewUniversal(s.Options)}
			if s.G != "" {
				g, err := CatalogFunc(s.G)
				if err != nil {
					return nil, err
				}
				u.g = g
			}
			return u, nil
		},
	})
	register(&builder{
		kind:     KindWindow,
		describe: "sliding-window one-pass estimator (estimates cover the last Window.W ticks)",
		needsG:   true,
		normalize: func(s *Spec) error {
			if s.Window.W == 0 {
				return fmt.Errorf("backend: window kind needs a positive Window.W (ticks)")
			}
			if s.Window.K == 0 {
				s.Window.K = window.DefaultK
			}
			if s.Window.K < 2 {
				return fmt.Errorf("backend: window kind needs Window.K of at least 2, got %d", s.Window.K)
			}
			return nil
		},
		open: func(s Spec) (Estimator, error) {
			g, err := CatalogFunc(s.G)
			if err != nil {
				return nil, err
			}
			est, err := window.NewEstimator(g, s.Options, s.Window)
			if err != nil {
				return nil, err
			}
			return &windowEstimator{est}, nil
		},
	})
	register(&builder{
		kind:     KindCountSketch,
		describe: "raw CountSketch (F2 estimates and per-item point queries)",
		normalize: func(s *Spec) error {
			if s.Rows < 0 || s.TopK < 0 {
				return fmt.Errorf("backend: countsketch: Rows and TopK must be non-negative")
			}
			if s.Rows == 0 {
				s.Rows = 5
			}
			if s.Buckets == 0 {
				s.Buckets = 1 << 10
			}
			// The kind is function-free; canonicalize G away here so every
			// frontend fingerprints the same sketch identically.
			s.G = ""
			return nil
		},
		open: func(s Spec) (Estimator, error) {
			rng := util.NewSplitMix64(s.Options.Seed)
			var cs *sketch.CountSketch
			if s.TopK > 0 {
				cs = sketch.NewCountSketchTopK(s.Rows, s.Buckets, s.TopK, rng)
			} else {
				cs = sketch.NewCountSketch(s.Rows, s.Buckets, rng)
			}
			return &countSketchEstimator{cs}, nil
		},
	})
	register(&builder{
		kind:     KindHeavy,
		describe: "one Algorithm 2 instance: the cover of (g, λ)-heavy hitters",
		needsG:   true,
		open: func(s Spec) (Estimator, error) {
			g, err := CatalogFunc(s.G)
			if err != nil {
				return nil, err
			}
			o := s.Options
			return &heavyEstimator{heavy.NewOnePass(heavy.OnePassConfig{
				G: g, Lambda: o.Lambda, Eps: o.Eps, Delta: o.Delta,
				H: o.Envelope, WidthFactor: o.WidthFactor,
			}, util.NewSplitMix64(o.Seed))}, nil
		},
	})
	register(&builder{
		kind:     KindExact,
		describe: "exact linear-space baseline (stores the frequency vector)",
		needsG:   true,
		open: func(s Spec) (Estimator, error) {
			g, err := CatalogFunc(s.G)
			if err != nil {
				return nil, err
			}
			return core.NewExact(g), nil
		},
	})
}

// Process drives a whole in-memory stream through est using its richest
// capability: the parallel kind shards it, the two-pass kind replays it
// for both passes (sharded when its Spec set Workers), and every other
// kind streams it through the batched ingestion path. This is the one
// place that knows how each kind prefers bulk ingestion; frontends call
// it instead of switching on concrete types.
func Process(est Estimator, s *stream.Stream) error {
	switch e := est.(type) {
	case *twoPassEstimator:
		// RunParallel resolves the worker count itself (0 or negative
		// means GOMAXPROCS, 1 means the serial Run) and is exact at any
		// worker count.
		_, err := e.RunParallel(s, e.workers)
		return err
	case *core.ParallelEstimator:
		return e.Process(s)
	case *hotpath.ShardedEstimator:
		// The ring-fed concurrent path; shard-by-hash keeps the merged
		// result independent of scheduling (see internal/hotpath).
		return e.Process(s.Updates())
	default:
		engine.Ingest(est, s.Updates(), 0)
		return nil
	}
}

// Merge folds src into dst. Both must come from Open of equal Specs
// (same fingerprint). Kinds with an in-memory merge use it; the rest
// fold through the wire format, whose fingerprint enforces the
// equal-configuration contract either way.
func Merge(dst, src Estimator) error {
	switch d := dst.(type) {
	case *core.OnePassEstimator:
		if s, ok := src.(*core.OnePassEstimator); ok {
			return d.Merge(s)
		}
	case *core.ParallelEstimator:
		if s, ok := src.(*core.ParallelEstimator); ok {
			return d.OnePassEstimator.Merge(s.OnePassEstimator)
		}
	case *universalEstimator:
		if s, ok := src.(*universalEstimator); ok {
			return d.Universal.Merge(s.Universal)
		}
	case *windowEstimator:
		if s, ok := src.(*windowEstimator); ok {
			return d.Estimator.Merge(s.Estimator)
		}
	case *countSketchEstimator:
		if s, ok := src.(*countSketchEstimator); ok {
			return d.CountSketch.Merge(s.CountSketch)
		}
	case *heavyEstimator:
		if s, ok := src.(*heavyEstimator); ok {
			return d.OnePass.Merge(s.OnePass)
		}
	}
	blob, err := src.MarshalBinary()
	if err != nil {
		return err
	}
	return dst.UnmarshalBinary(blob)
}
