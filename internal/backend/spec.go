package backend

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/window"
	"repro/internal/wire"
)

// Kind names a registered estimator family.
type Kind string

// The built-in estimator kinds. Every value here has a registry entry
// in registry.go; Kinds() reports the full set at run time.
const (
	// KindOnePass is the Theorem 2 one-pass g-SUM estimator.
	KindOnePass Kind = "onepass"
	// KindTwoPass is the Theorem 3 two-pass g-SUM estimator: replay the
	// stream, call FinishPass1 (the TwoPass capability), replay again.
	KindTwoPass Kind = "twopass"
	// KindParallel is the one-pass estimator with sharded ingestion:
	// Process partitions the stream across Workers shards and merges by
	// linearity.
	KindParallel Kind = "parallel"
	// KindSharded is the one-pass estimator behind the lock-free hot
	// path: Workers per-core shards (0 = GOMAXPROCS) partitioned by item
	// hash, fed through bounded MPSC rings during Process and merged by
	// linearity on Estimate/Marshal.
	KindSharded Kind = "sharded"
	// KindUniversal is the §1.1.1 function-independent sketch answering
	// post-hoc g-SUM queries (the FuncQuerier capability).
	KindUniversal Kind = "universal"
	// KindWindow is the sliding-window one-pass estimator: updates land
	// at the current tick, Advance (the Windowed capability) moves the
	// clock, and Estimate covers the trailing Window.W ticks.
	KindWindow Kind = "window"
	// KindCountSketch is a raw CountSketch: F2 estimates plus per-item
	// point queries (the PointQuerier capability).
	KindCountSketch Kind = "countsketch"
	// KindHeavy is one Algorithm 2 instance: the cover of (g, λ)-heavy
	// hitters (the CoverReporter capability); Estimate is the cover's
	// weight sum.
	KindHeavy Kind = "heavy"
	// KindExact is the linear-space exact baseline.
	KindExact Kind = "exact"
)

// Spec fully describes one estimator: which family to build (Kind), the
// g function it sums (G, a catalog name), the sketch options, and the
// kind-specific extras. It is the unit of configuration every frontend
// exchanges: Open builds from it, the daemon serves it on /v1/config,
// and Fingerprint condenses it for the pre-merge handshake.
//
// The zero value is not usable: Kind and Options.N are required, and
// kinds that sum a function require G. Everything else has documented
// defaults resolved by Normalize.
type Spec struct {
	// Kind selects the registered estimator family.
	Kind Kind `json:"kind"`
	// G names the catalog function to sum. Required for the onepass,
	// twopass, parallel, window, heavy, and exact kinds. Optional for
	// universal (the default query function, and the envelope source
	// when Options.Envelope is 0); ignored by countsketch.
	G string `json:"g,omitempty"`
	// Options parameterizes the sketches (see core.Options).
	Options core.Options `json:"options"`
	// Window parameterizes the window kind (ignored by the others).
	Window window.Config `json:"window"`
	// Workers is the ingestion shard count for the parallel kind and the
	// second-pass shard count for twopass (0 = GOMAXPROCS for parallel,
	// serial for twopass). Distributed frontends reuse it as the worker
	// daemon count. Other kinds ingest serially and ignore it.
	Workers int `json:"workers,omitempty"`
	// Rows, Buckets, and TopK size the countsketch kind directly
	// (defaults 5, 1024, and 0 = no candidate tracker).
	Rows    int    `json:"rows,omitempty"`
	Buckets uint64 `json:"buckets,omitempty"`
	TopK    int    `json:"topk,omitempty"`
}

// Normalize validates s and resolves every defaulted field, returning
// the canonical Spec that Open, Fingerprint, and CanonicalJSON operate
// on. Invalid values are errors, never silent clamps: an unknown Kind,
// a zero domain, an out-of-range accuracy parameter, or a missing
// catalog function all fail here, before any sketch is built.
func (s Spec) Normalize() (Spec, error) {
	b, ok := registry[s.Kind]
	if !ok {
		if s.Kind == "" {
			return Spec{}, fmt.Errorf("backend: Spec.Kind is required (one of %s)", strings.Join(Kinds(), ", "))
		}
		return Spec{}, fmt.Errorf("backend: unknown kind %q (registered: %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	o := s.Options
	if o.N == 0 {
		return Spec{}, fmt.Errorf("backend: %s: Options.N (domain size) must be positive", s.Kind)
	}
	if o.M < 0 {
		return Spec{}, fmt.Errorf("backend: %s: Options.M must be non-negative, got %d", s.Kind, o.M)
	}
	if o.Eps < 0 || o.Eps >= 1 {
		return Spec{}, fmt.Errorf("backend: %s: Options.Eps must be in [0, 1), got %v", s.Kind, o.Eps)
	}
	if o.Delta < 0 || o.Delta >= 1 {
		return Spec{}, fmt.Errorf("backend: %s: Options.Delta must be in [0, 1), got %v", s.Kind, o.Delta)
	}
	if o.Lambda < 0 || o.Lambda > 1 {
		return Spec{}, fmt.Errorf("backend: %s: Options.Lambda must be in [0, 1], got %v", s.Kind, o.Lambda)
	}
	if o.Levels < 0 || o.Levels > 30 {
		return Spec{}, fmt.Errorf("backend: %s: Options.Levels must be in [0, 30], got %d", s.Kind, o.Levels)
	}
	if o.WidthFactor < 0 {
		return Spec{}, fmt.Errorf("backend: %s: Options.WidthFactor must be non-negative, got %v", s.Kind, o.WidthFactor)
	}
	if o.Envelope < 0 {
		return Spec{}, fmt.Errorf("backend: %s: Options.Envelope must be non-negative, got %v", s.Kind, o.Envelope)
	}
	if s.Workers < 0 {
		return Spec{}, fmt.Errorf("backend: %s: Workers must be non-negative, got %d", s.Kind, s.Workers)
	}
	s.Options = o.WithDefaults()
	if b.needsG {
		g, err := CatalogFunc(s.G)
		if err != nil {
			return Spec{}, fmt.Errorf("backend: %s: %w", s.Kind, err)
		}
		// Pin the measured envelope so every process that normalizes this
		// Spec — and every shard or staging estimator built from it —
		// resolves to byte-identical configuration.
		s.Options.Envelope = core.EnvelopeFor(g, s.Options)
	}
	if b.normalize != nil {
		if err := b.normalize(&s); err != nil {
			return Spec{}, err
		}
	}
	return s, nil
}

// Fingerprint digests the normalized Spec — kind, function, every
// option, and the kind-specific extras — with the internal/wire fold.
// Two processes hold merge-compatible estimators if and only if their
// Spec fingerprints agree, which is what the daemon's /v1/config
// handshake checks before any snapshot ships. A Spec that does not
// normalize is digested as written (its fingerprint only ever meets
// another in an error path).
func (s Spec) Fingerprint() uint64 {
	if n, err := s.Normalize(); err == nil {
		s = n
	}
	h := wire.FingerprintString(0, string(s.Kind))
	h = wire.FingerprintString(h, s.G)
	h = wire.Fingerprint(h, core.OptionsFingerprint(s.Options))
	h = wire.Fingerprint(h, s.Window.W)
	h = wire.Fingerprint(h, uint64(s.Window.K))
	h = wire.Fingerprint(h, uint64(s.Workers))
	h = wire.Fingerprint(h, uint64(s.Rows))
	h = wire.Fingerprint(h, s.Buckets)
	return wire.Fingerprint(h, uint64(s.TopK))
}

// CanonicalJSON returns the canonical encoding of the Spec: the
// normalized form marshaled with a fixed field order, so equal
// configurations encode to equal bytes on every machine. The daemon
// serves this from /v1/config.
func (s Spec) CanonicalJSON() ([]byte, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// ParseSpec decodes a Spec from its JSON encoding (canonical or not)
// and normalizes it.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("backend: bad spec JSON: %w", err)
	}
	return s.Normalize()
}

// CatalogFunc resolves a catalog function by name; the error lists the
// catalog so CLI surfaces can echo it.
func CatalogFunc(name string) (gfunc.Func, error) {
	if name == "" {
		return nil, fmt.Errorf("a catalog function name is required (catalog: %s)", strings.Join(catalogNames(), ", "))
	}
	for _, e := range gfunc.Catalog() {
		if e.Func.Name() == name {
			return e.Func, nil
		}
	}
	return nil, fmt.Errorf("unknown catalog function %q (catalog: %s)", name, strings.Join(catalogNames(), ", "))
}

func catalogNames() []string {
	names := make([]string, 0, len(gfunc.Catalog()))
	for _, e := range gfunc.Catalog() {
		names = append(names, e.Func.Name())
	}
	sort.Strings(names)
	return names
}
