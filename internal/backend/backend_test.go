package backend

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/window"
)

// specFor returns a valid Spec for a kind at test scale. Every
// registered kind must have an entry here (the loop tests fail on a
// missing one), so adding a kind forces cross-backend coverage.
func specFor(kind Kind, seed uint64) Spec {
	s := Spec{
		Kind:    kind,
		G:       "x^2",
		Options: core.Options{N: 1 << 12, M: 1 << 10, Eps: 0.25, Lambda: 1.0 / 16, Seed: seed},
	}
	switch kind {
	case KindWindow:
		s.Window = window.Config{W: 8, K: 2}
	case KindParallel, KindTwoPass:
		s.Workers = 2
	case KindCountSketch:
		s.G = ""
	}
	return s
}

// testStream keeps distinct items below the candidate trackers'
// capacity, the regime where merged and serial estimates agree exactly.
func testStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.1)
}

// ingest drives the full protocol for any kind: feed the stream, and
// for two-pass kinds finish pass 1 and feed it again.
func ingest(t *testing.T, est Estimator, s *stream.Stream) {
	t.Helper()
	if err := Process(est, s); err != nil {
		t.Fatal(err)
	}
}

// TestOpenAllKinds: every registered kind constructs through Open.
func TestOpenAllKinds(t *testing.T) {
	for _, name := range Kinds() {
		est, err := Open(specFor(Kind(name), 7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if est == nil {
			t.Fatalf("%s: nil estimator", name)
		}
	}
}

// TestOpenRoundTripBitIdentical is the cross-backend wire property: for
// every registered kind, Open(spec) → ingest → MarshalBinary →
// Open(same spec) → UnmarshalBinary → Estimate is bit-identical to the
// run that never crossed the wire.
func TestOpenRoundTripBitIdentical(t *testing.T) {
	for _, name := range Kinds() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := specFor(Kind(name), 11)
			s := testStream(3)

			direct, err := Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			ingest(t, direct, s)
			want := direct.Estimate()

			blob, err := direct.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			if w, ok := fresh.(Windowed); ok {
				// A snapshot only decodes onto a window at the same tick.
				w.Advance(direct.(Windowed).Now())
			}
			if err := fresh.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			if got := fresh.Estimate(); got != want {
				t.Errorf("round-trip estimate %.17g != direct %.17g", got, want)
			}
		})
	}
}

// TestOpenShardMergeEqualsSerial: for every kind with a linear wire
// merge, two half-stream shards folded into a coordinator equal the
// serial run bit for bit.
func TestOpenShardMergeEqualsSerial(t *testing.T) {
	for _, name := range Kinds() {
		kind := Kind(name)
		if kind == KindTwoPass {
			// The two-pass protocol distributes candidates, not snapshots;
			// core's RunParallel covers it.
			continue
		}
		t.Run(name, func(t *testing.T) {
			spec := specFor(kind, 13)
			s := testStream(5)
			updates := s.Updates()
			n := len(updates)

			serial, err := Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			serial.UpdateBatch(updates)
			want := serial.Estimate()

			coord, err := Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, bounds := range [][2]int{{0, n / 2}, {n / 2, n}} {
				shard, err := Open(spec)
				if err != nil {
					t.Fatal(err)
				}
				shard.UpdateBatch(updates[bounds[0]:bounds[1]])
				if err := Merge(coord, shard); err != nil {
					t.Fatal(err)
				}
			}
			if got := coord.Estimate(); got != want {
				t.Errorf("shard-merged estimate %.17g != serial %.17g", got, want)
			}
		})
	}
}

// TestSpecFingerprintSensitivity: a Spec differing in any single field
// fingerprints differently, so the daemon handshake rejects it before
// any snapshot is merged.
func TestSpecFingerprintSensitivity(t *testing.T) {
	base := specFor(KindOnePass, 7)
	fp := base.Fingerprint()

	mutate := []struct {
		name string
		mut  func(*Spec)
	}{
		{"Kind", func(s *Spec) { s.Kind = KindUniversal }},
		{"G", func(s *Spec) { s.G = "x^1" }},
		{"Options.N", func(s *Spec) { s.Options.N = 1 << 13 }},
		{"Options.M", func(s *Spec) { s.Options.M = 1 << 11 }},
		{"Options.Eps", func(s *Spec) { s.Options.Eps = 0.5 }},
		{"Options.Delta", func(s *Spec) { s.Options.Delta = 0.1 }},
		{"Options.Lambda", func(s *Spec) { s.Options.Lambda = 1.0 / 8 }},
		{"Options.Levels", func(s *Spec) { s.Options.Levels = 4 }},
		{"Options.WidthFactor", func(s *Spec) { s.Options.WidthFactor = 2 }},
		{"Options.Seed", func(s *Spec) { s.Options.Seed = 8 }},
		{"Options.Envelope", func(s *Spec) { s.Options.Envelope = 99 }},
		{"Window.W", func(s *Spec) { s.Kind = KindWindow; s.Window = window.Config{W: 8} }},
		{"Workers", func(s *Spec) { s.Workers = 3 }},
		{"Rows", func(s *Spec) { s.Kind = KindCountSketch; s.G = ""; s.Rows = 7 }},
		{"Buckets", func(s *Spec) { s.Kind = KindCountSketch; s.G = ""; s.Buckets = 2048 }},
		{"TopK", func(s *Spec) { s.Kind = KindCountSketch; s.G = ""; s.TopK = 16 }},
	}
	for _, m := range mutate {
		mutated := base
		m.mut(&mutated)
		if mutated.Fingerprint() == fp {
			t.Errorf("%s: mutated spec fingerprints identically", m.name)
		}
	}

	// And the estimator-level wire format also refuses the snapshot for
	// fields that shape the sketch (defense in depth under the handshake).
	a, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.Options.Seed = 8
	b, err := Open(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalBinary(blob); err == nil {
		t.Error("different-seed snapshot decoded without error")
	}
}

// TestSpecFingerprintNormalizes: zero-value defaults and their resolved
// forms are the same configuration, so they fingerprint identically.
func TestSpecFingerprintNormalizes(t *testing.T) {
	implicit := Spec{Kind: KindOnePass, G: "x^2", Options: core.Options{N: 1 << 12, M: 1 << 10}}
	explicit := implicit
	explicit.Options = explicit.Options.WithDefaults()
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Error("defaulted and resolved specs fingerprint differently")
	}

	// The countsketch kind is function-free: a stray G canonicalizes
	// away, so frontends that leave it set still fingerprint (and
	// handshake) identically to ones that clear it.
	bare := Spec{Kind: KindCountSketch, Options: core.Options{N: 1 << 10, Seed: 3}}
	stray := bare
	stray.G = "x^2"
	if bare.Fingerprint() != stray.Fingerprint() {
		t.Error("countsketch specs with and without a stray G fingerprint differently")
	}
	n, err := stray.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.G != "" {
		t.Errorf("countsketch normalization kept G = %q", n.G)
	}
}

// TestCanonicalJSONRoundTrips: CanonicalJSON → ParseSpec is the
// identity on normalized specs, and equal specs encode to equal bytes.
func TestCanonicalJSONRoundTrips(t *testing.T) {
	for _, name := range Kinds() {
		spec := specFor(Kind(name), 3)
		data, err := spec.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Fingerprint() != spec.Fingerprint() {
			t.Errorf("%s: JSON round trip changed the fingerprint", name)
		}
		again, err := back.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(again) != string(data) {
			t.Errorf("%s: canonical encoding is not a fixed point:\n%s\n%s", name, data, again)
		}
	}
}

// TestNormalizeRejectsInvalidSpecs: errors, not silent clamps.
func TestNormalizeRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty kind", Spec{}, "Kind is required"},
		{"unknown kind", Spec{Kind: "nope", Options: core.Options{N: 4}}, "unknown kind"},
		{"zero domain", specWith(func(s *Spec) { s.Options.N = 0 }), "must be positive"},
		{"negative M", specWith(func(s *Spec) { s.Options.M = -1 }), "Options.M"},
		{"eps too big", specWith(func(s *Spec) { s.Options.Eps = 1.5 }), "Options.Eps"},
		{"delta negative", specWith(func(s *Spec) { s.Options.Delta = -0.1 }), "Options.Delta"},
		{"lambda too big", specWith(func(s *Spec) { s.Options.Lambda = 2 }), "Options.Lambda"},
		{"levels too deep", specWith(func(s *Spec) { s.Options.Levels = 31 }), "Options.Levels"},
		{"negative workers", specWith(func(s *Spec) { s.Workers = -1 }), "Workers"},
		{"unknown function", specWith(func(s *Spec) { s.G = "nope" }), "unknown catalog function"},
		{"missing function", specWith(func(s *Spec) { s.G = "" }), "catalog function name is required"},
		{"window without W", specWith(func(s *Spec) { s.Kind = KindWindow }), "Window.W"},
		{"window K of 1", specWith(func(s *Spec) { s.Kind = KindWindow; s.Window = window.Config{W: 4, K: 1} }), "Window.K"},
		{"universal without envelope or G", Spec{Kind: KindUniversal, Options: core.Options{N: 4}}, "Envelope"},
	}
	for _, c := range cases {
		if _, err := c.spec.Normalize(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
		if _, err := Open(c.spec); err == nil {
			t.Errorf("%s: Open accepted an invalid spec", c.name)
		}
	}
}

func specWith(mut func(*Spec)) Spec {
	s := specFor(KindOnePass, 1)
	mut(&s)
	return s
}
