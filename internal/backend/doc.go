// Package backend is the registry behind the public Spec/Estimator/Open
// API: one typed, serializable description of every estimator the
// repository can build (Spec), one streaming contract they all satisfy
// (Estimator), and one constructor (Open) that dispatches through a
// table of registered kinds. Every frontend — the root package, the
// gsumd daemon, `gsum estimate`/`gsum bench`, and the workload bench
// runner — resolves estimators here, so a new sketch kind is one
// registry entry instead of one edit per frontend.
//
// Layer: above core/window/heavy/sketch (it constructs them), below the
// daemon, cmds, and workload frontends (they dispatch through it).
//
// Seed discipline: Open is a pure function of the normalized Spec. Two
// processes that Open equal Specs hold estimators with identical hash
// functions, dimensions, and wire fingerprints, so their snapshots
// merge exactly. Spec.Fingerprint digests the normalized Spec with the
// internal/wire fold; the daemon's /v1/config handshake compares these
// fingerprints so configuration drift is a 409 at handshake time, not a
// failed merge after snapshots have shipped.
package backend
