// Package stream implements the turnstile streaming model of the paper:
// a stream of length m over domain [n] is a list of updates (i, δ) with
// i ∈ [n] and δ ∈ Z, and the frequency vector V(D) has v_i = Σ_{j: i_j = i} δ_j.
//
// The package provides the stream and frequency-vector types, the D(n, m)
// model constraints (every prefix must keep |v_i| <= M), and deterministic
// workload generators used by the experiments: uniform, Zipfian,
// planted-heavy-hitter, and the adversarial streams from the paper's
// communication-complexity reductions.
//
// Layer: substrate in ARCHITECTURE.md — the turnstile model every
// higher layer consumes.
// Seed discipline: generators are pure functions of their explicit
// seed configs; streams themselves carry no randomness.
package stream
