package stream

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/util"
)

// Update is a single turnstile update (i, δ): add δ to the frequency of
// item i. Items are identified by uint64 in [0, n).
type Update struct {
	Item  uint64
	Delta int64
}

// Stream is an in-memory turnstile stream over the domain [0, N). It holds
// the update list so that multi-pass algorithms (Algorithm 1 of the paper)
// can replay it. Stream corresponds to an element of D(n, m).
type Stream struct {
	n       uint64
	updates []Update
}

// New returns an empty stream over the domain [0, n). It panics if n == 0.
func New(n uint64) *Stream {
	if n == 0 {
		panic("stream: empty domain")
	}
	return &Stream{n: n}
}

// N returns the domain size.
func (s *Stream) N() uint64 { return s.n }

// Len returns the stream length m (number of updates).
func (s *Stream) Len() int { return len(s.updates) }

// Add appends the update (item, delta). It panics if item is outside the
// domain, mirroring the model's promise i_j ∈ [n].
func (s *Stream) Add(item uint64, delta int64) {
	if item >= s.n {
		panic(fmt.Sprintf("stream: item %d outside domain [0,%d)", item, s.n))
	}
	s.updates = append(s.updates, Update{Item: item, Delta: delta})
}

// AddCopies appends count insertions of item as a single update, the
// "Alice contributes n copies of i" idiom from the reductions.
func (s *Stream) AddCopies(item uint64, count int64) {
	s.Add(item, count)
}

// Updates returns the underlying update list. Callers must not modify it.
func (s *Stream) Updates() []Update { return s.updates }

// Each calls fn for every update in order. This is the single-pass read
// interface used by one-pass algorithms.
func (s *Stream) Each(fn func(Update)) {
	for _, u := range s.updates {
		fn(u)
	}
}

// Concat appends all updates of t (over the same domain) to s. It panics on
// domain mismatch. This models players jointly creating a notional stream.
func (s *Stream) Concat(t *Stream) {
	if s.n != t.n {
		panic("stream: domain mismatch in Concat")
	}
	s.updates = append(s.updates, t.updates...)
}

// Clone returns a deep copy of the stream.
func (s *Stream) Clone() *Stream {
	cp := &Stream{n: s.n, updates: make([]Update, len(s.updates))}
	copy(cp.updates, s.updates)
	return cp
}

// Vector materializes the frequency vector V(D) as a sparse map from item
// to frequency. Zero frequencies are omitted.
func (s *Stream) Vector() Vector {
	v := make(Vector, 64)
	for _, u := range s.updates {
		nv := v[u.Item] + u.Delta
		if nv == 0 {
			delete(v, u.Item)
		} else {
			v[u.Item] = nv
		}
	}
	return v
}

// MaxAbsFrequency returns M(D) = max over prefixes and items of |v_i|,
// the turnstile bound the model promises. An empty stream returns 0.
func (s *Stream) MaxAbsFrequency() int64 {
	cur := make(map[uint64]int64, 64)
	var m int64
	for _, u := range s.updates {
		cur[u.Item] += u.Delta
		if a := util.AbsInt64(cur[u.Item]); a > m {
			m = a
		}
	}
	return m
}

// CheckTurnstileBound verifies the D(n, m) promise that every prefix keeps
// |v_i| <= M. It returns an error naming the first violating prefix.
func (s *Stream) CheckTurnstileBound(m int64) error {
	cur := make(map[uint64]int64, 64)
	for j, u := range s.updates {
		cur[u.Item] += u.Delta
		if util.AbsInt64(cur[u.Item]) > m {
			return fmt.Errorf("stream: prefix %d puts |v_%d| = %d > M = %d",
				j+1, u.Item, util.AbsInt64(cur[u.Item]), m)
		}
	}
	return nil
}

// InsertionOnly reports whether every update has δ = 1, the restricted
// model in which the paper's lower bounds hold.
func (s *Stream) InsertionOnly() bool {
	for _, u := range s.updates {
		if u.Delta != 1 {
			return false
		}
	}
	return true
}

// Vector is a sparse frequency vector: item -> frequency. Items with zero
// frequency are absent.
type Vector map[uint64]int64

// ErrDomainMismatch is returned by vector operations on different domains.
var ErrDomainMismatch = errors.New("stream: vector domain mismatch")

// F2 returns the second frequency moment Σ v_i².
func (v Vector) F2() float64 {
	var f2 float64
	for _, c := range v {
		fc := float64(c)
		f2 += fc * fc
	}
	return f2
}

// F1 returns Σ |v_i|.
func (v Vector) F1() float64 {
	var f1 float64
	for _, c := range v {
		f1 += float64(util.AbsInt64(c))
	}
	return f1
}

// F0 returns the number of items with nonzero frequency.
func (v Vector) F0() int { return len(v) }

// MaxAbs returns max_i |v_i| (0 for an empty vector).
func (v Vector) MaxAbs() int64 {
	var m int64
	for _, c := range v {
		if a := util.AbsInt64(c); a > m {
			m = a
		}
	}
	return m
}

// Sum applies g to every |v_i| and sums: the g-SUM ground truth
// Σ_i g(|v_i|) for a function with g(0) = 0 (absent items contribute 0).
func (v Vector) Sum(g func(uint64) float64) float64 {
	var s float64
	for _, c := range v {
		s += g(uint64(util.AbsInt64(c)))
	}
	return s
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	cp := make(Vector, len(v))
	for k, c := range v {
		cp[k] = c
	}
	return cp
}

// Sub returns u - w as a new vector (the Alice-minus-Bob vector of the
// DIST communication problems).
func Sub(u, w Vector) Vector {
	out := u.Clone()
	for k, c := range w {
		nv := out[k] - c
		if nv == 0 {
			delete(out, k)
		} else {
			out[k] = nv
		}
	}
	return out
}

// FromVector builds a minimal stream realizing the vector: one update per
// nonzero coordinate, in ascending item order for determinism.
func FromVector(n uint64, v Vector) *Stream {
	s := New(n)
	items := make([]uint64, 0, len(v))
	for k := range v {
		items = append(items, k)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, k := range items {
		s.Add(k, v[k])
	}
	return s
}
