package stream

import (
	"math"
	"sort"

	"repro/internal/util"
)

// GenConfig parameterizes the workload generators. All generators are
// deterministic functions of the Seed.
type GenConfig struct {
	N    uint64 // domain size
	M    int64  // max |frequency| (turnstile bound)
	Seed uint64
}

// Uniform generates a stream in which `items` distinct random items receive
// a uniform random frequency in [1, M], emitted as interleaved unit updates
// mixed with occasional deletions that cancel out, exercising the turnstile
// model. The final vector has `items` nonzero coordinates.
func Uniform(cfg GenConfig, items int) *Stream {
	rng := util.NewSplitMix64(cfg.Seed)
	s := New(cfg.N)
	chosen := sampleDistinct(rng, cfg.N, items)
	for _, it := range chosen {
		f := rng.Int63n(cfg.M) + 1
		// Split the frequency into a few positive updates plus one
		// insert/delete pair so the stream is genuinely turnstile.
		emitSplit(s, rng, it, f)
	}
	return s
}

// Zipf generates a stream whose frequencies follow a Zipfian law with
// exponent alpha: the r-th most frequent of `items` items has frequency
// round(M / r^alpha), clipped to >= 1. Heavy-tailed workloads like this are
// the canonical motivation for heavy-hitter-based g-SUM algorithms.
func Zipf(cfg GenConfig, items int, alpha float64) *Stream {
	rng := util.NewSplitMix64(cfg.Seed)
	s := New(cfg.N)
	chosen := sampleDistinct(rng, cfg.N, items)
	for r, it := range chosen {
		f := int64(math.Round(float64(cfg.M) / math.Pow(float64(r+1), alpha)))
		if f < 1 {
			f = 1
		}
		emitSplit(s, rng, it, f)
	}
	return s
}

// PlantedHeavy generates a stream of `items` light items with frequency
// lightFreq plus one heavy item with frequency heavyFreq. The heavy item's
// identity is returned; experiments use it to measure heavy-hitter recall.
func PlantedHeavy(cfg GenConfig, items int, lightFreq, heavyFreq int64) (*Stream, uint64) {
	rng := util.NewSplitMix64(cfg.Seed)
	s := New(cfg.N)
	chosen := sampleDistinct(rng, cfg.N, items+1)
	heavy := chosen[0]
	emitSplit(s, rng, heavy, heavyFreq)
	for _, it := range chosen[1:] {
		emitSplit(s, rng, it, lightFreq)
	}
	return s, heavy
}

// PlantedFrequencies generates a stream with exactly the multiset of
// frequencies given: counts[f] items receive frequency f. Item identities
// are random distinct; the assignment (frequency -> items) is returned.
// This realizes the adversarial instances in the lower-bound reductions,
// where the proof dictates exact frequency multisets.
func PlantedFrequencies(cfg GenConfig, counts map[int64]int) (*Stream, map[int64][]uint64) {
	rng := util.NewSplitMix64(cfg.Seed)
	s := New(cfg.N)
	total := 0
	freqs := make([]int64, 0, len(counts))
	for f, c := range counts {
		if f == 0 {
			continue
		}
		total += c
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
	chosen := sampleDistinct(rng, cfg.N, total)
	assignment := make(map[int64][]uint64, len(counts))
	idx := 0
	for _, f := range freqs {
		for k := 0; k < counts[f]; k++ {
			it := chosen[idx]
			idx++
			emitSplit(s, rng, it, f)
			assignment[f] = append(assignment[f], it)
		}
	}
	return s, assignment
}

// IIDSamples generates the log-likelihood workload of Section 1.1.1: each
// coordinate i in [0, n) is set to an i.i.d. sample v_i ~ pmf, delivered as
// unit updates in random interleaved order. pmf is given by a sampler
// function returning a value in [0, M].
func IIDSamples(cfg GenConfig, sample func(rng *util.SplitMix64) int64) *Stream {
	rng := util.NewSplitMix64(cfg.Seed)
	s := New(cfg.N)
	type rem struct {
		item uint64
		left int64
	}
	pending := make([]rem, 0, cfg.N)
	for i := uint64(0); i < cfg.N; i++ {
		v := sample(rng)
		if v < 0 {
			v = -v
		}
		if v > 0 {
			pending = append(pending, rem{item: i, left: v})
		}
	}
	// Interleave unit updates round-robin-with-random-skips so that no
	// single-item run dominates, as in a real sample stream.
	for len(pending) > 0 {
		k := int(rng.Uint64n(uint64(len(pending))))
		s.Add(pending[k].item, 1)
		pending[k].left--
		if pending[k].left == 0 {
			pending[k] = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
		}
	}
	return s
}

// emitSplit emits frequency f for item it as a handful of updates that sum
// to f, including one canceling +1/-1 pair when f > 2 so the stream is
// turnstile rather than insertion-only. Every prefix keeps |v_it| <= |f|+1.
func emitSplit(s *Stream, rng *util.SplitMix64, it uint64, f int64) {
	if f == 0 {
		return
	}
	neg := f < 0
	a := f
	if neg {
		a = -a
	}
	sign := int64(1)
	if neg {
		sign = -1
	}
	switch {
	case a <= 2:
		for k := int64(0); k < a; k++ {
			s.Add(it, sign)
		}
	default:
		h := a / 2
		s.Add(it, sign*h)
		s.Add(it, sign)  // overshoot by one...
		s.Add(it, -sign) // ...and cancel: exercises deletions
		s.Add(it, sign*(a-h))
	}
	_ = rng
}

// sampleDistinct draws k distinct items from [0, n) deterministically from
// rng. It panics if k > n.
func sampleDistinct(rng *util.SplitMix64, n uint64, k int) []uint64 {
	if uint64(k) > n {
		panic("stream: cannot sample more distinct items than the domain size")
	}
	seen := make(map[uint64]struct{}, k)
	out := make([]uint64, 0, k)
	for len(out) < k {
		it := rng.Uint64n(n)
		if _, ok := seen[it]; ok {
			continue
		}
		seen[it] = struct{}{}
		out = append(out, it)
	}
	return out
}
