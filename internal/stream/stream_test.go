package stream

import (
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func TestVectorAccumulation(t *testing.T) {
	s := New(16)
	s.Add(3, 5)
	s.Add(3, -2)
	s.Add(7, 1)
	s.Add(7, -1)
	v := s.Vector()
	if v[3] != 3 {
		t.Errorf("v[3] = %d, want 3", v[3])
	}
	if _, ok := v[7]; ok {
		t.Errorf("v[7] should be absent after cancellation")
	}
	if v.F0() != 1 {
		t.Errorf("F0 = %d, want 1", v.F0())
	}
}

func TestAddPanicsOutsideDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-domain item")
		}
	}()
	s := New(4)
	s.Add(4, 1)
}

func TestMoments(t *testing.T) {
	v := Vector{1: 3, 2: -4}
	if got := v.F2(); got != 25 {
		t.Errorf("F2 = %v, want 25", got)
	}
	if got := v.F1(); got != 7 {
		t.Errorf("F1 = %v, want 7", got)
	}
	if got := v.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestTurnstileBoundCheck(t *testing.T) {
	s := New(8)
	s.Add(1, 5)
	s.Add(1, -3)
	if err := s.CheckTurnstileBound(5); err != nil {
		t.Errorf("unexpected violation: %v", err)
	}
	if err := s.CheckTurnstileBound(4); err == nil {
		t.Error("expected violation of M=4 (prefix reaches 5)")
	}
}

func TestMaxAbsFrequencyTracksPrefixes(t *testing.T) {
	s := New(8)
	s.Add(1, 7)
	s.Add(1, -7) // final freq 0, but prefix reached 7
	if got := s.MaxAbsFrequency(); got != 7 {
		t.Errorf("MaxAbsFrequency = %d, want 7", got)
	}
}

func TestFromVectorRoundTrip(t *testing.T) {
	f := func(raw []int8) bool {
		v := make(Vector)
		for i, d := range raw {
			if d != 0 {
				v[uint64(i)] = int64(d)
			}
		}
		s := FromVector(uint64(len(raw)+1), v)
		got := s.Vector()
		if len(got) != len(v) {
			return false
		}
		for k, c := range v {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSubVector(t *testing.T) {
	u := Vector{1: 5, 2: 3}
	w := Vector{1: 5, 3: -2}
	d := Sub(u, w)
	if d[1] != 0 && len(d) != 2 {
		t.Errorf("Sub: got %v", d)
	}
	if d[2] != 3 || d[3] != 2 {
		t.Errorf("Sub: got %v, want {2:3, 3:2}", d)
	}
	if _, ok := d[1]; ok {
		t.Errorf("Sub: coordinate 1 should cancel, got %v", d)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	cfg := GenConfig{N: 1 << 10, M: 100, Seed: 5}
	a := Zipf(cfg, 50, 1.2)
	b := Zipf(cfg, 50, 1.2)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Updates() {
		if a.Updates()[i] != b.Updates()[i] {
			t.Fatalf("update %d differs", i)
		}
	}
}

func TestZipfShape(t *testing.T) {
	cfg := GenConfig{N: 1 << 12, M: 1000, Seed: 9}
	s := Zipf(cfg, 100, 1.0)
	v := s.Vector()
	if v.F0() != 100 {
		t.Fatalf("F0 = %d, want 100", v.F0())
	}
	if got := v.MaxAbs(); got != 1000 {
		t.Errorf("top frequency %d, want 1000", got)
	}
	if err := s.CheckTurnstileBound(1001); err != nil {
		t.Errorf("turnstile bound violated: %v", err)
	}
}

func TestUniformFrequenciesInRange(t *testing.T) {
	cfg := GenConfig{N: 1 << 12, M: 64, Seed: 21}
	s := Uniform(cfg, 200)
	v := s.Vector()
	if v.F0() != 200 {
		t.Fatalf("F0 = %d, want 200", v.F0())
	}
	for it, f := range v {
		if f < 1 || f > 64 {
			t.Errorf("item %d has frequency %d outside [1, 64]", it, f)
		}
	}
}

func TestPlantedHeavy(t *testing.T) {
	cfg := GenConfig{N: 1 << 12, M: 1 << 20, Seed: 33}
	s, heavy := PlantedHeavy(cfg, 50, 10, 5000)
	v := s.Vector()
	if v[heavy] != 5000 {
		t.Errorf("heavy frequency %d, want 5000", v[heavy])
	}
	light := 0
	for it, f := range v {
		if it != heavy {
			if f != 10 {
				t.Errorf("light item %d has frequency %d, want 10", it, f)
			}
			light++
		}
	}
	if light != 50 {
		t.Errorf("light count %d, want 50", light)
	}
}

func TestPlantedFrequencies(t *testing.T) {
	cfg := GenConfig{N: 1 << 14, M: 1 << 20, Seed: 40}
	counts := map[int64]int{3: 10, 100: 2, -7: 4}
	s, assign := PlantedFrequencies(cfg, counts)
	v := s.Vector()
	for f, items := range assign {
		for _, it := range items {
			if v[it] != f {
				t.Errorf("item %d has frequency %d, want %d", it, v[it], f)
			}
		}
	}
	if v.F0() != 16 {
		t.Errorf("F0 = %d, want 16", v.F0())
	}
}

func TestIIDSamples(t *testing.T) {
	cfg := GenConfig{N: 256, M: 10, Seed: 50}
	s := IIDSamples(cfg, func(rng *util.SplitMix64) int64 { return 1 + rng.Int63n(3) })
	v := s.Vector()
	if v.F0() != 256 {
		t.Fatalf("F0 = %d, want 256 (every coordinate sampled >= 1)", v.F0())
	}
	for it, f := range v {
		if f < 1 || f > 3 {
			t.Errorf("coordinate %d = %d outside [1,3]", it, f)
		}
	}
	if !s.InsertionOnly() {
		t.Error("IID sample stream should be insertion-only")
	}
}

func TestConcatAndClone(t *testing.T) {
	a := New(8)
	a.Add(1, 2)
	b := New(8)
	b.Add(2, 3)
	c := a.Clone()
	c.Concat(b)
	if a.Len() != 1 {
		t.Errorf("Clone did not isolate: a.Len() = %d", a.Len())
	}
	v := c.Vector()
	if v[1] != 2 || v[2] != 3 {
		t.Errorf("Concat result %v", v)
	}
}
