package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/stream"
	"repro/internal/util"
)

// E10HeavyHitterRecall verifies Lemma 17/18 empirically: for slow-jumping,
// slow-dropping g, every (g, λ)-heavy hitter is an F2 λ/H(M)-heavy hitter,
// so the CountSketch-based Algorithm 2 finds all of them — recall 1.0 —
// across planted magnitudes. It also reports the measured F2-heaviness
// margin min_heavy v² / ((λ/H) F2), which Lemma 17 predicts to be >= 1.
func E10HeavyHitterRecall(quick bool) Table {
	t := Table{
		ID:     "E10",
		Title:  "Every (g,λ)-heavy hitter is F2-heavy (Lemma 17/18): cover recall",
		Header: []string{"function", "planted |v|", "recall", "F2 margin", "H(M)"},
	}
	// Quadratic-scale functions, where a large planted frequency is
	// actually (g,λ)-heavy. (Sub-polynomially growing functions like
	// e^√log never concentrate enough weight on one item at these scales;
	// their covers are exercised by the E2 estimators instead.)
	funcs := []gfunc.Func{gfunc.F2Func(), gfunc.X2Log(), gfunc.SinLogX2(), gfunc.Power(1.5)}
	mags := []int64{1 << 8, 1 << 10, 1 << 12}
	trials := 8
	if quick {
		funcs = funcs[:2]
		trials = 4
	}
	lambda := 0.1
	for _, g := range funcs {
		h := gfunc.MeasureEnvelope(g, 1<<13).H()
		for _, mag := range mags {
			found, total := 0, 0
			margin := math.Inf(1)
			for seed := uint64(1); seed <= uint64(trials); seed++ {
				s, planted := stream.PlantedHeavy(stream.GenConfig{
					N: 1 << 14, M: 1 << 13, Seed: seed * 3,
				}, 200, mag/16, mag)
				v := s.Vector()
				exact := heavy.ExactHeavy(g, lambda, v)
				if !exact.Contains(planted) {
					continue // not heavy at this magnitude for this g; skip
				}
				total++
				op := heavy.NewOnePass(heavy.OnePassConfig{
					G: g, Lambda: lambda, Eps: 0.25, Delta: 0.1, H: h,
				}, util.NewSplitMix64(seed*41))
				s.Each(func(u stream.Update) { op.Update(u.Item, u.Delta) })
				if op.Cover().Contains(planted) {
					found++
				}
				f2 := v.F2()
				if m := float64(mag) * float64(mag) / (lambda / h * f2); m < margin {
					margin = m
				}
			}
			rec := "n/a"
			if total > 0 {
				rec = fmtPct(float64(found) / float64(total))
			}
			t.AddRow(g.Name(), fmt.Sprint(mag), rec, fmtF(margin), fmtF(h))
		}
	}
	t.AddNote("expected shape: recall 100%% whenever the planted item is (g,λ)-heavy; F2 margin >= 1 (Lemma 17)")
	return t
}

// E11HigherOrder reproduces Section 1.1.4: packing a k-attribute frequency
// matrix into one variable yields an induced g' with extreme local
// variability — the one-pass algorithm degrades on it while the two-pass
// algorithm is unaffected, exactly the regime the paper built the 2-pass
// law for.
func E11HigherOrder(quick bool) Table {
	t := Table{
		ID:     "E11",
		Title:  "Higher-order encoding (§1.1.4): induced g' breaks 1-pass, not 2-pass",
		Header: []string{"packing", "local var g'", "local var x²", "1-pass err", "2-pass err"},
	}
	p, err := encode.NewPacking(16, 2)
	if err != nil {
		panic(err)
	}
	induced := p.Induced("(d0+4*d1)^2", func(d []uint64) float64 {
		s := float64(d[0] + 4*d[1])
		return s * s
	})
	seeds := 7
	if quick {
		seeds = 4
	}
	var errs1, errs2 []float64
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		s := matrixStream(p, seed)
		exact := core.NewExact(induced)
		exact.Process(s)
		truth := exact.Estimate()

		opts := core.Options{
			N: s.N(), M: int64(p.MaxPacked()), Eps: 0.25, Seed: seed * 131,
			Lambda: 1.0 / 16, Envelope: 8,
		}
		one := core.NewOnePass(induced, opts)
		one.Process(s)
		errs1 = append(errs1, util.RelErr(one.Estimate(), truth))

		two := core.NewTwoPass(induced, opts)
		errs2 = append(errs2, util.RelErr(two.Run(s), truth))
	}
	t.AddRow("b=16,k=2",
		fmtF(encode.LocalVariability(induced, p.MaxPacked())),
		fmtF(encode.LocalVariability(gfunc.F2Func(), p.MaxPacked())),
		fmtF(util.MedianFloat64(errs1)), fmtF(util.MedianFloat64(errs2)))
	t.AddNote("expected shape: induced local variability near 1; 2-pass error stays small, 1-pass degrades")
	return t
}

// matrixStream emits a two-attribute frequency matrix as packed updates:
// each item receives attribute-0 and attribute-1 counts in [0, 16). The
// item count exceeds the sketches' candidate capacity, so point queries
// carry genuine error and the induced function's local variability is
// exposed to the pruning step.
func matrixStream(p encode.Packing, seed uint64) *stream.Stream {
	rng := util.NewSplitMix64(seed * 977)
	s := stream.New(1 << 13)
	used := make(map[uint64]struct{})
	for i := 0; i < 4000; i++ {
		var it uint64
		for {
			it = rng.Uint64n(1 << 13)
			if _, ok := used[it]; !ok {
				used[it] = struct{}{}
				break
			}
		}
		d0 := 1 + rng.Int63n(15)
		d1 := rng.Int63n(16)
		// Updates arrive per-attribute as the encoding prescribes:
		// attribute j contributes b^j per logical increment.
		for k := int64(0); k < d0; k++ {
			s.Add(it, p.DeltaFor(0))
		}
		for k := int64(0); k < d1; k++ {
			s.Add(it, p.DeltaFor(1))
		}
	}
	return s
}

// E12LEtaTransform reproduces Theorems 30/31: the transformation
// L_η(g) = g·log^η(1+x) preserves 1-pass tractability of S-normal
// functions, but applied to a nearly periodic function it destroys the
// near-repetition structure and yields an intractable function.
func E12LEtaTransform() Table {
	t := Table{
		ID:     "E12",
		Title:  "L_η transform separates normal from nearly periodic (Thm 30/31)",
		Header: []string{"function", "verdict before", "verdict after L_1", "paper"},
	}
	cfg := gfunc.DefaultCheckConfig()
	cases := []struct {
		g    gfunc.Func
		want gfunc.Tractability // expected 1-pass verdict after L_1
	}{
		{gfunc.F2Func(), gfunc.Tractable},
		{gfunc.F1Func(), gfunc.Tractable},
		{gfunc.X2Log(), gfunc.Tractable},
		{gfunc.ExpSqrtLog(), gfunc.Tractable},
		{gfunc.Gnp(), gfunc.Intractable},
	}
	allOK := true
	for _, c := range cases {
		before := gfunc.Classify(c.g, cfg)
		after := gfunc.Classify(gfunc.LEta(c.g, 1), cfg)
		ok := after.OnePass == c.want
		allOK = allOK && ok
		t.AddRow(c.g.Name(), before.OnePass.String(), after.OnePass.String(), mark(ok))
	}
	t.AddNote("Thm 31: L_η keeps tractable S-normal functions tractable; Thm 30: L_η(g_np) is 1-pass intractable. all match: %v", allOK)
	return t
}
