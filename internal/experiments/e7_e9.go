package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/mle"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// E7NearlyPeriodic reproduces Appendix D.1: the nearly periodic g_np —
// which the zero-one law does not cover, and whose INDEX reduction fails —
// really is 1-pass tractable. The dedicated algorithm recovers the
// (g_np, λ)-heavy hitter with polylogarithmic space, and its space scales
// polylogarithmically with the domain while the linear baseline grows
// 1024-fold.
func E7NearlyPeriodic(quick bool) Table {
	t := Table{
		ID:     "E7",
		Title:  "g_np heavy hitters in polylog space (Appendix D.1, Prop 54)",
		Header: []string{"domain n", "recall", "weight exact", "space(KB)", "linear(KB)"},
	}
	domains := []uint64{1 << 14, 1 << 18, 1 << 22}
	trials := 10
	if quick {
		domains = []uint64{1 << 14, 1 << 18}
		trials = 6
	}
	g := gfunc.Gnp()
	for _, n := range domains {
		found, exactW := 0, 0
		others := 40
		for seed := uint64(1); seed <= uint64(trials); seed++ {
			rng := util.NewSplitMix64(seed * 5)
			s := stream.New(n)
			want := rng.Uint64n(n)
			s.Add(want, 2*rng.Int63n(1<<20)+1) // odd: iota 0, g_np = 1
			for i := 0; i < others; i++ {
				it := rng.Uint64n(n)
				if it == want {
					continue
				}
				s.Add(it, 1024*(1+rng.Int63n(64))) // iota >= 10
			}
			gh := heavy.NewGnpHeavy(heavy.GnpHeavyConfig{N: n, Lambda: 0.3, Substreams: 64},
				util.NewSplitMix64(seed*31))
			s.Each(func(u stream.Update) { gh.Update(u.Item, u.Delta) })
			cover := gh.Cover()
			if cover.Contains(want) {
				found++
				v := s.Vector()
				for _, e := range cover {
					if e.Item == want &&
						e.Weight == g.Eval(uint64(util.AbsInt64(v[want]))) {
						exactW++
					}
				}
			}
		}
		gh := heavy.NewGnpHeavy(heavy.GnpHeavyConfig{N: n, Lambda: 0.3, Substreams: 64},
			util.NewSplitMix64(1))
		linear := float64(n) * 16 / 1024
		t.AddRow(fmt.Sprint(n), fmtPct(float64(found)/float64(trials)),
			fmtPct(float64(exactW)/float64(trials)),
			fmtF(float64(gh.SpaceBytes())/1024), fmtF(linear))
	}
	t.AddNote("expected shape: recall near 100%%, recovered weights exact, space ~log n vs linear ~n")
	return t
}

// E8ApproxMLE reproduces the Section 1.1.1 application: streaming
// approximate maximum likelihood over a parameter grid from a single
// universal sketch, with the guarantee ℓ(θ̂) <= (1+ε) min_θ ℓ(θ).
func E8ApproxMLE(quick bool) Table {
	t := Table{
		ID:     "E8",
		Title:  "Approximate MLE from a universal sketch (§1.1.1)",
		Header: []string{"true θ", "seed", "θ̂ (sketch)", "θ* (exact grid)", "ℓ(θ̂)/ℓ(θ*)", "space(KB)"},
	}
	const n = 1 << 10
	grid := []float64{0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75}
	models := make([]*mle.Model, len(grid))
	for i, q := range grid {
		m, err := mle.NewModel(mle.Geometric{Q: q, Max: 32})
		if err != nil {
			panic(err)
		}
		models[i] = m
	}
	seeds := 5
	if quick {
		seeds = 3
	}
	trueQ := 0.45
	truth := mle.Geometric{Q: trueQ, Max: 32}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		s := stream.IIDSamples(stream.GenConfig{N: n, M: 32, Seed: seed * 7},
			func(rng *util.SplitMix64) int64 { return int64(truth.Sample(rng)) })
		est := mle.NewEstimator(models, core.Options{
			N: n, M: 32, Eps: 0.2, Seed: seed * 11,
			Lambda: 1.0 / 8, WidthFactor: 0.5,
		}, 3)
		est.Process(s)
		idx, _ := est.ArgMin()

		v := s.Vector()
		bestIdx, bestLL := 0, math.Inf(1)
		for i, m := range models {
			if ll := m.ExactLogLikelihood(v, n); ll < bestLL {
				bestIdx, bestLL = i, ll
			}
		}
		chosen := models[idx].ExactLogLikelihood(v, n)
		t.AddRow(fmtF(trueQ), fmt.Sprint(seed), fmtF(grid[idx]), fmtF(grid[bestIdx]),
			fmtF(chosen/bestLL), fmtF(float64(est.SpaceBytes())/1024))
	}
	t.AddNote("guarantee: ℓ(θ̂)/ℓ(θ*) <= 1+ε = 1.2; θ̂ should match or neighbor the exact grid minimizer")
	return t
}

// E9SketchGuarantees validates the substrate guarantees the algorithms
// rely on (§3.1): the CountSketch point-query error bound and the AMS
// (1±ε) F2 approximation, across widths.
func E9SketchGuarantees(quick bool) Table {
	t := Table{
		ID:     "E9",
		Title:  "CountSketch and AMS guarantees (§3.1)",
		Header: []string{"structure", "param", "bound", "observed p99", "F2 rel err"},
	}
	seeds := 5
	if quick {
		seeds = 3
	}
	widths := []uint64{256, 1024, 4096}
	for _, b := range widths {
		var p99s, f2errs []float64
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			s := stream.Zipf(stream.GenConfig{N: 1 << 16, M: 1 << 10, Seed: seed}, 600, 1.0)
			v := s.Vector()
			cs := sketch.NewCountSketch(9, b, util.NewSplitMix64(seed*13))
			s.Each(func(u stream.Update) { cs.Update(u.Item, u.Delta) })
			var errs []float64
			for it, f := range v {
				errs = append(errs, math.Abs(float64(cs.Estimate(it)-f)))
			}
			p99s = append(p99s, util.Quantile(errs, 0.99))
			f2errs = append(f2errs, util.RelErr(cs.EstimateF2(), v.F2()))
		}
		s := stream.Zipf(stream.GenConfig{N: 1 << 16, M: 1 << 10, Seed: 1}, 600, 1.0)
		bound := 2 * math.Sqrt(s.Vector().F2()/float64(b))
		t.AddRow("CountSketch", fmt.Sprintf("b=%d", b), fmtF(bound),
			fmtF(util.MeanFloat64(p99s)), fmtF(util.MeanFloat64(f2errs)))
	}
	for _, reps := range []int{16, 64, 256} {
		var errs []float64
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			s := stream.Zipf(stream.GenConfig{N: 1 << 16, M: 1 << 10, Seed: seed}, 600, 1.0)
			a := sketch.NewAMS(9, reps, util.NewSplitMix64(seed*17))
			s.Each(func(u stream.Update) { a.Update(u.Item, u.Delta) })
			errs = append(errs, util.RelErr(a.EstimateF2(), s.Vector().F2()))
		}
		t.AddRow("AMS", fmt.Sprintf("reps=%d", reps),
			fmtF(math.Sqrt(8/float64(reps))), fmtF(maxOf(errs)), fmtF(util.MeanFloat64(errs)))
	}
	t.AddNote("expected shape: observed p99 <= bound; errors shrink like 1/sqrt(width)")
	return t
}
