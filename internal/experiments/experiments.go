// Package experiments implements the paper-reproduction experiment suite
// E1-E12 indexed in DESIGN.md. Each experiment returns a Table whose rows
// regenerate the corresponding claim of the paper; the cmd/gsum binary and
// the root bench harness both render these tables, and EXPERIMENTS.md
// records a reference run.
//
// The paper is a theory paper with no measured tables, so the experiments
// materialize its claims: the zero-one-law classifications (E1, E12), the
// upper bounds as accuracy-vs-space curves (E2, E7, E9, E10), the
// 1-pass/2-pass separation (E3, E11), and the lower bounds as executable
// reductions whose undersized solvers demonstrably fail (E4, E5, E6).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, " ", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note:", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// yesNo renders a boolean verdict.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// mark renders agreement with the paper.
func mark(b bool) string {
	if b {
		return "OK"
	}
	return "MISMATCH"
}

// All runs every experiment with default settings and returns the tables
// in order. Heavier experiments accept a quick flag to shrink workloads.
func All(quick bool) []Table {
	return []Table{
		E1Classification(),
		E2OnePassTractable(quick),
		E3TwoPassSeparation(quick),
		E4IndexReduction(quick),
		E5DisjIndReduction(quick),
		E6ShortLinearCombination(quick),
		E7NearlyPeriodic(quick),
		E8ApproxMLE(quick),
		E9SketchGuarantees(quick),
		E10HeavyHitterRecall(quick),
		E11HigherOrder(quick),
		E12LEtaTransform(),
		E13DiscreteCounting(quick),
		E14MetricInstability(),
		E15MajorityAmplification(quick),
	}
}
