package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, " ", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note:", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// yesNo renders a boolean verdict.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// mark renders agreement with the paper.
func mark(b bool) string {
	if b {
		return "OK"
	}
	return "MISMATCH"
}

// Runner is a named experiment that can be executed on demand.
type Runner struct {
	ID  string
	Run func(quick bool) Table
}

// Runners returns the experiment registry in suite order. Unlike All it
// does not execute anything, so callers can look up a single experiment
// by ID and run only that one.
func Runners() []Runner {
	return []Runner{
		{"E1", func(bool) Table { return E1Classification() }},
		{"E2", E2OnePassTractable},
		{"E3", E3TwoPassSeparation},
		{"E4", E4IndexReduction},
		{"E5", E5DisjIndReduction},
		{"E6", E6ShortLinearCombination},
		{"E7", E7NearlyPeriodic},
		{"E8", E8ApproxMLE},
		{"E9", E9SketchGuarantees},
		{"E10", E10HeavyHitterRecall},
		{"E11", E11HigherOrder},
		{"E12", func(bool) Table { return E12LEtaTransform() }},
		{"E13", E13DiscreteCounting},
		{"E14", func(bool) Table { return E14MetricInstability() }},
		{"E15", E15MajorityAmplification},
	}
}

// All runs every experiment with default settings and returns the tables
// in order. Heavier experiments accept a quick flag to shrink workloads.
func All(quick bool) []Table {
	rs := Runners()
	out := make([]Table, len(rs))
	for i, r := range rs {
		out[i] = r.Run(quick)
	}
	return out
}
