package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// E1Classification regenerates the paper's worked-example classifications
// (§3 definitions, §4.6 examples): for every function the paper names, the
// three property verdicts, near-periodicity, and the Theorem 2/3
// tractability conclusions, checked against the paper's prose.
func E1Classification() Table {
	t := Table{
		ID:    "E1",
		Title: "Zero-one law classification of the paper's worked examples (§3, §4.6)",
		Header: []string{"function", "slow-jump", "slow-drop", "predictable",
			"nearly-per", "1-pass", "2-pass", "paper"},
	}
	cfg := gfunc.DefaultCheckConfig()
	allOK := true
	for _, entry := range gfunc.Catalog() {
		c := gfunc.Classify(entry.Func, cfg)
		ok := c.SlowJumping.Holds == entry.WantJump &&
			c.SlowDropping.Holds == entry.WantDrop &&
			c.Predictable.Holds == entry.WantPred &&
			c.NearlyPeriodic.Holds == entry.WantNP &&
			c.OnePass == entry.WantOnePass &&
			c.TwoPass == entry.WantTwoPass
		allOK = allOK && ok
		t.AddRow(entry.Func.Name(),
			yesNo(c.SlowJumping.Holds), yesNo(c.SlowDropping.Holds),
			yesNo(c.Predictable.Holds), yesNo(c.NearlyPeriodic.Holds),
			c.OnePass.String(), c.TwoPass.String(), mark(ok))
	}
	t.AddNote("all verdicts match the paper: %v", allOK)
	return t
}

// E2OnePassTractable regenerates the Theorem 2 upper bound as an
// accuracy-vs-space curve: for 1-pass tractable functions, the relative
// error of the one-pass estimator falls below ε at sub-polynomial sketch
// sizes, and widening the sketch only helps.
func E2OnePassTractable(quick bool) Table {
	t := Table{
		ID:     "E2",
		Title:  "One-pass g-SUM accuracy vs sketch width, tractable g (Thm 2 + Thm 13)",
		Header: []string{"function", "widthFactor", "space(KB)", "mean rel err", "max rel err"},
	}
	funcs := []gfunc.Func{gfunc.F2Func(), gfunc.Power(1.5), gfunc.X2Log(), gfunc.SinLogX2()}
	widths := []float64{0.02, 0.1, 0.5, 1.0}
	seeds := 5
	if quick {
		widths = []float64{0.1, 1.0}
		seeds = 3
	}
	for _, g := range funcs {
		for _, wf := range widths {
			var errs []float64
			space := 0
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 400, 1.1)
				exact := core.NewExact(g)
				exact.Process(s)
				truth := exact.Estimate()

				est := core.NewOnePass(g, core.Options{
					N: s.N(), M: 1 << 10, Eps: 0.25, Seed: seed * 101,
					Lambda: 1.0 / 16, WidthFactor: wf,
				})
				est.Process(s)
				errs = append(errs, util.RelErr(est.Estimate(), truth))
				space = est.SpaceBytes()
			}
			t.AddRow(g.Name(), fmtF(wf), fmtF(float64(space)/1024),
				fmtF(util.MeanFloat64(errs)), fmtF(maxOf(errs)))
		}
	}
	t.AddNote("expected shape: error decreases with width; at widthFactor 1 every tractable g is within ε=0.25")
	return t
}

// E3TwoPassSeparation regenerates the Theorem 2 vs Theorem 3 separation:
// for the unpredictable (2+sin √x)x², adversarial streams whose heavy
// frequencies sit at steep points of the oscillation defeat the one-pass
// algorithm (the pruning step cannot certify g and drops them — Lemma 25's
// mechanism), while the two-pass algorithm tabulates exact frequencies and
// stays accurate. The predictable control (2+sin log(1+x))x² shows no
// separation.
func E3TwoPassSeparation(quick bool) Table {
	t := Table{
		ID:     "E3",
		Title:  "1-pass vs 2-pass on unpredictable g (Thm 2 vs Thm 3)",
		Header: []string{"function", "pass", "median rel err", "worst rel err"},
	}
	seeds := 9
	if quick {
		seeds = 5
	}
	for _, g := range []gfunc.Func{gfunc.SinSqrtX2(), gfunc.SinLogX2()} {
		var errs1, errs2 []float64
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			s := UnstableHeavyStream(g, seed)
			exact := core.NewExact(g)
			exact.Process(s)
			truth := exact.Estimate()

			opts := core.Options{
				N: s.N(), M: 1 << 16, Eps: 0.25, Seed: seed * 113,
				Lambda: 1.0 / 16,
				// Size both sketches identically using the control
				// function's modest envelope: the point is what happens at
				// a FIXED sub-polynomial size.
				Envelope: gfunc.MeasureEnvelope(gfunc.SinLogX2(), 1<<16).H(),
			}
			one := core.NewOnePass(g, opts)
			one.Process(s)
			errs1 = append(errs1, util.RelErr(one.Estimate(), truth))

			two := core.NewTwoPass(g, opts)
			errs2 = append(errs2, util.RelErr(two.Run(s), truth))
		}
		t.AddRow(g.Name(), "1-pass", fmtF(util.MedianFloat64(errs1)), fmtF(maxOf(errs1)))
		t.AddRow(g.Name(), "2-pass", fmtF(util.MedianFloat64(errs2)), fmtF(maxOf(errs2)))
	}
	t.AddNote("expected shape: large 1-pass error ONLY for (2+sin sqrt(x))x^2; 2-pass small everywhere")
	return t
}

// UnstableHeavyStream plants heavy items at magnitudes where g moves
// steeply under the sketch's frequency uncertainty, atop a bulk of noise
// items that keeps the CountSketch error window wide. It is the E3
// adversarial workload, exported for the pruning ablation bench.
func UnstableHeavyStream(g gfunc.Func, seed uint64) *stream.Stream {
	rng := util.NewSplitMix64(seed * 7919)
	s := stream.New(1 << 14)
	used := make(map[uint64]struct{})
	pick := func() uint64 {
		for {
			it := rng.Uint64n(1 << 14)
			if _, ok := used[it]; !ok {
				used[it] = struct{}{}
				return it
			}
		}
	}
	// 30 heavy items at magnitudes ~30000 chosen at the steepest phase of
	// the modulation: for sin(sqrt x), steepness is |cos(sqrt x)| ~ 1.
	base := 30000.0
	for i := 0; i < 30; i++ {
		x := base + float64(i)*2000
		sq := math.Sqrt(x)
		// shift x so that sqrt(x) sits at phase k*pi (steepest point of sin)
		k := math.Round(sq / math.Pi)
		target := k * math.Pi * k * math.Pi
		if target < 1000 {
			target = x
		}
		s.AddCopies(pick(), int64(target))
	}
	// 1500 noise items keep the F2 tail (and hence the pruning window) wide.
	for i := 0; i < 1500; i++ {
		s.AddCopies(pick(), 300+rng.Int63n(300))
	}
	return s
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
