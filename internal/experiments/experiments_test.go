package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// The experiment tables are the reproduction's primary artifact, so they
// get their own assertions: each must render, carry the expected shape,
// and — where the table embeds a pass/fail comparison against the paper —
// report agreement.

func TestE1AllVerdictsMatchPaper(t *testing.T) {
	tab := E1Classification()
	if len(tab.Rows) < 16 {
		t.Fatalf("E1 has %d rows, want the full catalog (16)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "OK" {
			t.Errorf("E1 row %q disagrees with the paper", row[0])
		}
	}
}

func TestE2ErrorDecreasesWithWidth(t *testing.T) {
	tab := E2OnePassTractable(true)
	// Rows come in (function, width...) groups of 2 in quick mode; the
	// wider setting must not have larger mean error by more than noise.
	if len(tab.Rows)%2 != 0 {
		t.Fatalf("unexpected row count %d", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		narrow, wide := parseF(t, tab.Rows[i][3]), parseF(t, tab.Rows[i+1][3])
		if wide > narrow+0.05 {
			t.Errorf("%s: error grew with width: %.4g -> %.4g",
				tab.Rows[i][0], narrow, wide)
		}
		if wide > 0.25 {
			t.Errorf("%s: wide error %.4g above ε", tab.Rows[i][0], wide)
		}
	}
}

func TestE3SeparationShape(t *testing.T) {
	tab := E3TwoPassSeparation(true)
	if len(tab.Rows) != 4 {
		t.Fatalf("E3 rows = %d, want 4", len(tab.Rows))
	}
	// rows: sinsqrt 1-pass, sinsqrt 2-pass, sinlog 1-pass, sinlog 2-pass
	unpre1 := parseF(t, tab.Rows[0][3]) // worst err, unpredictable 1-pass
	unpre2 := parseF(t, tab.Rows[1][3])
	ctrl1 := parseF(t, tab.Rows[2][3])
	if unpre1 < 3*unpre2 {
		t.Errorf("no 1-pass/2-pass separation on unpredictable g: %.4g vs %.4g", unpre1, unpre2)
	}
	if ctrl1 > 0.25 {
		t.Errorf("predictable control should not fail 1-pass: worst err %.4g", ctrl1)
	}
}

func TestE4CollapseShape(t *testing.T) {
	tab := E4IndexReduction(true)
	first := parsePct(t, tab.Rows[0][2])
	last := parsePct(t, tab.Rows[len(tab.Rows)-1][2])
	if last >= first {
		t.Errorf("sketch accuracy did not collapse: %.2f -> %.2f", first, last)
	}
	for _, row := range tab.Rows {
		if acc := parsePct(t, row[4]); acc != 1 {
			t.Errorf("exact accuracy %v at y=%s, want 100%%", acc, row[0])
		}
	}
}

func TestE5ExactAlwaysWins(t *testing.T) {
	tab := E5DisjIndReduction(true)
	for _, row := range tab.Rows {
		if acc := parsePct(t, row[6]); acc != 1 {
			t.Errorf("exact accuracy %v at y=%s, want 100%%", acc, row[0])
		}
	}
	first := parsePct(t, tab.Rows[0][5])
	last := parsePct(t, tab.Rows[len(tab.Rows)-1][5])
	if last >= first {
		t.Errorf("sketch accuracy did not decay with y: %.2f -> %.2f", first, last)
	}
}

func TestE7RecallAndSpace(t *testing.T) {
	tab := E7NearlyPeriodic(true)
	for _, row := range tab.Rows {
		if rec := parsePct(t, row[1]); rec < 0.8 {
			t.Errorf("g_np recall %.2f at n=%s", rec, row[0])
		}
	}
	// Space must grow far slower than the linear column.
	firstSpace := parseF(t, tab.Rows[0][3])
	lastSpace := parseF(t, tab.Rows[len(tab.Rows)-1][3])
	firstLin := parseF(t, tab.Rows[0][4])
	lastLin := parseF(t, tab.Rows[len(tab.Rows)-1][4])
	if (lastSpace / firstSpace) > 0.2*(lastLin/firstLin) {
		t.Errorf("g_np space growth %.2fx not clearly sublinear vs linear growth %.2fx",
			lastSpace/firstSpace, lastLin/firstLin)
	}
}

func TestE12AllMatch(t *testing.T) {
	tab := E12LEtaTransform()
	for _, row := range tab.Rows {
		if row[len(row)-1] != "OK" {
			t.Errorf("E12 row %q disagrees with the paper", row[0])
		}
	}
}

func TestE14PerturbationFlipsGnp(t *testing.T) {
	tab := E14MetricInstability()
	flips := 0
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "g_np") && row[4] == "intractable" {
			flips++
		}
	}
	if flips != 3 {
		t.Errorf("expected all 3 g_np perturbations to flip to intractable, got %d", flips)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{ID: "T", Title: "title", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== T: title ==", "a  bb", "1  2", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	return parseF(t, strings.TrimSuffix(s, "%")) / 100
}
