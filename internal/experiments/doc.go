// Package experiments implements the paper-reproduction experiment suite
// E1-E15 indexed in DESIGN.md. Each experiment returns a Table whose rows
// regenerate the corresponding claim of the paper; the cmd/gsum binary and
// the root bench harness both render these tables, and EXPERIMENTS.md
// records a reference run.
//
// The paper is a theory paper with no measured tables, so the experiments
// materialize its claims: the zero-one-law classifications (E1, E12), the
// upper bounds as accuracy-vs-space curves (E2, E7, E9, E10), the
// 1-pass/2-pass separation (E3, E11), and the lower bounds as executable
// reductions whose undersized solvers demonstrably fail (E4, E5, E6).
//
// Layer: harness layer in ARCHITECTURE.md, alongside internal/engine
// and internal/workload; cmd/gsum experiments and bench_test.go are
// its front ends.
// Seed discipline: every experiment pins explicit seeds so EXPERIMENTS.md
// tables reproduce run to run.
package experiments
