package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// feedDist streams every update into a DIST solver.
func feedDist(ds *comm.DistSolver, s *stream.Stream) {
	s.Each(func(u stream.Update) { ds.Update(u.Item, u.Delta) })
}

// commExact adapts the exact baseline to the comm.Estimator interface.
type commExact struct {
	g gfunc.Func
	e *sketch.Exact
}

func newCommExact(g gfunc.Func) *commExact {
	return &commExact{g: g, e: sketch.NewExact()}
}

func (x *commExact) Update(item uint64, delta int64) { x.e.Update(item, delta) }

func (x *commExact) Estimate() float64 {
	var sum float64
	x.e.Each(func(_ uint64, f int64) { sum += x.g.Eval(uint64(util.AbsInt64(f))) })
	return sum
}

// E4IndexReduction executes the Lemma 23 reduction: 1/x is not
// slow-dropping, and the INDEX instances it induces defeat any fixed
// sub-polynomial sketch — the one-pass estimator's distinguishing accuracy
// collapses to coin flipping as the instance grows, while the exact
// (linear-space) algorithm stays at 100%.
func E4IndexReduction(quick bool) Table {
	t := Table{
		ID:     "E4",
		Title:  "Lemma 23 INDEX reduction for 1/x (not slow-dropping)",
		Header: []string{"y (=n)", "|A|", "sketch acc", "sketch KB", "exact acc", "exact KB"},
	}
	g := gfunc.Reciprocal()
	// Following Lemma 23 with α = 1: |A| = y, so the instance grows while
	// the sketch parameters stay fixed (a fixed sub-polynomial budget).
	sizes := []uint64{64, 256, 1024, 4096}
	trials := 20
	if quick {
		sizes = []uint64{64, 1024}
		trials = 10
	}
	for _, y := range sizes {
		cfg := comm.IndexDropConfig{G: g, X: 1, Y: y, SetSize: int(y), Seed: y}
		var sketchSpace int
		makePair := func(trial int) comm.InstancePair { return comm.NewIndexDropPair(cfg, trial) }
		accSketch := comm.Distinguisher(makePair, func(trial, which int) comm.Estimator {
			e := core.NewOnePass(g, core.Options{
				N: uint64(cfg.SetSize + 2), M: int64(2 * y), Eps: 0.1,
				Seed: uint64(trial)*31 + uint64(which), Lambda: 1.0 / 8,
				// Fixed budget: envelope clamped to 1 (the true drop
				// envelope grows like y, i.e. polynomially), shallow
				// recursion, narrow rows.
				Envelope: 1, Levels: 6, WidthFactor: 0.5,
			})
			sketchSpace = e.SpaceBytes()
			return e
		}, trials)
		accExact := comm.Distinguisher(makePair, func(trial, which int) comm.Estimator {
			return newCommExact(g)
		}, trials)
		exactSpace := (cfg.SetSize + 1) * 16
		t.AddRow(fmt.Sprint(y), fmt.Sprint(cfg.SetSize),
			fmtPct(accSketch), fmtF(float64(sketchSpace)/1024),
			fmtPct(accExact), fmtF(float64(exactSpace)/1024))
	}
	t.AddNote("expected shape: sketch accuracy falls toward chance as y grows at fixed budget; exact stays 100%%")
	t.AddNote("chance is 25%%: a trial counts only if BOTH the Yes and the No instance land on the correct side")
	return t
}

// E5DisjIndReduction executes the Lemma 24 reduction: x³ is not
// slow-jumping; the DISJ+IND instances plant a single frequency-y item
// whose F2 share shrinks like 1/y, so a fixed-size sketch cannot see the
// g-dominant item and the distinguishing accuracy collapses.
func E5DisjIndReduction(quick bool) Table {
	t := Table{
		ID:     "E5",
		Title:  "Lemma 24 DISJ+IND reduction for x^3 (not slow-jumping)",
		Header: []string{"y", "x", "players t", "items", "gap factor", "sketch acc", "exact acc"},
	}
	g := gfunc.X3()
	ys := []uint64{32, 64, 128, 256}
	trials := 16
	if quick {
		ys = []uint64{32, 128}
		trials = 8
	}
	for _, y := range ys {
		x := uint64(float64(y)*0.4) | 1 // ~y^0.4-ish scale; odd to avoid degenerate gcds
		x = isqrtScale(y)
		tPlayers := y / x
		// Lemma 24 sizes the universe so the planted item's F2 share is
		// ~1/y: n' items of frequency x with n'x² ≈ y³/x⁰ → n' = y³/x²...
		// use n' = (y/x)² · y / 2 to keep laptop-scale streams.
		items := int((y / x) * (y / x) * y / 2)
		if items < 64 {
			items = 64
		}
		setSize := items / int(tPlayers)
		cfg := comm.DisjJumpConfig{G: g, X: x, Y: y, SetSize: setSize, Seed: y * 3}
		p0 := comm.NewDisjJumpPair(cfg, 0)

		makePair := func(trial int) comm.InstancePair { return comm.NewDisjJumpPair(cfg, trial) }
		accSketch := comm.Distinguisher(makePair, func(trial, which int) comm.Estimator {
			return core.NewOnePass(g, core.Options{
				N: uint64(setSize*int(tPlayers) + 2), M: int64(2 * y), Eps: 0.1,
				Seed: uint64(trial)*37 + uint64(which), Lambda: 1.0 / 16,
				Envelope: 4, // fixed size: the envelope the sketch WOULD need is ~y
			})
		}, trials)
		accExact := comm.Distinguisher(makePair, func(trial, which int) comm.Estimator {
			return newCommExact(g)
		}, trials)
		t.AddRow(fmt.Sprint(y), fmt.Sprint(x), fmt.Sprint(tPlayers),
			fmt.Sprint(setSize*int(tPlayers)), fmtF(p0.GapFactor()),
			fmtPct(accSketch), fmtPct(accExact))
	}
	t.AddNote("expected shape: fixed-size sketch accuracy decays as y grows (required width ~ envelope ~ y); exact stays 100%%")
	return t
}

// isqrtScale returns ~y^0.5, the x used in the jump witness family.
func isqrtScale(y uint64) uint64 {
	x := uint64(1)
	for x*x < y {
		x++
	}
	if x < 2 {
		x = 2
	}
	return x
}

// E6ShortLinearCombination reproduces Appendix C: the (a,b,c)-DIST problem
// is solvable with t = Õ(n/q²) counters (Proposition 49) and not below
// (Theorem 48). For pairs with growing minimal coefficient q, the table
// sweeps the bucket count t and reports detection accuracy: the t needed
// for reliable detection grows with the load the residue radius tolerates,
// i.e. with n/q².
func E6ShortLinearCombination(quick bool) Table {
	t := Table{
		ID:     "E6",
		Title:  "ShortLinearCombination (a,b,1)-DIST: accuracy vs buckets t (Prop 49 / Thm 48)",
		Header: []string{"(a,b)", "min q", "radius l", "t=16", "t=64", "t=256", "t=1024"},
	}
	pairs := [][2]int64{{7, 3}, {31, 12}, {61, 17}, {127, 47}}
	ts := []int{16, 64, 256, 1024}
	trials := 20
	items := 300
	if quick {
		pairs = pairs[:2]
		trials = 10
	}
	for _, ab := range pairs {
		a, b := ab[0], ab[1]
		q, ok := comm.MinCombination([]int64{a, b}, 1, int(a+b))
		if !ok {
			t.AddRow(fmt.Sprintf("(%d,%d)", a, b), "n/a", "", "", "", "", "")
			continue
		}
		qn := comm.NormOf(q)
		// Sound residue radius: largest l with disjoint residue sets (can
		// be 0 for tiny q, in which case the bucket load must be < 1 for
		// soundness — the Ω(n/q²) regime).
		sound := int64(0)
		for comm.ResidueSetsDisjoint(a, b, 1, sound+1) == nil {
			sound++
		}
		row := []string{fmt.Sprintf("(%d,%d)", a, b), fmt.Sprint(qn), fmt.Sprint(sound)}
		for _, tt := range ts {
			// Use the largest sound radius (never below 1): a wider base
			// set only helps absorb bucket collisions, and soundness keeps
			// the c-shifted residues outside it. Buckets hold ~items/t
			// signed b-items; whenever the realized |z| exceeds l the
			// solver errs — for small q (small sound radius) that happens
			// at every laptop-scale t, which is the Ω(n/q²) lower bound
			// made visible.
			l := sound
			if l < 1 {
				l = 1
			}
			correct := 0
			for trial := 0; trial < trials; trial++ {
				yes, no := comm.NewDistPair(comm.DistConfig{
					A: a, B: b, C: 1, N: 1 << 12,
					FillA: items, FillB: items, Seed: uint64(trial)*17 + uint64(a),
				}, trial)
				sy := comm.NewDistSolver(a, b, 1, tt, l,
					util.NewSplitMix64(uint64(trial)*29+uint64(a+b)))
				feedDist(sy, yes)
				sn := comm.NewDistSolver(a, b, 1, tt, l,
					util.NewSplitMix64(uint64(trial)*29+uint64(a+b)))
				feedDist(sn, no)
				if sy.Detect() && !sn.Detect() {
					correct++
				}
			}
			row = append(row, fmtPct(float64(correct)/float64(trials)))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: larger q (larger radius) tolerates more bucket collisions, so accuracy reaches ~100%% at smaller t; tiny q needs t close to the item count")
	t.AddNote("the (7,3) row has b-coefficient 2, sound radius 0: soundness needs buckets with no two colliding b-items, i.e. t = Ω(n²) at this scale — its flat 0%% IS Theorem 48's lower bound")
	return t
}
