package experiments

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/discrete"
	"repro/internal/gfunc"
	"repro/internal/util"
)

// E13DiscreteCounting reproduces Appendix D.4 / Theorem 57: in the
// discretized model GD, nearly periodic functions are vanishingly rare.
// The table reports Monte-Carlo counts of Bn-like and Tn functions among
// random members of GD, alongside the analytic log2 bound on |Bn|/|Tn|,
// which decreases linearly in M once log log n clears the constant.
func E13DiscreteCounting(quick bool) Table {
	t := Table{
		ID:     "E13",
		Title:  "Counting nearly periodic functions in the discretized model (Thm 57)",
		Header: []string{"M", "M'", "log n", "samples", "Bn hits", "Tn hits", "log2 bound |Bn|/|Tn|"},
	}
	samples := 4000
	if quick {
		samples = 1500
	}
	rng := util.NewSplitMix64(271828)
	type cfg struct {
		m    int
		mp   uint64
		logN float64
	}
	// Two regimes: small log n keeps the (log n)^8 drop threshold below
	// M', so Bn membership is genuinely possible (and still never
	// observed); moderate log n makes the Tn floor M'/log n lenient, so
	// the Lemma 59 family is visibly large.
	cases := []cfg{
		{8, 64, 1.5},
		{12, 64, 1.5},
		{16, 64, 1.5},
		{8, 64, 4},
		{16, 64, 4},
	}
	for _, c := range cases {
		bn, tn := discrete.CountEstimate(c.m, c.mp, c.logN, samples, rng.Fork())
		t.AddRow(fmt.Sprint(c.m), fmt.Sprint(c.mp), fmtF(c.logN),
			fmt.Sprint(samples), fmt.Sprint(bn), fmt.Sprint(tn), "(sampled)")
	}
	// The analytic bound at theorem scale (too large to sample).
	for _, m := range []int{64, 256, 1024} {
		t.AddRow(fmt.Sprint(m), "2^20", "64", "-", "-", "-",
			fmtF(discrete.TheoremBoundLogRatio(m, 1<<20, 64)))
	}
	t.AddNote("expected shape: Bn hits vanish as M grows (a handful at M=8, none beyond), Tn hits plentiful at moderate log n; the analytic exponent decreases linearly in M (2^{-Ω(M log log n)})")
	return t
}

// E14MetricInstability reproduces Appendix D.5 / Theorem 64 and
// Proposition 63: nearly periodic functions are Θ-unstable (a δ-sized
// perturbation turns g_np 1-pass intractable), while tractable normal
// functions are Θ-stable (bounded multiplicative perturbations keep
// slow-jumping and slow-dropping).
func E14MetricInstability() Table {
	t := Table{
		ID:     "E14",
		Title:  "Θ-metric stability: normal stable, nearly periodic unstable (Prop 63 / Thm 64)",
		Header: []string{"function", "perturbation", "Θ(g,h)", "verdict before", "verdict after"},
	}
	cfg := gfunc.DefaultCheckConfig()

	// Theorem 64: δ-perturb g_np at its periods.
	gnp := gfunc.Gnp()
	for _, delta := range []float64{0.25, 0.5, 1.0} {
		h := gfunc.PerturbNearlyPeriodic(gnp, delta, cfg)
		before := gfunc.Classify(gnp, cfg)
		after := gfunc.Classify(h, cfg)
		t.AddRow(gnp.Name(), fmt.Sprintf("δ=%.2f at periods", delta),
			fmtF(gfunc.Theta(gnp, h, cfg.M)),
			before.OnePass.String(), after.OnePass.String())
	}

	// Proposition 63: bounded multiplicative noise on tractable g.
	g := gfunc.F2Func()
	h := gfunc.New("x^2*(1+0.3sin x)", func(x uint64) float64 {
		if x == 0 {
			return 0
		}
		fx := float64(x)
		return fx * fx * (1 + 0.3*math.Sin(fx)) / (1 + 0.3*math.Sin(1))
	})
	before := gfunc.Classify(g, cfg)
	after := gfunc.Classify(h, cfg)
	t.AddRow(g.Name(), "×(1+0.3 sin x)", fmtF(gfunc.Theta(g, h, cfg.M)),
		before.TwoPass.String()+" (2p)", after.TwoPass.String()+" (2p)")

	t.AddNote("Thm 64: every δ > 0 suffices to make g_np intractable; Prop 63: finite Θ preserves slow-jumping/dropping")
	return t
}

// E15MajorityAmplification reproduces Theorem 44's amplification: majority
// over ℓ = 96 ln n copies of a 2/3-correct protocol drives per-element
// failure below 1/n², making the DISJ(n,t+1) -> DISJ+IND(n,t) reduction
// work. Measured failure rates sit under the Chernoff curve.
func E15MajorityAmplification(quick bool) Table {
	t := Table{
		ID:     "E15",
		Title:  "Theorem 44 majority amplification: observed vs Chernoff",
		Header: []string{"copies ℓ", "observed failure", "Chernoff bound", "1/n² target (n)"},
	}
	trials := 20000
	if quick {
		trials = 6000
	}
	rng := util.NewSplitMix64(314159)
	for _, n := range []int{16, 64, 256} {
		copies := comm.MajorityCopies(n)
		obs := comm.MajorityBoost(2.0/3, copies, trials, rng.Fork())
		bound := comm.ChernoffFailureBound(2.0/3, copies)
		t.AddRow(fmt.Sprint(copies), fmtF(obs), fmtF(bound),
			fmt.Sprintf("%.3g (n=%d)", 1/float64(n*n), n))
	}
	t.AddNote("expected shape: observed <= bound <= 1/n², the union-bound budget of the DISJ+IND protocol")
	return t
}
