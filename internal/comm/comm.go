package comm

import (
	"math"

	"repro/internal/stream"
	"repro/internal/util"
)

// InstancePair is a pair of streams that a correct (g, ε)-SUM algorithm
// must tell apart: the g-SUM of Yes and No differ by at least a (1+2ε')
// factor for the reduction's ε'.
type InstancePair struct {
	// Yes is the "intersecting" case (Bob's index in Alice's set).
	Yes *stream.Stream
	// No is the disjoint case.
	No *stream.Stream
	// GapLow and GapHigh bracket the two exact g-SUM values (No, Yes may
	// be in either order); a distinguisher must separate them.
	GapLow, GapHigh float64
}

// Estimator abstracts any streaming g-SUM algorithm for the harness.
type Estimator interface {
	Update(item uint64, delta int64)
	Estimate() float64
}

// Distinguisher measures how well an estimator family separates instance
// pairs. For each of trials pairs, fresh estimators process Yes and No;
// the trial succeeds when both estimates land on the correct side of the
// midpoint of the true gap. The return value is the success fraction:
// ~1.0 means the algorithm distinguishes (no lower bound applies at this
// size), ~0.5 means it is guessing (the lower bound bites).
func Distinguisher(
	makePair func(trial int) InstancePair,
	makeEstimator func(trial int, which int) Estimator,
	trials int,
) float64 {
	if trials <= 0 {
		panic("comm: trials must be positive")
	}
	success := 0
	for t := 0; t < trials; t++ {
		p := makePair(t)
		mid := (p.GapLow + p.GapHigh) / 2
		eYes := makeEstimator(t, 0)
		p.Yes.Each(func(u stream.Update) { eYes.Update(u.Item, u.Delta) })
		eNo := makeEstimator(t, 1)
		p.No.Each(func(u stream.Update) { eNo.Update(u.Item, u.Delta) })

		yesHigh := gsumOf(p, true) > mid
		okYes := (eYes.Estimate() > mid) == yesHigh
		okNo := (eNo.Estimate() > mid) != yesHigh
		if okYes && okNo {
			success++
		}
	}
	return float64(success) / float64(trials)
}

// gsumOf returns the exact g-SUM of the Yes or No stream, using the pair's
// recorded gap values: the generator stores GapLow/GapHigh in stream order
// via yesIsHigh, so recover which is which by convention: generators must
// set GapHigh to the Yes value iff Yes has the larger sum. To stay
// self-contained we only need to know whether Yes is the high side.
func gsumOf(p InstancePair, yes bool) float64 {
	if yes {
		return p.GapHigh
	}
	return p.GapLow
}

// Note: generators below always put the Yes-case g-SUM in GapHigh when it
// is the larger value and in GapLow otherwise, then swap streams so that
// "Yes is high" holds uniformly. This keeps the harness branch-free.

// randomSubset draws a subset of [0, n) of the given size, plus an element
// b and a bit whether b ∈ A; used by the INDEX-style generators.
func randomSubset(rng *util.SplitMix64, n uint64, size int) map[uint64]struct{} {
	set := make(map[uint64]struct{}, size)
	for len(set) < size {
		set[rng.Uint64n(n)] = struct{}{}
	}
	return set
}

// chooseInOut returns an element inside A and one outside A.
func chooseInOut(rng *util.SplitMix64, n uint64, a map[uint64]struct{}) (in, out uint64) {
	for k := range a {
		in = k
		break
	}
	for {
		c := rng.Uint64n(n)
		if _, ok := a[c]; !ok {
			return in, c
		}
	}
}

// GapFactor returns the multiplicative separation of the pair.
func (p InstancePair) GapFactor() float64 {
	if p.GapLow <= 0 {
		return math.Inf(1)
	}
	return p.GapHigh / p.GapLow
}
