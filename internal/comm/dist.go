package comm

import (
	"fmt"
	"sort"

	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/xhash"
)

// This file implements the ShortLinearCombination problem of Appendix C:
// (u, d)-DIST (Definition 50), its 3-frequency special case (a, b, c)-DIST
// (Definition 45), the minimal-coefficient solver that determines the
// Θ(n/q²) complexity (Theorem 51), and the matching algorithm of
// Proposition 49.

// MinCombination finds integer coefficients q minimizing Σ|q_i| subject to
// Σ q_i u_i = d, by breadth-first search over reachable values in layers of
// increasing L1 norm. It returns the coefficients and true, or nil and
// false if no combination with Σ|q_i| <= maxNorm exists (which for coprime
// inputs means maxNorm was too small). The quantity q = Σ|q_i| governs the
// communication complexity Ω(n/q²) of (u, d)-DIST.
func MinCombination(u []int64, d int64, maxNorm int) ([]int64, bool) {
	if len(u) == 0 {
		return nil, false
	}
	type state struct {
		val int64
		// parent tracking: index into states plus the coefficient delta
		parent int
		ui     int
		step   int64
	}
	// BFS layer by layer on total norm; dedupe on value (first visit is
	// minimal norm). Values are bounded: |val| <= maxNorm * max|u| + |d|.
	maxU := int64(0)
	for _, x := range u {
		if a := util.AbsInt64(x); a > maxU {
			maxU = a
		}
	}
	bound := int64(maxNorm)*maxU + util.AbsInt64(d) + 1
	visited := map[int64]int{0: 0}
	states := []state{{val: 0, parent: -1}}
	frontier := []int{0}
	for norm := 1; norm <= maxNorm; norm++ {
		var next []int
		for _, si := range frontier {
			v := states[si].val
			for i, ui := range u {
				for _, stp := range [2]int64{ui, -ui} {
					nv := v + stp
					if util.AbsInt64(nv) > bound {
						continue
					}
					if _, ok := visited[nv]; ok {
						continue
					}
					states = append(states, state{val: nv, parent: si, ui: i, step: stp})
					visited[nv] = len(states) - 1
					next = append(next, len(states)-1)
				}
			}
		}
		if si, ok := visited[d]; ok {
			coeffs := make([]int64, len(u))
			for cur := si; cur > 0; cur = states[cur].parent {
				st := states[cur]
				if st.step == u[st.ui] {
					coeffs[st.ui]++
				} else {
					coeffs[st.ui]--
				}
			}
			return coeffs, true
		}
		frontier = next
	}
	return nil, false
}

// NormOf returns Σ|q_i|.
func NormOf(q []int64) int64 {
	var s int64
	for _, c := range q {
		s += util.AbsInt64(c)
	}
	return s
}

// DistConfig parameterizes an (a, b, c)-DIST instance (Definition 45):
// the frequency vector is promised to lie in {±a, ±b, 0}^n, or to equal
// such a vector with one coordinate replaced by ±c.
type DistConfig struct {
	A, B, C int64
	N       uint64
	// FillA, FillB: how many coordinates take value ±a / ±b.
	FillA, FillB int
	Seed         uint64
}

// NewDistPair generates a Yes instance (some coordinate = ±c) and a No
// instance (all coordinates in {±a, ±b, 0}) as streams. GapLow/GapHigh are
// not meaningful for DIST (it is a detection problem, not estimation), so
// they are set to 0/1; use the dedicated solver below.
func NewDistPair(cfg DistConfig, trial int) (yes, no *stream.Stream) {
	rng := util.NewSplitMix64(cfg.Seed + uint64(trial)*0x6a09)
	build := func(plant bool) *stream.Stream {
		s := stream.New(cfg.N)
		used := make(map[uint64]struct{})
		place := func(v int64) {
			for {
				it := rng.Uint64n(cfg.N)
				if _, ok := used[it]; ok {
					continue
				}
				used[it] = struct{}{}
				if rng.Bool() {
					v = -v
				}
				// split into two updates to exercise the turnstile model
				h := v / 2
				if h != 0 {
					s.Add(it, h)
				}
				s.Add(it, v-h)
				return
			}
		}
		for i := 0; i < cfg.FillA; i++ {
			place(cfg.A)
		}
		for i := 0; i < cfg.FillB; i++ {
			place(cfg.B)
		}
		if plant {
			place(cfg.C)
		}
		return s
	}
	return build(true), build(false)
}

// DistSolver is the algorithm of Proposition 49 for (a, b, c)-DIST: it
// partitions [n] into t buckets, keeps one signed counter
// C_i = Σ_{h(l)=i} ξ_l v_l per bucket (4-wise independent ξ), and decides
// by reading C_i mod a. In a No instance, C_i mod a lies in the residue
// set { z·b mod a : |z| <= L }; planting ±c shifts one bucket's residue
// out of that set, because z'b ≡ zb + c (mod a) with |z - z'| < |q| would
// contradict the minimality of q in ap + bq = c. Soundness needs
// t = Õ(n/q²), which keeps |z| <= L with high probability — precisely the
// Theorem 48 space bound.
type DistSolver struct {
	a, b, c int64
	t       int
	l       int64 // residue radius L
	h       *xhash.Buckets
	sign    *xhash.Sign
	counts  []int64
	base    map[int64]struct{} // allowed residues mod a in the No case
}

// NewDistSolver builds the Proposition 49 structure with t buckets and
// residue radius l (callers size t ≈ n/q² and l < |q|/2; the experiment
// sweeps t to expose the threshold). It panics on degenerate parameters.
func NewDistSolver(a, b, c int64, t int, l int64, rng *util.SplitMix64) *DistSolver {
	if a <= 0 || b <= 0 || c <= 0 || a == c || b == c {
		panic("comm: DistSolver needs positive a, b, c with c ∉ {a, b}")
	}
	if t <= 0 || l < 0 {
		panic("comm: DistSolver needs t > 0, l >= 0")
	}
	base := make(map[int64]struct{}, 2*l+1)
	for z := -l; z <= l; z++ {
		base[mod(z*b, a)] = struct{}{}
	}
	return &DistSolver{
		a: a, b: b, c: c,
		t:      t,
		l:      l,
		h:      xhash.NewBuckets(2, uint64(t), rng.Fork()),
		sign:   xhash.NewSign(4, rng.Fork()),
		counts: make([]int64, t),
		base:   base,
	}
}

// Update processes one turnstile update.
func (ds *DistSolver) Update(item uint64, delta int64) {
	ds.counts[ds.h.Hash(item)] += ds.sign.Hash(item) * delta
}

// Detect reports whether a ±c frequency is present: true iff some bucket's
// residue mod a falls outside the No-case residue set.
func (ds *DistSolver) Detect() bool {
	for _, cnt := range ds.counts {
		if _, ok := ds.base[mod(cnt, ds.a)]; !ok {
			return true
		}
	}
	return false
}

// SpaceBytes reports the counter storage.
func (ds *DistSolver) SpaceBytes() int { return ds.t * 8 }

// mod returns x mod m in [0, m).
func mod(x, m int64) int64 {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}

// GeneralDistSolver extends the Proposition 49 structure to the full
// (u, d)-DIST problem of Definition 50 (Theorem 51's upper bound): the
// promise allows frequencies from an arbitrary vector u, and the base
// residue set is every value Σ z_i u_i mod a reachable with Σ|z_i| <= l,
// where a = max|u_i| serves as the modulus. Soundness again rests on the
// minimality of q = Σ|q_i| in Σ q_i u_i = d: a planted ±d escapes the set
// as long as 2l + 1 <= q.
type GeneralDistSolver struct {
	u      []int64
	d      int64
	a      int64
	t      int
	h      *xhash.Buckets
	sign   *xhash.Sign
	counts []int64
	base   map[int64]struct{}
}

// NewGeneralDistSolver builds the solver with t buckets and combination
// radius l.
func NewGeneralDistSolver(u []int64, d int64, t int, l int, rng *util.SplitMix64) *GeneralDistSolver {
	if len(u) == 0 || t <= 0 || l < 0 {
		panic("comm: GeneralDistSolver needs frequencies, t > 0, l >= 0")
	}
	var a int64
	for _, v := range u {
		if av := util.AbsInt64(v); av > a {
			a = av
		}
	}
	if a == 0 {
		panic("comm: all-zero frequency vector")
	}
	// Base residues: BFS over Σ z_i u_i with L1 norm <= l, reduced mod a.
	base := map[int64]struct{}{0: {}}
	frontier := map[int64]struct{}{0: {}}
	for norm := 0; norm < l; norm++ {
		next := make(map[int64]struct{})
		for v := range frontier {
			for _, ui := range u {
				for _, stp := range [2]int64{ui, -ui} {
					nv := mod(v+stp, a)
					if _, ok := base[nv]; !ok {
						base[nv] = struct{}{}
						next[nv] = struct{}{}
					}
				}
			}
		}
		frontier = next
	}
	return &GeneralDistSolver{
		u: u, d: d, a: a, t: t,
		h:      xhash.NewBuckets(2, uint64(t), rng.Fork()),
		sign:   xhash.NewSign(4, rng.Fork()),
		counts: make([]int64, t),
		base:   base,
	}
}

// Update processes one turnstile update.
func (gs *GeneralDistSolver) Update(item uint64, delta int64) {
	gs.counts[gs.h.Hash(item)] += gs.sign.Hash(item) * delta
}

// Detect reports whether a ±d frequency is present.
func (gs *GeneralDistSolver) Detect() bool {
	for _, cnt := range gs.counts {
		if _, ok := gs.base[mod(cnt, gs.a)]; !ok {
			return true
		}
	}
	return false
}

// SpaceBytes reports the counter storage.
func (gs *GeneralDistSolver) SpaceBytes() int { return gs.t * 8 }

// ResidueSetsDisjoint verifies the combinatorial core of Proposition 49:
// the base residue set {zb mod a : |z| <= l} and its c-shift are disjoint.
// It returns an error naming the collision when they are not (which
// happens exactly when 2l+1 > |q| for the minimal q with ap + bq = c).
func ResidueSetsDisjoint(a, b, c, l int64) error {
	seen := make(map[int64]int64, 2*l+1)
	for z := -l; z <= l; z++ {
		seen[mod(z*b, a)] = z
	}
	for z := -l; z <= l; z++ {
		r := mod(z*b+c, a)
		if z0, ok := seen[r]; ok {
			return fmt.Errorf("comm: residue collision z=%d vs z'=%d (a=%d b=%d c=%d l=%d)",
				z, z0, a, b, c, l)
		}
	}
	return nil
}

// SortedResidues returns the base residue set in sorted order (used by
// tests and the distinguisher example).
func SortedResidues(a, b, l int64) []int64 {
	set := make(map[int64]struct{}, 2*l+1)
	for z := -l; z <= l; z++ {
		set[mod(z*b, a)] = struct{}{}
	}
	out := make([]int64, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
