// Package comm implements the paper's communication-complexity machinery as
// executable artifacts: instance generators for the INDEX, DISJ(n,t),
// DISJ+IND(n,t) reductions of Lemmas 23-25 and 27-28, and the new
// ShortLinearCombination / (a,b,c)-DIST problem of Appendix C together with
// its matching O(n/q²)-space algorithm (Proposition 49).
//
// A lower bound cannot be "run", but its reduction can: each lemma
// prescribes an exact pair of streams (intersecting / disjoint instance)
// whose g-SUM values differ by a constant factor. The Distinguisher harness
// feeds both streams to a candidate estimator and measures how reliably it
// separates them; undersized sketches must fail (the paper's lower bound),
// while the exact algorithm always succeeds. Experiments E4-E6 are built on
// this harness.
//
// Layer: satellite off the spine in ARCHITECTURE.md (lower-bound
// machinery), used by the experiments harness; it builds on
// internal/stream only.
// Seed discipline: protocols are deterministic given their explicit
// seeds; no sketch state is merged, so no merge contract applies.
package comm
