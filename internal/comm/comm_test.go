package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/gfunc"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// exactEstimator adapts the exact g-SUM computation to the harness.
type exactEstimator struct {
	g gfunc.Func
	e *sketch.Exact
}

func newExactEstimator(g gfunc.Func) *exactEstimator {
	return &exactEstimator{g: g, e: sketch.NewExact()}
}

func (x *exactEstimator) Update(item uint64, delta int64) { x.e.Update(item, delta) }

func (x *exactEstimator) Estimate() float64 {
	var sum float64
	x.e.Each(func(_ uint64, f int64) {
		sum += x.g.Eval(uint64(util.AbsInt64(f)))
	})
	return sum
}

func TestIndexDropPairGap(t *testing.T) {
	// 1/x with witness x=1, y=n: the pair must have a constant-factor gap
	// and the generated streams must realize the claimed sums.
	g := gfunc.Reciprocal()
	cfg := IndexDropConfig{G: g, X: 1, Y: 4096, SetSize: 64, Seed: 5}
	p := NewIndexDropPair(cfg, 0)
	checkPairSums(t, g, p)
	if p.GapFactor() < 1.2 {
		t.Errorf("gap factor %.3f too small for a distinguishable pair", p.GapFactor())
	}
}

func TestIndexDropExactDistinguishes(t *testing.T) {
	g := gfunc.Reciprocal()
	cfg := IndexDropConfig{G: g, X: 1, Y: 4096, SetSize: 64, Seed: 7}
	acc := Distinguisher(
		func(trial int) InstancePair { return NewIndexDropPair(cfg, trial) },
		func(trial, which int) Estimator { return newExactEstimator(g) },
		20,
	)
	if acc != 1.0 {
		t.Errorf("exact algorithm distinguishes with accuracy %.2f, want 1.0", acc)
	}
}

func TestDisjJumpPairGap(t *testing.T) {
	g := gfunc.X3()
	cfg := DisjJumpConfig{G: g, X: 4, Y: 64, SetSize: 32, Seed: 9}
	p := NewDisjJumpPair(cfg, 0)
	checkPairSums(t, g, p)
	// g(y)=y³ dominates: the Yes case must be much larger.
	if p.GapFactor() < 2 {
		t.Errorf("gap factor %.3f, want >= 2 for x³", p.GapFactor())
	}
}

func TestPredIndexPairGap(t *testing.T) {
	g := gfunc.SinSqrtX2()
	// Predictability witness: x large, y ≈ 2√x·ε shifts the phase by
	// Θ(1); choose a point where g(x+y) differs from g(x) by > 10%.
	x := uint64(40000)
	y := uint64(300)
	gx, gxy := g.Eval(x), g.Eval(x+y)
	if util.RelErr(gxy, gx) < 0.1 {
		t.Fatalf("chosen witness is not unstable: g(x)=%.4g g(x+y)=%.4g", gx, gxy)
	}
	cfg := PredIndexConfig{G: g, X: x, Y: y, SetSize: 50, Seed: 11}
	p := NewPredIndexPair(cfg, 0)
	checkPairSums(t, g, p)
}

func TestDisj2PairGap(t *testing.T) {
	g := gfunc.Reciprocal()
	cfg := Disj2Config{G: g, X: 1, Y: 512, Universe: 64, Seed: 13}
	p := NewDisj2Pair(cfg, 0)
	checkPairSums(t, g, p)
}

// checkPairSums verifies the generator's claimed GapLow/GapHigh against the
// exact g-SUM of the generated streams.
func checkPairSums(t *testing.T, g gfunc.Func, p InstancePair) {
	t.Helper()
	yes := p.Yes.Vector().Sum(g.Eval)
	no := p.No.Vector().Sum(g.Eval)
	if !util.AlmostEqual(yes, p.GapHigh, 1e-9) {
		t.Errorf("Yes stream sum %.6g != GapHigh %.6g", yes, p.GapHigh)
	}
	if !util.AlmostEqual(no, p.GapLow, 1e-9) {
		t.Errorf("No stream sum %.6g != GapLow %.6g", no, p.GapLow)
	}
	if p.GapHigh < p.GapLow {
		t.Error("orientation broken: GapHigh < GapLow")
	}
}

func TestMinCombinationEuclid(t *testing.T) {
	// gcd(5,3)=1: 1 = 2*3 - 1*5; minimal Σ|q| = 3.
	q, ok := MinCombination([]int64{5, 3}, 1, 10)
	if !ok {
		t.Fatal("no combination found")
	}
	if got := NormOf(q); got != 3 {
		t.Errorf("minimal norm %d, want 3 (q = %v)", got, q)
	}
	if 5*q[0]+3*q[1] != 1 {
		t.Errorf("combination %v does not sum to 1", q)
	}
}

func TestMinCombinationProperty(t *testing.T) {
	// For random coprime-ish pairs, the returned coefficients must satisfy
	// the equation, and |q| for target c=1 must obey Lemma 47's bounds:
	// b/a <= |q_b| <= a (for b < a coprime).
	f := func(aa, bb uint8) bool {
		a, b := int64(aa%60)+2, int64(bb%60)+2
		if gcd(a, b) != 1 {
			return true // skip non-coprime
		}
		if b > a {
			a, b = b, a
		}
		q, ok := MinCombination([]int64{a, b}, 1, int(a+b))
		if !ok {
			return false
		}
		if a*q[0]+b*q[1] != 1 {
			return false
		}
		qb := util.AbsInt64(q[1])
		return qb <= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestMinCombinationMultiFrequency(t *testing.T) {
	// u = (6, 10, 15), d = 1: 1 = 6 + 10 - 15 (norm 3).
	q, ok := MinCombination([]int64{6, 10, 15}, 1, 8)
	if !ok {
		t.Fatal("no combination found")
	}
	if 6*q[0]+10*q[1]+15*q[2] != 1 {
		t.Errorf("combination %v wrong", q)
	}
	if NormOf(q) != 3 {
		t.Errorf("norm %d, want 3", NormOf(q))
	}
}

func TestResidueSetsDisjoint(t *testing.T) {
	// a=7, b=3, c=1: 1 = 1*7 - 2*3, q=-2. Residue radius l=1 < |q|/... the
	// sets {zb mod a : |z|<=1} = {0,3,4} and +c = {1,4,5} overlap at 4?
	// z=1: 3+1=4, z'=-1: -3 mod 7 = 4. Overlap -> error expected at l=1?
	// Minimality: |q|=2, so disjointness requires 2l+1 <= |q|... verify
	// the exact behaviour both below and above the threshold.
	if err := ResidueSetsDisjoint(7, 3, 1, 0); err != nil {
		t.Errorf("l=0 must be collision-free: %v", err)
	}
	// Large radius always collides for c=1 (the walk wraps around).
	if err := ResidueSetsDisjoint(7, 3, 1, 7); err == nil {
		t.Error("expected collision at l=7")
	}
}

func TestDistSolverDetectsPlanted(t *testing.T) {
	// (a,b,c) = (31,12,1): the minimal q with 12q ≡ 1 (mod 31) is 13, so
	// the residue radius can be as large as l=6 and buckets tolerate up to
	// six colliding b-items. With t=512 buckets and 30 b-items, |z_b| stays
	// <= 2 with high probability and detection is reliable.
	a, b, c := int64(31), int64(12), int64(1)
	hits, misses := 0, 0
	for seed := uint64(1); seed <= 20; seed++ {
		yes, no := NewDistPair(DistConfig{
			A: a, B: b, C: c, N: 1 << 12, FillA: 30, FillB: 30, Seed: seed,
		}, 0)
		solver := func() *DistSolver {
			return NewDistSolver(a, b, c, 512, 6, util.NewSplitMix64(seed*7))
		}
		sy := solver()
		yes.Each(func(u stream.Update) { sy.Update(u.Item, u.Delta) })
		sn := solver()
		no.Each(func(u stream.Update) { sn.Update(u.Item, u.Delta) })
		if sy.Detect() {
			hits++
		}
		if sn.Detect() {
			misses++
		}
	}
	if hits < 16 {
		t.Errorf("planted c detected in only %d/20 trials", hits)
	}
	if misses > 4 {
		t.Errorf("false positives in %d/20 trials", misses)
	}
}

func TestDistSolverFailsWhenUndersized(t *testing.T) {
	// With t too small, many items per bucket make |z| exceed the radius
	// and the residues wrap: the solver loses soundness. This is the
	// Theorem 48 Ω(n/q²) lower bound made visible.
	a, b, c := int64(31), int64(12), int64(1)
	falsePos := 0
	for seed := uint64(1); seed <= 20; seed++ {
		_, no := NewDistPair(DistConfig{
			A: a, B: b, C: c, N: 1 << 12, FillA: 200, FillB: 200, Seed: seed,
		}, 0)
		sn := NewDistSolver(a, b, c, 4, 6, util.NewSplitMix64(seed*11))
		no.Each(func(u stream.Update) { sn.Update(u.Item, u.Delta) })
		if sn.Detect() {
			falsePos++
		}
	}
	if falsePos < 10 {
		t.Errorf("undersized solver should raise false positives, got %d/20", falsePos)
	}
}

func TestSortedResidues(t *testing.T) {
	rs := SortedResidues(7, 3, 1)
	want := []int64{0, 3, 4}
	if len(rs) != len(want) {
		t.Fatalf("residues %v, want %v", rs, want)
	}
	for i := range rs {
		if rs[i] != want[i] {
			t.Fatalf("residues %v, want %v", rs, want)
		}
	}
}
