package comm

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/util"
)

func TestMajorityBoostBeatsChernoff(t *testing.T) {
	rng := util.NewSplitMix64(5)
	for _, copies := range []int{11, 33, 99} {
		observed := MajorityBoost(2.0/3, copies, 4000, rng)
		bound := ChernoffFailureBound(2.0/3, copies)
		// The Chernoff expression is an upper bound: observed must not
		// exceed it by more than Monte Carlo noise.
		if observed > bound+0.02 {
			t.Errorf("copies=%d: observed failure %.4f > bound %.4f", copies, observed, bound)
		}
	}
}

func TestMajorityBoostMonotone(t *testing.T) {
	rng := util.NewSplitMix64(9)
	prev := 1.0
	for _, copies := range []int{5, 25, 125} {
		f := MajorityBoost(2.0/3, copies, 4000, rng)
		if f > prev+0.02 {
			t.Errorf("failure rate grew with more copies: %v -> %v", prev, f)
		}
		prev = f
	}
}

func TestMajorityCopiesTheorem44(t *testing.T) {
	// ℓ = ceil(96 ln n): at n = 1024, per-element failure must be far
	// below 1/n² so the union bound over n elements holds.
	n := 1024
	copies := MajorityCopies(n)
	bound := ChernoffFailureBound(2.0/3, copies)
	if bound > 1/float64(n*n) {
		t.Errorf("Theorem 44 sizing insufficient: bound %.3g > 1/n² = %.3g",
			bound, 1/float64(n*n))
	}
}

func TestGeneralDistSolverThreeFrequencies(t *testing.T) {
	// u = (61, 35), d = 1: 1 = 7·35 - 4·61, minimal norm 11, so the
	// residue radius 5 tolerates realistic bucket collisions. (Short
	// combinations, e.g. u = (31,12,9) with 31-12-9-9 = 1, put the solver
	// in the Ω(n/q²) hard regime at any laptop-scale t — that regime is
	// exercised by E6 and TestDistSolverFailsWhenUndersized.)
	u := []int64{61, 35}
	q, ok := MinCombination(u, 1, 40)
	if !ok {
		t.Fatal("no combination for (61,35) -> 1")
	}
	if NormOf(q) != 11 {
		t.Fatalf("minimal norm %d, want 11", NormOf(q))
	}
	l := int((NormOf(q) - 1) / 2)
	hits, falsePos := 0, 0
	const trials = 15
	for seed := uint64(1); seed <= trials; seed++ {
		rng := util.NewSplitMix64(seed * 3)
		yes := stream.New(1 << 12)
		no := stream.New(1 << 12)
		used := map[uint64]struct{}{}
		place := func(s *stream.Stream, v int64) {
			for {
				it := rng.Uint64n(1 << 12)
				if _, okU := used[it]; okU {
					continue
				}
				used[it] = struct{}{}
				if rng.Bool() {
					v = -v
				}
				s.Add(it, v)
				return
			}
		}
		for i := 0; i < 30; i++ {
			for _, v := range u {
				place(yes, v)
			}
		}
		used = map[uint64]struct{}{}
		for i := 0; i < 30; i++ {
			for _, v := range u {
				place(no, v)
			}
		}
		used = map[uint64]struct{}{} // allow reuse for the plant
		place(yes, 1)

		mk := func() *GeneralDistSolver {
			return NewGeneralDistSolver(u, 1, 1024, l, util.NewSplitMix64(seed*7))
		}
		sy := mk()
		yes.Each(func(up stream.Update) { sy.Update(up.Item, up.Delta) })
		sn := mk()
		no.Each(func(up stream.Update) { sn.Update(up.Item, up.Delta) })
		if sy.Detect() {
			hits++
		}
		if sn.Detect() {
			falsePos++
		}
	}
	if hits < trials*2/3 {
		t.Errorf("planted d detected in only %d/%d trials", hits, trials)
	}
	if falsePos > trials/3 {
		t.Errorf("false positives in %d/%d trials", falsePos, trials)
	}
}

func TestGeneralDistSolverMatchesSpecialCase(t *testing.T) {
	// For u = (a, b) the general solver's base residues must contain the
	// (a,b,c) solver's residues at the same radius.
	a, b := int64(31), int64(12)
	l := int64(4)
	gs := NewGeneralDistSolver([]int64{a, b}, 1, 8, int(l), util.NewSplitMix64(1))
	for _, r := range SortedResidues(a, b, l) {
		if _, ok := gs.base[r]; !ok {
			t.Errorf("general base is missing residue %d", r)
		}
	}
}
