package comm

import (
	"fmt"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// IndexDropConfig parameterizes the Lemma 23 reduction, which shows that a
// normal function that is not slow-dropping is not 1-pass tractable.
//
// The reduction: g has a drop witness x < y with g(x) >= y^α g(y). Alice
// holds A ⊆ [n'] (n' = y^α) and streams y copies of each element; Bob adds
// x copies of his index b. The two cases differ by |g(x) + g(y) - g(x+y)|,
// which is a constant fraction of the total because the drop makes
// |A| g(y) negligible against g(x).
type IndexDropConfig struct {
	G gfunc.Func
	// X, Y are the drop witness: g(X) >= Y^Alpha g(Y), X < Y.
	X, Y uint64
	// SetSize is |A| (the reduction uses n' = Y^Alpha; smaller values
	// weaken the instance proportionally).
	SetSize int
	Seed    uint64
}

// NewIndexDropPair builds one Yes/No instance pair for Lemma 23.
// Domain: SetSize+1 items suffice (Alice's set plus Bob's index).
func NewIndexDropPair(cfg IndexDropConfig, trial int) InstancePair {
	if cfg.X >= cfg.Y {
		panic(fmt.Sprintf("comm: drop witness needs X < Y, got %d >= %d", cfg.X, cfg.Y))
	}
	rng := util.NewSplitMix64(cfg.Seed + uint64(trial)*0x9e37)
	n := uint64(cfg.SetSize + 2)
	a := randomSubset(rng, n, cfg.SetSize)
	bIn, bOut := chooseInOut(rng, n, a)

	g := cfg.G
	build := func(b uint64) *stream.Stream {
		s := stream.New(n)
		for it := range a {
			s.AddCopies(it, int64(cfg.Y)) // Alice: y copies of each element
		}
		s.AddCopies(b, int64(cfg.X)) // Bob: x copies of his index
		return s
	}
	yes, no := build(bIn), build(bOut)

	// Exact sums: Yes has |A|-1 items at y, one at x+y; No has |A| at y,
	// one at x.
	ay := float64(cfg.SetSize) * g.Eval(cfg.Y)
	yesSum := ay - g.Eval(cfg.Y) + g.Eval(cfg.X+cfg.Y)
	noSum := ay + g.Eval(cfg.X)
	return orient(yes, no, yesSum, noSum)
}

// DisjJumpConfig parameterizes the Lemma 24 reduction (DISJ+IND): a normal
// function that is not slow-jumping is not 1-pass tractable.
//
// The jump witness x <= y has g(y) > ⌊y/x⌋^{2+α} x^α g(x). t = ⌊y/x⌋
// players each stream x copies of their set elements; the final player
// streams r = y - t·x copies of the index. Intersection makes one item's
// frequency exactly y, whose g-value dominates everything else.
type DisjJumpConfig struct {
	G gfunc.Func
	// X, Y are the jump witness.
	X, Y uint64
	// SetSize is the per-player set size n (the reduction's universe).
	SetSize int
	Seed    uint64
}

// NewDisjJumpPair builds one Yes/No instance pair for Lemma 24.
func NewDisjJumpPair(cfg DisjJumpConfig, trial int) InstancePair {
	if cfg.X > cfg.Y || cfg.X == 0 {
		panic("comm: jump witness needs 0 < X <= Y")
	}
	rng := util.NewSplitMix64(cfg.Seed + uint64(trial)*0x51ed)
	t := cfg.Y / cfg.X // ⌊y/x⌋ players
	r := cfg.Y - t*cfg.X
	n := uint64(cfg.SetSize*int(t) + 2)

	g := cfg.G
	// Disjoint case: t players hold pairwise disjoint sets; each element
	// gets frequency x (its sole owner streams x copies); the index player
	// adds r copies of a fresh item. Intersecting case: one common element
	// held by all t players and the index player, reaching frequency
	// t·x + r = y.
	common := rng.Uint64n(n)
	build := func(intersecting bool) *stream.Stream {
		s := stream.New(n)
		next := uint64(0)
		alloc := func() uint64 {
			// fresh items distinct from common
			for {
				v := next
				next++
				if v != common {
					return v
				}
			}
		}
		for p := uint64(0); p < t; p++ {
			for k := 0; k < cfg.SetSize-1; k++ {
				s.AddCopies(alloc(), int64(cfg.X))
			}
			// Each player's last element: common item when intersecting,
			// fresh otherwise.
			if intersecting {
				s.AddCopies(common, int64(cfg.X))
			} else {
				s.AddCopies(alloc(), int64(cfg.X))
			}
		}
		if r > 0 {
			if intersecting {
				s.AddCopies(common, int64(r))
			} else {
				s.AddCopies(alloc(), int64(r))
			}
		}
		return s
	}
	yes, no := build(true), build(false)

	perPlayer := float64(cfg.SetSize) * float64(t)
	gx := g.Eval(cfg.X)
	var yesSum, noSum float64
	if r > 0 {
		yesSum = (perPlayer-float64(t))*gx + g.Eval(cfg.Y)
		noSum = perPlayer*gx + g.Eval(r)
	} else {
		yesSum = (perPlayer-float64(t))*gx + g.Eval(cfg.Y)
		noSum = perPlayer * gx
	}
	return orient(yes, no, yesSum, noSum)
}

// PredIndexConfig parameterizes the Lemma 25 reduction: a normal function
// that is not predictable is not 1-pass tractable.
//
// The predictability witness is a pair x, y with y < x^{1-γ},
// |g(x+y) - g(x)| > ε(x) g(x), and g(y) < x^{-γ} g(x). Alice streams y
// copies of each element of A (|A| ≈ ε(x) x^γ / 4 makes |A| g(y) tiny);
// Bob adds x copies of his index. The cases differ by g(x+y) vs
// g(x) + g(y), a relative gap of ~ε(x).
type PredIndexConfig struct {
	G gfunc.Func
	// X, Y are the predictability witness.
	X, Y uint64
	// SetSize is |A|.
	SetSize int
	Seed    uint64
}

// NewPredIndexPair builds one Yes/No instance pair for Lemma 25.
func NewPredIndexPair(cfg PredIndexConfig, trial int) InstancePair {
	rng := util.NewSplitMix64(cfg.Seed + uint64(trial)*0xc2b2)
	n := uint64(cfg.SetSize + 2)
	a := randomSubset(rng, n, cfg.SetSize)
	bIn, bOut := chooseInOut(rng, n, a)

	g := cfg.G
	build := func(b uint64) *stream.Stream {
		s := stream.New(n)
		for it := range a {
			s.AddCopies(it, int64(cfg.Y))
		}
		s.AddCopies(b, int64(cfg.X))
		return s
	}
	yes, no := build(bIn), build(bOut)

	ay := float64(cfg.SetSize) * g.Eval(cfg.Y)
	yesSum := ay - g.Eval(cfg.Y) + g.Eval(cfg.X+cfg.Y)
	noSum := ay + g.Eval(cfg.X)
	return orient(yes, no, yesSum, noSum)
}

// Disj2Config parameterizes the Lemma 27 reduction (2-player DISJ), the
// multi-pass lower bound for P-normal functions that are not slow-dropping.
type Disj2Config struct {
	G gfunc.Func
	// X, Y are the drop witness with |g(x+y) - g(x)| > y^β min(...).
	X, Y uint64
	// Universe is n = y^{γ/2}.
	Universe int
	Seed     uint64
}

// NewDisj2Pair builds one Yes/No instance pair for Lemma 27. Player 1
// inserts x copies of each element of S1; player 2 inserts y copies of
// every element NOT in S2 (per the g(x+y) <= g(x) case of the proof).
func NewDisj2Pair(cfg Disj2Config, trial int) InstancePair {
	rng := util.NewSplitMix64(cfg.Seed + uint64(trial)*0x8449)
	n := uint64(cfg.Universe)
	if n < 4 {
		n = 4
	}
	g := cfg.G
	// S1 and S2 random with |S1| = |S2| = n/4; intersecting instance has
	// exactly one common element.
	size := int(n / 4)
	build := func(intersecting bool) (*stream.Stream, float64) {
		s1 := randomSubset(rng, n, size)
		var common uint64
		s2 := make(map[uint64]struct{}, size)
		if intersecting {
			for k := range s1 {
				common = k
				break
			}
			s2[common] = struct{}{}
		}
		for len(s2) < size {
			c := rng.Uint64n(n)
			if _, in1 := s1[c]; in1 {
				if !intersecting || c != common {
					continue
				}
			}
			s2[c] = struct{}{}
		}
		st := stream.New(n)
		for it := range s1 {
			st.AddCopies(it, int64(cfg.X))
		}
		for it := uint64(0); it < n; it++ {
			if _, in2 := s2[it]; !in2 {
				st.AddCopies(it, int64(cfg.Y))
			}
		}
		// Exact g-SUM of this stream.
		var sum float64
		for it := uint64(0); it < n; it++ {
			_, in1 := s1[it]
			_, in2 := s2[it]
			switch {
			case in1 && !in2:
				sum += g.Eval(cfg.X + cfg.Y)
			case in1 && in2:
				sum += g.Eval(cfg.X)
			case !in1 && !in2:
				sum += g.Eval(cfg.Y)
			}
		}
		return st, sum
	}
	yes, yesSum := build(true)
	no, noSum := build(false)
	return orient(yes, no, yesSum, noSum)
}

// orient packages the pair so that Yes always carries the larger g-SUM,
// matching the harness convention.
func orient(yes, no *stream.Stream, yesSum, noSum float64) InstancePair {
	if yesSum >= noSum {
		return InstancePair{Yes: yes, No: no, GapLow: noSum, GapHigh: yesSum}
	}
	return InstancePair{Yes: no, No: yes, GapLow: yesSum, GapHigh: noSum}
}
