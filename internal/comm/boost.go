package comm

import (
	"math"

	"repro/internal/util"
)

// This file implements the amplification machinery of Theorem 44: running
// ℓ = Θ(log n) independent copies of a 2/3-correct one-way protocol and
// letting the final player take per-element majority votes drives the
// per-element error below 1/n², so a union bound over his <= n elements
// keeps the whole DISJ+IND protocol correct. The same Chernoff argument
// powers the paper's standard "repeat O(log 1/δ) times and take the
// median" amplification (used by core.MedianOnePass and the MLE grid).

// MajorityCopies returns the ℓ of Theorem 44 for a target domain size n:
// ℓ = ceil(96 ln n), the constant from the proof's Chernoff bound.
func MajorityCopies(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(96 * math.Log(float64(n))))
}

// MajorityBoost simulates the amplification: a base decision procedure
// succeeding independently with probability p is repeated copies times
// with majority vote, trials times; the observed failure rate of the vote
// is returned. The Chernoff bound promises failure <=
// exp(-copies (p - 1/2)²/2) for p > 1/2.
func MajorityBoost(p float64, copies, trials int, rng *util.SplitMix64) float64 {
	if copies < 1 || trials < 1 {
		panic("comm: MajorityBoost needs positive copies and trials")
	}
	failures := 0
	for t := 0; t < trials; t++ {
		wins := 0
		for c := 0; c < copies; c++ {
			if rng.Float64() < p {
				wins++
			}
		}
		if 2*wins <= copies {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}

// ChernoffFailureBound returns the multiplicative Chernoff bound the
// Theorem 44 proof uses: the majority fails when the success count X
// drops to (1-δ)μ with μ = copies·p and δ = 1 - 1/(2p), and
// P(X <= (1-δ)μ) <= exp(-μδ²/2). At p = 2/3 this is exp(-copies/48), so
// copies = 96 ln n gives failure n^{-2}, exactly the proof's constant.
func ChernoffFailureBound(p float64, copies int) float64 {
	if p <= 0.5 {
		return 1
	}
	mu := float64(copies) * p
	delta := 1 - 1/(2*p)
	return math.Exp(-mu * delta * delta / 2)
}
