package core

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

func TestShardAndMergeMatchesSinglePass(t *testing.T) {
	g := gfunc.F2Func()
	for _, shards := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			s := zipfStream(seed)
			opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 777, Lambda: 1.0 / 16}

			single := NewOnePass(g, opts)
			single.Process(s)

			merged, err := ShardAndMerge(func() *OnePassEstimator {
				return NewOnePass(g, opts)
			}, s, shards)
			if err != nil {
				t.Fatalf("shards=%d seed=%d: %v", shards, seed, err)
			}

			a, b := single.Estimate(), merged.Estimate()
			// Same seed => same hash functions => identical counters; the
			// only permissible difference is top-k tie ordering. Estimates
			// must agree to well under the accuracy target.
			if util.RelErr(b, a) > 0.05 {
				t.Errorf("shards=%d seed=%d: merged %.6g vs single %.6g",
					shards, seed, b, a)
			}
			exact := NewExact(g)
			exact.Process(s)
			if err := util.RelErr(b, exact.Estimate()); err > 0.3 {
				t.Errorf("shards=%d seed=%d: merged rel err %.3f vs exact", shards, seed, err)
			}
		}
	}
}

func TestMergeRejectsMismatchedConfig(t *testing.T) {
	g := gfunc.F2Func()
	a := NewOnePass(g, Options{N: 1 << 10, M: 1 << 8, Seed: 1, Lambda: 1.0 / 8})
	b := NewOnePass(g, Options{N: 1 << 10, M: 1 << 8, Seed: 1, Lambda: 1.0 / 16})
	if err := a.Merge(b); err == nil {
		t.Error("expected merge rejection for mismatched lambda (different dims)")
	}
}

func TestDistributedTurnstileCancellation(t *testing.T) {
	// An item inserted on one shard and deleted on another must cancel in
	// the merged sketch — the defining property of linear sketches.
	g := gfunc.F2Func()
	opts := Options{N: 1 << 10, M: 1 << 8, Eps: 0.25, Seed: 5, Lambda: 1.0 / 8}
	a := NewOnePass(g, opts)
	b := NewOnePass(g, opts)
	a.Update(42, 100)
	a.Update(7, 30)
	b.Update(42, -100) // cancels on merge
	b.Update(9, 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Estimate()
	want := float64(30*30 + 4*4)
	if util.RelErr(got, want) > 0.1 {
		t.Errorf("merged estimate %.4g, want %.4g (cancellation failed)", got, want)
	}
}

func zipfStreamShard(seed uint64, part, of int) *stream.Stream {
	s := zipfStream(seed)
	out := stream.New(s.N())
	i := 0
	s.Each(func(u stream.Update) {
		if i%of == part {
			out.Add(u.Item, u.Delta)
		}
		i++
	})
	return out
}

func TestSerializeRoundTripAcrossWorkers(t *testing.T) {
	// Worker A and worker B sketch disjoint shards; B ships bytes to A;
	// A's estimate matches a single-pass run.
	g := gfunc.F2Func()
	opts := Options{N: 1 << 12, M: 1 << 10, Eps: 0.25, Seed: 99, Lambda: 1.0 / 16}
	full := zipfStream(4)

	single := NewOnePass(g, opts)
	single.Process(full)

	workerA := NewOnePass(g, opts)
	workerA.Process(zipfStreamShard(4, 0, 2))
	workerB := NewOnePass(g, opts)
	workerB.Process(zipfStreamShard(4, 1, 2))

	if err := workerA.Merge(workerB); err != nil {
		t.Fatal(err)
	}
	if util.RelErr(workerA.Estimate(), single.Estimate()) > 0.05 {
		t.Errorf("distributed %.6g vs single %.6g", workerA.Estimate(), single.Estimate())
	}
}
