package core

import (
	"testing"

	"repro/internal/gfunc"
)

func fuzzOpts() Options {
	return Options{N: 64, M: 16, Eps: 0.5, Seed: 9, Lambda: 0.25, Levels: 2}
}

func addSeeds(f *testing.F, valid []byte) {
	f.Add(valid)
	for _, cut := range []int{0, 3, 13, 14, 18, 60, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[0] ^= 0xff
	f.Add(corrupt)
	corrupt2 := append([]byte(nil), valid...)
	corrupt2[len(corrupt2)/2] ^= 0x55
	f.Add(corrupt2)
}

func FuzzOnePassEstimatorUnmarshal(f *testing.F) {
	src := NewOnePass(gfunc.F2Func(), fuzzOpts())
	src.Update(5, 3)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewOnePass(gfunc.F2Func(), fuzzOpts())
		_ = e.UnmarshalBinary(data) // must not panic
	})
}

func FuzzTwoPassEstimatorUnmarshal(f *testing.F) {
	src := NewTwoPass(gfunc.F2Func(), fuzzOpts())
	src.Pass1(5, 3)
	src.FinishPass1()
	src.Pass2(5, 3)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewTwoPass(gfunc.F2Func(), fuzzOpts())
		_ = e.UnmarshalBinary(data)     // must not panic
		_ = e.UnmarshalCandidates(data) // must not panic
	})
}

func FuzzUniversalUnmarshal(f *testing.F) {
	opts := fuzzOpts()
	opts.Envelope = 2
	src := NewUniversal(opts)
	src.Update(5, 3)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		u := NewUniversal(opts)
		_ = u.UnmarshalBinary(data) // must not panic
	})
}

func FuzzOffsetEstimatorUnmarshal(f *testing.F) {
	g0 := gfunc.NewG0("1+x", func(x uint64) float64 { return 1 + float64(x) })
	src := NewOffsetEstimator(g0, fuzzOpts())
	src.Update(5, 3)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewOffsetEstimator(g0, fuzzOpts())
		_ = e.UnmarshalBinary(data) // must not panic
	})
}

func FuzzMedianOnePassUnmarshal(f *testing.F) {
	src := NewMedianOnePass(gfunc.F2Func(), fuzzOpts(), 3)
	src.Update(5, 3)
	valid, err := src.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	addSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMedianOnePass(gfunc.F2Func(), fuzzOpts(), 3)
		_ = m.UnmarshalBinary(data) // must not panic
	})
}
