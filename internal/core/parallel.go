package core

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/gfunc"
	"repro/internal/recursive"
	"repro/internal/stream"
)

// Parallel ingestion. Every estimator here is built from linear sketches,
// so a stream can be partitioned into contiguous chunks, each chunk
// ingested into a worker-owned shard estimator constructed with the SAME
// Options (same Seed => identical hash functions), and the shards folded
// together with the linearity-based merges. The counter state after the
// fold is bit-identical to a serial run, and the result is deterministic
// given (stream, Options, workers), independent of goroutine scheduling —
// chunk boundaries are a pure function of the stream length and shards
// merge in index order.
//
// Estimates are exactly equal to a serial run while the per-level top-k
// candidate trackers do not overflow (capacity 2H/λ + 1, the size the
// space bounds dictate). Past that capacity the serial and merged
// trackers may admit marginally different LIGHT candidates — genuinely
// heavy items survive both — so estimates agree far inside the ε target
// but not necessarily to the last bit. The two-pass path tabulates exact
// frequencies against a coordinator-chosen candidate set, so RunParallel
// is exact regardless.

// forBatches walks updates in engine.DefaultBatchSize chunks.
func forBatches(updates []stream.Update, fn func(batch []stream.Update)) {
	for lo := 0; lo < len(updates); lo += engine.DefaultBatchSize {
		hi := lo + engine.DefaultBatchSize
		if hi > len(updates) {
			hi = len(updates)
		}
		fn(updates[lo:hi])
	}
}

// ProcessParallel consumes the stream with the sharded engine: the
// updates are split into `workers` contiguous chunks (workers < 1 means
// GOMAXPROCS), each chunk is ingested into its own shard estimator via
// the batched path, and the shards merge back into e.
func (e *OnePassEstimator) ProcessParallel(s *stream.Stream, workers int) error {
	_, err := engine.Process(s.Updates(), workers,
		func(w int) *OnePassEstimator {
			if w == 0 {
				return e
			}
			return NewOnePass(e.g, e.opts)
		},
		func(dst, src *OnePassEstimator) error { return dst.Merge(src) })
	return err
}

// ParallelEstimator wraps a OnePassEstimator with a fixed worker count
// so that Process runs the sharded parallel engine. It is the
// ready-made concurrent front end of the one-pass g-SUM estimator.
type ParallelEstimator struct {
	*OnePassEstimator
	workers int
}

// NewParallel builds a one-pass estimator whose Process shards the
// stream across the given number of workers (< 1 means GOMAXPROCS).
func NewParallel(g gfunc.Func, opts Options, workers int) *ParallelEstimator {
	return &ParallelEstimator{
		OnePassEstimator: NewOnePass(g, opts),
		workers:          engine.Workers(workers),
	}
}

// Workers reports the resolved worker count.
func (p *ParallelEstimator) Workers() int { return p.workers }

// Process consumes an entire stream with the parallel engine.
func (p *ParallelEstimator) Process(s *stream.Stream) error {
	return p.ProcessParallel(s, p.workers)
}

// RunParallel executes both passes of the two-pass estimator with the
// sharded engine. Pass 1 runs on per-worker shards and merges (the
// CountSketch state is linear); the coordinator extracts the candidate
// sets once, distributes them to the workers, and pass 2 tabulates each
// chunk exactly — exact counts add linearly too, so the result equals a
// serial Run.
func (e *TwoPassEstimator) RunParallel(s *stream.Stream, workers int) (float64, error) {
	w := engine.Workers(workers)
	updates := s.Updates()
	if w <= 1 || len(updates) <= 1 {
		return e.Run(s), nil
	}
	if w > len(updates) {
		w = len(updates)
	}
	ests := make([]*TwoPassEstimator, w)
	ests[0] = e
	engine.ParallelChunks(updates, w, func(i int, chunk []stream.Update) {
		if ests[i] == nil {
			ests[i] = NewTwoPass(e.g, e.opts)
		}
		forBatches(chunk, ests[i].sk.Pass1Batch)
	})
	for i := 1; i < w; i++ {
		if err := e.sk.MergePass1(ests[i].sk); err != nil {
			return 0, err
		}
	}
	e.FinishPass1()
	for i := 1; i < w; i++ {
		if err := ests[i].sk.AdoptCandidates(e.sk); err != nil {
			return 0, err
		}
	}
	engine.ParallelChunks(updates, w, func(i int, chunk []stream.Update) {
		forBatches(chunk, ests[i].sk.Pass2Batch)
	})
	for i := 1; i < w; i++ {
		if err := e.sk.MergePass2(ests[i].sk); err != nil {
			return 0, err
		}
	}
	return e.sk.Estimate(), nil
}

// ProcessParallel ingests the stream into every copy concurrently, one
// goroutine per copy (copy-level parallelism: the copies are independent
// estimators, so no merging is needed and results are identical to the
// serial Process).
func (m *MedianOnePass) ProcessParallel(s *stream.Stream, workers int) {
	w := engine.Workers(workers)
	if w > len(m.runs) {
		w = len(m.runs)
	}
	if w <= 1 {
		m.Process(s)
		return
	}
	sem := make(chan struct{}, w)
	var wg sync.WaitGroup
	for _, r := range m.runs {
		wg.Add(1)
		sem <- struct{}{}
		go func(r *OnePassEstimator) {
			defer wg.Done()
			r.Process(s)
			<-sem
		}(r)
	}
	wg.Wait()
}

// Merge folds another universal sketch (built with identical Options,
// including Seed) into u, level by level — the distributed-sketching
// mode of the Section 1.1.1 application.
func (u *Universal) Merge(other *Universal) error {
	return mergeOnePassLevels(u.levels, other.levels)
}

// UpdateBatch feeds a batch of turnstile updates, routing survivors down
// the subsampling levels exactly as per-update ingestion would.
func (u *Universal) UpdateBatch(batch []stream.Update) {
	if len(batch) == 0 {
		return
	}
	recursive.FeedLevels(batch, u.sub, &u.scratch, func(k int, chunk []stream.Update) {
		u.levels[k].UpdateBatch(chunk)
	})
}

// ProcessParallel consumes the stream with the sharded engine, exactly
// as OnePassEstimator.ProcessParallel.
func (u *Universal) ProcessParallel(s *stream.Stream, workers int) error {
	_, err := engine.Process(s.Updates(), workers,
		func(w int) *Universal {
			if w == 0 {
				return u
			}
			return NewUniversal(u.opts)
		},
		func(dst, src *Universal) error { return dst.Merge(src) })
	return err
}
