package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/recursive"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/xhash"
)

// Universal is the function-independent linear sketch of Section 1.1.1:
// one pass over the stream builds CountSketch + AMS state at every
// recursive level, and EstimateFor(g) extracts a g-SUM estimate for any
// tractable g afterwards. The form of the sketch is independent of g, so
// a family {g_θ : θ ∈ Θ} can be queried from a single pass — each answer
// correct with the sketch's probability, amplified by O(log |Θ|)
// repetition in the MLE application (internal/mle).
//
// The sketch must be sized for the worst envelope in the family: pass the
// max of gfunc.MeasureEnvelope(g_θ, M).H() over θ as Options.Envelope.
type Universal struct {
	levels  []*heavy.OnePass
	sub     []*xhash.Bernoulli
	opts    Options           // resolved options, kept so ProcessParallel can clone shards
	scratch [][]stream.Update // reusable UpdateBatch survivor buffers
}

// mergeOnePassLevels folds the per-level OnePass states of src into dst
// (same configuration and seed at every level).
func mergeOnePassLevels(dst, src []*heavy.OnePass) error {
	if len(dst) != len(src) {
		return fmt.Errorf("core: level count mismatch %d vs %d", len(dst), len(src))
	}
	for k := range dst {
		if err := dst[k].Merge(src[k]); err != nil {
			return fmt.Errorf("core: level %d: %w", k, err)
		}
	}
	return nil
}

// NewUniversal builds a universal g-SUM sketch. Options.Envelope must be
// set (there is no g to measure it from); zero falls back to 1.
func NewUniversal(opts Options) *Universal {
	o := opts.withDefaults()
	h := o.Envelope
	if h < 1 {
		h = 1
	}
	levels := o.Levels
	if levels == 0 {
		levels = util.Log2Ceil(o.N)
	}
	if levels > 30 {
		levels = 30
	}
	if levels < 1 {
		levels = 1
	}
	rng := util.NewSplitMix64(o.Seed)
	u := &Universal{
		levels: make([]*heavy.OnePass, levels+1),
		sub:    make([]*xhash.Bernoulli, levels),
		opts:   o,
	}
	for k := 0; k <= levels; k++ {
		u.levels[k] = heavy.NewOnePass(heavy.OnePassConfig{
			// G is only a default for Cover(); EstimateFor supplies the
			// real query function.
			G:           gfunc.F2Func(),
			Lambda:      o.Lambda,
			Eps:         o.Eps,
			Delta:       o.Delta,
			H:           h,
			WidthFactor: o.WidthFactor,
		}, rng.Fork())
	}
	for k := 0; k < levels; k++ {
		u.sub[k] = xhash.NewBernoulli(2, 1, 2, rng.Fork())
	}
	return u
}

// Update feeds one turnstile update.
func (u *Universal) Update(item uint64, delta int64) {
	u.levels[0].Update(item, delta)
	for k := 0; k < len(u.sub); k++ {
		if !u.sub[k].Hash(item) {
			return
		}
		u.levels[k+1].Update(item, delta)
	}
}

// Process consumes an entire stream through the batched ingestion path.
func (u *Universal) Process(s *stream.Stream) {
	engine.Ingest(u, s.Updates(), 0)
}

// EstimateFor returns the g-SUM estimate for g from the frozen sketch
// state. It can be called many times with different functions.
func (u *Universal) EstimateFor(g gfunc.Func) float64 {
	covers := make([]heavy.Cover, len(u.levels))
	for k := range u.levels {
		covers[k] = u.levels[k].CoverFor(g)
	}
	return recursive.CombineCovers(covers, func(level int, item uint64) bool {
		return u.sub[level].Hash(item)
	})
}

// SpaceBytes reports total counter storage.
func (u *Universal) SpaceBytes() int {
	total := 0
	for _, lv := range u.levels {
		total += lv.SpaceBytes()
	}
	return total
}
