package core

import (
	"math"
	"testing"
)

// TestDefaultLambdaFloor pins the documented λ default: at bench scales
// the Theorem 13 formula ε²/log³n falls below the floor, so WithDefaults
// must resolve λ to exactly DefaultLambdaFloor = 1/32. This is the
// regression test for the doc/code drift where the field comment claimed
// a 1/64 floor while the code floored at 1/32.
func TestDefaultLambdaFloor(t *testing.T) {
	if DefaultLambdaFloor != 1.0/32 {
		t.Fatalf("DefaultLambdaFloor = %v, want 1/32", DefaultLambdaFloor)
	}
	o := Options{N: 1 << 16, M: 1 << 10}.WithDefaults()
	logn := math.Log2(float64(1<<16) + 2)
	if formula := o.Eps * o.Eps / (logn * logn * logn); formula >= DefaultLambdaFloor {
		t.Fatalf("test premise broken: Theorem 13 λ %v is above the floor", formula)
	}
	if o.Lambda != DefaultLambdaFloor {
		t.Errorf("default λ = %v, want the floor %v", o.Lambda, DefaultLambdaFloor)
	}

	// An explicit λ must pass through untouched, floor or no floor.
	if o := (Options{N: 1 << 16, Lambda: 1.0 / 128}).WithDefaults(); o.Lambda != 1.0/128 {
		t.Errorf("explicit λ 1/128 resolved to %v", o.Lambda)
	}

	// A huge domain can push the formula above the floor; then the
	// formula value wins.
	o = Options{N: 1 << 2, Eps: 0.9}.WithDefaults()
	logn = math.Log2(float64(uint64(1)<<2) + 2)
	want := 0.9 * 0.9 / (logn * logn * logn)
	if want <= DefaultLambdaFloor {
		t.Fatalf("test premise broken: formula %v not above floor", want)
	}
	if o.Lambda != want {
		t.Errorf("formula λ = %v, want %v", o.Lambda, want)
	}
}
