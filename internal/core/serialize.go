package core

import (
	"fmt"
	"sort"

	"repro/internal/gfunc"
	"repro/internal/wire"
)

// Wire formats for the public estimators (header per internal/wire).
// Each estimator payload carries a fingerprint of its resolved Options
// (including the Seed) plus the nested sketch blobs, so a snapshot from
// a worker daemon only decodes onto a coordinator constructed with
// byte-identical configuration — the distributed analog of the
// "identical Options, including Seed" contract on Merge. UnmarshalBinary
// has merge semantics throughout: decoding a shard snapshot into a
// receiver adds the shard's counter state, and decoding several shard
// snapshots reproduces the estimator state of the union stream.

const (
	onePassEstMagic uint32 = 0x67535545 // "gSUE"
	twoPassEstMagic uint32 = 0x67535546 // "gSUF"
	universalMagic  uint32 = 0x67535555 // "gSUU"
	offsetMagic     uint32 = 0x6753554f // "gSUO"
	medianMagic     uint32 = 0x6753554d // "gSUM"
	exactMagic      uint32 = 0x67535558 // "gSUX"
)

// OptionsFingerprint digests every Options field into a 64-bit value
// with the wire package's fold. It is the options half of the estimator
// wire fingerprints below, and the backend registry folds it into the
// Spec fingerprint two daemons exchange before shipping snapshots.
func OptionsFingerprint(o Options) uint64 { return optionsFingerprint(o) }

// optionsFingerprint digests the resolved Options fields that govern
// sketch shape and hash functions.
func optionsFingerprint(o Options) uint64 {
	h := wire.Fingerprint(0, o.N)
	h = wire.Fingerprint(h, uint64(o.M))
	h = wire.FingerprintFloat(h, o.Eps)
	h = wire.FingerprintFloat(h, o.Delta)
	h = wire.FingerprintFloat(h, o.Lambda)
	h = wire.Fingerprint(h, uint64(o.Levels))
	h = wire.FingerprintFloat(h, o.WidthFactor)
	h = wire.Fingerprint(h, o.Seed)
	return wire.FingerprintFloat(h, o.Envelope)
}

func estimatorFingerprint(g gfunc.Func, o Options) uint64 {
	return wire.FingerprintString(optionsFingerprint(o), g.Name())
}

// Fingerprint digests the estimator's function and resolved Options.
func (e *OnePassEstimator) Fingerprint() uint64 {
	return estimatorFingerprint(e.g, e.opts)
}

// MarshalBinary serializes the one-pass estimator state: the recursive
// sketch with every level's Algorithm 2 state.
func (e *OnePassEstimator) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(onePassEstMagic, e.Fingerprint())
	blob, err := e.sk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(blob)
	return w.Bytes(), nil
}

// UnmarshalBinary adds a serialized shard estimator into e (merge
// semantics). The receiver must have been built with identical g and
// Options, including Seed; the fingerprint verifies this on decode.
func (e *OnePassEstimator) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(onePassEstMagic, e.Fingerprint()); err != nil {
		return fmt.Errorf("core: OnePassEstimator: %w", err)
	}
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: OnePassEstimator: %w", err)
	}
	return e.sk.UnmarshalBinary(blob)
}

// Fingerprint digests the estimator's function and resolved Options.
func (e *TwoPassEstimator) Fingerprint() uint64 {
	return estimatorFingerprint(e.g, e.opts)
}

// MarshalBinary serializes the two-pass estimator state (see
// recursive.TwoPass.MarshalBinary).
func (e *TwoPassEstimator) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(twoPassEstMagic, e.Fingerprint())
	blob, err := e.sk.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(blob)
	return w.Bytes(), nil
}

// UnmarshalBinary adds a serialized shard estimator into e (merge
// semantics; candidate sets follow heavy.TwoPass.UnmarshalBinary rules).
func (e *TwoPassEstimator) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(twoPassEstMagic, e.Fingerprint()); err != nil {
		return fmt.Errorf("core: TwoPassEstimator: %w", err)
	}
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: TwoPassEstimator: %w", err)
	}
	return e.sk.UnmarshalBinary(blob)
}

// MarshalCandidates serializes the coordinator's per-level candidate
// sets after FinishPass1 (the distribution half of the distributed
// two-pass protocol).
func (e *TwoPassEstimator) MarshalCandidates() ([]byte, error) {
	return e.sk.MarshalCandidates()
}

// UnmarshalCandidates adopts a coordinator's candidate sets before the
// tabulation pass.
func (e *TwoPassEstimator) UnmarshalCandidates(data []byte) error {
	return e.sk.UnmarshalCandidates(data)
}

// Fingerprint digests the universal sketch's resolved Options and the
// subsampling hashes.
func (u *Universal) Fingerprint() uint64 {
	h := optionsFingerprint(u.opts)
	h = wire.Fingerprint(h, uint64(len(u.levels)))
	for _, b := range u.sub {
		h = b.Fingerprint(h)
	}
	return h
}

// MarshalBinary serializes every level's Algorithm 2 state.
func (u *Universal) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(universalMagic, u.Fingerprint())
	w.U32(uint32(len(u.levels)))
	for k, lv := range u.levels {
		blob, err := lv.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: Universal level %d: %w", k, err)
		}
		w.Blob(blob)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary adds a serialized shard sketch into u, level by level
// (merge semantics) — the distributed mode of the Section 1.1.1
// function-independent sketch: workers ship snapshots, the coordinator
// folds them, and EstimateFor answers post-hoc g-SUM queries over the
// union stream.
func (u *Universal) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(universalMagic, u.Fingerprint()); err != nil {
		return fmt.Errorf("core: Universal: %w", err)
	}
	blobs, err := r.Blobs(len(u.levels))
	if err != nil {
		return fmt.Errorf("core: Universal: %w", err)
	}
	for k := range u.levels {
		if err := u.levels[k].UnmarshalBinary(blobs[k]); err != nil {
			return fmt.Errorf("core: Universal level %d: %w", k, err)
		}
	}
	return nil
}

// Fingerprint digests the offset estimator's configuration via its two
// sub-estimators.
func (e *OffsetEstimator) Fingerprint() uint64 {
	h := wire.Fingerprint(0, e.n)
	h = wire.FingerprintFloat(h, e.scale)
	h = wire.Fingerprint(h, e.pos.Fingerprint())
	return wire.Fingerprint(h, e.l0.Fingerprint())
}

// MarshalBinary serializes the Appendix A estimator: the restriction
// sub-estimator and the F0 (L0 indicator) sub-estimator.
func (e *OffsetEstimator) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(offsetMagic, e.Fingerprint())
	pos, err := e.pos.MarshalBinary()
	if err != nil {
		return nil, err
	}
	l0, err := e.l0.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(pos)
	w.Blob(l0)
	return w.Bytes(), nil
}

// UnmarshalBinary adds a serialized shard estimator into e (merge
// semantics on both sub-estimators).
func (e *OffsetEstimator) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(offsetMagic, e.Fingerprint()); err != nil {
		return fmt.Errorf("core: OffsetEstimator: %w", err)
	}
	pos := r.Blob()
	l0 := r.Blob()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: OffsetEstimator: %w", err)
	}
	if err := e.pos.UnmarshalBinary(pos); err != nil {
		return err
	}
	return e.l0.UnmarshalBinary(l0)
}

// Fingerprint digests the exact baseline's configuration: only the
// function identity matters (the frequency map is shape-free).
func (e *ExactEstimator) Fingerprint() uint64 {
	return wire.FingerprintString(0, e.g.Name())
}

// MarshalBinary serializes the exact baseline: the sparse frequency
// vector in ascending item order (a canonical encoding, so identical
// states marshal to identical bytes).
func (e *ExactEstimator) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(exactMagic, e.Fingerprint())
	items := make([]uint64, 0, len(e.freq))
	for it := range e.freq {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	w.U32(uint32(len(items)))
	for _, it := range items {
		w.U64(it)
		w.I64(e.freq[it])
	}
	return w.Bytes(), nil
}

// UnmarshalBinary adds a serialized shard's frequencies into e (merge
// semantics, like every estimator in this file): frequencies add, and
// entries that cancel to zero are dropped. The whole payload is decoded
// before the receiver is mutated.
func (e *ExactEstimator) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(exactMagic, e.Fingerprint()); err != nil {
		return fmt.Errorf("core: ExactEstimator: %w", err)
	}
	n := int(r.U32())
	if uint64(n)*16 > uint64(r.Len()) {
		return fmt.Errorf("core: ExactEstimator: truncated payload: %d entries, %d bytes remain", n, r.Len())
	}
	items := make([]uint64, 0, n)
	freqs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, r.U64())
		freqs = append(freqs, r.I64())
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: ExactEstimator: %w", err)
	}
	for i, it := range items {
		e.Update(it, freqs[i])
	}
	return nil
}

// Fingerprint digests the copy count and each copy's configuration.
func (m *MedianOnePass) Fingerprint() uint64 {
	h := wire.Fingerprint(0, uint64(len(m.runs)))
	for _, run := range m.runs {
		h = wire.Fingerprint(h, run.Fingerprint())
	}
	return h
}

// MarshalBinary serializes every independent copy.
func (m *MedianOnePass) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.Header(medianMagic, m.Fingerprint())
	w.U32(uint32(len(m.runs)))
	for i, run := range m.runs {
		blob, err := run.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: MedianOnePass copy %d: %w", i, err)
		}
		w.Blob(blob)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary adds a serialized shard into every copy (merge
// semantics): the median of merged copies is the amplified estimate of
// the union stream.
func (m *MedianOnePass) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if err := r.Header(medianMagic, m.Fingerprint()); err != nil {
		return fmt.Errorf("core: MedianOnePass: %w", err)
	}
	blobs, err := r.Blobs(len(m.runs))
	if err != nil {
		return fmt.Errorf("core: MedianOnePass: %w", err)
	}
	for i := range m.runs {
		if err := m.runs[i].UnmarshalBinary(blobs[i]); err != nil {
			return fmt.Errorf("core: MedianOnePass copy %d: %w", i, err)
		}
	}
	return nil
}
