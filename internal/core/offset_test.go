package core

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

func TestOffsetEstimatorMatchesExact(t *testing.T) {
	// g(x) = 1 + x² (G0 class): zeros contribute 1 each, so the full sum
	// over an n-coordinate vector is (n - F0) + Σ_{v≠0} (1 + v²).
	g := gfunc.NormalizeG0("1+x^2", func(x uint64) float64 {
		return 1 + float64(x)*float64(x)
	})
	for seed := uint64(1); seed <= 3; seed++ {
		s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 300, 1.1)
		v := s.Vector()
		var truth float64
		for i := uint64(0); i < s.N(); i++ {
			f := v[i]
			truth += g.Eval(uint64(util.AbsInt64(f)))
		}
		e := NewOffsetEstimator(g, Options{
			N: s.N(), M: 1 << 10, Eps: 0.2, Seed: seed * 31, Lambda: 1.0 / 16,
		})
		e.Process(s)
		if err := util.RelErr(e.Estimate(), truth); err > 0.25 {
			t.Errorf("seed %d: offset estimator rel err %.3f (got %.6g, want %.6g)",
				seed, err, e.Estimate(), truth)
		}
	}
}

func TestOffsetEstimatorAllZeros(t *testing.T) {
	// Empty stream: every coordinate contributes g(0) = 1.
	g := gfunc.NormalizeG0("1+x", func(x uint64) float64 { return 1 + float64(x) })
	e := NewOffsetEstimator(g, Options{N: 1 << 10, M: 16, Seed: 3})
	if err := util.RelErr(e.Estimate(), float64(1<<10)); err > 0.05 {
		t.Errorf("all-zeros estimate %.4g, want %d", e.Estimate(), 1<<10)
	}
}

func TestOffsetEstimatorCancellation(t *testing.T) {
	// Insert then delete: the coordinate returns to zero and must be
	// charged g(0), not g(v).
	g := gfunc.NormalizeG0("1+x^2", func(x uint64) float64 {
		return 1 + float64(x)*float64(x)
	})
	e := NewOffsetEstimator(g, Options{N: 64, M: 1 << 10, Seed: 9})
	e.Update(5, 100)
	e.Update(5, -100)
	e.Update(7, 3)
	want := 63.0 + (1 + 9) // 63 zeros + one coordinate at 3
	if err := util.RelErr(e.Estimate(), want); err > 0.1 {
		t.Errorf("estimate %.4g, want %.4g", e.Estimate(), want)
	}
}
