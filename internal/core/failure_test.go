package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// Failure injection: the zero-one law's negative side must be observable.
// These tests assert that the estimators FAIL where the paper says no
// small-space algorithm can succeed — a reproduction that only checks the
// positive side would pass even if the lower-bound machinery were broken.

func TestIntractableReciprocalDefeatsFixedSketch(t *testing.T) {
	// Lemma 23 instance family for 1/x at growing size, fixed sketch
	// budget: the distinguishing accuracy must drop strictly below the
	// exact algorithm's 100%.
	g := gfunc.Reciprocal()
	cfg := comm.IndexDropConfig{G: g, X: 1, Y: 2048, SetSize: 2048, Seed: 99}
	acc := comm.Distinguisher(
		func(trial int) comm.InstancePair { return comm.NewIndexDropPair(cfg, trial) },
		func(trial, which int) comm.Estimator {
			return NewOnePass(g, Options{
				N: 2050, M: 4096, Eps: 0.1, Seed: uint64(trial*2 + which),
				Lambda: 1.0 / 8, Envelope: 1, Levels: 6, WidthFactor: 0.5,
			})
		}, 12)
	if acc > 0.6 {
		t.Errorf("fixed-budget sketch should fail on the 1/x INDEX family, got accuracy %.2f", acc)
	}
}

func TestUnpredictableDefeatsOnePassCover(t *testing.T) {
	// On the E3-style adversarial stream, the 1-pass cover must MISS
	// unstable heavy items (that is Algorithm 2 behaving correctly: it
	// cannot certify their weights), while the 2-pass cover holds them
	// with exact weights.
	g := gfunc.SinSqrtX2()
	s := adversarialStream(3)
	v := s.Vector()
	envelope := gfunc.MeasureEnvelope(gfunc.SinLogX2(), 1<<16).H()

	opts := Options{N: s.N(), M: 1 << 16, Eps: 0.25, Seed: 11,
		Lambda: 1.0 / 16, Envelope: envelope}
	one := NewOnePass(g, opts)
	one.Process(s)
	two := NewTwoPass(g, opts)
	gotTwo := two.Run(s)

	truth := v.Sum(g.Eval)
	errOne := util.RelErr(one.Estimate(), truth)
	errTwo := util.RelErr(gotTwo, truth)
	if errTwo > 0.1 {
		t.Errorf("2-pass must survive the adversarial stream, err %.3f", errTwo)
	}
	if errOne < 2*errTwo {
		t.Logf("note: 1-pass err %.4f vs 2-pass %.4f — separation weaker than typical on this seed", errOne, errTwo)
	}
}

// adversarialStream mirrors experiments.UnstableHeavyStream without the
// import cycle (experiments imports core).
func adversarialStream(seed uint64) *stream.Stream {
	rng := util.NewSplitMix64(seed * 7919)
	s := stream.New(1 << 14)
	used := make(map[uint64]struct{})
	pick := func() uint64 {
		for {
			it := rng.Uint64n(1 << 14)
			if _, ok := used[it]; !ok {
				used[it] = struct{}{}
				return it
			}
		}
	}
	for i := 0; i < 30; i++ {
		s.AddCopies(pick(), 30000+int64(i)*1973)
	}
	for i := 0; i < 1500; i++ {
		s.AddCopies(pick(), 300+rng.Int63n(300))
	}
	return s
}

func TestEnvelopeBlowupForX3(t *testing.T) {
	// x³'s envelope grows linearly in M, so estimator space at fixed
	// accuracy must grow polynomially — the observable face of Lemma 28.
	g := gfunc.X3()
	spaceAt := func(m int64) int {
		e := NewOnePass(g, Options{N: 1 << 10, M: m, Eps: 0.25, Seed: 1, Lambda: 1.0 / 8})
		return e.SpaceBytes()
	}
	s1, s2 := spaceAt(1<<8), spaceAt(1<<12)
	if s2 < 4*s1 {
		t.Errorf("x³ sketch space must blow up with M: %d -> %d", s1, s2)
	}
	// Control: x² space is M-independent.
	gc := gfunc.F2Func()
	c1 := NewOnePass(gc, Options{N: 1 << 10, M: 1 << 8, Eps: 0.25, Seed: 1, Lambda: 1.0 / 8}).SpaceBytes()
	c2 := NewOnePass(gc, Options{N: 1 << 10, M: 1 << 12, Eps: 0.25, Seed: 1, Lambda: 1.0 / 8}).SpaceBytes()
	if c2 > 2*c1 {
		t.Errorf("x² sketch space should not grow with M: %d -> %d", c1, c2)
	}
}

func TestTurnstileAllCancels(t *testing.T) {
	// Insert and delete everything: the estimate must be ~0 for any g.
	for _, g := range []gfunc.Func{gfunc.F2Func(), gfunc.X2Log()} {
		e := NewOnePass(g, Options{N: 1 << 10, M: 1 << 8, Seed: 2, Lambda: 1.0 / 8})
		for i := uint64(0); i < 100; i++ {
			e.Update(i, int64(i+1))
		}
		for i := uint64(0); i < 100; i++ {
			e.Update(i, -int64(i+1))
		}
		if got := e.Estimate(); got != 0 {
			t.Errorf("%s: fully-canceled stream estimates %v, want 0", g.Name(), got)
		}
	}
}

func TestEmptyStreamEstimatesZero(t *testing.T) {
	e := NewOnePass(gfunc.F2Func(), Options{N: 1 << 8, M: 16, Seed: 3})
	if got := e.Estimate(); got != 0 {
		t.Errorf("empty stream estimate %v, want 0", got)
	}
	tw := NewTwoPass(gfunc.F2Func(), Options{N: 1 << 8, M: 16, Seed: 3})
	if got := tw.Run(stream.New(1 << 8)); got != 0 {
		t.Errorf("empty 2-pass estimate %v, want 0", got)
	}
}

func TestSingleItemStream(t *testing.T) {
	g := gfunc.F2Func()
	e := NewOnePass(g, Options{N: 1 << 8, M: 1 << 10, Seed: 4, Lambda: 1.0 / 8})
	e.Update(42, 1000)
	if util.RelErr(e.Estimate(), 1e6) > 0.01 {
		t.Errorf("single-item estimate %v, want 1e6", e.Estimate())
	}
}
