// Package core implements the paper's primary deliverable: sub-polynomial
// space (1±ε)-approximation of g-SUM = Σ_i g(|v_i|) on turnstile streams.
//
// Three estimators are provided:
//
//   - OnePass: Algorithm 2 + the recursive sketch (Theorem 2's upper
//     bound) — works for slow-jumping, slow-dropping, predictable g;
//   - TwoPass: Algorithm 1 + the recursive sketch (Theorem 3's upper
//     bound) — drops the predictability requirement by tabulating exact
//     frequencies in a second pass;
//   - Exact: the linear-space baseline.
//
// Universal provides the function-independent sketch of Section 1.1.1:
// one pass over the stream, then post-hoc g-SUM queries for any function
// in a family (used by the approximate-MLE application).
//
// Layer: the estimator layer of ARCHITECTURE.md, wrapping
// internal/recursive and internal/heavy below it and feeding the
// harness/service layers (engine, workload, window, daemon) above.
// Seed discipline: all randomness forks from Options.Seed in fixed
// construction order; estimators Merge/UnmarshalBinary only against
// instances built from identical Options including Seed, and the wire
// fingerprint (serialize.go) digests the resolved Options to check it.
package core
