package core

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
)

// wireStream keeps the distinct-item count below the candidate
// trackers' capacity, the regime in which serial and merged estimates
// are guaranteed to agree exactly (see parallel.go).
func wireStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.1)
}

func wireOpts(seed uint64) Options {
	return Options{N: 1 << 12, M: 1 << 10, Eps: 0.25, Seed: seed, Lambda: 1.0 / 16}
}

// shardAndShip splits the stream in half, processes each half in an
// independent estimator (a stand-in for a worker process), and ships
// both snapshots into coord via the wire format.
func shardAndShip(t *testing.T, s *stream.Stream, mk func() interface {
	Update(uint64, int64)
	MarshalBinary() ([]byte, error)
}, coord interface{ UnmarshalBinary([]byte) error }) {
	t.Helper()
	updates := s.Updates()
	n := len(updates)
	for i, bounds := range [][2]int{{0, n / 2}, {n / 2, n}} {
		w := mk()
		for _, u := range updates[bounds[0]:bounds[1]] {
			w.Update(u.Item, u.Delta)
		}
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
}

func TestOnePassEstimatorWireMergeEqualsSerial(t *testing.T) {
	g := gfunc.F2Func()
	s := wireStream(3)
	opts := wireOpts(42)

	serial := NewOnePass(g, opts)
	serial.Process(s)

	coord := NewOnePass(g, opts)
	shardAndShip(t, s, func() interface {
		Update(uint64, int64)
		MarshalBinary() ([]byte, error)
	} {
		return NewOnePass(g, opts)
	}, coord)

	if a, b := serial.Estimate(), coord.Estimate(); a != b {
		t.Errorf("wire-merged estimate %.17g != serial %.17g", b, a)
	}
}

func TestOnePassEstimatorUnmarshalRejectsMismatch(t *testing.T) {
	g := gfunc.F2Func()
	a := NewOnePass(g, wireOpts(42))
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Different seed.
	if err := NewOnePass(g, wireOpts(43)).UnmarshalBinary(data); err == nil {
		t.Error("expected fingerprint mismatch for different seed")
	}
	// Different function.
	if err := NewOnePass(gfunc.F1Func(), wireOpts(42)).UnmarshalBinary(data); err == nil {
		t.Error("expected fingerprint mismatch for different function")
	}
	// Truncation at every prefix must error, never panic.
	for cut := 0; cut < len(data); cut += 97 {
		if err := a.UnmarshalBinary(data[:cut]); err == nil {
			t.Errorf("expected error on payload truncated to %d bytes", cut)
		}
	}
}

func TestUniversalWireMergeEqualsSerial(t *testing.T) {
	s := wireStream(5)
	opts := wireOpts(7)
	opts.Envelope = 4

	serial := NewUniversal(opts)
	serial.Process(s)

	coord := NewUniversal(opts)
	shardAndShip(t, s, func() interface {
		Update(uint64, int64)
		MarshalBinary() ([]byte, error)
	} {
		return NewUniversal(opts)
	}, coord)

	for _, g := range []gfunc.Func{gfunc.F2Func(), gfunc.F1Func(), gfunc.L0()} {
		if a, b := serial.EstimateFor(g), coord.EstimateFor(g); a != b {
			t.Errorf("%s: wire-merged estimate %.17g != serial %.17g", g.Name(), b, a)
		}
	}
}

func TestTwoPassEstimatorWireProtocolEqualsSerial(t *testing.T) {
	g := gfunc.X2Log()
	s := wireStream(9)
	opts := wireOpts(4)
	updates := s.Updates()
	n := len(updates)

	serial := NewTwoPass(g, opts)
	want := serial.Run(s)

	w1, w2, coord := NewTwoPass(g, opts), NewTwoPass(g, opts), NewTwoPass(g, opts)
	for _, u := range updates[:n/2] {
		w1.Pass1(u.Item, u.Delta)
	}
	for _, u := range updates[n/2:] {
		w2.Pass1(u.Item, u.Delta)
	}
	for _, w := range []*TwoPassEstimator{w1, w2} {
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}
	coord.FinishPass1()
	cands, err := coord.MarshalCandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*TwoPassEstimator{w1, w2} {
		if err := w.UnmarshalCandidates(cands); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range updates[:n/2] {
		w1.Pass2(u.Item, u.Delta)
	}
	for _, u := range updates[n/2:] {
		w2.Pass2(u.Item, u.Delta)
	}
	for _, w := range []*TwoPassEstimator{w1, w2} {
		data, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	}

	if got := coord.Estimate(); got != want {
		t.Errorf("wire two-pass estimate %.17g != serial %.17g", got, want)
	}
}

func TestOffsetEstimatorWireMergeEqualsSerial(t *testing.T) {
	g0 := gfunc.NewG0("1+x", func(x uint64) float64 { return 1 + float64(x) })
	s := wireStream(11)
	opts := wireOpts(6)

	serial := NewOffsetEstimator(g0, opts)
	serial.Process(s)

	coord := NewOffsetEstimator(g0, opts)
	shardAndShip(t, s, func() interface {
		Update(uint64, int64)
		MarshalBinary() ([]byte, error)
	} {
		return NewOffsetEstimator(g0, opts)
	}, coord)

	if a, b := serial.Estimate(), coord.Estimate(); a != b {
		t.Errorf("wire-merged offset estimate %.17g != serial %.17g", b, a)
	}
}

func TestMedianOnePassWireMergeEqualsSerial(t *testing.T) {
	g := gfunc.F2Func()
	s := wireStream(13)
	opts := wireOpts(8)

	serial := NewMedianOnePass(g, opts, 3)
	serial.Process(s)

	coord := NewMedianOnePass(g, opts, 3)
	shardAndShip(t, s, func() interface {
		Update(uint64, int64)
		MarshalBinary() ([]byte, error)
	} {
		return NewMedianOnePass(g, opts, 3)
	}, coord)

	if a, b := serial.Estimate(), coord.Estimate(); a != b {
		t.Errorf("wire-merged median estimate %.17g != serial %.17g", b, a)
	}
}

func TestRoundTripAcrossConstructedPair(t *testing.T) {
	// Marshal from one instance, unmarshal into a freshly built twin, and
	// re-marshal: the twin's payload must equal the original, i.e. the
	// wire format is lossless on counter state.
	g := gfunc.F2Func()
	s := wireStream(15)
	opts := wireOpts(10)

	src := NewOnePass(g, opts)
	src.Process(s)
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dst := NewOnePass(g, opts)
	if err := dst.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	again, err := dst.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("re-marshaled payload differs from the original round trip")
	}
}
