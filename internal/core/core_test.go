package core

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

func zipfStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 400, 1.1)
}

func TestOnePassTractableAccuracy(t *testing.T) {
	funcs := []gfunc.Func{
		gfunc.F2Func(),
		gfunc.F1Func(),
		gfunc.Power(1.5),
		gfunc.X2Log(),
		gfunc.SinLogX2(),
	}
	for _, g := range funcs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			var worst float64
			for seed := uint64(1); seed <= 5; seed++ {
				s := zipfStream(seed)
				exact := NewExact(g)
				exact.Process(s)
				truth := exact.Estimate()

				est := NewOnePass(g, Options{
					N: s.N(), M: 1 << 10, Eps: 0.25, Seed: seed * 7,
				})
				est.Process(s)
				got := est.Estimate()
				if err := util.RelErr(got, truth); err > worst {
					worst = err
				}
			}
			if worst > 0.35 {
				t.Errorf("one-pass worst relative error %.3f > 0.35", worst)
			}
		})
	}
}

func TestTwoPassTractableAccuracy(t *testing.T) {
	funcs := []gfunc.Func{
		gfunc.F2Func(),
		gfunc.X2Log(),
		gfunc.SinSqrtX2(), // unpredictable: needs 2 passes
	}
	for _, g := range funcs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			var worst float64
			for seed := uint64(1); seed <= 5; seed++ {
				s := zipfStream(seed)
				exact := NewExact(g)
				exact.Process(s)
				truth := exact.Estimate()

				est := NewTwoPass(g, Options{
					N: s.N(), M: 1 << 10, Eps: 0.25, Seed: seed * 13,
				})
				got := est.Run(s)
				if err := util.RelErr(got, truth); err > worst {
					worst = err
				}
			}
			if worst > 0.35 {
				t.Errorf("two-pass worst relative error %.3f > 0.35", worst)
			}
		})
	}
}

func TestUniversalSketchMultiQuery(t *testing.T) {
	s := zipfStream(3)
	// Envelope must dominate every queried function; X2Log has the
	// largest envelope in this family.
	h := gfunc.MeasureEnvelope(gfunc.X2Log(), 1<<10).H()
	u := NewUniversal(Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 99, Envelope: h})
	u.Process(s)

	for _, g := range []gfunc.Func{gfunc.F2Func(), gfunc.F1Func(), gfunc.X2Log()} {
		exact := NewExact(g)
		exact.Process(s)
		truth := exact.Estimate()
		got := u.EstimateFor(g)
		if err := util.RelErr(got, truth); err > 0.35 {
			t.Errorf("universal sketch for %s: relative error %.3f > 0.35 (got %.4g, want %.4g)",
				g.Name(), err, got, truth)
		}
	}
}

func TestExactEstimatorMatchesVector(t *testing.T) {
	s := zipfStream(5)
	g := gfunc.F2Func()
	e := NewExact(g)
	e.Process(s)
	want := s.Vector().Sum(g.Eval)
	if got := e.Estimate(); got != want {
		t.Errorf("exact estimator %.6g != vector sum %.6g", got, want)
	}
}

func TestMedianAmplification(t *testing.T) {
	s := zipfStream(8)
	g := gfunc.F2Func()
	exact := NewExact(g)
	exact.Process(s)
	truth := exact.Estimate()

	m := NewMedianOnePass(g, Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 4}, 5)
	m.Process(s)
	if err := util.RelErr(m.Estimate(), truth); err > 0.3 {
		t.Errorf("median-of-5 relative error %.3f > 0.3", err)
	}
}
