package core

import (
	"math"

	"repro/internal/engine"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/recursive"
	"repro/internal/stream"
	"repro/internal/util"
)

// Options configures the estimators. The zero value is not usable; fill in
// at least N and M. Accuracy defaults: Eps 0.25, Delta 0.2. The JSON tags
// define the canonical encoding used inside backend Specs.
type Options struct {
	// N is the stream's domain size.
	N uint64 `json:"n"`
	// M bounds |v_i| (the turnstile promise). It determines the envelope
	// H(M) used to size the sketches.
	M int64 `json:"m"`
	// Eps is the target relative accuracy ε (default 0.25).
	Eps float64 `json:"eps"`
	// Delta is the per-estimator failure probability δ (default 0.2).
	Delta float64 `json:"delta"`
	// Lambda is the heaviness parameter λ; 0 means the Theorem 13 setting
	// ε² / log³n (floored at DefaultLambdaFloor = 1/32 to keep test-scale
	// widths finite).
	Lambda float64 `json:"lambda"`
	// Levels overrides the recursive sketch depth (0 = log2 N).
	Levels int `json:"levels"`
	// WidthFactor scales sketch widths for space/accuracy sweeps (0 = 1).
	WidthFactor float64 `json:"width_factor"`
	// Seed makes every random choice reproducible.
	Seed uint64 `json:"seed"`
	// Envelope overrides the measured H(M) (0 = measure from g).
	Envelope float64 `json:"envelope"`
}

// DefaultLambdaFloor is the smallest λ WithDefaults will derive from the
// Theorem 13 formula. The asymptotic setting ε²/log³n would drive sketch
// widths far past what the accuracy needs at laptop scales, so the
// default is floored here. Experiments that sweep λ set it explicitly.
const DefaultLambdaFloor = 1.0 / 32

// WithDefaults resolves the zero-value accuracy fields to the documented
// defaults: Eps 0.25, Delta 0.2, Lambda per Theorem 13 floored at
// DefaultLambdaFloor, WidthFactor 1. Estimator constructors apply it;
// the backend registry applies it when normalizing a Spec, so both
// resolve a partially-filled Options to the same configuration.
func (o Options) WithDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.25
	}
	if o.Delta == 0 {
		o.Delta = 0.2
	}
	if o.Lambda == 0 {
		logn := math.Log2(float64(o.N) + 2)
		o.Lambda = o.Eps * o.Eps / (logn * logn * logn)
		if o.Lambda < DefaultLambdaFloor {
			o.Lambda = DefaultLambdaFloor
		}
	}
	if o.WidthFactor == 0 {
		o.WidthFactor = 1
	}
	return o
}

func (o Options) withDefaults() Options { return o.WithDefaults() }

// EnvelopeFor resolves the envelope H(M) for g under the options — the
// exact defaulting the estimator constructors apply (Envelope override,
// M clamp, cap for functions with no finite envelope). Exported so
// layers that pre-pin the envelope into shared Options (internal/window
// builds many estimators that must resolve to byte-identical
// configuration) cannot drift from the constructors' policy.
func EnvelopeFor(g gfunc.Func, o Options) float64 { return envelopeFor(g, o) }

// envelopeFor resolves the envelope H(M) for g under the options.
func envelopeFor(g gfunc.Func, o Options) float64 {
	if o.Envelope > 0 {
		return o.Envelope
	}
	m := uint64(o.M)
	if m < 4 {
		m = 4
	}
	h := gfunc.MeasureEnvelope(g, m).H()
	if math.IsInf(h, 0) || math.IsNaN(h) {
		// No finite sub-polynomial envelope at this scale (e.g. 2^x):
		// cap it so construction still succeeds; accuracy will be poor,
		// which is the observable consequence of intractability.
		h = float64(m)
	}
	return h
}

// OnePassEstimator approximates g-SUM in a single pass.
type OnePassEstimator struct {
	g    gfunc.Func
	sk   *recursive.Sketch
	opts Options // resolved options, kept so ProcessParallel can clone shards
}

// NewOnePass builds the Theorem 2 estimator for g.
func NewOnePass(g gfunc.Func, opts Options) *OnePassEstimator {
	o := opts.withDefaults()
	h := envelopeFor(g, o)
	o.Envelope = h // shard clones reuse the measured envelope instead of re-scanning g
	rng := util.NewSplitMix64(o.Seed)
	hhRng := rng.Fork()
	sk := recursive.New(recursive.Config{
		N:      o.N,
		Levels: o.Levels,
		MakeSketcher: func(level int) heavy.Sketcher {
			return heavy.NewOnePass(heavy.OnePassConfig{
				G:           g,
				Lambda:      o.Lambda,
				Eps:         o.Eps,
				Delta:       o.Delta,
				H:           h,
				WidthFactor: o.WidthFactor,
			}, hhRng.Fork())
		},
	}, rng.Fork())
	return &OnePassEstimator{g: g, sk: sk, opts: o}
}

// Update feeds one turnstile update.
func (e *OnePassEstimator) Update(item uint64, delta int64) {
	e.sk.Update(item, delta)
}

// UpdateBatch feeds a batch of turnstile updates through the recursive
// sketch's batch path (duplicate aggregation + per-level routing).
func (e *OnePassEstimator) UpdateBatch(batch []stream.Update) {
	e.sk.UpdateBatch(batch)
}

// Process consumes an entire stream through the batched ingestion path.
func (e *OnePassEstimator) Process(s *stream.Stream) {
	engine.Ingest(e, s.Updates(), 0)
}

// Estimate returns the g-SUM estimate. Call once, after the stream.
func (e *OnePassEstimator) Estimate() float64 { return e.sk.Estimate() }

// SpaceBytes reports total counter storage.
func (e *OnePassEstimator) SpaceBytes() int { return e.sk.SpaceBytes() }

// TwoPassEstimator approximates g-SUM with two passes over the stream.
type TwoPassEstimator struct {
	g     gfunc.Func
	sk    *recursive.TwoPass
	opts  Options // resolved options, kept so RunParallel can clone shards
	pass2 bool    // set by FinishPass1: Update/UpdateBatch feed pass 2
}

// NewTwoPass builds the Theorem 3 estimator for g.
func NewTwoPass(g gfunc.Func, opts Options) *TwoPassEstimator {
	o := opts.withDefaults()
	h := envelopeFor(g, o)
	o.Envelope = h // shard clones reuse the measured envelope instead of re-scanning g
	rng := util.NewSplitMix64(o.Seed)
	hhRng := rng.Fork()
	sk := recursive.NewTwoPass(recursive.TwoPassConfig{
		N:      o.N,
		Levels: o.Levels,
		MakeSketcher: func(level int) heavy.TwoPassSketcher {
			return heavy.NewTwoPass(heavy.TwoPassConfig{
				G:           g,
				Lambda:      o.Lambda,
				Delta:       o.Delta,
				H:           h,
				WidthFactor: o.WidthFactor,
			}, hhRng.Fork())
		},
	}, rng.Fork())
	return &TwoPassEstimator{g: g, sk: sk, opts: o}
}

// Run executes both passes over a replayable stream (through the batched
// ingestion path) and returns the estimate.
func (e *TwoPassEstimator) Run(s *stream.Stream) float64 {
	forBatches(s.Updates(), e.sk.Pass1Batch)
	e.FinishPass1()
	forBatches(s.Updates(), e.sk.Pass2Batch)
	return e.sk.Estimate()
}

// Pass1 feeds the identification pass directly (for callers that manage
// passes themselves).
func (e *TwoPassEstimator) Pass1(item uint64, delta int64) { e.sk.Pass1(item, delta) }

// Update feeds one turnstile update to the current pass: the
// identification pass before FinishPass1, the tabulation pass after.
// This is the unified-Estimator face of the two-pass protocol; callers
// replay the stream, call FinishPass1, and replay it again.
func (e *TwoPassEstimator) Update(item uint64, delta int64) {
	if e.pass2 {
		e.sk.Pass2(item, delta)
	} else {
		e.sk.Pass1(item, delta)
	}
}

// UpdateBatch feeds a batch of turnstile updates to the current pass.
func (e *TwoPassEstimator) UpdateBatch(batch []stream.Update) {
	if e.pass2 {
		e.sk.Pass2Batch(batch)
	} else {
		e.sk.Pass1Batch(batch)
	}
}

// FinishPass1 switches to the tabulation pass.
func (e *TwoPassEstimator) FinishPass1() {
	e.sk.FinishPass1()
	e.pass2 = true
}

// Pass2 feeds the tabulation pass.
func (e *TwoPassEstimator) Pass2(item uint64, delta int64) { e.sk.Pass2(item, delta) }

// Estimate returns the g-SUM estimate after both passes.
func (e *TwoPassEstimator) Estimate() float64 { return e.sk.Estimate() }

// SpaceBytes reports total counter storage.
func (e *TwoPassEstimator) SpaceBytes() int { return e.sk.SpaceBytes() }

// ExactEstimator is the linear-space baseline: it stores the frequency
// vector and evaluates g-SUM exactly.
type ExactEstimator struct {
	g    gfunc.Func
	freq map[uint64]int64
}

// NewExact returns the exact baseline for g.
func NewExact(g gfunc.Func) *ExactEstimator {
	return &ExactEstimator{g: g, freq: make(map[uint64]int64)}
}

// Update feeds one turnstile update.
func (e *ExactEstimator) Update(item uint64, delta int64) {
	nv := e.freq[item] + delta
	if nv == 0 {
		delete(e.freq, item)
	} else {
		e.freq[item] = nv
	}
}

// UpdateBatch feeds a batch of turnstile updates.
func (e *ExactEstimator) UpdateBatch(batch []stream.Update) {
	for _, u := range batch {
		e.Update(u.Item, u.Delta)
	}
}

// Process consumes an entire stream.
func (e *ExactEstimator) Process(s *stream.Stream) {
	s.Each(func(u stream.Update) { e.Update(u.Item, u.Delta) })
}

// Estimate returns the exact g-SUM.
func (e *ExactEstimator) Estimate() float64 {
	return heavy.GSumExact(e.g, e.freq)
}

// SpaceBytes reports the (linear) storage.
func (e *ExactEstimator) SpaceBytes() int { return len(e.freq) * 16 }

// MedianOnePass runs 2k+1 independent OnePass estimators and returns the
// median estimate, the standard success-probability amplification from
// 2/3 to 1 - exp(-Ω(k)).
type MedianOnePass struct {
	runs []*OnePassEstimator
}

// NewMedianOnePass builds copies independent one-pass estimators (copies
// should be odd; it is incremented if even).
func NewMedianOnePass(g gfunc.Func, opts Options, copies int) *MedianOnePass {
	if copies < 1 {
		copies = 1
	}
	if copies%2 == 0 {
		copies++
	}
	o := opts.withDefaults()
	rng := util.NewSplitMix64(o.Seed)
	runs := make([]*OnePassEstimator, copies)
	for i := range runs {
		oi := o
		oi.Seed = rng.Next()
		runs[i] = NewOnePass(g, oi)
	}
	return &MedianOnePass{runs: runs}
}

// Update feeds one turnstile update to every copy.
func (m *MedianOnePass) Update(item uint64, delta int64) {
	for _, r := range m.runs {
		r.Update(item, delta)
	}
}

// UpdateBatch feeds a batch of turnstile updates to every copy.
func (m *MedianOnePass) UpdateBatch(batch []stream.Update) {
	for _, r := range m.runs {
		r.UpdateBatch(batch)
	}
}

// Process consumes an entire stream through the batched path.
func (m *MedianOnePass) Process(s *stream.Stream) {
	engine.Ingest(m, s.Updates(), 0)
}

// Estimate returns the median of the copies' estimates.
func (m *MedianOnePass) Estimate() float64 {
	ests := make([]float64, len(m.runs))
	for i, r := range m.runs {
		ests[i] = r.Estimate()
	}
	return util.MedianFloat64(ests)
}

// SpaceBytes reports the total storage across copies.
func (m *MedianOnePass) SpaceBytes() int {
	total := 0
	for _, r := range m.runs {
		total += r.SpaceBytes()
	}
	return total
}
