package core

import (
	"testing"

	"repro/internal/gfunc"
	"repro/internal/stream"
)

// The parallel engine's promise: the merged counter state is bit-identical
// to a serial run (integer addition commutes), candidate trackers re-score
// against the merged counters, and covers combine in a deterministic
// order. While the top-k candidate trackers do not overflow — the regime
// their capacity 2H/λ + 1 is sized for — the candidate sets coincide too
// and estimates are EXACTLY equal, so these tests assert float64
// equality, not tolerances. Streams with more distinct items than tracker
// capacity may admit marginally different light candidates serial vs
// merged; TestProcessParallelOverflowRegimeCloseAgreement pins that case
// to a tolerance far inside the accuracy target.

// parallelTestStream keeps the distinct-item count (90) below every
// level's tracker capacity so that exact serial/parallel agreement is
// guaranteed, not incidental.
func parallelTestStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.1)
}

func TestOnePassProcessParallelMatchesSerialExactly(t *testing.T) {
	g := gfunc.F2Func()
	for _, workers := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			s := parallelTestStream(seed)
			opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 777, Lambda: 1.0 / 16}

			serial := NewOnePass(g, opts)
			serial.Process(s)

			par := NewOnePass(g, opts)
			if err := par.ProcessParallel(s, workers); err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}

			if a, b := serial.Estimate(), par.Estimate(); a != b {
				t.Errorf("workers=%d seed=%d: parallel %.17g != serial %.17g",
					workers, seed, b, a)
			}
		}
	}
}

func TestTwoPassRunParallelMatchesSerialExactly(t *testing.T) {
	g := gfunc.X2Log()
	for _, workers := range []int{2, 4} {
		for seed := uint64(1); seed <= 3; seed++ {
			s := parallelTestStream(seed)
			opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 99, Lambda: 1.0 / 16}

			serial := NewTwoPass(g, opts)
			want := serial.Run(s)

			par := NewTwoPass(g, opts)
			got, err := par.RunParallel(s, workers)
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			if got != want {
				t.Errorf("workers=%d seed=%d: parallel %.17g != serial %.17g",
					workers, seed, got, want)
			}
		}
	}
}

func TestUniversalProcessParallelMatchesSerialExactly(t *testing.T) {
	queries := []gfunc.Func{gfunc.F2Func(), gfunc.F1Func(), gfunc.L0()}
	h := 0.0
	for _, g := range queries {
		if e := gfunc.MeasureEnvelope(g, 1<<10).H(); e > h {
			h = e
		}
	}
	for _, workers := range []int{2, 4} {
		for seed := uint64(1); seed <= 3; seed++ {
			s := parallelTestStream(seed)
			opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 5, Lambda: 1.0 / 16, Envelope: h}

			serial := NewUniversal(opts)
			serial.Process(s)

			par := NewUniversal(opts)
			if err := par.ProcessParallel(s, workers); err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			for _, g := range queries {
				if a, b := serial.EstimateFor(g), par.EstimateFor(g); a != b {
					t.Errorf("workers=%d seed=%d g=%s: parallel %.17g != serial %.17g",
						workers, seed, g.Name(), b, a)
				}
			}
		}
	}
}

func TestParallelEstimatorWrapper(t *testing.T) {
	g := gfunc.F2Func()
	s := parallelTestStream(2)
	opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 21, Lambda: 1.0 / 16}

	serial := NewOnePass(g, opts)
	serial.Process(s)

	p := NewParallel(g, opts, 4)
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	if err := p.Process(s); err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Estimate(), p.Estimate(); a != b {
		t.Errorf("wrapper %.17g != serial %.17g", b, a)
	}

	// workers < 1 resolves to GOMAXPROCS.
	q := NewParallel(g, opts, 0)
	if q.Workers() < 1 {
		t.Errorf("Workers() = %d after GOMAXPROCS resolution", q.Workers())
	}
}

func TestMedianOnePassProcessParallelMatchesSerial(t *testing.T) {
	g := gfunc.F2Func()
	s := parallelTestStream(3)
	opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 31, Lambda: 1.0 / 16}

	serial := NewMedianOnePass(g, opts, 5)
	serial.Process(s)

	par := NewMedianOnePass(g, opts, 5)
	par.ProcessParallel(s, 4)

	if a, b := serial.Estimate(), par.Estimate(); a != b {
		t.Errorf("parallel median %.17g != serial %.17g", b, a)
	}
}

func TestProcessParallelOverflowRegimeCloseAgreement(t *testing.T) {
	// With more distinct items than the candidate trackers can hold, the
	// serial and merged trackers may disagree about marginal light items.
	// Counters still merge exactly, so any difference is confined to
	// borderline cover entries — orders of magnitude inside the ε target.
	g := gfunc.F2Func()
	s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: 8}, 400, 1.1)
	opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 777, Lambda: 1.0 / 16}

	serial := NewOnePass(g, opts)
	serial.Process(s)

	par := NewOnePass(g, opts)
	if err := par.ProcessParallel(s, 4); err != nil {
		t.Fatal(err)
	}
	a, b := serial.Estimate(), par.Estimate()
	if diff := (a - b) / a; diff > 1e-3 || diff < -1e-3 {
		t.Errorf("overflow-regime divergence %.3g: parallel %.17g vs serial %.17g", diff, b, a)
	}
}

func TestProcessParallelAccumulatesIntoExistingState(t *testing.T) {
	// Processing two halves of a stream — one serial, one parallel — into
	// the same estimator must equal one serial pass over the whole stream.
	g := gfunc.F2Func()
	s := parallelTestStream(4)
	opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 13, Lambda: 1.0 / 16}

	serial := NewOnePass(g, opts)
	serial.Process(s)

	split := len(s.Updates()) / 2
	first, second := stream.New(s.N()), stream.New(s.N())
	for i, u := range s.Updates() {
		if i < split {
			first.Add(u.Item, u.Delta)
		} else {
			second.Add(u.Item, u.Delta)
		}
	}
	mixed := NewOnePass(g, opts)
	mixed.Process(first)
	if err := mixed.ProcessParallel(second, 4); err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Estimate(), mixed.Estimate(); a != b {
		t.Errorf("mixed serial+parallel %.17g != serial %.17g", b, a)
	}
}
