package core

import "repro/internal/stream"

// Merge folds another one-pass estimator (built with identical Options,
// including Seed) into e, yielding the estimator state of the union
// stream. This is the distributed-sketching mode: shard the stream across
// workers, give every worker the same Options, merge the results.
func (e *OnePassEstimator) Merge(other *OnePassEstimator) error {
	return e.sk.Merge(other.sk)
}

// ShardAndMerge is a convenience harness (used by tests, benches, and
// examples/distributed): it splits the stream round-robin into `shards`
// estimators with identical options, processes each shard independently,
// merges everything into the first estimator, and returns it.
func ShardAndMerge(g estimatorFactory, s *stream.Stream, shards int) (*OnePassEstimator, error) {
	if shards < 1 {
		shards = 1
	}
	workers := make([]*OnePassEstimator, shards)
	for i := range workers {
		workers[i] = g()
	}
	i := 0
	s.Each(func(u stream.Update) {
		workers[i%shards].Update(u.Item, u.Delta)
		i++
	})
	for _, w := range workers[1:] {
		if err := workers[0].Merge(w); err != nil {
			return nil, err
		}
	}
	return workers[0], nil
}

// estimatorFactory builds identically-configured estimators (same Options
// and Seed) for the sharding harness.
type estimatorFactory func() *OnePassEstimator
