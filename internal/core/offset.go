package core

import (
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

// OffsetEstimator handles the Appendix A case g(0) ≠ 0 (class G0): every
// coordinate contributes, including the untouched ones. Writing
// h(x) = g(x)/g(1) for x >= 1 (h(0) = 0) and F0 for the number of nonzero
// coordinates,
//
//	Σ_{i∈[n]} g(|v_i|) = (n − F0)·g(0) + g(1)·Σ_i h(|v_i|),
//
// so the estimator runs two class-G one-pass estimators in parallel — one
// for the restriction h and one for the indicator 1(x>0) whose g-SUM is
// exactly F0 — and combines them affinely. Both sub-estimators are
// sub-polynomial, hence so is the whole (matching Appendix A's claim that
// the same laws and algorithms carry over).
type OffsetEstimator struct {
	g     gfunc.G0Func
	n     uint64
	scale float64 // g(1)
	pos   *OnePassEstimator
	l0    *OnePassEstimator
}

// NewOffsetEstimator builds the G0 estimator. opts.N is the dimension n
// that the (n - F0)·g(0) term charges for untouched coordinates.
func NewOffsetEstimator(g gfunc.G0Func, opts Options) *OffsetEstimator {
	o := opts.withDefaults()
	rng := util.NewSplitMix64(o.Seed)
	oPos := o
	oPos.Seed = rng.Next()
	oL0 := o
	oL0.Seed = rng.Next()
	return &OffsetEstimator{
		g:     g,
		n:     o.N,
		scale: g.Eval(1),
		pos:   NewOnePass(g.Restriction(), oPos),
		l0:    NewOnePass(gfunc.L0(), oL0),
	}
}

// Update feeds one turnstile update to both sub-estimators.
func (e *OffsetEstimator) Update(item uint64, delta int64) {
	e.pos.Update(item, delta)
	e.l0.Update(item, delta)
}

// Process consumes an entire stream.
func (e *OffsetEstimator) Process(s *stream.Stream) {
	s.Each(func(u stream.Update) { e.Update(u.Item, u.Delta) })
}

// Estimate returns the g-SUM over all n coordinates (zeros included).
func (e *OffsetEstimator) Estimate() float64 {
	f0 := e.l0.Estimate()
	if f0 < 0 {
		f0 = 0
	}
	if f0 > float64(e.n) {
		f0 = float64(e.n)
	}
	return (float64(e.n)-f0)*e.g.Eval(0) + e.scale*e.pos.Estimate()
}

// SpaceBytes reports the combined sketch storage.
func (e *OffsetEstimator) SpaceBytes() int {
	return e.pos.SpaceBytes() + e.l0.SpaceBytes()
}
