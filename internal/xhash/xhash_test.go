package xhash

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/util"
)

func TestMulmodMatchesBigArithmetic(t *testing.T) {
	// Verify Mersenne reduction against direct computation on values
	// small enough for exact float/int reasoning, and on structured edge
	// cases via (a*b) mod p computed with math/bits-free 128-bit splitting.
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61 - 1, 2}, {1 << 60, 1 << 60}, {123456789, 987654321},
	}
	for _, c := range cases {
		got := MulMod(c.a, c.b)
		want := slowMulmod(c.a, c.b)
		if got != want {
			t.Errorf("MulMod(%d, %d) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

// slowMulmod computes (a*b) mod p by splitting a into 32-bit halves.
func slowMulmod(a, b uint64) uint64 {
	const p = MersennePrime61
	a %= p
	b %= p
	hi := a >> 32
	lo := a & 0xffffffff
	// a*b = hi*2^32*b + lo*b, each term reduced iteratively.
	t1 := mulSmall(hi, b) // hi*b mod p
	// multiply by 2^32 mod p
	for i := 0; i < 32; i++ {
		t1 <<= 1
		if t1 >= p {
			t1 -= p
		}
	}
	t2 := mulSmall(lo, b)
	s := t1 + t2
	if s >= p {
		s -= p
	}
	return s
}

// mulSmall multiplies a (< 2^32) by b mod p via shift-and-add.
func mulSmall(a, b uint64) uint64 {
	const p = MersennePrime61
	var acc uint64
	b %= p
	for a > 0 {
		if a&1 == 1 {
			acc += b
			if acc >= p {
				acc -= p
			}
		}
		b <<= 1
		if b >= p {
			b -= p
		}
		a >>= 1
	}
	return acc
}

func TestMulmodProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		return MulMod(a%MersennePrime61, b%MersennePrime61) ==
			slowMulmod(a%MersennePrime61, b%MersennePrime61)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPolyHashRange(t *testing.T) {
	rng := util.NewSplitMix64(7)
	p := NewPoly(4, rng)
	f := func(x uint64) bool { return p.Hash(x) < MersennePrime61 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketsRange(t *testing.T) {
	rng := util.NewSplitMix64(3)
	for _, b := range []uint64{1, 2, 7, 64, 1 << 20} {
		h := NewBuckets(2, b, rng.Fork())
		for x := uint64(0); x < 1000; x++ {
			if v := h.Hash(x); v >= b {
				t.Fatalf("bucket hash %d >= %d buckets", v, b)
			}
		}
	}
}

func TestBucketsUniformity(t *testing.T) {
	rng := util.NewSplitMix64(11)
	const b = 16
	const n = 160000
	h := NewBuckets(2, b, rng)
	counts := make([]int, b)
	for x := uint64(0); x < n; x++ {
		counts[h.Hash(x)]++
	}
	want := float64(n) / b
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Errorf("bucket %d count %d deviates more than 15%% from %v", i, c, want)
		}
	}
}

func TestSignBalance(t *testing.T) {
	rng := util.NewSplitMix64(13)
	s := NewSign(4, rng)
	var sum int64
	const n = 100000
	for x := uint64(0); x < n; x++ {
		v := s.Hash(x)
		if v != 1 && v != -1 {
			t.Fatalf("sign hash returned %d", v)
		}
		sum += v
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Errorf("sign sum %d deviates more than 4 sigma from 0", sum)
	}
}

func TestSignPairwiseDecorrelation(t *testing.T) {
	// E[s(x) s(y)] should be ~0 for x != y: 4-wise independence implies
	// pairwise.
	rng := util.NewSplitMix64(17)
	s := NewSign(4, rng)
	var sum int64
	const n = 50000
	for x := uint64(0); x < n; x++ {
		sum += s.Hash(x) * s.Hash(x+1)
	}
	if math.Abs(float64(sum)) > 5*math.Sqrt(n) {
		t.Errorf("adjacent-key sign correlation %d too large", sum)
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := util.NewSplitMix64(19)
	for _, frac := range []struct{ num, den uint64 }{{1, 2}, {1, 4}, {3, 4}} {
		h := NewBernoulli(2, frac.num, frac.den, rng.Fork())
		hits := 0
		const n = 100000
		for x := uint64(0); x < n; x++ {
			if h.Hash(x) {
				hits++
			}
		}
		want := float64(n) * float64(frac.num) / float64(frac.den)
		if math.Abs(float64(hits)-want) > 0.05*float64(n) {
			t.Errorf("Bernoulli(%d/%d): %d hits, want ~%v", frac.num, frac.den, hits, want)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	a := NewPoly(3, util.NewSplitMix64(42))
	b := NewPoly(3, util.NewSplitMix64(42))
	f := func(x uint64) bool { return a.Hash(x) == b.Hash(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPolyPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	NewPoly(0, util.NewSplitMix64(1))
}
