// Package xhash implements k-wise independent hash families over the
// Mersenne prime p = 2^61 - 1, the standard construction used by streaming
// sketches such as CountSketch and the AMS F2 sketch.
//
// A degree-(k-1) polynomial with random coefficients in GF(p) evaluated at
// the key yields a k-wise independent family. Pairwise independence (k = 2)
// suffices for bucket hashes; four-wise independence (k = 4) is required for
// the variance bound of the AMS tug-of-war sketch and for CountSketch sign
// hashes.
//
// Layer: substrate in ARCHITECTURE.md — the k-wise independent hash
// families every sketch row is built from.
// Seed discipline: families are constructed from forked SplitMix64
// streams; AppendCoeffs exposes coefficients for the inline hot path
// and Fingerprint digests them for the wire headers.
package xhash
