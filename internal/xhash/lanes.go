package xhash

import "math/bits"

// Multi-lane GF(2^61-1) arithmetic: the same Mersenne fold as MulMod,
// unrolled over four independent lanes. One scalar MulMod is a chain of
// dependent operations (widening multiply, fold, two conditional
// subtractions) whose latency the CPU cannot hide; four independent
// lanes give the out-of-order core four such chains to interleave, so a
// row pass that hashes four items per step runs at multiply THROUGHPUT
// instead of multiply LATENCY. Every lane computes bit-exactly what the
// scalar function computes — the lane functions are definitionally
// lane-wise MulMod/AddMod, and the tests hold them to it.

// MulMod4 sets r[i] = (a[i] * b[i]) mod (2^61 - 1) for all four lanes.
// r may alias a or b.
func MulMod4(r, a, b *[4]uint64) {
	h0, l0 := bits.Mul64(a[0], b[0])
	h1, l1 := bits.Mul64(a[1], b[1])
	h2, l2 := bits.Mul64(a[2], b[2])
	h3, l3 := bits.Mul64(a[3], b[3])
	r0 := (l0 & MersennePrime61) + (l0 >> 61) + ((h0 << 3) & MersennePrime61) + (h0 >> 58)
	r1 := (l1 & MersennePrime61) + (l1 >> 61) + ((h1 << 3) & MersennePrime61) + (h1 >> 58)
	r2 := (l2 & MersennePrime61) + (l2 >> 61) + ((h2 << 3) & MersennePrime61) + (h2 >> 58)
	r3 := (l3 & MersennePrime61) + (l3 >> 61) + ((h3 << 3) & MersennePrime61) + (h3 >> 58)
	if r0 >= MersennePrime61 {
		r0 -= MersennePrime61
	}
	if r0 >= MersennePrime61 {
		r0 -= MersennePrime61
	}
	if r1 >= MersennePrime61 {
		r1 -= MersennePrime61
	}
	if r1 >= MersennePrime61 {
		r1 -= MersennePrime61
	}
	if r2 >= MersennePrime61 {
		r2 -= MersennePrime61
	}
	if r2 >= MersennePrime61 {
		r2 -= MersennePrime61
	}
	if r3 >= MersennePrime61 {
		r3 -= MersennePrime61
	}
	if r3 >= MersennePrime61 {
		r3 -= MersennePrime61
	}
	r[0], r[1], r[2], r[3] = r0, r1, r2, r3
}

// HornerStep4 advances four Horner evaluations one step against a
// SHARED coefficient: acc[i] = (acc[i] * x[i] + c) mod (2^61 - 1).
// This is the inner step of evaluating one row's hash polynomial at
// four items simultaneously; the CountSketch row walk is built on it.
func HornerStep4(acc, x *[4]uint64, c uint64) {
	MulMod4(acc, acc, x)
	s0 := acc[0] + c
	if s0 >= MersennePrime61 {
		s0 -= MersennePrime61
	}
	s1 := acc[1] + c
	if s1 >= MersennePrime61 {
		s1 -= MersennePrime61
	}
	s2 := acc[2] + c
	if s2 >= MersennePrime61 {
		s2 -= MersennePrime61
	}
	s3 := acc[3] + c
	if s3 >= MersennePrime61 {
		s3 -= MersennePrime61
	}
	acc[0], acc[1], acc[2], acc[3] = s0, s1, s2, s3
}
