package xhash

import (
	"math/bits"

	"repro/internal/util"
	"repro/internal/wire"
)

// MersennePrime61 is the modulus 2^61 - 1 used by every family in this
// package.
const MersennePrime61 uint64 = (1 << 61) - 1

// MulMod returns (a * b) mod (2^61 - 1) using 128-bit intermediate
// arithmetic followed by Mersenne reduction. It is exported (together
// with AddMod) so that hot loops elsewhere — the CountSketch row walk —
// can evaluate flattened polynomial coefficients in place; the body is
// branch-light and loop-free so the compiler can inline it into those
// loops.
func MulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo. With p = 2^61 - 1, 2^61 ≡ 1 (mod p), so
	// 2^64 ≡ 8 (mod p). Fold: result = hi*8 + lo (mod p), and lo itself
	// folds as (lo >> 61) + (lo & p). The folded sum is at most
	// (p) + 7 + (p) + 63 < 3p, so two conditional subtractions reduce it.
	r := (lo & MersennePrime61) + (lo >> 61)
	r += (hi << 3) & MersennePrime61
	r += hi >> 58
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// AddMod returns (a + b) mod (2^61 - 1) for a, b < 2^61 - 1.
func AddMod(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Poly is a polynomial hash h(x) = c[0] + c[1] x + ... + c[k-1] x^(k-1)
// mod (2^61 - 1). A polynomial with k random coefficients is a k-wise
// independent family.
type Poly struct {
	coeff []uint64
}

// NewPoly draws a fresh degree-(k-1) polynomial (k coefficients) using rng.
// It panics if k < 1.
func NewPoly(k int, rng *util.SplitMix64) *Poly {
	if k < 1 {
		panic("xhash: polynomial needs at least one coefficient")
	}
	coeff := make([]uint64, k)
	for i := range coeff {
		coeff[i] = rng.Uint64n(MersennePrime61)
	}
	// Force the leading coefficient nonzero so the family has full degree.
	if k > 1 && coeff[k-1] == 0 {
		coeff[k-1] = 1
	}
	return &Poly{coeff: coeff}
}

// K returns the independence parameter (number of coefficients).
func (p *Poly) K() int { return len(p.coeff) }

// Fingerprint folds the polynomial's coefficients into the digest h.
// Two polynomials drawn from the same rng state fold identically, so
// fingerprints implement the checked seed-discipline of the wire format.
func (p *Poly) Fingerprint(h uint64) uint64 {
	h = wire.Fingerprint(h, uint64(len(p.coeff)))
	for _, c := range p.coeff {
		h = wire.Fingerprint(h, c)
	}
	return h
}

// AppendCoeffs appends the polynomial's coefficients (c[0] first) to dst
// and returns the extended slice. Callers that evaluate many polynomials
// in a tight loop — the CountSketch row walk — flatten all coefficients
// into one contiguous array at construction time and run Horner's rule
// inline with MulMod/AddMod, avoiding the per-evaluation pointer chase
// through Poly. The appended values are exactly the ones Hash uses, so an
// inline evaluation reproduces Hash bit for bit.
func (p *Poly) AppendCoeffs(dst []uint64) []uint64 {
	return append(dst, p.coeff...)
}

// Hash evaluates the polynomial at x (reduced mod p first) via Horner's rule.
// The result lies in [0, 2^61 - 1).
func (p *Poly) Hash(x uint64) uint64 {
	x %= MersennePrime61
	acc := uint64(0)
	for i := len(p.coeff) - 1; i >= 0; i-- {
		acc = AddMod(MulMod(acc, x), p.coeff[i])
	}
	return acc
}

// Buckets is a k-wise independent hash into a fixed number of buckets.
type Buckets struct {
	poly *Poly
	b    uint64
}

// NewBuckets returns a k-wise independent hash mapping keys to [0, b).
// It panics if b == 0.
func NewBuckets(k int, b uint64, rng *util.SplitMix64) *Buckets {
	if b == 0 {
		panic("xhash: zero buckets")
	}
	return &Buckets{poly: NewPoly(k, rng), b: b}
}

// B returns the number of buckets.
func (h *Buckets) B() uint64 { return h.b }

// Hash maps x to a bucket in [0, B()).
func (h *Buckets) Hash(x uint64) uint64 {
	return h.poly.Hash(x) % h.b
}

// Fingerprint folds the bucket count and polynomial into the digest.
func (h *Buckets) Fingerprint(d uint64) uint64 {
	return h.poly.Fingerprint(wire.Fingerprint(d, h.b))
}

// AppendCoeffs appends the underlying polynomial's coefficients to dst;
// see Poly.AppendCoeffs. The bucket reduction (mod B) is not part of the
// coefficients and must be applied by the inline evaluator.
func (h *Buckets) AppendCoeffs(dst []uint64) []uint64 {
	return h.poly.AppendCoeffs(dst)
}

// Sign is a k-wise independent hash into {-1, +1}, the ξ function of
// CountSketch and the AMS sketch.
type Sign struct {
	poly *Poly
}

// NewSign returns a k-wise independent ±1 hash. CountSketch and AMS require
// k = 4 for their variance bounds.
func NewSign(k int, rng *util.SplitMix64) *Sign {
	return &Sign{poly: NewPoly(k, rng)}
}

// Fingerprint folds the sign hash's polynomial into the digest.
func (h *Sign) Fingerprint(d uint64) uint64 {
	return h.poly.Fingerprint(d)
}

// AppendCoeffs appends the underlying polynomial's coefficients to dst;
// see Poly.AppendCoeffs. The sign is the low bit of the polynomial value
// (1 → +1, 0 → −1) and must be applied by the inline evaluator.
func (h *Sign) AppendCoeffs(dst []uint64) []uint64 {
	return h.poly.AppendCoeffs(dst)
}

// Hash maps x to -1 or +1.
func (h *Sign) Hash(x uint64) int64 {
	// Use the low bit of the polynomial value. The polynomial value is
	// (close to) uniform over GF(p), so the low bit is (close to) unbiased.
	if h.poly.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// Bernoulli is a k-wise independent hash into {0, 1} with success
// probability numer/denom. It implements the pairwise-independent Bernoulli
// variables used by the recursive sketch's subsampling and by the nearly
// periodic heavy-hitter algorithm of Appendix D.1.
type Bernoulli struct {
	poly  *Poly
	numer uint64
	denom uint64
}

// NewBernoulli returns a k-wise independent Bernoulli(numer/denom) hash.
// It panics if denom == 0 or numer > denom.
func NewBernoulli(k int, numer, denom uint64, rng *util.SplitMix64) *Bernoulli {
	if denom == 0 || numer > denom {
		panic("xhash: invalid Bernoulli parameters")
	}
	return &Bernoulli{poly: NewPoly(k, rng), numer: numer, denom: denom}
}

// Fingerprint folds the Bernoulli parameters and polynomial into the
// digest.
func (h *Bernoulli) Fingerprint(d uint64) uint64 {
	return h.poly.Fingerprint(wire.Fingerprint(wire.Fingerprint(d, h.numer), h.denom))
}

// Hash reports whether x is selected (probability numer/denom over the
// random draw of the family).
func (h *Bernoulli) Hash(x uint64) bool {
	// Scale the polynomial value from [0, p) into [0, denom) and compare.
	return h.poly.Hash(x)%h.denom < h.numer
}
