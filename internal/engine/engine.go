package engine

import (
	"runtime"
	"sync"

	"repro/internal/stream"
)

// Sketcher is the unified ingestion contract shared by every summary in
// the repository: the raw linear sketches (sketch.CountSketch,
// sketch.AMS, sketch.CountMin), the heavy-hitter layer (heavy.OnePass),
// the recursive sketch (recursive.Sketch), and the public estimators
// (core.OnePassEstimator, core.ExactEstimator, core.Universal).
type Sketcher interface {
	// Update feeds one turnstile update (item, delta).
	Update(item uint64, delta int64)
	// SpaceBytes reports counter storage, the quantity the paper's space
	// bounds govern.
	SpaceBytes() int
}

// BatchSketcher is a Sketcher with an amortized bulk ingestion path.
// UpdateBatch(batch) must leave the counter state exactly as the
// equivalent sequence of Update calls would (linearity); auxiliary
// heuristic state such as top-k candidate trackers may be maintained
// with batch granularity.
type BatchSketcher interface {
	Sketcher
	UpdateBatch(batch []stream.Update)
}

// Estimator is a Sketcher that produces a final scalar estimate.
type Estimator interface {
	Sketcher
	Estimate() float64
}

// Mergeable is the distributed half of the contract: folding another
// identically-configured (same Options, same Seed) instance into the
// receiver yields the state of the union stream.
type Mergeable[S any] interface {
	Merge(other S) error
}

// DefaultBatchSize is the chunk size Ingest uses when callers pass 0.
// Large enough to amortize per-batch overhead (duplicate aggregation,
// top-k re-scores), small enough to keep the scratch maps cache-resident.
const DefaultBatchSize = 4096

// Workers resolves a requested worker count: values < 1 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Cut returns the half-open range [lo, hi) of chunk i when n items are
// split into w contiguous near-equal chunks.
func Cut(n, w, i int) (lo, hi int) {
	return i * n / w, (i + 1) * n / w
}

// Ingest feeds updates to sk, using the batch path when available.
// batchSize <= 0 means DefaultBatchSize.
func Ingest(sk Sketcher, updates []stream.Update, batchSize int) {
	bs, ok := sk.(BatchSketcher)
	if !ok {
		for _, u := range updates {
			sk.Update(u.Item, u.Delta)
		}
		return
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	for lo := 0; lo < len(updates); lo += batchSize {
		hi := lo + batchSize
		if hi > len(updates) {
			hi = len(updates)
		}
		bs.UpdateBatch(updates[lo:hi])
	}
}

// ParallelChunks splits updates into workers contiguous chunks and calls
// fn(i, chunk) concurrently, one goroutine per non-empty chunk. It
// returns after every call finishes. fn must not touch state shared with
// other chunk indices. With workers <= 1 it calls fn(0, updates) inline.
func ParallelChunks(updates []stream.Update, workers int, fn func(shard int, chunk []stream.Update)) {
	if workers <= 1 || len(updates) <= 1 {
		fn(0, updates)
		return
	}
	if workers > len(updates) {
		workers = len(updates)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := Cut(len(updates), workers, i)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(i int, chunk []stream.Update) {
			defer wg.Done()
			fn(i, chunk)
		}(i, updates[lo:hi])
	}
	wg.Wait()
}

// Process is the sharded ingestion harness. It partitions updates into
// contiguous chunks, builds one shard per worker with newShard (worker 0
// may be handed a pre-existing sketch to accumulate into), ingests every
// chunk into its shard concurrently via Ingest, and merges shards
// 1..W-1 into shard 0 in index order. The result is deterministic given
// (updates, worker count, seed discipline of newShard); goroutine
// scheduling cannot affect it.
func Process[S Sketcher](updates []stream.Update, workers int,
	newShard func(shard int) S, merge func(dst, src S) error) (S, error) {

	w := Workers(workers)
	if w <= 1 || len(updates) <= 1 {
		shard := newShard(0)
		Ingest(shard, updates, 0)
		return shard, nil
	}
	if w > len(updates) {
		w = len(updates)
	}
	shards := make([]S, w)
	ParallelChunks(updates, w, func(i int, chunk []stream.Update) {
		// Shard construction happens inside the worker too: building the
		// hash families is itself a measurable cost at high worker counts.
		shards[i] = newShard(i)
		Ingest(shards[i], chunk, 0)
	})
	for i := 1; i < w; i++ {
		if err := merge(shards[0], shards[i]); err != nil {
			return shards[0], err
		}
	}
	return shards[0], nil
}
