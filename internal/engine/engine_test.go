package engine_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/heavy"
	"repro/internal/recursive"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// Compile-time checks that the unified Sketcher contract really does
// unify every layer: raw sketches, the heavy-hitter layer, the recursive
// sketch, and the public estimators.
var (
	_ engine.BatchSketcher = (*sketch.CountSketch)(nil)
	_ engine.BatchSketcher = (*sketch.AMS)(nil)
	_ engine.BatchSketcher = (*sketch.CountMin)(nil)
	_ engine.BatchSketcher = (*heavy.OnePass)(nil)
	_ engine.BatchSketcher = (*recursive.Sketch)(nil)
	_ engine.BatchSketcher = (*core.OnePassEstimator)(nil)
	_ engine.BatchSketcher = (*core.ExactEstimator)(nil)
	_ engine.BatchSketcher = (*core.Universal)(nil)
	_ engine.BatchSketcher = (*core.MedianOnePass)(nil)

	_ engine.Estimator = (*core.OnePassEstimator)(nil)
	_ engine.Estimator = (*core.ExactEstimator)(nil)
	_ engine.Estimator = (*core.MedianOnePass)(nil)

	_ engine.Mergeable[*sketch.CountSketch]    = (*sketch.CountSketch)(nil)
	_ engine.Mergeable[*sketch.AMS]            = (*sketch.AMS)(nil)
	_ engine.Mergeable[*sketch.CountMin]       = (*sketch.CountMin)(nil)
	_ engine.Mergeable[*heavy.OnePass]         = (*heavy.OnePass)(nil)
	_ engine.Mergeable[*recursive.Sketch]      = (*recursive.Sketch)(nil)
	_ engine.Mergeable[*core.OnePassEstimator] = (*core.OnePassEstimator)(nil)
	_ engine.Mergeable[*core.Universal]        = (*core.Universal)(nil)
)

func TestCutCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1 << 16} {
		for _, w := range []int{1, 2, 3, 4, 7, 16} {
			prev := 0
			for i := 0; i < w; i++ {
				lo, hi := engine.Cut(n, w, i)
				if lo != prev {
					t.Fatalf("n=%d w=%d chunk %d: lo=%d, want %d", n, w, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d w=%d chunk %d: hi=%d < lo=%d", n, w, i, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d w=%d: chunks end at %d, want %d", n, w, prev, n)
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := engine.Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := engine.Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := engine.Workers(-5); got < 1 {
		t.Errorf("Workers(-5) = %d, want >= 1", got)
	}
}

func testUpdates(seed uint64, n int) []stream.Update {
	rng := util.NewSplitMix64(seed)
	out := make([]stream.Update, n)
	for i := range out {
		out[i] = stream.Update{Item: rng.Uint64n(512), Delta: rng.Int63n(9) - 4}
	}
	return out
}

// marshal serializes a plain CountSketch's counters for bit-exact
// comparison.
func marshal(t *testing.T, cs *sketch.CountSketch) []byte {
	t.Helper()
	b, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestIngestBatchPathBitIdentical(t *testing.T) {
	updates := testUpdates(11, 5000)
	serial := sketch.NewCountSketch(7, 256, util.NewSplitMix64(42))
	for _, u := range updates {
		serial.Update(u.Item, u.Delta)
	}
	batched := sketch.NewCountSketch(7, 256, util.NewSplitMix64(42))
	engine.Ingest(batched, updates, 0)
	if !bytes.Equal(marshal(t, serial), marshal(t, batched)) {
		t.Error("batched ingestion diverged from per-update ingestion")
	}
	// A second batched run with an odd batch size must also agree.
	odd := sketch.NewCountSketch(7, 256, util.NewSplitMix64(42))
	engine.Ingest(odd, updates, 137)
	if !bytes.Equal(marshal(t, serial), marshal(t, odd)) {
		t.Error("odd batch size diverged from per-update ingestion")
	}
}

func TestProcessShardsBitIdentical(t *testing.T) {
	updates := testUpdates(23, 20000)
	serial := sketch.NewCountSketch(5, 512, util.NewSplitMix64(9))
	for _, u := range updates {
		serial.Update(u.Item, u.Delta)
	}
	want := marshal(t, serial)
	for _, workers := range []int{1, 2, 4, 8} {
		merged, err := engine.Process(updates, workers,
			func(int) *sketch.CountSketch {
				return sketch.NewCountSketch(5, 512, util.NewSplitMix64(9))
			},
			func(dst, src *sketch.CountSketch) error { return dst.Merge(src) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(want, marshal(t, merged)) {
			t.Errorf("workers=%d: sharded counters diverged from serial", workers)
		}
	}
}

func TestProcessHandsShardZeroThrough(t *testing.T) {
	updates := testUpdates(3, 100)
	pre := sketch.NewCountSketch(5, 64, util.NewSplitMix64(1))
	got, err := engine.Process(updates, 1,
		func(int) *sketch.CountSketch { return pre },
		func(dst, src *sketch.CountSketch) error { return dst.Merge(src) })
	if err != nil {
		t.Fatal(err)
	}
	if got != pre {
		t.Error("Process did not accumulate into the shard-0 sketch")
	}
}

func TestProcessMergeErrorPropagates(t *testing.T) {
	updates := testUpdates(5, 64)
	_, err := engine.Process(updates, 2,
		func(shard int) *sketch.CountSketch {
			// Different dimensions per shard force a merge failure.
			return sketch.NewCountSketch(5, uint64(32*(shard+1)), util.NewSplitMix64(1))
		},
		func(dst, src *sketch.CountSketch) error { return dst.Merge(src) })
	if err == nil {
		t.Error("expected merge dimension error")
	}
}

func TestParallelChunksPartition(t *testing.T) {
	updates := testUpdates(7, 999)
	seen := make([]int, 8)
	var total int
	engine.ParallelChunks(updates, 8, func(i int, chunk []stream.Update) {
		seen[i] = len(chunk)
	})
	for _, n := range seen {
		if n == 0 {
			t.Error("empty chunk handed to a worker")
		}
		total += n
	}
	if total != len(updates) {
		t.Errorf("chunks cover %d updates, want %d", total, len(updates))
	}
}
