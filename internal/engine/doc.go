// Package engine is the sharded, batched, concurrent ingestion engine
// behind the public estimators.
//
// Every summary in this repository is a linear sketch: the state reached
// by processing a stream is the sum of the states reached by processing
// any partition of it (core/merge.go, heavy/merge.go, recursive/merge.go).
// The engine exploits that in two independent ways:
//
//   - Batching: UpdateBatch paths aggregate duplicate items and touch
//     each counter row once per distinct item, amortizing hash
//     evaluations and bounds checks on the hot path.
//   - Sharding: Process partitions a stream into contiguous chunks, one
//     per worker, ingests every chunk into a worker-owned shard sketch
//     (same seed, hence identical hash functions), and folds the shards
//     together with the linearity-based merges.
//
// Both transformations are exact on the counter state — integer addition
// is associative and commutative — so a parallel run is deterministic
// given (stream, seed, worker count), independent of goroutine
// scheduling: chunk boundaries are a pure function of the lengths, and
// shards merge in index order after all workers finish.
//
// Layer: the harness layer of ARCHITECTURE.md — transport between
// streams and sketches; it owns the Sketcher/BatchSketcher/Mergeable
// contracts every summary implements.
// Seed discipline: Process builds every shard through one newShard
// factory, so all shards share one seed and merge by linearity; the
// factory returning differently-seeded sketches is the one unchecked
// way to break it (the wire layer checks; in-process merges trust).
package engine
