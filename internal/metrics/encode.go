package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// The Prometheus text exposition format (version 0.0.4): one HELP and
// TYPE line per family, then one sample line per series — histograms
// expand into cumulative _bucket lines plus _sum and _count. Families
// appear in registration order, which keeps scrapes diffable.

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLabels renders a label set as {k="v",...}, empty for none.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel renders a label set with one extra pair appended (the le
// bucket bound of a histogram).
func withLabel(labels []Label, key, value string) string {
	return formatLabels(append(append([]Label(nil), labels...), Label{key, value}))
}

// formatValue renders a sample value: shortest round-trip float, with
// the format's spellings for the specials.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes every registered family to w in the text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + strings.ReplaceAll(f.help, "\n", " ") + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				bw.WriteString(f.name + formatLabels(s.labels) + " " +
					strconv.FormatUint(s.counter.Value(), 10) + "\n")
			case s.gauge != nil:
				bw.WriteString(f.name + formatLabels(s.labels) + " " +
					formatValue(s.gauge.Value()) + "\n")
			case s.fn != nil:
				bw.WriteString(f.name + formatLabels(s.labels) + " " +
					formatValue(s.fn()) + "\n")
			case s.hist != nil:
				h := s.hist
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					bw.WriteString(f.name + "_bucket" + withLabel(s.labels, "le", formatValue(bound)) +
						" " + strconv.FormatUint(cum, 10) + "\n")
				}
				cum += h.counts[len(h.bounds)].Load()
				bw.WriteString(f.name + "_bucket" + withLabel(s.labels, "le", "+Inf") +
					" " + strconv.FormatUint(cum, 10) + "\n")
				bw.WriteString(f.name + "_sum" + formatLabels(s.labels) + " " + formatValue(h.Sum()) + "\n")
				bw.WriteString(f.name + "_count" + formatLabels(s.labels) + " " + strconv.FormatUint(cum, 10) + "\n")
			}
		}
	}
	return bw.Flush()
}

// ServeHTTP makes a Registry mountable as the /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
