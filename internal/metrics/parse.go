package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series: a metric name, its label set (sorted by
// key), and the sample value. Histogram expansions parse as ordinary
// samples (name_bucket with an le label, name_sum, name_count).
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Scrape is one parsed /metrics payload, with lookup helpers. It is the
// soak harness's view of a daemon: every invariant there is asserted
// against a Scrape, never against daemon internals.
type Scrape struct {
	Samples []Sample
}

// Parse reads a text-exposition payload (as written by
// WritePrometheus; comment and empty lines are skipped).
func Parse(r io.Reader) (*Scrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := &Scrape{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineno, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses `name{k="v",...} value` (labels optional).
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip the escaped byte
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Key < s.Labels[j].Key })
	return s, nil
}

func parseLabels(body string) ([]Label, error) {
	var labels []Label
	for len(body) > 0 {
		eq := strings.Index(body, "=\"")
		if eq < 0 {
			return nil, fmt.Errorf("bad label %q", body)
		}
		key := strings.TrimPrefix(strings.TrimSpace(body[:eq]), ",")
		key = strings.TrimSpace(key)
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		body = rest[i+1:]
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// matches reports whether the sample carries every given label (it may
// carry more, e.g. a histogram's le).
func (s Sample) matches(labels []Label) bool {
	for _, want := range labels {
		found := false
		for _, have := range s.Labels {
			if have == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Value returns the sample for name whose label set includes every
// given label, and whether exactly such a sample exists (false on zero
// or several matches).
func (sc *Scrape) Value(name string, labels ...Label) (float64, bool) {
	var v float64
	n := 0
	for _, s := range sc.Samples {
		if s.Name == name && s.matches(labels) {
			v = s.Value
			n++
		}
	}
	return v, n == 1
}

// Sum adds every sample of name matching the given labels — the idiom
// for collapsing a labeled family (e.g. ingest counters across
// transports) into one total.
func (sc *Scrape) Sum(name string, labels ...Label) float64 {
	var v float64
	for _, s := range sc.Samples {
		if s.Name == name && s.matches(labels) {
			v += s.Value
		}
	}
	return v
}

// Has reports whether any sample of name matches the labels.
func (sc *Scrape) Has(name string, labels ...Label) bool {
	for _, s := range sc.Samples {
		if s.Name == name && s.matches(labels) {
			return true
		}
	}
	return false
}
