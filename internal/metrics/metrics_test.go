package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(1)
	g.Dec()
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 0.1 is an inclusive upper bound: cumulative counts 2, 3, 4, 5.
	for _, line := range []string{
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("encoding missing %q:\n%s", line, out)
		}
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	r := New()
	r.Counter("rt_updates_total", "updates", Label{"transport", "json"}).Add(7)
	r.Counter("rt_updates_total", "updates", Label{"transport", "stream"}).Add(9)
	r.Gauge("rt_depth", "queue depth").Set(3)
	r.GaugeFunc("rt_goroutines", "live goroutines", func() float64 { return 12 })
	r.Gauge("rt_weird", `value with "quotes" and \slashes`, Label{"k", `a"b\c`}).Set(math.Inf(1))
	h := r.Histogram("rt_seconds", "latency", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if v, ok := sc.Value("rt_updates_total", Label{"transport", "json"}); !ok || v != 7 {
		t.Fatalf("json counter = %v, %v", v, ok)
	}
	if got := sc.Sum("rt_updates_total"); got != 16 {
		t.Fatalf("summed counters = %v, want 16", got)
	}
	if v, ok := sc.Value("rt_goroutines"); !ok || v != 12 {
		t.Fatalf("gauge func = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_weird", Label{"k", `a"b\c`}); !ok || !math.IsInf(v, 1) {
		t.Fatalf("escaped-label sample = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_seconds_count"); !ok || v != 2 {
		t.Fatalf("histogram count = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_seconds_bucket", Label{"le", "0.5"}); !ok || v != 1 {
		t.Fatalf("histogram bucket = %v, %v", v, ok)
	}
	if !sc.Has("rt_seconds_bucket", Label{"le", "+Inf"}) {
		t.Fatal("no +Inf bucket in parse")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := New()
	r.Counter("dup_total", "x", Label{"a", "1"})
	r.Counter("dup_total", "x", Label{"a", "2"}) // distinct labels: fine
	assertPanics(t, "same labels", func() { r.Counter("dup_total", "x", Label{"a", "1"}) })
	assertPanics(t, "type mismatch", func() { r.Gauge("dup_total", "x") })
	assertPanics(t, "empty name", func() { r.Counter("", "x") })
	assertPanics(t, "bad bounds", func() { r.Histogram("dup_hist", "x", []float64{1, 1}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestConcurrentInstruments drives every instrument from many
// goroutines under -race while scraping concurrently: the hot path must
// be lock-free and the encoder must see consistent values.
func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c := r.Counter("cc_total", "c")
	g := r.Gauge("cc_gauge", "g")
	h := r.Histogram("cc_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-4)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for i := 0; i < 50; i++ {
				buf.Reset()
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if _, err := Parse(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
