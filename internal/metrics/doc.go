// Package metrics is a small, dependency-free instrumentation registry
// with a Prometheus text-format encoder: counters (monotone uint64),
// gauges (float64, settable or computed on scrape via GaugeFunc), and
// histograms (fixed upper bounds, cumulative bucket counts plus sum and
// count). A Registry serves its families directly as an http.Handler in
// the text exposition format (version 0.0.4), so `GET /metrics` on a
// daemon is one mux line; Parse reads the same format back into a
// Scrape, which is how the soak harness (internal/soak) and the
// observability tests assert invariants from the daemon's own scrape
// output rather than from internal state.
//
// All instruments are lock-free on the hot path (atomics only; a
// histogram Observe is one atomic add per bucket boundary crossed plus
// a CAS loop for the sum), so ingest-path instrumentation stays within
// benchmark noise of the uninstrumented code — the benchdiff gate on
// BenchmarkDaemonIngest* holds this. Registration is not hot-path:
// instruments are created once at construction time, and registering
// the same name with an identical label set twice panics (a programmer
// error caught at boot, not a silent metric merge).
//
// Layer: infrastructure, below internal/daemon; nothing here knows
// about sketches. Seed discipline does not apply — metrics are
// observational and never feed back into estimates.
package metrics
