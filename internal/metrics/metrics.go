package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one static name="value" pair attached to an instrument at
// registration time. Labels distinguish series within one family (e.g.
// ingest counters per transport); they are fixed for the instrument's
// lifetime.
type Label struct {
	Key   string
	Value string
}

// instrument kinds, used for TYPE lines and registration checks.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instrument inside a family.
type series struct {
	labels []Label
	key    string // canonical label encoding, for duplicate detection

	// Exactly one of the following is active, per the family type.
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series registered under one metric name.
type family struct {
	name   string
	help   string
	typ    string
	series []*series
}

// Registry holds instrument families and encodes them on demand. The
// zero value is not usable; call New. Registration takes the registry
// lock; reads and writes of registered instruments are atomic and
// lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order of family names
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set for duplicate detection. Labels
// are sorted by key, so the same set in a different order collides as
// it should.
func labelKey(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := ""
	for _, l := range ls {
		key += l.Key + "\x00" + l.Value + "\x00"
	}
	return key
}

// register adds a series under name, creating or checking the family.
// It panics on a type/help mismatch with an existing family or on a
// duplicate (name, label set) — both are construction-time programmer
// errors that must not silently merge distinct instruments.
func (r *Registry) register(name, help, typ string, s *series) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	s.key = labelKey(s.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	for _, prev := range f.series {
		if prev.key == s.key {
			panic(fmt.Sprintf("metrics: duplicate registration of %s%s", name, formatLabels(s.labels)))
		}
	}
	f.series = append(f.series, s)
}

// Counter is a monotonically increasing uint64. The zero value is not
// registered; obtain one from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Counter registers (or panics on duplicate) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, &series{labels: labels, counter: c})
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 (stored as IEEE bits, so Set is one
// atomic store and Add a CAS loop).
type Gauge struct {
	bits atomic.Uint64
}

// Gauge registers (or panics on duplicate) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the idiom for values that already live elsewhere (goroutine
// counts, heap stats, a clock read under a lock).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, &series{labels: labels, fn: fn})
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets, with a
// running sum — the Prometheus histogram model. Buckets are the
// inclusive upper bounds, strictly increasing; the +Inf bucket is
// implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus the +Inf slot at the end
	sum    atomic.Uint64   // float64 bits
}

// Histogram registers (or panics on duplicate) a histogram series with
// the given upper bounds (strictly increasing; nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not strictly increasing at %v", name, bounds[i]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(name, help, typeHistogram, &series{labels: labels, hist: h})
	return h
}

// DefBuckets is the default histogram layout: latencies in seconds
// from 100µs to ~10s, exponential.
var DefBuckets = []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// SizeBuckets is a layout for byte and batch-size distributions: powers
// of four from 16 to ~16M.
var SizeBuckets = []float64{16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}

// Observe records one observation. Each observation lands in exactly
// one underlying slot; cumulative bucket values are computed at encode
// time, so Observe is O(log buckets) + one CAS loop for the sum.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }
