// Package encode implements the Section 1.1.4 construction: reducing a
// function of a frequency *matrix* to a function of a single variable.
//
// Given frequencies f_{i,j} with i ∈ [n], j ∈ [k], and 0 <= f_{i,j} < b,
// an update to coordinate (i, j) is replaced by b^j copies of item i. The
// packed frequency f'_i then carries (f_{i,1}, ..., f_{i,k}) as its base-b
// expansion, so Σ_i g(f_{i,1}, ..., f_{i,k}) = Σ_i g'(f'_i) for
// g'(x) = g(digits_b(x)).
//
// The paper's point: even for well-behaved g, the induced g' has high
// local variability (adding 1 to the packed value changes the low digit
// completely), so g' is typically not predictable — one-pass algorithms
// fail (Lemma 25), while the two-pass algorithm is insensitive to local
// variability and still works. Experiment E11 measures exactly this.
//
// Layer: satellite off the spine in ARCHITECTURE.md, supporting the
// communication-complexity reductions (internal/comm).
// Seed discipline: pure encodings, no randomness.
package encode
