package encode

import (
	"testing"
	"testing/quick"

	"repro/internal/gfunc"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	p, err := NewPacking(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c uint8) bool {
		digits := []uint64{uint64(a % 16), uint64(b % 16), uint64(c % 16)}
		got := p.Unpack(p.Pack(digits))
		for i := range digits {
			if got[i] != digits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaForMatchesPack(t *testing.T) {
	// Adding DeltaFor(j) to a packed value increments digit j (absent
	// carries), which is exactly the b^j-copies encoding of an update.
	p, err := NewPacking(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := p.Pack([]uint64{3, 1, 0, 5})
	y := uint64(int64(x) + p.DeltaFor(2))
	want := []uint64{3, 1, 1, 5}
	got := p.Unpack(y)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after update: %v, want %v", got, want)
		}
	}
}

func TestNewPackingRejectsOverflow(t *testing.T) {
	if _, err := NewPacking(1<<32, 3); err == nil {
		t.Error("expected overflow rejection")
	}
	if _, err := NewPacking(1, 2); err == nil {
		t.Error("expected rejection of base 1")
	}
}

func TestInducedFunctionClassG(t *testing.T) {
	p, err := NewPacking(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// g(d) = (d0 + d1)²: a smooth multivariate function.
	g := p.Induced("(d0+d1)^2", func(d []uint64) float64 {
		s := float64(d[0] + d[1])
		return s * s
	})
	if err := gfunc.Validate(g, p.MaxPacked()); err != nil {
		t.Error(err)
	}
}

func TestInducedHasHighLocalVariability(t *testing.T) {
	// The paper's Section 1.1.4 claim: even a smooth multivariate g
	// induces a wildly varying g' (a +1 step rolls the low digit).
	p, err := NewPacking(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	induced := p.Induced("(d0+4*d1)^2", func(d []uint64) float64 {
		s := float64(d[0] + 4*d[1])
		return s * s
	})
	smooth := gfunc.F2Func()
	vInduced := LocalVariability(induced, p.MaxPacked())
	vSmooth := LocalVariability(smooth, p.MaxPacked())
	if vInduced < 0.5 {
		t.Errorf("induced local variability %.3f, expected > 0.5", vInduced)
	}
	if vSmooth > 0.35 {
		t.Errorf("smooth x² local variability %.3f, expected small", vSmooth)
	}
	if vInduced < 2*vSmooth {
		t.Errorf("induced (%.3f) should dwarf smooth (%.3f)", vInduced, vSmooth)
	}
}

func TestMaxPacked(t *testing.T) {
	p, _ := NewPacking(10, 3)
	if p.MaxPacked() != 999 {
		t.Errorf("MaxPacked = %d, want 999", p.MaxPacked())
	}
}
