package encode

import (
	"fmt"
	"math"

	"repro/internal/gfunc"
)

// Packing describes a base-b, k-attribute packing. The packed values range
// in [0, b^k), so b^k must stay within the poly(n) frequency bound.
type Packing struct {
	Base uint64 // b >= 2
	K    int    // number of attributes
}

// NewPacking validates and returns a packing. It returns an error when the
// packed range would overflow int64 (the turnstile frequency type).
func NewPacking(base uint64, k int) (Packing, error) {
	if base < 2 || k < 1 {
		return Packing{}, fmt.Errorf("encode: need base >= 2 and k >= 1, got b=%d k=%d", base, k)
	}
	limit := uint64(1)
	for j := 0; j < k; j++ {
		if limit > (1<<62)/base {
			return Packing{}, fmt.Errorf("encode: b^k = %d^%d overflows the frequency range", base, k)
		}
		limit *= base
	}
	return Packing{Base: base, K: k}, nil
}

// MaxPacked returns b^k - 1, the largest packed frequency.
func (p Packing) MaxPacked() uint64 {
	v := uint64(1)
	for j := 0; j < p.K; j++ {
		v *= p.Base
	}
	return v - 1
}

// DeltaFor returns the single-variable update weight for an update to
// attribute j: b^j copies of the item. It panics if j is out of range.
func (p Packing) DeltaFor(j int) int64 {
	if j < 0 || j >= p.K {
		panic(fmt.Sprintf("encode: attribute %d outside [0,%d)", j, p.K))
	}
	d := int64(1)
	for t := 0; t < j; t++ {
		d *= int64(p.Base)
	}
	return d
}

// Pack packs an attribute vector into a single frequency. It panics if any
// digit is outside [0, b) or the vector length differs from K.
func (p Packing) Pack(digits []uint64) uint64 {
	if len(digits) != p.K {
		panic(fmt.Sprintf("encode: got %d digits, want %d", len(digits), p.K))
	}
	var v, mul uint64 = 0, 1
	for j := 0; j < p.K; j++ {
		if digits[j] >= p.Base {
			panic(fmt.Sprintf("encode: digit %d >= base %d", digits[j], p.Base))
		}
		v += digits[j] * mul
		mul *= p.Base
	}
	return v
}

// Unpack recovers the attribute vector from a packed frequency.
func (p Packing) Unpack(x uint64) []uint64 {
	out := make([]uint64, p.K)
	for j := 0; j < p.K; j++ {
		out[j] = x % p.Base
		x /= p.Base
	}
	return out
}

// Induced lifts a multivariate g to the single-variable g' of the
// construction, normalized into class G. The multivariate g must be
// positive on every nonzero digit vector and zero on the zero vector.
func (p Packing) Induced(name string, g func(digits []uint64) float64) gfunc.Func {
	return gfunc.Normalize(name, func(x uint64) float64 {
		if x > p.MaxPacked() {
			x = p.MaxPacked()
		}
		return g(p.Unpack(x))
	})
}

// LocalVariability measures max over sampled x in [m/8, m) of
// |g(x+1) - g(x)| / max(g(x), g(x+1)): the unit-step relative variation at
// scale. The lower cutoff excludes the trivial small-x region where every
// function varies (g(2)/g(1) is a constant-factor step even for x²); what
// predictability cares about is variation that persists as x grows.
// Induced functions score near 1 (a +1 update rewrites the low digit),
// while smooth functions score near 0 — the quantitative form of "g' is
// very likely not predictable".
func LocalVariability(g gfunc.Func, m uint64) float64 {
	lo := m / 8
	if lo < 8 {
		lo = 8
	}
	worst := 0.0
	for _, x := range gfunc.Grid(m-1, 2048) {
		if x < lo {
			continue
		}
		gx, gy := g.Eval(x), g.Eval(x+1)
		den := math.Max(gx, gy)
		if den <= 0 {
			continue
		}
		if v := math.Abs(gy-gx) / den; v > worst {
			worst = v
		}
	}
	return worst
}
