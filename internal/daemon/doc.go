// Package daemon implements gsumd, the distributed g-SUM aggregation
// service: an HTTP daemon (stdlib net/http only) wrapping one estimator
// resolved through the backend registry (backend.Open on the daemon's
// Spec). Because every registered kind is a linear sketch with a checked
// wire format, N worker daemons ingesting disjoint shards of a stream
// and one coordinator daemon merging their snapshots reproduce the
// single-machine estimate exactly — same seed, same bytes.
//
// Endpoints (all under /v1):
//
//	POST /v1/ingest    JSON {"updates": [[item, delta], ...]} — batched
//	                   turnstile updates through the unified Estimator.
//	POST /v1/stream    upgrades the connection (hijack, 101 Switching
//	                   Protocols) to the persistent binary ingest stream:
//	                   length-prefixed wire ingest frames in, one ack per
//	                   frame out, sent only AFTER the batch is applied —
//	                   an ack is a durability receipt the graceful-drain
//	                   path honors (see stream.go and the Pusher).
//	GET  /v1/snapshot  the serialized sketch state (application/octet-stream).
//	POST /v1/merge     a serialized shard sketch to fold in (the body is a
//	                   /v1/snapshot payload from a worker with the same
//	                   Spec; the wire fingerprint is checked, 409 on drift).
//	GET  /v1/estimate  the estimate as JSON; extras depend on the kind's
//	                   capabilities (?g=<name> for universal post-hoc
//	                   queries, ?item=<id> for countsketch point queries,
//	                   cover entries for heavy, clock fields for window).
//	POST /v1/advance   JSON {"tick": T} — move the window kind's tick
//	                   clock (past ticks are a no-op; kinds without a
//	                   clock answer 400).
//	GET  /v1/config    the daemon's normalized Spec, its fingerprint, and
//	                   ingest/space counters.
//	POST /v1/config    JSON {"fingerprint": F} — the pre-merge handshake:
//	                   200 when F matches this daemon's Spec fingerprint,
//	                   409 Conflict otherwise. Client.PullFrom checks every
//	                   worker this way BEFORE pulling any snapshot, so a
//	                   drifted deployment fails with zero merges.
//	POST /v1/register  JSON {"addr": "http://worker:7601"} — a worker
//	                   announces itself to the coordinator's membership
//	                   registry (gsumd -register does this on boot).
//	GET  /v1/members   the membership table: each worker's address,
//	                   liveness, consecutive heartbeat misses, and
//	                   last-seen/last-pull timestamps.
//	GET  /healthz      liveness: 200 whenever the process can answer.
//	GET  /readyz       readiness: 200 only after the serving frontend
//	                   calls SetReady(true) (restore done, listener
//	                   bound) and 503 again once a drain begins — the
//	                   signal a load balancer routes on.
//	GET  /metrics      the full registry in Prometheus text format
//	                   (internal/metrics): ingest totals and batch sizes
//	                   per transport, merge/estimate/advance latency
//	                   histograms, checkpoint results, stream
//	                   connection/ack counters, membership gauges and
//	                   transitions, and scrape-time gauges (estimate,
//	                   space, window clock, goroutines, heap). Hot-path
//	                   instruments are lock-free atomics; expensive
//	                   values are computed only at scrape time.
//
// The deployment topology mirrors the cmd/server + cmd/worker split of
// distributed work-queue systems: workers sit close to the traffic and
// absorb updates; the coordinator owns the query surface.
//
// Client is the typed HTTP client for all of the above; every verb has
// a context-first form (PushContext, EstimateContext, ...) with a
// Background() shim under the old name, and /v1/estimate responses
// decode into the typed EstimateResult the server itself encodes.
// Pusher is the asynchronous push session (bounded queue, batching by
// size and age, backpressure instead of drops) over either transport:
// JSON POSTs or the /v1/stream binary framing.
//
// Durability and self-healing: Server.WriteCheckpoint atomically
// persists the wire snapshot (temp file + fsync + rename) with the Spec
// fingerprint in the header, and RestoreCheckpoint refuses a file whose
// fingerprint differs from the live Spec — the same drift check as the
// handshake, enforced at a third point. Server.Membership runs the
// coordinator's heartbeat and auto-pull loops: workers join via
// /v1/register (or seeding), each heartbeat is a fingerprint handshake
// (liveness and drift in one probe), a worker is marked down after
// consecutive misses, and every pull round REBUILDS the aggregate from
// a fresh estimator plus all retained snapshots, so repeated pulls
// never double-count and a restarted worker is re-absorbed without
// operator action.
//
// Layer: the service layer of ARCHITECTURE.md — HTTP transport over the
// backend registry; cmd/gsumd is its thin main. Seed discipline: every
// daemon in one aggregation must be built from the same Spec (Seed
// included, and for the window kind the same tick sequence). The Spec
// fingerprint handshake rejects drift at /v1/config; the wire
// fingerprints re-check it at /v1/merge.
package daemon
