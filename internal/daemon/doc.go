// Package daemon implements gsumd, the distributed g-SUM aggregation
// service: an HTTP daemon (stdlib net/http only) wrapping one sketch
// backend. Because every backend is a linear sketch with a checked wire
// format, N worker daemons ingesting disjoint shards of a stream and one
// coordinator daemon merging their snapshots reproduce the single-machine
// estimate exactly — same seed, same bytes.
//
// Endpoints (all under /v1):
//
//	POST /v1/ingest    JSON {"updates": [[item, delta], ...]} — batched
//	                   turnstile updates, routed through internal/engine.
//	GET  /v1/snapshot  the serialized sketch state (application/octet-stream).
//	POST /v1/merge     a serialized shard sketch to fold in (the body is a
//	                   /v1/snapshot payload from a worker with the same
//	                   configuration and seed; the fingerprint is checked).
//	GET  /v1/estimate  the backend's estimate as JSON; parameters depend
//	                   on the backend (?g=<name> for universal, ?item=<id>
//	                   for countsketch point queries).
//	POST /v1/advance   JSON {"tick": T} — move the window backend's tick
//	                   clock (sliding-window aggregations only; past
//	                   ticks are a no-op, other backends answer 400).
//	GET  /v1/config    the daemon's configuration (sanity check that two
//	                   daemons can merge before shipping counters).
//	GET  /healthz      liveness.
//
// The deployment topology mirrors the cmd/server + cmd/worker split of
// distributed work-queue systems: workers sit close to the traffic and
// absorb updates; the coordinator owns the query surface.
//
// Layer: the service layer of ARCHITECTURE.md — HTTP transport over
// the estimator and window layers; cmd/gsumd is its thin main.
// Seed discipline: every daemon in one aggregation must be configured
// with the same Config (including Seed, and for the window backend the
// same tick sequence); /v1/merge enforces it via the wire fingerprints
// and answers 409 on drift instead of merging garbage.
package daemon
