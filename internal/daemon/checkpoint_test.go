package daemon

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/window"
)

func onePassSpec(seed uint64) backend.Spec {
	return backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(seed)}
}

// TestCheckpointRoundTrip: write a checkpoint mid-stream, restore it
// into a second daemon built from the same Spec, and the estimate and
// ingest counter carry over exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	spec := onePassSpec(42)
	s := testStream(3)
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if err := NewClient(ts.URL, nil).Push(s.Updates()); err != nil {
		t.Fatal(err)
	}

	path := CheckpointPath(t.TempDir())
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	restored, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(restored.Handler())
	t.Cleanup(ts2.Close)

	want, err := NewClient(ts.URL, nil).Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewClient(ts2.URL, nil).Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if *got.Estimate != *want.Estimate {
		t.Errorf("restored estimate %v != original %v", *got.Estimate, *want.Estimate)
	}
	info, err := NewClient(ts2.URL, nil).Config()
	if err != nil {
		t.Fatal(err)
	}
	if info.Ingested != uint64(len(s.Updates())) {
		t.Errorf("restored ingest counter %d, want %d", info.Ingested, len(s.Updates()))
	}

	// Restore is replace, not merge: restoring the same checkpoint again
	// must not double the state.
	if err := restored.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	got2, err := NewClient(ts2.URL, nil).Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if *got2.Estimate != *want.Estimate {
		t.Errorf("second restore changed the estimate: %v != %v", *got2.Estimate, *want.Estimate)
	}
}

// TestRestoreRefusesDriftedFingerprint: a checkpoint written under a
// different Spec (one field off — the seed) is refused at boot with
// both fingerprints surfaced, and the in-memory state stays untouched.
func TestRestoreRefusesDriftedFingerprint(t *testing.T) {
	writer, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	writer.est.Update(7, 3)
	path := CheckpointPath(t.TempDir())
	if err := writer.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	drifted, err := NewServer(onePassSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	err = drifted.RestoreCheckpoint(path)
	if err == nil {
		t.Fatal("drifted checkpoint was restored")
	}
	if !strings.Contains(err.Error(), "fingerprint mismatch") || !strings.Contains(err.Error(), "refusing checkpoint") {
		t.Errorf("error %v does not name the fingerprint mismatch", err)
	}
	if est := drifted.est.Estimate(); est != 0 {
		t.Errorf("state mutated by a refused restore: estimate %v", est)
	}
}

// TestRestoreMissingFileIsNotExist: a missing checkpoint surfaces
// os.ErrNotExist so boot code can treat it as a fresh start.
func TestRestoreMissingFileIsNotExist(t *testing.T) {
	srv, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	err = srv.RestoreCheckpoint(CheckpointPath(t.TempDir()))
	if !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint: got %v, want os.ErrNotExist", err)
	}
}

// TestRestoreRefusesCorruptCheckpoint: truncation and garbage are
// decode errors, not silent partial restores.
func TestRestoreRefusesCorruptCheckpoint(t *testing.T) {
	srv, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := CheckpointPath(dir)
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string][]byte{
		"truncated": data[:len(data)-9],
		"garbage":   []byte("not a checkpoint at all"),
	} {
		if err := os.WriteFile(path, mutate, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := srv.RestoreCheckpoint(path); err == nil {
			t.Errorf("%s checkpoint restored without error", name)
		}
	}
}

// TestCheckpointWriteIsAtomic: a successful write leaves exactly the
// checkpoint file in the state dir — no lingering tmp files — and
// overwrites the previous checkpoint in place.
func TestCheckpointWriteIsAtomic(t *testing.T) {
	srv, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := CheckpointPath(dir)
	for i := 0; i < 3; i++ {
		srv.est.Update(uint64(i), 1)
		if err := srv.WriteCheckpoint(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != CheckpointName {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("state dir holds %v, want exactly [%s]", names, CheckpointName)
	}
}

// TestWindowCheckpointRestoresClock: the window kind's tick clock
// survives the checkpoint; without it the fresh estimator would sit at
// tick 0 and refuse its own snapshot as clock drift.
func TestWindowCheckpointRestoresClock(t *testing.T) {
	spec := windowSpec(7, 4, 0)
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	win := srv.est.(backend.Windowed)
	win.Advance(5)
	srv.est.Update(3, 2)
	path := CheckpointPath(t.TempDir())
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	restored, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if now := restored.est.(backend.Windowed).Now(); now != 5 {
		t.Errorf("restored clock %d, want 5", now)
	}
	if got, want := restored.est.Estimate(), srv.est.Estimate(); got != want {
		t.Errorf("restored windowed estimate %v != original %v", got, want)
	}
}

// TestKillAndRestartE2E is the durability headline: a worker is killed
// mid-run (connections torn down, in-memory state gone), restarted from
// its checkpoint, fed the updates the crash lost, and the coordinator's
// merged estimate is still bit-identical to the serial single-machine
// run over the whole stream.
func TestKillAndRestartE2E(t *testing.T) {
	spec := onePassSpec(42)
	s := testStream(11)
	updates := s.Updates()
	half := len(updates) / 2
	w2Updates := updates[half:]
	ckptAt := len(w2Updates) / 2

	serial := serialEstimator(t, spec, s)

	mk := func(srv *Server) *httptest.Server {
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	newSrv := func() *Server {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	w1, coord := newSrv(), newSrv()
	w1TS, coordTS := mk(w1), mk(coord)
	if err := NewClient(w1TS.URL, nil).Push(updates[:half]); err != nil {
		t.Fatal(err)
	}

	// Worker 2: ingest the first part of its shard, checkpoint, ingest a
	// bit more (these post-checkpoint updates die with the process), then
	// kill -9: tear down its connections and abandon the in-memory state.
	stateDir := t.TempDir()
	ckptPath := CheckpointPath(stateDir)
	w2 := newSrv()
	w2TS := httptest.NewServer(w2.Handler())
	if err := NewClient(w2TS.URL, nil).Push(w2Updates[:ckptAt]); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteCheckpoint(ckptPath); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(w2TS.URL, nil).Push(w2Updates[ckptAt : ckptAt+ckptAt/2]); err != nil {
		t.Fatal(err)
	}
	w2TS.CloseClientConnections()
	w2TS.Close()
	w2 = nil

	// Restart from the checkpoint and re-deliver everything after it —
	// exactly what an at-least-once pusher does with unacknowledged-
	// since-checkpoint batches.
	w2b := newSrv()
	if err := w2b.RestoreCheckpoint(ckptPath); err != nil {
		t.Fatalf("restart from checkpoint: %v", err)
	}
	w2bTS := mk(w2b)
	if err := NewClient(w2bTS.URL, nil).Push(w2Updates[ckptAt:]); err != nil {
		t.Fatal(err)
	}

	cc := NewClient(coordTS.URL, nil)
	if err := cc.PullFrom([]string{w1TS.URL, w2bTS.URL}); err != nil {
		t.Fatal(err)
	}
	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if est := *got.Estimate; est != serial.Estimate() {
		t.Errorf("post-crash merged estimate %.17g != serial %.17g", est, serial.Estimate())
	}
}

// TestCheckpointerPeriodicAndFinal: the loop writes without being
// asked, and Stop writes the final state even when the interval never
// fired again.
func TestCheckpointerPeriodicAndFinal(t *testing.T) {
	srv, err := NewServer(onePassSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	path := CheckpointPath(t.TempDir())
	srv.est.Update(1, 1)
	ck := StartCheckpointer(srv, path, 5*time.Millisecond, t.Logf)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(time.Millisecond)
	}

	// Mutate, stop, and verify the final checkpoint carries the
	// post-mutation state.
	srv.mu.Lock()
	srv.est.Update(2, 7)
	srv.mu.Unlock()
	want := srv.est.Estimate()
	if err := ck.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	restored, err := NewServer(onePassSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if got := restored.est.Estimate(); got != want {
		t.Errorf("final checkpoint estimate %v, want %v", got, want)
	}
}

// windowSpecFingerprint pins that the checkpoint header fingerprint is
// the Spec fingerprint, i.e. the same value the /v1/config handshake
// exchanges — one drift check, three enforcement points (handshake,
// merge, restore).
func TestCheckpointHeaderUsesSpecFingerprint(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindCountSketch,
		Options: core.Options{N: 1 << 10, Seed: 9}, Rows: 3, Buckets: 64,
		Window: window.Config{}}
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := srv.checkpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Header layout: u32 magic, u16 version, u64 fingerprint.
	var fp uint64
	for _, b := range data[6:14] {
		fp = fp<<8 | uint64(b)
	}
	if want := srv.Spec().Fingerprint(); fp != want {
		t.Errorf("checkpoint header fingerprint %#x != Spec fingerprint %#x", fp, want)
	}
	if filepath.Base(CheckpointPath("/var/lib/gsumd")) != CheckpointName {
		t.Error("CheckpointPath does not end in CheckpointName")
	}
}

// TestRestoreWithTornTempFile simulates a crash mid-checkpoint: the
// atomic-write protocol may leave a partial checkpoint.gsum.tmp-* file
// in the state dir. Boot must restore the intact previous checkpoint,
// never the torn temp — and with no real checkpoint at all, a torn temp
// alone still means fresh start (os.ErrNotExist), not a corrupt-file
// error.
func TestRestoreWithTornTempFile(t *testing.T) {
	writer, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	writer.est.Update(7, 3)
	dir := t.TempDir()
	path := CheckpointPath(dir)
	if err := writer.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The crash artifact: a prefix of a checkpoint under the temp name
	// pattern CreateTemp would have used, never renamed into place.
	torn := filepath.Join(dir, CheckpointName+".tmp-123456")
	if err := os.WriteFile(torn, good[:len(good)/2], 0o600); err != nil {
		t.Fatal(err)
	}

	restored, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreCheckpoint(path); err != nil {
		t.Fatalf("restore with a torn temp alongside: %v", err)
	}
	if got, want := restored.est.Estimate(), writer.est.Estimate(); got != want {
		t.Errorf("restored estimate %v != writer's %v", got, want)
	}

	// Fresh start: only the torn temp exists.
	freshDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(freshDir, CheckpointName+".tmp-9"), good[:8], 0o600); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreCheckpoint(CheckpointPath(freshDir)); !os.IsNotExist(err) {
		t.Fatalf("torn temp without a checkpoint: got %v, want os.ErrNotExist", err)
	}
	// And the next successful write replaces the checkpoint atomically
	// regardless of the leftover temp.
	if err := writer.WriteCheckpoint(path); err != nil {
		t.Fatalf("write over a dir holding a torn temp: %v", err)
	}
}

// TestRestoreDriftMessageNamesBothFingerprints pins the operator-facing
// content of the drift refusal: the error must name the checkpoint's
// path and BOTH fingerprints (the checkpoint's and the daemon's), so a
// drifted -seed or -n is diagnosable from the one log line it produces.
func TestRestoreDriftMessageNamesBothFingerprints(t *testing.T) {
	writer, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	path := CheckpointPath(t.TempDir())
	if err := writer.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	drifted, err := NewServer(onePassSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	err = drifted.RestoreCheckpoint(path)
	if err == nil {
		t.Fatal("drifted checkpoint was restored")
	}
	msg := err.Error()
	for _, want := range []string{
		path,
		fmt.Sprintf("%#x", writer.Spec().Fingerprint()),
		fmt.Sprintf("%#x", drifted.Spec().Fingerprint()),
		"different seed or configuration",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("drift error %q lacks %q", msg, want)
		}
	}
}
