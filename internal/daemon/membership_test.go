package daemon

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
)

// flakyHandler wraps a daemon handler with a kill switch: while dead it
// answers 503 to everything, which the heartbeat loop must count as a
// miss.
type flakyHandler struct {
	h    http.Handler
	mu   sync.Mutex
	dead bool
}

func (f *flakyHandler) setDead(dead bool) {
	f.mu.Lock()
	f.dead = dead
	f.mu.Unlock()
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	dead := f.dead
	f.mu.Unlock()
	if dead {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	f.h.ServeHTTP(w, r)
}

func findMember(t *testing.T, m []MemberInfo, addr string) MemberInfo {
	t.Helper()
	for _, mi := range m {
		if mi.Addr == addr {
			return mi
		}
	}
	t.Fatalf("member %s not in %v", addr, m)
	return MemberInfo{}
}

// TestRegisterEndpointAndMembers: workers announce themselves over
// POST /v1/register, the registry is served on GET /v1/members, and a
// relative or garbage address is refused.
func TestRegisterEndpointAndMembers(t *testing.T) {
	srv, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	cc := NewClient(ts.URL, nil)

	if err := cc.Register("http://127.0.0.1:7601"); err != nil {
		t.Fatal(err)
	}
	if err := cc.Register("http://127.0.0.1:7601"); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := cc.Register("http://127.0.0.1:7602"); err != nil {
		t.Fatal(err)
	}
	if err := cc.Register("not a url"); err == nil {
		t.Error("garbage register address accepted")
	}

	members := srv.Membership().Members()
	if len(members) != 2 {
		t.Fatalf("registry holds %d members, want 2: %v", len(members), members)
	}
	mi := findMember(t, members, "http://127.0.0.1:7601")
	if !mi.Alive || mi.HasSnapshot {
		t.Errorf("fresh member state %+v, want alive without snapshot", mi)
	}

	// The registry is also served over HTTP.
	resp, err := http.Get(ts.URL + "/v1/members")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/members: %s", resp.Status)
	}
}

// TestHeartbeatMarksDownAndRecovers: a worker that stops answering is
// demoted after MaxMisses consecutive probe failures and promoted again
// on the first success.
func TestHeartbeatMarksDownAndRecovers(t *testing.T) {
	spec := onePassSpec(5)
	worker, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	fh := &flakyHandler{h: worker.Handler()}
	wts := httptest.NewServer(fh)
	t.Cleanup(wts.Close)

	coord, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := coord.Membership()
	if err := m.Add(wts.URL); err != nil {
		t.Fatal(err)
	}
	// Long cadences: the test drives rounds by hand for determinism.
	m.Start(MembershipConfig{Heartbeat: time.Hour, PullEvery: time.Hour,
		MaxMisses: 2, Timeout: 2 * time.Second, Logf: t.Logf})
	t.Cleanup(m.Stop)

	m.ProbeAll()
	if mi := findMember(t, m.Members(), wts.URL); !mi.Alive || mi.LastSeen.IsZero() {
		t.Fatalf("live worker probed as %+v", mi)
	}

	fh.setDead(true)
	m.ProbeAll()
	if mi := findMember(t, m.Members(), wts.URL); !mi.Alive {
		t.Fatalf("worker down after 1 miss (MaxMisses=2): %+v", mi)
	}
	m.ProbeAll()
	if mi := findMember(t, m.Members(), wts.URL); mi.Alive || mi.Misses != 2 {
		t.Fatalf("worker still alive after %d misses: %+v", mi.Misses, mi)
	}

	fh.setDead(false)
	m.ProbeAll()
	if mi := findMember(t, m.Members(), wts.URL); !mi.Alive || mi.Misses != 0 {
		t.Fatalf("recovered worker not promoted: %+v", mi)
	}
}

// TestHeartbeatCountsDriftAsMiss: a worker built from a different Spec
// answers the handshake with a 409; the heartbeat must treat it like a
// dead worker (its snapshots would be refused anyway).
func TestHeartbeatCountsDriftAsMiss(t *testing.T) {
	coord, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := NewServer(onePassSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	dts := httptest.NewServer(drifted.Handler())
	t.Cleanup(dts.Close)

	m := coord.Membership()
	if err := m.Add(dts.URL); err != nil {
		t.Fatal(err)
	}
	m.Start(MembershipConfig{Heartbeat: time.Hour, PullEvery: time.Hour,
		MaxMisses: 1, Timeout: 2 * time.Second, Logf: t.Logf})
	t.Cleanup(m.Stop)
	m.ProbeAll()
	if mi := findMember(t, m.Members(), dts.URL); mi.Alive {
		t.Fatalf("drifted worker kept alive: %+v", mi)
	}
}

// TestAutoPullRebuildsWithoutDoubleCounting: repeated pull rounds over
// a growing fleet state always equal the serial run — the rebuild
// replaces the aggregate instead of re-merging, so pulling twice does
// not double-count anything.
func TestAutoPullRebuildsWithoutDoubleCounting(t *testing.T) {
	spec := onePassSpec(42)
	s := testStream(13)
	updates := s.Updates()
	half := len(updates) / 2

	mk := func() (*Server, *httptest.Server) {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return srv, ts
	}
	_, w1 := mk()
	_, w2 := mk()
	coord, cts := mk()

	m := coord.Membership()
	for _, w := range []string{w1.URL, w2.URL} {
		if err := m.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	m.Start(MembershipConfig{Heartbeat: time.Hour, PullEvery: time.Hour,
		Timeout: 2 * time.Second, Logf: t.Logf})
	t.Cleanup(m.Stop)

	// Round 1: half the stream on w1.
	if err := NewClient(w1.URL, nil).Push(updates[:half]); err != nil {
		t.Fatal(err)
	}
	m.ProbeAll()
	if err := m.PullAll(); err != nil {
		t.Fatal(err)
	}
	halfSerial, err := backend.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	halfSerial.UpdateBatch(updates[:half])
	est := func() float64 {
		got, err := NewClient(cts.URL, nil).Estimate(nil)
		if err != nil {
			t.Fatal(err)
		}
		return *got.Estimate
	}
	if got := est(); got != halfSerial.Estimate() {
		t.Fatalf("after round 1: estimate %.17g != serial(half) %.17g", got, halfSerial.Estimate())
	}

	// Pull again with nothing new: the estimate must not move.
	if err := m.PullAll(); err != nil {
		t.Fatal(err)
	}
	if got := est(); got != halfSerial.Estimate() {
		t.Fatalf("idempotent re-pull moved the estimate to %.17g", got)
	}

	// Round 2: the other half lands on w2; the next pull sees the whole
	// stream, bit-identical to serial.
	if err := NewClient(w2.URL, nil).Push(updates[half:]); err != nil {
		t.Fatal(err)
	}
	if err := m.PullAll(); err != nil {
		t.Fatal(err)
	}
	serial := serialEstimator(t, spec, s)
	if got := est(); got != serial.Estimate() {
		t.Fatalf("after round 2: estimate %.17g != serial %.17g", got, serial.Estimate())
	}
}

// TestPullKeepsDeadWorkersLastSnapshot: when a worker dies, its last
// pulled snapshot keeps contributing to the aggregate until it returns,
// so a crash does not silently subtract a shard from the estimate.
func TestPullKeepsDeadWorkersLastSnapshot(t *testing.T) {
	spec := onePassSpec(7)
	s := testStream(17)
	updates := s.Updates()
	half := len(updates) / 2

	worker, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	wts := httptest.NewServer(worker.Handler())
	w2, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	w2ts := httptest.NewServer(w2.Handler())
	t.Cleanup(w2ts.Close)

	coord, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	if err := NewClient(wts.URL, nil).Push(updates[:half]); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(w2ts.URL, nil).Push(updates[half:]); err != nil {
		t.Fatal(err)
	}

	m := coord.Membership()
	for _, w := range []string{wts.URL, w2ts.URL} {
		if err := m.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	m.Start(MembershipConfig{Heartbeat: time.Hour, PullEvery: time.Hour,
		MaxMisses: 1, Retries: 1, Backoff: time.Millisecond,
		Timeout: time.Second, Logf: t.Logf})
	t.Cleanup(m.Stop)
	m.ProbeAll()
	if err := m.PullAll(); err != nil {
		t.Fatal(err)
	}

	serial := serialEstimator(t, spec, s)
	est := func() float64 {
		got, err := NewClient(cts.URL, nil).Estimate(nil)
		if err != nil {
			t.Fatal(err)
		}
		return *got.Estimate
	}
	if got := est(); got != serial.Estimate() {
		t.Fatalf("pre-crash estimate %.17g != serial %.17g", got, serial.Estimate())
	}

	// Kill worker 1 for good. Probe marks it down; the next pull must
	// keep its last snapshot in the aggregate.
	wts.CloseClientConnections()
	wts.Close()
	m.ProbeAll()
	if mi := findMember(t, m.Members(), wts.URL); mi.Alive {
		t.Fatalf("dead worker still alive: %+v", mi)
	}
	if err := m.PullAll(); err != nil {
		t.Fatal(err)
	}
	if got := est(); got != serial.Estimate() {
		t.Errorf("estimate after losing a worker %.17g != serial %.17g (last snapshot dropped?)",
			got, serial.Estimate())
	}
}

// TestMembershipLoopsEndToEnd drives the real tickers: a coordinator
// with fast cadences converges to the serial estimate on its own, and
// keeps converging as more traffic lands — no manual PullFrom anywhere.
func TestMembershipLoopsEndToEnd(t *testing.T) {
	spec := onePassSpec(42)
	s := testStream(19)
	updates := s.Updates()
	half := len(updates) / 2

	mk := func() *httptest.Server {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2 := mk(), mk()
	coord, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	// Workers join through the HTTP registration path.
	cc := NewClient(cts.URL, nil)
	for _, w := range []string{w1.URL, w2.URL} {
		if err := cc.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	m := coord.Membership()
	m.Start(MembershipConfig{Heartbeat: 10 * time.Millisecond, PullEvery: 15 * time.Millisecond,
		Timeout: 2 * time.Second, Logf: t.Logf})
	t.Cleanup(m.Stop)

	if err := NewClient(w1.URL, nil).Push(updates[:half]); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(w2.URL, nil).Push(updates[half:]); err != nil {
		t.Fatal(err)
	}

	serial := serialEstimator(t, spec, s)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := cc.Estimate(nil)
		if err != nil {
			t.Fatal(err)
		}
		if *got.Estimate == serial.Estimate() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-pull never converged: estimate %v, want %.17g",
				*got.Estimate, serial.Estimate())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSelfHealingClusterE2E is the full story: workers register, the
// coordinator aggregates them, one worker is killed mid-run, restarts
// from its checkpoint ON THE SAME ADDRESS, is re-fed the lost tail, and
// the coordinator heals back to the exact serial estimate — no manual
// intervention beyond the restart itself.
func TestSelfHealingClusterE2E(t *testing.T) {
	spec := onePassSpec(42)
	s := testStream(23)
	updates := s.Updates()
	half := len(updates) / 2
	w2Updates := updates[half:]
	ckptAt := len(w2Updates) / 2
	serial := serialEstimator(t, spec, s)

	// Worker 1: plain.
	w1srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	w1 := httptest.NewServer(w1srv.Handler())
	t.Cleanup(w1.Close)

	// Worker 2 listens on an explicit port so its restart can reuse the
	// address, exactly as a supervised daemon would.
	stateDir := t.TempDir()
	ckptPath := CheckpointPath(stateDir)
	w2srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w2addr := l.Addr().String()
	w2 := httptest.NewUnstartedServer(w2srv.Handler())
	w2.Listener.Close()
	w2.Listener = l
	w2.Start()

	coord, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)
	cc := NewClient(cts.URL, nil)
	for _, w := range []string{w1.URL, "http://" + w2addr} {
		if err := cc.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	m := coord.Membership()
	m.Start(MembershipConfig{Heartbeat: time.Hour, PullEvery: time.Hour,
		MaxMisses: 1, Retries: 1, Backoff: time.Millisecond,
		Timeout: time.Second, Logf: t.Logf})
	t.Cleanup(m.Stop)

	// Normal operation: both workers ingest, w2 checkpoints, the
	// coordinator aggregates.
	if err := NewClient(w1.URL, nil).Push(updates[:half]); err != nil {
		t.Fatal(err)
	}
	if err := NewClient("http://"+w2addr, nil).Push(w2Updates[:ckptAt]); err != nil {
		t.Fatal(err)
	}
	if err := w2srv.WriteCheckpoint(ckptPath); err != nil {
		t.Fatal(err)
	}
	m.ProbeAll()
	if err := m.PullAll(); err != nil {
		t.Fatal(err)
	}

	// Crash: post-checkpoint updates die with the process.
	if err := NewClient("http://"+w2addr, nil).Push(w2Updates[ckptAt : ckptAt+ckptAt/2]); err != nil {
		t.Fatal(err)
	}
	w2.CloseClientConnections()
	w2.Close()
	m.ProbeAll()
	if mi := findMember(t, m.Members(), "http://"+w2addr); mi.Alive {
		t.Fatalf("crashed worker still alive: %+v", mi)
	}

	// Restart on the same address from the checkpoint; the pusher
	// re-delivers everything after the checkpoint.
	w2srvB, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2srvB.RestoreCheckpoint(ckptPath); err != nil {
		t.Fatalf("restart from checkpoint: %v", err)
	}
	l2, err := net.Listen("tcp", w2addr)
	if err != nil {
		t.Fatal(err)
	}
	w2b := httptest.NewUnstartedServer(w2srvB.Handler())
	w2b.Listener.Close()
	w2b.Listener = l2
	w2b.Start()
	t.Cleanup(w2b.Close)
	if err := NewClient("http://"+w2addr, nil).Push(w2Updates[ckptAt:]); err != nil {
		t.Fatal(err)
	}

	// The next heartbeat heals the membership; the next pull heals the
	// estimate — bit-identical to the serial run over the whole stream.
	m.ProbeAll()
	if mi := findMember(t, m.Members(), "http://"+w2addr); !mi.Alive {
		t.Fatalf("restarted worker not re-promoted: %+v", mi)
	}
	if err := m.PullAll(); err != nil {
		t.Fatal(err)
	}
	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if est := *got.Estimate; est != serial.Estimate() {
		t.Errorf("healed estimate %.17g != serial %.17g", est, serial.Estimate())
	}
}
