package daemon

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/stream"
)

// TestNewClientDefaultTimeout: a nil http.Client must not mean "no
// timeout" — that is exactly the hang the self-healing loops cannot
// afford — and a caller-supplied timeout-less client still gets a
// bounded per-request deadline for the pull loop.
func TestNewClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", nil)
	if c.hc == http.DefaultClient {
		t.Fatal("nil http.Client resolved to http.DefaultClient (unbounded)")
	}
	if c.hc.Timeout != DefaultTimeout {
		t.Errorf("default client timeout %v, want %v", c.hc.Timeout, DefaultTimeout)
	}
	if c.timeout != DefaultTimeout {
		t.Errorf("per-request deadline %v, want %v", c.timeout, DefaultTimeout)
	}
	custom := NewClient("http://127.0.0.1:1", &http.Client{})
	if custom.timeout != DefaultTimeout {
		t.Errorf("timeout-less custom client: per-request deadline %v, want %v",
			custom.timeout, DefaultTimeout)
	}
	tuned := NewClient("http://127.0.0.1:1", &http.Client{Timeout: time.Second})
	if tuned.timeout != time.Second {
		t.Errorf("tuned client: per-request deadline %v, want 1s", tuned.timeout)
	}
}

// stalledServer answers nothing until the test ends — the "hung worker"
// every timeout test needs.
func stalledServer(t *testing.T) *httptest.Server {
	t.Helper()
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	t.Cleanup(func() { close(block); ts.Close() })
	return ts
}

// TestClientTimesOutOnHungServer: Push and CheckSpec against a stalled
// daemon fail within the configured timeout instead of blocking
// forever.
func TestClientTimesOutOnHungServer(t *testing.T) {
	ts := stalledServer(t)
	c := NewClient(ts.URL, &http.Client{Timeout: 100 * time.Millisecond})
	start := time.Now()
	if err := c.Push([]stream.Update{{Item: 1, Delta: 1}}); err == nil {
		t.Error("Push against a stalled daemon returned nil")
	}
	if err := c.CheckSpec(42); err == nil {
		t.Error("CheckSpec against a stalled daemon returned nil")
	}
	if _, err := c.Snapshot(); err == nil {
		t.Error("Snapshot against a stalled daemon returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("three stalled calls took %v; timeouts are not being applied", elapsed)
	}
}

// TestPullFromDeadWorkerFailsFastWithZeroMerges is the acceptance
// criterion verbatim: one hung worker in the fleet fails the whole pull
// within the configured timeout, and the coordinator performs zero
// merges — not even from the healthy worker.
func TestPullFromDeadWorkerFailsFastWithZeroMerges(t *testing.T) {
	spec := onePassSpec(42)
	s := testStream(29)
	mkDaemon := func() *httptest.Server {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	good, coord := mkDaemon(), mkDaemon()
	hung := stalledServer(t)
	if err := NewClient(good.URL, nil).Push(s.Updates()); err != nil {
		t.Fatal(err)
	}

	cc := NewClient(coord.URL, &http.Client{Timeout: 200 * time.Millisecond})
	start := time.Now()
	err := cc.PullFrom([]string{good.URL, hung.URL})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("PullFrom with a hung worker returned nil")
	}
	if !strings.Contains(err.Error(), hung.URL) {
		t.Errorf("error %v does not name the hung worker", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("PullFrom took %v against a hung worker; the deadline is not applied per request", elapsed)
	}

	// Zero merges: the handshake phase walks every worker before any
	// snapshot ships, so the healthy worker's data must not have landed.
	info, err := NewClient(coord.URL, nil).Config()
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewClient(coord.URL, nil).Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ingested != 0 || *got.Estimate != 0 {
		t.Errorf("coordinator merged despite the dead worker: ingested=%d estimate=%v",
			info.Ingested, *got.Estimate)
	}
}

// TestOversizeSnapshotRejected: a snapshot body larger than the cap is
// refused whole, not truncated into a corrupt partial payload.
func TestOversizeSnapshotRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = io.CopyN(w, zeroReader{}, maxBodyBytes+1)
	}))
	t.Cleanup(ts.Close)
	_, err := NewClient(ts.URL, nil).Snapshot()
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversize snapshot: got %v, want an 'exceeds' error", err)
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestPushReusesConnections: successful responses are drained before
// close, so the keep-alive connection goes back to the pool and the
// second and third push ride the same TCP connection. Asserted via
// httptrace, which reports per-request whether the connection was
// reused.
func TestPushReusesConnections(t *testing.T) {
	srv, err := NewServer(onePassSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// A fresh transport isolates this test's connection pool.
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	c := NewClient(ts.URL, &http.Client{Transport: tr, Timeout: 5 * time.Second})

	batch := []stream.Update{{Item: 1, Delta: 1}}
	var reused bool
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) { reused = info.Reused },
	})
	for i := 0; i < 3; i++ {
		if err := c.PushContext(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if i > 0 && !reused {
			t.Fatalf("push %d dialed a new connection; response bodies are not being drained", i+1)
		}
	}

	// The non-200 path must reuse too: decodeError also drains.
	if err := c.PushContext(ctx, []stream.Update{{Item: 1 << 40, Delta: 1}}); err == nil {
		t.Fatal("out-of-domain push succeeded")
	}
	if err := c.PushContext(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Error("push after an error response dialed a new connection; error bodies are not being drained")
	}
}

// TestPushRejectsItemsBeyondInt64 is the wrap regression test: item IDs
// at and past 2^63 must be refused by the client with a clear error
// (never silently sent as negative numbers), the server must explain a
// negative item in wrap terms, and the largest representable ID —
// 2^63-1 — must flow end to end.
func TestPushRejectsItemsBeyondInt64(t *testing.T) {
	// A domain big enough that 2^63-1 is a valid item.
	spec := backend.Spec{Kind: backend.KindCountSketch,
		Options: core.Options{N: math.MaxUint64, Seed: 3}, Rows: 3, Buckets: 64}
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)

	// Client-side: 2^63 and above never reach the wire.
	for _, item := range []uint64{1 << 63, math.MaxUint64} {
		err := c.Push([]stream.Update{{Item: item, Delta: 1}})
		if err == nil || !strings.Contains(err.Error(), "int64 range") {
			t.Errorf("item %d: got %v, want an int64-range error", item, err)
		}
	}
	info, err := c.Config()
	if err != nil {
		t.Fatal(err)
	}
	if info.Ingested != 0 {
		t.Errorf("rejected pushes still ingested %d updates", info.Ingested)
	}

	// Boundary: 2^63-1 is representable and must be accepted.
	if err := c.Push([]stream.Update{{Item: math.MaxInt64, Delta: 2}}); err != nil {
		t.Fatalf("boundary item 2^63-1 rejected: %v", err)
	}
	got, err := c.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if *got.F2 == 0 {
		t.Error("boundary item did not land in the sketch")
	}

	// Server-side: a hand-crafted negative item (what a wrapping client
	// would send) is rejected with the wrap explanation, not misattributed.
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		bytes.NewReader([]byte(`{"updates":[[-5, 1]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative item: %s, want 400", resp.Status)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if !strings.Contains(string(body), "int64 range") {
		t.Errorf("server error %q does not explain the int64 wrap", body)
	}
}
