package daemon

import (
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/gfunc"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/window"
)

// testStream is a seeded Zipf stream whose distinct-item count stays
// below the candidate trackers' capacity, the regime in which merged and
// serial estimates agree exactly (see internal/core/parallel.go).
func testStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.1)
}

// cluster spins up two worker daemons and one coordinator daemon with
// identical configuration, pushes disjoint halves of the stream to the
// workers over HTTP, and merges both snapshots into the coordinator.
func cluster(t *testing.T, cfg Config, s *stream.Stream) *Client {
	t.Helper()
	mk := func() *httptest.Server {
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2, coord := mk(), mk(), mk()

	updates := s.Updates()
	n := len(updates)
	if err := NewClient(w1.URL, nil).Push(updates[:n/2]); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(w2.URL, nil).Push(updates[n/2:]); err != nil {
		t.Fatal(err)
	}
	cc := NewClient(coord.URL, nil)
	if err := cc.PullFrom([]string{w1.URL, w2.URL}); err != nil {
		t.Fatal(err)
	}
	return cc
}

func TestE2ECountSketchBackend(t *testing.T) {
	s := testStream(3)
	cfg := Config{Backend: "countsketch", N: 1 << 12, M: 1 << 10, Seed: 17, Rows: 5, Buckets: 1 << 10}
	cc := cluster(t, cfg, s)

	// Serial single-process reference with the same seed.
	cs := sketch.NewCountSketch(5, 1<<10, util.NewSplitMix64(17))
	s.Each(func(u stream.Update) { cs.Update(u.Item, u.Delta) })

	for item := range s.Vector() {
		got, err := cc.Estimate(url.Values{"item": {strconv.FormatUint(item, 10)}})
		if err != nil {
			t.Fatal(err)
		}
		if est := int64(got["estimate"].(float64)); est != cs.Estimate(item) {
			t.Errorf("item %d: daemon estimate %d != serial %d", item, est, cs.Estimate(item))
		}
	}
	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f2 := got["f2"].(float64); f2 != cs.EstimateF2() {
		t.Errorf("daemon F2 %.17g != serial %.17g", f2, cs.EstimateF2())
	}
}

func TestE2EHeavyBackend(t *testing.T) {
	s := testStream(5)
	cfg := Config{Backend: "heavy", G: "x^2", N: 1 << 12, M: 1 << 10, Seed: 23, Lambda: 1.0 / 16}
	cc := cluster(t, cfg, s)

	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := srv.be.(*heavyBackend).op
	s.Each(func(u stream.Update) { serial.Update(u.Item, u.Delta) })
	want := serial.Cover()

	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws := got["weight_sum"].(float64); ws != want.WeightSum() {
		t.Errorf("daemon cover weight sum %.17g != serial %.17g", ws, want.WeightSum())
	}
	entries := got["cover"].([]interface{})
	if len(entries) != len(want) {
		t.Fatalf("daemon cover has %d entries, serial %d", len(entries), len(want))
	}
	for i, e := range entries {
		m := e.(map[string]interface{})
		if it := uint64(m["item"].(float64)); it != want[i].Item {
			t.Errorf("cover[%d] item %d, want %d", i, it, want[i].Item)
		}
	}
}

func TestE2ERecursiveOnePassBackend(t *testing.T) {
	s := testStream(7)
	cfg := Config{Backend: "onepass", G: "x^2", N: 1 << 12, M: 1 << 10,
		Eps: 0.25, Seed: 42, Lambda: 1.0 / 16}
	cc := cluster(t, cfg, s)

	serial := core.NewOnePass(gfunc.F2Func(), core.Options{
		N: 1 << 12, M: 1 << 10, Eps: 0.25, Seed: 42, Lambda: 1.0 / 16})
	serial.Process(s)

	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if est := got["estimate"].(float64); est != serial.Estimate() {
		t.Errorf("daemon g-SUM estimate %.17g != serial %.17g", est, serial.Estimate())
	}
}

func TestE2EUniversalBackendPostHocQueries(t *testing.T) {
	s := testStream(9)
	cfg := Config{Backend: "universal", N: 1 << 12, M: 1 << 10,
		Eps: 0.25, Seed: 31, Lambda: 1.0 / 16, Envelope: 4}
	cc := cluster(t, cfg, s)

	serial := core.NewUniversal(core.Options{
		N: 1 << 12, M: 1 << 10, Eps: 0.25, Seed: 31, Lambda: 1.0 / 16, Envelope: 4})
	serial.Process(s)

	for _, g := range []gfunc.Func{gfunc.F2Func(), gfunc.F1Func(), gfunc.L0()} {
		got, err := cc.Estimate(url.Values{"g": {g.Name()}})
		if err != nil {
			t.Fatal(err)
		}
		if est := got["estimate"].(float64); est != serial.EstimateFor(g) {
			t.Errorf("%s: daemon estimate %.17g != serial %.17g", g.Name(), est, serial.EstimateFor(g))
		}
	}
}

func TestMergeRejectsMismatchedConfiguration(t *testing.T) {
	cfgA := Config{Backend: "countsketch", N: 1 << 10, Seed: 1, Rows: 5, Buckets: 256}
	cfgB := Config{Backend: "countsketch", N: 1 << 10, Seed: 2, Rows: 5, Buckets: 256}
	sa, err := NewServer(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewServer(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	tsa, tsb := httptest.NewServer(sa.Handler()), httptest.NewServer(sb.Handler())
	defer tsa.Close()
	defer tsb.Close()

	snap, err := NewClient(tsa.URL, nil).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewClient(tsb.URL, nil).Merge(snap); err == nil {
		t.Error("expected merge of a different-seed snapshot to be rejected")
	}
}

func TestIngestRejectsOutOfDomainItems(t *testing.T) {
	srv, err := NewServer(Config{Backend: "countsketch", N: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	err = NewClient(ts.URL, nil).Push([]stream.Update{{Item: 99, Delta: 1}})
	if err == nil {
		t.Error("expected out-of-domain item to be rejected")
	}
}

func TestNewServerValidatesConfig(t *testing.T) {
	if _, err := NewServer(Config{Backend: "nope", N: 4}); err == nil {
		t.Error("expected unknown backend error")
	}
	if _, err := NewServer(Config{Backend: "onepass", G: "nope", N: 4}); err == nil {
		t.Error("expected unknown function error")
	}
	if _, err := NewServer(Config{Backend: "countsketch"}); err == nil {
		t.Error("expected zero-domain error")
	}
}

// windowCluster spins up two window-backend workers and a coordinator,
// drives disjoint halves of a ticked stream through the workers
// (advancing every clock through the same tick sequence), merges, and
// returns the coordinator client.
func windowCluster(t *testing.T, cfg Config, updates []stream.Update, ticks []uint64) *Client {
	t.Helper()
	mk := func() *Client {
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return NewClient(ts.URL, nil)
	}
	w1, w2, coord := mk(), mk(), mk()
	last := ticks[len(ticks)-1]
	push := func(c *Client, lo, hi int) {
		for lo < hi {
			run := lo + 1
			for run < hi && ticks[run] == ticks[lo] {
				run++
			}
			if _, err := c.Advance(ticks[lo]); err != nil {
				t.Fatal(err)
			}
			if err := c.Push(updates[lo:run]); err != nil {
				t.Fatal(err)
			}
			lo = run
		}
		if _, err := c.Advance(last); err != nil {
			t.Fatal(err)
		}
	}
	n := len(updates)
	push(w1, 0, n/2)
	push(w2, n/2, n)
	if _, err := coord.Advance(last); err != nil {
		t.Fatal(err)
	}
	if err := coord.PullFrom([]string{w1.base, w2.base}); err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestE2EWindowBackend: the coordinator's windowed estimate equals a
// single-process window.Estimator fed the whole ticked stream — exactly
// — and reports the clock and stale-tick diagnostics.
func TestE2EWindowBackend(t *testing.T) {
	s := testStream(5)
	updates := s.Updates()
	ticks := make([]uint64, len(updates))
	for i := range ticks {
		ticks[i] = uint64(i) * 32 / uint64(len(updates))
	}
	cfg := Config{Backend: "window", G: "x^2", N: 1 << 12, M: 1 << 10,
		Seed: 23, Lambda: 1.0 / 16, Window: 6, WindowK: 2}

	ref, err := window.NewEstimator(gfunc.F2Func(), cfg.options(), window.Config{W: 6, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range updates {
		if err := ref.Update(u.Item, u.Delta, ticks[i]); err != nil {
			t.Fatal(err)
		}
	}
	ref.Advance(ticks[len(ticks)-1])

	cc := windowCluster(t, cfg, updates, ticks)
	resp, err := cc.Estimate(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp["estimate"].(float64); got != ref.Estimate() {
		t.Fatalf("daemon windowed estimate %v != single-process %v", got, ref.Estimate())
	}
	if tick := resp["tick"].(float64); uint64(tick) != ref.Now() {
		t.Fatalf("daemon clock %v != %d", tick, ref.Now())
	}
	if stale := resp["stale_ticks"].(float64); uint64(stale) != ref.Stale() {
		t.Fatalf("daemon stale %v != %d", stale, ref.Stale())
	}
}

// TestAdvanceEndpoint: past ticks are a no-op, non-window backends
// refuse, and the window backend requires a window length.
func TestAdvanceEndpoint(t *testing.T) {
	srv, err := NewServer(Config{Backend: "window", G: "x^2", N: 1 << 10, M: 1 << 8,
		Seed: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)
	now, err := c.Advance(9)
	if err != nil || now != 9 {
		t.Fatalf("advance to 9: now=%d err=%v", now, err)
	}
	now, err = c.Advance(3) // past tick: clock must not move backward
	if err != nil || now != 9 {
		t.Fatalf("advance to past tick: now=%d err=%v", now, err)
	}

	// A wall-clock-sized jump completes immediately (window.Advance
	// fast-forwards) instead of replaying ~10^9 ticks under the lock.
	if now, err := c.Advance(1753680000); err != nil || now != 1753680000 {
		t.Fatalf("epoch-seconds jump: now=%d err=%v", now, err)
	}

	plain, err := NewServer(Config{Backend: "onepass", G: "x^2", N: 1 << 10, M: 1 << 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsp := httptest.NewServer(plain.Handler())
	t.Cleanup(tsp.Close)
	if _, err := NewClient(tsp.URL, nil).Advance(1); err == nil {
		t.Fatal("onepass backend accepted /v1/advance")
	}

	if _, err := NewServer(Config{Backend: "window", G: "x^2", N: 1 << 10, M: 1 << 8, Seed: 1}); err == nil {
		t.Fatal("window backend built without a window length")
	}
}

// TestWindowMergeRejectsClockDrift: a coordinator that was not advanced
// to the workers' tick must refuse the snapshot (409 via /v1/merge).
func TestWindowMergeRejectsClockDrift(t *testing.T) {
	cfg := Config{Backend: "window", G: "x^2", N: 1 << 10, M: 1 << 8, Seed: 2, Window: 4}
	mk := func() *Client {
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return NewClient(ts.URL, nil)
	}
	worker, coord := mk(), mk()
	if _, err := worker.Advance(5); err != nil {
		t.Fatal(err)
	}
	snap, err := worker.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Merge(snap); err == nil {
		t.Fatal("coordinator at tick 0 merged a tick-5 snapshot")
	}
	if _, err := coord.Advance(5); err != nil {
		t.Fatal(err)
	}
	if err := coord.Merge(snap); err != nil {
		t.Fatalf("merge after synchronizing clocks: %v", err)
	}
}
