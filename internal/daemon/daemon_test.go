package daemon

import (
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/window"
)

// testStream is a seeded Zipf stream whose distinct-item count stays
// below the candidate trackers' capacity, the regime in which merged and
// serial estimates agree exactly (see internal/core/parallel.go).
func testStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.1)
}

func testOptions(seed uint64) core.Options {
	return core.Options{N: 1 << 12, M: 1 << 10, Eps: 0.25, Seed: seed, Lambda: 1.0 / 16}
}

// cluster spins up two worker daemons and one coordinator daemon with
// identical Specs, pushes disjoint halves of the stream to the workers
// over HTTP, and merges both snapshots into the coordinator.
func cluster(t *testing.T, spec backend.Spec, s *stream.Stream) *Client {
	t.Helper()
	mk := func() *httptest.Server {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2, coord := mk(), mk(), mk()

	updates := s.Updates()
	n := len(updates)
	if err := NewClient(w1.URL, nil).Push(updates[:n/2]); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(w2.URL, nil).Push(updates[n/2:]); err != nil {
		t.Fatal(err)
	}
	cc := NewClient(coord.URL, nil)
	if err := cc.PullFrom([]string{w1.URL, w2.URL}); err != nil {
		t.Fatal(err)
	}
	return cc
}

// serialEstimator opens the same Spec in-process and feeds it the whole
// stream — the single-machine reference every cluster test compares to.
func serialEstimator(t *testing.T, spec backend.Spec, s *stream.Stream) backend.Estimator {
	t.Helper()
	est, err := backend.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	est.UpdateBatch(s.Updates())
	return est
}

func TestE2ECountSketchBackend(t *testing.T) {
	s := testStream(3)
	spec := backend.Spec{Kind: backend.KindCountSketch,
		Options: core.Options{N: 1 << 12, M: 1 << 10, Seed: 17}, Rows: 5, Buckets: 1 << 10}
	cc := cluster(t, spec, s)

	serial := serialEstimator(t, spec, s).(backend.PointQuerier)

	for item := range s.Vector() {
		got, err := cc.Estimate(url.Values{"item": {strconv.FormatUint(item, 10)}})
		if err != nil {
			t.Fatal(err)
		}
		if est := int64(*got.Estimate); est != serial.EstimateItem(item) {
			t.Errorf("item %d: daemon estimate %d != serial %d", item, est, serial.EstimateItem(item))
		}
	}
	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f2 := *got.F2; f2 != serial.EstimateF2() {
		t.Errorf("daemon F2 %.17g != serial %.17g", f2, serial.EstimateF2())
	}
}

func TestE2EHeavyBackend(t *testing.T) {
	s := testStream(5)
	spec := backend.Spec{Kind: backend.KindHeavy, G: "x^2", Options: testOptions(23)}
	cc := cluster(t, spec, s)

	serial := serialEstimator(t, spec, s).(backend.CoverReporter)
	want := serial.Cover()

	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws := *got.WeightSum; ws != want.WeightSum() {
		t.Errorf("daemon cover weight sum %.17g != serial %.17g", ws, want.WeightSum())
	}
	entries := got.Cover
	if len(entries) != len(want) {
		t.Fatalf("daemon cover has %d entries, serial %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.Item != want[i].Item {
			t.Errorf("cover[%d] item %d, want %d", i, e.Item, want[i].Item)
		}
	}
}

func TestE2ERecursiveOnePassBackend(t *testing.T) {
	s := testStream(7)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(42)}
	cc := cluster(t, spec, s)

	serial := serialEstimator(t, spec, s)

	got, err := cc.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if est := *got.Estimate; est != serial.Estimate() {
		t.Errorf("daemon g-SUM estimate %.17g != serial %.17g", est, serial.Estimate())
	}
}

func TestE2EUniversalBackendPostHocQueries(t *testing.T) {
	s := testStream(9)
	opts := testOptions(31)
	opts.Envelope = 4
	spec := backend.Spec{Kind: backend.KindUniversal, Options: opts}
	cc := cluster(t, spec, s)

	serial := serialEstimator(t, spec, s).(backend.FuncQuerier)

	for _, name := range []string{"x^2", "x^1", "1(x>0)"} {
		g, err := backend.CatalogFunc(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Estimate(url.Values{"g": {name}})
		if err != nil {
			t.Fatal(err)
		}
		if est := *got.Estimate; est != serial.EstimateFor(g) {
			t.Errorf("%s: daemon estimate %.17g != serial %.17g", name, est, serial.EstimateFor(g))
		}
	}
}

// TestConfigServesSpecAndFingerprint: GET /v1/config returns the
// normalized Spec and the fingerprint the handshake checks.
func TestConfigServesSpecAndFingerprint(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(42)}
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	info, err := NewClient(ts.URL, nil).Config()
	if err != nil {
		t.Fatal(err)
	}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != norm.Fingerprint() {
		t.Errorf("served fingerprint %#x != local %#x", info.Fingerprint, norm.Fingerprint())
	}
	if info.Spec.Kind != norm.Kind || info.Spec.Options != norm.Options {
		t.Errorf("served spec %+v != normalized %+v", info.Spec, norm)
	}
	// The served Spec is self-describing: re-fingerprinting it locally
	// reproduces the served fingerprint.
	if info.Spec.Fingerprint() != info.Fingerprint {
		t.Error("served spec does not fingerprint to the served fingerprint")
	}
}

// TestPullFromRejectsSpecMismatchBeforeMerge is the e2e drift guard: a
// worker built from a Spec differing in one field (the seed) is refused
// at the /v1/config handshake with a 409 — before any snapshot is
// pulled or merged — and the coordinator keeps answering from its own
// untouched state.
func TestPullFromRejectsSpecMismatchBeforeMerge(t *testing.T) {
	s := testStream(3)
	good := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(42)}
	drifted := good
	drifted.Options.Seed = 43

	mk := func(spec backend.Spec) *Client {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return NewClient(ts.URL, nil)
	}
	coord, okWorker, badWorker := mk(good), mk(good), mk(drifted)
	if err := okWorker.Push(s.Updates()); err != nil {
		t.Fatal(err)
	}
	if err := badWorker.Push(s.Updates()); err != nil {
		t.Fatal(err)
	}

	err := coord.PullFrom([]string{okWorker.base, badWorker.base})
	if err == nil {
		t.Fatal("PullFrom accepted a worker with a drifted Spec")
	}
	if !strings.Contains(err.Error(), "409") || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Errorf("error %v does not surface the 409 fingerprint handshake", err)
	}

	// The handshake runs before any snapshot moves: even the matching
	// worker's data must NOT have been merged.
	info, err := coord.Config()
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ingested != 0 || *got.Estimate != 0 {
		t.Errorf("coordinator state changed despite failed handshake: ingested=%d estimate=%v",
			info.Ingested, *got.Estimate)
	}

	// Direct handshake checks: matching fingerprint 200, drifted 409.
	if err := okWorker.CheckSpec(good.Fingerprint()); err != nil {
		t.Errorf("matching fingerprint rejected: %v", err)
	}
	if err := badWorker.CheckSpec(good.Fingerprint()); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("drifted daemon did not answer 409: %v", err)
	}
}

func TestMergeRejectsMismatchedConfiguration(t *testing.T) {
	mk := func(seed uint64) *Client {
		srv, err := NewServer(backend.Spec{Kind: backend.KindCountSketch,
			Options: core.Options{N: 1 << 10, Seed: seed}, Rows: 5, Buckets: 256})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return NewClient(ts.URL, nil)
	}
	a, b := mk(1), mk(2)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Merge(snap); err == nil {
		t.Error("expected merge of a different-seed snapshot to be rejected")
	}
}

func TestIngestRejectsOutOfDomainItems(t *testing.T) {
	srv, err := NewServer(backend.Spec{Kind: backend.KindCountSketch,
		Options: core.Options{N: 16, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	err = NewClient(ts.URL, nil).Push([]stream.Update{{Item: 99, Delta: 1}})
	if err == nil {
		t.Error("expected out-of-domain item to be rejected")
	}
}

func TestNewServerValidatesSpec(t *testing.T) {
	if _, err := NewServer(backend.Spec{Kind: "nope", Options: core.Options{N: 4}}); err == nil {
		t.Error("expected unknown kind error")
	}
	// The two-pass protocol needs a stream replay between passes; the
	// HTTP surface cannot drive that, so the daemon must refuse the kind
	// instead of serving a pass-1-only estimate.
	if _, err := NewServer(backend.Spec{Kind: backend.KindTwoPass, G: "x^2",
		Options: core.Options{N: 4}}); err == nil || !strings.Contains(err.Error(), "replay") {
		t.Errorf("twopass kind not refused by the daemon: %v", err)
	}
	if _, err := NewServer(backend.Spec{Kind: backend.KindOnePass, G: "nope",
		Options: core.Options{N: 4}}); err == nil {
		t.Error("expected unknown function error")
	}
	if _, err := NewServer(backend.Spec{Kind: backend.KindCountSketch}); err == nil {
		t.Error("expected zero-domain error")
	}
}

func windowSpec(seed uint64, w uint64, k int) backend.Spec {
	return backend.Spec{Kind: backend.KindWindow, G: "x^2",
		Options: core.Options{N: 1 << 12, M: 1 << 10, Seed: seed, Lambda: 1.0 / 16},
		Window:  window.Config{W: w, K: k}}
}

// windowCluster spins up two window-kind workers and a coordinator,
// drives disjoint halves of a ticked stream through the workers
// (advancing every clock through the same tick sequence), merges, and
// returns the coordinator client.
func windowCluster(t *testing.T, spec backend.Spec, updates []stream.Update, ticks []uint64) *Client {
	t.Helper()
	mk := func() *Client {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return NewClient(ts.URL, nil)
	}
	w1, w2, coord := mk(), mk(), mk()
	last := ticks[len(ticks)-1]
	push := func(c *Client, lo, hi int) {
		for lo < hi {
			run := lo + 1
			for run < hi && ticks[run] == ticks[lo] {
				run++
			}
			if _, err := c.Advance(ticks[lo]); err != nil {
				t.Fatal(err)
			}
			if err := c.Push(updates[lo:run]); err != nil {
				t.Fatal(err)
			}
			lo = run
		}
		if _, err := c.Advance(last); err != nil {
			t.Fatal(err)
		}
	}
	n := len(updates)
	push(w1, 0, n/2)
	push(w2, n/2, n)
	if _, err := coord.Advance(last); err != nil {
		t.Fatal(err)
	}
	if err := coord.PullFrom([]string{w1.base, w2.base}); err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestE2EWindowBackend: the coordinator's windowed estimate equals a
// single-process window estimator fed the whole ticked stream — exactly
// — and reports the clock and stale-tick diagnostics.
func TestE2EWindowBackend(t *testing.T) {
	s := testStream(5)
	updates := s.Updates()
	ticks := make([]uint64, len(updates))
	for i := range ticks {
		ticks[i] = uint64(i) * 32 / uint64(len(updates))
	}
	spec := windowSpec(23, 6, 2)

	est, err := backend.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref := est.(backend.Windowed)
	for i, u := range updates {
		ref.Advance(ticks[i])
		est.Update(u.Item, u.Delta)
	}
	ref.Advance(ticks[len(ticks)-1])

	cc := windowCluster(t, spec, updates, ticks)
	resp, err := cc.Estimate(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if got := *resp.Estimate; got != est.Estimate() {
		t.Fatalf("daemon windowed estimate %v != single-process %v", got, est.Estimate())
	}
	if tick := *resp.Tick; tick != ref.Now() {
		t.Fatalf("daemon clock %v != %d", tick, ref.Now())
	}
	if stale := *resp.StaleTicks; stale != ref.Stale() {
		t.Fatalf("daemon stale %v != %d", stale, ref.Stale())
	}
}

// TestAdvanceEndpoint: past ticks are a no-op, kinds without a clock
// refuse, and the window kind requires a window length.
func TestAdvanceEndpoint(t *testing.T) {
	srv, err := NewServer(backend.Spec{Kind: backend.KindWindow, G: "x^2",
		Options: core.Options{N: 1 << 10, M: 1 << 8, Seed: 1},
		Window:  window.Config{W: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)
	now, err := c.Advance(9)
	if err != nil || now != 9 {
		t.Fatalf("advance to 9: now=%d err=%v", now, err)
	}
	now, err = c.Advance(3) // past tick: clock must not move backward
	if err != nil || now != 9 {
		t.Fatalf("advance to past tick: now=%d err=%v", now, err)
	}

	// A wall-clock-sized jump completes immediately (window.Advance
	// fast-forwards) instead of replaying ~10^9 ticks under the lock.
	if now, err := c.Advance(1753680000); err != nil || now != 1753680000 {
		t.Fatalf("epoch-seconds jump: now=%d err=%v", now, err)
	}

	plain, err := NewServer(backend.Spec{Kind: backend.KindOnePass, G: "x^2",
		Options: core.Options{N: 1 << 10, M: 1 << 8, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tsp := httptest.NewServer(plain.Handler())
	t.Cleanup(tsp.Close)
	if _, err := NewClient(tsp.URL, nil).Advance(1); err == nil {
		t.Fatal("onepass kind accepted /v1/advance")
	}

	if _, err := NewServer(backend.Spec{Kind: backend.KindWindow, G: "x^2",
		Options: core.Options{N: 1 << 10, M: 1 << 8, Seed: 1}}); err == nil {
		t.Fatal("window kind built without a window length")
	}
}

// TestWindowMergeRejectsClockDrift: a coordinator that was not advanced
// to the workers' tick must refuse the snapshot (409 via /v1/merge).
// The Spec fingerprints MATCH here — clock drift is runtime state, not
// configuration, so it is the wire format's boundary check that
// catches it.
func TestWindowMergeRejectsClockDrift(t *testing.T) {
	spec := windowSpec(2, 4, 0)
	mk := func() *Client {
		srv, err := NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return NewClient(ts.URL, nil)
	}
	worker, coord := mk(), mk()
	if _, err := worker.Advance(5); err != nil {
		t.Fatal(err)
	}
	snap, err := worker.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Merge(snap); err == nil {
		t.Fatal("coordinator at tick 0 merged a tick-5 snapshot")
	}
	if _, err := coord.Advance(5); err != nil {
		t.Fatal(err)
	}
	if err := coord.Merge(snap); err != nil {
		t.Fatalf("merge after synchronizing clocks: %v", err)
	}
}
