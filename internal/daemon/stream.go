package daemon

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/wire"
)

// The binary streaming ingest path: POST /v1/stream upgrades the HTTP
// connection (hijack + 101 Switching Protocols) to a persistent framed
// byte stream of wire ingest frames (see internal/wire/ingest.go). One
// connection carries the whole push session — no per-batch HTTP
// overhead, no JSON — and every frame is acknowledged only after its
// batch is applied under the state lock, so an ack is a durability
// receipt the graceful-drain path honors: on shutdown the daemon
// finishes the frame in hand, flushes its ack, and only then writes the
// final checkpoint.
//
// Backpressure is structural: the daemon reads, applies, and acks one
// frame at a time per connection, so a client that respects its in-
// flight window (see Pusher) can never flood the daemon — unread frames
// simply back up into the TCP window and the client's Push blocks.

const (
	// StreamProtocol names the upgrade protocol in the HTTP handshake.
	StreamProtocol = "gsum-stream/1"
	// DefaultStreamIdleTimeout bounds how long a stream connection may
	// sit with no complete frame arriving before the daemon closes it;
	// a wedged or vanished client cannot pin a goroutine forever.
	DefaultStreamIdleTimeout = 2 * time.Minute
)

// streamState tracks the Server's live stream connections so graceful
// drain can flush and close them; http.Server.Shutdown does not wait
// for hijacked connections.
type streamState struct {
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup

	// maxFrameBytes caps one frame's payload (0 = wire.MaxIngestFrameBytes).
	maxFrameBytes int
	// idleTimeout bounds the wait for the next frame (0 = DefaultStreamIdleTimeout).
	idleTimeout time.Duration
	// applyDelay is a test hook: it stalls each frame's apply to make a
	// slow daemon, so backpressure tests can watch the client block.
	applyDelay time.Duration
}

func (st *streamState) frameCap() int {
	if st.maxFrameBytes > 0 {
		return st.maxFrameBytes
	}
	return wire.MaxIngestFrameBytes
}

func (st *streamState) idle() time.Duration {
	if st.idleTimeout > 0 {
		return st.idleTimeout
	}
	return DefaultStreamIdleTimeout
}

// add registers a live connection; it fails once draining has begun.
func (st *streamState) add(c net.Conn) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.draining {
		return false
	}
	if st.conns == nil {
		st.conns = make(map[net.Conn]struct{})
	}
	st.conns[c] = struct{}{}
	st.wg.Add(1)
	return true
}

func (st *streamState) remove(c net.Conn) {
	st.mu.Lock()
	delete(st.conns, c)
	st.mu.Unlock()
	st.wg.Done()
}

// SetStreamLimits tunes the streaming ingest path: maxFrameBytes caps a
// frame payload (0 keeps wire.MaxIngestFrameBytes) and idleTimeout
// bounds the wait between frames (0 keeps DefaultStreamIdleTimeout).
// Call before serving traffic.
func (s *Server) SetStreamLimits(maxFrameBytes int, idleTimeout time.Duration) {
	s.streams.maxFrameBytes = maxFrameBytes
	s.streams.idleTimeout = idleTimeout
}

// DrainStreams begins the streaming drain and waits (bounded by ctx)
// for every live stream connection to wind down: each loop finishes the
// frame it is applying, flushes that ack, sends a final draining ack,
// and closes. New stream connections are refused with 503 once the
// drain begins. Call after http.Server.Shutdown (which does not track
// hijacked connections) and before the final checkpoint, so every acked
// frame is inside it.
func (s *Server) DrainStreams(ctx context.Context) error {
	s.draining.Store(true) // /readyz answers 503 from here on
	st := &s.streams
	st.mu.Lock()
	st.draining = true
	// Nudge blocked reads: each loop wakes, sees draining, and winds
	// down with a final ack instead of waiting out its idle timeout.
	for c := range st.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	st.mu.Unlock()

	done := make(chan struct{})
	go func() {
		st.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Give up waiting and cut the stragglers loose; their unacked
		// frames are the clients' to redeliver.
		st.mu.Lock()
		for c := range st.conns {
			_ = c.Close()
		}
		st.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handleStream upgrades the connection and runs the frame loop.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported: connection cannot be hijacked"))
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !s.streams.add(conn) {
		_, _ = bufrw.WriteString("HTTP/1.1 503 Service Unavailable\r\nConnection: close\r\nContent-Length: 0\r\n\r\n")
		_ = bufrw.Flush()
		_ = conn.Close()
		return
	}
	s.obs.streamConns.Inc()
	s.obs.streamConnsTotal.Inc()
	// The http.Server's Read/WriteTimeout deadlines survive the hijack
	// and would poison a long-lived stream; the loop manages its own.
	_ = conn.SetDeadline(time.Time{})
	_, _ = bufrw.WriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " + StreamProtocol + "\r\nConnection: Upgrade\r\n\r\n")
	if err := bufrw.Flush(); err != nil {
		s.streams.remove(conn)
		_ = conn.Close()
		return
	}
	go s.streamLoop(conn, bufrw)
}

// streamLoop reads, applies, and acks frames until the client closes,
// an error ends the session, or the daemon drains.
func (s *Server) streamLoop(conn net.Conn, bufrw *bufio.ReadWriter) {
	st := &s.streams
	defer st.remove(conn)
	defer conn.Close()
	defer s.obs.streamConns.Dec()

	var lastSeq, lastTotal uint64
	sendAck := func(ack wire.IngestAck) error {
		_ = conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := wire.WriteFrame(bufrw, wire.AppendIngestAck(s.fp, ack)); err != nil {
			return err
		}
		return bufrw.Flush()
	}
	fail := func(err error) {
		// Best effort: tell the client why before closing. The ack
		// carries the last applied frame so the client knows exactly
		// what survives.
		s.obs.streamRejects.Inc()
		_ = sendAck(wire.IngestAck{Seq: lastSeq, Total: lastTotal,
			Status: wire.IngestAckError, Msg: err.Error()})
	}

	for {
		// A drain must end the session after the frame in hand even if
		// the client keeps sending: the read-deadline nudge only wakes a
		// blocked read, so a loop that stays busy checks the flag here.
		st.mu.Lock()
		draining := st.draining
		st.mu.Unlock()
		if draining {
			_ = sendAck(wire.IngestAck{Seq: lastSeq, Total: lastTotal,
				Status: wire.IngestAckDraining, Msg: "daemon draining"})
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(st.idle()))
		payload, err := wire.ReadFrame(bufrw, st.frameCap())
		if err != nil {
			st.mu.Lock()
			draining := st.draining
			st.mu.Unlock()
			switch {
			case draining:
				// The drain nudge (read deadline in the past) or a clean
				// close got us here. Every applied frame is already
				// acked; the final draining ack tells the client not to
				// wait for more.
				_ = sendAck(wire.IngestAck{Seq: lastSeq, Total: lastTotal,
					Status: wire.IngestAckDraining, Msg: "daemon draining"})
			case errors.Is(err, io.EOF):
				// Clean end of session.
			default:
				fail(fmt.Errorf("daemon: stream read: %w", err))
			}
			return
		}
		seq, batch, err := wire.UnmarshalIngestFrame(payload, s.fp)
		if err != nil {
			fail(fmt.Errorf("daemon: stream frame: %w", err))
			return
		}
		n := s.spec.Options.N
		domainErr := false
		for i, u := range batch {
			if u.Item >= n {
				fail(fmt.Errorf("daemon: frame %d update %d: item %d outside domain [0,%d)", seq, i, u.Item, n))
				domainErr = true
				break
			}
		}
		if domainErr {
			return
		}
		if st.applyDelay > 0 {
			time.Sleep(st.applyDelay)
		}
		s.mu.Lock()
		s.est.UpdateBatch(batch)
		s.ingests += uint64(len(batch))
		total := s.ingests
		s.mu.Unlock()
		s.obs.ingested(transportStream, len(batch))
		lastSeq, lastTotal = seq, total
		if err := sendAck(wire.IngestAck{Seq: seq, Total: total, Status: wire.IngestAckOK}); err != nil {
			return // client went away; it will redeliver unacked frames
		}
		s.obs.ackedFrames.Inc()
		s.obs.ackedUpdates.Add(uint64(len(batch)))
	}
}
