package daemon

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Pusher defaults.
const (
	// DefaultPushBatch is the updates-per-frame (or per-JSON-request)
	// batch size.
	DefaultPushBatch = 4096
	// DefaultMaxInFlight bounds unacked frames on the stream transport.
	DefaultMaxInFlight = 4
	// DefaultFlushEvery bounds how long a partial batch may age before
	// it is sent anyway.
	DefaultFlushEvery = 100 * time.Millisecond
)

// ErrDraining is wrapped by Pusher errors when the daemon announced a
// graceful drain mid-stream. Every frame acked before it is durable
// (the daemon checkpoints after flushing acks); the Pusher's unsent and
// unacked updates are the caller's to redeliver after the restart.
var ErrDraining = errors.New("daemon draining")

// PusherConfig tunes an asynchronous Pusher.
type PusherConfig struct {
	// Stream selects the binary streaming transport (one persistent
	// connection, length-prefixed frames, per-frame acks). False means
	// JSON POSTs to /v1/ingest — same batching and bounded queue,
	// per-request overhead.
	Stream bool
	// MaxBatch is the updates per frame/request (0 = DefaultPushBatch).
	MaxBatch int
	// MaxBuffered caps the queue in updates; Push blocks when full
	// (0 = 4 * MaxBatch). It never drops.
	MaxBuffered int
	// MaxInFlight bounds unacked stream frames (0 = DefaultMaxInFlight).
	MaxInFlight int
	// FlushEvery bounds a partial batch's age (0 = DefaultFlushEvery).
	FlushEvery time.Duration
	// AckTimeout bounds how long the stream transport waits for an ack
	// while frames are in flight (0 = 1 minute). A daemon that stops
	// acking surfaces as an error instead of a hang.
	AckTimeout time.Duration
	// Metrics, when non-nil, registers this Pusher's client-side
	// instruments (queue depth, in-flight frames, session counters,
	// flushes by cause — all gsum_pusher_*) against the given registry.
	// The values are read from the session state at scrape time, so the
	// push hot path gains no extra work. Labels distinguishes several
	// Pushers sharing one registry; registering two with an identical
	// label set panics (metrics.Registry duplicate detection).
	Metrics *metrics.Registry
	// Labels is the static label set for the instruments registered via
	// Metrics (e.g. one worker="..." label per push session).
	Labels []metrics.Label
}

func (cfg PusherConfig) withDefaults() PusherConfig {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultPushBatch
	}
	if cfg.MaxBuffered <= 0 {
		cfg.MaxBuffered = 4 * cfg.MaxBatch
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = time.Minute
	}
	return cfg
}

// PusherStats counts a Pusher's progress, in updates except Frames.
type PusherStats struct {
	// Enqueued is how many updates Push has accepted.
	Enqueued uint64
	// Sent is how many updates have left the queue for the transport.
	Sent uint64
	// Acked is how many updates the daemon has acknowledged applying
	// (for the JSON transport, how many POSTs returned 200).
	Acked uint64
	// Frames is how many frames/requests carried them.
	Frames uint64
	// Total is the daemon's ingest counter from the last ack (stream
	// transport only).
	Total uint64
	// FlushSize / FlushAge / FlushRequest / FlushClose count why each
	// frame left the queue: the batch filled (size), the FlushEvery
	// timer fired on a partial batch (age), an explicit Flush call
	// (request), or the final drain inside Close (close).
	FlushSize, FlushAge, FlushRequest, FlushClose uint64
}

// Pusher is an asynchronous, batching push session against one daemon:
// Push enqueues into a bounded buffer and returns immediately (blocking
// only when the buffer is full — backpressure, never drops), a
// background worker flushes batches by size and age, and Close flushes
// whatever remains and waits for every ack. Errors are sticky: the
// first transport or daemon error fails all subsequent calls, and
// Close reports it. A Pusher is safe for concurrent Push calls.
//
// On the stream transport an ack is a durability receipt (see
// /v1/stream); Stats().Acked is exactly the prefix of the session that
// survives a daemon drain.
type Pusher struct {
	c   *Client
	cfg PusherConfig
	ctx context.Context
	sc  *streamConn // nil on the JSON transport
	fp  uint64

	mu        sync.Mutex
	cond      *sync.Cond
	buf       []stream.Update
	flushReq  bool
	flushDue  bool // age timer fired
	closed    bool
	err       error
	draining  bool
	timer     *time.Timer
	nextSeq   uint64
	ackedSeq  uint64
	unacked   int            // updates taken from buf, not yet acked
	pending   map[uint64]int // stream: in-flight seq -> update count
	stats     PusherStats
	workerEnd chan struct{}
	readerEnd chan struct{}
}

// NewPusher opens an asynchronous push session against the daemon this
// client points at. ctx governs the whole session: dialing, every JSON
// send, and cancellation (a canceled ctx fails the session with ctx's
// error). The stream transport fetches the daemon's Spec fingerprint
// via /v1/config first, so a misconfigured client fails here, not
// mid-stream.
func (c *Client) NewPusher(ctx context.Context, cfg PusherConfig) (*Pusher, error) {
	cfg = cfg.withDefaults()
	p := &Pusher{c: c, cfg: cfg, ctx: ctx,
		pending: make(map[uint64]int), workerEnd: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	if cfg.Metrics != nil {
		p.registerMetrics(cfg.Metrics, cfg.Labels)
	}
	if cfg.Stream {
		info, err := c.ConfigContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("daemon: stream handshake: %w", err)
		}
		p.fp = info.Fingerprint
		sc, err := c.dialStream(ctx)
		if err != nil {
			return nil, err
		}
		p.sc = sc
		p.readerEnd = make(chan struct{})
		go p.readAcks()
	}
	go p.worker()
	// A canceled session ctx wakes every blocked Push/Flush.
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				p.fail(ctx.Err())
			case <-p.workerEnd:
			}
		}()
	}
	return p, nil
}

// registerMetrics mounts the session's client-side instruments. Every
// value is read from the session state under p.mu at scrape time —
// GaugeFuncs, so Push/worker gain no per-update instrument work.
func (p *Pusher) registerMetrics(reg *metrics.Registry, labels []metrics.Label) {
	read := func(f func() float64) func() float64 {
		return func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return f()
		}
	}
	reg.GaugeFunc("gsum_pusher_queue_depth",
		"updates waiting in the Pusher's bounded buffer", read(func() float64 {
			return float64(len(p.buf))
		}), labels...)
	reg.GaugeFunc("gsum_pusher_inflight_frames",
		"stream frames sent but not yet acked", read(func() float64 {
			return float64(len(p.pending))
		}), labels...)
	reg.GaugeFunc("gsum_pusher_enqueued_updates",
		"updates accepted by Push this session", read(func() float64 {
			return float64(p.stats.Enqueued)
		}), labels...)
	reg.GaugeFunc("gsum_pusher_acked_updates",
		"updates the daemon has acknowledged applying this session", read(func() float64 {
			return float64(p.stats.Acked)
		}), labels...)
	reg.GaugeFunc("gsum_pusher_frames",
		"frames/requests sent this session", read(func() float64 {
			return float64(p.stats.Frames)
		}), labels...)
	for _, c := range []struct {
		cause string
		field *uint64
	}{
		{"size", &p.stats.FlushSize},
		{"age", &p.stats.FlushAge},
		{"request", &p.stats.FlushRequest},
		{"close", &p.stats.FlushClose},
	} {
		field := c.field
		reg.GaugeFunc("gsum_pusher_flushes",
			"batches that left the queue, by cause (size, age, request, close)",
			read(func() float64 { return float64(*field) }),
			append(append([]metrics.Label(nil), labels...), metrics.Label{Key: "cause", Value: c.cause})...)
	}
}

// fail records the first error and wakes everyone.
func (p *Pusher) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Err returns the sticky session error, if any.
func (p *Pusher) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Stats returns a snapshot of the session counters.
func (p *Pusher) Stats() PusherStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Push enqueues updates, blocking only while the bounded buffer is full
// (backpressure: a slow daemon slows the producer; nothing is dropped).
// It returns the sticky session error, under which nothing further is
// enqueued.
func (p *Pusher) Push(updates []stream.Update) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, u := range updates {
		for p.err == nil && !p.closed && len(p.buf) >= p.cfg.MaxBuffered {
			p.cond.Wait()
		}
		if p.err != nil {
			return p.err
		}
		if p.closed {
			return fmt.Errorf("daemon: push on closed Pusher")
		}
		if len(p.buf) == 0 {
			p.armTimerLocked()
		}
		p.buf = append(p.buf, u)
		p.stats.Enqueued++
		if len(p.buf) >= p.cfg.MaxBatch {
			p.cond.Broadcast()
		}
	}
	return p.err
}

// armTimerLocked (re)arms the age flush for a newly started batch.
func (p *Pusher) armTimerLocked() {
	p.flushDue = false
	if p.timer == nil {
		p.timer = time.AfterFunc(p.cfg.FlushEvery, func() {
			p.mu.Lock()
			p.flushDue = true
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		return
	}
	p.timer.Reset(p.cfg.FlushEvery)
}

// Flush sends everything buffered and waits until the daemon has acked
// it all (stream) or every request returned (JSON), then reports the
// sticky error if any.
func (p *Pusher) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushReq = true
	p.cond.Broadcast()
	for p.err == nil && (len(p.buf) > 0 || p.unacked > 0) {
		p.cond.Wait()
	}
	return p.err
}

// Close flushes, tears the session down, and reports the sticky error.
// A drain announced by the daemon after everything was acked is a clean
// close; with updates still unacked it surfaces as an ErrDraining-
// wrapped error naming how much must be redelivered. Close is
// idempotent.
func (p *Pusher) Close() error {
	flushErr := p.Flush()
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		if p.timer != nil {
			p.timer.Stop()
		}
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	<-p.workerEnd
	if p.sc != nil {
		_ = p.sc.conn.Close()
		<-p.readerEnd
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if flushErr != nil {
		return flushErr
	}
	return p.err
}

// worker drains the buffer into the transport: full batches
// immediately, partial ones on age, explicit Flush, or Close.
func (p *Pusher) worker() {
	defer close(p.workerEnd)
	for {
		p.mu.Lock()
		for p.err == nil && !p.closed &&
			len(p.buf) < p.cfg.MaxBatch && !(len(p.buf) > 0 && (p.flushDue || p.flushReq)) {
			if len(p.buf) == 0 && p.flushReq && p.unacked == 0 {
				p.flushReq = false
				p.cond.Broadcast()
			}
			p.cond.Wait()
		}
		if p.err != nil || (p.closed && len(p.buf) == 0) {
			p.mu.Unlock()
			return
		}
		// Classify why this batch is leaving the queue, for the
		// flushes-by-cause stats: a full batch wins over any pending
		// flush request, close over request, request over the age timer.
		switch {
		case len(p.buf) >= p.cfg.MaxBatch:
			p.stats.FlushSize++
		case p.closed:
			p.stats.FlushClose++
		case p.flushReq:
			p.stats.FlushRequest++
		default:
			p.stats.FlushAge++
		}
		n := len(p.buf)
		if n > p.cfg.MaxBatch {
			n = p.cfg.MaxBatch
		}
		batch := make([]stream.Update, n)
		copy(batch, p.buf)
		rest := copy(p.buf, p.buf[n:])
		p.buf = p.buf[:rest]
		if len(p.buf) > 0 {
			p.armTimerLocked()
		} else {
			p.flushDue = false
		}
		p.unacked += n
		p.stats.Sent += uint64(n)
		p.stats.Frames++
		// Stream transport: respect the in-flight window before writing.
		if p.sc != nil {
			for p.err == nil && len(p.pending) >= p.cfg.MaxInFlight {
				p.cond.Wait()
			}
			if p.err != nil {
				p.mu.Unlock()
				return
			}
			p.nextSeq++
			seq := p.nextSeq
			p.pending[seq] = n
			p.mu.Unlock()
			if err := p.sendFrame(seq, batch); err != nil {
				p.fail(err)
				return
			}
			continue
		}
		p.mu.Unlock()
		if err := p.c.PushContext(p.ctx, batch); err != nil {
			p.fail(err)
			return
		}
		p.mu.Lock()
		p.unacked -= n
		p.stats.Acked += uint64(n)
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// sendFrame writes one frame and refreshes the ack-stall deadline.
func (p *Pusher) sendFrame(seq uint64, batch []stream.Update) error {
	_ = p.sc.conn.SetWriteDeadline(time.Now().Add(p.cfg.AckTimeout))
	if err := wire.WriteFrame(p.sc.bw, wire.AppendIngestFrame(p.fp, seq, batch)); err != nil {
		return fmt.Errorf("daemon: stream send: %w", err)
	}
	if err := p.sc.bw.Flush(); err != nil {
		return fmt.Errorf("daemon: stream send: %w", err)
	}
	return nil
}

// readAcks consumes the daemon's ack stream, releasing window slots and
// waking Flush. The read deadline doubles as a stall detector: while
// frames are in flight, no ack within AckTimeout is an error; while
// idle, the deadline just re-arms.
func (p *Pusher) readAcks() {
	defer close(p.readerEnd)
	for {
		_ = p.sc.conn.SetReadDeadline(time.Now().Add(p.cfg.AckTimeout))
		payload, err := wire.ReadFrame(p.sc.br, wire.MaxIngestAckBytes)
		if err != nil {
			p.mu.Lock()
			inflight := len(p.pending)
			closed := p.closed
			p.mu.Unlock()
			if isTimeout(err) && inflight == 0 && !closed {
				continue // idle; re-arm
			}
			if !closed {
				p.fail(fmt.Errorf("daemon: stream ack: %w", err))
			}
			return
		}
		ack, err := wire.UnmarshalIngestAck(payload, p.fp)
		if err != nil {
			p.fail(fmt.Errorf("daemon: stream ack: %w", err))
			return
		}
		switch ack.Status {
		case wire.IngestAckOK:
			p.mu.Lock()
			if n, ok := p.pending[ack.Seq]; ok {
				delete(p.pending, ack.Seq)
				p.unacked -= n
				p.stats.Acked += uint64(n)
			}
			p.ackedSeq = ack.Seq
			p.stats.Total = ack.Total
			p.cond.Broadcast()
			p.mu.Unlock()
		case wire.IngestAckDraining:
			p.mu.Lock()
			// Everything up to ack.Seq survived; anything after it (and
			// the buffer) must be redelivered after the restart.
			for seq, n := range p.pending {
				if seq <= ack.Seq {
					delete(p.pending, seq)
					p.unacked -= n
					p.stats.Acked += uint64(n)
				}
			}
			p.ackedSeq = ack.Seq
			p.stats.Total = ack.Total
			p.draining = true
			lost := p.unacked + len(p.buf)
			if p.err == nil {
				if lost == 0 {
					// Clean cut: every update we sent is durable. Treat
					// as end-of-session, not an error, unless more work
					// arrives (Push after this fails below).
					p.err = nil
					p.closed = true
				} else {
					p.err = fmt.Errorf("daemon: %w after acking %d updates; %d unacked updates must be redelivered: %s",
						ErrDraining, p.stats.Acked, lost, ack.Msg)
				}
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		default:
			p.fail(fmt.Errorf("daemon: stream rejected frame %d: %s", ack.Seq, ack.Msg))
			return
		}
	}
}

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// streamConn is the client end of one upgraded /v1/stream connection.
type streamConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// dialStream dials the daemon and upgrades the connection to the
// framed streaming protocol (POST /v1/stream, 101 Switching
// Protocols). The handshake is bounded by ctx (or the client timeout);
// the resulting connection has no deadline — the Pusher manages its
// own.
func (c *Client) dialStream(ctx context.Context) (*streamConn, error) {
	u, err := url.Parse(c.base)
	if err != nil {
		return nil, fmt.Errorf("daemon: stream dial: %w", err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("daemon: the stream transport needs an http base URL, got %q", c.base)
	}
	host := u.Host
	if !strings.Contains(host, ":") {
		host += ":80"
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("daemon: stream dial: %w", err)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Now().Add(c.timeout))
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/stream", nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", StreamProtocol)
	if err := req.Write(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("daemon: stream handshake: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, req)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("daemon: stream handshake: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		err := fmt.Errorf("daemon: stream refused: %s", resp.Status)
		if resp.StatusCode == http.StatusServiceUnavailable {
			err = fmt.Errorf("daemon: stream refused: %s (daemon draining)", resp.Status)
		}
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	return &streamConn{conn: conn, br: br, bw: bufio.NewWriter(conn)}, nil
}
