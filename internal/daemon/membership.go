package daemon

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/backend"
)

// Membership defaults, used when MembershipConfig fields are zero.
const (
	// DefaultHeartbeat is the liveness-probe cadence.
	DefaultHeartbeat = 2 * time.Second
	// DefaultPullEvery is the aggregate-rebuild (snapshot pull) cadence.
	DefaultPullEvery = 10 * time.Second
	// DefaultMaxMisses is how many consecutive probe failures mark a
	// worker down.
	DefaultMaxMisses = 3
	// DefaultPullRetries is how many snapshot fetch attempts each worker
	// gets per pull round.
	DefaultPullRetries = 3
	// DefaultPullBackoff is the delay before the first snapshot retry;
	// it doubles per attempt.
	DefaultPullBackoff = 100 * time.Millisecond
)

// MemberInfo is one worker's membership record as served by
// GET /v1/members.
type MemberInfo struct {
	// Addr is the worker's base URL as registered.
	Addr string `json:"addr"`
	// Alive is false once the worker has missed MaxMisses consecutive
	// heartbeats; it flips back on the first successful probe.
	Alive bool `json:"alive"`
	// Misses counts consecutive failed probes.
	Misses int `json:"misses"`
	// LastSeen is the wall-clock time of the last successful probe.
	LastSeen time.Time `json:"last_seen,omitempty"`
	// LastPull is the wall-clock time of the last successful snapshot
	// pull.
	LastPull time.Time `json:"last_pull,omitempty"`
	// HasSnapshot reports whether the coordinator holds a snapshot for
	// this worker. A down worker's last snapshot keeps contributing to
	// the aggregate until the worker returns.
	HasSnapshot bool `json:"has_snapshot"`
}

// member pairs the served record with the worker's last good snapshot
// and the ingest total the worker reported alongside it (the
// gsumd_aggregate_ingested_updates gauge sums these at each rebuild).
type member struct {
	info     MemberInfo
	snap     []byte
	ingested uint64
}

// MembershipConfig parameterizes the coordinator's heartbeat and
// auto-pull loops. Zero fields take the Default* constants; a zero
// Timeout takes DefaultTimeout.
type MembershipConfig struct {
	Heartbeat time.Duration
	PullEvery time.Duration
	MaxMisses int
	Retries   int
	Backoff   time.Duration
	// Timeout bounds every probe and snapshot request individually, so
	// one hung worker delays a round by at most Timeout instead of
	// stalling the loop forever.
	Timeout time.Duration
	// Logf (nil = silent) receives one line per state transition and
	// per failed pull.
	Logf func(format string, args ...interface{})
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.PullEvery <= 0 {
		c.PullEvery = DefaultPullEvery
	}
	if c.MaxMisses <= 0 {
		c.MaxMisses = DefaultMaxMisses
	}
	if c.Retries <= 0 {
		c.Retries = DefaultPullRetries
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultPullBackoff
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// Membership is the coordinator-side worker registry: workers announce
// themselves via POST /v1/register (or are seeded from -pull-from), the
// heartbeat loop probes each one through the Spec-fingerprint handshake
// (liveness and drift in one check), and the pull loop periodically
// fetches every live worker's snapshot and rebuilds the coordinator's
// aggregate from the full set — replace, not accumulate, so repeated
// pulls never double-count a worker's stream.
//
// Every Server carries a Membership (registration always works); the
// loops only run after Start.
type Membership struct {
	srv *Server

	mu      sync.Mutex
	members map[string]*member

	loopMu sync.Mutex
	cfg    MembershipConfig
	stop   chan struct{}
	done   chan struct{}
}

func newMembership(srv *Server) *Membership {
	return &Membership{srv: srv, members: make(map[string]*member)}
}

// Membership returns the server's worker registry.
func (s *Server) Membership() *Membership { return s.members }

// Add registers a worker base URL (idempotent). New members start
// alive; the first missed heartbeats will demote them.
func (m *Membership) Add(addr string) error {
	u, err := url.Parse(addr)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("daemon: register: %q is not an absolute base URL", addr)
	}
	m.mu.Lock()
	if _, ok := m.members[addr]; !ok {
		m.members[addr] = &member{info: MemberInfo{Addr: addr, Alive: true}}
	}
	m.mu.Unlock()
	m.updateGauges()
	return nil
}

// Members returns the registry sorted by address.
func (m *Membership) Members() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, mem.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Start launches the heartbeat and auto-pull loops. It is a no-op if
// the loops are already running.
func (m *Membership) Start(cfg MembershipConfig) {
	m.loopMu.Lock()
	defer m.loopMu.Unlock()
	if m.stop != nil {
		return
	}
	m.cfg = cfg.withDefaults()
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.run()
}

// Stop halts the loops and waits for them to drain. Idempotent.
func (m *Membership) Stop() {
	m.loopMu.Lock()
	defer m.loopMu.Unlock()
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop, m.done = nil, nil
}

func (m *Membership) run() {
	defer close(m.done)
	beat := time.NewTicker(m.cfg.Heartbeat)
	defer beat.Stop()
	pull := time.NewTicker(m.cfg.PullEvery)
	defer pull.Stop()
	for {
		select {
		case <-beat.C:
			m.ProbeAll()
		case <-pull.C:
			if err := m.PullAll(); err != nil {
				m.cfg.Logf("membership: pull: %v", err)
			}
		case <-m.stop:
			return
		}
	}
}

// client returns a per-member client whose every request carries the
// configured deadline.
func (m *Membership) client(addr string) *Client {
	return NewClient(addr, &http.Client{Timeout: m.cfg.Timeout})
}

// ProbeAll heartbeats every member once through the Spec-fingerprint
// handshake and updates alive/miss state. A drifted worker (409) counts
// as a miss like a dead one: its snapshots would be refused anyway, and
// the log line says why.
func (m *Membership) ProbeAll() {
	cfg := m.cfg
	for _, addr := range m.addrs() {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
		err := m.client(addr).CheckSpecContext(ctx, m.srv.fp)
		cancel()
		m.mu.Lock()
		mem, ok := m.members[addr]
		if !ok {
			m.mu.Unlock()
			continue
		}
		if err == nil {
			if !mem.info.Alive {
				cfg.Logf("membership: worker %s is back", addr)
				m.srv.obs.memberUp.Inc()
			}
			mem.info.Alive = true
			mem.info.Misses = 0
			mem.info.LastSeen = time.Now()
		} else {
			mem.info.Misses++
			if mem.info.Alive && mem.info.Misses >= cfg.MaxMisses {
				mem.info.Alive = false
				cfg.Logf("membership: worker %s marked down after %d misses (last: %v)",
					addr, mem.info.Misses, err)
				m.srv.obs.memberDown.Inc()
			}
		}
		m.mu.Unlock()
	}
	m.updateGauges()
}

// updateGauges refreshes the membership size gauges from the registry.
func (m *Membership) updateGauges() {
	m.mu.Lock()
	total, alive := len(m.members), 0
	for _, mem := range m.members {
		if mem.info.Alive {
			alive++
		}
	}
	m.mu.Unlock()
	m.srv.obs.membersTotal.Set(float64(total))
	m.srv.obs.membersAlive.Set(float64(alive))
}

// PullAll fetches a snapshot from every live member (with per-request
// deadlines and exponential-backoff retries), keeps each member's last
// good snapshot, and rebuilds the coordinator's aggregate from the full
// snapshot set. Because the rebuild starts from a fresh estimator, a
// pull round is idempotent: pulling an unchanged fleet twice yields the
// same aggregate, and a worker that restarted from its checkpoint is
// simply re-read. Down members contribute their last-known snapshot, so
// a crashed worker's checkpointed stream prefix stays in the estimate
// while it restarts.
func (m *Membership) PullAll() (err error) {
	defer func() {
		if err != nil {
			m.srv.obs.pullErr.Inc()
		} else {
			m.srv.obs.pullOK.Inc()
		}
	}()
	cfg := m.cfg
	for _, addr := range m.addrs() {
		m.mu.Lock()
		mem, ok := m.members[addr]
		alive := ok && mem.info.Alive
		m.mu.Unlock()
		if !alive {
			continue
		}
		snap, ingested, err := m.fetchSnapshot(addr)
		m.mu.Lock()
		if mem, ok := m.members[addr]; ok {
			if err == nil {
				mem.snap = snap
				mem.ingested = ingested
				mem.info.HasSnapshot = true
				mem.info.LastPull = time.Now()
			} else {
				cfg.Logf("membership: pull %s: %v (keeping last snapshot)", addr, err)
			}
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	snaps := make([][]byte, 0, len(m.members))
	var ingested uint64
	for _, mem := range m.members {
		if mem.info.HasSnapshot {
			snaps = append(snaps, mem.snap)
			ingested += mem.ingested
		}
	}
	m.mu.Unlock()
	if len(snaps) == 0 {
		return nil
	}
	start := time.Now()
	err = m.srv.rebuildFrom(snaps)
	m.srv.obs.rebuildSeconds.Observe(time.Since(start).Seconds())
	if err == nil {
		// The gauge moves only on a successful rebuild, so it reports
		// what is actually inside the aggregate. Worker ingest counters
		// are monotone, and a rebuild folds every retained snapshot
		// exactly once — so this gauge is monotone too, and the soak
		// harness asserts exactly that from the scrape.
		m.srv.obs.aggregateIngested.Set(float64(ingested))
	}
	return err
}

// fetchSnapshot pulls one worker's snapshot with retries: each attempt
// has its own deadline, and the delay between attempts doubles from
// cfg.Backoff. Alongside the snapshot it reads the worker's ingest
// total from /v1/config — the per-member figure behind the
// gsumd_aggregate_ingested_updates gauge. The config read is taken
// BEFORE the snapshot, so the recorded total never exceeds what the
// snapshot contains and the gauge stays a lower bound on aggregated
// updates (and therefore monotone).
func (m *Membership) fetchSnapshot(addr string) ([]byte, uint64, error) {
	cfg := m.cfg
	c := m.client(addr)
	var lastErr error
	delay := cfg.Backoff
	for attempt := 0; attempt < cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
		info, err := c.ConfigContext(ctx)
		var snap []byte
		if err == nil {
			snap, err = c.SnapshotContext(ctx)
		}
		cancel()
		if err == nil {
			return snap, info.Ingested, nil
		}
		lastErr = err
	}
	return nil, 0, lastErr
}

// addrs snapshots the member addresses so loops iterate without holding
// the lock across network calls.
func (m *Membership) addrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.members))
	for addr := range m.members {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// rebuildFrom replaces the server's estimator with a fresh one holding
// exactly the merge of the given snapshots. For the window kind the
// fresh estimator is advanced to the live clock first so the snapshots'
// tick checks line up. The swap happens only if every snapshot decodes;
// one bad snapshot aborts the round with the old aggregate intact.
//
// A coordinator running auto-pull is a query surface: state it absorbed
// through direct /v1/ingest or /v1/merge calls is superseded at the
// next rebuild (the ingest counter tracks direct ingests only and is
// left untouched).
func (s *Server) rebuildFrom(snaps [][]byte) error {
	fresh, err := backend.Open(s.spec)
	if err != nil {
		return fmt.Errorf("daemon: rebuild: %w", err)
	}
	s.mu.Lock()
	if win, ok := s.est.(backend.Windowed); ok {
		fresh.(backend.Windowed).Advance(win.Now())
	}
	s.mu.Unlock()
	for _, snap := range snaps {
		if err := fresh.UnmarshalBinary(snap); err != nil {
			return fmt.Errorf("daemon: rebuild: %w", err)
		}
	}
	s.mu.Lock()
	s.est = fresh
	s.mu.Unlock()
	return nil
}

// RegisterRequest is the POST /v1/register body: the worker's base URL
// as reachable from the coordinator.
type RegisterRequest struct {
	Addr string `json:"addr"`
}
