package daemon

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/metrics"
	"repro/internal/window"
)

// scrape fetches and parses a daemon's /metrics over HTTP — the same
// path an operator's Prometheus would take.
func scrape(t *testing.T, base string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	sc, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func mustValue(t *testing.T, sc *metrics.Scrape, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, ok := sc.Value(name, labels...)
	if !ok {
		t.Fatalf("metric %s%v missing or ambiguous", name, labels)
	}
	return v
}

// TestMetricsEndpointCountsIngest pins the contract the soak harness
// depends on: ingest totals per transport, the batch-size histogram,
// and the estimate/space gauges are all derivable from one scrape.
func TestMetricsEndpointCountsIngest(t *testing.T) {
	s := testStream(11)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(4)}
	srv, c := streamServer(t, spec)

	if err := c.Push(s.Updates()[:100]); err != nil {
		t.Fatal(err)
	}
	if err := srv.IngestBatch(s.Updates()[100:150]); err != nil {
		t.Fatal(err)
	}
	p, err := c.NewPusher(context.Background(), PusherConfig{Stream: true, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(s.Updates()[150:406]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	sc := scrape(t, c.Base())
	jsonL := metrics.Label{Key: "transport", Value: "json"}
	inprocL := metrics.Label{Key: "transport", Value: "inprocess"}
	streamL := metrics.Label{Key: "transport", Value: "stream"}
	if v := mustValue(t, sc, "gsumd_ingest_updates_total", jsonL); v != 100 {
		t.Fatalf("json updates = %v, want 100", v)
	}
	if v := mustValue(t, sc, "gsumd_ingest_updates_total", inprocL); v != 50 {
		t.Fatalf("inprocess updates = %v, want 50", v)
	}
	if v := mustValue(t, sc, "gsumd_ingest_updates_total", streamL); v != 256 {
		t.Fatalf("stream updates = %v, want 256", v)
	}
	// Acks are durability receipts: after a clean Close every applied
	// stream update has been acked — the soak harness's first invariant.
	if acked := mustValue(t, sc, "gsumd_stream_acked_updates_total"); acked != 256 {
		t.Fatalf("acked stream updates = %v, want 256", acked)
	}
	if frames := mustValue(t, sc, "gsumd_stream_acked_frames_total"); frames != 4 {
		t.Fatalf("acked frames = %v, want 4 (256 updates at MaxBatch 64)", frames)
	}
	if v := mustValue(t, sc, "gsumd_ingested_updates"); v != 406 {
		t.Fatalf("ingest counter gauge = %v, want 406", v)
	}
	if v := mustValue(t, sc, "gsumd_ingest_batch_size_count"); v < 3 {
		t.Fatalf("batch size histogram count = %v, want >= 3", v)
	}
	// The server-side loop notices the close (EOF) asynchronously after
	// the client's Close returns, so the live-connection gauge drains
	// shortly after rather than instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := mustValue(t, sc, "gsumd_stream_connections"); v == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("live stream connections = %v, want 0 after Close", v)
		}
		time.Sleep(10 * time.Millisecond)
		sc = scrape(t, c.Base())
	}
	if v := mustValue(t, sc, "gsumd_stream_connections_total"); v != 1 {
		t.Fatalf("total stream connections = %v, want 1", v)
	}
	if v := mustValue(t, sc, "gsumd_goroutines"); v <= 0 {
		t.Fatalf("goroutine gauge = %v", v)
	}
	if v := mustValue(t, sc, "gsumd_space_bytes"); v <= 0 {
		t.Fatalf("space gauge = %v", v)
	}

	// The estimate gauge must match what /v1/estimate answers.
	resp, err := c.Estimate(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := resp.Value()
	if v := mustValue(t, sc, "gsumd_estimate"); v != want {
		t.Fatalf("estimate gauge = %v, /v1/estimate = %v", v, want)
	}
}

// TestMetricsEstimateLatencyObserved: querying populates the handler
// latency histograms.
func TestMetricsLatencyHistogramsPopulated(t *testing.T) {
	s := testStream(13)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(6)}
	cc := cluster(t, spec, s)
	sc := scrape(t, cc.Base())
	if v := mustValue(t, sc, "gsumd_merge_seconds_count"); v != 2 {
		t.Fatalf("merge histogram count = %v, want 2 (two workers pulled)", v)
	}
	if _, err := cc.Estimate(url.Values{}); err != nil {
		t.Fatal(err)
	}
	sc = scrape(t, cc.Base())
	if v := mustValue(t, sc, "gsumd_estimate_seconds_count"); v < 1 {
		t.Fatalf("estimate histogram count = %v, want >= 1", v)
	}
}

// TestWindowMetricsGauges: the window kind exposes its clock and
// realized staleness as gauges.
func TestWindowMetricsGauges(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindWindow, G: "x^2", Options: testOptions(8),
		Window: window.Config{W: 4}}
	_, c := streamServer(t, spec)
	if _, err := c.Advance(9); err != nil {
		t.Fatal(err)
	}
	sc := scrape(t, c.Base())
	if v := mustValue(t, sc, "gsumd_window_tick"); v != 9 {
		t.Fatalf("window tick gauge = %v, want 9", v)
	}
	if !sc.Has("gsumd_window_stale_ticks") {
		t.Fatal("no stale-ticks gauge")
	}
	if v := mustValue(t, sc, "gsumd_advance_seconds_count"); v != 1 {
		t.Fatalf("advance histogram count = %v, want 1", v)
	}
}

// TestHotpathMetricsGauges: a daemon on the sharded kind exposes the
// ring instrumentation, and a daemon on any other kind does not.
func TestHotpathMetricsGauges(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindSharded, G: "x^2", Workers: 2, Options: testOptions(12)}
	srv, c := streamServer(t, spec)
	s := testStream(12)
	if err := srv.IngestBatch(s.Updates()[:100]); err != nil {
		t.Fatal(err)
	}
	sc := scrape(t, c.Base())
	if v := mustValue(t, sc, "gsumd_hotpath_shards"); v != 2 {
		t.Fatalf("shards gauge = %v, want 2", v)
	}
	if v := mustValue(t, sc, "gsumd_hotpath_ring_depth"); v <= 0 {
		t.Fatalf("ring depth gauge = %v", v)
	}
	if v := mustValue(t, sc, "gsumd_hotpath_ring_occupancy"); v != 0 {
		t.Fatalf("occupancy gauge = %v outside Process, want 0", v)
	}
	for _, name := range []string{"gsumd_hotpath_batches", "gsumd_hotpath_updates",
		"gsumd_hotpath_producer_stalls", "gsumd_hotpath_consumer_stalls"} {
		if !sc.Has(name) {
			t.Fatalf("no %s gauge", name)
		}
	}

	plain := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(12)}
	_, pc := streamServer(t, plain)
	if scrape(t, pc.Base()).Has("gsumd_hotpath_shards") {
		t.Fatal("onepass daemon exposes hotpath gauges")
	}
}

// TestHealthzReadyzLifecycle pins the readiness contract: healthz is
// liveness (always 200), readyz flips 503 -> 200 with SetReady and back
// to 503 once the drain begins.
func TestHealthzReadyzLifecycle(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(10)}
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before ready = %d", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady = %d, want 503", got)
	}
	sc := scrape(t, ts.URL)
	if v := mustValue(t, sc, "gsumd_ready"); v != 0 {
		t.Fatalf("ready gauge before SetReady = %v", v)
	}

	srv.SetReady(true)
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after SetReady = %d, want 200", got)
	}
	sc = scrape(t, ts.URL)
	if v := mustValue(t, sc, "gsumd_ready"); v != 1 {
		t.Fatalf("ready gauge after SetReady = %v", v)
	}

	// Draining trumps readiness: a load balancer must stop routing the
	// moment the drain begins, even though healthz stays 200.
	if err := srv.DrainStreams(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining = %d", got)
	}
}

// TestCheckpointMetrics: a checkpoint write populates duration, size,
// and result counters.
func TestCheckpointMetrics(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(12)}
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + CheckpointName
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := scrape(t, ts.URL)
	okL := metrics.Label{Key: "result", Value: "ok"}
	if v := mustValue(t, sc, "gsumd_checkpoint_writes_total", okL); v != 1 {
		t.Fatalf("checkpoint ok counter = %v, want 1", v)
	}
	if v := mustValue(t, sc, "gsumd_checkpoint_bytes"); v <= 0 {
		t.Fatalf("checkpoint bytes gauge = %v", v)
	}
	if v := mustValue(t, sc, "gsumd_checkpoint_seconds_count"); v != 1 {
		t.Fatalf("checkpoint histogram count = %v, want 1", v)
	}
	// A failed write (unwritable directory) lands on the error counter.
	if err := srv.WriteCheckpoint("/nonexistent-dir/nope/" + CheckpointName); err == nil {
		t.Fatal("expected write into a missing directory to fail")
	}
	sc = scrape(t, ts.URL)
	errL := metrics.Label{Key: "result", Value: "error"}
	if v := mustValue(t, sc, "gsumd_checkpoint_writes_total", errL); v != 1 {
		t.Fatalf("checkpoint error counter = %v, want 1", v)
	}
}

// TestPusherMetrics: a Pusher registered against a client-side registry
// exposes queue depth, in-flight frames, and flushes by cause.
func TestPusherMetrics(t *testing.T) {
	s := testStream(17)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(14)}
	_, c := streamServer(t, spec)
	reg := metrics.New()
	p, err := c.NewPusher(context.Background(), PusherConfig{
		Stream: true, MaxBatch: 64,
		Metrics: reg, Labels: []metrics.Label{{Key: "worker", Value: "w0"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(s.Updates()[:200]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := metrics.Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	wL := metrics.Label{Key: "worker", Value: "w0"}
	if v := mustValue(t, sc, "gsum_pusher_acked_updates", wL); v != 200 {
		t.Fatalf("acked gauge = %v, want 200", v)
	}
	if v := mustValue(t, sc, "gsum_pusher_queue_depth", wL); v != 0 {
		t.Fatalf("queue depth after Close = %v, want 0", v)
	}
	if v := mustValue(t, sc, "gsum_pusher_inflight_frames", wL); v != 0 {
		t.Fatalf("in-flight after Close = %v, want 0", v)
	}
	// 200 updates at MaxBatch 64: three size flushes plus one final
	// drain of the 8-update remainder.
	st := p.Stats()
	if st.FlushSize != 3 {
		t.Fatalf("size flushes = %d, want 3 (stats %+v)", st.FlushSize, st)
	}
	if st.FlushRequest+st.FlushClose != 1 {
		t.Fatalf("final partial batch should flush by request/close once, stats %+v", st)
	}
	sizeL := metrics.Label{Key: "cause", Value: "size"}
	if v := mustValue(t, sc, "gsum_pusher_flushes", wL, sizeL); v != 3 {
		t.Fatalf("size-flush gauge = %v, want 3", v)
	}
}
