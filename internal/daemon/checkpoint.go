package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/wire"
)

// checkpointMagic stamps the gCKP checkpoint file: a wire header whose
// fingerprint is the daemon's Spec fingerprint, the window clock (0 for
// clockless kinds), the ingest counter, and the estimator snapshot as a
// length-framed blob. The Spec fingerprint in the header is what lets a
// restarting daemon refuse a checkpoint written under a different
// configuration before any sketch state is touched.
const checkpointMagic uint32 = 0x67434b50 // "gCKP"

// CheckpointName is the file a daemon keeps its checkpoint under inside
// its -state-dir.
const CheckpointName = "checkpoint.gsum"

// CheckpointPath returns the checkpoint file path inside stateDir.
func CheckpointPath(stateDir string) string {
	return filepath.Join(stateDir, CheckpointName)
}

// checkpointBytes serializes the daemon's durable state under the state
// lock: Spec fingerprint, window clock, ingest counter, and the wire
// snapshot of the estimator.
func (s *Server) checkpointBytes() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.est.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("daemon: checkpoint snapshot: %w", err)
	}
	var tick uint64
	if win, ok := s.est.(backend.Windowed); ok {
		tick = win.Now()
	}
	var w wire.Writer
	w.Header(checkpointMagic, s.fp)
	w.U64(tick)
	w.U64(s.ingests)
	w.Blob(snap)
	return w.Bytes(), nil
}

// WriteCheckpoint atomically persists the daemon's state to path: the
// bytes land in a temporary file in the same directory, are fsynced, and
// only then renamed over path, so a crash mid-write leaves the previous
// checkpoint intact and a reader never sees a torn file.
func (s *Server) WriteCheckpoint(path string) (err error) {
	start := time.Now()
	defer func() {
		s.obs.checkpointSeconds.Observe(time.Since(start).Seconds())
		if err != nil {
			s.obs.checkpointErr.Inc()
		} else {
			s.obs.checkpointOK.Inc()
		}
	}()
	data, err := s.checkpointBytes()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, CheckpointName+".tmp-*")
	if err != nil {
		return fmt.Errorf("daemon: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("daemon: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("daemon: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("daemon: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("daemon: checkpoint rename: %w", err)
	}
	s.obs.checkpointBytes.Set(float64(len(data)))
	return nil
}

// RestoreCheckpoint replaces the daemon's state with the checkpoint at
// path. The checkpoint's Spec fingerprint must match the daemon's —
// a stale or drifted checkpoint (different seed, dimensions, or kind) is
// refused with both fingerprints in the error and the in-memory state
// untouched. A missing file is returned as os.ErrNotExist so callers can
// treat it as a fresh start.
//
// Restoration is replace, not merge: the snapshot is decoded into a
// freshly opened estimator (advanced to the checkpoint's window clock
// first, for the window kind) which is swapped in whole, so restoring
// twice is idempotent.
func (s *Server) RestoreCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	r := wire.NewReader(data)
	if err := r.Header(checkpointMagic, s.fp); err != nil {
		return fmt.Errorf("daemon: refusing checkpoint %s: %w", path, err)
	}
	tick := r.U64()
	ingests := r.U64()
	snap := r.Blob()
	if err := r.Err(); err != nil {
		return fmt.Errorf("daemon: corrupt checkpoint %s: %w", path, err)
	}
	fresh, err := backend.Open(s.spec)
	if err != nil {
		return fmt.Errorf("daemon: restore: %w", err)
	}
	if win, ok := fresh.(backend.Windowed); ok && tick > 0 {
		win.Advance(tick)
	}
	if err := fresh.UnmarshalBinary(snap); err != nil {
		return fmt.Errorf("daemon: corrupt checkpoint %s: %w", path, err)
	}
	s.mu.Lock()
	s.est = fresh
	s.ingests = ingests
	s.mu.Unlock()
	return nil
}

// Checkpointer periodically persists a Server's state to one checkpoint
// file. Stop halts the loop and writes a final checkpoint, which is how
// a draining daemon guarantees its last accepted updates survive the
// restart; between checkpoints a kill -9 loses at most one interval of
// updates (which the pusher re-delivers, exactly as it would any
// unacknowledged batch).
type Checkpointer struct {
	srv   *Server
	path  string
	every time.Duration
	logf  func(format string, args ...interface{})
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

// StartCheckpointer begins checkpointing srv to path every interval.
// logf (nil = silent) receives one line per failed write; a failure
// leaves the previous checkpoint in place and the loop keeps trying.
func StartCheckpointer(srv *Server, path string, every time.Duration, logf func(format string, args ...interface{})) *Checkpointer {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	c := &Checkpointer{srv: srv, path: path, every: every, logf: logf,
		stop: make(chan struct{}), done: make(chan struct{})}
	go c.run()
	return c
}

func (c *Checkpointer) run() {
	defer close(c.done)
	t := time.NewTicker(c.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := c.srv.WriteCheckpoint(c.path); err != nil {
				c.logf("checkpoint: %v", err)
			}
		case <-c.stop:
			return
		}
	}
}

// Stop halts the periodic loop and writes one final checkpoint,
// returning the final write's error. It is idempotent; only the first
// call writes.
func (c *Checkpointer) Stop() error {
	var err error
	c.once.Do(func() {
		close(c.stop)
		<-c.done
		err = c.srv.WriteCheckpoint(c.path)
	})
	return err
}
