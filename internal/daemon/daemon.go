package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/stream"
)

// maxBodyBytes caps request bodies (ingest batches and shard snapshots).
const maxBodyBytes = 64 << 20

// Server is one backend.Estimator behind the gsumd HTTP surface. The
// backend is resolved once through the registry (backend.Open); every
// endpoint then works against the unified Estimator contract plus its
// optional capabilities, so adding a sketch kind to the registry adds
// it to the daemon with no code here. Sketches are not goroutine-safe,
// so a mutex serializes state access; HTTP handlers are otherwise
// stateless.
type Server struct {
	mu      sync.Mutex
	spec    backend.Spec // normalized
	fp      uint64       // spec.Fingerprint(), served and checked by /v1/config
	est     backend.Estimator
	ingests uint64 // total updates absorbed, for /v1/config introspection

	// members is the coordinator-side worker registry (membership.go).
	// It has its own locking; the loops run only after Membership().Start.
	members *Membership

	// streams tracks live /v1/stream connections (stream.go). It has its
	// own locking; DrainStreams winds them down at shutdown.
	streams streamState

	// obs is the observability surface (observe.go): the /metrics
	// registry plus the readiness bits behind /readyz.
	obs      *serverMetrics
	ready    atomic.Bool
	draining atomic.Bool
}

// NewServer validates the spec through the registry and builds the
// estimator. The same Spec (seed included) must be given to every
// daemon that participates in one aggregation; /v1/config enforces it.
func NewServer(spec backend.Spec) (*Server, error) {
	n, err := spec.Normalize()
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	est, err := backend.Open(n)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	if _, ok := est.(backend.TwoPass); ok {
		// The HTTP surface has no finish-pass verb: ingest would only
		// ever feed pass 1 and /v1/estimate would serve an untabulated
		// value. Refuse at construction instead of answering garbage.
		return nil, fmt.Errorf("daemon: kind %q needs a stream replay between passes, which the HTTP surface cannot drive; use a single-pass kind", n.Kind)
	}
	s := &Server{spec: n, fp: n.Fingerprint(), est: est}
	s.members = newMembership(s)
	s.obs = newServerMetrics(s)
	return s, nil
}

// Spec returns the daemon's normalized Spec.
func (s *Server) Spec() backend.Spec { return s.spec }

// IngestBatch absorbs a batch in-process, with the same domain
// validation and counter bookkeeping as /v1/ingest — the loading path
// for embedders and benchmarks that do not need the HTTP round trip.
func (s *Server) IngestBatch(batch []stream.Update) error {
	n := s.spec.Options.N
	for i, u := range batch {
		if u.Item >= n {
			return fmt.Errorf("daemon: update %d: item %d outside domain [0,%d)", i, u.Item, n)
		}
	}
	s.mu.Lock()
	s.est.UpdateBatch(batch)
	s.ingests += uint64(len(batch))
	s.mu.Unlock()
	s.obs.ingested(transportInProcess, len(batch))
	return nil
}

// IngestRequest is the /v1/ingest body: updates as [item, delta] pairs.
type IngestRequest struct {
	Updates [][2]int64 `json:"updates"`
}

// ConfigInfo is the /v1/config response: the full normalized Spec, its
// fingerprint, and ingestion/space counters.
type ConfigInfo struct {
	Spec        backend.Spec `json:"spec"`
	Fingerprint uint64       `json:"fingerprint"`
	Ingested    uint64       `json:"ingested"`
	SpaceBytes  int          `json:"space_bytes"`
}

// CheckRequest is the POST /v1/config body: the sender's Spec
// fingerprint. The daemon answers 200 on a match and 409 Conflict
// otherwise — the pre-merge handshake that catches configuration drift
// before any snapshot ships.
type CheckRequest struct {
	Fingerprint uint64 `json:"fingerprint"`
}

// AdvanceRequest is the /v1/advance body: the tick to move the window
// clock to. Past ticks are a no-op (the clock never moves backward), so
// several pushers may synchronize by all posting the same tick.
type AdvanceRequest struct {
	Tick uint64 `json:"tick"`
}

// CoverEntry is one (item, frequency, weight) triple of a heavy-hitter
// cover, as served by /v1/estimate for CoverReporter kinds.
type CoverEntry struct {
	Item   uint64  `json:"item"`
	Freq   int64   `json:"freq"`
	Weight float64 `json:"weight"`
}

// EstimateResult is the typed /v1/estimate payload, shared by the
// server's encoder and Client.Estimate's decoder so neither side pokes
// at untyped JSON. Which fields are non-nil depends on the daemon
// kind's capabilities and the query:
//
//   - Estimate: the g-SUM (or windowed) estimate; nil only for cover
//     and bare-f2 responses.
//   - G: the catalog function the estimate is for (universal kinds).
//   - Item: echoed back for ?item= point queries, with the per-item
//     frequency estimate in Estimate.
//   - F2: a countsketch daemon's second-moment estimate when no ?item=
//     was given.
//   - Tick / Window / StaleTicks: the window kind's clock, window
//     length, and realized staleness.
//   - Cover / WeightSum: a heavy kind's cover entries and their total
//     weight.
type EstimateResult struct {
	Estimate   *float64     `json:"estimate,omitempty"`
	G          string       `json:"g,omitempty"`
	Item       *uint64      `json:"item,omitempty"`
	F2         *float64     `json:"f2,omitempty"`
	Tick       *uint64      `json:"tick,omitempty"`
	Window     *uint64      `json:"window,omitempty"`
	StaleTicks *uint64      `json:"stale_ticks,omitempty"`
	Cover      []CoverEntry `json:"cover,omitempty"`
	WeightSum  *float64     `json:"weight_sum,omitempty"`
}

// Value returns the scalar estimate and whether one is present (false
// for cover responses and bare-f2 countsketch responses).
func (r EstimateResult) Value() (float64, bool) {
	if r.Estimate == nil {
		return 0, false
	}
	return *r.Estimate, true
}

func f64p(v float64) *float64 { return &v }
func u64p(v uint64) *uint64   { return &v }

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", s.obs.reg)
	mux.HandleFunc("/v1/config", s.handleConfig)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/merge", s.handleMerge)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/advance", s.handleAdvance)
	mux.HandleFunc("/v1/register", s.handleRegister)
	mux.HandleFunc("/v1/members", s.handleMembers)
	return mux
}

// handleRegister adds a worker to the membership registry. Registration
// always succeeds on a well-formed base URL; whether the worker is
// actually reachable (and Spec-compatible) is the heartbeat loop's job.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad register body: %w", err))
		return
	}
	if err := s.members.Add(req.Addr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "registered", "members": len(s.members.Members())})
}

// handleMembers serves the membership registry.
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"members": s.members.Members()})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleConfig serves the Spec (GET) and verifies a peer's Spec
// fingerprint (POST): 200 on match, 409 Conflict on drift. Clients call
// the POST on every worker before pulling snapshots, so a mismatched
// deployment fails at handshake time with the two fingerprints in the
// error, not at merge time with a cryptic wire error.
func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		resp := ConfigInfo{Spec: s.spec, Fingerprint: s.fp,
			Ingested: s.ingests, SpaceBytes: s.est.SpaceBytes()}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		var req CheckRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad config check body: %w", err))
			return
		}
		if req.Fingerprint != s.fp {
			writeError(w, http.StatusConflict, fmt.Errorf(
				"spec fingerprint mismatch: peer %#x vs local %#x (different Spec; refusing before any snapshot is merged)",
				req.Fingerprint, s.fp))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "match"})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST only"))
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad ingest body: %w", err))
		return
	}
	n := s.spec.Options.N
	batch := make([]stream.Update, len(req.Updates))
	for i, p := range req.Updates {
		if p[0] < 0 {
			// A negative item is most likely a uint64 ID >= 2^63 that
			// wrapped the transport's int64; say so instead of reporting a
			// confusing domain failure (or, for huge domains, silently
			// misattributing the update to the wrong item).
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("update %d: item %d is negative (item IDs >= 2^63 exceed the JSON transport's int64 range and are rejected, not wrapped)", i, p[0]))
			return
		}
		if uint64(p[0]) >= n {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("update %d: item %d outside domain [0,%d)", i, p[0], n))
			return
		}
		batch[i] = stream.Update{Item: uint64(p[0]), Delta: p[1]}
	}
	s.mu.Lock()
	s.est.UpdateBatch(batch)
	s.ingests += uint64(len(batch))
	total := s.ingests
	s.mu.Unlock()
	s.obs.ingested(transportJSON, len(batch))
	writeJSON(w, http.StatusOK, map[string]uint64{"ingested": uint64(len(batch)), "total": total})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.Lock()
	data, err := s.est.MarshalBinary()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	// Read one byte past the cap so an oversize body is rejected whole
	// rather than truncated into a corrupt partial payload.
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(data) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("snapshot exceeds %d bytes", maxBodyBytes))
		return
	}
	start := time.Now()
	s.mu.Lock()
	err = s.est.UnmarshalBinary(data)
	s.mu.Unlock()
	s.obs.mergeSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		// A fingerprint/dimension mismatch is the client's fault: it shipped
		// a snapshot from a differently-configured daemon.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "merged"})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req AdvanceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad advance body: %w", err))
		return
	}
	win, ok := s.est.(backend.Windowed)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"daemon: kind %q summarizes the whole stream and has no tick clock; use the window kind", s.spec.Kind))
		return
	}
	start := time.Now()
	s.mu.Lock()
	// Arbitrarily large jumps are safe: window.Advance fast-forwards
	// across spans that expire everything instead of replaying each
	// elapsed tick, so a client posting wall-clock epoch ticks cannot
	// stall the daemon under its state lock.
	now := win.Advance(req.Tick)
	s.mu.Unlock()
	s.obs.advanceSeconds.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, map[string]uint64{"tick": now})
}

// handleEstimate answers /v1/estimate by capability, not by kind:
// ?item= point-queries a PointQuerier, ?g= post-hoc-queries a
// FuncQuerier, a CoverReporter returns its cover, a Windowed estimator
// reports its clock alongside the estimate, and everything else answers
// {"estimate": ...}.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	start := time.Now()
	s.mu.Lock()
	resp, err := s.estimate(r.URL.Query())
	s.mu.Unlock()
	s.obs.estimateSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) estimate(q url.Values) (EstimateResult, error) {
	if it := q.Get("item"); it != "" {
		pq, ok := s.est.(backend.PointQuerier)
		if !ok {
			return EstimateResult{}, fmt.Errorf("kind %q does not answer per-item point queries", s.spec.Kind)
		}
		item, err := strconv.ParseUint(it, 10, 64)
		if err != nil {
			return EstimateResult{}, fmt.Errorf("bad item %q: %w", it, err)
		}
		return EstimateResult{Item: u64p(item), Estimate: f64p(float64(pq.EstimateItem(item)))}, nil
	}
	if name := q.Get("g"); name != "" {
		fq, ok := s.est.(backend.FuncQuerier)
		if !ok {
			return EstimateResult{}, fmt.Errorf("kind %q was built for a fixed function and does not answer post-hoc ?g= queries", s.spec.Kind)
		}
		g, err := backend.CatalogFunc(name)
		if err != nil {
			return EstimateResult{}, err
		}
		return EstimateResult{G: name, Estimate: f64p(fq.EstimateFor(g))}, nil
	}
	switch e := s.est.(type) {
	case backend.CoverReporter:
		cover := e.Cover()
		entries := make([]CoverEntry, len(cover))
		for i, c := range cover {
			entries[i] = CoverEntry{Item: c.Item, Freq: c.Freq, Weight: c.Weight}
		}
		return EstimateResult{Cover: entries, WeightSum: f64p(cover.WeightSum())}, nil
	case backend.FuncQuerier:
		if s.spec.G == "" {
			_, err := backend.CatalogFunc("")
			return EstimateResult{}, fmt.Errorf("kind %q needs ?g=<name> (or a Spec.G default): %w", s.spec.Kind, err)
		}
		return EstimateResult{G: s.spec.G, Estimate: f64p(s.est.Estimate())}, nil
	case backend.PointQuerier:
		return EstimateResult{F2: f64p(e.EstimateF2())}, nil
	case backend.Windowed:
		return EstimateResult{
			Estimate:   f64p(s.est.Estimate()),
			Tick:       u64p(e.Now()),
			Window:     u64p(e.Config().W),
			StaleTicks: u64p(e.Stale()),
		}, nil
	default:
		return EstimateResult{Estimate: f64p(s.est.Estimate())}, nil
	}
}
