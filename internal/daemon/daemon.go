package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/window"
)

// maxBodyBytes caps request bodies (ingest batches and shard snapshots).
const maxBodyBytes = 64 << 20

// Config selects and parameterizes a backend. The same Config (and Seed)
// must be given to every daemon that participates in one aggregation.
type Config struct {
	// Backend is one of "countsketch", "heavy", "onepass", "universal",
	// "window".
	Backend string `json:"backend"`
	// G names the catalog function (heavy, onepass, and window backends;
	// ignored by countsketch; the default query function for universal).
	G string `json:"g,omitempty"`
	// N, M, Eps, Delta, Lambda, Seed parameterize the sketches exactly as
	// core.Options (estimator backends) or the raw dimensions below
	// (countsketch).
	N      uint64  `json:"n"`
	M      int64   `json:"m"`
	Eps    float64 `json:"eps,omitempty"`
	Delta  float64 `json:"delta,omitempty"`
	Lambda float64 `json:"lambda,omitempty"`
	Seed   uint64  `json:"seed"`
	// Envelope sizes the universal backend (max H(M) over the query
	// family); 0 measures it from G when set, else falls back to 1.
	Envelope float64 `json:"envelope,omitempty"`
	// Rows/Buckets/TopK size the countsketch backend directly.
	Rows    int    `json:"rows,omitempty"`
	Buckets uint64 `json:"buckets,omitempty"`
	TopK    int    `json:"topk,omitempty"`
	// Window (ticks) and WindowK (exponential-histogram capacity) size
	// the window backend: estimates cover the last Window ticks of the
	// /v1/advance clock. Every daemon in one windowed aggregation must
	// advance through the same tick sequence.
	Window  uint64 `json:"window,omitempty"`
	WindowK int    `json:"window_k,omitempty"`
}

// backend is one mergeable sketch behind the HTTP surface.
type backend interface {
	ingest(batch []stream.Update)
	snapshot() ([]byte, error)
	merge(data []byte) error
	estimate(q url.Values) (interface{}, error)
	spaceBytes() int
	// advance moves the backend's tick clock and returns the resulting
	// clock value (window backend only; the whole-stream backends have no
	// clock and return an error).
	advance(tick uint64) (uint64, error)
}

// Server wraps a backend with the gsumd HTTP surface. Sketches are not
// goroutine-safe, so a mutex serializes state access; HTTP handlers are
// otherwise stateless.
type Server struct {
	mu      sync.Mutex
	cfg     Config
	be      backend
	ingests uint64 // total updates absorbed, for /v1/config introspection
}

// catalogFunc resolves a catalog function by name.
func catalogFunc(name string) (gfunc.Func, error) {
	for _, e := range gfunc.Catalog() {
		if e.Func.Name() == name {
			return e.Func, nil
		}
	}
	return nil, fmt.Errorf("daemon: unknown catalog function %q", name)
}

// options maps Config onto core.Options.
func (c Config) options() core.Options {
	return core.Options{
		N: c.N, M: c.M, Eps: c.Eps, Delta: c.Delta,
		Lambda: c.Lambda, Seed: c.Seed, Envelope: c.Envelope,
	}
}

// NewServer validates cfg and builds the backend.
func NewServer(cfg Config) (*Server, error) {
	if cfg.N == 0 {
		return nil, fmt.Errorf("daemon: config needs a positive domain N")
	}
	var be backend
	switch cfg.Backend {
	case "countsketch":
		rows, buckets, topk := cfg.Rows, cfg.Buckets, cfg.TopK
		if rows == 0 {
			rows = 5
		}
		if buckets == 0 {
			buckets = 1 << 10
		}
		rng := util.NewSplitMix64(cfg.Seed)
		var cs *sketch.CountSketch
		if topk > 0 {
			cs = sketch.NewCountSketchTopK(rows, buckets, topk, rng)
		} else {
			cs = sketch.NewCountSketch(rows, buckets, rng)
		}
		be = &countSketchBackend{cs: cs}
	case "heavy":
		g, err := catalogFunc(cfg.G)
		if err != nil {
			return nil, err
		}
		be = newHeavyBackend(g, cfg)
	case "onepass":
		g, err := catalogFunc(cfg.G)
		if err != nil {
			return nil, err
		}
		be = &onePassBackend{est: core.NewOnePass(g, cfg.options())}
	case "window":
		g, err := catalogFunc(cfg.G)
		if err != nil {
			return nil, err
		}
		if cfg.Window == 0 {
			return nil, fmt.Errorf("daemon: window backend needs a positive window length (ticks)")
		}
		est, err := window.NewEstimator(g, cfg.options(),
			window.Config{W: cfg.Window, K: cfg.WindowK})
		if err != nil {
			return nil, err
		}
		be = &windowBackend{est: est}
	case "universal":
		opts := cfg.options()
		if opts.Envelope == 0 && cfg.G != "" {
			g, err := catalogFunc(cfg.G)
			if err != nil {
				return nil, err
			}
			m := uint64(cfg.M)
			if m < 4 {
				m = 4
			}
			opts.Envelope = gfunc.MeasureEnvelope(g, m).H()
		}
		be = &universalBackend{u: core.NewUniversal(opts)}
	default:
		return nil, fmt.Errorf("daemon: unknown backend %q (countsketch, heavy, onepass, universal, window)", cfg.Backend)
	}
	return &Server{cfg: cfg, be: be}, nil
}

// IngestRequest is the /v1/ingest body: updates as [item, delta] pairs.
type IngestRequest struct {
	Updates [][2]int64 `json:"updates"`
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/config", s.handleConfig)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/merge", s.handleMerge)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/advance", s.handleAdvance)
	return mux
}

// AdvanceRequest is the /v1/advance body: the tick to move the window
// clock to. Past ticks are a no-op (the clock never moves backward), so
// several pushers may synchronize by all posting the same tick.
type AdvanceRequest struct {
	Tick uint64 `json:"tick"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.Lock()
	resp := struct {
		Config
		Ingested   uint64 `json:"ingested"`
		SpaceBytes int    `json:"space_bytes"`
	}{s.cfg, s.ingests, s.be.spaceBytes()}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad ingest body: %w", err))
		return
	}
	batch := make([]stream.Update, len(req.Updates))
	for i, p := range req.Updates {
		if p[0] < 0 || uint64(p[0]) >= s.cfg.N {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("update %d: item %d outside domain [0,%d)", i, p[0], s.cfg.N))
			return
		}
		batch[i] = stream.Update{Item: uint64(p[0]), Delta: p[1]}
	}
	s.mu.Lock()
	s.be.ingest(batch)
	s.ingests += uint64(len(batch))
	total := s.ingests
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]uint64{"ingested": uint64(len(batch)), "total": total})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.Lock()
	data, err := s.be.snapshot()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	// Read one byte past the cap so an oversize body is rejected whole
	// rather than truncated into a corrupt partial payload.
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(data) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("snapshot exceeds %d bytes", maxBodyBytes))
		return
	}
	s.mu.Lock()
	err = s.be.merge(data)
	s.mu.Unlock()
	if err != nil {
		// A fingerprint/dimension mismatch is the client's fault: it shipped
		// a snapshot from a differently-configured daemon.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "merged"})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req AdvanceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad advance body: %w", err))
		return
	}
	s.mu.Lock()
	now, err := s.be.advance(req.Tick)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"tick": now})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.Lock()
	resp, err := s.be.estimate(r.URL.Query())
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- backends ---

// countSketchBackend serves a raw CountSketch: point queries and F2.
type countSketchBackend struct {
	cs *sketch.CountSketch
}

func (b *countSketchBackend) ingest(batch []stream.Update) { engine.Ingest(b.cs, batch, 0) }
func (b *countSketchBackend) snapshot() ([]byte, error)    { return b.cs.MarshalBinary() }
func (b *countSketchBackend) merge(data []byte) error      { return b.cs.UnmarshalBinary(data) }
func (b *countSketchBackend) spaceBytes() int              { return b.cs.SpaceBytes() }
func (b *countSketchBackend) advance(uint64) (uint64, error) {
	return 0, errNoClock("countsketch")
}

// errNoClock is the /v1/advance answer of every whole-stream backend.
func errNoClock(backend string) error {
	return fmt.Errorf("daemon: backend %q summarizes the whole stream and has no tick clock; use the window backend", backend)
}

func (b *countSketchBackend) estimate(q url.Values) (interface{}, error) {
	if it := q.Get("item"); it != "" {
		item, err := strconv.ParseUint(it, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad item %q: %w", it, err)
		}
		return map[string]interface{}{"item": item, "estimate": b.cs.Estimate(item)}, nil
	}
	return map[string]interface{}{"f2": b.cs.EstimateF2()}, nil
}

// heavyBackend serves one Algorithm 2 instance: the cover of (g, λ)-heavy
// hitters. Cover() finalizes the pruning against the current state but
// does not consume it, so estimates may be queried repeatedly as traffic
// continues.
type heavyBackend struct {
	op *heavy.OnePass
}

func newHeavyBackend(g gfunc.Func, cfg Config) *heavyBackend {
	m := uint64(cfg.M)
	if m < 4 {
		m = 4
	}
	h := gfunc.MeasureEnvelope(g, m).H()
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 1.0 / 16
	}
	eps := cfg.Eps
	if eps == 0 {
		eps = 0.25
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.2
	}
	return &heavyBackend{op: heavy.NewOnePass(heavy.OnePassConfig{
		G: g, Lambda: lambda, Eps: eps, Delta: delta, H: h,
	}, util.NewSplitMix64(cfg.Seed))}
}

func (b *heavyBackend) ingest(batch []stream.Update) { b.op.UpdateBatch(batch) }
func (b *heavyBackend) snapshot() ([]byte, error)    { return b.op.MarshalBinary() }
func (b *heavyBackend) merge(data []byte) error      { return b.op.UnmarshalBinary(data) }
func (b *heavyBackend) spaceBytes() int              { return b.op.SpaceBytes() }
func (b *heavyBackend) advance(uint64) (uint64, error) {
	return 0, errNoClock("heavy")
}

func (b *heavyBackend) estimate(url.Values) (interface{}, error) {
	cover := b.op.Cover()
	entries := make([]map[string]interface{}, len(cover))
	for i, e := range cover {
		entries[i] = map[string]interface{}{"item": e.Item, "freq": e.Freq, "weight": e.Weight}
	}
	return map[string]interface{}{"cover": entries, "weight_sum": cover.WeightSum()}, nil
}

// onePassBackend serves the full Theorem 2 estimator for a fixed g.
type onePassBackend struct {
	est *core.OnePassEstimator
}

func (b *onePassBackend) ingest(batch []stream.Update) { b.est.UpdateBatch(batch) }
func (b *onePassBackend) snapshot() ([]byte, error)    { return b.est.MarshalBinary() }
func (b *onePassBackend) merge(data []byte) error      { return b.est.UnmarshalBinary(data) }
func (b *onePassBackend) spaceBytes() int              { return b.est.SpaceBytes() }
func (b *onePassBackend) advance(uint64) (uint64, error) {
	return 0, errNoClock("onepass")
}

func (b *onePassBackend) estimate(url.Values) (interface{}, error) {
	return map[string]interface{}{"estimate": b.est.Estimate()}, nil
}

// universalBackend serves the §1.1.1 function-independent sketch:
// /v1/estimate?g=<name> answers post-hoc g-SUM queries for any catalog
// function (sized for the configured envelope).
type universalBackend struct {
	u *core.Universal
}

func (b *universalBackend) ingest(batch []stream.Update) { b.u.UpdateBatch(batch) }
func (b *universalBackend) snapshot() ([]byte, error)    { return b.u.MarshalBinary() }
func (b *universalBackend) merge(data []byte) error      { return b.u.UnmarshalBinary(data) }
func (b *universalBackend) spaceBytes() int              { return b.u.SpaceBytes() }
func (b *universalBackend) advance(uint64) (uint64, error) {
	return 0, errNoClock("universal")
}

// windowBackend serves the sliding-window g-SUM estimator: /v1/ingest
// applies updates at the current tick, /v1/advance moves the clock, and
// /v1/estimate answers over the trailing window. Merging requires the
// sender to have been advanced through the same tick sequence (the
// boundary check in internal/window's wire format enforces it).
type windowBackend struct {
	est *window.Estimator
}

func (b *windowBackend) ingest(batch []stream.Update) {
	// Ingest at the backend's own clock; a past-tick error is impossible.
	_ = b.est.UpdateBatch(batch, b.est.Now())
}
func (b *windowBackend) snapshot() ([]byte, error) { return b.est.MarshalBinary() }
func (b *windowBackend) merge(data []byte) error   { return b.est.UnmarshalBinary(data) }
func (b *windowBackend) spaceBytes() int           { return b.est.SpaceBytes() }

func (b *windowBackend) advance(tick uint64) (uint64, error) {
	// Arbitrarily large jumps are safe: window.Advance fast-forwards
	// across spans that expire everything instead of replaying each
	// elapsed tick, so a client posting wall-clock epoch ticks cannot
	// stall the daemon under its state lock.
	b.est.Advance(tick)
	return b.est.Now(), nil
}

func (b *windowBackend) estimate(url.Values) (interface{}, error) {
	return map[string]interface{}{
		"estimate":    b.est.Estimate(),
		"tick":        b.est.Now(),
		"window":      b.est.Config().W,
		"stale_ticks": b.est.Stale(),
	}, nil
}

func (b *universalBackend) estimate(q url.Values) (interface{}, error) {
	name := q.Get("g")
	if name == "" {
		names := make([]string, 0)
		for _, e := range gfunc.Catalog() {
			names = append(names, e.Func.Name())
		}
		sort.Strings(names)
		return nil, fmt.Errorf("universal backend needs ?g=<name>; catalog: %v", names)
	}
	g, err := catalogFunc(name)
	if err != nil {
		return nil, err
	}
	return map[string]interface{}{"g": name, "estimate": b.u.EstimateFor(g)}, nil
}
