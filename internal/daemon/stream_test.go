package daemon

import (
	"context"
	"errors"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/stream"
	"repro/internal/window"
)

// streamServer spins up one daemon on a real listener (the stream path
// needs a hijackable connection, which httptest provides) and returns
// both halves.
func streamServer(t *testing.T, spec backend.Spec) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, nil)
}

// TestStreamPushBitIdentical is the tentpole invariant on the binary
// transport: a stream pushed over /v1/stream yields the exact serial
// estimate — the wire format changes the bytes on the wire, never the
// counters.
func TestStreamPushBitIdentical(t *testing.T) {
	s := testStream(3)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}

	serial, err := backend.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Process(serial, s); err != nil {
		t.Fatal(err)
	}

	_, c := streamServer(t, spec)
	p, err := c.NewPusher(context.Background(), PusherConfig{Stream: true, MaxBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(s.Updates()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Acked != uint64(s.Len()) {
		t.Fatalf("acked %d of %d updates", st.Acked, s.Len())
	}
	if st.Total != uint64(s.Len()) {
		t.Fatalf("daemon ingest counter %d, want %d", st.Total, s.Len())
	}
	if st.Frames < 2 {
		t.Fatalf("expected multiple frames at MaxBatch=128 for %d updates, got %d", s.Len(), st.Frames)
	}

	resp, err := c.Estimate(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := resp.Value()
	if !ok {
		t.Fatalf("no estimate in %+v", resp)
	}
	if want := serial.Estimate(); got != want {
		t.Fatalf("stream estimate %v != serial %v", got, want)
	}
}

// TestStreamWindowedBitIdentical repeats the invariant on the window
// kind: Flush-before-Advance keeps the tick stamping exact, so the
// windowed estimate over the stream transport equals the in-process one.
func TestStreamWindowedBitIdentical(t *testing.T) {
	s := testStream(5)
	spec := backend.Spec{Kind: backend.KindWindow, G: "x^2", Options: testOptions(9),
		Window: window.Config{W: 4}}

	serial, err := backend.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	win := serial.(backend.Windowed)

	_, c := streamServer(t, spec)
	p, err := c.NewPusher(context.Background(), PusherConfig{Stream: true, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}

	// Interleave ticks with update runs on both sides identically.
	updates := s.Updates()
	runs := 8
	for r := 0; r < runs; r++ {
		lo, hi := r*len(updates)/runs, (r+1)*len(updates)/runs
		tick := uint64(r + 1)
		win.Advance(tick)
		serial.UpdateBatch(updates[lo:hi])
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Advance(tick); err != nil {
			t.Fatal(err)
		}
		if err := p.Push(updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Estimate(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := resp.Value()
	if !ok {
		t.Fatalf("no estimate in %+v", resp)
	}
	if want := serial.Estimate(); got != want {
		t.Fatalf("windowed stream estimate %v != serial %v", got, want)
	}
}

// TestStreamBackpressure slows the daemon's per-frame apply and checks
// the bounded pipeline end to end: a small queue and in-flight window
// force Push to block (not drop, not error), and everything still
// arrives exactly once.
func TestStreamBackpressure(t *testing.T) {
	s := testStream(11)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	srv, c := streamServer(t, spec)
	srv.streams.applyDelay = 2 * time.Millisecond

	const maxBatch = 32
	p, err := c.NewPusher(context.Background(), PusherConfig{
		Stream: true, MaxBatch: maxBatch, MaxBuffered: maxBatch, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Push(s.Updates()); err != nil {
		t.Fatal(err)
	}
	enqueued := time.Since(start)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Acked != uint64(s.Len()) {
		t.Fatalf("acked %d of %d", st.Acked, s.Len())
	}
	// With queue+window bounding at most ~2 batches of slack, Push had
	// to absorb almost the whole slow-apply schedule: frames*delay minus
	// the slack. If Push returned quickly the queue was unbounded.
	frames := s.Len() / maxBatch
	floor := time.Duration(frames-3) * srv.streams.applyDelay
	if frames > 3 && enqueued < floor {
		t.Fatalf("Push returned in %v; bounded queue against a slow daemon should have blocked >= %v", enqueued, floor)
	}
}

// TestStreamDrainAcksAreDurable drains the daemon mid-session and
// checks the ack contract both ways: the client's acked count equals
// the daemon's applied count exactly, and the unacked remainder is
// reported for redelivery.
func TestStreamDrainAcksAreDurable(t *testing.T) {
	s := testStream(13)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	srv, c := streamServer(t, spec)
	srv.streams.applyDelay = time.Millisecond

	p, err := c.NewPusher(context.Background(), PusherConfig{
		Stream: true, MaxBatch: 64, MaxBuffered: 64, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Feed the stream from a goroutine; drain the daemon mid-flight.
	pushDone := make(chan error, 1)
	go func() { pushDone <- p.Push(s.Updates()) }()
	time.Sleep(20 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.DrainStreams(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-pushDone
	closeErr := p.Close()

	st := p.Stats()
	srv.mu.Lock()
	applied := srv.ingests
	srv.mu.Unlock()
	if st.Acked != applied {
		t.Fatalf("client believes %d updates durable, daemon applied %d", st.Acked, applied)
	}
	if st.Acked < uint64(s.Len()) {
		// Some of the session was cut off: Close must say so and name
		// the drain.
		if closeErr == nil {
			t.Fatalf("drain cut %d updates but Close returned nil", uint64(s.Len())-st.Acked)
		}
		if !errors.Is(closeErr, ErrDraining) {
			t.Fatalf("Close error %v does not wrap ErrDraining", closeErr)
		}
	} else if closeErr != nil {
		t.Fatalf("everything acked, yet Close failed: %v", closeErr)
	}

	// New stream sessions are refused while draining.
	if _, err := c.NewPusher(context.Background(), PusherConfig{Stream: true}); err == nil {
		t.Fatal("NewPusher succeeded against a draining daemon")
	}
}

// TestStreamFingerprintDrift proves the stream path keeps the config-
// drift guarantee: frames stamped with another Spec's fingerprint are
// rejected with an error ack, and nothing is applied.
func TestStreamFingerprintDrift(t *testing.T) {
	s := testStream(17)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	srv, c := streamServer(t, spec)

	p, err := c.NewPusher(context.Background(), PusherConfig{Stream: true, MaxBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	p.fp++ // drift: stamp frames with a fingerprint the daemon doesn't serve
	err = p.Push(s.Updates())
	if err == nil {
		err = p.Close()
	} else {
		_ = p.Close()
	}
	if err == nil {
		t.Fatal("drifted fingerprint was accepted")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error %v does not mention the fingerprint", err)
	}
	srv.mu.Lock()
	applied := srv.ingests
	srv.mu.Unlock()
	if applied != 0 {
		t.Fatalf("daemon applied %d updates from drifted frames", applied)
	}
}

// TestStreamDomainRejected: out-of-domain items are refused at the
// frame boundary with a useful error, exactly like /v1/ingest.
func TestStreamDomainRejected(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	_, c := streamServer(t, spec)
	p, err := c.NewPusher(context.Background(), PusherConfig{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := []stream.Update{{Item: 1 << 62, Delta: 1}}
	if err := p.Push(bad); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil || !strings.Contains(err.Error(), "domain") {
		t.Fatalf("out-of-domain push: got %v, want domain error", err)
	}
}

// TestPusherJSONTransport runs the same bounded async pipeline over
// plain /v1/ingest POSTs and checks the estimate and the counters.
func TestPusherJSONTransport(t *testing.T) {
	s := testStream(19)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}

	serial, err := backend.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Process(serial, s); err != nil {
		t.Fatal(err)
	}

	_, c := streamServer(t, spec)
	p, err := c.NewPusher(context.Background(), PusherConfig{MaxBatch: 777})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent producers: the Pusher is the serialization point.
	var wg sync.WaitGroup
	updates := s.Updates()
	half := len(updates) / 2
	for _, part := range [][]stream.Update{updates[:half], updates[half:]} {
		wg.Add(1)
		go func(part []stream.Update) {
			defer wg.Done()
			if err := p.Push(part); err != nil {
				t.Errorf("push: %v", err)
			}
		}(part)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Acked != uint64(s.Len()) {
		t.Fatalf("acked %d of %d", st.Acked, s.Len())
	}

	resp, err := c.Estimate(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := resp.Value()
	if !ok {
		t.Fatalf("no estimate in %+v", resp)
	}
	if want := serial.Estimate(); got != want {
		t.Fatalf("json pusher estimate %v != serial %v", got, want)
	}
}

// TestPusherFlushByAge: a partial batch must not sit in the buffer past
// FlushEvery even with no further pushes.
func TestPusherFlushByAge(t *testing.T) {
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	_, c := streamServer(t, spec)
	p, err := c.NewPusher(context.Background(), PusherConfig{
		Stream: true, MaxBatch: 1 << 20, FlushEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Push([]stream.Update{{Item: 1, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Acked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("partial batch never flushed by age")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPusherContextCancel: canceling the session ctx unblocks a Push
// stuck on a full queue and fails the session with the ctx error.
func TestPusherContextCancel(t *testing.T) {
	s := testStream(23)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	srv, c := streamServer(t, spec)
	srv.streams.applyDelay = 50 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	p, err := c.NewPusher(ctx, PusherConfig{
		Stream: true, MaxBatch: 32, MaxBuffered: 32, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	pushDone := make(chan error, 1)
	go func() { pushDone <- p.Push(s.Updates()) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-pushDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("push after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock Push")
	}
	_ = p.Close()
}
