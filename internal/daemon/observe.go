package daemon

import (
	"fmt"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"time"

	"repro/internal/backend"
	"repro/internal/hotpath"
	"repro/internal/metrics"
)

// The daemon's observability surface: every Server carries a
// metrics.Registry served at GET /metrics in the Prometheus text
// format, plus GET /healthz (liveness: the process is up) and GET
// /readyz (readiness: restored + listening + not draining). All
// instruments are registered once in newServerMetrics, so the full
// metric catalog is this file; the hot-path hooks (ingest counters, the
// batch-size histogram, stream acks) are single atomic operations and
// stay within benchmark noise of the uninstrumented path (gated by
// BenchmarkDaemonIngest* in the benchdiff baseline).
//
// Scrape-computed gauges (goroutines, heap, the estimate itself, the
// window clock) are GaugeFuncs: they cost nothing between scrapes and
// read the live value — taking the state lock briefly — only when
// /metrics is actually asked.

// Transport labels for the ingest counters. Every path that applies
// updates to the estimator counts under exactly one of these.
const (
	transportJSON      = "json"      // POST /v1/ingest
	transportStream    = "stream"    // /v1/stream frames
	transportInProcess = "inprocess" // Server.IngestBatch (embedders, benchmarks)
)

// serverMetrics holds every instrument a Server updates. Fields are
// grouped by subsystem; names follow the Prometheus conventions
// (gsumd_ prefix, _total for counters, unit suffixes).
type serverMetrics struct {
	reg *metrics.Registry

	// Ingest, per transport.
	ingestUpdates map[string]*metrics.Counter
	ingestBatches map[string]*metrics.Counter
	batchSize     *metrics.Histogram

	// Query/merge/advance handler latencies.
	mergeSeconds    *metrics.Histogram
	estimateSeconds *metrics.Histogram
	advanceSeconds  *metrics.Histogram

	// Checkpoint durability.
	checkpointSeconds *metrics.Histogram
	checkpointBytes   *metrics.Gauge
	checkpointOK      *metrics.Counter
	checkpointErr     *metrics.Counter

	// Streaming ingest connections.
	streamConns      *metrics.Gauge
	streamConnsTotal *metrics.Counter
	ackedFrames      *metrics.Counter
	ackedUpdates     *metrics.Counter
	streamRejects    *metrics.Counter

	// Membership (coordinator side).
	membersAlive      *metrics.Gauge
	membersTotal      *metrics.Gauge
	memberUp          *metrics.Counter
	memberDown        *metrics.Counter
	pullOK            *metrics.Counter
	pullErr           *metrics.Counter
	rebuildSeconds    *metrics.Histogram
	aggregateIngested *metrics.Gauge
}

// newServerMetrics registers the full catalog against a fresh registry.
// s is only captured by the GaugeFuncs, which run at scrape time.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.New()
	m := &serverMetrics{
		reg:           reg,
		ingestUpdates: make(map[string]*metrics.Counter),
		ingestBatches: make(map[string]*metrics.Counter),
	}
	for _, tr := range []string{transportJSON, transportStream, transportInProcess} {
		l := metrics.Label{Key: "transport", Value: tr}
		m.ingestUpdates[tr] = reg.Counter("gsumd_ingest_updates_total",
			"updates applied to the estimator since boot, by transport", l)
		m.ingestBatches[tr] = reg.Counter("gsumd_ingest_batches_total",
			"batches (JSON requests, stream frames, in-process calls) applied, by transport", l)
	}
	m.batchSize = reg.Histogram("gsumd_ingest_batch_size",
		"updates per applied batch, across all transports", metrics.SizeBuckets)

	m.mergeSeconds = reg.Histogram("gsumd_merge_seconds",
		"time to decode and fold one /v1/merge snapshot under the state lock", nil)
	m.estimateSeconds = reg.Histogram("gsumd_estimate_seconds",
		"time to answer one /v1/estimate query under the state lock", nil)
	m.advanceSeconds = reg.Histogram("gsumd_advance_seconds",
		"time to move the window clock for one /v1/advance", nil)

	m.checkpointSeconds = reg.Histogram("gsumd_checkpoint_seconds",
		"time for one atomic checkpoint write (marshal + temp file + fsync + rename)", nil)
	m.checkpointBytes = reg.Gauge("gsumd_checkpoint_bytes",
		"size of the last successfully written checkpoint file")
	m.checkpointOK = reg.Counter("gsumd_checkpoint_writes_total",
		"checkpoint write attempts by result", metrics.Label{Key: "result", Value: "ok"})
	m.checkpointErr = reg.Counter("gsumd_checkpoint_writes_total",
		"checkpoint write attempts by result", metrics.Label{Key: "result", Value: "error"})

	m.streamConns = reg.Gauge("gsumd_stream_connections",
		"live /v1/stream connections")
	m.streamConnsTotal = reg.Counter("gsumd_stream_connections_total",
		"/v1/stream connections accepted since boot")
	m.ackedFrames = reg.Counter("gsumd_stream_acked_frames_total",
		"stream frames acknowledged AFTER their batch was applied (an ack is a durability receipt)")
	m.ackedUpdates = reg.Counter("gsumd_stream_acked_updates_total",
		"updates inside acknowledged stream frames; equals the stream-transport ingest counter once a session quiesces")
	m.streamRejects = reg.Counter("gsumd_stream_rejected_frames_total",
		"stream frames refused (bad fingerprint, domain violation, read errors)")

	m.membersAlive = reg.Gauge("gsumd_members_alive",
		"workers currently marked alive in the membership registry")
	m.membersTotal = reg.Gauge("gsumd_members",
		"workers in the membership registry, alive or not")
	m.memberUp = reg.Counter("gsumd_member_transitions_total",
		"membership state transitions", metrics.Label{Key: "to", Value: "up"})
	m.memberDown = reg.Counter("gsumd_member_transitions_total",
		"membership state transitions", metrics.Label{Key: "to", Value: "down"})
	m.pullOK = reg.Counter("gsumd_pull_rounds_total",
		"auto-pull rounds by result", metrics.Label{Key: "result", Value: "ok"})
	m.pullErr = reg.Counter("gsumd_pull_rounds_total",
		"auto-pull rounds by result", metrics.Label{Key: "result", Value: "error"})
	m.rebuildSeconds = reg.Histogram("gsumd_rebuild_seconds",
		"time to rebuild the aggregate from all retained snapshots (replace, not accumulate)", nil)
	m.aggregateIngested = reg.Gauge("gsumd_aggregate_ingested_updates",
		"sum of worker-reported ingest totals folded into the aggregate at the last rebuild; "+
			"monotone while workers only ingest, because a rebuild covers every retained snapshot exactly once")

	// Scrape-time gauges. Process-level first.
	start := time.Now()
	reg.GaugeFunc("gsumd_uptime_seconds", "seconds since the Server was built",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("gsumd_goroutines", "live goroutines in the process",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("gsumd_heap_alloc_bytes", "bytes of live heap objects (runtime.MemStats.HeapAlloc)",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("gsumd_ready", "1 once the daemon is restored, listening, and not draining",
		func() float64 {
			if s.Ready() {
				return 1
			}
			return 0
		})

	// Estimator-level gauges take the state lock for the duration of one
	// read — scrape cadence, not hot path.
	reg.GaugeFunc("gsumd_ingested_updates", "the daemon's ingest counter (includes updates restored from a checkpoint)",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.ingests)
		})
	reg.GaugeFunc("gsumd_space_bytes", "bytes of sketch state held by the estimator",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.est.SpaceBytes())
		})
	reg.GaugeFunc("gsumd_estimate", "the current estimate, as a bare /v1/estimate would answer it (NaN when the kind needs query parameters)",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			res, err := s.estimate(url.Values{})
			if err != nil {
				return math.NaN()
			}
			switch {
			case res.Estimate != nil:
				return *res.Estimate
			case res.F2 != nil:
				return *res.F2
			case res.WeightSum != nil:
				return *res.WeightSum
			}
			return math.NaN()
		})
	if hp, ok := s.est.(interface{ Stats() hotpath.Stats }); ok {
		// The sharded hot path exposes its ring instrumentation; the
		// gauges read atomics (plus a racy-by-design occupancy snapshot),
		// so no state lock is needed.
		reg.GaugeFunc("gsumd_hotpath_shards", "per-core sketch shards behind the sharded kind",
			func() float64 { return float64(hp.Stats().Shards) })
		reg.GaugeFunc("gsumd_hotpath_ring_depth", "slots per ingest ring",
			func() float64 { return float64(hp.Stats().RingDepth) })
		reg.GaugeFunc("gsumd_hotpath_ring_occupancy", "batches currently queued across all rings (0 outside Process)",
			func() float64 { return float64(hp.Stats().Occupancy) })
		reg.GaugeFunc("gsumd_hotpath_batches", "batches that have crossed the rings",
			func() float64 { return float64(hp.Stats().Batches) })
		reg.GaugeFunc("gsumd_hotpath_updates", "updates carried by those batches",
			func() float64 { return float64(hp.Stats().Updates) })
		reg.GaugeFunc("gsumd_hotpath_producer_stalls", "producer spins on a full ring (backpressure events)",
			func() float64 { return float64(hp.Stats().ProducerStalls) })
		reg.GaugeFunc("gsumd_hotpath_consumer_stalls", "consumer spins on an empty ring",
			func() float64 { return float64(hp.Stats().ConsumerStalls) })
	}
	if _, ok := s.est.(backend.Windowed); ok {
		reg.GaugeFunc("gsumd_window_tick", "the window kind's tick clock",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.est.(backend.Windowed).Now())
			})
		reg.GaugeFunc("gsumd_window_stale_ticks", "ticks beyond the window the current estimate still includes",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(s.est.(backend.Windowed).Stale())
			})
	}
	return m
}

// ingested counts one applied batch on the hot path: two counter adds
// and one histogram observe, all atomic.
func (m *serverMetrics) ingested(transport string, updates int) {
	m.ingestUpdates[transport].Add(uint64(updates))
	m.ingestBatches[transport].Inc()
	m.batchSize.Observe(float64(updates))
}

// Metrics returns the Server's instrument registry, for embedders that
// want to mount it themselves or add their own instruments next to the
// daemon's.
func (s *Server) Metrics() *metrics.Registry { return s.obs.reg }

// SetReady flips the readiness bit served by GET /readyz and the
// gsumd_ready gauge. Serving frontends (cmd/gsumd, the soak harness)
// set it once the checkpoint is restored and the listener is up;
// DrainStreams clears it.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports readiness: SetReady(true) has been called and the
// daemon is not draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 only when the daemon should receive
// traffic — restored, listening, and not draining. Load balancers and
// the soak harness poll this instead of racing the boot sequence.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
