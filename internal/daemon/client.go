package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/stream"
)

// DefaultTimeout bounds every request of a Client built with a nil
// *http.Client. A daemon client must never hang forever on a dead or
// wedged peer — the self-healing loops (heartbeat, auto-pull) depend on
// failure being a bounded-time outcome.
const DefaultTimeout = 10 * time.Second

// Client talks to one gsumd daemon. context.Context is first-class:
// every verb has a ctx-first XxxContext form (cancel a push mid-flight,
// bound a pull round, tie the whole CLI to SIGINT), and the short names
// are thin Background shims for callers that don't need one. Every
// request is additionally bounded: a nil http.Client gets
// DefaultTimeout, and multi-peer operations (PullFromContext) carry a
// per-request deadline so one dead worker costs at most one timeout,
// not the whole loop.
type Client struct {
	base string
	hc   *http.Client
	// timeout is the per-request deadline used by the pull loop:
	// hc.Timeout when set, DefaultTimeout otherwise (so even a caller
	// supplied timeout-less client cannot hang on one peer).
	timeout time.Duration
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7600"). httpClient nil means a default client with
// DefaultTimeout; pass your own to tune it.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: DefaultTimeout}
	}
	t := httpClient.Timeout
	if t <= 0 {
		t = DefaultTimeout
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient, timeout: t}
}

// Base returns the daemon base URL this client points at.
func (c *Client) Base() string { return c.base }

// drainClose consumes the remainder of a response body (bounded) before
// closing it. An undrained body makes net/http abandon the underlying
// TCP connection instead of returning it to the keep-alive pool, which
// on the hot push path would mean a fresh connection per batch.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<16))
	_ = body.Close()
}

// decodeError surfaces the daemon's JSON error body.
func decodeError(resp *http.Response) error {
	defer drainClose(resp.Body)
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("daemon: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("daemon: %s", resp.Status)
}

// do issues one request with the given context; callers own the
// response body.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.hc.Do(req)
}

// postOK posts body and expects a 200, draining the successful response
// so the connection is reused.
func (c *Client) postOK(ctx context.Context, path, contentType string, body []byte) error {
	resp, err := c.do(ctx, http.MethodPost, path, contentType, body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	drainClose(resp.Body)
	return nil
}

// PushContext sends a batch of updates to /v1/ingest as one JSON
// request. Item IDs above math.MaxInt64 are rejected here: the JSON
// transport carries items as int64, and letting such an ID wrap would
// silently turn it negative on the wire. For sustained traffic prefer a
// Pusher (batching + bounded queue) over calling this in a loop, and
// the binary stream transport (NewPusher with PusherConfig.Stream) over
// JSON.
func (c *Client) PushContext(ctx context.Context, updates []stream.Update) error {
	req := IngestRequest{Updates: make([][2]int64, len(updates))}
	for i, u := range updates {
		if u.Item > math.MaxInt64 {
			return fmt.Errorf("daemon: update %d: item %d exceeds the JSON transport's int64 range (max %d)",
				i, u.Item, uint64(math.MaxInt64))
		}
		req.Updates[i] = [2]int64{int64(u.Item), u.Delta}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.postOK(ctx, "/v1/ingest", "application/json", body)
}

// Push is PushContext with a background context.
func (c *Client) Push(updates []stream.Update) error {
	return c.PushContext(context.Background(), updates)
}

// AdvanceContext moves a window backend's tick clock to tick via
// /v1/advance and returns the daemon's resulting clock (past ticks are
// a no-op, so the returned clock may be ahead of the argument).
func (c *Client) AdvanceContext(ctx context.Context, tick uint64) (uint64, error) {
	body, err := json.Marshal(AdvanceRequest{Tick: tick})
	if err != nil {
		return 0, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/advance", "application/json", body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, decodeError(resp)
	}
	defer drainClose(resp.Body)
	var out struct {
		Tick uint64 `json:"tick"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&out); err != nil {
		return 0, err
	}
	return out.Tick, nil
}

// Advance is AdvanceContext with a background context.
func (c *Client) Advance(tick uint64) (uint64, error) {
	return c.AdvanceContext(context.Background(), tick)
}

// SnapshotContext fetches the daemon's serialized sketch state.
func (c *Client) SnapshotContext(ctx context.Context) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/snapshot", "", nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer drainClose(resp.Body)
	// Read one byte past the cap so an oversize snapshot is detected
	// rather than silently truncated into a corrupt partial payload.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxBodyBytes {
		return nil, fmt.Errorf("daemon: snapshot exceeds %d bytes", maxBodyBytes)
	}
	return data, nil
}

// Snapshot is SnapshotContext with a background context.
func (c *Client) Snapshot() ([]byte, error) {
	return c.SnapshotContext(context.Background())
}

// MergeContext ships a serialized shard sketch to /v1/merge.
func (c *Client) MergeContext(ctx context.Context, snapshot []byte) error {
	return c.postOK(ctx, "/v1/merge", "application/octet-stream", snapshot)
}

// Merge is MergeContext with a background context.
func (c *Client) Merge(snapshot []byte) error {
	return c.MergeContext(context.Background(), snapshot)
}

// CheckSpecContext posts a Spec fingerprint to the daemon's /v1/config
// handshake. A nil error means the daemon was built from a Spec with
// the same fingerprint; a mismatch surfaces the daemon's 409 Conflict.
func (c *Client) CheckSpecContext(ctx context.Context, fingerprint uint64) error {
	body, err := json.Marshal(CheckRequest{Fingerprint: fingerprint})
	if err != nil {
		return err
	}
	return c.postOK(ctx, "/v1/config", "application/json", body)
}

// CheckSpec is CheckSpecContext with a background context.
func (c *Client) CheckSpec(fingerprint uint64) error {
	return c.CheckSpecContext(context.Background(), fingerprint)
}

// RegisterContext announces a worker's base URL to the coordinator this
// client points at (POST /v1/register). The coordinator's heartbeat
// loop takes it from there. The request carries the client's timeout on
// top of ctx.
func (c *Client) RegisterContext(ctx context.Context, workerAddr string) error {
	body, err := json.Marshal(RegisterRequest{Addr: workerAddr})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	return c.postOK(ctx, "/v1/register", "application/json", body)
}

// Register is RegisterContext with a background context.
func (c *Client) Register(workerAddr string) error {
	return c.RegisterContext(context.Background(), workerAddr)
}

// PullFromContext fetches a snapshot from every worker daemon and
// merges it into the daemon this client points at — the coordinator
// side of the scatter-gather aggregation. Before any snapshot moves,
// every worker's Spec fingerprint is checked against the coordinator's
// via the /v1/config handshake: one drifted worker fails the whole pull
// with a 409 and zero merges, so the coordinator is never left holding
// a partial aggregation. Every request carries its own deadline (the
// client's timeout, under ctx), so one dead or hung worker fails the
// pull within that bound — with zero merges, because the handshake
// phase completes before the first snapshot ships.
func (c *Client) PullFromContext(ctx context.Context, workers []string) error {
	bounded := func(f func(ctx context.Context) error) error {
		ctx, cancel := context.WithTimeout(ctx, c.timeout)
		defer cancel()
		return f(ctx)
	}
	var info ConfigInfo
	if err := bounded(func(ctx context.Context) (err error) {
		info, err = c.ConfigContext(ctx)
		return err
	}); err != nil {
		return fmt.Errorf("coordinator config: %w", err)
	}
	for _, w := range workers {
		wc := NewClient(w, c.hc)
		if err := bounded(func(ctx context.Context) error {
			return wc.CheckSpecContext(ctx, info.Fingerprint)
		}); err != nil {
			return fmt.Errorf("worker %s: %w", w, err)
		}
	}
	for _, w := range workers {
		wc := NewClient(w, c.hc)
		var snap []byte
		if err := bounded(func(ctx context.Context) (err error) {
			snap, err = wc.SnapshotContext(ctx)
			return err
		}); err != nil {
			return fmt.Errorf("worker %s: %w", w, err)
		}
		if err := bounded(func(ctx context.Context) error {
			return c.MergeContext(ctx, snap)
		}); err != nil {
			return fmt.Errorf("worker %s: %w", w, err)
		}
	}
	return nil
}

// PullFrom is PullFromContext with a background context.
func (c *Client) PullFrom(workers []string) error {
	return c.PullFromContext(context.Background(), workers)
}

// EstimateContext queries /v1/estimate with the given parameters and
// returns the decoded, typed result. Which fields are set depends on
// the daemon kind's capabilities — see EstimateResult.
func (c *Client) EstimateContext(ctx context.Context, params url.Values) (EstimateResult, error) {
	u := "/v1/estimate"
	if enc := params.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := c.do(ctx, http.MethodGet, u, "", nil)
	if err != nil {
		return EstimateResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return EstimateResult{}, decodeError(resp)
	}
	defer drainClose(resp.Body)
	var out EstimateResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return EstimateResult{}, err
	}
	return out, nil
}

// Estimate is EstimateContext with a background context.
func (c *Client) Estimate(params url.Values) (EstimateResult, error) {
	return c.EstimateContext(context.Background(), params)
}

// ConfigContext fetches the daemon's normalized Spec, its fingerprint,
// and the ingestion/space counters.
func (c *Client) ConfigContext(ctx context.Context) (ConfigInfo, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/config", "", nil)
	if err != nil {
		return ConfigInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return ConfigInfo{}, decodeError(resp)
	}
	defer drainClose(resp.Body)
	var info ConfigInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info); err != nil {
		return ConfigInfo{}, err
	}
	return info, nil
}

// Config is ConfigContext with a background context.
func (c *Client) Config() (ConfigInfo, error) {
	return c.ConfigContext(context.Background())
}
