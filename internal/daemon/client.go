package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/stream"
)

// Client talks to one gsumd daemon. The zero HTTP client is fine for the
// walkthrough scale; callers needing timeouts pass their own.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7600"). httpClient nil means http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// decodeError surfaces the daemon's JSON error body.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("daemon: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("daemon: %s", resp.Status)
}

// Push sends a batch of updates to /v1/ingest.
func (c *Client) Push(updates []stream.Update) error {
	req := IngestRequest{Updates: make([][2]int64, len(updates))}
	for i, u := range updates {
		req.Updates[i] = [2]int64{int64(u.Item), u.Delta}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// Advance moves a window backend's tick clock to tick via /v1/advance
// and returns the daemon's resulting clock (past ticks are a no-op, so
// the returned clock may be ahead of the argument).
func (c *Client) Advance(tick uint64) (uint64, error) {
	body, err := json.Marshal(AdvanceRequest{Tick: tick})
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Post(c.base+"/v1/advance", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, decodeError(resp)
	}
	defer resp.Body.Close()
	var out struct {
		Tick uint64 `json:"tick"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&out); err != nil {
		return 0, err
	}
	return out.Tick, nil
}

// Snapshot fetches the daemon's serialized sketch state.
func (c *Client) Snapshot() ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/v1/snapshot")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	// Read one byte past the cap so an oversize snapshot is detected
	// rather than silently truncated into a corrupt partial payload.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxBodyBytes {
		return nil, fmt.Errorf("daemon: snapshot exceeds %d bytes", maxBodyBytes)
	}
	return data, nil
}

// Merge ships a serialized shard sketch to /v1/merge.
func (c *Client) Merge(snapshot []byte) error {
	resp, err := c.hc.Post(c.base+"/v1/merge", "application/octet-stream", bytes.NewReader(snapshot))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// CheckSpec posts a Spec fingerprint to the daemon's /v1/config
// handshake. A nil error means the daemon was built from a Spec with
// the same fingerprint; a mismatch surfaces the daemon's 409 Conflict.
func (c *Client) CheckSpec(fingerprint uint64) error {
	body, err := json.Marshal(CheckRequest{Fingerprint: fingerprint})
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/v1/config", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// PullFrom fetches a snapshot from every worker daemon and merges it
// into the daemon this client points at — the coordinator side of the
// scatter-gather aggregation. Before any snapshot moves, every worker's
// Spec fingerprint is checked against the coordinator's via the
// /v1/config handshake: one drifted worker fails the whole pull with a
// 409 and zero merges, so the coordinator is never left holding a
// partial aggregation.
func (c *Client) PullFrom(workers []string) error {
	info, err := c.Config()
	if err != nil {
		return fmt.Errorf("coordinator config: %w", err)
	}
	for _, w := range workers {
		if err := NewClient(w, c.hc).CheckSpec(info.Fingerprint); err != nil {
			return fmt.Errorf("worker %s: %w", w, err)
		}
	}
	for _, w := range workers {
		snap, err := NewClient(w, c.hc).Snapshot()
		if err != nil {
			return fmt.Errorf("worker %s: %w", w, err)
		}
		if err := c.Merge(snap); err != nil {
			return fmt.Errorf("worker %s: %w", w, err)
		}
	}
	return nil
}

// Estimate queries /v1/estimate with the given parameters and returns
// the decoded JSON object.
func (c *Client) Estimate(params url.Values) (map[string]interface{}, error) {
	u := c.base + "/v1/estimate"
	if enc := params.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Config fetches the daemon's normalized Spec, its fingerprint, and the
// ingestion/space counters.
func (c *Client) Config() (ConfigInfo, error) {
	resp, err := c.hc.Get(c.base + "/v1/config")
	if err != nil {
		return ConfigInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return ConfigInfo{}, decodeError(resp)
	}
	defer resp.Body.Close()
	var info ConfigInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info); err != nil {
		return ConfigInfo{}, err
	}
	return info, nil
}
