package daemon

import (
	"context"
	"errors"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
)

// TestPusherFlushCloseRaceInFlightAck hammers Flush and Close against a
// deliberately slow daemon so acks land while both calls are blocked in
// their wait loops. The interesting failures here are the ones -race
// and the wait conditions catch: Flush returning before its updates are
// acked, Close racing the ack reader over the pending map, or a lost
// wakeup leaving a waiter hung. Deterministic ground truth at the end:
// every enqueued update acked, and the daemon's count agrees.
func TestPusherFlushCloseRaceInFlightAck(t *testing.T) {
	s := testStream(19)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	srv, c := streamServer(t, spec)
	// Each frame's apply stalls long enough that Flush reliably blocks
	// with frames in flight, and the ack arrives mid-wait.
	srv.streams.applyDelay = time.Millisecond

	p, err := c.NewPusher(context.Background(), PusherConfig{
		Stream: true, MaxBatch: 32, MaxBuffered: 64, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}

	updates := s.Updates()
	var wg sync.WaitGroup
	// Two producers splitting the load, plus a flusher that keeps
	// calling Flush while acks are in flight.
	for i := 0; i < 2; i++ {
		half := updates[i*len(updates)/2 : (i+1)*len(updates)/2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Push(half); err != nil {
				t.Errorf("push: %v", err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := p.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			// Flush's contract: nothing buffered, nothing unacked.
			st := p.Stats()
			if st.Acked != st.Enqueued {
				// Another producer may have enqueued after Flush
				// returned; only acked > enqueued is impossible.
				if st.Acked > st.Enqueued {
					t.Errorf("acked %d > enqueued %d", st.Acked, st.Enqueued)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	// Close while a final age-flush may still be in flight, twice from
	// separate goroutines: Close is documented idempotent.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- p.Close() }()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("close: %v", err)
		}
	}

	st := p.Stats()
	if st.Enqueued != uint64(len(updates)) {
		t.Fatalf("enqueued %d, want %d", st.Enqueued, len(updates))
	}
	if st.Acked != st.Enqueued {
		t.Fatalf("acked %d != enqueued %d after Close", st.Acked, st.Enqueued)
	}
	srv.mu.Lock()
	applied := srv.ingests
	srv.mu.Unlock()
	if applied != st.Acked {
		t.Fatalf("daemon applied %d, client acked %d", applied, st.Acked)
	}
}

// TestPusherDrainingRedeliverableCount drains the daemon mid-session
// with frames in flight and updates still buffered, then checks the
// ErrDraining error's redeliverable count against the only number that
// makes redelivery exact: Enqueued - Acked. An overcount redelivers
// duplicates into the aggregate; an undercount loses updates.
func TestPusherDrainingRedeliverableCount(t *testing.T) {
	s := testStream(23)
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: testOptions(7)}
	srv, c := streamServer(t, spec)
	// Slow applies keep frames in flight and the buffer backed up when
	// the drain lands mid-batch.
	srv.streams.applyDelay = 10 * time.Millisecond

	updates := s.Updates()
	p, err := c.NewPusher(context.Background(), PusherConfig{
		Stream: true, MaxBatch: 32,
		// Buffer the whole session so Push returns immediately and
		// Enqueued is exact before the drain hits.
		MaxBuffered: len(updates), MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(updates); err != nil {
		t.Fatal(err)
	}

	// Let some acks land so the drain genuinely bisects the session.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Acked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no acks after 5s")
		}
		time.Sleep(time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.DrainStreams(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	closeErr := p.Close()
	st := p.Stats()
	if st.Acked >= uint64(len(updates)) {
		t.Skipf("drain landed after the whole session was acked (acked=%d); nothing to redeliver", st.Acked)
	}
	if closeErr == nil {
		t.Fatalf("drain cut %d updates but Close returned nil", uint64(len(updates))-st.Acked)
	}
	if !errors.Is(closeErr, ErrDraining) {
		t.Fatalf("Close error %v does not wrap ErrDraining", closeErr)
	}
	m := regexp.MustCompile(`(\d+) unacked updates must be redelivered`).FindStringSubmatch(closeErr.Error())
	if m == nil {
		t.Fatalf("error %q does not name the redeliverable count", closeErr)
	}
	lost, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if want := st.Enqueued - st.Acked; lost != want {
		t.Fatalf("error names %d redeliverable updates; Enqueued-Acked = %d", lost, want)
	}
	// And the durable prefix it implies matches the daemon exactly.
	srv.mu.Lock()
	applied := srv.ingests
	srv.mu.Unlock()
	if applied != st.Acked {
		t.Fatalf("daemon applied %d, client acked %d", applied, st.Acked)
	}
	if uint64(len(updates))-lost != applied {
		t.Fatalf("redelivering %d of %d implies %d durable; daemon has %d",
			lost, len(updates), uint64(len(updates))-lost, applied)
	}
}
