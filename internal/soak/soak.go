package soak

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/window"
)

// Config parameterizes one soak run. The zero value is not usable; see
// the field defaults.
type Config struct {
	// Workers is the worker daemon count (default 2). Even-indexed
	// workers ingest over the binary stream transport, odd-indexed ones
	// over JSON POSTs, so one run exercises both paths.
	Workers int
	// Windowed selects the window kind with a tick advanced every
	// round; false runs the flat one-pass kind.
	Windowed bool
	// Kind overrides the flat estimator kind ("" = onepass). The only
	// other supported value is backend.KindSharded, which runs every
	// daemon on the lock-free hot path; the serial ground-truth replay
	// then uses the onepass kind, so the run also proves the cross-kind
	// contract (sharded daemons == one serial onepass, bit for bit).
	// Incompatible with Windowed.
	Kind backend.Kind
	// Duration is the wall-clock floor: rounds keep going until it has
	// elapsed (and always at least MinRounds). Default 500ms.
	Duration time.Duration
	// Seed derives every per-worker workload (deterministic).
	Seed uint64
	// ScrapeEvery is how many rounds pass between mid-soak scrapes
	// (default 2); the final scrape always happens.
	ScrapeEvery int
	// Logf (nil = silent) receives one line per scrape round.
	Logf func(format string, args ...interface{})
}

// MinRounds is the floor on workload rounds regardless of Duration, so
// even the short CI mode sees multiple pull/scrape cycles.
const MinRounds = 6

// Report is what a soak run proves, plus the final artifacts.
type Report struct {
	// Rounds and Updates measure the workload: every worker pushed its
	// chunk once per round.
	Rounds  int
	Updates uint64
	// Scrapes counts mid-soak metric scrapes that passed the invariant
	// checks.
	Scrapes int
	// Estimate is the coordinator's final pulled estimate;
	// SerialEstimate is a single serial estimator fed the identical
	// updates. Run fails unless they are bit-identical.
	Estimate       float64
	SerialEstimate float64
	// FinalScrapes holds the final /metrics text per node (keys
	// "coordinator", "worker0", ... and "pushers" for the client-side
	// registry) — the nightly job uploads these as artifacts.
	FinalScrapes map[string][]byte
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	if cfg.ScrapeEvery <= 0 {
		cfg.ScrapeEvery = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	return cfg
}

// node is one in-process daemon on a real loopback listener.
type node struct {
	name    string
	srv     *daemon.Server
	httpSrv *http.Server
	client  *daemon.Client
	base    string
}

func startNode(name string, spec backend.Spec) (*node, error) {
	srv, err := daemon.NewServer(spec)
	if err != nil {
		return nil, fmt.Errorf("soak: %s: %w", name, err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("soak: %s: %w", name, err)
	}
	n := &node{name: name, srv: srv, base: "http://" + l.Addr().String()}
	n.httpSrv = &http.Server{Handler: srv.Handler()}
	go func() { _ = n.httpSrv.Serve(l) }()
	srv.SetReady(true)
	n.client = daemon.NewClient(n.base, nil)
	return n, nil
}

func (n *node) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = n.httpSrv.Shutdown(ctx)
	_ = n.srv.DrainStreams(ctx)
}

// scrape fetches and parses one node's /metrics, returning the raw text
// alongside so the caller can keep it as an artifact.
func (n *node) scrape() (*metrics.Scrape, []byte, error) {
	resp, err := http.Get(n.base + "/metrics")
	if err != nil {
		return nil, nil, fmt.Errorf("soak: scrape %s: %w", n.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("soak: scrape %s: %s", n.name, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("soak: scrape %s: %w", n.name, err)
	}
	sc, err := metrics.Parse(strings.NewReader(string(raw)))
	if err != nil {
		return nil, nil, fmt.Errorf("soak: scrape %s: %w", n.name, err)
	}
	return sc, raw, nil
}

// Run boots the topology, drives the workload, and asserts every
// invariant; any violation is the returned error.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	spec := backend.Spec{
		Kind: backend.KindOnePass, G: "x^2",
		Options: core.Options{N: 1 << 12, M: 1 << 10, Eps: 0.25,
			Seed: cfg.Seed, Lambda: 1.0 / 16},
	}
	switch {
	case cfg.Windowed && cfg.Kind != "":
		return nil, fmt.Errorf("soak: Kind %q is incompatible with Windowed", cfg.Kind)
	case cfg.Windowed:
		spec.Kind = backend.KindWindow
		spec.Window = window.Config{W: 4}
	case cfg.Kind == backend.KindSharded:
		spec.Kind = backend.KindSharded
	case cfg.Kind != "" && cfg.Kind != backend.KindOnePass:
		return nil, fmt.Errorf("soak: unsupported Kind %q (onepass or sharded)", cfg.Kind)
	}

	coord, err := startNode("coordinator", spec)
	if err != nil {
		return nil, err
	}
	defer coord.stop()
	workers := make([]*node, cfg.Workers)
	for i := range workers {
		w, err := startNode(fmt.Sprintf("worker%d", i), spec)
		if err != nil {
			return nil, err
		}
		defer w.stop()
		workers[i] = w
		if err := coord.srv.Membership().Add(w.base); err != nil {
			return nil, fmt.Errorf("soak: membership: %w", err)
		}
	}
	// Membership loops run hot so heartbeats and pulls genuinely overlap
	// the ingest load (that overlap is half the point of the soak).
	coord.srv.Membership().Start(daemon.MembershipConfig{
		Heartbeat: 50 * time.Millisecond, PullEvery: 75 * time.Millisecond})
	membershipUp := true
	defer func() {
		if membershipUp {
			coord.srv.Membership().Stop()
		}
	}()

	// One deterministic chunk per worker, pushed once per round. The
	// sketches are linear, so the serial ground truth is the same chunks
	// fed to one estimator in the same tick order.
	pushReg := metrics.New()
	chunks := make([][]stream.Update, cfg.Workers)
	pushers := make([]*daemon.Pusher, cfg.Workers)
	for i, w := range workers {
		chunks[i] = stream.Zipf(stream.GenConfig{N: spec.Options.N, M: spec.Options.M,
			Seed: cfg.Seed*1013 + uint64(i)}, 90, 1.1).Updates()
		p, err := w.client.NewPusher(context.Background(), daemon.PusherConfig{
			Stream: i%2 == 0, MaxBatch: 128,
			Metrics: pushReg,
			Labels:  []metrics.Label{{Key: "worker", Value: w.name}},
		})
		if err != nil {
			return nil, fmt.Errorf("soak: pusher %s: %w", w.name, err)
		}
		pushers[i] = p
	}

	rep := &Report{FinalScrapes: make(map[string][]byte)}
	var lastAggregate float64
	prevTotals := make([]map[string]float64, cfg.Workers)

	checkWorker := func(i int, sc *metrics.Scrape) error {
		w := workers[i]
		// Counters never run backwards, scrape over scrape.
		totals := map[string]float64{}
		for _, name := range []string{
			"gsumd_stream_acked_updates_total",
			"gsumd_stream_acked_frames_total",
			"gsumd_ingested_updates",
		} {
			if v, ok := sc.Value(name); ok {
				totals[name] = v
			}
		}
		if prev := prevTotals[i]; prev != nil {
			for name, was := range prev {
				if now := totals[name]; now < was {
					return fmt.Errorf("soak: %s: %s went backwards (%v -> %v)", w.name, name, was, now)
				}
			}
		}
		prevTotals[i] = totals
		return nil
	}
	checkCoordinator := func(sc *metrics.Scrape) error {
		// The rebuilt aggregate only ever grows: every pull round folds
		// each retained snapshot exactly once into a fresh estimator, so
		// a dip (or a jump past what was pushed) is a double-count or a
		// lost snapshot.
		if agg, ok := sc.Value("gsumd_aggregate_ingested_updates"); ok {
			if agg < lastAggregate {
				return fmt.Errorf("soak: aggregate ingested went backwards (%v -> %v)", lastAggregate, agg)
			}
			if agg > float64(rep.Updates) {
				return fmt.Errorf("soak: aggregate ingested %v exceeds %d pushed updates (double count)", agg, rep.Updates)
			}
			lastAggregate = agg
		}
		return nil
	}

	// Workload rounds.
	deadline := time.Now().Add(cfg.Duration)
	tick := uint64(0)
	for rep.Rounds < MinRounds || time.Now().Before(deadline) {
		for i, p := range pushers {
			if err := p.Push(chunks[i]); err != nil {
				return nil, fmt.Errorf("soak: push %s: %w", workers[i].name, err)
			}
			rep.Updates += uint64(len(chunks[i]))
		}
		if cfg.Windowed {
			// Flush before advancing so every update of this round is
			// stamped with this tick on every daemon — the grouping the
			// serial replay reproduces.
			for i, p := range pushers {
				if err := p.Flush(); err != nil {
					return nil, fmt.Errorf("soak: flush %s: %w", workers[i].name, err)
				}
			}
			tick++
			for _, n := range append(append([]*node(nil), workers...), coord) {
				if _, err := n.client.Advance(tick); err != nil {
					return nil, fmt.Errorf("soak: advance %s: %w", n.name, err)
				}
			}
		}
		rep.Rounds++
		if rep.Rounds%cfg.ScrapeEvery == 0 {
			for i, w := range workers {
				sc, _, err := w.scrape()
				if err != nil {
					return nil, err
				}
				if err := checkWorker(i, sc); err != nil {
					return nil, err
				}
			}
			sc, _, err := coord.scrape()
			if err != nil {
				return nil, err
			}
			if err := checkCoordinator(sc); err != nil {
				return nil, err
			}
			rep.Scrapes++
			cfg.Logf("soak: round %d, %d updates pushed, aggregate %v", rep.Rounds, rep.Updates, lastAggregate)
		}
	}

	// Quiesce: every pusher flushes and closes (stream acks all
	// collected), then the membership loops stop so pull rounds become
	// deterministic.
	for i, p := range pushers {
		if err := p.Close(); err != nil {
			return nil, fmt.Errorf("soak: close %s: %w", workers[i].name, err)
		}
	}
	coord.srv.Membership().Stop()
	membershipUp = false

	// Post-quiesce pulls: twice, and the estimate gauge must not move
	// between them — rebuilds replace, they never accumulate.
	if err := coord.srv.Membership().PullAll(); err != nil {
		return nil, fmt.Errorf("soak: final pull: %w", err)
	}
	scA, _, err := coord.scrape()
	if err != nil {
		return nil, err
	}
	estA, okA := scA.Value("gsumd_estimate")
	if err := coord.srv.Membership().PullAll(); err != nil {
		return nil, fmt.Errorf("soak: second pull: %w", err)
	}
	scB, rawB, err := coord.scrape()
	if err != nil {
		return nil, err
	}
	estB, okB := scB.Value("gsumd_estimate")
	if !okA || !okB {
		return nil, fmt.Errorf("soak: no gsumd_estimate gauge on the coordinator")
	}
	if estA != estB {
		return nil, fmt.Errorf("soak: estimate moved across idle pull rounds: %v -> %v (rebuild double-counted)", estA, estB)
	}
	if err := checkCoordinator(scB); err != nil {
		return nil, err
	}
	if lastAggregate != float64(rep.Updates) {
		return nil, fmt.Errorf("soak: final aggregate %v != %d pushed updates", lastAggregate, rep.Updates)
	}
	rep.FinalScrapes[coord.name] = rawB

	// Per-worker quiesce invariants, from the final scrapes.
	for i, w := range workers {
		sc, raw, err := w.scrape()
		if err != nil {
			return nil, err
		}
		rep.FinalScrapes[w.name] = raw
		pushed := float64(rep.Rounds * len(chunks[i]))
		if v, ok := sc.Value("gsumd_ingested_updates"); !ok || v != pushed {
			return nil, fmt.Errorf("soak: %s ingested %v, pushed %v", w.name, v, pushed)
		}
		transport := "json"
		if i%2 == 0 {
			transport = "stream"
		}
		applied, ok := sc.Value("gsumd_ingest_updates_total",
			metrics.Label{Key: "transport", Value: transport})
		if !ok || applied != pushed {
			return nil, fmt.Errorf("soak: %s applied %v over %s, pushed %v", w.name, applied, transport, pushed)
		}
		if transport == "stream" {
			// Ack receipts: at quiesce, every applied update is acked —
			// acks are issued only after apply, and Close waited for all
			// of them.
			acked, _ := sc.Value("gsumd_stream_acked_updates_total")
			if acked != applied {
				return nil, fmt.Errorf("soak: %s acked %v != applied %v", w.name, acked, applied)
			}
			frames, _ := sc.Value("gsumd_stream_acked_frames_total")
			bs, _ := sc.Value("gsumd_ingest_batch_size_count")
			if frames == 0 || frames != bs {
				return nil, fmt.Errorf("soak: %s acked %v frames, observed %v batches", w.name, frames, bs)
			}
			if conns, _ := sc.Value("gsumd_stream_connections"); conns != 0 {
				return nil, fmt.Errorf("soak: %s still reports %v live stream connections", w.name, conns)
			}
		}
		if v, ok := sc.Value("gsumd_ingest_batch_size_count"); !ok || v == 0 {
			return nil, fmt.Errorf("soak: %s batch-size histogram empty", w.name)
		}
		if cfg.Windowed {
			if v, ok := sc.Value("gsumd_window_tick"); !ok || v != float64(tick) {
				return nil, fmt.Errorf("soak: %s window tick %v, want %d", w.name, v, tick)
			}
		}
	}

	// Coordinator latency evidence: the pull rounds timed their rebuilds
	// (PullAll merges server-side, so /v1/merge's histogram stays empty
	// here) and every round landed on the ok counter.
	if v, ok := scB.Value("gsumd_rebuild_seconds_count"); !ok || v == 0 {
		return nil, fmt.Errorf("soak: coordinator rebuild histogram empty")
	}
	okPulls, _ := scB.Value("gsumd_pull_rounds_total", metrics.Label{Key: "result", Value: "ok"})
	if okPulls < 2 {
		return nil, fmt.Errorf("soak: only %v ok pull rounds recorded", okPulls)
	}
	if v, ok := scB.Value("gsumd_heap_alloc_bytes"); !ok || v <= 0 {
		return nil, fmt.Errorf("soak: heap gauge missing (%v)", v)
	}

	// Client-side pusher registry: session totals must agree with what
	// the workers applied, and nothing may still be queued or in flight.
	var pushText strings.Builder
	if err := pushReg.WritePrometheus(&pushText); err != nil {
		return nil, err
	}
	rep.FinalScrapes["pushers"] = []byte(pushText.String())
	psc, err := metrics.Parse(strings.NewReader(pushText.String()))
	if err != nil {
		return nil, err
	}
	for i, w := range workers {
		wl := metrics.Label{Key: "worker", Value: w.name}
		if v, ok := psc.Value("gsum_pusher_acked_updates", wl); !ok || v != float64(rep.Rounds*len(chunks[i])) {
			return nil, fmt.Errorf("soak: pusher %s acked %v, want %d", w.name, v, rep.Rounds*len(chunks[i]))
		}
		for _, name := range []string{"gsum_pusher_queue_depth", "gsum_pusher_inflight_frames"} {
			if v, _ := psc.Value(name, wl); v != 0 {
				return nil, fmt.Errorf("soak: pusher %s %s = %v after Close", w.name, name, v)
			}
		}
	}

	// Ground truth: the same chunks through one serial estimator, in the
	// same tick grouping, must yield the coordinator's estimate exactly —
	// linear sketches make distribution invisible, bit for bit. A sharded
	// soak deliberately replays through the PLAIN onepass kind: passing
	// means the hot path is indistinguishable from serial ingest even
	// across the daemon snapshot/merge protocol.
	replaySpec := spec
	if spec.Kind == backend.KindSharded {
		replaySpec.Kind = backend.KindOnePass
		replaySpec.Workers = 0
	}
	serial, err := backend.Open(replaySpec)
	if err != nil {
		return nil, err
	}
	if cfg.Windowed {
		win := serial.(backend.Windowed)
		for t := uint64(1); t <= tick; t++ {
			for i := range chunks {
				serial.UpdateBatch(chunks[i])
			}
			win.Advance(t)
		}
		for r := int(tick); r < rep.Rounds; r++ { // rounds after the last advance
			for i := range chunks {
				serial.UpdateBatch(chunks[i])
			}
		}
	} else {
		for r := 0; r < rep.Rounds; r++ {
			for i := range chunks {
				serial.UpdateBatch(chunks[i])
			}
		}
	}
	rep.SerialEstimate = serial.Estimate()
	resp, err := coord.client.Estimate(url.Values{})
	if err != nil {
		return nil, fmt.Errorf("soak: final estimate: %w", err)
	}
	got, ok := resp.Value()
	if !ok {
		return nil, fmt.Errorf("soak: final estimate has no value: %+v", resp)
	}
	rep.Estimate = got
	if rep.Estimate != rep.SerialEstimate {
		return nil, fmt.Errorf("soak: distributed estimate %v != serial %v", rep.Estimate, rep.SerialEstimate)
	}
	if estB != rep.Estimate {
		return nil, fmt.Errorf("soak: estimate gauge %v != /v1/estimate %v", estB, rep.Estimate)
	}
	return rep, nil
}
