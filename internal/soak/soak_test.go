package soak

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/backend"
)

// soakDuration resolves the workload duration: the CI short mode keeps
// it to a fraction of a second, the nightly job sets SOAK_DURATION
// (e.g. "2m") for the long run.
func soakDuration(t *testing.T) time.Duration {
	if env := os.Getenv("SOAK_DURATION"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("SOAK_DURATION: %v", err)
		}
		return d
	}
	if testing.Short() {
		return 300 * time.Millisecond
	}
	return time.Second
}

// writeArtifacts persists the final scrapes when SOAK_ARTIFACT_DIR is
// set (the nightly job uploads that directory).
func writeArtifacts(t *testing.T, prefix string, rep *Report) {
	dir := os.Getenv("SOAK_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, raw := range rep.FinalScrapes {
		if err := os.WriteFile(filepath.Join(dir, prefix+"-"+name+".prom"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func runSoak(t *testing.T, cfg Config) *Report {
	t.Helper()
	cfg.Duration = soakDuration(t)
	cfg.Logf = t.Logf
	before := runtime.NumGoroutine()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Goroutine stability: the topology is fully shut down inside Run's
	// defers only after it returns, so give the drains a moment, then
	// require the count to settle near the baseline — a leaked stream
	// loop or membership ticker shows up here.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+10 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+10 {
		t.Errorf("goroutines grew %d -> %d over the soak", before, now)
	}
	if rep.Rounds < MinRounds {
		t.Errorf("only %d rounds ran", rep.Rounds)
	}
	if rep.Scrapes == 0 {
		t.Error("no mid-soak scrapes happened")
	}
	if rep.Estimate != rep.SerialEstimate {
		t.Errorf("estimate %v != serial %v", rep.Estimate, rep.SerialEstimate)
	}
	t.Logf("soak: %d rounds, %d updates, %d scrapes, estimate %v (serial-identical)",
		rep.Rounds, rep.Updates, rep.Scrapes, rep.Estimate)
	return rep
}

// TestSoakFlat is the headline soak: 2 stream + JSON workers and a
// coordinator under sustained flat load, all invariants asserted from
// /metrics scrapes, final estimate bit-identical to serial.
func TestSoakFlat(t *testing.T) {
	rep := runSoak(t, Config{Workers: 2, Seed: 7})
	writeArtifacts(t, "flat", rep)
}

// TestSoakWindowed runs the same topology on the window kind with the
// tick advancing every round.
func TestSoakWindowed(t *testing.T) {
	rep := runSoak(t, Config{Workers: 2, Windowed: true, Seed: 11})
	writeArtifacts(t, "windowed", rep)
}

// TestSoakSharded runs the daemons on the lock-free sharded hot path.
// The serial ground-truth replay inside Run uses the PLAIN onepass kind,
// so a pass asserts the cross-kind contract end to end: sharded daemons,
// snapshot/merge over HTTP, and one serial estimator all land on the
// same bits.
func TestSoakSharded(t *testing.T) {
	rep := runSoak(t, Config{Workers: 2, Kind: backend.KindSharded, Seed: 17})
	writeArtifacts(t, "sharded", rep)
}

// TestSoakManyWorkers widens the topology past the CI default so the
// aggregate invariants hold with more than two snapshot sources; kept
// brief outside the nightly run.
func TestSoakManyWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the 2-worker soaks cover the invariants")
	}
	rep := runSoak(t, Config{Workers: 4, Seed: 13})
	writeArtifacts(t, "wide", rep)
}
