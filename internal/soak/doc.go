// Package soak boots a real gsumd worker/coordinator topology
// in-process — real loopback listeners, the production daemon.Server
// HTTP surface, membership loops, both ingest transports — and drives a
// sustained mixed workload against it while scraping every node's
// /metrics endpoint. The operational invariants are asserted from the
// scrapes themselves, the way an alerting rule would see them: every
// stream ack is backed by an applied update, the coordinator's
// rebuilt-from-snapshots aggregate counter only ever grows, the latency
// histograms fill in, the goroutine gauge settles back after quiesce,
// and the final pulled estimate is bit-identical to a serial estimator
// fed the same updates. Run is the whole harness; the soak test calls
// it short in CI and long (SOAK_DURATION) in the nightly job.
package soak
