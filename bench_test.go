package universal

// The bench harness regenerates every experiment table (E1-E12, one bench
// per table — the paper is a theory paper, so these are its "tables and
// figures"; see DESIGN.md §4 and EXPERIMENTS.md), measures the hot paths
// of the substrate, and runs the ablations called out in DESIGN.md §5.
//
//	go test -bench=. -benchmem
//
// Experiment benches render their table once (first iteration) so a bench
// run reproduces EXPERIMENTS.md; custom metrics (relative error, recall)
// are attached via b.ReportMetric.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/sweep"
	"repro/internal/util"
	"repro/internal/window"
	"repro/internal/workload"
)

// renderOnce prints each experiment table a single time per process, so
// `go test -bench=.` output doubles as the experiment record.
var renderedTables sync.Map

func runExperiment(b *testing.B, id string, run func() experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := run()
		if _, done := renderedTables.LoadOrStore(id, true); !done {
			t.Render(os.Stdout)
		} else {
			t.Render(io.Discard)
		}
	}
}

func BenchmarkE1Classification(b *testing.B) {
	runExperiment(b, "E1", func() experiments.Table { return experiments.E1Classification() })
}

func BenchmarkE2OnePassTractable(b *testing.B) {
	runExperiment(b, "E2", func() experiments.Table { return experiments.E2OnePassTractable(true) })
}

func BenchmarkE3TwoPassSeparation(b *testing.B) {
	runExperiment(b, "E3", func() experiments.Table { return experiments.E3TwoPassSeparation(true) })
}

func BenchmarkE4IndexReduction(b *testing.B) {
	runExperiment(b, "E4", func() experiments.Table { return experiments.E4IndexReduction(true) })
}

func BenchmarkE5DisjIndReduction(b *testing.B) {
	runExperiment(b, "E5", func() experiments.Table { return experiments.E5DisjIndReduction(true) })
}

func BenchmarkE6ShortLinearCombination(b *testing.B) {
	runExperiment(b, "E6", func() experiments.Table { return experiments.E6ShortLinearCombination(true) })
}

func BenchmarkE7NearlyPeriodic(b *testing.B) {
	runExperiment(b, "E7", func() experiments.Table { return experiments.E7NearlyPeriodic(true) })
}

func BenchmarkE8ApproxMLE(b *testing.B) {
	runExperiment(b, "E8", func() experiments.Table { return experiments.E8ApproxMLE(true) })
}

func BenchmarkE9SketchGuarantees(b *testing.B) {
	runExperiment(b, "E9", func() experiments.Table { return experiments.E9SketchGuarantees(true) })
}

func BenchmarkE10HeavyHitterRecall(b *testing.B) {
	runExperiment(b, "E10", func() experiments.Table { return experiments.E10HeavyHitterRecall(true) })
}

func BenchmarkE11HigherOrder(b *testing.B) {
	runExperiment(b, "E11", func() experiments.Table { return experiments.E11HigherOrder(true) })
}

func BenchmarkE12LEtaTransform(b *testing.B) {
	runExperiment(b, "E12", func() experiments.Table { return experiments.E12LEtaTransform() })
}

func BenchmarkE13DiscreteCounting(b *testing.B) {
	runExperiment(b, "E13", func() experiments.Table { return experiments.E13DiscreteCounting(true) })
}

func BenchmarkE14MetricInstability(b *testing.B) {
	runExperiment(b, "E14", func() experiments.Table { return experiments.E14MetricInstability() })
}

func BenchmarkE15MajorityAmplification(b *testing.B) {
	runExperiment(b, "E15", func() experiments.Table { return experiments.E15MajorityAmplification(true) })
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkCountSketchUpdate(b *testing.B) {
	cs := sketch.NewCountSketch(7, 4096, util.NewSplitMix64(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Update(uint64(i), 1)
	}
}

func BenchmarkCountSketchUpdateTopK(b *testing.B) {
	cs := sketch.NewCountSketchTopK(7, 4096, 128, util.NewSplitMix64(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Update(uint64(i%2048), 1)
	}
}

func BenchmarkCountSketchEstimate(b *testing.B) {
	cs := sketch.NewCountSketch(7, 4096, util.NewSplitMix64(1))
	for i := 0; i < 10000; i++ {
		cs.Update(uint64(i), int64(i%100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Estimate(uint64(i % 10000))
	}
}

func BenchmarkAMSUpdate(b *testing.B) {
	a := sketch.NewAMS(9, 16, util.NewSplitMix64(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(uint64(i), 1)
	}
}

func BenchmarkOnePassEstimatorUpdate(b *testing.B) {
	g := gfunc.F2Func()
	e := core.NewOnePass(g, core.Options{N: 1 << 16, M: 1 << 10, Seed: 1, Lambda: 1.0 / 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i%(1<<16)), 1)
	}
}

func BenchmarkGnpHeavyUpdate(b *testing.B) {
	gh := heavy.NewGnpHeavy(heavy.GnpHeavyConfig{N: 1 << 16, Lambda: 0.3, Substreams: 64},
		util.NewSplitMix64(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gh.Update(uint64(i%(1<<16)), 1)
	}
}

func BenchmarkClassifyX2(b *testing.B) {
	cfg := gfunc.DefaultCheckConfig()
	g := gfunc.F2Func()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gfunc.Classify(g, cfg)
	}
}

func BenchmarkMeasureEnvelope(b *testing.B) {
	g := gfunc.X2Log()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gfunc.MeasureEnvelope(g, 1<<16)
	}
}

// --- ingestion engine: serial vs batched vs parallel ----------------------

// ingestBenchStream builds a heavy-tailed insertion stream of n updates
// over a 4096-item working set inside a 2^16 domain — the workload the
// batch path's duplicate aggregation and the sharded engine target.
func ingestBenchStream(n int) *stream.Stream {
	rng := util.NewSplitMix64(77)
	s := stream.New(1 << 16)
	for i := 0; i < n; i++ {
		// Quadratic skew: low item ranks dominate, as in a Zipf workload.
		r := rng.Float64()
		s.Add(uint64(r*r*4096), 1)
	}
	return s
}

const ingestBenchN = 1 << 20

// BenchmarkIngest compares the three ingestion paths of the one-pass
// estimator on a 1M-update stream: per-update, batched serial, and the
// sharded parallel engine. The metric that matters is updates/s;
// estimator construction is included in every variant so the comparison
// stays symmetric (the parallel path must build its worker shards).
func BenchmarkIngest(b *testing.B) {
	g := gfunc.F2Func()
	s := ingestBenchStream(ingestBenchN)
	opts := core.Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 7, Lambda: 1.0 / 16}
	report := func(b *testing.B) {
		b.ReportMetric(float64(b.N)*float64(s.Len())/b.Elapsed().Seconds(), "updates/s")
	}

	b.Run("serial-single-update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewOnePass(g, opts)
			s.Each(func(u stream.Update) { e.Update(u.Item, u.Delta) })
		}
		report(b)
	})
	b.Run("serial-batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewOnePass(g, opts)
			e.Process(s) // engine.Ingest: UpdateBatch in DefaultBatchSize chunks
		}
		report(b)
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.NewOnePass(g, opts)
				if err := e.ProcessParallel(s, workers); err != nil {
					b.Fatal(err)
				}
			}
			report(b)
		})
	}
}

// BenchmarkIngestTwoPass compares serial and parallel two-pass runs.
func BenchmarkIngestTwoPass(b *testing.B) {
	g := gfunc.X2Log()
	s := ingestBenchStream(ingestBenchN / 4)
	opts := core.Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 7, Lambda: 1.0 / 16}
	report := func(b *testing.B) {
		b.ReportMetric(float64(b.N)*float64(2*s.Len())/b.Elapsed().Seconds(), "updates/s")
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewTwoPass(g, opts)
			e.Run(s)
		}
		report(b)
	})
	b.Run("parallel-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewTwoPass(g, opts)
			if _, err := e.RunParallel(s, 4); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
}

// BenchmarkCountSketchBatch isolates the batch path's duplicate
// aggregation at the raw sketch layer against the per-update baseline
// (BenchmarkCountSketchUpdateTopK above).
func BenchmarkCountSketchBatch(b *testing.B) {
	updates := ingestBenchStream(1 << 16).Updates()
	cs := sketch.NewCountSketchTopK(7, 4096, 128, util.NewSplitMix64(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.UpdateBatch(updates[:4096])
	}
	b.ReportMetric(4096*float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

// --- ablations (DESIGN.md §5) ---------------------------------------------

// benchStream is the shared workload for the ablation benches.
func benchStream(seed uint64) *stream.Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 400, 1.1)
}

// BenchmarkAblationPruning quantifies Algorithm 2's pruning step on the
// E3 adversarial stream for the unpredictable (2+sin √x)x². The metric is
// cover soundness (Definition 12 item 1): the worst relative error of a
// reported weight against the item's true g-value. With pruning, only
// certifiable weights are reported (small error); without it, the cover
// contains garbage weights for the unstable heavy hitters.
func BenchmarkAblationPruning(b *testing.B) {
	g := gfunc.SinSqrtX2()
	h := gfunc.MeasureEnvelope(gfunc.SinLogX2(), 1<<16).H()
	for _, disable := range []bool{false, true} {
		name := "pruning-on"
		if disable {
			name = "pruning-off"
		}
		b.Run(name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i%5 + 1)
				s := experiments.UnstableHeavyStream(g, seed)
				v := s.Vector()
				rng := util.NewSplitMix64(seed * 31)
				op := heavy.NewOnePass(heavy.OnePassConfig{
					G: g, Lambda: 1.0 / 16, Eps: 0.25, Delta: 0.1, H: h,
					DisablePruning: disable,
				}, rng)
				s.Each(func(u stream.Update) { op.Update(u.Item, u.Delta) })
				for _, entry := range op.Cover() {
					f, ok := v[entry.Item]
					if !ok {
						continue
					}
					trueW := g.Eval(uint64(util.AbsInt64(f)))
					if e := util.RelErr(entry.Weight, trueW); e > worst {
						worst = e
					}
				}
			}
			b.ReportMetric(worst, "worst-weight-err")
		})
	}
}

// BenchmarkAblationRecursiveDepth sweeps the recursive sketch depth: too
// shallow misses tail mass (bias), full depth costs more space.
func BenchmarkAblationRecursiveDepth(b *testing.B) {
	g := gfunc.F1Func()
	for _, levels := range []int{2, 6, 12} {
		b.Run(map[int]string{2: "levels-2", 6: "levels-6", 12: "levels-12"}[levels],
			func(b *testing.B) {
				var worst float64
				space := 0
				for i := 0; i < b.N; i++ {
					seed := uint64(i%5 + 1)
					s := benchStream(seed)
					truth := s.Vector().Sum(g.Eval)
					e := core.NewOnePass(g, core.Options{
						N: s.N(), M: 1 << 10, Eps: 0.25, Seed: seed * 7,
						Lambda: 1.0 / 16, Levels: levels,
					})
					e.Process(s)
					if err := util.RelErr(e.Estimate(), truth); err > worst {
						worst = err
					}
					space = e.SpaceBytes()
				}
				b.ReportMetric(worst, "worst-rel-err")
				b.ReportMetric(float64(space), "space-bytes")
			})
	}
}

// BenchmarkAblationMedianVsMean compares CountSketch point-query
// combiners: the median is robust, the mean has heavy tails.
func BenchmarkAblationMedianVsMean(b *testing.B) {
	s := benchStream(3)
	v := s.Vector()
	cs := sketch.NewCountSketch(7, 512, util.NewSplitMix64(5))
	s.Each(func(u stream.Update) { cs.Update(u.Item, u.Delta) })
	items := make([]uint64, 0, len(v))
	for it := range v {
		items = append(items, it)
	}
	b.Run("median", func(b *testing.B) {
		var worst float64
		for i := 0; i < b.N; i++ {
			it := items[i%len(items)]
			if e := util.RelErr(float64(cs.Estimate(it)), float64(v[it])); e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst, "worst-rel-err")
	})
	b.Run("mean", func(b *testing.B) {
		var worst float64
		for i := 0; i < b.N; i++ {
			it := items[i%len(items)]
			if e := util.RelErr(cs.EstimateMean(it), float64(v[it])); e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst, "worst-rel-err")
	})
}

// BenchmarkAblationWidth sweeps the width factor: the space/accuracy
// tradeoff curve of the one-pass estimator (E2's bench-native form).
func BenchmarkAblationWidth(b *testing.B) {
	g := gfunc.F2Func()
	for _, wf := range []float64{0.02, 0.1, 0.5} {
		name := map[float64]string{0.02: "wf-0.02", 0.1: "wf-0.10", 0.5: "wf-0.50"}[wf]
		b.Run(name, func(b *testing.B) {
			var worst float64
			space := 0
			for i := 0; i < b.N; i++ {
				seed := uint64(i%5 + 1)
				s := benchStream(seed)
				truth := s.Vector().Sum(g.Eval)
				e := core.NewOnePass(g, core.Options{
					N: s.N(), M: 1 << 10, Eps: 0.25, Seed: seed * 11,
					Lambda: 1.0 / 16, WidthFactor: wf,
				})
				e.Process(s)
				if err := util.RelErr(e.Estimate(), truth); err > worst {
					worst = err
				}
				space = e.SpaceBytes()
			}
			b.ReportMetric(worst, "worst-rel-err")
			b.ReportMetric(float64(space), "space-bytes")
		})
	}
}

// --- regression-gated process benchmarks (scripts/benchdiff) --------------

// The BenchmarkProcess* family is the CI performance gate: the bench job
// runs exactly these, and scripts/benchdiff fails the build when any
// ns/op regresses by more than 2x against the committed
// BENCH_baseline.json. Keep them small enough for -benchtime=3x runs and
// deterministic (fixed stream, fixed seeds).

// processBenchStream is a 128k-update skewed insertion stream, large
// enough to exercise batching and sharding, small enough for CI.
func processBenchStream() *stream.Stream { return ingestBenchStream(1 << 17) }

func processBenchOpts(s *Stream) core.Options {
	return core.Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 7, Lambda: 1.0 / 16}
}

// BenchmarkProcessSerial is the batched serial ingestion hot path.
func BenchmarkProcessSerial(b *testing.B) {
	g := gfunc.F2Func()
	s := processBenchStream()
	opts := processBenchOpts(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := core.NewOnePass(g, opts)
		e.Process(s)
	}
}

// BenchmarkProcessParallel is the sharded 4-worker engine.
func BenchmarkProcessParallel(b *testing.B) {
	g := gfunc.F2Func()
	s := processBenchStream()
	opts := processBenchOpts(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := core.NewOnePass(g, opts)
		if err := e.ProcessParallel(s, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessWorkload is the per-scenario half of the gate: serial
// batched ingestion of each internal/workload scenario, so a hot-path
// change that helps one traffic shape but hurts another (e.g. a
// duplicate fast path that taxes all-distinct streams) is caught. Each
// scenario's stream is generated once and reused across iterations.
func BenchmarkProcessWorkload(b *testing.B) {
	g := gfunc.F2Func()
	cfg := workload.Config{N: 1 << 16, Items: 4096, Length: 1 << 17, Seed: 7}
	for _, gen := range workload.Generators() {
		gen := gen
		// Subbenchmark names feed scripts/benchdiff: BenchmarkProcessWorkload/zipf etc.
		b.Run(gen.Name(), func(b *testing.B) {
			s := gen.Generate(cfg)
			opts := processBenchOpts(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := core.NewOnePass(g, opts)
				e.Process(s)
			}
			b.ReportMetric(float64(b.N)*float64(s.Len())/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkSweepCell joins the regression gate for the sweep engine: one
// serial cell of the built-in smoke matrix end to end — scenario
// generation, ingestion, estimate, and point-query scoring — the unit of
// work `gsum sweep` fans out per process.
func BenchmarkSweepCell(b *testing.B) {
	cfg := sweep.Smoke()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.RunCell(cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessSnapshotMerge is the distributed hot path: marshal a
// worker estimator and fold it into a coordinator via the wire format.
func BenchmarkProcessSnapshotMerge(b *testing.B) {
	g := gfunc.F2Func()
	s := processBenchStream()
	opts := processBenchOpts(s)
	worker := core.NewOnePass(g, opts)
	worker.Process(s)
	data, err := worker.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord := core.NewOnePass(g, opts)
		if err := coord.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- regression-gated window benchmarks (scripts/benchdiff) ---------------

// The BenchmarkWindow* family joins BenchmarkProcess* in the CI
// regression gate (scripts/benchdiff gates both prefixes against
// BENCH_baseline.json). It covers the three windowed hot paths: ticked
// ingestion, clock advancement (seal/compact/expire), and the
// snapshot/merge wire cycle.

// windowBenchTicked is the shared windowed scenario: the zipf workload
// over 64 ticks, bench-scale like processBenchStream. Generated once
// per process so the bench loops measure ingestion, not generation.
func windowBenchTicked(length int) *workload.TickedStream {
	return workload.Ticked(workload.Zipf{}, workload.Config{
		N: 1 << 16, Items: 4096, Length: length, Seed: 7, Ticks: 64})
}

// BenchmarkWindowSerial is the windowed serial ingestion hot path:
// estimator construction, tick-batched ingestion of a 128k-update
// stream into a 16-tick window, and the final windowed estimate.
func BenchmarkWindowSerial(b *testing.B) {
	g := gfunc.F2Func()
	opts := core.Options{N: 1 << 16, M: 1 << 10, Eps: 0.25, Seed: 7, Lambda: 1.0 / 16}
	ts := windowBenchTicked(1 << 17)
	updates := ts.Stream.Updates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := window.NewEstimator(g, opts, window.Config{W: 16, K: 2})
		if err != nil {
			b.Fatal(err)
		}
		err = ts.EachRun(0, len(updates), func(lo, hi int, tick uint64) error {
			return e.UpdateBatch(updates[lo:hi], tick)
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = e.Estimate()
	}
	b.ReportMetric(float64(b.N)*float64(len(updates))/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkWindowAdvance isolates the clock: sealing, compacting, and
// expiring buckets across 4096 ticks of a 64-tick window with
// CountSketch buckets (no data, pure structure maintenance).
func BenchmarkWindowAdvance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := window.New(window.Config{W: 64, K: 2}, func() *sketch.CountSketch {
			return sketch.NewCountSketch(5, 1<<10, util.NewSplitMix64(1))
		})
		if err != nil {
			b.Fatal(err)
		}
		for tick := uint64(0); tick < 4096; tick += 7 {
			w.Advance(tick)
		}
	}
}

// BenchmarkWindowSnapshotMerge is the windowed distributed hot path:
// marshal a worker's populated window and fold it into an
// identically-driven coordinator window via the wire format.
func BenchmarkWindowSnapshotMerge(b *testing.B) {
	g := gfunc.F2Func()
	opts := core.Options{N: 1 << 16, M: 1 << 10, Eps: 0.25, Seed: 7, Lambda: 1.0 / 16}
	cfg := window.Config{W: 16, K: 2}
	ts := windowBenchTicked(1 << 15)
	worker, err := window.NewEstimator(g, opts, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i, u := range ts.Stream.Updates() {
		if err := worker.Update(u.Item, u.Delta, ts.Ticks[i]); err != nil {
			b.Fatal(err)
		}
	}
	data, err := worker.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		coord, err := window.NewEstimator(g, opts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		coord.Advance(worker.Now())
		b.StartTimer()
		if err := coord.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
