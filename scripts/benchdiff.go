// Command benchdiff is the CI performance regression gate: it parses
// `go test -bench` output, extracts the ns/op of every BenchmarkProcess*
// benchmark (taking the MINIMUM across repeated -count runs, the least
// noisy statistic on shared CI runners), and compares against the
// committed baseline.
//
//	go test -run '^$' -bench '^BenchmarkProcess' -benchtime 3x -count 3 . | tee bench.txt
//	go run ./scripts -baseline BENCH_baseline.json -current bench.txt
//
// The job fails (exit 1) when any benchmark's ns/op exceeds
// threshold × baseline (default 2x). Refresh the baseline after an
// intentional performance change:
//
//	go run ./scripts -current bench.txt -write BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_baseline.json layout.
type Baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkProcessSerial-8   	      16	  71491381 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name -> min ns/op for benchmarks matching prefix.
func parseBench(path, prefix string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil || !strings.HasPrefix(m[1], prefix) {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	os.Exit(run())
}

func run() int {
	current := flag.String("current", "", "path to `go test -bench` output")
	baselinePath := flag.String("baseline", "", "path to the committed baseline JSON")
	write := flag.String("write", "", "write a fresh baseline JSON to this path and exit")
	prefix := flag.String("prefix", "BenchmarkProcess", "benchmark name prefix to gate")
	threshold := flag.Float64("threshold", 2.0, "fail when current > threshold * baseline")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		return 2
	}
	got, err := parseBench(*current, *prefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no %s* results in %s\n", *prefix, *current)
		return 2
	}

	if *write != "" {
		b := Baseline{
			Note:       "min ns/op per benchmark; refresh with scripts/benchdiff -write after intentional perf changes",
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(got), *write)
		return 0
	}

	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline or -write is required")
		return 2
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad baseline %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		cur := got[name]
		ref, ok := base.Benchmarks[name]
		if !ok || ref <= 0 {
			fmt.Printf("NEW   %-34s %12.0f ns/op (no baseline; refresh BENCH_baseline.json)\n", name, cur)
			continue
		}
		ratio := cur / ref
		status := "ok   "
		if ratio > *threshold {
			status = "FAIL "
			failed = true
		}
		fmt.Printf("%s %-34s %12.0f ns/op vs baseline %12.0f (%.2fx, limit %.1fx)\n",
			status, name, cur, ref, ratio, *threshold)
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok && strings.HasPrefix(name, *prefix) {
			fmt.Printf("GONE  %-34s present in baseline but not in this run\n", name)
			failed = true
		}
	}
	if failed {
		fmt.Println("benchdiff: performance regression gate FAILED")
		return 1
	}
	fmt.Println("benchdiff: all benchmarks within threshold")
	return 0
}
