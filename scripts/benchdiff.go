// Command benchdiff is the CI performance regression gate: it parses
// `go test -bench` output, extracts the ns/op of every gated benchmark
// — the BenchmarkProcess* ingestion family (BenchmarkProcessRegistry
// included: the registry-dispatch ingest path), the BenchmarkWindow*
// sliding-window family, the BenchmarkOpen/BenchmarkSpecFingerprint
// registry layer, BenchmarkCheckpoint (the daemon's atomic
// checkpoint write, paid every -checkpoint-every interval by every
// running gsumd), and the BenchmarkDaemonIngest* transport family
// (in-process ceiling vs JSON vs binary /v1/stream; the stream entry
// is the acceptance gate keeping the wire transport within 2x of the
// no-wire apply path), and BenchmarkSweepCell (one serial smoke-matrix
// cell end to end, the unit of work `gsum sweep` fans out per process)
// — taking the MINIMUM across repeated -count runs, the
// least noisy statistic on shared CI runners — and compares against the
// committed baseline.
//
// # Usage
//
// Run the gated benchmark families and compare (what
// .github/workflows/ci.yml does on every push; benchdiff lives in
// scripts/, so `go run ./scripts` runs it from the repo root):
//
//	go test -run '^$' -bench '^Benchmark(Process|Window|Open|SpecFingerprint|Checkpoint|DaemonIngest|Sweep)' -benchtime 3x -count 3 . | tee bench.txt
//	go run ./scripts -baseline BENCH_baseline.json -current bench.txt
//
// Exit codes: 0 when every gated benchmark is within threshold, 1 on a
// regression (current ns/op > threshold × baseline, default 2x) or when
// a baseline entry has no matching result in the run (a gated benchmark
// was renamed or deleted without refreshing the baseline), 2 on usage or
// parse errors.
//
// # Warn-and-skip for missing baseline entries
//
// A benchmark present in the run but MISSING from the baseline —
// typically a freshly added benchmark — is warned about on stderr,
// printed as a SKIP line on stdout, and NOT gated. It is never silently
// passed: the gate cannot vouch for a number it has nothing to compare
// against, so the warning tells you to add the entry; the run still
// exits 0 so adding a benchmark does not break CI before its baseline
// lands. Sub-benchmarks gate individually under their full name (e.g.
// BenchmarkProcessWorkload/zipf).
//
// -prefix takes a comma-separated list of gated name prefixes (default
// "BenchmarkProcess,BenchmarkWindow,BenchmarkOpen,BenchmarkSpecFingerprint,BenchmarkCheckpoint,BenchmarkDaemonIngest,BenchmarkSweep,BenchmarkMetrics,BenchmarkHotpath,BenchmarkGFMulMod");
// results matching none of them are ignored entirely.
//
// Refresh the baseline after an intentional performance change (this
// rewrites every gated entry with the current run's minima):
//
//	go run ./scripts -current bench.txt -write BENCH_baseline.json
//
// To add entries for new benchmarks without disturbing committed ones
// (e.g. when old entries double as a before/after record), write to a
// temporary file and merge the new keys into BENCH_baseline.json by hand.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_baseline.json layout.
type Baseline struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkProcessSerial-8   	      16	  71491381 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// hasAnyPrefix reports whether name starts with one of the prefixes.
func hasAnyPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// parseBench extracts name -> min ns/op for benchmarks matching any of
// the gated prefixes.
func parseBench(path string, prefixes []string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil || !hasAnyPrefix(m[1], prefixes) {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	os.Exit(run())
}

func run() int {
	current := flag.String("current", "", "path to `go test -bench` output")
	baselinePath := flag.String("baseline", "", "path to the committed baseline JSON")
	write := flag.String("write", "", "write a fresh baseline JSON to this path and exit")
	prefix := flag.String("prefix", "BenchmarkProcess,BenchmarkWindow,BenchmarkOpen,BenchmarkSpecFingerprint,BenchmarkCheckpoint,BenchmarkDaemonIngest,BenchmarkSweep,BenchmarkMetrics,BenchmarkHotpath,BenchmarkGFMulMod",
		"comma-separated benchmark name prefixes to gate")
	threshold := flag.Float64("threshold", 2.0, "fail when current > threshold * baseline")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		return 2
	}
	prefixes := strings.Split(*prefix, ",")
	got, err := parseBench(*current, prefixes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no %s* results in %s\n", *prefix, *current)
		return 2
	}

	if *write != "" {
		b := Baseline{
			Note:       "min ns/op per benchmark; refresh with scripts/benchdiff -write after intentional perf changes",
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(got), *write)
		return 0
	}

	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline or -write is required")
		return 2
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad baseline %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	missing := 0
	for _, name := range names {
		cur := got[name]
		ref, ok := base.Benchmarks[name]
		if !ok || ref <= 0 {
			// Warn-and-skip, never silently pass: an ungated number is not a
			// passing number. The warning goes to stderr so it survives
			// stdout filtering in CI step summaries.
			missing++
			fmt.Printf("SKIP  %-34s %12.0f ns/op (no baseline entry)\n", name, cur)
			fmt.Fprintf(os.Stderr, "benchdiff: WARNING: %s has no entry in %s and was NOT gated; add it (see -write in the header comment)\n",
				name, *baselinePath)
			continue
		}
		ratio := cur / ref
		status := "ok   "
		if ratio > *threshold {
			status = "FAIL "
			failed = true
		}
		fmt.Printf("%s %-34s %12.0f ns/op vs baseline %12.0f (%.2fx, limit %.1fx)\n",
			status, name, cur, ref, ratio, *threshold)
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok && hasAnyPrefix(name, prefixes) {
			fmt.Printf("GONE  %-34s present in baseline but not in this run\n", name)
			failed = true
		}
	}
	if failed {
		fmt.Println("benchdiff: performance regression gate FAILED")
		return 1
	}
	if missing > 0 {
		fmt.Printf("benchdiff: all gated benchmarks within threshold (%d new benchmark(s) skipped — see warnings)\n", missing)
		return 0
	}
	fmt.Println("benchdiff: all benchmarks within threshold")
	return 0
}
