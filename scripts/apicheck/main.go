// Command apicheck is the exported-API gate: it dumps the exported
// surface of the root package by parsing `go doc -all` output and diffs
// it against the committed golden file api.txt, so an accidental
// signature change, removal, or addition fails CI's docs job instead of
// slipping into a release.
//
// # Usage
//
//	go run ./scripts/apicheck            # compare against api.txt
//	go run ./scripts/apicheck -write     # regenerate api.txt after an
//	                                     # intentional API change
//
// The dump keeps only declaration lines: everything before the first
// section header (the package doc) and every doc-comment line (indented
// four spaces by go doc) or source comment is dropped, so prose edits
// never churn the golden file — only real surface changes do. Exit
// codes: 0 clean, 1 surface drift, 2 usage or tooling errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
)

func main() {
	os.Exit(run())
}

// sectionHeaders are go doc -all's flush-left group banners; the dump
// starts at the first one (everything above is the package doc).
var sectionHeaders = map[string]bool{
	"CONSTANTS": true,
	"VARIABLES": true,
	"FUNCTIONS": true,
	"TYPES":     true,
}

// normalize reduces go doc -all output to the declaration surface.
func normalize(out string) []string {
	var kept []string
	inDecls := false
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if !inDecls {
			inDecls = sectionHeaders[trimmed]
			if !inDecls {
				continue
			}
		}
		if trimmed == "" {
			continue
		}
		// Doc comments are indented four spaces by go doc; source
		// comments inside declaration blocks start with //. Neither is
		// API surface.
		if strings.HasPrefix(line, "    ") || strings.HasPrefix(trimmed, "//") {
			continue
		}
		kept = append(kept, line)
	}
	return kept
}

// diff reports lines present in exactly one of the two dumps.
func diff(got, want []string) []string {
	gotSet := make(map[string]int)
	for _, l := range got {
		gotSet[l]++
	}
	wantSet := make(map[string]int)
	for _, l := range want {
		wantSet[l]++
	}
	var out []string
	for _, l := range want {
		if gotSet[l] == 0 {
			out = append(out, "- "+l)
		}
	}
	for _, l := range got {
		if wantSet[l] == 0 {
			out = append(out, "+ "+l)
		}
	}
	return out
}

func run() int {
	golden := flag.String("golden", "api.txt", "path to the committed API golden file")
	pkg := flag.String("pkg", ".", "package to dump (argument to go doc -all)")
	write := flag.Bool("write", false, "regenerate the golden file instead of comparing")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: apicheck [-golden api.txt] [-pkg .] [-write]")
		return 2
	}

	cmd := exec.Command("go", "doc", "-all", *pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: go doc -all %s: %v\n", *pkg, err)
		return 2
	}
	got := normalize(string(out))
	dump := strings.Join(got, "\n") + "\n"

	if *write {
		if err := os.WriteFile(*golden, []byte(dump), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
			return 2
		}
		fmt.Printf("apicheck: wrote %d declaration lines to %s\n", len(got), *golden)
		return 0
	}

	data, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v (run with -write to create the golden file)\n", err)
		return 2
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if d := diff(got, want); len(d) > 0 {
		fmt.Fprintf(os.Stderr, "apicheck: exported surface of %s drifted from %s (- missing, + new):\n", *pkg, *golden)
		for _, l := range d {
			fmt.Fprintln(os.Stderr, l)
		}
		fmt.Fprintln(os.Stderr, "apicheck: if the change is intentional, regenerate with: go run ./scripts/apicheck -write")
		return 1
	}
	fmt.Printf("apicheck: %s matches %s (%d declaration lines)\n", *pkg, *golden, len(got))
	return 0
}
