// Command linkcheck is the documentation half of the CI docs gate: it
// scans markdown files for inline links and fails when a relative link
// points at a file that does not exist or an anchor that no heading
// generates. It needs no network access — external http(s) links are
// only checked for parseability — so it is safe on offline CI runners.
//
//	go run ./scripts/linkcheck README.md ARCHITECTURE.md EXPERIMENTS.md
//
// Checked per file:
//
//   - [text](relative/path): the path must exist relative to the
//     markdown file's directory.
//   - [text](path#anchor) and [text](#anchor): the target file (or the
//     current file) must contain a heading whose GitHub-style slug
//     equals the anchor.
//   - [text](https://...): must parse as a URL; not fetched.
//
// Links that resolve outside the repository (e.g. the GitHub web-relative
// ../../actions/... badge idiom) are skipped — they cannot be validated
// from a checkout. Exit code 0 when all links are valid, 1 otherwise.
package main

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.*)$`)

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// drop everything but letters, digits, spaces, hyphens and underscores,
// then turn spaces into hyphens.
func slugify(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	h = strings.ReplaceAll(h, "`", "")
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf returns the set of heading slugs of a markdown file.
func anchorsOf(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	for _, m := range headingRe.FindAllStringSubmatch(string(data), -1) {
		out[slugify(m[1])] = true
	}
	return out, nil
}

// checkFile validates every link in one markdown file, appending
// problems to errs. root is the repository root used to detect links
// that escape the checkout.
func checkFile(path, root string, errs *[]string) {
	data, err := os.ReadFile(path)
	if err != nil {
		*errs = append(*errs, fmt.Sprintf("%s: %v", path, err))
		return
	}
	dir := filepath.Dir(path)
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		switch {
		case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
			if _, err := url.Parse(target); err != nil {
				*errs = append(*errs, fmt.Sprintf("%s: unparseable URL %q", path, target))
			}
			continue
		case strings.HasPrefix(target, "mailto:"):
			continue
		}
		frag := ""
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target, frag = target[:i], target[i+1:]
		}
		resolved := path // in-file anchor
		if target != "" {
			resolved = filepath.Join(dir, target)
			abs, err := filepath.Abs(resolved)
			if err != nil {
				*errs = append(*errs, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			rootAbs, _ := filepath.Abs(root)
			if !strings.HasPrefix(abs+string(filepath.Separator), rootAbs+string(filepath.Separator)) {
				continue // escapes the checkout (GitHub web-relative idiom): unverifiable
			}
			if _, err := os.Stat(resolved); err != nil {
				*errs = append(*errs, fmt.Sprintf("%s: broken link %q (%v)", path, m[1], err))
				continue
			}
		}
		if frag != "" && strings.HasSuffix(strings.ToLower(resolved), ".md") {
			anchors, err := anchorsOf(resolved)
			if err != nil {
				*errs = append(*errs, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			if !anchors[frag] {
				*errs = append(*errs, fmt.Sprintf("%s: broken anchor %q (no heading slugs to %q in %s)",
					path, m[1], frag, resolved))
			}
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	var errs []string
	for _, path := range os.Args[1:] {
		checkFile(path, ".", &errs)
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "linkcheck: "+e)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", len(errs))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) ok\n", len(os.Args)-1)
}
