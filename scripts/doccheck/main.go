// Command doccheck is the package-documentation gate: it walks every Go
// package in the repository and fails unless each has exactly one
// package doc comment (the doc.go convention for internal packages; a
// command comment on main for cmd/ and scripts/).
//
// # Usage
//
//	go run ./scripts/doccheck [root]
//
// root defaults to ".". Exit codes: 0 when every package is documented
// by exactly one file, 1 when any package has no doc comment or more
// than one (ambiguous — godoc picks one file arbitrarily), 2 on usage
// or parse errors. testdata trees and _test.go files are skipped;
// every other package counts — examples/ included — so a freshly
// added internal package without a doc.go fails CI's docs job until
// its role, layer, and seed-discipline obligations are written down.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run())
}

func run() int {
	root := "."
	switch len(os.Args) {
	case 1:
	case 2:
		root = os.Args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: doccheck [root]")
		return 2
	}

	// pkgDocs maps package directory -> files carrying a package doc
	// comment; pkgSeen tracks every directory holding non-test Go files.
	pkgDocs := make(map[string][]string)
	pkgSeen := make(map[string]bool)

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgSeen[dir] = true
		fset := token.NewFileSet()
		// PackageClauseOnly+ParseComments keeps the walk fast and still
		// yields the doc comment attached to the package clause.
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			pkgDocs[dir] = append(pkgDocs[dir], name)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 2
	}

	dirs := make([]string, 0, len(pkgSeen))
	for dir := range pkgSeen {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	failed := false
	for _, dir := range dirs {
		docs := pkgDocs[dir]
		switch len(docs) {
		case 0:
			fmt.Printf("MISSING %-28s no package doc comment (add a doc.go stating role, layer, and seed-discipline obligations)\n", dir)
			failed = true
		case 1:
			fmt.Printf("ok      %-28s %s\n", dir, docs[0])
		default:
			sort.Strings(docs)
			fmt.Printf("DUP     %-28s package doc comment in %d files: %s\n", dir, len(docs), strings.Join(docs, ", "))
			failed = true
		}
	}
	if failed {
		fmt.Println("doccheck: FAILED")
		return 1
	}
	fmt.Printf("doccheck: %d packages documented\n", len(dirs))
	return 0
}
