package universal

// Benches for the Spec/Open layer, gated by scripts/benchdiff alongside
// the Process/Window hot paths: BenchmarkOpen and
// BenchmarkSpecFingerprint bound the cost of registry construction and
// the pre-merge handshake, and BenchmarkProcessRegistry re-runs the
// BenchmarkProcessSerial workload through the unified Estimator
// interface so a regression in the dispatch path (or an accidental
// de-devirtualization) is caught against the concrete-type baseline.

import "testing"

func specBenchSpec(s *Stream) Spec {
	return Spec{Kind: KindOnePass, G: "x^2", Options: processBenchOpts(s)}
}

// BenchmarkOpen is registry construction: normalize the Spec (catalog
// lookup + envelope measurement) and build the one-pass estimator.
func BenchmarkOpen(b *testing.B) {
	s := processBenchStream()
	spec := specBenchSpec(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecFingerprint is the pre-merge handshake cost: normalize
// and digest the full Spec.
func BenchmarkSpecFingerprint(b *testing.B) {
	s := processBenchStream()
	spec := specBenchSpec(s)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= spec.Fingerprint()
	}
	_ = sink
}

// BenchmarkProcessRegistry is BenchmarkProcessSerial through the
// registry: the same stream and options, but the estimator is resolved
// by Open and driven through Estimator interface dispatch. Compare its
// ns/op with BenchmarkProcessSerial's to see the (absence of) interface
// indirection cost on the ingest hot path; both are gated.
func BenchmarkProcessRegistry(b *testing.B) {
	s := processBenchStream()
	spec := specBenchSpec(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := Open(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := Process(e, s); err != nil {
			b.Fatal(err)
		}
	}
}
